//===- isa/Intrinsics.cpp --------------------------------------------------===//

#include "isa/Intrinsics.h"

using namespace unit;

namespace {

/// Builds a VNNI/DOT-style dot-product instruction:
///   d[i:Lanes] = c[i] + sum_{j<Reduce} i32(AType a[i*R+j]) * i32(BType b[..])
ComputeOpRef makeDotSemantics(const std::string &Name, int64_t Lanes,
                              int64_t Reduce, DataType AType, DataType BType) {
  TensorRef A = makeTensor(Name + ".a", {Lanes * Reduce}, AType);
  TensorRef B = makeTensor(Name + ".b", {Lanes * Reduce}, BType);
  TensorRef C = makeTensor(Name + ".c", {Lanes}, DataType::i32());
  TensorRef D = makeTensor(Name + ".d", {Lanes}, DataType::i32());

  IterVar I = makeAxis("i", Lanes);
  IterVar J = makeReduceAxis("j", Reduce);

  ExprRef LaneA = makeVar(I) * makeIntImm(Reduce) + makeVar(J);
  ExprRef LaneB = makeVar(I) * makeIntImm(Reduce) + makeVar(J);
  ExprRef Prod = makeCast(DataType::i32(), makeLoad(A, {LaneA})) *
                 makeCast(DataType::i32(), makeLoad(B, {LaneB}));
  ExprRef Init = makeLoad(C, {makeVar(I)});
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {J}, Init);
  return ComputeOp::create(Name, D, {I}, Body);
}

/// Builds a WMMA-style square matrix-multiply-accumulate instruction:
///   C[i,j] += Acc(A[i,k]) * Acc(B[k,j]), accumulating in place.
ComputeOpRef makeWmmaSemantics(const std::string &Name, int64_t M,
                               DataType InType, DataType AccType) {
  TensorRef A = makeTensor(Name + ".a", {M, M}, InType);
  TensorRef B = makeTensor(Name + ".b", {M, M}, InType);
  TensorRef C = makeTensor(Name + ".c", {M, M}, AccType);

  IterVar I = makeAxis("i", M);
  IterVar J = makeAxis("j", M);
  IterVar K = makeReduceAxis("k", M);

  ExprRef Prod = makeCast(AccType, makeLoad(A, {makeVar(I), makeVar(K)})) *
                 makeCast(AccType, makeLoad(B, {makeVar(K), makeVar(J)}));
  // In-place accumulate: the accumulator register *is* the output register
  // (paper Fig. 4c's `+=`), so Init loads C itself and the Inspector must
  // bind the accumulator to the operation's output buffer.
  ExprRef Init = makeLoad(C, {makeVar(I), makeVar(J)});
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {K}, Init);
  return ComputeOp::create(Name, C, {I, J}, Body, /*InPlaceUpdate=*/true);
}

} // namespace

TensorIntrinsicRef unit::makeDotProductIntrinsic(
    const std::string &Name, const std::string &LLVMIntrinsic,
    const std::string &Target, int64_t Lanes, int64_t Reduce, DataType AType,
    DataType BType, IntrinsicCost Cost) {
  return std::make_shared<TensorIntrinsic>(
      Name, LLVMIntrinsic, Target,
      makeDotSemantics(Name, Lanes, Reduce, AType, BType), Cost);
}

TensorIntrinsicRef unit::makeMacIntrinsic(const std::string &Name,
                                          const std::string &LLVMIntrinsic,
                                          const std::string &Target, int64_t M,
                                          DataType InType, DataType AccType,
                                          IntrinsicCost Cost) {
  return std::make_shared<TensorIntrinsic>(
      Name, LLVMIntrinsic, Target,
      makeWmmaSemantics(Name, M, InType, AccType), Cost);
}

TensorIntrinsicRef unit::makeVNNIVpdpbusd() {
  // Cascade Lake: VNNI on ports 0 and 5, latency ~5 cycles, 64 MACs/instr.
  IntrinsicCost Cost{/*LatencyCycles=*/5.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/64.0};
  return makeDotProductIntrinsic("vnni.vpdpbusd",
                                 "llvm.x86.avx512.vpdpbusd.512", "x86",
                                 /*Lanes=*/16, /*Reduce=*/4, DataType::u8(),
                                 DataType::i8(), Cost);
}

TensorIntrinsicRef unit::makeVNNIVpdpbusd256() {
  IntrinsicCost Cost{/*LatencyCycles=*/5.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/32.0};
  return makeDotProductIntrinsic("vnni.vpdpbusd.256",
                                 "llvm.x86.avx512.vpdpbusd.256", "x86",
                                 /*Lanes=*/8, /*Reduce=*/4, DataType::u8(),
                                 DataType::i8(), Cost);
}

TensorIntrinsicRef unit::makeVNNIVpdpbusd128() {
  IntrinsicCost Cost{/*LatencyCycles=*/5.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/16.0};
  return makeDotProductIntrinsic("vnni.vpdpbusd.128",
                                 "llvm.x86.avx512.vpdpbusd.128", "x86",
                                 /*Lanes=*/4, /*Reduce=*/4, DataType::u8(),
                                 DataType::i8(), Cost);
}

TensorIntrinsicRef unit::makeAVX512Vpdpwssd() {
  IntrinsicCost Cost{/*LatencyCycles=*/5.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/32.0};
  return makeDotProductIntrinsic("avx512.vpdpwssd",
                                 "llvm.x86.avx512.vpdpwssd.512", "x86",
                                 /*Lanes=*/16, /*Reduce=*/2, DataType::i16(),
                                 DataType::i16(), Cost);
}

TensorIntrinsicRef unit::makeARMSdot() {
  // Neoverse N1 (Graviton2): SDOT latency 3, two ASIMD pipes, 16 MACs.
  IntrinsicCost Cost{/*LatencyCycles=*/3.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/16.0};
  return makeDotProductIntrinsic("arm.sdot", "llvm.arm.neon.sdot.v4i32.v16i8",
                                 "arm", /*Lanes=*/4, /*Reduce=*/4,
                                 DataType::i8(), DataType::i8(), Cost);
}

TensorIntrinsicRef unit::makeARMUdot() {
  IntrinsicCost Cost{/*LatencyCycles=*/3.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/16.0};
  return makeDotProductIntrinsic("arm.udot", "llvm.arm.neon.udot.v4i32.v16i8",
                                 "arm", /*Lanes=*/4, /*Reduce=*/4,
                                 DataType::u8(), DataType::u8(), Cost);
}

TensorIntrinsicRef unit::makeWMMAF16() {
  // V100: one wmma.m16n16k16 performs 4096 MACs; the dependent-reuse
  // latency of the warp-level HMMA sequence is ~64 cycles — hidden by the
  // p x p outer-product accumulation of Fig. 6.
  IntrinsicCost Cost{/*LatencyCycles=*/64.0, /*IssuePerCycle=*/0.25,
                     /*MacsPerInstr=*/4096.0};
  return makeMacIntrinsic("wmma.m16n16k16.f16",
                          "llvm.nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
                          "nvgpu", /*M=*/16, DataType::f16(), DataType::f32(),
                          Cost);
}

TensorIntrinsicRef unit::makeWMMAS8() {
  IntrinsicCost Cost{/*LatencyCycles=*/64.0, /*IssuePerCycle=*/0.25,
                     /*MacsPerInstr=*/4096.0};
  return makeMacIntrinsic("wmma.m16n16k16.s8",
                          "llvm.nvvm.wmma.m16n16k16.mma.row.row.s8.s32",
                          "nvgpu", /*M=*/16, DataType::i8(), DataType::i32(),
                          Cost);
}

void unit::registerBuiltinIntrinsics(IntrinsicRegistry &Registry) {
  // Widest-first within a family: inspectTarget returns matches in
  // registration order and callers prefer the first.
  Registry.add(makeVNNIVpdpbusd());
  Registry.add(makeVNNIVpdpbusd256());
  Registry.add(makeVNNIVpdpbusd128());
  Registry.add(makeAVX512Vpdpwssd());
  Registry.add(makeARMSdot());
  Registry.add(makeARMUdot());
  Registry.add(makeWMMAF16());
  Registry.add(makeWMMAS8());
}
