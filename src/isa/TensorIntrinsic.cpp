//===- isa/TensorIntrinsic.cpp ---------------------------------------------===//

#include "isa/TensorIntrinsic.h"

#include "isa/Intrinsics.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace unit;

TensorIntrinsic::TensorIntrinsic(std::string Name, std::string LLVMIntrinsic,
                                 std::string Target, ComputeOpRef Semantics,
                                 IntrinsicCost Cost)
    : Name(std::move(Name)), LLVMIntrinsic(std::move(LLVMIntrinsic)),
      Target(std::move(Target)), Semantics(std::move(Semantics)), Cost(Cost) {
  assert(this->Semantics && "intrinsic needs semantics");
  assert(!this->Name.empty() && "intrinsic needs a name");
  assert(!this->Target.empty() && "intrinsic needs a target id");
}

int64_t TensorIntrinsic::outputLanes() const {
  int64_t N = 1;
  for (const IterVar &IV : Semantics->axes())
    N *= IV->extent();
  return N;
}

int64_t TensorIntrinsic::reduceWidth() const {
  int64_t N = 1;
  for (const IterVar &IV : Semantics->reduceAxes())
    N *= IV->extent();
  return N;
}

IntrinsicRegistry &IntrinsicRegistry::instance() {
  // Magic-static initialization is thread-safe, so built-ins register
  // exactly once even when the first access races across pool threads.
  static IntrinsicRegistry *Registry = [] {
    auto *R = new IntrinsicRegistry();
    registerBuiltinIntrinsics(*R);
    return R;
  }();
  return *Registry;
}

void IntrinsicRegistry::add(TensorIntrinsicRef Intrinsic) {
  assert(Intrinsic && "null intrinsic");
  std::lock_guard<std::mutex> Lock(Mu);
  if (lookupLocked(Intrinsic->name()))
    reportFatalError("intrinsic '" + Intrinsic->name() +
                     "' registered twice");
  Intrinsics.push_back(std::move(Intrinsic));
}

void IntrinsicRegistry::addOrReplace(TensorIntrinsicRef Intrinsic) {
  assert(Intrinsic && "null intrinsic");
  std::lock_guard<std::mutex> Lock(Mu);
  for (TensorIntrinsicRef &I : Intrinsics)
    if (I->name() == Intrinsic->name()) {
      I = std::move(Intrinsic);
      return;
    }
  Intrinsics.push_back(std::move(Intrinsic));
}

TensorIntrinsicRef
IntrinsicRegistry::lookupLocked(const std::string &Name) const {
  for (const TensorIntrinsicRef &I : Intrinsics)
    if (I->name() == Name)
      return I;
  return nullptr;
}

TensorIntrinsicRef IntrinsicRegistry::lookup(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return lookupLocked(Name);
}

std::vector<TensorIntrinsicRef>
IntrinsicRegistry::forTarget(const std::string &Target) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TensorIntrinsicRef> Out;
  for (const TensorIntrinsicRef &I : Intrinsics)
    if (I->target() == Target)
      Out.push_back(I);
  return Out;
}

std::vector<TensorIntrinsicRef> IntrinsicRegistry::all() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Intrinsics;
}
