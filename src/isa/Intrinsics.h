//===- isa/Intrinsics.h - Built-in tensorized instructions -----------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the built-in instructions of paper Fig. 4 plus the
/// int8 Tensor Core and AVX-512 word-dot variants. Each builder writes the
/// instruction's semantics in the tensor DSL, exactly mirroring the paper:
///
///   vnni.vpdpbusd : d[i:16] = c[i] + sum_{j<4} i32(u8 a[i*4+j])*i32(i8 b[..])
///   avx512.vpdpwssd: 16 lanes of i16-pair dot products
///   arm.sdot/udot : d[i:4]  = c[i] + sum_{j<4} i32(a[i*4+j])*i32(b[i*4+j])
///   wmma.f16      : C[16,16] += f32(A[i,k]) * f32(B[k,j])   (in-place)
///   wmma.s8       : C[16,16] += i32(A[i,k]) * i32(B[k,j])   (in-place)
///
/// The two generic builders (makeDotProductIntrinsic, makeMacIntrinsic)
/// are public: a new backend's TargetSpec describes its instructions with
/// them (or with hand-written DSL) — see docs/BACKENDS.md and
/// target/BuiltinSpecs.cpp for the AMX and SVE examples.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_ISA_INTRINSICS_H
#define UNIT_ISA_INTRINSICS_H

#include "ir/DataType.h"
#include "isa/TensorIntrinsic.h"

namespace unit {

/// A VNNI/DOT-style dot-product instruction for an arbitrary target id:
///   d[i:Lanes] = c[i] + sum_{j<Reduce} acc(AType a[i*R+j]) * acc(BType b[..])
/// accumulating into i32 lanes. \p Lanes x \p Reduce MACs per instruction.
TensorIntrinsicRef
makeDotProductIntrinsic(const std::string &Name,
                        const std::string &LLVMIntrinsic,
                        const std::string &Target, int64_t Lanes,
                        int64_t Reduce, DataType AType, DataType BType,
                        IntrinsicCost Cost);

/// A WMMA-style MxMxM matrix-multiply-accumulate instruction accumulating
/// in place (the accumulator register is the output register):
///   C[i,j] += AccType(A[i,k]) * AccType(B[k,j])
TensorIntrinsicRef makeMacIntrinsic(const std::string &Name,
                                    const std::string &LLVMIntrinsic,
                                    const std::string &Target, int64_t M,
                                    DataType InType, DataType AccType,
                                    IntrinsicCost Cost);

/// Intel AVX-512 VNNI vpdpbusd (zmm): u8 x i8 -> i32, 16 lanes x 4 reduce.
TensorIntrinsicRef makeVNNIVpdpbusd();

/// AVX512-VL narrow variants of vpdpbusd (ymm/xmm): 8 and 4 lanes. They
/// let the Inspector serve output-channel counts the 512-bit form cannot
/// tile (the registry is searched widest-first).
TensorIntrinsicRef makeVNNIVpdpbusd256();
TensorIntrinsicRef makeVNNIVpdpbusd128();

/// Intel AVX-512 vpdpwssd: i16 x i16 -> i32, 16 lanes x 2-wide reduce.
TensorIntrinsicRef makeAVX512Vpdpwssd();

/// ARM NEON sdot: i8 x i8 -> i32, 4 lanes x 4-wide reduce.
TensorIntrinsicRef makeARMSdot();

/// ARM NEON udot: u8 x u8 -> i32, 4 lanes x 4-wide reduce.
TensorIntrinsicRef makeARMUdot();

/// Nvidia Tensor Core wmma m16n16k16 fp16 -> fp32 (in-place accumulate).
TensorIntrinsicRef makeWMMAF16();

/// Nvidia Tensor Core wmma m16n16k16 s8 -> i32 (in-place accumulate).
TensorIntrinsicRef makeWMMAS8();

/// Registers all of the above into \p Registry.
void registerBuiltinIntrinsics(IntrinsicRegistry &Registry);

} // namespace unit

#endif // UNIT_ISA_INTRINSICS_H
