//===- isa/TensorIntrinsic.h - Tensorized instruction abstraction ---------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified semantics abstraction of paper §III.A: every tensorized
/// instruction is described as a small tensor-DSL program (a ComputeOp)
/// whose tensors stand for the instruction's registers. Integrating a new
/// instruction means registering one of these objects — no new compiler.
///
/// Instructions belong to a *target id*: a free-form string ("x86",
/// "arm-sve", ...) that names the backend consuming them. Target ids are
/// open — a new backend picks a fresh id and registers a TargetSpec
/// (target/TargetSpec.h); nothing in the compiler enumerates the set.
///
/// The attached cost numbers feed the analytic machine model that stands
/// in for real hardware in this reproduction (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_ISA_TENSORINTRINSIC_H
#define UNIT_ISA_TENSORINTRINSIC_H

#include "ir/ComputeOp.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace unit {

/// Pipeline characteristics used by the performance model.
struct IntrinsicCost {
  /// Result-to-use latency in cycles (the RAW hazard the CPU tuner hides
  /// by unrolling independent accumulators, paper §III.C).
  double LatencyCycles = 4.0;
  /// Instructions issued per cycle per core (or per SM tensor-core group).
  double IssuePerCycle = 1.0;
  /// Multiply-accumulate operations performed by one instruction.
  double MacsPerInstr = 1.0;
};

/// One tensorized instruction: name, target id, DSL semantics, and costs.
class TensorIntrinsic {
  std::string Name;          ///< Registry key, e.g. "vnni.vpdpbusd".
  std::string LLVMIntrinsic; ///< Informational, e.g. "x86.avx512.vpdpbusd".
  std::string Target;        ///< Backend target id, e.g. "x86".
  ComputeOpRef Semantics;
  IntrinsicCost Cost;

public:
  TensorIntrinsic(std::string Name, std::string LLVMIntrinsic,
                  std::string Target, ComputeOpRef Semantics,
                  IntrinsicCost Cost);

  const std::string &name() const { return Name; }
  const std::string &llvmIntrinsic() const { return LLVMIntrinsic; }
  const std::string &target() const { return Target; }
  const ComputeOpRef &semantics() const { return Semantics; }
  const IntrinsicCost &cost() const { return Cost; }

  /// Number of output lanes (product of data-parallel axis extents).
  int64_t outputLanes() const;
  /// Reduction width (product of reduce axis extents; 1 if none).
  int64_t reduceWidth() const;
  /// True for += instructions whose accumulator register is the output
  /// register (Tensor Core, paper Fig. 4c).
  bool accumulatesInPlace() const { return Semantics->isInPlaceUpdate(); }
};

using TensorIntrinsicRef = std::shared_ptr<const TensorIntrinsic>;

/// Process-wide instruction registry. Built-ins (VNNI, DOT, WMMA, ...) are
/// registered lazily on first access; user code may add its own (see
/// examples/custom_intrinsic.cpp), and TargetRegistry::registerSpec adds a
/// spec's instructions automatically. Thread-safe: the CompilerSession's
/// pool consults the registry from concurrent tuning tasks.
class IntrinsicRegistry {
  mutable std::mutex Mu;
  std::vector<TensorIntrinsicRef> Intrinsics;

  IntrinsicRegistry() = default;
  TensorIntrinsicRef lookupLocked(const std::string &Name) const;

public:
  IntrinsicRegistry(const IntrinsicRegistry &) = delete;
  IntrinsicRegistry &operator=(const IntrinsicRegistry &) = delete;

  /// The singleton, with built-ins registered.
  static IntrinsicRegistry &instance();

  /// Registers \p Intrinsic; fatal-errors on duplicate names.
  void add(TensorIntrinsicRef Intrinsic);

  /// Registers \p Intrinsic, replacing any same-name entry *in place*
  /// (its position — and so the widest-first search order — is kept).
  /// TargetRegistry::registerSpec uses this so a revised spec's
  /// instructions are what every global helper sees.
  void addOrReplace(TensorIntrinsicRef Intrinsic);

  /// Finds by name; returns null when absent.
  TensorIntrinsicRef lookup(const std::string &Name) const;

  /// All instructions for one target id, registration order.
  std::vector<TensorIntrinsicRef> forTarget(const std::string &Target) const;

  /// Snapshot of every registered instruction.
  std::vector<TensorIntrinsicRef> all() const;
};

} // namespace unit

#endif // UNIT_ISA_TENSORINTRINSIC_H
