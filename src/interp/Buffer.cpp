//===- interp/Buffer.cpp ---------------------------------------------------===//

#include "interp/Buffer.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cstring>

using namespace unit;

Buffer::Buffer(TensorRef TIn) : T(std::move(TIn)) {
  assert(T && "null tensor");
  DataType DT = T->dtype();
  // f16 values are kept as already-rounded f32 payloads: every binary16
  // value is exactly representable in binary32, so value semantics are
  // preserved while keeping load/store code simple.
  ElemBytes = (DT.isFloat() && DT.bits() == 16) ? 4 : DT.lanesBytes();
  Data.assign(static_cast<size_t>(T->numElements()) * ElemBytes, 0);
}

int64_t Buffer::getInt(int64_t Idx) const {
  assert(Idx >= 0 && Idx < size() && "buffer read out of range");
  DataType DT = T->dtype();
  assert(DT.isIntegral() && "integer read from float buffer");
  const uint8_t *P = Data.data() + Idx * ElemBytes;
  switch (DT.bits()) {
  case 8:
    return DT.isInt() ? static_cast<int64_t>(static_cast<int8_t>(*P))
                      : static_cast<int64_t>(*P);
  case 16: {
    uint16_t V;
    std::memcpy(&V, P, 2);
    return DT.isInt() ? static_cast<int64_t>(static_cast<int16_t>(V))
                      : static_cast<int64_t>(V);
  }
  case 32: {
    uint32_t V;
    std::memcpy(&V, P, 4);
    return DT.isInt() ? static_cast<int64_t>(static_cast<int32_t>(V))
                      : static_cast<int64_t>(V);
  }
  case 64: {
    int64_t V;
    std::memcpy(&V, P, 8);
    return V;
  }
  default:
    unit_unreachable("unsupported integer width");
  }
}

void Buffer::setInt(int64_t Idx, int64_t Value) {
  assert(Idx >= 0 && Idx < size() && "buffer write out of range");
  DataType DT = T->dtype();
  assert(DT.isIntegral() && "integer write to float buffer");
  uint8_t *P = Data.data() + Idx * ElemBytes;
  switch (DT.bits()) {
  case 8: {
    uint8_t V = static_cast<uint8_t>(Value);
    *P = V;
    return;
  }
  case 16: {
    uint16_t V = static_cast<uint16_t>(Value);
    std::memcpy(P, &V, 2);
    return;
  }
  case 32: {
    uint32_t V = static_cast<uint32_t>(Value);
    std::memcpy(P, &V, 4);
    return;
  }
  case 64: {
    std::memcpy(P, &Value, 8);
    return;
  }
  default:
    unit_unreachable("unsupported integer width");
  }
}

double Buffer::getFloat(int64_t Idx) const {
  assert(Idx >= 0 && Idx < size() && "buffer read out of range");
  DataType DT = T->dtype();
  assert(DT.isFloat() && "float read from integer buffer");
  const uint8_t *P = Data.data() + Idx * ElemBytes;
  switch (DT.bits()) {
  case 16:
  case 32: {
    float V;
    std::memcpy(&V, P, 4);
    return V;
  }
  case 64: {
    double V;
    std::memcpy(&V, P, 8);
    return V;
  }
  default:
    unit_unreachable("unsupported float width");
  }
}

void Buffer::setFloat(int64_t Idx, double Value) {
  assert(Idx >= 0 && Idx < size() && "buffer write out of range");
  DataType DT = T->dtype();
  assert(DT.isFloat() && "float write to integer buffer");
  uint8_t *P = Data.data() + Idx * ElemBytes;
  switch (DT.bits()) {
  case 16: {
    float V = fp16RoundToNearest(static_cast<float>(Value));
    std::memcpy(P, &V, 4);
    return;
  }
  case 32: {
    float V = static_cast<float>(Value);
    std::memcpy(P, &V, 4);
    return;
  }
  case 64: {
    std::memcpy(P, &Value, 8);
    return;
  }
  default:
    unit_unreachable("unsupported float width");
  }
}

void Buffer::zero() { std::fill(Data.begin(), Data.end(), 0); }

void Buffer::fillRandom(SplitMix64 &Rng, int64_t Bound) {
  DataType DT = T->dtype();
  for (int64_t I = 0, E = size(); I != E; ++I) {
    if (DT.isFloat()) {
      setFloat(I, Rng.uniformReal() * 2.0 - 1.0);
      continue;
    }
    int64_t Lo, Hi;
    if (DT.isUInt()) {
      Lo = 0;
      Hi = (int64_t(1) << DT.bits()) - 1;
      if (DT.bits() >= 32)
        Hi = (int64_t(1) << 31) - 1;
    } else {
      int64_t Half = DT.bits() >= 32 ? (int64_t(1) << 30)
                                     : (int64_t(1) << (DT.bits() - 1));
      Lo = -Half;
      Hi = Half - 1;
    }
    if (Bound > 0) {
      Lo = std::max(Lo, -Bound);
      Hi = std::min(Hi, Bound);
    }
    setInt(I, Rng.uniform(Lo, Hi));
  }
}
