//===- interp/Interp.cpp ---------------------------------------------------===//

#include "interp/Interp.h"

#include "isa/TensorIntrinsic.h"
#include "support/ErrorHandling.h"
#include "tir/Lower.h"

#include <cassert>

using namespace unit;

Value Value::scalarInt(int64_t V, DataType DT) {
  assert(DT.isIntegral() && DT.isScalar());
  Value Out;
  Out.DT = DT;
  Out.Ints.push_back(V);
  return Out;
}

Value Value::scalarFloat(double V, DataType DT) {
  assert(DT.isFloat() && DT.isScalar());
  Value Out;
  Out.DT = DT;
  Out.Floats.push_back(V);
  return Out;
}

namespace {

/// Wraps \p V to the two's-complement range of \p DT.
int64_t wrapInt(int64_t V, DataType DT) {
  unsigned Bits = DT.bits();
  if (Bits >= 64)
    return V;
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t U = static_cast<uint64_t>(V) & Mask;
  if (DT.isUInt())
    return static_cast<int64_t>(U);
  // Sign extend.
  uint64_t SignBit = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((U ^ SignBit)) - static_cast<int64_t>(SignBit);
}

/// Rounds a float value per \p DT (f16 round-to-nearest-even).
double roundFloat(double V, DataType DT) {
  if (DT.bits() == 16)
    return fp16RoundToNearest(static_cast<float>(V));
  if (DT.bits() == 32)
    return static_cast<float>(V);
  return V;
}

int64_t applyIntOp(ExprNode::Kind Op, int64_t L, int64_t R) {
  switch (Op) {
  case ExprNode::Kind::Add:
    return L + R;
  case ExprNode::Kind::Sub:
    return L - R;
  case ExprNode::Kind::Mul:
    return L * R;
  case ExprNode::Kind::Div:
    if (R == 0)
      reportFatalError("interp: integer division by zero");
    return L / R;
  case ExprNode::Kind::Mod:
    if (R == 0)
      reportFatalError("interp: integer modulo by zero");
    return L % R;
  case ExprNode::Kind::Min:
    return L < R ? L : R;
  case ExprNode::Kind::Max:
    return L > R ? L : R;
  default:
    unit_unreachable("not a binary opcode");
  }
}

double applyFloatOp(ExprNode::Kind Op, double L, double R) {
  switch (Op) {
  case ExprNode::Kind::Add:
    return L + R;
  case ExprNode::Kind::Sub:
    return L - R;
  case ExprNode::Kind::Mul:
    return L * R;
  case ExprNode::Kind::Div:
    return L / R;
  case ExprNode::Kind::Mod:
    reportFatalError("interp: float modulo unsupported");
  case ExprNode::Kind::Min:
    return L < R ? L : R;
  case ExprNode::Kind::Max:
    return L > R ? L : R;
  default:
    unit_unreachable("not a binary opcode");
  }
}

} // namespace

void Interp::bind(const TensorRef &T, Buffer *Buf) {
  assert(T && Buf && "null binding");
  Buffers[T.get()] = Buf;
}

Buffer *Interp::lookup(const TensorRef &T) {
  auto It = Buffers.find(T.get());
  if (It == Buffers.end())
    reportFatalError("interp: tensor '" + T->name() + "' is not bound");
  return It->second;
}

void Interp::run(const StmtRef &S) {
  Env.clear();
  exec(S);
}

void Interp::exec(const StmtRef &S) {
  switch (S->kind()) {
  case StmtNode::Kind::For: {
    const auto *F = cast<ForNode>(S);
    const IterVarNode *IV = F->LoopVar.get();
    for (int64_t I = 0, E = F->extent(); I != E; ++I) {
      Env[IV] = I;
      exec(F->Body);
    }
    Env.erase(IV);
    return;
  }
  case StmtNode::Kind::Store: {
    const auto *St = cast<StoreNode>(S);
    Buffer *Buf = lookup(St->Buf);
    Value Idx = eval(St->Index);
    Value Val = eval(St->Value);
    assert(Idx.lanes() == Val.lanes() && "store lane mismatch");
    for (unsigned L = 0; L < Idx.lanes(); ++L) {
      int64_t At = Idx.Ints[L];
      if (Val.isInt())
        Buf->setInt(At, Val.Ints[L]);
      else
        Buf->setFloat(At, Val.Floats[L]);
    }
    return;
  }
  case StmtNode::Kind::Seq: {
    for (const StmtRef &X : cast<SeqNode>(S)->Stmts)
      exec(X);
    return;
  }
  case StmtNode::Kind::IfThenElse: {
    const auto *If = cast<IfThenElseNode>(S);
    Value Cond = eval(If->Cond);
    assert(Cond.isInt() && Cond.lanes() == 1 && "non-scalar condition");
    if (Cond.Ints[0] != 0)
      exec(If->Then);
    else if (If->Else)
      exec(If->Else);
    return;
  }
  case StmtNode::Kind::Pragma:
    exec(cast<PragmaNode>(S)->Body);
    return;
  case StmtNode::Kind::Evaluate:
    eval(cast<EvaluateNode>(S)->Value);
    return;
  }
  unit_unreachable("unknown statement kind");
}

Value Interp::eval(const ExprRef &E) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    return Value::scalarInt(cast<IntImmNode>(E)->Value, E->dtype());
  case ExprNode::Kind::FloatImm:
    return Value::scalarFloat(cast<FloatImmNode>(E)->Value, E->dtype());
  case ExprNode::Kind::Var: {
    const auto *V = cast<VarNode>(E);
    auto It = Env.find(V->IV.get());
    if (It == Env.end())
      reportFatalError("interp: loop variable '" + V->IV->name() +
                       "' unbound");
    return Value::scalarInt(It->second, DataType::i32());
  }
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod:
  case ExprNode::Kind::Min:
  case ExprNode::Kind::Max: {
    const auto *B = cast<BinaryNode>(E);
    Value L = eval(B->LHS);
    Value R = eval(B->RHS);
    Value Out;
    Out.DT = E->dtype();
    if (Out.DT.isIntegral()) {
      Out.Ints.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Ints[I] =
            wrapInt(applyIntOp(E->kind(), L.Ints[I], R.Ints[I]), Out.DT);
    } else {
      Out.Floats.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Floats[I] = roundFloat(
            applyFloatOp(E->kind(), L.Floats[I], R.Floats[I]), Out.DT);
    }
    return Out;
  }
  case ExprNode::Kind::Cast: {
    const auto *C = cast<CastNode>(E);
    Value In = eval(C->Value);
    Value Out;
    Out.DT = E->dtype();
    if (Out.DT.isIntegral()) {
      Out.Ints.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I) {
        int64_t V = In.isInt() ? In.Ints[I]
                               : static_cast<int64_t>(In.Floats[I]);
        Out.Ints[I] = wrapInt(V, Out.DT);
      }
    } else {
      Out.Floats.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I) {
        double V = In.isInt() ? static_cast<double>(In.Ints[I])
                              : In.Floats[I];
        Out.Floats[I] = roundFloat(V, Out.DT);
      }
    }
    return Out;
  }
  case ExprNode::Kind::Load: {
    const auto *L = cast<LoadNode>(E);
    if (L->Indices.size() != 1)
      reportFatalError("interp: unflattened load of '" + L->Buf->name() +
                       "' reached execution");
    Buffer *Buf = lookup(L->Buf);
    Value Idx = eval(L->Indices.front());
    Value Out;
    Out.DT = E->dtype();
    if (Out.DT.isIntegral()) {
      Out.Ints.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Ints[I] = Buf->getInt(Idx.Ints[I]);
    } else {
      Out.Floats.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Floats[I] = Buf->getFloat(Idx.Ints[I]);
    }
    return Out;
  }
  case ExprNode::Kind::Select: {
    const auto *Sel = cast<SelectNode>(E);
    Value Cond = eval(Sel->Cond);
    return Cond.Ints[0] != 0 ? eval(Sel->TrueValue) : eval(Sel->FalseValue);
  }
  case ExprNode::Kind::Ramp: {
    const auto *R = cast<RampNode>(E);
    Value Base = eval(R->Base);
    Value Out;
    Out.DT = E->dtype();
    Out.Ints.resize(Out.lanes());
    for (unsigned I = 0; I < Out.lanes(); ++I)
      Out.Ints[I] = Base.Ints[0] + R->Stride * I;
    return Out;
  }
  case ExprNode::Kind::Broadcast: {
    const auto *B = cast<BroadcastNode>(E);
    Value In = eval(B->Value);
    Value Out;
    Out.DT = E->dtype();
    unsigned InLanes = In.lanes();
    if (Out.DT.isIntegral()) {
      Out.Ints.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Ints[I] = In.Ints[I % InLanes];
    } else {
      Out.Floats.resize(Out.lanes());
      for (unsigned I = 0; I < Out.lanes(); ++I)
        Out.Floats[I] = In.Floats[I % InLanes];
    }
    return Out;
  }
  case ExprNode::Kind::Concat: {
    const auto *C = cast<ConcatNode>(E);
    Value Out;
    Out.DT = E->dtype();
    for (const ExprRef &P : C->Parts) {
      Value V = eval(P);
      if (Out.DT.isIntegral())
        Out.Ints.insert(Out.Ints.end(), V.Ints.begin(), V.Ints.end());
      else
        Out.Floats.insert(Out.Floats.end(), V.Floats.begin(), V.Floats.end());
    }
    return Out;
  }
  case ExprNode::Kind::Call: {
    const auto *C = cast<CallNode>(E);
    if (C->CKind == CallKind::Tensorized)
      return evalIntrinsic(C);
    if (C->Callee == "likely") {
      assert(C->Args.size() == 1 && "likely takes one argument");
      return eval(C->Args[0]);
    }
    if (C->Callee == "lt") {
      assert(C->Args.size() == 2 && "lt takes two arguments");
      Value L = eval(C->Args[0]);
      Value R = eval(C->Args[1]);
      return Value::scalarInt(L.Ints[0] < R.Ints[0] ? 1 : 0, DataType::i32());
    }
    reportFatalError("interp: unknown builtin '" + C->Callee + "'");
  }
  case ExprNode::Kind::Reduce:
    reportFatalError("interp: Reduce node reached execution");
  }
  unit_unreachable("unknown expression kind");
}

Value Interp::evalIntrinsic(const CallNode *Call) {
  TensorIntrinsicRef Intr = IntrinsicRegistry::instance().lookup(Call->Callee);
  if (!Intr)
    reportFatalError("interp: unregistered tensorized instruction '" +
                     Call->Callee + "'");
  const ComputeOp &Sem = *Intr->semantics();

  // Argument convention (shared with core/Replacer.cpp): one flat vector
  // per semantics input tensor in declared order, plus the current
  // accumulator value appended for in-place instructions.
  size_t ExpectedArgs =
      Sem.inputs().size() + (Intr->accumulatesInPlace() ? 1 : 0);
  if (Call->Args.size() != ExpectedArgs)
    reportFatalError("interp: intrinsic '" + Call->Callee +
                     "' called with wrong argument count");

  // Materialize register operands as small buffers.
  std::vector<std::unique_ptr<Buffer>> Storage;
  Interp Inner;
  auto MaterializeArg = [&](const TensorRef &T, const Value &V) {
    assert(static_cast<int64_t>(V.lanes()) == T->numElements() &&
           "operand lane count must fill the register");
    auto Buf = std::make_unique<Buffer>(T);
    for (unsigned I = 0; I < V.lanes(); ++I) {
      if (V.isInt())
        Buf->setInt(I, V.Ints[I]);
      else
        Buf->setFloat(I, V.Floats[I]);
    }
    Inner.bind(T, Buf.get());
    Storage.push_back(std::move(Buf));
  };

  for (size_t I = 0; I < Sem.inputs().size(); ++I)
    MaterializeArg(Sem.inputs()[I], eval(Call->Args[I]));

  const TensorRef &Out = Sem.output();
  auto OutBuf = std::make_unique<Buffer>(Out);
  if (Intr->accumulatesInPlace()) {
    Value Acc = eval(Call->Args.back());
    assert(static_cast<int64_t>(Acc.lanes()) == Out->numElements() &&
           "accumulator lane count must fill the output register");
    for (unsigned I = 0; I < Acc.lanes(); ++I) {
      if (Acc.isInt())
        OutBuf->setInt(I, Acc.Ints[I]);
      else
        OutBuf->setFloat(I, Acc.Floats[I]);
    }
  }
  Inner.bind(Out, OutBuf.get());

  // Interpret the instruction's own DSL semantics (cached lowering).
  static std::map<const ComputeOp *, StmtRef> LoweredCache;
  auto It = LoweredCache.find(&Sem);
  if (It == LoweredCache.end()) {
    Schedule S(Intr->semantics());
    It = LoweredCache.emplace(&Sem, lower(S)).first;
  }
  Inner.run(It->second);

  // Read back the output register.
  Value Result;
  Result.DT = Out->dtype().withLanes(
      static_cast<unsigned>(Out->numElements()));
  if (Result.DT.isIntegral()) {
    Result.Ints.resize(Result.lanes());
    for (unsigned I = 0; I < Result.lanes(); ++I)
      Result.Ints[I] = OutBuf->getInt(I);
  } else {
    Result.Floats.resize(Result.lanes());
    for (unsigned I = 0; I < Result.lanes(); ++I)
      Result.Floats[I] = OutBuf->getFloat(I);
  }
  return Result;
}

void unit::runComputeOpReference(
    const ComputeOpRef &Op,
    const std::vector<std::pair<TensorRef, Buffer *>> &Bindings) {
  Schedule S(Op);
  StmtRef Lowered = lower(S);
  Interp I;
  for (const auto &[T, Buf] : Bindings)
    I.bind(T, Buf);
  I.run(Lowered);
}
