//===- interp/Buffer.h - Typed runtime buffers -----------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime storage for tensors, with dtype-faithful narrowing on store
/// (u8/i8 wraparound, i32 wraparound accumulation, fp16 rounding). The
/// interpreter executes generated tensor IR against these buffers, standing
/// in for the VNNI/DOT/Tensor-Core hardware the paper measures on.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_INTERP_BUFFER_H
#define UNIT_INTERP_BUFFER_H

#include "ir/Tensor.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace unit {

/// Typed flat storage for one tensor.
class Buffer {
  TensorRef T;
  std::vector<uint8_t> Data;
  unsigned ElemBytes; ///< f16 stores a rounded 4-byte payload.

public:
  explicit Buffer(TensorRef T);

  const TensorRef &tensor() const { return T; }
  int64_t size() const { return T->numElements(); }

  /// Integral element read, sign- or zero-extended to i64 per the dtype.
  int64_t getInt(int64_t Idx) const;
  /// Integral element write; wraps to the dtype's width (two's complement).
  void setInt(int64_t Idx, int64_t Value);

  /// Float element read widened to double.
  double getFloat(int64_t Idx) const;
  /// Float element write; f16 buffers round-to-nearest-even on store.
  void setFloat(int64_t Idx, double Value);

  /// Zero-fills the buffer.
  void zero();

  /// Deterministically fills with small values exercising signedness and
  /// wraparound: integrals uniform over the dtype's full range (clamped to
  /// [-Bound, Bound] when Bound > 0), floats uniform in [-1, 1].
  void fillRandom(SplitMix64 &Rng, int64_t Bound = 0);
};

} // namespace unit

#endif // UNIT_INTERP_BUFFER_H
