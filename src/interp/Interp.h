//===- interp/Interp.h - Tensor IR interpreter ------------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional execution of tensor IR, including tensorized-instruction
/// calls. The hardware the paper benchmarks (VNNI, ARM DOT, Tensor Core)
/// is unavailable here, so intrinsic calls are *emulated by interpreting
/// the instruction's own DSL semantics* — the same unified abstraction the
/// compiler matches against, which keeps emulation automatically in sync
/// with whatever instructions are registered (including user-defined ones).
///
/// Integer arithmetic wraps at the expression dtype width and f16 values
/// round to nearest-even, so results are bit-exact against references.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_INTERP_INTERP_H
#define UNIT_INTERP_INTERP_H

#include "interp/Buffer.h"
#include "tir/Stmt.h"

#include <map>
#include <vector>

namespace unit {

/// A runtime value: scalar or flat vector, integral or floating.
struct Value {
  DataType DT;
  std::vector<int64_t> Ints;   ///< Populated when DT is integral.
  std::vector<double> Floats;  ///< Populated when DT is float.

  unsigned lanes() const { return DT.lanes(); }
  bool isInt() const { return DT.isIntegral(); }

  static Value scalarInt(int64_t V, DataType DT);
  static Value scalarFloat(double V, DataType DT);
};

/// Interprets tensor IR against bound buffers.
class Interp {
  std::map<const TensorNode *, Buffer *> Buffers;
  std::map<const IterVarNode *, int64_t> Env;

public:
  /// Binds \p Buf as the storage of tensor \p T. The caller keeps
  /// ownership; aliasing two tensors to one buffer is allowed only for the
  /// in-place accumulator pattern.
  void bind(const TensorRef &T, Buffer *Buf);

  /// Executes \p S. Fatal-errors on unbound tensors or malformed IR.
  void run(const StmtRef &S);

  /// Evaluates a standalone expression (exposed for tests).
  Value eval(const ExprRef &E);

private:
  void exec(const StmtRef &S);
  Buffer *lookup(const TensorRef &T);
  Value evalIntrinsic(const CallNode *Call);
};

/// Convenience: lowers \p Op with a default (un-tuned) schedule and runs it
/// against \p Bindings. Used for references and intrinsic emulation.
void runComputeOpReference(
    const ComputeOpRef &Op,
    const std::vector<std::pair<TensorRef, Buffer *>> &Bindings);

} // namespace unit

#endif // UNIT_INTERP_INTERP_H
