//===- baselines/VendorLibrary.cpp -----------------------------------------===//

#include "baselines/VendorLibrary.h"

#include "core/Inspector.h"
#include "models/ModelZoo.h"
#include "target/TargetRegistry.h"

#include <algorithm>

using namespace unit;

//===----------------------------------------------------------------------===//
// OneDnnEngine
//===----------------------------------------------------------------------===//

OneDnnEngine::OneDnnEngine(CpuMachine MachineIn)
    : Machine(std::move(MachineIn)),
      Scheme(TargetRegistry::instance().get("x86")->scheme()) {
  // The shapes oneDNN engineers hand-optimized: the resnet-50 family's
  // convolutions (paper §VI.A: "resnet50 and resnet50b, which were heavily
  // tuned by oneDNN engineers").
  for (const Model &M : {makeResnet50(), makeResnet50V1b()})
    for (const ConvLayer &L : M.Convs)
      ExpertShapes.insert(L.shapeKey());
}

double OneDnnEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double OneDnnEngine::convSeconds(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  double Seconds;
  if (Layer.Depthwise) {
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/1.5);
    Seconds = simdLatencySeconds(Stats, Machine);
  } else {
    LaidOutOp Laid =
        buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
    std::vector<MatchResult> Matches = inspectTarget(Laid.Op, "x86");
    if (Matches.empty()) {
      KernelStats Stats = analyzeSimdFallback(
          Laid.Op, 1.0, static_cast<double>(Layer.outH()) * Layer.outW());
      Seconds = simdLatencySeconds(Stats, Machine);
    } else if (ExpertShapes.count(Key)) {
      // Hand-tuned kernel: the engineers searched the space offline, and
      // the JIT emits exact-width tail code instead of residue guards.
      TunedKernel Tuned = tuneCpu(Laid.Op, Matches.front(), Machine);
      KernelStats Stats = Tuned.Stats;
      Stats.HasResidueGuards = false;
      Seconds = cpuLatencySeconds(Stats, Machine);
    } else {
      // Library default blocking: moderate unrolling, fine-grained
      // parallel chunks. The JIT's exact-width tails mean imperfect
      // shapes cost padding but no in-loop branches — the edge the paper
      // observes on workloads #1 and #4.
      TensorizePlan Plan =
          buildCpuPlan(Laid.Op, Matches.front(), CpuTuningPair{1024, 4});
      KernelStats Stats = analyzeTensorized(Plan);
      Stats.HasResidueGuards = false;
      Seconds = cpuLatencySeconds(Stats, Machine);
    }
  }
  Cache[Key] = Seconds;
  return Seconds;
}

//===----------------------------------------------------------------------===//
// cuDNN engines
//===----------------------------------------------------------------------===//

double CuDnnFp32Engine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double CuDnnFp32Engine::convSeconds(const ConvLayer &Layer) {
  return gpuCudaCoreConvSeconds(Layer, Machine, /*Scale=*/1.0);
}

double CuDnnFp16NoTcEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double CuDnnFp16NoTcEngine::convSeconds(const ConvLayer &Layer) {
  // Without Tensor Cores the library's fp16 path still computes through
  // the fp32 pipeline (accumulation stays fp32), so the kernels gain
  // nothing for bs=1...
  double Kernel = gpuCudaCoreConvSeconds(Layer, Machine, /*Scale=*/1.0);
  // ...while every operator boundary pays fp32<->fp16 cast passes plus
  // their launches (the slowdown Fig. 1 demonstrates).
  double ActivationBytes =
      static_cast<double>(Layer.InH) * Layer.InW * Layer.InC * 4.0 +
      static_cast<double>(Layer.outH()) * Layer.outW() * Layer.OutC * 4.0;
  double BytesPerSecond = Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
  double CastSeconds = elementwiseLatencySeconds(
      1.5 * ActivationBytes, 2.0 * Machine.KernelLaunchMicros * 1e-6,
      BytesPerSecond);
  return Kernel + CastSeconds;
}

double CuDnnTensorCoreEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double CuDnnTensorCoreEngine::convSeconds(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  double Seconds;
  if (Layer.Depthwise) {
    Seconds = gpuCudaCoreConvSeconds(Layer, Machine, 1.35);
  } else {
    // Fixed implicit-GEMM schedule: per-dimension padding (no dimension
    // fusion), p=2 accumulation, no reduction splitting.
    TensorIntrinsicRef Wmma =
        IntrinsicRegistry::instance().lookup("wmma.m16n16k16.f16");
    LaidOutOp Laid = buildConvAsGemmOp(Layer, DataType::f16(),
                                       DataType::f32(), 16,
                                       /*FuseSpatial=*/false);
    std::optional<MatchResult> Match = inspect(Laid.Op, Wmma);
    if (Match) {
      TensorizePlan Plan = buildGpuPlan(Laid.Op, *Match, GpuTuningConfig{2, 1});
      // Hand-scheduled SASS pipelines run a little leaner than compiled
      // kernels of the same schedule shape.
      Seconds = 0.85 * gpuLatencySeconds(analyzeTensorized(Plan), Machine);
    } else {
      Seconds = gpuCudaCoreConvSeconds(Layer, Machine, 1.35);
    }
  }
  Cache[Key] = Seconds;
  return Seconds;
}
