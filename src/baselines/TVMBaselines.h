//===- baselines/TVMBaselines.h - Simulated TVM baselines ------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TVM-side baselines of paper §V.B: hand-written tensorize schedules
/// for Intel VNNI and ARM DOT ("involve heavy engineering effort to
/// carefully write intrinsics"), and plain NEON SIMD code generation with
/// no dot-product instruction at all (Fig. 12's TVM-NEON baseline). All
/// share the TVM graph runtime's light dispatch and operator fusion.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_BASELINES_TVMBASELINES_H
#define UNIT_BASELINES_TVMBASELINES_H

#include "graph/Executor.h"

namespace unit {

/// TVM with a manually written tensorized schedule: one fixed blocking
/// chosen by its author, applied to every shape.
class TvmManualEngine : public InferenceEngine {
  CpuMachine Machine;
  std::string Target;
  QuantScheme Scheme;
  CpuTuningPair FixedPair;
  /// x86 template style: unroll the spatial OW loop (residue guards on odd
  /// widths). The ARM DOT schedule was written later and more carefully
  /// (paper: "carefully manual tuned"), unrolling output channels instead.
  bool SpatialUnroll;
  std::map<std::string, double> Cache;

public:
  TvmManualEngine(CpuMachine Machine, const std::string &Target,
                  CpuTuningPair FixedPair, bool SpatialUnroll);

  std::string name() const override;
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 4e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

/// TVM emitting plain NEON (no DOT extension): int8 MACs pay widening
/// multiply-accumulate chains, with a fixed schedule.
class TvmNeonEngine : public InferenceEngine {
  CpuMachine Machine;
  std::map<std::string, double> Cache;

public:
  explicit TvmNeonEngine(CpuMachine Machine);

  std::string name() const override { return "TVM-NEON"; }
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 4e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

/// The paper's TVM x86 baseline: manual VNNI schedules.
TvmManualEngine makeTvmManualVnni(const CpuMachine &Machine);
/// The paper's TVM-Manual ARM baseline: manual DOT schedules.
TvmManualEngine makeTvmManualDot(const CpuMachine &Machine);

} // namespace unit

#endif // UNIT_BASELINES_TVMBASELINES_H
