//===- baselines/VendorLibrary.h - Simulated vendor libraries -------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated Intel oneDNN and Nvidia cuDNN baselines (paper §V.B). Each
/// engine prices *fixed expert schedules* through the same cost model UNIT
/// uses, so the comparison isolates what the paper isolates: per-shape
/// tuned schedules versus one-size library kernels plus framework
/// dispatch. oneDNN's hand-optimized shape set (the resnet-50 workloads
/// its engineers "aggressively tuned", §VI.A) gets fully tuned kernels;
/// everything else uses the library's default blocking.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_BASELINES_VENDORLIBRARY_H
#define UNIT_BASELINES_VENDORLIBRARY_H

#include "graph/Executor.h"

#include <set>

namespace unit {

/// Intel oneDNN v1.6-style int8 direct convolution on VNNI.
class OneDnnEngine : public InferenceEngine {
  CpuMachine Machine;
  QuantScheme Scheme;
  std::set<std::string> ExpertShapes; ///< Hand-tuned shape keys.
  std::map<std::string, double> Cache;

public:
  explicit OneDnnEngine(CpuMachine Machine);

  std::string name() const override { return "oneDNN"; }
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 6e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

/// MXNet integrated with oneDNN (the paper's CPU end-to-end baseline):
/// the same kernels behind MXNet's heavier per-operator dispatch and
/// without cross-operator fusion.
class MxnetOneDnnEngine : public InferenceEngine {
  OneDnnEngine Kernels;

public:
  explicit MxnetOneDnnEngine(CpuMachine Machine) : Kernels(Machine) {}

  std::string name() const override { return "MXNet w/ oneDNN"; }
  double convSeconds(const ConvLayer &Layer) override {
    return Kernels.convSeconds(Layer);
  }
  double perOpOverheadSeconds() const override { return 6e-6; }
  /// oneDNN post-ops fold conv+relu, but residual adds, pooling, and
  /// concats stay separate MXNet operators.
  double fusionQuality() const override { return 0.5; }
  double glueBytesPerSecond() const override {
    return Kernels.glueBytesPerSecond();
  }
};

/// cuDNN fp32 convolution on CUDA cores (Fig. 1 reference).
class CuDnnFp32Engine : public InferenceEngine {
  GpuMachine Machine;

public:
  explicit CuDnnFp32Engine(GpuMachine Machine)
      : Machine(std::move(Machine)) {}

  std::string name() const override { return "cuDNN (fp32)"; }
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 8e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

/// cuDNN fp16 *without* Tensor Cores (Fig. 1): the fp16 data path still
/// runs on CUDA cores, and every operator pays fp32<->fp16 cast passes at
/// its boundary — the overhead that makes naive mixed precision *slower*.
class CuDnnFp16NoTcEngine : public InferenceEngine {
  GpuMachine Machine;

public:
  explicit CuDnnFp16NoTcEngine(GpuMachine Machine)
      : Machine(std::move(Machine)) {}

  std::string name() const override { return "cuDNN (fp16) w/o Tensor Core"; }
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 8e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

/// cuDNN fp16 with Tensor Cores (the paper's GPU baseline): implicit-GEMM
/// kernels with a fixed large-tile schedule — no reduction splitting, no
/// dimension fusion, per-dimension padding.
class CuDnnTensorCoreEngine : public InferenceEngine {
  GpuMachine Machine;
  std::map<std::string, double> Cache;

public:
  explicit CuDnnTensorCoreEngine(GpuMachine Machine)
      : Machine(std::move(Machine)) {}

  std::string name() const override { return "cuDNN (fp16) w/ Tensor Core"; }
  double convSeconds(const ConvLayer &Layer) override;
  double perOpOverheadSeconds() const override { return 10e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;
};

} // namespace unit

#endif // UNIT_BASELINES_VENDORLIBRARY_H
