//===- baselines/TVMBaselines.cpp ------------------------------------------===//

#include "baselines/TVMBaselines.h"

#include "core/Inspector.h"
#include "core/Rewriter.h"
#include "target/TargetRegistry.h"

using namespace unit;

namespace {

/// The hand-written TVM schedules unroll the output-width loop by a fixed
/// factor (reg_n in TVM's x86/ARM int8 conv templates). Widths that do not
/// divide the factor inherit `likely` residue guards — the per-shape
/// rigidity UNIT's tuner avoids (paper §VI.A's 1.18x / §VI.C's 1.13x).
TensorizePlan buildTvmManualPlan(const ComputeOpRef &Op,
                                 const MatchResult &Match,
                                 const CpuTuningPair &Pair) {
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  Schedule &S = *Plan.Sched;

  // Outer data-parallel loops of the blocked conv: x, y, ko (+ trivial
  // remnants). Unroll the spatial y (OW) loop by the fixed factor.
  std::vector<IterVar> RemainingDP = Plan.OuterDataParallel;
  std::vector<IterVar> UnrollParts;
  for (size_t I = 0; I < RemainingDP.size(); ++I) {
    if (RemainingDP[I]->name() != "y")
      continue;
    int64_t Factor = std::min(Pair.UnrollFactor, RemainingDP[I]->extent());
    if (Factor > 1) {
      auto [Outer, Inner] = S.split(RemainingDP[I], Factor);
      RemainingDP[I] = Outer;
      UnrollParts.push_back(Inner);
    }
    break;
  }

  std::vector<IterVar> Order = RemainingDP;
  Order.insert(Order.end(), Plan.OuterReduce.begin(), Plan.OuterReduce.end());
  Order.insert(Order.end(), UnrollParts.begin(), UnrollParts.end());
  S.reorder(Order);

  if (!RemainingDP.empty()) {
    IterVar Fused = RemainingDP[0];
    int64_t Prod = Fused->extent();
    for (size_t Next = 1; Next < RemainingDP.size(); ++Next) {
      if (Prod * RemainingDP[Next]->extent() > Pair.ParallelLimit)
        break;
      Prod *= RemainingDP[Next]->extent();
      Fused = S.fuse(Fused, RemainingDP[Next]);
    }
    S.parallel(Fused);
  }
  for (const IterVar &U : UnrollParts)
    S.unroll(U);
  return Plan;
}

} // namespace

TvmManualEngine::TvmManualEngine(CpuMachine MachineIn,
                                 const std::string &TargetIn,
                                 CpuTuningPair FixedPairIn,
                                 bool SpatialUnrollIn)
    : Machine(std::move(MachineIn)), Target(TargetIn),
      Scheme(TargetRegistry::instance().get(TargetIn)->scheme()),
      FixedPair(FixedPairIn), SpatialUnroll(SpatialUnrollIn) {}

std::string TvmManualEngine::name() const {
  return "TVM-Manual (" + Target + ")";
}

double TvmManualEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double TvmManualEngine::convSeconds(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  double Seconds;
  if (Layer.Depthwise) {
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/1.5);
    Seconds = simdLatencySeconds(Stats, Machine);
  } else {
    LaidOutOp Laid =
        buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
    std::vector<MatchResult> Matches = inspectTarget(Laid.Op, Target);
    if (Matches.empty()) {
      KernelStats Stats = analyzeSimdFallback(
          Laid.Op, 1.0, static_cast<double>(Layer.outH()) * Layer.outW());
      Seconds = simdLatencySeconds(Stats, Machine);
    } else {
      // One fixed manually-chosen blocking for every shape.
      TensorizePlan Plan =
          SpatialUnroll
              ? buildTvmManualPlan(Laid.Op, Matches.front(), FixedPair)
              : buildCpuPlan(Laid.Op, Matches.front(), FixedPair);
      Seconds = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
    }
  }
  Cache[Key] = Seconds;
  return Seconds;
}

TvmNeonEngine::TvmNeonEngine(CpuMachine MachineIn)
    : Machine(std::move(MachineIn)) {}

double TvmNeonEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double TvmNeonEngine::convSeconds(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  double Seconds;
  if (Layer.Depthwise) {
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/3.0);
    Seconds = simdLatencySeconds(Stats, Machine);
  } else {
    // Plain NEON int8: every MAC pays the widening chain; the fixed
    // schedule parallelizes the spatial loops only.
    QuantScheme Scheme = TargetRegistry::instance().get("arm")->scheme();
    LaidOutOp Laid =
        buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, /*LaneMultiple=*/4,
                          /*ReduceMultiple=*/4);
    // The fixed NEON schedule parallelizes output rows only, starving the
    // 32 cores on late small-spatial layers, and it has no register-tiled
    // kernel for 1x1 convolutions at all — mobilenets, nearly all 1x1,
    // are where Fig. 12's >10x gaps come from.
    double Widening = Machine.WideningFactorNoDot;
    if (Layer.KH == 1 && Layer.KW == 1)
      Widening *= 2.0;
    KernelStats Stats = analyzeSimdFallback(
        Laid.Op, Widening, static_cast<double>(Layer.outH()));
    Seconds = simdLatencySeconds(Stats, Machine);
  }
  Cache[Key] = Seconds;
  return Seconds;
}

TvmManualEngine unit::makeTvmManualVnni(const CpuMachine &Machine) {
  // The TVM x86 int8 schedule's fixed blocking, OW-unrolled.
  return TvmManualEngine(Machine, "x86", CpuTuningPair{3000, 8},
                         /*SpatialUnroll=*/true);
}

TvmManualEngine unit::makeTvmManualDot(const CpuMachine &Machine) {
  // The ARM DOT schedule was carefully tuned (paper: UNIT wins by just
  // 1.13x geomean): output-channel unrolling, guard-free, with a slightly
  // conservative parallel granularity.
  return TvmManualEngine(Machine, "arm", CpuTuningPair{512, 8},
                         /*SpatialUnroll=*/false);
}
