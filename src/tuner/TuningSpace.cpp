//===- tuner/TuningSpace.cpp -----------------------------------------------===//

#include "tuner/TuningSpace.h"

#include "support/StringUtils.h"

using namespace unit;

std::string CpuTuningPair::str() const {
  return formatStr("(parallel<%lld, unroll=%lld)",
                   static_cast<long long>(ParallelLimit),
                   static_cast<long long>(UnrollFactor));
}

std::vector<CpuTuningPair> unit::defaultCpuTuningPairs() {
  // Ordered by prior quality: the paper's default first, then nearby
  // refinements, then the long tail.
  // Unroll degrees follow the paper's "< 8 per loop" guidance (two sunk
  // loops give 16 total); parallel limits bracket the 3000 default.
  std::vector<CpuTuningPair> Pairs = {
      {3000, 8},  {3000, 16}, {3000, 4},  {6000, 8},   {1500, 8},
      {6000, 16}, {1500, 16}, {12000, 8}, {750, 8},    {6000, 4},
      {1500, 4},  {12000, 16}, {3000, 2}, {750, 16},   {12000, 4},
      {750, 4},   {3000, 1},  {24000, 8}, {24000, 16}, {1500, 2},
  };
  return Pairs;
}

std::string GpuTuningConfig::str() const {
  return formatStr("(p=%lld, splitK=%lld)", static_cast<long long>(P),
                   static_cast<long long>(SplitK));
}

std::vector<GpuTuningConfig> unit::defaultGpuTuningConfigs() {
  std::vector<GpuTuningConfig> Configs;
  // p > 2 overwhelms the register file (paper §VI.B), but the tuner is
  // allowed to discover that itself.
  for (int64_t SplitK : {1, 2, 4, 8, 16, 32, 64})
    for (int64_t P : {2, 1, 4})
      Configs.push_back({P, SplitK});
  return Configs;
}
