//===- tuner/Tuner.h - Schedule tuning (paper §III.C.3 / §IV.B) -----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds concrete tuned schedules from tuning-space candidates and
/// searches the space against the cost model. Exposes per-stage latencies
/// so the ablation benches (paper Figs. 10 and 11) can report the
/// incremental impact of Parallel / +Unroll / +Tune on CPU and
/// Generic / +SplitK / +Tune on GPU.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TUNER_TUNER_H
#define UNIT_TUNER_TUNER_H

#include "perf/CostModel.h"
#include "tuner/TuningSpace.h"

#include <cstdint>
#include <optional>

namespace unit {

class ThreadPool;

/// Applies the Fig. 7 CPU loop structure for one tuning pair:
/// outer data-parallel loops are fused while the fused extent stays below
/// Pair.ParallelLimit and parallelized; the innermost data-parallel outer
/// loops are tiled to Pair.UnrollFactor total, sunk below the reduction
/// loops, and unrolled; everything in between executes serially.
TensorizePlan buildCpuPlan(const ComputeOpRef &Op, const MatchResult &Match,
                           const CpuTuningPair &Pair);

/// Applies the Fig. 6 GPU structure for one config on a (matrix-shaped)
/// operation: block-binds the two outermost data-parallel tile loops,
/// keeps a PxP unrolled accumulator array, and splits the reduction into
/// Config.SplitK thread-concurrent segments.
TensorizePlan buildGpuPlan(const ComputeOpRef &Op, const MatchResult &Match,
                           const GpuTuningConfig &Config);

/// A tuned kernel with search telemetry.
struct TunedKernel {
  TensorizePlan Plan;            ///< The winning schedule.
  KernelStats Stats;
  double LatencySeconds = 0.0;
  int BestCandidateIndex = -1;   ///< Position in the candidate list.
  int CandidatesTried = 0;
  std::vector<double> CandidateLatencies; ///< One per candidate tried.
};

/// Searches the CPU pair list (optionally truncated to \p MaxCandidates).
TunedKernel tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const CpuMachine &Machine, int MaxCandidates = -1);

/// Searches the GPU config list.
TunedKernel tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const GpuMachine &Machine, int MaxCandidates = -1);

/// Pool-accelerated variants: candidates are built and scored concurrently
/// on \p Pool (when non-null), but the winner is chosen by an index-stable
/// argmin, so the result — plan, stats, telemetry — is bit-identical to the
/// sequential search regardless of thread timing.
TunedKernel tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const CpuMachine &Machine, ThreadPool *Pool,
                    int MaxCandidates = -1);
TunedKernel tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const GpuMachine &Machine, ThreadPool *Pool,
                    int MaxCandidates = -1);

/// Monotone process-wide count of tuner searches run so far (tuneCpu +
/// tuneGpu). The persistence tests assert a warm-from-disk model compile
/// leaves this untouched — zero tuner invocations.
uint64_t tunerInvocations();

/// Ablation stages for paper Fig. 10 (latencies in seconds).
struct CpuAblation {
  double ParallelOnly;   ///< Fuse<3000 + parallel, no unrolling.
  double ParallelUnroll; ///< The (3000, 8) default pair.
  double Tuned;          ///< Full search.
};
CpuAblation cpuAblation(const ComputeOpRef &Op, const MatchResult &Match,
                        const CpuMachine &Machine);

/// Ablation stages for paper Fig. 11 (FuseDim is enumerated by the caller
/// at the graph level; these stages fix the kernel-level knobs).
struct GpuAblation {
  double Generic; ///< p=2, no split-K.
  double SplitK;  ///< p=2, reduction split into 64-element segments.
  double Tuned;   ///< Full search.
};
GpuAblation gpuAblation(const ComputeOpRef &Op, const MatchResult &Match,
                        const GpuMachine &Machine);

} // namespace unit

#endif // UNIT_TUNER_TUNER_H
