//===- tuner/Tuner.h - Schedule tuning (paper §III.C.3 / §IV.B) -----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds concrete tuned schedules from tuning-space candidates and
/// searches the space against the cost model. Exposes per-stage latencies
/// so the ablation benches (paper Figs. 10 and 11) can report the
/// incremental impact of Parallel / +Unroll / +Tune on CPU and
/// Generic / +SplitK / +Tune on GPU.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TUNER_TUNER_H
#define UNIT_TUNER_TUNER_H

#include "obs/Histogram.h"
#include "perf/CostModel.h"
#include "tuner/TuningSpace.h"

#include <cstdint>
#include <optional>

namespace unit {

class ThreadPool;

/// Applies the Fig. 7 CPU loop structure for one tuning pair:
/// outer data-parallel loops are fused while the fused extent stays below
/// Pair.ParallelLimit and parallelized; the innermost data-parallel outer
/// loops are tiled to Pair.UnrollFactor total, sunk below the reduction
/// loops, and unrolled; everything in between executes serially.
TensorizePlan buildCpuPlan(const ComputeOpRef &Op, const MatchResult &Match,
                           const CpuTuningPair &Pair);

/// Applies the Fig. 6 GPU structure for one config on a (matrix-shaped)
/// operation: block-binds the two outermost data-parallel tile loops,
/// keeps a PxP unrolled accumulator array, and splits the reduction into
/// Config.SplitK thread-concurrent segments.
TensorizePlan buildGpuPlan(const ComputeOpRef &Op, const MatchResult &Match,
                           const GpuTuningConfig &Config);

/// A tuned kernel with search telemetry.
///
/// Under early-exit pruning (TunerOptions::Prune) the search may skip
/// candidates whose admissible lower bound already exceeds the running
/// best. The *winner* fields — Plan, Stats, LatencySeconds, and
/// BestCandidateIndex — are guaranteed bit-identical to the exhaustive
/// search (the bound is admissible, so a skipped candidate can never win
/// or tie), but the *coverage* fields describe only what was actually
/// scored: CandidatesTried counts scored candidates, CandidateLatencies
/// and ScoredIndices list them in candidate-index order, and SpaceSize
/// records the full (budget-truncated) space the indices refer to.
/// BestCandidateIndex is always an index into that space — stable across
/// pruning and usable as a transfer seed for another search.
struct TunedKernel {
  TensorizePlan Plan;            ///< The winning schedule.
  KernelStats Stats;
  double LatencySeconds = 0.0;
  int BestCandidateIndex = -1;   ///< Index into the candidate space.
  int CandidatesTried = 0;       ///< Candidates actually scored.
  int SpaceSize = 0;             ///< Candidate space searched over.
  std::vector<double> CandidateLatencies; ///< One per scored candidate.
  std::vector<int> ScoredIndices;         ///< Space index of each entry.
};

/// Knobs for one tuner search.
struct TunerOptions {
  /// Cap on the candidate space: > 0 truncates the list to its first
  /// MaxCandidates entries (a prefix, so indices keep their meaning);
  /// <= 0 searches the full space.
  int MaxCandidates = -1;
  /// Early-exit pruning: skip a candidate when an admissible lower bound
  /// on its modeled latency (perf/CostModel.h *LatencyLowerBoundSeconds)
  /// strictly exceeds the best latency scored so far. The winner stays
  /// bit-identical to the exhaustive search; only coverage telemetry
  /// (and the work done) changes.
  bool Prune = false;
  /// Transfer seed: score this space index first so pruning has a strong
  /// running best from candidate one. Out-of-range values are ignored.
  /// CompilerSession derives seeds from the cached winners of
  /// near-isomorphic keys (docs/TUNING.md).
  int SeedCandidate = -1;
};

/// Searches the CPU pair list (optionally truncated to \p MaxCandidates).
TunedKernel tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const CpuMachine &Machine, int MaxCandidates = -1);

/// Searches the GPU config list.
TunedKernel tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const GpuMachine &Machine, int MaxCandidates = -1);

/// Pool-accelerated variants: candidates are built and scored concurrently
/// on \p Pool (when non-null), but the winner is chosen by an index-stable
/// argmin, so the result — plan, stats, telemetry — is bit-identical to the
/// sequential search regardless of thread timing.
TunedKernel tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const CpuMachine &Machine, ThreadPool *Pool,
                    int MaxCandidates = -1);
TunedKernel tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const GpuMachine &Machine, ThreadPool *Pool,
                    int MaxCandidates = -1);

/// Full-option search entry points. With Prune off and no seed these are
/// exactly the legacy searches above (which forward here). With pruning
/// on, winner fields stay bit-identical — sequential or pool-parallel —
/// while the scored subset may differ run to run under a pool (threads
/// race the running best; a stale best only prunes *less*, never wrongly).
TunedKernel tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const CpuMachine &Machine, ThreadPool *Pool,
                    const TunerOptions &Opts);
TunedKernel tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                    const GpuMachine &Machine, ThreadPool *Pool,
                    const TunerOptions &Opts);

/// Monotone process-wide count of tuner searches run so far (tuneCpu +
/// tuneGpu). The persistence tests assert a warm-from-disk model compile
/// leaves this untouched — zero tuner invocations.
uint64_t tunerInvocations();

/// Monotone process-wide count of candidates actually scored (plan built
/// + cost model run). With pruning this grows slower than invocations x
/// space size — the savings the server's `tuner` stats section reports.
uint64_t tunerCandidatesScored();

/// Monotone process-wide count of candidates skipped by early-exit
/// pruning (lower bound above the running best).
uint64_t tunerPrunedCandidates();

/// Monotone process-wide count of searches that applied a valid transfer
/// seed (TunerOptions::SeedCandidate in range).
uint64_t tunerTransferSeeds();

/// Wall-time distribution of scoring one candidate (plan build +
/// analysis + cost model) across every search so far — the server's
/// unit_tuner_candidate_seconds metrics family.
obs::HistogramSnapshot tunerCandidateCost();

/// Ablation stages for paper Fig. 10 (latencies in seconds).
struct CpuAblation {
  double ParallelOnly;   ///< Fuse<3000 + parallel, no unrolling.
  double ParallelUnroll; ///< The (3000, 8) default pair.
  double Tuned;          ///< Full search.
};
CpuAblation cpuAblation(const ComputeOpRef &Op, const MatchResult &Match,
                        const CpuMachine &Machine);

/// Ablation stages for paper Fig. 11 (FuseDim is enumerated by the caller
/// at the graph level; these stages fix the kernel-level knobs).
struct GpuAblation {
  double Generic; ///< p=2, no split-K.
  double SplitK;  ///< p=2, reduction split into 64-element segments.
  double Tuned;   ///< Full search.
};
GpuAblation gpuAblation(const ComputeOpRef &Op, const MatchResult &Match,
                        const GpuMachine &Machine);

} // namespace unit

#endif // UNIT_TUNER_TUNER_H
