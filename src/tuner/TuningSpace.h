//===- tuner/TuningSpace.h - Tuning parameter spaces -----------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning spaces of paper §III.C/§IV.B. On CPU a candidate is a
/// "tuning pair": the parallel fuse limit (first breaking point) and the
/// unroll factor (second breaking point) of Fig. 7. On GPU a candidate is
/// the outer-product accumulation degree `p` of Fig. 6 plus the split-K
/// segment count; dimension fusion is a graph-level choice the executor
/// enumerates alongside.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TUNER_TUNINGSPACE_H
#define UNIT_TUNER_TUNINGSPACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace unit {

/// One CPU candidate (paper §VI.B "tuning pairs").
struct CpuTuningPair {
  int64_t ParallelLimit; ///< Fuse outer loops while extent stays below this.
  int64_t UnrollFactor;  ///< Data-parallel tiles sunk below the reduction.

  std::string str() const;
};

/// The ordered CPU candidate list. The first entry is the (3000, 8)
/// default the paper reports optimal for more than half the kernels; the
/// rest are ordered so that ">95% of kernels reach optimum within the
/// first 8 pairs" has a chance to hold.
std::vector<CpuTuningPair> defaultCpuTuningPairs();

/// One GPU candidate.
struct GpuTuningConfig {
  int64_t P;          ///< Outer-product accumulation degree (Fig. 6).
  int64_t SplitK;     ///< Concurrent reduction segments (1 = off).

  std::string str() const;
};

/// The ordered GPU candidate list; the first entry is the generic p=2,
/// no-split configuration of paper §VI.B.
std::vector<GpuTuningConfig> defaultGpuTuningConfigs();

} // namespace unit

#endif // UNIT_TUNER_TUNINGSPACE_H
