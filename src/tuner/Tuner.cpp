//===- tuner/Tuner.cpp -----------------------------------------------------===//

#include "tuner/Tuner.h"

#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"
#include "support/Time.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>

using namespace unit;

/// Tile factor for unrolling a loop of \p Extent with \p Budget: prefer
/// the largest exact divisor (no residue guard) unless it wastes more than
/// half the budget, in which case take the guarded full budget — prime
/// extents like the 17x17 and 71x71 outputs of Table I workloads #1/#4
/// have no usable divisor and inherit `likely` guards (paper §VI.B).
static int64_t chooseUnrollFactor(int64_t Budget, int64_t Extent) {
  if (Budget >= Extent)
    return Extent;
  int64_t Divisor = 1;
  for (int64_t F = 2; F <= Budget; ++F)
    if (Extent % F == 0)
      Divisor = F;
  return 2 * Divisor >= Budget ? Divisor : Budget;
}

TensorizePlan unit::buildCpuPlan(const ComputeOpRef &Op,
                                 const MatchResult &Match,
                                 const CpuTuningPair &Pair) {
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  Schedule &S = *Plan.Sched;

  // --- Second breaking point: tile the innermost data-parallel outer
  // loops to an unroll budget and sink them below the reduction (Fig. 7).
  std::vector<IterVar> RemainingDP = Plan.OuterDataParallel;
  std::vector<IterVar> UnrollParts;
  int64_t Budget = std::max<int64_t>(1, Pair.UnrollFactor);
  for (int I = static_cast<int>(RemainingDP.size()) - 1;
       I >= 0 && Budget > 1; --I) {
    int64_t Extent = RemainingDP[I]->extent();
    int64_t Factor = chooseUnrollFactor(Budget, Extent);
    if (Factor <= 1)
      continue;
    auto [Outer, Inner] = S.split(RemainingDP[I], Factor);
    RemainingDP[I] = Outer;
    UnrollParts.insert(UnrollParts.begin(), Inner);
    Budget = (Budget + Factor - 1) / Factor;
  }

  // --- Leaf order: [parallel/serial DP] [reduce] [unrolled DP] [inner].
  std::vector<IterVar> Order = RemainingDP;
  Order.insert(Order.end(), Plan.OuterReduce.begin(), Plan.OuterReduce.end());
  Order.insert(Order.end(), UnrollParts.begin(), UnrollParts.end());
  S.reorder(Order);

  // --- First breaking point: fuse a prefix of the data-parallel loops
  // while the fused extent stays below the parallel limit, then
  // parallelize the fused loop.
  if (!RemainingDP.empty()) {
    IterVar Fused = RemainingDP[0];
    int64_t Prod = Fused->extent();
    for (size_t Next = 1; Next < RemainingDP.size(); ++Next) {
      if (Prod * RemainingDP[Next]->extent() > Pair.ParallelLimit)
        break;
      Prod *= RemainingDP[Next]->extent();
      Fused = S.fuse(Fused, RemainingDP[Next]);
    }
    S.parallel(Fused);
  }
  for (const IterVar &U : UnrollParts)
    S.unroll(U);
  return Plan;
}

TensorizePlan unit::buildGpuPlan(const ComputeOpRef &Op,
                                 const MatchResult &Match,
                                 const GpuTuningConfig &Config) {
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  Schedule &S = *Plan.Sched;

  // --- Split-K: carve the outermost reduction loop into segments that
  // run concurrently on threadIdx (paper §III.C GPU tuning).
  std::vector<IterVar> ReduceLoops = Plan.OuterReduce;
  IterVar KSegments;
  if (Config.SplitK > 1 && !ReduceLoops.empty()) {
    IterVar K = ReduceLoops[0];
    int64_t Segments = std::min(Config.SplitK, K->extent());
    int64_t Factor = (K->extent() + Segments - 1) / Segments;
    auto [Seg, Rest] = S.split(K, Factor);
    KSegments = Seg;
    ReduceLoops[0] = Rest;
  }

  // --- p x p outer-product accumulation (Fig. 6): tile the two outermost
  // data-parallel loops by p; the tile loops stay unrolled in registers.
  std::vector<IterVar> BlockLoops = Plan.OuterDataParallel;
  std::vector<IterVar> UnrollParts;
  for (size_t I = 0; I < BlockLoops.size() && I < 2; ++I) {
    int64_t Factor = std::min(Config.P, BlockLoops[I]->extent());
    if (Factor <= 1)
      continue;
    auto [Outer, Inner] = S.split(BlockLoops[I], Factor);
    BlockLoops[I] = Outer;
    UnrollParts.push_back(Inner);
  }

  // --- Leaf order: blocks, split-K segments, serial reduction, unrolled
  // accumulator tiles, tensorized inner loops.
  std::vector<IterVar> Order = BlockLoops;
  if (KSegments)
    Order.push_back(KSegments);
  Order.insert(Order.end(), ReduceLoops.begin(), ReduceLoops.end());
  Order.insert(Order.end(), UnrollParts.begin(), UnrollParts.end());
  S.reorder(Order);

  if (!BlockLoops.empty())
    S.bind(BlockLoops[0], ForKind::GpuBlockX);
  if (BlockLoops.size() > 1)
    S.bind(BlockLoops[1], ForKind::GpuBlockY);
  if (KSegments)
    S.bind(KSegments, ForKind::GpuThreadX);
  for (const IterVar &U : UnrollParts)
    S.unroll(U);
  return Plan;
}

namespace {

/// Process-wide tuner telemetry; lets tests assert that a warm-from-disk
/// session performs literally zero tuning, and quantifies what pruning
/// and transfer seeding saved (the server's `tuner` stats section).
std::atomic<uint64_t> TunerRuns{0};
std::atomic<uint64_t> ScoredTotal{0};
std::atomic<uint64_t> PrunedTotal{0};
std::atomic<uint64_t> SeededTotal{0};

/// Wall time to score one candidate (plan build + analysis + cost
/// model), the unit_tuner_candidate_seconds family of the server's
/// `metrics` reply. Process-wide like the counters above.
obs::LatencyHistogram CandidateCostHist;

/// Extent/cost facts the lower bounds need, gathered once per search:
/// the pre-schedule outer loop extents (from one reorganizeLoops pass)
/// and the candidate-independent KernelStats fields. Both plan builders
/// operate on these extents with pure integer arithmetic, so the bound
/// functions can replay that arithmetic without building a schedule.
struct BoundContext {
  std::vector<int64_t> Dp;     ///< OuterDataParallel extents, plan order.
  std::vector<int64_t> Reduce; ///< OuterReduce extents, plan order.
  IntrinsicCost Cost;
  double OutputBytes = 0, InputBytes = 0, WeightBytes = 0;
};

BoundContext makeBoundContext(const ComputeOpRef &Op,
                              const MatchResult &Match) {
  BoundContext Ctx;
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  for (const IterVar &IV : Plan.OuterDataParallel)
    Ctx.Dp.push_back(IV->extent());
  for (const IterVar &IV : Plan.OuterReduce)
    Ctx.Reduce.push_back(IV->extent());
  Ctx.Cost = Match.Intrinsic->cost();
  // Same footprint convention as analyzeTensorized: the last input of a
  // multi-input op acts like weights.
  auto FootprintBytes = [](const TensorRef &T) {
    return static_cast<double>(T->numElements()) * T->dtype().lanesBytes();
  };
  Ctx.OutputBytes = FootprintBytes(Op->output());
  const std::vector<TensorRef> &Inputs = Op->inputs();
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (I + 1 == Inputs.size() && Inputs.size() >= 2)
      Ctx.WeightBytes += FootprintBytes(Inputs[I]);
    else
      Ctx.InputBytes += FootprintBytes(Inputs[I]);
  }
  return Ctx;
}

KernelStats synthesizedStats(const BoundContext &Ctx, double Calls,
                             double Unroll, double ParallelExtent,
                             double SplitK) {
  KernelStats S;
  S.Calls = Calls;
  S.Cost = Ctx.Cost;
  S.MacsPerCall = Ctx.Cost.MacsPerInstr;
  S.Unroll = Unroll;
  S.ParallelExtent = ParallelExtent;
  S.SplitK = SplitK;
  S.OutputBytes = Ctx.OutputBytes;
  S.InputBytes = Ctx.InputBytes;
  S.WeightBytes = Ctx.WeightBytes;
  return S;
}

/// Admissible lower bound on what scoring \p Pair would report: replays
/// buildCpuPlan's unroll-split and fuse arithmetic on the raw extents —
/// Calls, Unroll, and ParallelExtent come out exact — and prices the
/// result with LoadsPerCall/guards at their optimistic floor
/// (cpuLatencyLowerBoundSeconds). Never above the real latency.
double cpuPairLowerBound(const BoundContext &Ctx, const CpuTuningPair &Pair,
                         const CpuMachine &Machine) {
  std::vector<int64_t> Dp = Ctx.Dp;
  double Unroll = 1;
  int64_t Budget = std::max<int64_t>(1, Pair.UnrollFactor);
  for (int I = static_cast<int>(Dp.size()) - 1; I >= 0 && Budget > 1; --I) {
    int64_t Factor = chooseUnrollFactor(Budget, Dp[I]);
    if (Factor <= 1)
      continue;
    Dp[I] = (Dp[I] + Factor - 1) / Factor;
    Unroll *= static_cast<double>(Factor);
    Budget = (Budget + Factor - 1) / Factor;
  }
  double Chunks = 1;
  if (!Dp.empty()) {
    int64_t Prod = Dp[0];
    for (size_t Next = 1; Next < Dp.size(); ++Next) {
      if (Prod * Dp[Next] > Pair.ParallelLimit)
        break;
      Prod *= Dp[Next];
    }
    Chunks = static_cast<double>(Prod);
  }
  double Calls = Unroll;
  for (int64_t E : Dp)
    Calls *= static_cast<double>(E);
  for (int64_t E : Ctx.Reduce)
    Calls *= static_cast<double>(E);
  return cpuLatencyLowerBoundSeconds(
      synthesizedStats(Ctx, Calls, Unroll, Chunks, /*SplitK=*/1), Machine);
}

/// GPU analog of cpuPairLowerBound. gpuLatencySeconds reads no operand
/// loads or residue guards, and every stat it does read is replayed
/// exactly here — so this bound *equals* the latency the scorer would
/// compute, making GPU pruning skip precisely the losing candidates.
double gpuConfigLowerBound(const BoundContext &Ctx,
                           const GpuTuningConfig &Config,
                           const GpuMachine &Machine) {
  std::vector<int64_t> Dp = Ctx.Dp;
  std::vector<int64_t> Reduce = Ctx.Reduce;
  double Unroll = 1;
  double SplitK = 1;
  int64_t Segments = 0;
  if (Config.SplitK > 1 && !Reduce.empty()) {
    int64_t K = Reduce[0];
    int64_t Want = std::min(Config.SplitK, K);
    int64_t Factor = (K + Want - 1) / Want;
    Segments = (K + Factor - 1) / Factor; // Split outer = the segments.
    Reduce[0] = Factor;                   // Split inner = serial rest.
    SplitK = static_cast<double>(Segments);
  }
  for (size_t I = 0; I < Dp.size() && I < 2; ++I) {
    int64_t Factor = std::min(Config.P, Dp[I]);
    if (Factor <= 1)
      continue;
    Dp[I] = (Dp[I] + Factor - 1) / Factor;
    Unroll *= static_cast<double>(Factor);
  }
  double Par = Dp.empty() ? 1.0
                          : static_cast<double>(Dp[0]) *
                                (Dp.size() > 1 ? static_cast<double>(Dp[1])
                                               : 1.0);
  double Calls = Unroll;
  for (int64_t E : Dp)
    Calls *= static_cast<double>(E);
  if (Segments > 0)
    Calls *= static_cast<double>(Segments);
  for (int64_t E : Reduce)
    Calls *= static_cast<double>(E);
  return gpuLatencyLowerBoundSeconds(
      synthesizedStats(Ctx, Calls, Unroll, Par, SplitK), Machine);
}

/// Shared candidate search. Builds and scores candidates — serially, or
/// concurrently on \p Pool — into an index-stable slot vector, then picks
/// the winner with a strict-less argmin over ascending indices: the same
/// "first minimal latency wins" rule the sequential loop applied, so
/// thread timing cannot change the result. Only stats are retained per
/// slot; the winning plan is rebuilt once at the end (plan construction
/// is deterministic), so peak memory stays one plan regardless of the
/// candidate count.
///
/// With Opts.Prune, a candidate is skipped when \p Bound (admissible: no
/// candidate's true latency is below its bound) strictly exceeds the best
/// latency scored so far. A skipped candidate therefore satisfies
/// true >= bound > best-at-check >= final-best — it can neither win nor
/// tie the winner, so the argmin over the scored subset returns the exact
/// exhaustive winner. Under a pool the running best is a racy atomic; a
/// thread reading a stale (larger) best prunes less, never wrongly, so
/// the guarantee holds regardless of interleaving while the *set* of
/// scored candidates may vary run to run. Opts.SeedCandidate is scored
/// before the sweep so the running best starts strong.
template <typename Candidate, typename BuildFn, typename LatencyFn,
          typename BoundFn>
TunedKernel searchCandidates(const std::vector<Candidate> &Candidates,
                             const BuildFn &Build, const LatencyFn &Latency,
                             const BoundFn &Bound, const TunerOptions &Opts,
                             ThreadPool *Pool) {
  struct Scored {
    KernelStats Stats;
    double LatencySeconds = 0;
    bool WasScored = false;
  };
  std::vector<Scored> Slots(Candidates.size());
  std::atomic<double> RunningBest{1e30};
  auto ScoreOne = [&](size_t I) {
    double Start = steadyNowSeconds();
    TensorizePlan Plan = Build(Candidates[I]);
    KernelStats Stats = analyzeTensorized(Plan);
    double L = Latency(Stats);
    CandidateCostHist.record(steadyNowSeconds() - Start);
    Slots[I] = Scored{Stats, L, true};
    double Cur = RunningBest.load(std::memory_order_relaxed);
    while (L < Cur && !RunningBest.compare_exchange_weak(
                          Cur, L, std::memory_order_relaxed)) {
    }
  };

  bool Seeded = Opts.SeedCandidate >= 0 &&
                static_cast<size_t>(Opts.SeedCandidate) < Candidates.size();
  if (Seeded) {
    ScoreOne(static_cast<size_t>(Opts.SeedCandidate));
    SeededTotal.fetch_add(1);
  }

  std::atomic<uint64_t> Pruned{0};
  auto Visit = [&](size_t I) {
    if (Slots[I].WasScored)
      return; // The seed, already scored.
    if (Opts.Prune) {
      double Best = RunningBest.load(std::memory_order_relaxed);
      if (Best < 1e30 && Bound(Candidates[I]) > Best) {
        Pruned.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    ScoreOne(I);
  };
  if (Pool && Candidates.size() > 1)
    Pool->parallelFor(Candidates.size(), Visit);
  else
    for (size_t I = 0; I < Candidates.size(); ++I)
      Visit(I);

  TunedKernel Best;
  Best.LatencySeconds = 1e30;
  for (size_t I = 0; I < Slots.size(); ++I) {
    if (!Slots[I].WasScored)
      continue;
    Best.CandidateLatencies.push_back(Slots[I].LatencySeconds);
    Best.ScoredIndices.push_back(static_cast<int>(I));
    if (Slots[I].LatencySeconds < Best.LatencySeconds) {
      Best.LatencySeconds = Slots[I].LatencySeconds;
      Best.Stats = Slots[I].Stats;
      Best.BestCandidateIndex = static_cast<int>(I);
    }
  }
  if (Best.BestCandidateIndex >= 0)
    Best.Plan = Build(Candidates[static_cast<size_t>(Best.BestCandidateIndex)]);
  Best.CandidatesTried = static_cast<int>(Best.CandidateLatencies.size());
  Best.SpaceSize = static_cast<int>(Candidates.size());
  ScoredTotal.fetch_add(static_cast<uint64_t>(Best.CandidatesTried));
  PrunedTotal.fetch_add(Pruned.load());
  return Best;
}

template <typename Candidate>
void truncateCandidates(std::vector<Candidate> &Candidates,
                        int MaxCandidates) {
  if (MaxCandidates > 0 &&
      static_cast<size_t>(MaxCandidates) < Candidates.size())
    Candidates.resize(static_cast<size_t>(MaxCandidates));
}

} // namespace

uint64_t unit::tunerInvocations() { return TunerRuns.load(); }
uint64_t unit::tunerCandidatesScored() { return ScoredTotal.load(); }
uint64_t unit::tunerPrunedCandidates() { return PrunedTotal.load(); }
uint64_t unit::tunerTransferSeeds() { return SeededTotal.load(); }
obs::HistogramSnapshot unit::tunerCandidateCost() {
  return CandidateCostHist.snapshot();
}

namespace {

/// Annotates a finished search's span with what the search did — the
/// scored/pruned/seed numbers the dump_trace acceptance scenario greps.
void annotateSearch(obs::Span &Span, const TunedKernel &Best,
                    const TunerOptions &Opts) {
  Span.annotate("space", static_cast<uint64_t>(Best.SpaceSize));
  Span.annotate("scored", static_cast<uint64_t>(Best.CandidatesTried));
  Span.annotate("pruned",
                static_cast<uint64_t>(Best.SpaceSize - Best.CandidatesTried));
  if (Opts.SeedCandidate >= 0)
    Span.annotate("seed", static_cast<uint64_t>(Opts.SeedCandidate));
}

} // namespace

TunedKernel unit::tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const CpuMachine &Machine, ThreadPool *Pool,
                          const TunerOptions &Opts) {
  TunerRuns.fetch_add(1);
  obs::Span Search("tuner_search");
  std::vector<CpuTuningPair> Pairs = defaultCpuTuningPairs();
  truncateCandidates(Pairs, Opts.MaxCandidates);
  // The bound context costs one plan build; only pay it when pruning can
  // use it.
  std::optional<BoundContext> Ctx;
  if (Opts.Prune)
    Ctx.emplace(makeBoundContext(Op, Match));
  TunedKernel Best = searchCandidates(
      Pairs,
      [&](const CpuTuningPair &Pair) { return buildCpuPlan(Op, Match, Pair); },
      [&](const KernelStats &S) { return cpuLatencySeconds(S, Machine); },
      [&](const CpuTuningPair &Pair) {
        return cpuPairLowerBound(*Ctx, Pair, Machine);
      },
      Opts, Pool);
  annotateSearch(Search, Best, Opts);
  return Best;
}

TunedKernel unit::tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const CpuMachine &Machine, ThreadPool *Pool,
                          int MaxCandidates) {
  TunerOptions Opts;
  Opts.MaxCandidates = MaxCandidates;
  return tuneCpu(Op, Match, Machine, Pool, Opts);
}

TunedKernel unit::tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const CpuMachine &Machine, int MaxCandidates) {
  return tuneCpu(Op, Match, Machine, /*Pool=*/nullptr, MaxCandidates);
}

TunedKernel unit::tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const GpuMachine &Machine, ThreadPool *Pool,
                          const TunerOptions &Opts) {
  TunerRuns.fetch_add(1);
  obs::Span Search("tuner_search");
  std::vector<GpuTuningConfig> Configs = defaultGpuTuningConfigs();
  truncateCandidates(Configs, Opts.MaxCandidates);
  std::optional<BoundContext> Ctx;
  if (Opts.Prune)
    Ctx.emplace(makeBoundContext(Op, Match));
  TunedKernel Best = searchCandidates(
      Configs,
      [&](const GpuTuningConfig &Config) {
        return buildGpuPlan(Op, Match, Config);
      },
      [&](const KernelStats &S) { return gpuLatencySeconds(S, Machine); },
      [&](const GpuTuningConfig &Config) {
        return gpuConfigLowerBound(*Ctx, Config, Machine);
      },
      Opts, Pool);
  annotateSearch(Search, Best, Opts);
  return Best;
}

TunedKernel unit::tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const GpuMachine &Machine, ThreadPool *Pool,
                          int MaxCandidates) {
  TunerOptions Opts;
  Opts.MaxCandidates = MaxCandidates;
  return tuneGpu(Op, Match, Machine, Pool, Opts);
}

TunedKernel unit::tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const GpuMachine &Machine, int MaxCandidates) {
  return tuneGpu(Op, Match, Machine, /*Pool=*/nullptr, MaxCandidates);
}

CpuAblation unit::cpuAblation(const ComputeOpRef &Op,
                              const MatchResult &Match,
                              const CpuMachine &Machine) {
  CpuAblation A;
  {
    TensorizePlan Plan = buildCpuPlan(Op, Match, {3000, 1});
    A.ParallelOnly = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  {
    TensorizePlan Plan = buildCpuPlan(Op, Match, {3000, 8});
    A.ParallelUnroll = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  A.Tuned = tuneCpu(Op, Match, Machine).LatencySeconds;
  return A;
}

GpuAblation unit::gpuAblation(const ComputeOpRef &Op,
                              const MatchResult &Match,
                              const GpuMachine &Machine) {
  GpuAblation A;
  {
    TensorizePlan Plan = buildGpuPlan(Op, Match, {2, 1});
    A.Generic = gpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  {
    // "Split the reduction dimension by 64": one segment per 64 reduction
    // elements, expressed as a segment count on the outer reduce loop.
    int64_t ReduceElems = 1;
    for (const IterVar &IV : Op->reduceAxes())
      ReduceElems *= IV->extent();
    int64_t Segments =
        std::clamp<int64_t>(ReduceElems / 64, 1, 64);
    TensorizePlan Plan = buildGpuPlan(Op, Match, {2, Segments});
    A.SplitK = gpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  A.Tuned = tuneGpu(Op, Match, Machine).LatencySeconds;
  return A;
}
