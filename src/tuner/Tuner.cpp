//===- tuner/Tuner.cpp -----------------------------------------------------===//

#include "tuner/Tuner.h"

#include "support/ErrorHandling.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>

using namespace unit;

/// Tile factor for unrolling a loop of \p Extent with \p Budget: prefer
/// the largest exact divisor (no residue guard) unless it wastes more than
/// half the budget, in which case take the guarded full budget — prime
/// extents like the 17x17 and 71x71 outputs of Table I workloads #1/#4
/// have no usable divisor and inherit `likely` guards (paper §VI.B).
static int64_t chooseUnrollFactor(int64_t Budget, int64_t Extent) {
  if (Budget >= Extent)
    return Extent;
  int64_t Divisor = 1;
  for (int64_t F = 2; F <= Budget; ++F)
    if (Extent % F == 0)
      Divisor = F;
  return 2 * Divisor >= Budget ? Divisor : Budget;
}

TensorizePlan unit::buildCpuPlan(const ComputeOpRef &Op,
                                 const MatchResult &Match,
                                 const CpuTuningPair &Pair) {
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  Schedule &S = *Plan.Sched;

  // --- Second breaking point: tile the innermost data-parallel outer
  // loops to an unroll budget and sink them below the reduction (Fig. 7).
  std::vector<IterVar> RemainingDP = Plan.OuterDataParallel;
  std::vector<IterVar> UnrollParts;
  int64_t Budget = std::max<int64_t>(1, Pair.UnrollFactor);
  for (int I = static_cast<int>(RemainingDP.size()) - 1;
       I >= 0 && Budget > 1; --I) {
    int64_t Extent = RemainingDP[I]->extent();
    int64_t Factor = chooseUnrollFactor(Budget, Extent);
    if (Factor <= 1)
      continue;
    auto [Outer, Inner] = S.split(RemainingDP[I], Factor);
    RemainingDP[I] = Outer;
    UnrollParts.insert(UnrollParts.begin(), Inner);
    Budget = (Budget + Factor - 1) / Factor;
  }

  // --- Leaf order: [parallel/serial DP] [reduce] [unrolled DP] [inner].
  std::vector<IterVar> Order = RemainingDP;
  Order.insert(Order.end(), Plan.OuterReduce.begin(), Plan.OuterReduce.end());
  Order.insert(Order.end(), UnrollParts.begin(), UnrollParts.end());
  S.reorder(Order);

  // --- First breaking point: fuse a prefix of the data-parallel loops
  // while the fused extent stays below the parallel limit, then
  // parallelize the fused loop.
  if (!RemainingDP.empty()) {
    IterVar Fused = RemainingDP[0];
    int64_t Prod = Fused->extent();
    for (size_t Next = 1; Next < RemainingDP.size(); ++Next) {
      if (Prod * RemainingDP[Next]->extent() > Pair.ParallelLimit)
        break;
      Prod *= RemainingDP[Next]->extent();
      Fused = S.fuse(Fused, RemainingDP[Next]);
    }
    S.parallel(Fused);
  }
  for (const IterVar &U : UnrollParts)
    S.unroll(U);
  return Plan;
}

TensorizePlan unit::buildGpuPlan(const ComputeOpRef &Op,
                                 const MatchResult &Match,
                                 const GpuTuningConfig &Config) {
  TensorizePlan Plan = reorganizeLoops(Op, Match);
  Schedule &S = *Plan.Sched;

  // --- Split-K: carve the outermost reduction loop into segments that
  // run concurrently on threadIdx (paper §III.C GPU tuning).
  std::vector<IterVar> ReduceLoops = Plan.OuterReduce;
  IterVar KSegments;
  if (Config.SplitK > 1 && !ReduceLoops.empty()) {
    IterVar K = ReduceLoops[0];
    int64_t Segments = std::min(Config.SplitK, K->extent());
    int64_t Factor = (K->extent() + Segments - 1) / Segments;
    auto [Seg, Rest] = S.split(K, Factor);
    KSegments = Seg;
    ReduceLoops[0] = Rest;
  }

  // --- p x p outer-product accumulation (Fig. 6): tile the two outermost
  // data-parallel loops by p; the tile loops stay unrolled in registers.
  std::vector<IterVar> BlockLoops = Plan.OuterDataParallel;
  std::vector<IterVar> UnrollParts;
  for (size_t I = 0; I < BlockLoops.size() && I < 2; ++I) {
    int64_t Factor = std::min(Config.P, BlockLoops[I]->extent());
    if (Factor <= 1)
      continue;
    auto [Outer, Inner] = S.split(BlockLoops[I], Factor);
    BlockLoops[I] = Outer;
    UnrollParts.push_back(Inner);
  }

  // --- Leaf order: blocks, split-K segments, serial reduction, unrolled
  // accumulator tiles, tensorized inner loops.
  std::vector<IterVar> Order = BlockLoops;
  if (KSegments)
    Order.push_back(KSegments);
  Order.insert(Order.end(), ReduceLoops.begin(), ReduceLoops.end());
  Order.insert(Order.end(), UnrollParts.begin(), UnrollParts.end());
  S.reorder(Order);

  if (!BlockLoops.empty())
    S.bind(BlockLoops[0], ForKind::GpuBlockX);
  if (BlockLoops.size() > 1)
    S.bind(BlockLoops[1], ForKind::GpuBlockY);
  if (KSegments)
    S.bind(KSegments, ForKind::GpuThreadX);
  for (const IterVar &U : UnrollParts)
    S.unroll(U);
  return Plan;
}

namespace {

/// Shared candidate search. Builds and scores every candidate — serially,
/// or concurrently on \p Pool — into an index-stable slot vector, then
/// picks the winner with a strict-less argmin over ascending indices: the
/// same "first minimal latency wins" rule the sequential loop applied, so
/// thread timing cannot change the result. Only stats are retained per
/// slot; the winning plan is rebuilt once at the end (plan construction
/// is deterministic), so peak memory stays one plan regardless of the
/// candidate count.
template <typename Candidate, typename BuildFn, typename LatencyFn>
TunedKernel searchCandidates(const std::vector<Candidate> &Candidates,
                             const BuildFn &Build, const LatencyFn &Latency,
                             ThreadPool *Pool) {
  struct Scored {
    KernelStats Stats;
    double LatencySeconds;
  };
  std::vector<Scored> Slots(Candidates.size());
  auto ScoreOne = [&](size_t I) {
    TensorizePlan Plan = Build(Candidates[I]);
    KernelStats Stats = analyzeTensorized(Plan);
    Slots[I] = Scored{Stats, Latency(Stats)};
  };
  if (Pool && Candidates.size() > 1)
    Pool->parallelFor(Candidates.size(), ScoreOne);
  else
    for (size_t I = 0; I < Candidates.size(); ++I)
      ScoreOne(I);

  TunedKernel Best;
  Best.LatencySeconds = 1e30;
  for (size_t I = 0; I < Slots.size(); ++I) {
    Best.CandidateLatencies.push_back(Slots[I].LatencySeconds);
    if (Slots[I].LatencySeconds < Best.LatencySeconds) {
      Best.LatencySeconds = Slots[I].LatencySeconds;
      Best.Stats = Slots[I].Stats;
      Best.BestCandidateIndex = static_cast<int>(I);
    }
  }
  if (Best.BestCandidateIndex >= 0)
    Best.Plan = Build(Candidates[static_cast<size_t>(Best.BestCandidateIndex)]);
  Best.CandidatesTried = static_cast<int>(Candidates.size());
  return Best;
}

template <typename Candidate>
void truncateCandidates(std::vector<Candidate> &Candidates,
                        int MaxCandidates) {
  if (MaxCandidates > 0 &&
      static_cast<size_t>(MaxCandidates) < Candidates.size())
    Candidates.resize(static_cast<size_t>(MaxCandidates));
}

} // namespace

namespace {
/// Process-wide count of tuner searches; lets tests assert that a
/// warm-from-disk session performs literally zero tuning.
std::atomic<uint64_t> TunerRuns{0};
} // namespace

uint64_t unit::tunerInvocations() { return TunerRuns.load(); }

TunedKernel unit::tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const CpuMachine &Machine, ThreadPool *Pool,
                          int MaxCandidates) {
  TunerRuns.fetch_add(1);
  std::vector<CpuTuningPair> Pairs = defaultCpuTuningPairs();
  truncateCandidates(Pairs, MaxCandidates);
  return searchCandidates(
      Pairs,
      [&](const CpuTuningPair &Pair) { return buildCpuPlan(Op, Match, Pair); },
      [&](const KernelStats &S) { return cpuLatencySeconds(S, Machine); },
      Pool);
}

TunedKernel unit::tuneCpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const CpuMachine &Machine, int MaxCandidates) {
  return tuneCpu(Op, Match, Machine, /*Pool=*/nullptr, MaxCandidates);
}

TunedKernel unit::tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const GpuMachine &Machine, ThreadPool *Pool,
                          int MaxCandidates) {
  TunerRuns.fetch_add(1);
  std::vector<GpuTuningConfig> Configs = defaultGpuTuningConfigs();
  truncateCandidates(Configs, MaxCandidates);
  return searchCandidates(
      Configs,
      [&](const GpuTuningConfig &Config) {
        return buildGpuPlan(Op, Match, Config);
      },
      [&](const KernelStats &S) { return gpuLatencySeconds(S, Machine); },
      Pool);
}

TunedKernel unit::tuneGpu(const ComputeOpRef &Op, const MatchResult &Match,
                          const GpuMachine &Machine, int MaxCandidates) {
  return tuneGpu(Op, Match, Machine, /*Pool=*/nullptr, MaxCandidates);
}

CpuAblation unit::cpuAblation(const ComputeOpRef &Op,
                              const MatchResult &Match,
                              const CpuMachine &Machine) {
  CpuAblation A;
  {
    TensorizePlan Plan = buildCpuPlan(Op, Match, {3000, 1});
    A.ParallelOnly = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  {
    TensorizePlan Plan = buildCpuPlan(Op, Match, {3000, 8});
    A.ParallelUnroll = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  A.Tuned = tuneCpu(Op, Match, Machine).LatencySeconds;
  return A;
}

GpuAblation unit::gpuAblation(const ComputeOpRef &Op,
                              const MatchResult &Match,
                              const GpuMachine &Machine) {
  GpuAblation A;
  {
    TensorizePlan Plan = buildGpuPlan(Op, Match, {2, 1});
    A.Generic = gpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  {
    // "Split the reduction dimension by 64": one segment per 64 reduction
    // elements, expressed as a segment count on the outer reduce loop.
    int64_t ReduceElems = 1;
    for (const IterVar &IV : Op->reduceAxes())
      ReduceElems *= IV->extent();
    int64_t Segments =
        std::clamp<int64_t>(ReduceElems / 64, 1, 64);
    TensorizePlan Plan = buildGpuPlan(Op, Match, {2, Segments});
    A.SplitK = gpuLatencySeconds(analyzeTensorized(Plan), Machine);
  }
  A.Tuned = tuneGpu(Op, Match, Machine).LatencySeconds;
  return A;
}
