//===- obs/Trace.h - Lock-free compile-lifecycle tracing ------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of src/obs/: a TraceRecorder holding one lock-free
/// ring buffer per writer thread (fixed byte budget, drop-oldest) and a
/// Span RAII handle that stamps causally linked events into it, so one
/// compile request yields a tree: request -> admission -> cache_resolve
/// -> compile -> {peer_fetch, codegen -> tuner_search, fulfill} ->
/// notification_write. Parent linkage is a thread-local "current span";
/// SpanContext carries it across threads (pool submits, continuation
/// joins) explicitly.
///
/// Concurrency contract: each ring is single-writer (its owning
/// thread), many-reader. Every slot is a tiny seqlock of
/// std::atomic<uint64_t> words — sequence stamped odd, payload words
/// stored, sequence published even — and snapshot() accepts a slot
/// only when the same even sequence brackets its copy, so the slot a
/// writer is overwriting is skipped rather than returned torn. No
/// locks on the hot path, clean under ThreadSanitizer.
///
/// Cost when idle: instrumentation sites construct a Span, whose
/// constructor is a single load of the process-wide active-recorder
/// pointer and an early-out when it is null.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_OBS_TRACE_H
#define UNIT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace unit {
namespace obs {

/// One completed span, fixed-size so ring slots are plain word arrays.
/// 136 bytes = 17 uint64 words (static_asserted in Trace.cpp).
struct TraceEvent {
  uint64_t SpanId = 0;
  uint64_t ParentId = 0;       ///< 0 = root.
  uint64_t StartMicros = 0;    ///< Recorder clock (monotonic by default).
  uint64_t DurationMicros = 0;
  uint32_t ThreadTag = 0;      ///< Small per-ring id, stable per thread.
  uint32_t Reserved = 0;
  char Name[24] = {};          ///< NUL-terminated, truncated.
  char Args[72] = {};          ///< "key=value key=value", truncated.
};

class TraceRecorder;

/// A (recorder, span-id) pair that survives a hop to another thread:
/// capture with currentSpan() or Span::context() on the submitting
/// thread, hand it to the pool task / continuation, and open the child
/// with Span(Name, Context) there.
struct SpanContext {
  TraceRecorder *Rec = nullptr;
  uint64_t Id = 0;
};

/// Per-thread ring buffers of TraceEvents under one fixed byte budget
/// per thread, oldest events overwritten first. The clock is injectable
/// (tests pin it); null means the monotonic steady clock.
class TraceRecorder {
public:
  using ClockFn = std::function<uint64_t()>;

  explicit TraceRecorder(size_t BytesPerThread = 256 * 1024,
                         ClockFn Clock = nullptr);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Current time on this recorder's clock, microseconds.
  uint64_t nowMicros() const;

  /// Process-unique nonzero span id.
  uint64_t nextSpanId();

  /// Appends \p Ev to the calling thread's ring (creating it on first
  /// use), stamping Ev.ThreadTag. Wait-free after the first call per
  /// thread.
  void record(TraceEvent Ev);

  /// Copies every live event out of every ring. Runs concurrently with
  /// writers; slots overwritten while being copied are dropped rather
  /// than returned torn.
  std::vector<TraceEvent> snapshot() const;

  /// Events each thread's ring can hold before dropping oldest.
  size_t slotsPerThread() const { return Slots; }

private:
  struct Ring;
  Ring &myRing();

  const size_t Slots;
  const ClockFn Clock;
  const uint64_t Epoch; ///< Distinguishes recorders across address reuse.
  std::atomic<uint64_t> NextId{1};
  mutable std::mutex RegMu; ///< Guards Rings (registration + snapshot).
  std::vector<std::unique_ptr<Ring>> Rings;
};

/// The recorder instrumentation sites write to, or null when tracing is
/// off. Installed by the server on start(); every Span constructor is a
/// single acquire load of this pointer when idle.
void setActiveRecorder(TraceRecorder *Rec);
TraceRecorder *activeRecorder();
/// Uninstalls \p Rec only if it is still the active recorder (two
/// servers in one process: the later install wins, the earlier stop
/// must not yank the newer recorder).
void clearActiveRecorder(TraceRecorder *Rec);

/// The calling thread's innermost open span (inert context when none).
SpanContext currentSpan();

/// RAII span: opens on construction, records one TraceEvent with the
/// measured duration on destruction. Scope-bound by design (no
/// copy/move) — a span that must outlive a scope is expressed by
/// passing its context() to the code that outlives it.
class Span {
public:
  /// Inert span (records nothing). Lets call sites declare
  /// conditionally opened spans.
  Span() = default;

  /// Opens a span on the active recorder, parented to the calling
  /// thread's current span. No-op when no recorder is active.
  explicit Span(const char *Name);

  /// Opens a span parented to \p Parent — the cross-thread form. Uses
  /// Parent's recorder so a tree stays on one recorder even if the
  /// active pointer changes mid-request; falls back to the active
  /// recorder (as a root) when Parent is inert.
  Span(const char *Name, const SpanContext &Parent);

  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Appends "Key=Value " to the event's bounded Args buffer; silently
  /// truncates when full.
  void annotate(const char *Key, uint64_t Value);
  void annotate(const char *Key, const char *Value);

  /// Context for parenting work spawned onto other threads.
  SpanContext context() const { return {Rec, Ev.SpanId}; }

  bool active() const { return Rec != nullptr; }

private:
  void open(TraceRecorder *R, const char *Name, uint64_t ParentId);

  TraceRecorder *Rec = nullptr;
  TraceEvent Ev;
  SpanContext Saved; ///< Thread-local current span to restore on close.
  size_t ArgsLen = 0;
};

} // namespace obs
} // namespace unit

#endif // UNIT_OBS_TRACE_H
