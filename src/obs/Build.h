//===- obs/Build.h - Build identification string --------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// The "build" string reported by the server's stats message: a version
// plus the git commit the binary was configured from, so a fleet
// operator can tell which daemons run which code.
//
//===----------------------------------------------------------------------===//

#ifndef UNIT_OBS_BUILD_H
#define UNIT_OBS_BUILD_H

#include <string>

namespace unit {
namespace obs {

/// "unit-<version>+<short-sha>", e.g. "unit-0.9+5133505"; the sha is
/// "unknown" when the tree was configured outside git.
std::string buildString();

} // namespace obs
} // namespace unit

#endif // UNIT_OBS_BUILD_H
