//===- obs/Build.cpp -------------------------------------------------------===//

#include "obs/Build.h"

#ifndef UNIT_GIT_SHA
#define UNIT_GIT_SHA "unknown"
#endif

#ifndef UNIT_VERSION
#define UNIT_VERSION "0.9"
#endif

std::string unit::obs::buildString() {
  return std::string("unit-") + UNIT_VERSION + "+" + UNIT_GIT_SHA;
}
