//===- obs/Trace.cpp -------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace unit;
using namespace unit::obs;

static_assert(sizeof(TraceEvent) % sizeof(uint64_t) == 0,
              "TraceEvent must be a whole number of words for ring slots");

namespace {

constexpr size_t WordsPerSlot = sizeof(TraceEvent) / sizeof(uint64_t);

uint64_t steadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<TraceRecorder *> ActiveRecorder{nullptr};
std::atomic<uint64_t> NextEpoch{1};

thread_local SpanContext CurrentSpanTls;

} // namespace

/// One thread's event ring: single writer (the owning thread), read by
/// snapshot(). Every slot is a per-slot seqlock — one sequence word
/// followed by the event payload, all atomic words so concurrent
/// read/write is data-race-free. Writing event number H stamps the
/// sequence odd (2H+1), stores the payload, then publishes even
/// (2H+2); a reader accepts a slot only when it observes the same even
/// sequence before and after copying, so the one slot a writer is
/// mid-overwrite on is skipped exactly, never returned torn. The
/// sequence is monotonic per slot (H advances by Slots per lap), so
/// there is no ABA. Head counts events ever written; only the writer
/// uses it.
struct TraceRecorder::Ring {
  Ring(size_t Slots, uint32_t Tag)
      : Tag(Tag), Words(Slots * (WordsPerSlot + 1)) {}

  const uint32_t Tag;
  std::atomic<uint64_t> Head{0};
  std::vector<std::atomic<uint64_t>> Words;
};

namespace {

/// Thread-local pointer to "my ring in the recorder I last used",
/// validated by (owner, epoch) so a stale cache after a recorder is
/// destroyed and another allocated at the same address never matches.
/// (void* because Ring is private to TraceRecorder; the only consumer
/// is myRing(), which casts it back.)
struct RingCache {
  const TraceRecorder *Owner = nullptr;
  uint64_t Epoch = 0;
  void *R = nullptr;
};
thread_local RingCache RingTls;

} // namespace

TraceRecorder::TraceRecorder(size_t BytesPerThread, ClockFn Clock)
    : Slots(std::max<size_t>(
          4, BytesPerThread / (sizeof(TraceEvent) + sizeof(uint64_t)))),
      Clock(std::move(Clock)),
      Epoch(NextEpoch.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

uint64_t TraceRecorder::nowMicros() const {
  return Clock ? Clock() : steadyMicros();
}

uint64_t TraceRecorder::nextSpanId() {
  return NextId.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::Ring &TraceRecorder::myRing() {
  if (RingTls.Owner == this && RingTls.Epoch == Epoch)
    return *static_cast<Ring *>(RingTls.R);
  std::lock_guard<std::mutex> Lock(RegMu);
  Rings.push_back(std::make_unique<Ring>(
      Slots, static_cast<uint32_t>(Rings.size() + 1)));
  RingTls = {this, Epoch, Rings.back().get()};
  return *static_cast<Ring *>(RingTls.R);
}

void TraceRecorder::record(TraceEvent Ev) {
  Ring &R = myRing();
  Ev.ThreadTag = R.Tag;
  uint64_t W[WordsPerSlot];
  std::memcpy(W, &Ev, sizeof(Ev));
  uint64_t H = R.Head.load(std::memory_order_relaxed);
  size_t Base = static_cast<size_t>(H % Slots) * (WordsPerSlot + 1);
  // Seqlock write: odd marks the slot in flux. The release fence orders
  // the odd store before the payload stores as other threads see them,
  // so a reader that observed any new payload word cannot then read the
  // old even sequence and accept a mixed slot.
  R.Words[Base].store(2 * H + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t I = 0; I < WordsPerSlot; ++I)
    R.Words[Base + 1 + I].store(W[I], std::memory_order_relaxed);
  // Even publish: a reader that sees 2H+2 sees every payload word of
  // event H.
  R.Words[Base].store(2 * H + 2, std::memory_order_release);
  R.Head.store(H + 1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> Out;
  std::lock_guard<std::mutex> Lock(RegMu);
  std::vector<std::pair<uint64_t, TraceEvent>> Got;
  for (const std::unique_ptr<Ring> &RP : Rings) {
    const Ring &R = *RP;
    Got.clear();
    for (size_t Slot = 0; Slot < Slots; ++Slot) {
      size_t Base = Slot * (WordsPerSlot + 1);
      uint64_t S1 = R.Words[Base].load(std::memory_order_acquire);
      if (S1 == 0 || (S1 & 1))
        continue; // Never written, or mid-overwrite right now.
      uint64_t W[WordsPerSlot];
      for (size_t I = 0; I < WordsPerSlot; ++I)
        W[I] = R.Words[Base + 1 + I].load(std::memory_order_relaxed);
      // Pairs with the writer's release fence: if any copied word came
      // from a newer in-progress write, this fence makes that write's
      // odd sequence (stored before it) visible to the re-check below.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (R.Words[Base].load(std::memory_order_relaxed) != S1)
        continue; // Overwritten while copying: discard, never tear.
      TraceEvent Ev;
      std::memcpy(&Ev, W, sizeof(Ev));
      Got.emplace_back(S1, Ev);
    }
    // Slot order is ring order; hand events back in write order.
    std::sort(Got.begin(), Got.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[Seq, Ev] : Got)
      Out.push_back(Ev);
  }
  return Out;
}

void obs::setActiveRecorder(TraceRecorder *Rec) {
  ActiveRecorder.store(Rec, std::memory_order_release);
}

TraceRecorder *obs::activeRecorder() {
  return ActiveRecorder.load(std::memory_order_acquire);
}

void obs::clearActiveRecorder(TraceRecorder *Rec) {
  TraceRecorder *Expected = Rec;
  ActiveRecorder.compare_exchange_strong(Expected, nullptr,
                                         std::memory_order_acq_rel);
}

SpanContext obs::currentSpan() { return CurrentSpanTls; }

Span::Span(const char *Name) {
  TraceRecorder *R = activeRecorder();
  if (!R)
    return;
  open(R, Name, CurrentSpanTls.Rec == R ? CurrentSpanTls.Id : 0);
}

Span::Span(const char *Name, const SpanContext &Parent) {
  TraceRecorder *R = Parent.Rec ? Parent.Rec : activeRecorder();
  if (!R)
    return;
  open(R, Name, Parent.Rec == R ? Parent.Id : 0);
}

void Span::open(TraceRecorder *R, const char *Name, uint64_t ParentId) {
  Rec = R;
  Ev.SpanId = R->nextSpanId();
  Ev.ParentId = ParentId;
  Ev.StartMicros = R->nowMicros();
  std::strncpy(Ev.Name, Name, sizeof(Ev.Name) - 1);
  Saved = CurrentSpanTls;
  CurrentSpanTls = {Rec, Ev.SpanId};
}

Span::~Span() {
  if (!Rec)
    return;
  CurrentSpanTls = Saved;
  uint64_t End = Rec->nowMicros();
  Ev.DurationMicros = End > Ev.StartMicros ? End - Ev.StartMicros : 0;
  Rec->record(Ev);
}

void Span::annotate(const char *Key, uint64_t Value) {
  // Hand-rolled digits: annotate runs on compile hot paths where a
  // snprintf per call is measurable against sub-30us warm tickets.
  char Buf[24];
  char *P = Buf + sizeof(Buf) - 1;
  *P = '\0';
  do {
    *--P = static_cast<char>('0' + Value % 10);
    Value /= 10;
  } while (Value);
  annotate(Key, P);
}

void Span::annotate(const char *Key, const char *Value) {
  if (!Rec)
    return;
  char *Dst = Ev.Args + ArgsLen;
  size_t Room = sizeof(Ev.Args) - 1 - ArgsLen;
  auto Put = [&](const char *S, size_t N) {
    N = std::min(N, Room);
    std::memcpy(Dst, S, N);
    Dst += N;
    Room -= N;
  };
  if (ArgsLen)
    Put(" ", 1);
  Put(Key, std::strlen(Key));
  Put("=", 1);
  Put(Value, std::strlen(Value));
  *Dst = '\0';
  ArgsLen = static_cast<size_t>(Dst - Ev.Args);
}

