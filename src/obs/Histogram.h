//===- obs/Histogram.h - Fixed log-bucket latency histograms --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of src/obs/: a fixed-size log2-bucketed latency
/// histogram whose hot path is a handful of relaxed atomic adds — no
/// allocation, no locks — so it can sit on every compile/frame/fetch
/// path of the server unconditionally. Reads produce a plain
/// HistogramSnapshot that merges with others (fleet aggregation) and
/// estimates quantiles (p50/p95/p99) by linear interpolation inside the
/// containing bucket.
///
/// Bucket layout: bucket B (B < OverflowBucket) holds samples whose
/// value is <= 2^B microseconds (bucket 0: <= 1us); the last bucket is
/// the +Inf overflow. 36 powers of two reach ~9.5 hours — far beyond
/// any compile — so the overflow bucket is effectively "clock bug".
/// The boundaries are compile-time constants, which is what makes
/// snapshots mergeable without negotiating a schema.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_OBS_HISTOGRAM_H
#define UNIT_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>

namespace unit {
namespace obs {

/// Read-side value of a LatencyHistogram: plain counts, mergeable and
/// serializable (the server's `metrics` message is built from these).
struct HistogramSnapshot {
  static constexpr int BucketCount = 37;
  static constexpr int OverflowBucket = BucketCount - 1;

  uint64_t Buckets[BucketCount] = {}; ///< Per-bucket counts (not cumulative).
  uint64_t Count = 0;                 ///< Sum of Buckets.
  double SumSeconds = 0;              ///< Sum of recorded values.

  /// Upper bound of bucket \p B in seconds; +infinity for the overflow
  /// bucket. Lower bound of bucket B is upperBoundSeconds(B - 1) (0 for
  /// bucket 0).
  static double upperBoundSeconds(int B);

  /// Adds \p Other's counts into this snapshot (histograms with fixed
  /// shared boundaries merge exactly).
  void merge(const HistogramSnapshot &Other);

  /// Estimated value at quantile \p Q in [0, 1]: the rank's bucket is
  /// found from cumulative counts and the value interpolated linearly
  /// between the bucket's bounds. Exact to within one bucket's width;
  /// 0 when the histogram is empty. The overflow bucket reports its
  /// lower bound (there is no upper edge to interpolate toward).
  double quantile(double Q) const;
};

/// Write-side histogram: fixed atomic buckets, safe for any number of
/// concurrent recorders. record() is wait-free (three relaxed
/// fetch_adds); snapshot() may run concurrently and sees a
/// close-to-consistent view (counts are derived from the buckets
/// themselves, so Count always equals the bucket sum).
class LatencyHistogram {
public:
  static constexpr int BucketCount = HistogramSnapshot::BucketCount;

  void record(double Seconds);
  HistogramSnapshot snapshot() const;

private:
  std::atomic<uint64_t> Buckets[BucketCount] = {};
  /// Nanoseconds, not a double: fetch_add on an integer is the only
  /// portable lock-free accumulation, and 2^64 ns is ~584 years.
  std::atomic<uint64_t> SumNanos{0};
};

} // namespace obs
} // namespace unit

#endif // UNIT_OBS_HISTOGRAM_H
