//===- obs/Histogram.cpp ---------------------------------------------------===//

#include "obs/Histogram.h"

#include <cmath>
#include <limits>

using namespace unit;
using namespace unit::obs;

namespace {

/// Bucket index for a sample of \p Seconds: smallest B with
/// value <= 2^B microseconds, clamped into the overflow bucket.
int bucketFor(double Seconds) {
  if (!(Seconds > 0))
    return 0; // Zero, negative, or NaN: the smallest bucket.
  double Micros = Seconds * 1e6;
  if (Micros <= 1.0)
    return 0;
  // ceil(log2(Micros)) via the bit width of ceil(Micros) - 1; doubles
  // above the overflow boundary (2^36 us) are clamped first so the
  // uint64 cast is always in range.
  if (Micros >= static_cast<double>(uint64_t(1)
                                    << HistogramSnapshot::OverflowBucket))
    return HistogramSnapshot::OverflowBucket;
  uint64_t M = static_cast<uint64_t>(std::ceil(Micros));
  int B = 64 - __builtin_clzll(M - 1);
  return B < HistogramSnapshot::OverflowBucket
             ? B
             : HistogramSnapshot::OverflowBucket;
}

} // namespace

double HistogramSnapshot::upperBoundSeconds(int B) {
  if (B < 0)
    return 0;
  if (B >= OverflowBucket)
    return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t(1) << B) * 1e-6;
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  for (int B = 0; B < BucketCount; ++B)
    Buckets[B] += Other.Buckets[B];
  Count += Other.Count;
  SumSeconds += Other.SumSeconds;
}

double HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // 1-based rank of the requested order statistic.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * Count));
  if (Rank == 0)
    Rank = 1;
  uint64_t Cumulative = 0;
  for (int B = 0; B < BucketCount; ++B) {
    if (Buckets[B] == 0)
      continue;
    uint64_t Before = Cumulative;
    Cumulative += Buckets[B];
    if (Rank > Cumulative)
      continue;
    double Lo = upperBoundSeconds(B - 1);
    if (B == OverflowBucket)
      return Lo; // No finite upper edge to interpolate toward.
    double Hi = upperBoundSeconds(B);
    // Linear position of the rank inside this bucket's count.
    double Frac = static_cast<double>(Rank - Before) /
                  static_cast<double>(Buckets[B]);
    return Lo + (Hi - Lo) * Frac;
  }
  return upperBoundSeconds(OverflowBucket - 1); // Unreachable when Count > 0.
}

void LatencyHistogram::record(double Seconds) {
  Buckets[bucketFor(Seconds)].fetch_add(1, std::memory_order_relaxed);
  double Nanos = Seconds > 0 ? Seconds * 1e9 : 0;
  SumNanos.fetch_add(static_cast<uint64_t>(Nanos), std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot S;
  for (int B = 0; B < BucketCount; ++B) {
    S.Buckets[B] = Buckets[B].load(std::memory_order_relaxed);
    S.Count += S.Buckets[B];
  }
  S.SumSeconds =
      static_cast<double>(SumNanos.load(std::memory_order_relaxed)) * 1e-9;
  return S;
}
