//===- runtime/KernelCache.cpp ---------------------------------------------===//

#include "runtime/KernelCache.h"

#include <chrono>

using namespace unit;

KernelReport KernelCache::getOrCompute(const std::string &Key,
                                       const Compiler &Compile) {
  std::shared_future<KernelReport> Fut;
  std::promise<KernelReport> Mine;
  bool Winner = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It == Entries.end()) {
      Fut = Mine.get_future().share();
      Entries.emplace(Key, Fut);
      Winner = true;
    } else {
      Fut = It->second;
    }
  }
  if (!Winner) {
    Hits.fetch_add(1);
    return Fut.get();
  }
  Misses.fetch_add(1);
  // The library itself aborts rather than throws, but user-registered
  // backends (and std::bad_alloc) can still unwind through here. Without
  // this handler the unfulfilled promise would poison the key forever
  // (every later lookup getting broken_promise); instead, evict the
  // entry so the key can be retried and propagate the error to waiters.
  try {
    KernelReport Report = Compile();
    Mine.set_value(Report);
    return Report;
  } catch (...) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Entries.erase(Key);
    }
    Mine.set_exception(std::current_exception());
    throw;
  }
}

std::optional<KernelReport>
KernelCache::lookup(const std::string &Key) const {
  std::shared_future<KernelReport> Fut;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It == Entries.end())
      return std::nullopt;
    Fut = It->second;
  }
  if (Fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
    return std::nullopt;
  return Fut.get();
}

bool KernelCache::contains(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.count(Key) != 0;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
}

KernelCache::CacheStats KernelCache::stats() const {
  return {Hits.load(), Misses.load()};
}
