//===- runtime/KernelCache.cpp ---------------------------------------------===//

#include "runtime/KernelCache.h"

#include "support/StringUtils.h"
#include "support/Time.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

using namespace unit;

namespace {

bool isReady(const std::shared_future<KernelReport> &Fut) {
  return Fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

std::shared_future<KernelReport> readyFuture(const KernelReport &Report) {
  std::promise<KernelReport> P;
  P.set_value(Report);
  return P.get_future().share();
}

} // namespace

void KernelCache::touchLocked(const Entry &E) const {
  if (E.LruIt != Lru.begin())
    Lru.splice(Lru.begin(), Lru, E.LruIt);
}

void KernelCache::accountLocked(const std::string &Key, Entry &E) {
  size_t Now = entryBytesLocked(Key, E);
  BytesResident += Now - E.AccountedBytes;
  E.AccountedBytes = Now;
  // The TTL is measured from readiness, not insertion: an in-flight entry
  // has no report to go stale, and the winner re-accounts on completion,
  // which is exactly the moment the report starts aging.
  if (E.ReadyAt < 0 && isReady(E.Fut))
    E.ReadyAt = nowLocked();
}

double KernelCache::nowLocked() const {
  return Clock ? Clock() : steadyNowSeconds();
}

bool KernelCache::expiredLocked(const Entry &E) const {
  return TTLSeconds > 0 && E.ReadyAt >= 0 &&
         nowLocked() - E.ReadyAt > TTLSeconds;
}

void KernelCache::setTTL(double Seconds, ClockFn ClockIn) {
  std::lock_guard<std::mutex> Lock(Mu);
  TTLSeconds = Seconds;
  if (ClockIn)
    Clock = std::move(ClockIn);
}

double KernelCache::ttlSeconds() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TTLSeconds;
}

size_t KernelCache::purgeExpired() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (TTLSeconds <= 0)
    return 0;
  // One clock reading for the whole sweep (the clock may be a caller-
  // supplied std::function). Erase bookkeeping is inlined like
  // enforceCapacityLocked's: eraseLocked would re-find by key and
  // invalidate the iterator.
  double Now = nowLocked();
  size_t Dropped = 0;
  for (auto It = Entries.begin(); It != Entries.end();) {
    const Entry &E = It->second;
    if (E.ReadyAt >= 0 && Now - E.ReadyAt > TTLSeconds) {
      BytesResident -= E.AccountedBytes;
      Lru.erase(E.LruIt);
      It = Entries.erase(It);
      ++Dropped;
    } else {
      ++It;
    }
  }
  return Dropped;
}

KernelCache::Entry &
KernelCache::insertLocked(const std::string &Key,
                          std::shared_future<KernelReport> Fut) {
  Lru.push_front(Key);
  Entry &E = Entries[Key];
  E.Fut = std::move(Fut);
  E.LruIt = Lru.begin();
  accountLocked(Key, E);
  return E;
}

void KernelCache::eraseLocked(const std::string &Key) {
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return;
  BytesResident -= It->second.AccountedBytes;
  Lru.erase(It->second.LruIt);
  Entries.erase(It);
}

void KernelCache::enforceCapacityLocked() {
  // Both caps read O(1) state: entry count, and the incrementally
  // maintained BytesResident — no per-insert walk over the cache.
  auto Over = [this] {
    return (MaxEntries != 0 && Entries.size() > MaxEntries) ||
           (MaxBytes != 0 && BytesResident > MaxBytes);
  };
  if (!Over())
    return;
  // Walk from the cold end; in-flight compiles are skipped — evicting one
  // would break the single-flight guarantee for its waiters' key.
  auto It = Lru.end();
  while (Over() && It != Lru.begin()) {
    --It;
    auto MapIt = Entries.find(*It);
    if (MapIt == Entries.end() || !isReady(MapIt->second.Fut))
      continue;
    BytesResident -= MapIt->second.AccountedBytes;
    It = Lru.erase(It);
    Entries.erase(MapIt);
    Evictions.fetch_add(1);
  }
}

KernelCache::ResolveKind
KernelCache::resolveThen(const std::string &Key, Waiter OnDone,
                         std::shared_future<KernelReport> *FutOut,
                         ComputeTicket *Ticket) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  // An expired entry is a miss that still holds the slot: drop it so
  // this caller becomes the winner of a fresh compile.
  if (It != Entries.end() && expiredLocked(It->second)) {
    eraseLocked(Key);
    It = Entries.end();
  }
  if (It == Entries.end()) {
    auto Promise = std::make_shared<std::promise<KernelReport>>();
    Entry &E = insertLocked(Key, Promise->get_future().share());
    E.Waiters = std::make_shared<std::vector<Waiter>>();
    if (FutOut)
      *FutOut = E.Fut;
    if (Ticket) {
      Ticket->Promise = std::move(Promise);
      Ticket->Waiters = E.Waiters;
    }
    Misses.fetch_add(1);
    return ResolveKind::MustCompute;
  }
  Entry &E = It->second;
  touchLocked(E);
  Hits.fetch_add(1);
  if (FutOut)
    *FutOut = E.Fut;
  if (isReady(E.Fut))
    return ResolveKind::Ready;
  if (OnDone) {
    // In-flight entries always carry a waiter list (allocated above); the
    // defensive branch covers a hand-seeded entry only.
    if (!E.Waiters)
      E.Waiters = std::make_shared<std::vector<Waiter>>();
    E.Waiters->push_back(std::move(OnDone));
  }
  return ResolveKind::Joined;
}

void KernelCache::fulfill(const std::string &Key, ComputeTicket &Ticket,
                          const KernelReport &Report) {
  // Ready the future first: a resolveThen racing past this point sees
  // Ready and never registers a waiter we could miss — registration and
  // the drain-swap below are both serialized by Mu.
  Ticket.Promise->set_value(Report);
  std::vector<Waiter> ToFire;
  {
    // Capacity is enforced only once the winner is ready: the new entry
    // sits at the LRU front, so eviction hits the coldest ready keys.
    // Re-account it first — readiness grew it by the intrinsic name. The
    // waiter list is the entry's identity: insert()/clear() may have
    // displaced the slot mid-compile, in which case the usurper's
    // accounting (and waiter list) are its own and stay untouched.
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It != Entries.end() && It->second.Waiters == Ticket.Waiters) {
      accountLocked(Key, It->second);
      It->second.Waiters.reset();
    }
    enforceCapacityLocked();
    ToFire.swap(*Ticket.Waiters);
  }
  for (Waiter &W : ToFire)
    W(&Report, nullptr);
  Ticket.Promise.reset();
  Ticket.Waiters.reset();
}

void KernelCache::fail(const std::string &Key, ComputeTicket &Ticket,
                       std::exception_ptr Error) {
  std::vector<Waiter> ToFire;
  {
    // Evict before publishing the error so the key is immediately
    // retryable — an unfulfilled or failed promise must never poison the
    // slot. Identity-checked like fulfill(): if insert() replaced the
    // entry mid-compile, the usurper survives our failure. Swapping the
    // waiter list under the same lock means no joiner can slip in after
    // the erase (post-erase resolvers become fresh winners instead).
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It != Entries.end() && It->second.Waiters == Ticket.Waiters)
      eraseLocked(Key);
    ToFire.swap(*Ticket.Waiters);
  }
  Ticket.Promise->set_exception(Error);
  for (Waiter &W : ToFire)
    W(nullptr, Error);
  Ticket.Promise.reset();
  Ticket.Waiters.reset();
}

KernelReport KernelCache::getOrCompute(const std::string &Key,
                                       const Compiler &Compile,
                                       bool *ComputedHere) {
  std::shared_future<KernelReport> Fut;
  ComputeTicket Ticket;
  ResolveKind Kind = resolveThen(Key, /*OnDone=*/nullptr, &Fut, &Ticket);
  if (ComputedHere)
    *ComputedHere = Kind == ResolveKind::MustCompute;
  // Ready hits return immediately; joiners park this caller-owned thread
  // on the winner's future (the non-blocking alternative is resolveThen).
  if (Kind != ResolveKind::MustCompute)
    return Fut.get();
  // The library itself aborts rather than throws, but user-registered
  // backends (and std::bad_alloc) can still unwind through here. fail()
  // evicts the entry so the key can be retried and propagates the error
  // to every waiter; without it the unfulfilled promise would poison the
  // key forever (every later lookup getting broken_promise).
  try {
    KernelReport Report = Compile();
    fulfill(Key, Ticket, Report);
    return Report;
  } catch (...) {
    fail(Key, Ticket, std::current_exception());
    throw;
  }
}

std::optional<KernelReport>
KernelCache::lookup(const std::string &Key) const {
  std::shared_future<KernelReport> Fut;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It == Entries.end() || expiredLocked(It->second))
      return std::nullopt;
    Fut = It->second.Fut;
    touchLocked(It->second);
  }
  if (!isReady(Fut))
    return std::nullopt;
  return Fut.get();
}

std::optional<std::shared_future<KernelReport>>
KernelCache::peek(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end() || expiredLocked(It->second))
    return std::nullopt;
  touchLocked(It->second);
  // Joining an entry (ready or in flight) is a served request, same as a
  // getOrCompute hit — async fast-path joins must show up in the stats.
  Hits.fetch_add(1);
  return It->second.Fut;
}

void KernelCache::insert(const std::string &Key, const KernelReport &Report) {
  std::shared_future<KernelReport> Fut = readyFuture(Report);
  std::lock_guard<std::mutex> Lock(Mu);
  eraseLocked(Key);
  insertLocked(Key, std::move(Fut));
  enforceCapacityLocked();
}

void KernelCache::erase(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  eraseLocked(Key);
}

void KernelCache::eraseReady(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end() || !isReady(It->second.Fut))
    return;
  BytesResident -= It->second.AccountedBytes;
  Lru.erase(It->second.LruIt);
  Entries.erase(It);
}

bool KernelCache::contains(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  return It != Entries.end() && !expiredLocked(It->second);
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
  Lru.clear();
  BytesResident = 0;
}

void KernelCache::setCapacity(size_t NewMaxEntries) {
  std::lock_guard<std::mutex> Lock(Mu);
  MaxEntries = NewMaxEntries;
  enforceCapacityLocked();
}

size_t KernelCache::capacity() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return MaxEntries;
}

void KernelCache::setByteCapacity(size_t NewMaxBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  MaxBytes = NewMaxBytes;
  enforceCapacityLocked();
}

size_t KernelCache::byteCapacity() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return MaxBytes;
}

KernelCache::CacheStats KernelCache::stats() const {
  CacheStats S;
  S.Hits = Hits.load();
  S.Misses = Misses.load();
  S.Evictions = Evictions.load();
  std::lock_guard<std::mutex> Lock(Mu);
  S.Entries = Entries.size();
  for (const auto &KV : Entries)
    S.BytesUsed += entryBytesLocked(KV.first, KV.second);
  return S;
}

size_t KernelCache::entryBytesLocked(const std::string &Key,
                                     const Entry &E) const {
  // The key is resident twice — once as the hash-map key, once as the LRU
  // list node — and a ready report owns its intrinsic-name string. The
  // fixed part approximates the map node, the LRU node links, and the
  // future's shared state.
  size_t Bytes = 2 * Key.size() + sizeof(Entry) + sizeof(KernelReport) +
                 3 * sizeof(void *);
  if (isReady(E.Fut))
    Bytes += E.Fut.get().IntrinsicName.size();
  return Bytes;
}

size_t KernelCache::bytesUsed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Total = 0;
  for (const auto &KV : Entries)
    Total += entryBytesLocked(KV.first, KV.second);
  return Total;
}

std::vector<KernelCache::EntrySize>
KernelCache::entrySizes(size_t MaxKeyBytes) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<EntrySize> Sizes;
  Sizes.reserve(Entries.size());
  for (const std::string &Key : Lru) {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      continue;
    EntrySize S;
    S.Key = MaxKeyBytes > 0 ? Key.substr(0, MaxKeyBytes) : Key;
    S.Bytes = entryBytesLocked(Key, It->second);
    S.Ready = isReady(It->second.Fut);
    Sizes.push_back(std::move(S));
  }
  return Sizes;
}

//===----------------------------------------------------------------------===//
// Fleet exchange: per-entry export / import
//===----------------------------------------------------------------------===//

std::vector<KernelCache::ExportedEntry>
KernelCache::exportReady(size_t MaxBytes,
                         const std::vector<std::string> *Keys) const {
  // Approximate wire cost per entry: the key and intrinsic name dominate;
  // the constant covers JSON framing and the numeric fields.
  auto WireBytes = [](const std::string &Key, const KernelReport &R) {
    return Key.size() + R.IntrinsicName.size() + 128;
  };
  std::vector<ExportedEntry> Out;
  size_t Budget = 0;
  std::lock_guard<std::mutex> Lock(Mu);
  auto TakeLocked = [&](const std::string &Key) {
    auto It = Entries.find(Key);
    if (It == Entries.end() || !isReady(It->second.Fut) ||
        expiredLocked(It->second))
      return true;
    KernelReport R = It->second.Fut.get();
    size_t Cost = WireBytes(Key, R);
    if (MaxBytes != 0 && Budget + Cost > MaxBytes)
      return false; // Budget exhausted — stop the walk.
    Budget += Cost;
    Out.push_back({Key, std::move(R)});
    return true;
  };
  if (Keys) {
    for (const std::string &Key : *Keys)
      if (!TakeLocked(Key))
        break;
  } else {
    // LRU front first: under a byte cap the hottest entries make the cut.
    for (const std::string &Key : Lru)
      if (!TakeLocked(Key))
        break;
  }
  return Out;
}

size_t KernelCache::importReady(const std::vector<ExportedEntry> &NewEntries) {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Inserted = 0;
  for (const ExportedEntry &E : NewEntries) {
    if (E.Key.empty() || Entries.count(E.Key))
      continue; // Live (possibly in-flight) entries win over the peer's.
    insertLocked(E.Key, readyFuture(E.Report));
    ++Inserted;
  }
  enforceCapacityLocked();
  return Inserted;
}

//===----------------------------------------------------------------------===//
// Disk persistence
//===----------------------------------------------------------------------===//
//
// Text format, length-prefixed so keys and intrinsic names may contain any
// byte but '\n'-framing stays parseable:
//
//   UNITKC 1
//   fingerprint <len>
//   <fingerprint bytes>
//   entries <count>
//   entry <keylen> <intrlen> <tensorized> <bestidx> <tried> <seconds %a>
//   <key bytes>
//   <intrinsic bytes>
//   ... (repeated)
//
// Doubles round-trip exactly via hex-float (%a) formatting.

static const char *KernelCacheMagic = "UNITKC 1";

size_t KernelCache::save(std::ostream &Out,
                         const std::string &Fingerprint) const {
  // Snapshot under the lock, write outside it.
  std::vector<std::pair<std::string, KernelReport>> Ready;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Ready.reserve(Entries.size());
    for (const std::string &Key : Lru) {
      auto It = Entries.find(Key);
      if (It == Entries.end() || !isReady(It->second.Fut) ||
          expiredLocked(It->second))
        continue;
      Ready.emplace_back(Key, It->second.Fut.get());
    }
  }
  Out << KernelCacheMagic << "\n";
  Out << "fingerprint " << Fingerprint.size() << "\n" << Fingerprint << "\n";
  Out << "entries " << Ready.size() << "\n";
  for (const auto &KV : Ready) {
    const KernelReport &R = KV.second;
    Out << "entry " << KV.first.size() << " " << R.IntrinsicName.size() << " "
        << (R.Tensorized ? 1 : 0) << " " << R.BestCandidateIndex << " "
        << R.CandidatesTried << " " << formatStr("%a", R.Seconds) << "\n";
    Out << KV.first << "\n";
    Out << R.IntrinsicName << "\n";
  }
  return Ready.size();
}

namespace {

/// Upper bounds on file-supplied sizes. A corrupted length or count field
/// must surface as BadFormat, never as a std::length_error / bad_alloc
/// escaping the documented no-throw LoadResult contract.
constexpr size_t MaxFramedBytes = 1u << 20;  ///< Per string (keys are ~KB).
constexpr size_t MaxLoadEntries = 1u << 22;  ///< Per file.

/// Reads exactly \p Len bytes followed by a '\n' frame terminator.
bool readFramed(std::istream &In, size_t Len, std::string &Out) {
  if (Len > MaxFramedBytes)
    return false;
  Out.resize(Len);
  if (Len > 0 && !In.read(&Out[0], static_cast<std::streamsize>(Len)))
    return false;
  return In.get() == '\n';
}

} // namespace

KernelCache::LoadResult KernelCache::load(std::istream &In,
                                          const std::string &Fingerprint) {
  LoadResult Result;
  std::string Line;
  if (!std::getline(In, Line) || Line != KernelCacheMagic)
    return Result; // BadFormat

  std::string Tag;
  size_t FpLen = 0;
  if (!(In >> Tag >> FpLen) || Tag != "fingerprint" || In.get() != '\n')
    return Result;
  std::string FileFingerprint;
  if (!readFramed(In, FpLen, FileFingerprint))
    return Result;
  if (FileFingerprint != Fingerprint) {
    Result.Status = LoadStatus::FingerprintMismatch;
    return Result;
  }

  size_t Count = 0;
  if (!(In >> Tag >> Count) || Tag != "entries" || In.get() != '\n' ||
      Count > MaxLoadEntries)
    return Result;

  // All-or-nothing: parse everything before touching the cache. The
  // reservation is capped — Count is untrusted until the entries parse.
  std::vector<std::pair<std::string, KernelReport>> Parsed;
  Parsed.reserve(std::min<size_t>(Count, 4096));
  for (size_t I = 0; I < Count; ++I) {
    size_t KeyLen = 0, IntrLen = 0;
    int Tensorized = 0;
    KernelReport R;
    std::string SecondsTok;
    if (!(In >> Tag >> KeyLen >> IntrLen >> Tensorized >>
          R.BestCandidateIndex >> R.CandidatesTried >> SecondsTok) ||
        Tag != "entry" || In.get() != '\n')
      return Result;
    char *End = nullptr;
    R.Seconds = std::strtod(SecondsTok.c_str(), &End);
    if (End == SecondsTok.c_str() || *End != '\0')
      return Result;
    R.Tensorized = Tensorized != 0;
    std::string Key;
    if (!readFramed(In, KeyLen, Key) ||
        !readFramed(In, IntrLen, R.IntrinsicName))
      return Result;
    Parsed.emplace_back(std::move(Key), std::move(R));
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    // File order is hottest-first; walking it forward keeps that recency
    // order in the rebuilt LRU list (each insert lands at the front, so
    // later == colder... hence iterate coldest-first).
    for (auto It = Parsed.rbegin(); It != Parsed.rend(); ++It) {
      if (Entries.count(It->first))
        continue; // Live (possibly in-flight) entries win over disk.
      insertLocked(It->first, readyFuture(It->second));
      ++Result.EntriesLoaded;
    }
    enforceCapacityLocked();
  }
  Result.Status = LoadStatus::Loaded;
  return Result;
}

std::optional<size_t>
KernelCache::saveFile(const std::string &Path,
                      const std::string &Fingerprint) const {
  // Write-then-rename: a crash (or a concurrent reader) mid-save must
  // never leave a truncated file at Path — the all-or-nothing loader
  // would reject it and silently cost the next run its warm start. The
  // temp name is unique per process *and* per call (the cache is
  // documented thread-safe, so two threads may save one path
  // concurrently) — writers can never interleave into one temp and
  // rename garbage into place; the last completed rename wins and every
  // published snapshot is internally consistent.
  static std::atomic<uint64_t> SaveSerial{0};
  const std::string TmpPath = Path + ".tmp." + std::to_string(::getpid()) +
                              "." + std::to_string(SaveSerial.fetch_add(1));

  // Serialize to memory first, then write through a raw fd so the temp
  // file can be fsync'd *before* the rename — rename is atomic in the
  // namespace but says nothing about data blocks; without the fsync a
  // power cut shortly after publishing could leave Path pointing at a
  // zero-length or torn file. (ofstream has no portable way to sync.)
  std::ostringstream Buffer;
  size_t N = save(Buffer, Fingerprint);
  const std::string Bytes = Buffer.str();

  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return std::nullopt;
  size_t Written = 0;
  bool Ok = true;
  while (Ok && Written < Bytes.size()) {
    ssize_t W = ::write(Fd, Bytes.data() + Written, Bytes.size() - Written);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Ok = false;
    } else {
      Written += static_cast<size_t>(W);
    }
  }
  Ok = Ok && ::fsync(Fd) == 0;
  Ok = ::close(Fd) == 0 && Ok;
  if (!Ok || std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return std::nullopt;
  }

  // Make the rename itself durable: sync the containing directory, best
  // effort (a read-only or unsupported-directory fsync must not turn a
  // published save into a reported failure).
  size_t Slash = Path.find_last_of('/');
  const std::string Dir = Slash == std::string::npos
                              ? std::string(".")
                              : Path.substr(0, Slash == 0 ? 1 : Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return N;
}

void KernelCache::removeStaleSaves(const std::string &Path) {
  std::string Dir = ".", Base = Path;
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos) {
    Dir = Path.substr(0, Slash);
    Base = Path.substr(Slash + 1);
  }
  const std::string Prefix = Base + ".tmp.";
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return;
  while (dirent *E = ::readdir(D))
    if (std::strncmp(E->d_name, Prefix.c_str(), Prefix.size()) == 0)
      ::unlink((Dir + "/" + E->d_name).c_str());
  ::closedir(D);
}

KernelCache::LoadResult
KernelCache::loadFile(const std::string &Path,
                      const std::string &Fingerprint) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    LoadResult R;
    R.Status = LoadStatus::FileNotFound;
    return R;
  }
  return load(In, Fingerprint);
}
