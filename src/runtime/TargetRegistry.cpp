//===- runtime/TargetRegistry.cpp ------------------------------------------===//

#include "runtime/TargetRegistry.h"

#include "core/Inspector.h"
#include "core/Isomorphism.h"
#include "graph/Executor.h"
#include "graph/Layout.h"
#include "perf/CostModel.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"
#include "tuner/Tuner.h"

#include <algorithm>

using namespace unit;

TargetBackend::~TargetBackend() = default;

std::vector<TensorIntrinsicRef> TargetBackend::intrinsics() const {
  return IntrinsicRegistry::instance().forTarget(kind());
}

std::string TargetBackend::conv3dKey(const Conv3dLayer &) const {
  reportFatalError(std::string(targetName(kind())) +
                   " backend does not support conv3d workloads");
}

KernelReport TargetBackend::compileConv3d(const Conv3dLayer &, ThreadPool *,
                                          const CompileOptions &) const {
  reportFatalError(std::string(targetName(kind())) +
                   " backend does not support conv3d workloads");
}

namespace {

/// First applicable instruction from \p Intrs against \p Op.
std::optional<MatchResult>
firstMatch(const ComputeOpRef &Op,
           const std::vector<TensorIntrinsicRef> &Intrs) {
  for (const TensorIntrinsicRef &Intr : Intrs)
    if (std::optional<MatchResult> M = inspect(Op, Intr))
      return M;
  return std::nullopt;
}

KernelReport reportFromTuned(const TunedKernel &Tuned,
                             const std::string &IntrName) {
  KernelReport R;
  R.Seconds = Tuned.LatencySeconds;
  R.Tensorized = true;
  R.BestCandidateIndex = Tuned.BestCandidateIndex;
  R.CandidatesTried = Tuned.CandidatesTried;
  R.IntrinsicName = IntrName;
  return R;
}

int64_t dataParallelExtent(const ComputeOpRef &Op) {
  int64_t Extent = 1;
  for (const IterVar &IV : Op->axes())
    Extent *= IV->extent();
  return Extent;
}

} // namespace

//===----------------------------------------------------------------------===//
// CpuBackend
//===----------------------------------------------------------------------===//

CpuBackend::CpuBackend(CpuMachine MachineIn, TargetKind TargetIn)
    : Machine(std::move(MachineIn)), Target(TargetIn),
      Scheme(quantSchemeFor(TargetIn)) {
  if (TargetIn == TargetKind::NvidiaGPU)
    reportFatalError("CpuBackend cannot serve the GPU target");
  // Full parameter fingerprint, not just the name: two machines sharing
  // a label but differing in any latency-relevant knob must never share
  // cached reports.
  Salt = std::string(targetName(Target)) + "|" + Machine.cacheFingerprint();
}

std::string CpuBackend::cacheSalt() const { return Salt; }

std::string CpuBackend::convKey(const ConvLayer &Layer) const {
  if (Layer.Depthwise)
    return cacheSalt() + "|dw|" + Layer.shapeKey();
  std::string Shape = Layer.shapeKey();
  {
    std::lock_guard<std::mutex> Lock(KeyMu);
    auto It = KeyMemo.find(Shape);
    if (It != KeyMemo.end())
      return It->second;
  }
  // The CPU report is a pure function of the laid-out op, so the
  // canonical key is sound here: layers whose different raw shapes pad
  // to isomorphic blocked ops share one compiled kernel.
  LaidOutOp Laid =
      buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                        Scheme.Accumulator, Scheme.LaneMultiple,
                        Scheme.ReduceMultiple);
  std::string Key = cacheSalt() + "|conv|" + canonicalComputeKey(*Laid.Op);
  std::lock_guard<std::mutex> Lock(KeyMu);
  KeyMemo.emplace(std::move(Shape), Key);
  return Key;
}

KernelReport CpuBackend::compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                     const CompileOptions &Options) const {
  KernelReport Report;
  if (Layer.Depthwise) {
    // No channel reduction, so the Inspector rejects every dot
    // instruction; price the SIMD schedule directly.
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/1.5);
    Report.Seconds = simdLatencySeconds(Stats, Machine);
    return Report;
  }
  LaidOutOp Laid =
      buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                        Scheme.Accumulator, Scheme.LaneMultiple,
                        Scheme.ReduceMultiple);
  std::optional<MatchResult> Match = firstMatch(Laid.Op, intrinsics());
  if (!Match) {
    KernelStats Stats = analyzeSimdFallback(
        Laid.Op, /*WideningFactor=*/1.0,
        static_cast<double>(Layer.outH()) * Layer.outW());
    Report.Seconds = simdLatencySeconds(Stats, Machine);
    return Report;
  }
  TunedKernel Tuned =
      tuneCpu(Laid.Op, *Match, Machine, Pool, Options.MaxCandidates);
  return reportFromTuned(Tuned, Match->Intrinsic->name());
}

KernelReport CpuBackend::compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                   const CompileOptions &Options) const {
  if (std::optional<MatchResult> Match = firstMatch(Op, intrinsics())) {
    TunedKernel Tuned = tuneCpu(Op, *Match, Machine, Pool,
                                Options.MaxCandidates);
    return reportFromTuned(Tuned, Match->Intrinsic->name());
  }
  KernelReport Report;
  KernelStats Stats =
      analyzeSimdFallback(Op, /*WideningFactor=*/1.0,
                          static_cast<double>(dataParallelExtent(Op)));
  Report.Seconds = simdLatencySeconds(Stats, Machine);
  return Report;
}

std::string CpuBackend::conv3dKey(const Conv3dLayer &Layer) const {
  std::string Shape = formatStr(
      "3d|c%lld.d%lld.h%lld.w%lld.k%lld.r%lld.st%lld.p%lld",
      static_cast<long long>(Layer.InC), static_cast<long long>(Layer.InD),
      static_cast<long long>(Layer.InH), static_cast<long long>(Layer.InW),
      static_cast<long long>(Layer.OutC), static_cast<long long>(Layer.K),
      static_cast<long long>(Layer.Stride),
      static_cast<long long>(Layer.Pad));
  {
    std::lock_guard<std::mutex> Lock(KeyMu);
    auto It = KeyMemo.find(Shape);
    if (It != KeyMemo.end())
      return It->second;
  }
  LaidOutOp Laid =
      buildDirectConv3dOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
  std::string Key = cacheSalt() + "|conv3d|" + canonicalComputeKey(*Laid.Op);
  std::lock_guard<std::mutex> Lock(KeyMu);
  KeyMemo.emplace(std::move(Shape), Key);
  return Key;
}

KernelReport CpuBackend::compileConv3d(const Conv3dLayer &Layer,
                                       ThreadPool *Pool,
                                       const CompileOptions &Options) const {
  LaidOutOp Laid =
      buildDirectConv3dOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
  std::optional<MatchResult> Match = firstMatch(Laid.Op, intrinsics());
  if (!Match)
    reportFatalError("conv3d failed to tensorize");
  TunedKernel Tuned =
      tuneCpu(Laid.Op, *Match, Machine, Pool, Options.MaxCandidates);
  return reportFromTuned(Tuned, Match->Intrinsic->name());
}

//===----------------------------------------------------------------------===//
// GpuBackend
//===----------------------------------------------------------------------===//

GpuBackend::GpuBackend(GpuMachine MachineIn)
    : Machine(std::move(MachineIn)),
      Scheme(quantSchemeFor(TargetKind::NvidiaGPU)) {
  Salt = std::string(targetName(TargetKind::NvidiaGPU)) + "|" +
         Machine.cacheFingerprint();
}

std::string GpuBackend::cacheSalt() const { return Salt; }

std::string GpuBackend::convKey(const ConvLayer &Layer) const {
  if (Layer.Depthwise)
    return cacheSalt() + "|dw|" + Layer.shapeKey();
  // The compiled result folds in the fused *and* unfused implicit-GEMM
  // views plus their layout-rearrangement traffic, all of which the
  // padded GEMM op erases (two layers with different strides can build
  // identical GEMMs yet pay different rearrange costs) — so the key is
  // the full conv geometry, which still excludes names and therefore
  // still collapses isomorphic renamed layers.
  return cacheSalt() + "|conv+fuse-enum|" + Layer.shapeKey();
}

KernelReport GpuBackend::compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                     const CompileOptions &Options) const {
  KernelReport Report;
  if (Layer.Depthwise) {
    Report.Seconds = gpuCudaCoreConvSeconds(Layer, Machine, /*Scale=*/1.0);
    return Report;
  }
  // Enumerate the graph-level dimension-fusion choice alongside the kernel
  // tuning space (paper §IV.B GPU tuning) and keep the best.
  std::vector<TensorIntrinsicRef> Intrs = intrinsics();
  double Best = 1e30;
  for (bool Fuse : {true, false}) {
    LaidOutOp Laid =
        buildConvAsGemmOp(Layer, Scheme.Activation, Scheme.Accumulator,
                          Scheme.LaneMultiple, Fuse);
    std::optional<MatchResult> Match = firstMatch(Laid.Op, Intrs);
    if (!Match)
      continue;
    TunedKernel Tuned =
        tuneGpu(Laid.Op, *Match, Machine, Pool, Options.MaxCandidates);
    double Rearrange = Laid.RearrangeBytes /
                       (Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9);
    double Total = Tuned.LatencySeconds + Rearrange;
    if (Total < Best) {
      Best = Total;
      Report.Tensorized = true;
      // Index into the concatenated [fused..., unfused...] candidate
      // enumeration, consistent with the summed CandidatesTried — an
      // index >= the fused variant's count means the unfused view won.
      Report.BestCandidateIndex =
          Report.CandidatesTried + Tuned.BestCandidateIndex;
      Report.IntrinsicName = Match->Intrinsic->name();
    }
    Report.CandidatesTried += Tuned.CandidatesTried;
  }
  if (Best >= 1e30)
    Best = gpuCudaCoreConvSeconds(Layer, Machine, 2.0);
  Report.Seconds = Best;
  return Report;
}

KernelReport GpuBackend::compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                   const CompileOptions &Options) const {
  if (std::optional<MatchResult> Match = firstMatch(Op, intrinsics())) {
    TunedKernel Tuned = tuneGpu(Op, *Match, Machine, Pool,
                                Options.MaxCandidates);
    return reportFromTuned(Tuned, Match->Intrinsic->name());
  }
  // CUDA-core fallback for untensorizable ops: roofline over total MACs
  // (the Fig. 1 no-tensor-core path, without layer-level utilization
  // detail since all we have here is the operation).
  KernelReport Report;
  double Macs = static_cast<double>(dataParallelExtent(Op));
  for (const IterVar &IV : Op->reduceAxes())
    Macs *= static_cast<double>(IV->extent());
  double MacsPerSecond = Machine.SMs * Machine.FmaPerCyclePerSM *
                         Machine.FreqGHz * 1e9;
  Report.Seconds = Macs / MacsPerSecond + Machine.KernelLaunchMicros * 1e-6;
  return Report;
}

//===----------------------------------------------------------------------===//
// TargetRegistry
//===----------------------------------------------------------------------===//

TargetRegistry &TargetRegistry::instance() {
  // Magic-static init is thread-safe; defaults are the paper's machines.
  static TargetRegistry *Registry = [] {
    auto *R = new TargetRegistry();
    R->registerBackend(std::make_shared<CpuBackend>(CpuMachine::cascadeLake(),
                                                    TargetKind::X86));
    R->registerBackend(
        std::make_shared<CpuBackend>(CpuMachine::graviton2(),
                                     TargetKind::ARM));
    R->registerBackend(std::make_shared<GpuBackend>(GpuMachine::v100()));
    return R;
  }();
  return *Registry;
}

void TargetRegistry::registerBackend(TargetBackendRef Backend) {
  if (!Backend)
    reportFatalError("TargetRegistry: null backend");
  std::lock_guard<std::mutex> Lock(Mu);
  for (TargetBackendRef &B : Backends)
    if (B->kind() == Backend->kind()) {
      B = std::move(Backend);
      return;
    }
  Backends.push_back(std::move(Backend));
}

TargetBackendRef TargetRegistry::get(TargetKind K) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const TargetBackendRef &B : Backends)
    if (B->kind() == K)
      return B;
  reportFatalError(std::string("TargetRegistry: no backend registered for ") +
                   targetName(K));
}

std::vector<TargetBackendRef> TargetRegistry::all() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Backends;
}
