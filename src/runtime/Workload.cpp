//===- runtime/Workload.cpp ------------------------------------------------===//

#include "runtime/Workload.h"

#include "core/Isomorphism.h"
#include "target/TargetRegistry.h"
#include "support/ErrorHandling.h"

using namespace unit;

Workload Workload::conv2d(ConvLayer Layer) {
  Workload W(Kind::Conv2d);
  W.C2 = std::move(Layer);
  return W;
}

Workload Workload::conv3d(Conv3dLayer Layer) {
  Workload W(Kind::Conv3d);
  W.C3 = std::move(Layer);
  return W;
}

Workload Workload::dense(const std::string &Name, int64_t In, int64_t Out) {
  // Same canonicalization Model::addDense applies: a 1x1 conv on a 1x1
  // image, so dense workloads share the conv2d path and cache entries.
  ConvLayer L;
  L.Name = Name;
  L.InC = In;
  L.OutC = Out;
  return conv2d(std::move(L));
}

Workload Workload::op(ComputeOpRef Op) {
  if (!Op)
    reportFatalError("Workload::op: null operation");
  Workload W(Kind::Op);
  W.Raw = std::move(Op);
  return W;
}

const std::string &Workload::name() const {
  static const std::string Empty;
  switch (K) {
  case Kind::Conv2d:
    return C2.Name;
  case Kind::Conv3d:
    return C3.Name;
  case Kind::Op:
    return Raw ? Raw->name() : Empty;
  }
  return Empty;
}

const ConvLayer &Workload::conv2dLayer() const {
  if (K != Kind::Conv2d)
    reportFatalError("Workload: not a conv2d workload");
  return C2;
}

const Conv3dLayer &Workload::conv3dLayer() const {
  if (K != Kind::Conv3d)
    reportFatalError("Workload: not a conv3d workload");
  return C3;
}

const ComputeOpRef &Workload::rawOp() const {
  if (K != Kind::Op)
    reportFatalError("Workload: not a raw-op workload");
  return Raw;
}

std::string Workload::cacheKey(const TargetBackend &Backend) const {
  switch (K) {
  case Kind::Conv2d:
    return Backend.convKey(C2);
  case Kind::Conv3d:
    return Backend.conv3dKey(C3);
  case Kind::Op:
    return Backend.cacheSalt() + "|op|" + canonicalComputeKey(*Raw);
  }
  reportFatalError("Workload: unknown kind");
}

KernelReport Workload::compileWith(const TargetBackend &Backend,
                                   ThreadPool *Pool,
                                   const CompileOptions &Options) const {
  switch (K) {
  case Kind::Conv2d:
    return Backend.compileConv(C2, Pool, Options);
  case Kind::Conv3d:
    return Backend.compileConv3d(C3, Pool, Options);
  case Kind::Op:
    return Backend.compileOp(Raw, Pool, Options);
  }
  reportFatalError("Workload: unknown kind");
}

CompiledKernel unit::compileWorkload(const Workload &W,
                                     const std::string &Target,
                                     const TuneHook &Tune) {
  TargetBackendRef Backend = TargetRegistry::instance().get(Target);
  LaidOutOp Laid = W.buildOp(Backend->scheme());
  return compileForIntrinsics(Laid.Op, Backend->intrinsics(), Tune);
}

CompiledKernel unit::compileForTarget(const ComputeOpRef &Op,
                                      const std::string &Target,
                                      const TuneHook &Tune) {
  // Declared in core/Pipeline.h, defined here: the registry resolution
  // must live above core/, and routing through the backend (not the
  // global IntrinsicRegistry) means spec-only targets ("x86-amx", ...)
  // have their instructions in play even in a process that never
  // touched TargetRegistry::instance() before this call.
  return compileForIntrinsics(
      Op, TargetRegistry::instance().get(Target)->intrinsics(), Tune);
}

LaidOutOp Workload::buildOp(const QuantScheme &Scheme) const {
  switch (K) {
  case Kind::Conv2d:
    return buildDirectConvOp(C2, Scheme.Activation, Scheme.Weight,
                             Scheme.Accumulator, Scheme.LaneMultiple,
                             Scheme.ReduceMultiple);
  case Kind::Conv3d:
    return buildDirectConv3dOp(C3, Scheme.Activation, Scheme.Weight,
                               Scheme.Accumulator, Scheme.LaneMultiple,
                               Scheme.ReduceMultiple);
  case Kind::Op: {
    LaidOutOp Laid;
    Laid.Op = Raw;
    return Laid;
  }
  }
  reportFatalError("Workload: unknown kind");
}
