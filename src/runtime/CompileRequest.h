//===- runtime/CompileRequest.h - Unified compile request + async job -----===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one shape every compilation takes: a CompileRequest bundles the
/// Workload to compile, the TargetBackend to compile it for (resolvable
/// from a string target id through the TargetRegistry), and the
/// CompileOptions governing tuning budget / cache policy / batch priority.
/// CompilerSession::compile(request) runs it synchronously;
/// compileAsync(request) returns a future-based CompileJob so callers
/// overlap graph pricing with kernel tuning instead of blocking per layer.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_COMPILEREQUEST_H
#define UNIT_RUNTIME_COMPILEREQUEST_H

#include "runtime/CompileOptions.h"
#include "runtime/Workload.h"
#include "target/TargetRegistry.h"

#include <chrono>
#include <future>
#include <string>
#include <utility>

namespace unit {

struct CompileRequest {
  Workload Work;
  TargetBackendRef Backend;
  CompileOptions Options;

  CompileRequest(Workload Work, TargetBackendRef Backend,
                 CompileOptions Options = {})
      : Work(std::move(Work)), Backend(std::move(Backend)),
        Options(Options) {}

  /// Resolves the target id through the process-wide TargetRegistry
  /// (fatal-errors on unknown ids; unvalidated input resolves through
  /// TargetRegistry::lookup first).
  CompileRequest(Workload Work, const std::string &TargetId,
                 CompileOptions Options = {})
      : Work(std::move(Work)),
        Backend(TargetRegistry::instance().get(TargetId)), Options(Options) {}

  /// The request's cache key: the workload's canonical key on the backend
  /// (prefixed by the backend's spec-hash salt), plus a budget marker
  /// when the tuning space is capped — a budgeted report must never
  /// shadow (or be shadowed by) a full-search one. Matches the tuner's
  /// convention: MaxCandidates <= 0 is the full space, so only a positive
  /// budget salts the key.
  std::string cacheKey() const {
    std::string Key = Work.cacheKey(*Backend);
    if (Options.MaxCandidates > 0)
      Key += "|budget" + std::to_string(Options.MaxCandidates);
    return Key;
  }
};

/// Future-based handle on one submitted compilation. Copyable; all copies
/// observe the same result. get() rethrows any exception the backend's
/// compile raised (the cache entry is evicted on exception, so a failed
/// key can be retried).
class CompileJob {
  std::string Key;
  std::shared_future<KernelReport> Fut;

public:
  CompileJob() = default;
  CompileJob(std::string Key, std::shared_future<KernelReport> Fut)
      : Key(std::move(Key)), Fut(std::move(Fut)) {}

  bool valid() const { return Fut.valid(); }
  bool ready() const {
    return Fut.valid() &&
           Fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  }
  void wait() const {
    if (Fut.valid())
      Fut.wait();
  }
  /// Blocks until compiled; rethrows the compile's exception on failure.
  const KernelReport &get() const { return Fut.get(); }
  /// The cache key the job resolves under (diagnostics / tests).
  const std::string &key() const { return Key; }
};

} // namespace unit

#endif // UNIT_RUNTIME_COMPILEREQUEST_H
