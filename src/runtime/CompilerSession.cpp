//===- runtime/CompilerSession.cpp -----------------------------------------===//

#include "runtime/CompilerSession.h"

#include "tuner/TuningSpace.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <unordered_map>

using namespace unit;

CompilerSession::CompilerSession(SessionConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Cache(Config.CacheCapacity, Config.CacheCapacityBytes),
      Pool(std::make_unique<ThreadPool>(Config.Threads)) {
  if (Config.CacheTTLSeconds > 0 || Config.CacheClock)
    Cache.setTTL(Config.CacheTTLSeconds, Config.CacheClock);
}

CompilerSession::~CompilerSession() = default;

namespace {

std::mutex &sharedSessionMutex() {
  static std::mutex Mu;
  return Mu;
}

std::shared_ptr<CompilerSession> &sharedSessionSlot() {
  static std::shared_ptr<CompilerSession> Session =
      std::make_shared<CompilerSession>();
  return Session;
}

/// Non-owning handle for borrowed-backend entry points (compileModel with
/// a const reference joins every job before returning, so the borrow is
/// always outlived).
TargetBackendRef borrow(const TargetBackend &Backend) {
  return TargetBackendRef(&Backend, [](const TargetBackend *) {});
}

} // namespace

std::shared_ptr<CompilerSession> CompilerSession::shared() {
  // By value, copied under the lock: a reference to the slot would escape
  // the critical section and race with resetShared()'s assignment.
  std::lock_guard<std::mutex> Lock(sharedSessionMutex());
  return sharedSessionSlot();
}

std::shared_ptr<CompilerSession>
CompilerSession::resetShared(SessionConfig Config) {
  auto Fresh = std::make_shared<CompilerSession>(Config);
  std::lock_guard<std::mutex> Lock(sharedSessionMutex());
  sharedSessionSlot() = Fresh;
  return Fresh;
}

//===----------------------------------------------------------------------===//
// The unified surface
//===----------------------------------------------------------------------===//

KernelReport CompilerSession::compileKeyed(const CompileRequest &Request,
                                           const std::string &Key,
                                           bool *ComputedHere) {
  switch (Request.Options.Policy) {
  case CachePolicy::Bypass:
    if (ComputedHere)
      *ComputedHere = true;
    return Request.Work.compileWith(*Request.Backend, tuningPool(),
                                    Request.Options);
  case CachePolicy::Refresh:
    // Ready entries are dropped and recompiled; an in-flight compile is
    // left alone (it is fresh enough, and erasing it would break the
    // single-flight invariant its winner relies on).
    Cache.eraseReady(Key);
    break;
  case CachePolicy::Default:
    break;
  }
  return Cache.getOrCompute(
      Key,
      [&] {
        return Request.Work.compileWith(*Request.Backend, tuningPool(),
                                        Request.Options);
      },
      ComputedHere);
}

KernelReport CompilerSession::compile(const CompileRequest &Request,
                                      bool *ComputedHere) {
  return compileKeyed(Request, Request.cacheKey(), ComputedHere);
}

CompileJob CompilerSession::compileAsync(CompileRequest Request) {
  return compileAsyncCounted(std::move(Request), nullptr);
}

CompileJob
CompilerSession::compileAsyncCounted(CompileRequest Request,
                                     std::atomic<size_t> *FreshCounter) {
  std::string Key = Request.cacheKey();
  // Ready or in-flight entries are joined directly — no pool round-trip,
  // and a whole warm model submits without spawning a single task.
  if (Request.Options.Policy == CachePolicy::Default)
    if (std::optional<std::shared_future<KernelReport>> Fut = Cache.peek(Key))
      return CompileJob(std::move(Key), std::move(*Fut));

  auto Done = std::make_shared<std::promise<KernelReport>>();
  std::shared_future<KernelReport> Fut = Done->get_future().share();
  InFlight.fetch_add(1);
  Pool->submit(
      [this, Request = std::move(Request), Key, Done, FreshCounter]() mutable {
        try {
          bool Computed = false;
          KernelReport Report = compileKeyed(Request, Key, &Computed);
          if (Computed && FreshCounter)
            FreshCounter->fetch_add(1);
          Done->set_value(Report);
        } catch (...) {
          Done->set_exception(std::current_exception());
        }
        // Pair the decrement with the quiesce cv so a waiter parked on
        // an empty queue (job running on a worker) wakes promptly.
        if (InFlight.fetch_sub(1) == 1) {
          { std::lock_guard<std::mutex> Lock(QuiesceMu); }
          QuiesceCv.notify_all();
        }
      });
  return CompileJob(std::move(Key), std::move(Fut));
}

CompileJob CompilerSession::compileAsyncThen(CompileRequest Request,
                                             JobCallback OnDone) {
  std::string Key = Request.cacheKey();
  // A ready entry still goes through a (tiny) pool task, and an in-flight
  // entry through a worker that waits out the winner: the callback always
  // fires from the pool, never inside this call — callers may hold locks
  // here that the callback also takes. The in-flight wait is safe because
  // an entry exists only while its winner is actively running on some
  // thread (KernelCache inserts inside getOrCompute), so the waiting
  // worker always unblocks; and both paths count toward InFlight, so
  // quiesce() drains pending notifications too.
  if (Request.Options.Policy == CachePolicy::Default) {
    if (std::optional<std::shared_future<KernelReport>> Fut =
            Cache.peek(Key)) {
      InFlight.fetch_add(1);
      Pool->submit([this, Fut = *Fut, OnDone = std::move(OnDone)] {
        const KernelReport *Report = nullptr;
        std::exception_ptr Error;
        try {
          Report = &Fut.get();
        } catch (...) {
          Error = std::current_exception();
        }
        if (OnDone)
          OnDone(Report, Error, /*Computed=*/false);
        if (InFlight.fetch_sub(1) == 1) {
          { std::lock_guard<std::mutex> Lock(QuiesceMu); }
          QuiesceCv.notify_all();
        }
      });
      return CompileJob(std::move(Key), std::move(*Fut));
    }
  }

  auto Done = std::make_shared<std::promise<KernelReport>>();
  std::shared_future<KernelReport> Fut = Done->get_future().share();
  InFlight.fetch_add(1);
  Pool->submit([this, Request = std::move(Request), Key, Done,
                OnDone = std::move(OnDone)]() mutable {
    KernelReport Report;
    bool Computed = false;
    std::exception_ptr Error;
    try {
      Report = compileKeyed(Request, Key, &Computed);
      Done->set_value(Report);
    } catch (...) {
      Error = std::current_exception();
      Done->set_exception(Error);
    }
    if (OnDone)
      OnDone(Error ? nullptr : &Report, Error, Error ? false : Computed);
    if (InFlight.fetch_sub(1) == 1) {
      { std::lock_guard<std::mutex> Lock(QuiesceMu); }
      QuiesceCv.notify_all();
    }
  });
  return CompileJob(std::move(Key), std::move(Fut));
}

void CompilerSession::quiesce() {
  while (InFlight.load() != 0) {
    // Help drain queued work; once the queue is empty but jobs still run
    // on workers, park on the cv instead of spinning a core.
    if (Pool->runOne())
      continue;
    std::unique_lock<std::mutex> Lock(QuiesceMu);
    if (InFlight.load() == 0)
      break;
    QuiesceCv.wait_for(Lock, std::chrono::milliseconds(10));
  }
}

std::vector<CompileJob>
CompilerSession::compileAllAsync(std::vector<CompileRequest> Requests) {
  return compileAllAsyncCounted(std::move(Requests), nullptr);
}

std::vector<CompileJob>
CompilerSession::compileAllAsyncCounted(std::vector<CompileRequest> Requests,
                                        std::atomic<size_t> *FreshCounter) {
  // Submit higher-priority requests first (stable: ties keep caller
  // order), but hand the jobs back in the original order.
  std::vector<size_t> Order(Requests.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Requests[A].Options.Priority > Requests[B].Options.Priority;
  });
  std::vector<CompileJob> Jobs(Requests.size());
  for (size_t Slot : Order)
    Jobs[Slot] = compileAsyncCounted(std::move(Requests[Slot]), FreshCounter);
  return Jobs;
}

ModelCompileResult CompilerSession::compileModel(const Model &M,
                                                 const std::string &TargetId,
                                                 const CompileOptions &Options) {
  return compileModel(M, *TargetRegistry::instance().get(TargetId), Options);
}

ModelCompileResult
CompilerSession::compileModel(const Model &M, const TargetBackend &Backend,
                              const CompileOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  ModelCompileResult Result;
  TargetBackendRef Borrowed = borrow(Backend);

  // Canonical key per layer; isomorphic layers (and layers compiled by a
  // previous model on the same backend) collapse onto one cache entry.
  std::vector<std::string> Keys;
  Keys.reserve(M.Convs.size());
  std::unordered_map<std::string, size_t> FirstLayerOf;
  std::vector<size_t> DistinctLayers; ///< Index of each key's first layer.
  for (size_t I = 0; I < M.Convs.size(); ++I) {
    Keys.push_back(
        CompileRequest(Workload::conv2d(M.Convs[I]), Borrowed, Options)
            .cacheKey());
    if (FirstLayerOf.emplace(Keys.back(), I).second)
      DistinctLayers.push_back(I);
  }
  Result.DistinctShapes = DistinctLayers.size();

  // Only entries that existed before this call count as hits; intra-model
  // duplicates of a cold shape are deduplicated work, not cache hits. A
  // refreshing compile is about to drop those entries (and a bypassing
  // one ignores them), so both report zero.
  if (Options.Policy == CachePolicy::Default)
    for (const std::string &Key : Keys)
      if (Cache.contains(Key))
        ++Result.CacheHitLayers;

  // Compile every distinct shape into a local key -> report map — cache
  // policy (including Bypass) is handled per request. Holding the
  // reports locally keeps the per-layer fan-out independent of the
  // cache, so LRU caps smaller than the model and concurrent clear()s
  // can never force a mid-collection re-tune.
  std::unordered_map<std::string, KernelReport> Reports;
  Reports.reserve(DistinctLayers.size());
  std::atomic<size_t> FreshCompiles{0};
  if (Config.ParallelShapes && DistinctLayers.size() > 1) {
    // Submit all, then join: distinct shapes tune concurrently on the
    // pool; while joining, this thread helps drain pending tasks so a
    // small pool still tunes caller+workers wide.
    std::vector<CompileRequest> Requests;
    Requests.reserve(DistinctLayers.size());
    for (size_t LayerIndex : DistinctLayers)
      Requests.emplace_back(Workload::conv2d(M.Convs[LayerIndex]), Borrowed,
                            Options);
    std::vector<CompileJob> Jobs =
        compileAllAsyncCounted(std::move(Requests), &FreshCompiles);
    // Join *every* job before any rethrow: in-flight tasks hold a
    // non-owning reference to the caller's backend, so unwinding while
    // they still run would dangle it.
    std::exception_ptr FirstFailure;
    for (size_t Slot = 0; Slot < Jobs.size(); ++Slot) {
      while (!Jobs[Slot].ready() && Pool->runOne()) {
      }
      try {
        Reports.emplace(Keys[DistinctLayers[Slot]], Jobs[Slot].get());
      } catch (...) {
        if (!FirstFailure)
          FirstFailure = std::current_exception();
      }
    }
    if (FirstFailure)
      std::rethrow_exception(FirstFailure);
  } else {
    for (size_t LayerIndex : DistinctLayers) {
      bool Computed = false;
      Reports.emplace(
          Keys[LayerIndex],
          compileKeyed(CompileRequest(Workload::conv2d(M.Convs[LayerIndex]),
                                      Borrowed, Options),
                       Keys[LayerIndex], &Computed));
      if (Computed)
        FreshCompiles.fetch_add(1);
    }
  }
  Result.FreshCompiles = FreshCompiles.load();

  Result.Layers.reserve(M.Convs.size());
  for (const std::string &Key : Keys)
    Result.Layers.push_back(Reports.at(Key));

  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

//===----------------------------------------------------------------------===//
// Cache persistence
//===----------------------------------------------------------------------===//

std::string CompilerSession::persistenceFingerprint() {
  std::vector<std::string> Salts;
  for (const TargetBackendRef &B : TargetRegistry::instance().all())
    Salts.push_back(B->cacheSalt());
  std::sort(Salts.begin(), Salts.end());
  // Persisted reports depend on the tuner's candidate spaces as much as
  // on machine parameters, so the space sizes are folded in — a build
  // that widens either space rejects older files. The "-v1" tag must be
  // bumped by hand when the cost model or search semantics change in a
  // way the space sizes don't reflect.
  std::string Fp = "unit-kernel-cache-fp-v1|cpu-space:" +
                   std::to_string(defaultCpuTuningPairs().size()) +
                   "|gpu-space:" +
                   std::to_string(defaultGpuTuningConfigs().size());
  for (const std::string &Salt : Salts)
    Fp += ";" + Salt;
  return Fp;
}

std::optional<size_t>
CompilerSession::saveCache(const std::string &Path) const {
  return Cache.saveFile(Path, persistenceFingerprint());
}

KernelCache::LoadResult CompilerSession::loadCache(const std::string &Path) {
  return Cache.loadFile(Path, persistenceFingerprint());
}
