//===- runtime/CompilerSession.cpp -----------------------------------------===//

#include "runtime/CompilerSession.h"

#include "core/Isomorphism.h"
#include "obs/Trace.h"
#include "support/Time.h"
#include "tuner/TuningSpace.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <unordered_map>

using namespace unit;

CompilerSession::CompilerSession(SessionConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Cache(Config.CacheCapacity, Config.CacheCapacityBytes),
      Pool(std::make_unique<ThreadPool>(Config.Threads)) {
  if (Config.CacheTTLSeconds > 0 || Config.CacheClock)
    Cache.setTTL(Config.CacheTTLSeconds, Config.CacheClock);
}

CompilerSession::~CompilerSession() = default;

namespace {

std::mutex &sharedSessionMutex() {
  static std::mutex Mu;
  return Mu;
}

std::shared_ptr<CompilerSession> &sharedSessionSlot() {
  static std::shared_ptr<CompilerSession> Session =
      std::make_shared<CompilerSession>();
  return Session;
}

/// Non-owning handle for borrowed-backend entry points (compileModel with
/// a const reference joins every job before returning, so the borrow is
/// always outlived).
TargetBackendRef borrow(const TargetBackend &Backend) {
  return TargetBackendRef(&Backend, [](const TargetBackend *) {});
}

} // namespace

std::shared_ptr<CompilerSession> CompilerSession::shared() {
  // By value, copied under the lock: a reference to the slot would escape
  // the critical section and race with resetShared()'s assignment.
  std::lock_guard<std::mutex> Lock(sharedSessionMutex());
  return sharedSessionSlot();
}

std::shared_ptr<CompilerSession>
CompilerSession::resetShared(SessionConfig Config) {
  auto Fresh = std::make_shared<CompilerSession>(Config);
  std::lock_guard<std::mutex> Lock(sharedSessionMutex());
  sharedSessionSlot() = Fresh;
  return Fresh;
}

//===----------------------------------------------------------------------===//
// Transfer tuning (docs/TUNING.md)
//===----------------------------------------------------------------------===//

namespace {

/// Splits a cache key at its `target|spechash|kind|` prefix. Returns
/// false for keys without three '|' separators (no backend produces
/// those, but a malformed key must never seed anything).
bool splitTransferKey(const std::string &Key, std::string &Group,
                      std::string &Body) {
  size_t Pos = 0;
  for (int Sep = 0; Sep < 3; ++Sep) {
    Pos = Key.find('|', Pos);
    if (Pos == std::string::npos)
      return false;
    ++Pos;
  }
  Group = Key.substr(0, Pos);
  Body = Key.substr(Pos);
  return true;
}

/// Per-group entry cap: the index is an accelerator, not a cache — a
/// runaway key population must not grow it without bound.
constexpr size_t TransferGroupCap = 512;

} // namespace

int CompilerSession::transferSeedFor(const std::string &Key) {
  std::string Group, Body;
  if (!splitTransferKey(Key, Group, Body))
    return -1;
  // A quarter-ish of the serialization may differ and still count as
  // "near": generous, because a wrong-but-in-range seed only costs one
  // extra scored candidate — it can never change the winner.
  size_t Cutoff = std::max<size_t>(8, Body.size() / 10);
  std::lock_guard<std::mutex> Lock(TransferMu);
  auto It = TransferIndex.find(Group);
  if (It == TransferIndex.end())
    return -1;
  size_t BestDistance = Cutoff + 1;
  int BestSeed = -1;
  for (const auto &[NeighborBody, Winner] : It->second) {
    size_t D = structuralDistance(Body, NeighborBody, Cutoff);
    if (D < BestDistance) { // Strict: ties keep the first in body order.
      BestDistance = D;
      BestSeed = Winner;
    }
  }
  return BestDistance <= Cutoff ? BestSeed : -1;
}

void CompilerSession::recordTransferWinner(const std::string &Key,
                                           const KernelReport &Report) {
  if (Report.BestCandidateIndex < 0)
    return; // Fallback report — no candidate space to seed from.
  std::string Group, Body;
  if (!splitTransferKey(Key, Group, Body))
    return;
  std::lock_guard<std::mutex> Lock(TransferMu);
  std::map<std::string, int> &G = TransferIndex[Group];
  if (G.size() >= TransferGroupCap && !G.count(Body))
    return;
  G[Body] = Report.BestCandidateIndex;
}

CompileOptions CompilerSession::optionsWithSeed(const CompileOptions &Base,
                                                const std::string &Key) {
  CompileOptions Opts = Base;
  if (Opts.SeedCandidate < 0) {
    int Seed = transferSeedFor(Key);
    if (Seed >= 0) {
      Opts.SeedCandidate = Seed;
      TransferSeedsCount.fetch_add(1);
    }
  }
  return Opts;
}

//===----------------------------------------------------------------------===//
// The unified surface
//===----------------------------------------------------------------------===//

KernelReport CompilerSession::compileKeyed(const CompileRequest &Request,
                                           const std::string &Key,
                                           bool *ComputedHere) {
  double T0 = steadyNowSeconds();
  switch (Request.Options.Policy) {
  case CachePolicy::Bypass: {
    if (ComputedHere)
      *ComputedHere = true;
    obs::Span Codegen("codegen");
    KernelReport Report = Request.Work.compileWith(
        *Request.Backend, tuningPool(), optionsWithSeed(Request.Options, Key));
    ColdLatencyHist.record(steadyNowSeconds() - T0);
    return Report;
  }
  case CachePolicy::Refresh:
    // Ready entries are dropped and recompiled; an in-flight compile is
    // left alone (it is fresh enough, and erasing it would break the
    // single-flight invariant its winner relies on).
    Cache.eraseReady(Key);
    break;
  case CachePolicy::Default:
    break;
  }
  bool Fetched = false;
  bool RanCompute = false;
  KernelReport Report = Cache.getOrCompute(
      Key,
      [&] {
        // The single-flight winner probes the fleet before tuning: a
        // same-fingerprint peer that already tuned this key hands the
        // report over in milliseconds. Refresh skips the probe — it
        // asked for a fresh local tune.
        if (Request.Options.Policy == CachePolicy::Default)
          if (ColdMissFetcher Fetch = missFetcher()) {
            std::optional<KernelReport> Remote;
            {
              obs::Span PeerFetch("peer_fetch");
              Remote = Fetch(Key);
              PeerFetch.annotate("hit", Remote ? 1 : 0);
            }
            if (Remote) {
              Fetched = true;
              recordTransferWinner(Key, *Remote);
              return *Remote;
            }
          }
        KernelReport Fresh;
        {
          obs::Span Codegen("codegen");
          Fresh = Request.Work.compileWith(*Request.Backend, tuningPool(),
                                           optionsWithSeed(Request.Options,
                                                           Key));
        }
        recordTransferWinner(Key, Fresh);
        if (CompileObserver Notify = compileObserver())
          Notify(Key, Fresh);
        return Fresh;
      },
      &RanCompute);
  // A peer-served entry is a cache hit from the caller's point of view —
  // no tuner ran here — even though the compute lambda executed.
  if (ComputedHere)
    *ComputedHere = RanCompute && !Fetched;
  // Latency accounting: any run of the compute lambda is the cold path
  // (a peer-served miss is still a miss); ready hits and single-flight
  // joins of another caller's compile are warm.
  (RanCompute ? ColdLatencyHist : WarmLatencyHist)
      .record(steadyNowSeconds() - T0);
  return Report;
}

KernelReport CompilerSession::compile(const CompileRequest &Request,
                                      bool *ComputedHere) {
  return compileKeyed(Request, Request.cacheKey(), ComputedHere);
}

CompileJob CompilerSession::compileAsync(CompileRequest Request) {
  return compileAsyncCounted(std::move(Request), nullptr);
}

CompileJob
CompilerSession::compileAsyncCounted(CompileRequest Request,
                                     std::atomic<size_t> *FreshCounter) {
  return dispatchAsync(std::move(Request), nullptr, FreshCounter);
}

CompileJob CompilerSession::compileAsyncThen(CompileRequest Request,
                                             JobCallback OnDone) {
  return dispatchAsync(std::move(Request), std::move(OnDone), nullptr);
}

void CompilerSession::jobFinished() {
  // Pair the decrement with the quiesce cv so a waiter parked on an
  // empty queue (job running on a worker, or a continuation pending on
  // another thread's compile) wakes promptly — and exactly once, when
  // the count actually reaches zero.
  if (InFlight.fetch_sub(1) == 1) {
    { std::lock_guard<std::mutex> Lock(QuiesceMu); }
    QuiesceCv.notify_all();
  }
}

CompileJob CompilerSession::dispatchAsync(
    CompileRequest Request,
    std::function<void(const KernelReport *, std::exception_ptr, bool)>
        Finish,
    std::atomic<size_t> *FreshCounter) {
  std::string Key = Request.cacheKey();

  if (Request.Options.Policy != CachePolicy::Bypass) {
    double T0 = steadyNowSeconds();
    // One span covers the resolve decision; the submitter's context
    // (this span when tracing is on) is what pool tasks and continuation
    // callbacks parent to — the cross-thread links of the request tree.
    obs::Span Resolve("cache_resolve");
    obs::SpanContext SubmitCtx = obs::currentSpan();

    if (Request.Options.Policy == CachePolicy::Refresh)
      // Ready entries are dropped and recompiled; an in-flight compile is
      // left alone (it is fresh enough, and erasing it would break the
      // single-flight invariant its winner relies on).
      Cache.eraseReady(Key);

    // Count the job before resolving: a registered continuation may fire
    // (and decrement) the instant the cache lock is released.
    InFlight.fetch_add(1);
    std::shared_future<KernelReport> Fut;
    KernelCache::ComputeTicket Ticket;
    // Registered only when the resolve joins an in-flight compile; fires
    // on the winner's thread, parented to the submitter's span. The
    // jobFinished guard mirrors the Joined case below: future-only joins
    // already balanced InFlight inline.
    KernelCache::Waiter Continuation =
        [this, Finish, SubmitCtx, T0](const KernelReport *Report,
                                      std::exception_ptr Error) {
          // The span must close before jobFinished(): the decrement to
          // zero releases stop()'s quiesce() wait, after which the trace
          // recorder is torn down — a span still open here would record
          // into freed memory.
          {
            obs::Span Resume("join_resume", SubmitCtx);
            if (Finish)
              Finish(Report, Error, /*Computed=*/false);
            JoinLatencyHist.record(steadyNowSeconds() - T0);
          }
          if (Finish)
            jobFinished();
        };
    switch (Cache.resolveThen(Key, std::move(Continuation), &Fut, &Ticket)) {
    case KernelCache::ResolveKind::Ready: {
      // Warm hit: resolve inline on the submitting thread. A whole warm
      // model's worth of joins costs zero pool tasks.
      InlineReadyHitsCount.fetch_add(1);
      Resolve.annotate("outcome", "hit");
      if (Finish)
        Finish(&Fut.get(), nullptr, /*Computed=*/false);
      WarmLatencyHist.record(steadyNowSeconds() - T0);
      jobFinished();
      return CompileJob(std::move(Key), std::move(Fut));
    }
    case KernelCache::ResolveKind::Joined:
      // In-flight join: the winner's drain fires the continuation; no
      // thread — pool or otherwise — blocks waiting for it.
      ContinuationJoinsCount.fetch_add(1);
      Resolve.annotate("outcome", "join");
      if (!Finish)
        jobFinished(); // Future-only join: nothing left pending here.
      return CompileJob(std::move(Key), std::move(Fut));
    case KernelCache::ResolveKind::MustCompute:
      break;
    }

    // Winner: run the compile on a pool worker; fulfill()/fail() publish
    // the result and drain every waiter that joined meanwhile.
    FreshDispatchesCount.fetch_add(1);
    Resolve.annotate("outcome", "miss");
    Pool->submit([this, Request = std::move(Request), Key,
                  Ticket = std::move(Ticket),
                  Finish = std::move(Finish), FreshCounter, SubmitCtx,
                  T0]() mutable {
      // Every span in this task must close before the jobFinished() at
      // the bottom: the decrement to zero releases stop()'s quiesce()
      // wait, after which the trace recorder is torn down — a span still
      // open past it would record into freed memory.
      {
        obs::Span CompileSpan("compile", SubmitCtx);
        // Fleet probe first (same contract as the blocking path): a report
        // fetched from a same-fingerprint peer fulfills the entry — every
        // joined waiter resolves, Computed stays false, FreshCounter is
        // untouched, and the observer never fires (no echo back to peers).
        bool ServedByPeer = false;
        if (Request.Options.Policy == CachePolicy::Default)
          if (ColdMissFetcher Fetch = missFetcher()) {
            std::optional<KernelReport> Remote;
            {
              obs::Span PeerFetch("peer_fetch");
              Remote = Fetch(Key);
              PeerFetch.annotate("hit", Remote ? 1 : 0);
            }
            if (Remote) {
              recordTransferWinner(Key, *Remote);
              {
                obs::Span Fulfill("fulfill");
                Cache.fulfill(Key, Ticket, *Remote);
              }
              if (Finish)
                Finish(&*Remote, nullptr, /*Computed=*/false);
              ColdLatencyHist.record(steadyNowSeconds() - T0);
              ServedByPeer = true;
            }
          }
        if (!ServedByPeer) {
          KernelReport Report;
          std::exception_ptr Error;
          try {
            obs::Span Codegen("codegen");
            Report = Request.Work.compileWith(*Request.Backend, tuningPool(),
                                              optionsWithSeed(Request.Options,
                                                              Key));
          } catch (...) {
            Error = std::current_exception();
          }
          if (!Error) {
            if (FreshCounter)
              FreshCounter->fetch_add(1);
            recordTransferWinner(Key, Report);
            {
              obs::Span Fulfill("fulfill");
              Cache.fulfill(Key, Ticket, Report);
            }
            if (CompileObserver Notify = compileObserver())
              Notify(Key, Report);
          } else {
            Cache.fail(Key, Ticket, Error);
          }
          if (Finish)
            Finish(Error ? nullptr : &Report, Error, /*Computed=*/!Error);
          ColdLatencyHist.record(steadyNowSeconds() - T0);
        }
      }
      jobFinished();
    });
    return CompileJob(std::move(Key), std::move(Fut));
  }

  // Bypass: never touches the cache; a private promise backs the job.
  FreshDispatchesCount.fetch_add(1);
  auto Done = std::make_shared<std::promise<KernelReport>>();
  std::shared_future<KernelReport> Fut = Done->get_future().share();
  InFlight.fetch_add(1);
  Pool->submit([this, Request = std::move(Request), Done,
                Finish = std::move(Finish), FreshCounter]() mutable {
    KernelReport Report;
    std::exception_ptr Error;
    try {
      Report = Request.Work.compileWith(*Request.Backend, tuningPool(),
                                        Request.Options);
    } catch (...) {
      Error = std::current_exception();
    }
    if (!Error) {
      if (FreshCounter)
        FreshCounter->fetch_add(1);
      Done->set_value(Report);
    } else {
      Done->set_exception(Error);
    }
    if (Finish)
      Finish(Error ? nullptr : &Report, Error, /*Computed=*/!Error);
    jobFinished();
  });
  return CompileJob(std::move(Key), std::move(Fut));
}

void CompilerSession::quiesce() {
  // Help drain queued work from the calling thread first.
  while (InFlight.load() != 0 && Pool->runOne()) {
  }
  // Whatever remains is running on workers or pending as continuations of
  // someone else's compile. Park untimed: every finishing job runs
  // jobFinished(), whose decrement-to-zero is published under QuiesceMu
  // before the notify — exact wakeup, no timed polling.
  std::unique_lock<std::mutex> Lock(QuiesceMu);
  QuiesceCv.wait(Lock, [this] { return InFlight.load() == 0; });
}

std::vector<CompileJob>
CompilerSession::compileAllAsync(std::vector<CompileRequest> Requests) {
  return compileAllAsyncCounted(std::move(Requests), nullptr);
}

std::vector<CompileJob>
CompilerSession::compileAllAsyncCounted(std::vector<CompileRequest> Requests,
                                        std::atomic<size_t> *FreshCounter) {
  // Submit higher-priority requests first (stable: ties keep caller
  // order), but hand the jobs back in the original order.
  std::vector<size_t> Order(Requests.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Requests[A].Options.Priority > Requests[B].Options.Priority;
  });
  std::vector<CompileJob> Jobs(Requests.size());
  for (size_t Slot : Order)
    Jobs[Slot] = compileAsyncCounted(std::move(Requests[Slot]), FreshCounter);
  return Jobs;
}

ModelCompileResult CompilerSession::compileModel(const Model &M,
                                                 const std::string &TargetId,
                                                 const CompileOptions &Options) {
  return compileModel(M, *TargetRegistry::instance().get(TargetId), Options);
}

ModelCompileResult
CompilerSession::compileModel(const Model &M, const TargetBackend &Backend,
                              const CompileOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  ModelCompileResult Result;
  TargetBackendRef Borrowed = borrow(Backend);

  // Canonical key per layer; isomorphic layers (and layers compiled by a
  // previous model on the same backend) collapse onto one cache entry.
  std::vector<std::string> Keys;
  Keys.reserve(M.Convs.size());
  std::unordered_map<std::string, size_t> FirstLayerOf;
  std::vector<size_t> DistinctLayers; ///< Index of each key's first layer.
  for (size_t I = 0; I < M.Convs.size(); ++I) {
    Keys.push_back(
        CompileRequest(Workload::conv2d(M.Convs[I]), Borrowed, Options)
            .cacheKey());
    if (FirstLayerOf.emplace(Keys.back(), I).second)
      DistinctLayers.push_back(I);
  }
  Result.DistinctShapes = DistinctLayers.size();

  // Only entries that existed before this call count as hits; intra-model
  // duplicates of a cold shape are deduplicated work, not cache hits. A
  // refreshing compile is about to drop those entries (and a bypassing
  // one ignores them), so both report zero.
  if (Options.Policy == CachePolicy::Default)
    for (const std::string &Key : Keys)
      if (Cache.contains(Key))
        ++Result.CacheHitLayers;

  // Compile every distinct shape into a local key -> report map — cache
  // policy (including Bypass) is handled per request. Holding the
  // reports locally keeps the per-layer fan-out independent of the
  // cache, so LRU caps smaller than the model and concurrent clear()s
  // can never force a mid-collection re-tune.
  std::unordered_map<std::string, KernelReport> Reports;
  Reports.reserve(DistinctLayers.size());
  std::atomic<size_t> FreshCompiles{0};
  if (Config.ParallelShapes && DistinctLayers.size() > 1) {
    // Submit all, then join: distinct shapes tune concurrently on the
    // pool; while joining, this thread helps drain pending tasks so a
    // small pool still tunes caller+workers wide.
    std::vector<CompileRequest> Requests;
    Requests.reserve(DistinctLayers.size());
    for (size_t LayerIndex : DistinctLayers)
      Requests.emplace_back(Workload::conv2d(M.Convs[LayerIndex]), Borrowed,
                            Options);
    std::vector<CompileJob> Jobs =
        compileAllAsyncCounted(std::move(Requests), &FreshCompiles);
    // Join *every* job before any rethrow: in-flight tasks hold a
    // non-owning reference to the caller's backend, so unwinding while
    // they still run would dangle it.
    std::exception_ptr FirstFailure;
    for (size_t Slot = 0; Slot < Jobs.size(); ++Slot) {
      while (!Jobs[Slot].ready() && Pool->runOne()) {
      }
      try {
        Reports.emplace(Keys[DistinctLayers[Slot]], Jobs[Slot].get());
      } catch (...) {
        if (!FirstFailure)
          FirstFailure = std::current_exception();
      }
    }
    if (FirstFailure)
      std::rethrow_exception(FirstFailure);
  } else {
    for (size_t LayerIndex : DistinctLayers) {
      bool Computed = false;
      Reports.emplace(
          Keys[LayerIndex],
          compileKeyed(CompileRequest(Workload::conv2d(M.Convs[LayerIndex]),
                                      Borrowed, Options),
                       Keys[LayerIndex], &Computed));
      if (Computed)
        FreshCompiles.fetch_add(1);
    }
  }
  Result.FreshCompiles = FreshCompiles.load();

  Result.Layers.reserve(M.Convs.size());
  for (const std::string &Key : Keys)
    Result.Layers.push_back(Reports.at(Key));

  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}

//===----------------------------------------------------------------------===//
// Cache persistence
//===----------------------------------------------------------------------===//

std::string CompilerSession::persistenceFingerprint() {
  std::vector<std::string> Salts;
  for (const TargetBackendRef &B : TargetRegistry::instance().all())
    Salts.push_back(B->cacheSalt());
  std::sort(Salts.begin(), Salts.end());
  // Persisted reports depend on the tuner's candidate spaces as much as
  // on machine parameters, so the space sizes are folded in — a build
  // that widens either space rejects older files. The "-v1" tag must be
  // bumped by hand when the cost model or search semantics change in a
  // way the space sizes don't reflect.
  std::string Fp = "unit-kernel-cache-fp-v1|cpu-space:" +
                   std::to_string(defaultCpuTuningPairs().size()) +
                   "|gpu-space:" +
                   std::to_string(defaultGpuTuningConfigs().size());
  for (const std::string &Salt : Salts)
    Fp += ";" + Salt;
  return Fp;
}

std::optional<size_t>
CompilerSession::saveCache(const std::string &Path) const {
  return Cache.saveFile(Path, persistenceFingerprint());
}

KernelCache::LoadResult CompilerSession::loadCache(const std::string &Path) {
  return Cache.loadFile(Path, persistenceFingerprint());
}
