//===- runtime/CompilerSession.cpp -----------------------------------------===//

#include "runtime/CompilerSession.h"

#include "core/Isomorphism.h"

#include <chrono>
#include <unordered_map>

using namespace unit;

CompilerSession::CompilerSession(SessionConfig ConfigIn)
    : Config(ConfigIn), Pool(std::make_unique<ThreadPool>(Config.Threads)) {}

CompilerSession::~CompilerSession() = default;

const std::shared_ptr<CompilerSession> &CompilerSession::shared() {
  static std::shared_ptr<CompilerSession> Session =
      std::make_shared<CompilerSession>();
  return Session;
}

KernelReport CompilerSession::compile(const ComputeOpRef &Op,
                                      TargetKind Target) {
  return compile(Op, *TargetRegistry::instance().get(Target));
}

KernelReport CompilerSession::compile(const ComputeOpRef &Op,
                                      const TargetBackend &Backend) {
  std::string Key = Backend.cacheSalt() + "|op|" + canonicalComputeKey(*Op);
  return Cache.getOrCompute(
      Key, [&] { return Backend.compileOp(Op, tuningPool()); });
}

KernelReport CompilerSession::compileConv(const ConvLayer &Layer,
                                          const TargetBackend &Backend) {
  return Cache.getOrCompute(Backend.convKey(Layer), [&] {
    return Backend.compileConv(Layer, tuningPool());
  });
}

KernelReport CompilerSession::compileConv3d(const Conv3dLayer &Layer,
                                            const CpuBackend &Backend) {
  return Cache.getOrCompute(Backend.conv3dKey(Layer), [&] {
    return Backend.compileConv3d(Layer, tuningPool());
  });
}

ModelCompileResult CompilerSession::compileModel(const Model &M,
                                                 TargetKind Target) {
  return compileModel(M, *TargetRegistry::instance().get(Target));
}

ModelCompileResult
CompilerSession::compileModel(const Model &M, const TargetBackend &Backend) {
  auto Start = std::chrono::steady_clock::now();
  ModelCompileResult Result;

  // Canonical key per layer; isomorphic layers (and layers compiled by a
  // previous model on the same backend) collapse onto one cache entry.
  std::vector<std::string> Keys;
  Keys.reserve(M.Convs.size());
  std::unordered_map<std::string, size_t> FirstLayerOf;
  std::vector<size_t> DistinctLayers; ///< Index of each key's first layer.
  for (size_t I = 0; I < M.Convs.size(); ++I) {
    Keys.push_back(Backend.convKey(M.Convs[I]));
    if (FirstLayerOf.emplace(Keys.back(), I).second)
      DistinctLayers.push_back(I);
  }
  // Only entries that existed before this call count as hits; intra-model
  // duplicates of a cold shape are deduplicated work, not cache hits.
  for (const std::string &Key : Keys)
    if (Cache.contains(Key))
      ++Result.CacheHitLayers;
  Result.DistinctShapes = DistinctLayers.size();

  auto CompileOne = [&](size_t Slot) {
    size_t LayerIndex = DistinctLayers[Slot];
    Cache.getOrCompute(Keys[LayerIndex], [&] {
      return Backend.compileConv(M.Convs[LayerIndex], tuningPool());
    });
  };
  if (Config.ParallelShapes && DistinctLayers.size() > 1)
    Pool->parallelFor(DistinctLayers.size(), CompileOne);
  else
    for (size_t Slot = 0; Slot < DistinctLayers.size(); ++Slot)
      CompileOne(Slot);

  Result.Layers.reserve(M.Convs.size());
  for (size_t I = 0; I < Keys.size(); ++I) {
    std::optional<KernelReport> R = Cache.lookup(Keys[I]);
    if (!R) // Entry evicted by a concurrent clear(): recompile it.
      R = Cache.getOrCompute(Keys[I], [&] {
        return Backend.compileConv(M.Convs[I], tuningPool());
      });
    Result.Layers.push_back(*R);
  }

  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Result;
}
