//===- runtime/CompileOptions.h - Per-request compilation knobs -----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The option block a CompileRequest carries alongside its Workload and
/// target: tuning budget, cache policy, and batch-scheduling priority.
/// Lives in its own dependency-free header so TargetBackend signatures can
/// thread it down into the tuner without pulling in the request types.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_COMPILEOPTIONS_H
#define UNIT_RUNTIME_COMPILEOPTIONS_H

namespace unit {

/// How a request interacts with the session's KernelCache.
enum class CachePolicy {
  Default, ///< Serve from cache; compile and insert on a miss.
  Bypass,  ///< Compile fresh without reading or writing the cache.
  Refresh, ///< Drop any existing entry, recompile, and re-insert.
};

struct CompileOptions {
  /// Tuning budget: cap on candidates the tuner scores; any value <= 0
  /// means the full space (the tuner's own convention). A capped request
  /// caches under a distinct key so a budgeted report can never shadow
  /// (or be shadowed by) a full-search one.
  int MaxCandidates = -1;

  CachePolicy Policy = CachePolicy::Default;

  /// Batch-scheduling hint: when several requests are submitted together
  /// (compileAllAsync / compileModel), higher-priority requests enter the
  /// pool queue first. Has no effect on a single request.
  int Priority = 0;

  /// Early-exit pruning in the tuner: skip candidates whose admissible
  /// latency lower bound already exceeds the running best. The compiled
  /// report is bit-identical to the exhaustive search (docs/TUNING.md),
  /// so this knob — like SeedCandidate — is excluded from the cache key.
  bool PruneSearch = true;

  /// Transfer seed: candidate-space index the tuner scores first, so
  /// pruning starts with a strong running best. < 0 = none. Sessions fill
  /// this from the cached winners of near-isomorphic keys; it changes
  /// which candidates get scored, never which one wins.
  int SeedCandidate = -1;
};

} // namespace unit

#endif // UNIT_RUNTIME_COMPILEOPTIONS_H
