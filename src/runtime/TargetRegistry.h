//===- runtime/TargetRegistry.h - Backend registration & dispatch ---------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One object per hardware platform bundling everything the runtime needs
/// to compile for it — quantization scheme, machine model, intrinsic list,
/// plan builder / tuner dispatch — which the seed had spread as TargetKind
/// switches across Pipeline.cpp, Tuner.cpp, Executor.cpp, and the engines.
/// Adding a backend is now one TargetRegistry::registerBackend call; the
/// engines, the CompilerSession, and compileForTarget all route through it.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_TARGETREGISTRY_H
#define UNIT_RUNTIME_TARGETREGISTRY_H

#include "graph/Graph.h"
#include "graph/Quantize.h"
#include "perf/MachineModel.h"
#include "runtime/CompileOptions.h"
#include "runtime/KernelCache.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace unit {

class ThreadPool;

/// Compilation services for one hardware platform. Implementations are
/// immutable and thread-safe: compile* methods may run concurrently from
/// the CompilerSession's pool.
class TargetBackend {
public:
  virtual ~TargetBackend();

  virtual TargetKind kind() const = 0;

  /// Prefixed to every cache key ("x86|Cascade Lake (c5.12xlarge)"), so
  /// backends of the same kind with different machine models never share
  /// cache entries.
  virtual std::string cacheSalt() const = 0;

  /// The operand/accumulator types this platform's instructions consume.
  virtual const QuantScheme &scheme() const = 0;

  /// Registered instructions for this target, widest-first.
  virtual std::vector<TensorIntrinsicRef> intrinsics() const;

  /// Canonical cache key for one conv layer: the backend's salt plus the
  /// structural serialization of the operation it would build, so two
  /// layers that build isomorphic operations share one compiled kernel.
  virtual std::string convKey(const ConvLayer &Layer) const = 0;

  /// Tunes one conv layer. \p Pool, when non-null, scores tuning
  /// candidates concurrently (result is identical either way);
  /// \p Options.MaxCandidates caps the search space.
  virtual KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                   const CompileOptions &Options = {}) const = 0;

  /// Tunes one already-built tensor operation.
  virtual KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                 const CompileOptions &Options = {}) const = 0;

  /// Conv3d support (paper §VI.C). The base implementations fatal-error;
  /// backends that can tensorize 3d convolutions override all three.
  /// Hosts that must not abort on bad input (the compile server) check
  /// supportsConv3d() before routing a conv3d workload here.
  virtual bool supportsConv3d() const { return false; }
  virtual std::string conv3dKey(const Conv3dLayer &Layer) const;
  virtual KernelReport compileConv3d(const Conv3dLayer &Layer,
                                     ThreadPool *Pool,
                                     const CompileOptions &Options = {}) const;
};

using TargetBackendRef = std::shared_ptr<const TargetBackend>;

/// UNIT on a dot-product CPU (x86 VNNI or ARM DOT).
class CpuBackend : public TargetBackend {
  CpuMachine Machine;
  TargetKind Target;
  QuantScheme Scheme;
  std::string Salt; ///< Computed once: target + machine fingerprint.
  /// ConvLayer::shapeKey -> canonical cache key. The shape key is a
  /// strictly finer partition than the canonical key, so memoizing is
  /// sound — and it keeps the cache-hit path from rebuilding the whole
  /// blocked-layout op just to probe the cache.
  mutable std::mutex KeyMu;
  mutable std::unordered_map<std::string, std::string> KeyMemo;

public:
  CpuBackend(CpuMachine Machine, TargetKind Target);

  TargetKind kind() const override { return Target; }
  std::string cacheSalt() const override;
  const QuantScheme &scheme() const override { return Scheme; }
  std::string convKey(const ConvLayer &Layer) const override;
  KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                           const CompileOptions &Options = {}) const override;
  KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                         const CompileOptions &Options = {}) const override;

  /// Conv3d flows through the same pipeline (paper §VI.C).
  bool supportsConv3d() const override { return true; }
  std::string conv3dKey(const Conv3dLayer &Layer) const override;
  KernelReport compileConv3d(const Conv3dLayer &Layer, ThreadPool *Pool,
                             const CompileOptions &Options = {}) const override;

  const CpuMachine &machine() const { return Machine; }
};

/// UNIT on an Nvidia GPU (Tensor Core implicit-GEMM path); the conv
/// compile enumerates the graph-level dimension-fusion choice alongside
/// the kernel tuning space.
class GpuBackend : public TargetBackend {
  GpuMachine Machine;
  QuantScheme Scheme;
  std::string Salt; ///< Computed once: target + machine fingerprint.

public:
  explicit GpuBackend(GpuMachine Machine);

  TargetKind kind() const override { return TargetKind::NvidiaGPU; }
  std::string cacheSalt() const override;
  const QuantScheme &scheme() const override { return Scheme; }
  std::string convKey(const ConvLayer &Layer) const override;
  KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                           const CompileOptions &Options = {}) const override;
  KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                         const CompileOptions &Options = {}) const override;

  const GpuMachine &machine() const { return Machine; }
};

/// Process-wide TargetKind -> backend table. The paper's three evaluation
/// machines (Cascade Lake, Graviton2, V100) are registered as defaults on
/// first access; registering a backend for an existing kind replaces it.
class TargetRegistry {
  mutable std::mutex Mu;
  std::vector<TargetBackendRef> Backends;

  TargetRegistry() = default;

public:
  TargetRegistry(const TargetRegistry &) = delete;
  TargetRegistry &operator=(const TargetRegistry &) = delete;

  static TargetRegistry &instance();

  void registerBackend(TargetBackendRef Backend);

  /// The backend for \p K; fatal-errors when none is registered.
  TargetBackendRef get(TargetKind K) const;

  std::vector<TargetBackendRef> all() const;
};

} // namespace unit

#endif // UNIT_RUNTIME_TARGETREGISTRY_H
