//===- runtime/Workload.h - The one thing the compiler compiles -----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Workload is the sum type every supported operation canonicalizes
/// into before compilation: a conv2d layer, a conv3d layer, a dense layer
/// (canonicalized to a 1x1 conv on a 1x1 image, so a dense workload and
/// its equivalent conv share one cache entry), or a raw tensor operation.
/// It is the single currency of the compile surface — CompileRequest
/// carries one, CompilerSession keys its cache off one, and the pipeline's
/// compileWorkload lowers one — so adding a workload kind extends every
/// entry point at once instead of growing a new compile* overload.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_WORKLOAD_H
#define UNIT_RUNTIME_WORKLOAD_H

#include "core/Pipeline.h"
#include "graph/Graph.h"
#include "graph/Layout.h"
#include "graph/Quantize.h"
#include "ir/ComputeOp.h"
#include "runtime/CompileOptions.h"
#include "runtime/KernelCache.h"

#include <string>

namespace unit {

class TargetBackend;
class ThreadPool;

class Workload {
public:
  enum class Kind { Conv2d, Conv3d, Op };

  static Workload conv2d(ConvLayer Layer);
  static Workload conv3d(Conv3dLayer Layer);
  /// Dense-as-1x1 canonicalization: the same ConvLayer Model::addDense
  /// builds, so it hits the conv2d compile path and cache entries.
  static Workload dense(const std::string &Name, int64_t In, int64_t Out);
  static Workload op(ComputeOpRef Op);

  Kind kind() const { return K; }
  /// Layer / op name, for diagnostics only (never part of cache keys).
  const std::string &name() const;

  /// Kind-checked accessors; fatal-error on mismatch.
  const ConvLayer &conv2dLayer() const;
  const Conv3dLayer &conv3dLayer() const;
  const ComputeOpRef &rawOp() const;

  /// Canonical cache key on \p Backend: the backend's machine salt plus
  /// the structural serialization of the operation this workload builds,
  /// so isomorphic workloads (renamed layers, dense vs. equivalent 1x1
  /// conv) collapse onto one compiled kernel.
  std::string cacheKey(const TargetBackend &Backend) const;

  /// Compiles this workload on \p Backend, threading the tuning budget
  /// from \p Options into the search.
  KernelReport compileWith(const TargetBackend &Backend, ThreadPool *Pool,
                           const CompileOptions &Options) const;

  /// Canonicalizes the workload into its laid-out tensor operation under
  /// \p Scheme (direct-conv blocking for conv kinds; raw ops pass
  /// through). This is the operation the core pipeline lowers; GPU
  /// backends substitute their own implicit-GEMM view at compile time.
  LaidOutOp buildOp(const QuantScheme &Scheme) const;

private:
  explicit Workload(Kind K) : K(K) {}

  Kind K;
  ConvLayer C2;   ///< Kind::Conv2d
  Conv3dLayer C3; ///< Kind::Conv3d
  ComputeOpRef Raw; ///< Kind::Op
};

/// The unified pipeline entry: canonicalizes \p W into its laid-out
/// tensor operation under the registered target id \p Target's
/// quantization scheme, then runs the core Inspector -> Rewriter ->
/// Replacer pipeline against the target's registered instructions. Every
/// workload kind shares this one path; core/Pipeline's compileForTarget
/// is the raw-op special case.
CompiledKernel compileWorkload(const Workload &W, const std::string &Target,
                               const TuneHook &Tune = {});

} // namespace unit

#endif // UNIT_RUNTIME_WORKLOAD_H
