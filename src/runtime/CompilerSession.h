//===- runtime/CompilerSession.h - Reusable concurrent compile layer ------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable compilation layer between graph executors and kernel
/// search: one object owning the shared KernelCache and a work-stealing
/// thread pool, exposing compile(op, target) / compileModel(model, target).
/// Distinct shapes of a model tune concurrently and tuning candidates are
/// scored in parallel, but every winner is chosen by an index-stable
/// argmin — parallel and sequential modes produce byte-identical reports.
///
/// Engines (graph/Executor.h) share the process-wide session by default,
/// so a resnet50 compile warms resnet18's kernels and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_COMPILERSESSION_H
#define UNIT_RUNTIME_COMPILERSESSION_H

#include "runtime/KernelCache.h"
#include "runtime/TargetRegistry.h"
#include "support/ThreadPool.h"

#include <memory>
#include <vector>

namespace unit {

struct SessionConfig {
  unsigned Threads = 0;           ///< Pool size; 0 = hardware concurrency.
  bool ParallelShapes = true;     ///< Tune distinct model shapes concurrently.
  bool ParallelCandidates = true; ///< Score tuning candidates concurrently.
};

/// What compiling a whole model produced.
struct ModelCompileResult {
  std::vector<KernelReport> Layers; ///< One per Model::Convs entry.
  size_t DistinctShapes = 0;        ///< Kernels actually visited.
  size_t CacheHitLayers = 0;        ///< Layers served by pre-existing entries.
  double WallSeconds = 0.0;         ///< Measured compile wall time (telemetry).
};

class CompilerSession {
  SessionConfig Config;
  KernelCache Cache;
  std::unique_ptr<ThreadPool> Pool;

  /// The pool handed to tuners, or null when candidate-parallelism is off.
  ThreadPool *tuningPool() { return Config.ParallelCandidates ? Pool.get() : nullptr; }

public:
  explicit CompilerSession(SessionConfig Config = {});
  ~CompilerSession();

  CompilerSession(const CompilerSession &) = delete;
  CompilerSession &operator=(const CompilerSession &) = delete;

  /// The process-wide session every engine uses unless given its own.
  static const std::shared_ptr<CompilerSession> &shared();

  KernelCache &cache() { return Cache; }
  ThreadPool &pool() { return *Pool; }
  const SessionConfig &config() const { return Config; }

  /// Compiles one tensor operation for \p Target's registered backend
  /// (or an explicit backend), returning the cached report when the
  /// canonical key is already present.
  KernelReport compile(const ComputeOpRef &Op, TargetKind Target);
  KernelReport compile(const ComputeOpRef &Op, const TargetBackend &Backend);

  /// Conv-layer entry the engines use.
  KernelReport compileConv(const ConvLayer &Layer,
                           const TargetBackend &Backend);

  /// Conv3d entry (CPU targets, paper §VI.C).
  KernelReport compileConv3d(const Conv3dLayer &Layer,
                             const CpuBackend &Backend);

  /// Compiles every conv layer of \p M, tuning distinct shapes
  /// concurrently when the config allows. Per-layer reports are
  /// byte-identical between parallel and sequential modes.
  ModelCompileResult compileModel(const Model &M, TargetKind Target);
  ModelCompileResult compileModel(const Model &M,
                                  const TargetBackend &Backend);
};

} // namespace unit

#endif // UNIT_RUNTIME_COMPILERSESSION_H
