//===- runtime/CompilerSession.h - Reusable concurrent compile layer ------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reusable compilation layer between graph executors and kernel
/// search: one object owning the shared KernelCache and a work-stealing
/// thread pool, exposing the unified request surface —
///
///   compile(CompileRequest)       blocking
///   compileAsync(CompileRequest)  future-based CompileJob
///   compileAllAsync(requests)     priority-ordered batch submission
///   compileModel(model, target)   submit every distinct layer, then join
///
/// Every workload kind (conv2d / conv3d / dense-as-1x1 / raw op) flows
/// through the same path, and targets are string ids resolved through the
/// TargetRegistry (the legacy per-kind compile* shims were removed once
/// every caller migrated). Distinct shapes of a model tune concurrently
/// and tuning candidates are scored in parallel, but every winner is
/// chosen by an index-stable argmin — parallel and sequential modes
/// produce byte-identical reports.
///
/// The cache persists: saveCache() serializes every surviving entry under
/// a fingerprint of the registered machines, and loadCache() rejects
/// stale or cross-machine files, so a repeat run starts with zero tuning.
///
/// Engines (graph/Executor.h) share the process-wide session by default,
/// so a resnet50 compile warms resnet18's kernels and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_COMPILERSESSION_H
#define UNIT_RUNTIME_COMPILERSESSION_H

#include "obs/Histogram.h"
#include "runtime/CompileRequest.h"
#include "runtime/KernelCache.h"
#include "support/ThreadPool.h"
#include "target/TargetRegistry.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace unit {

struct SessionConfig {
  unsigned Threads = 0;           ///< Pool size; 0 = hardware concurrency.
  bool ParallelShapes = true;     ///< Tune distinct model shapes concurrently.
  bool ParallelCandidates = true; ///< Score tuning candidates concurrently.
  size_t CacheCapacity = 0;       ///< LRU entry cap; 0 = unbounded.
  /// LRU byte cap over the cache's resident-byte accounting; 0 =
  /// unbounded. Enforced on insert, coldest ready entries first
  /// (in-flight compiles are never evicted). Both caps may be set; each
  /// is enforced independently.
  size_t CacheCapacityBytes = 0;
  /// Age-based cache expiry: ready entries older than this re-tune on
  /// next use (KernelCache::setTTL); <= 0 = entries never expire. For
  /// long-lived daemons whose machine stays fixed but whose operators
  /// still want periodic re-tunes.
  double CacheTTLSeconds = 0;
  /// Clock the TTL is measured on; null = process steady clock. A test
  /// hook — injecting a fake clock turns expiry tests into arithmetic
  /// instead of sleeps.
  KernelCache::ClockFn CacheClock;
};

/// Counters describing how the session's async continuation engine has
/// been resolving jobs. All monotonic over the session's lifetime.
struct SessionStats {
  /// Async joins that blocked a pool worker on another job's future. The
  /// continuation engine never does this — the counter exists so tests
  /// and operators can assert it stays 0; any future code path that
  /// reintroduces a blocking join must bump it.
  uint64_t ParkedJoins = 0;
  /// Async joins resolved by registering a continuation on an in-flight
  /// cache entry (drained by the winner; zero pool threads consumed).
  uint64_t ContinuationJoins = 0;
  /// Async submissions served by a ready cache entry — the callback fired
  /// inline on the submitting thread, no pool task spawned.
  uint64_t InlineReadyHits = 0;
  /// Async submissions that won their key and dispatched a fresh compile
  /// to the pool (plus Bypass jobs, which always compile).
  uint64_t FreshDispatches = 0;
  /// Cold compiles whose tuner search was seeded from the cached winner
  /// of a near-isomorphic key (transfer tuning, docs/TUNING.md). Seeding
  /// never changes the compiled report — only how many candidates the
  /// pruned search has to score.
  uint64_t TransferSeeds = 0;
};

/// What compiling a whole model produced.
struct ModelCompileResult {
  std::vector<KernelReport> Layers; ///< One per Model::Convs entry.
  size_t DistinctShapes = 0;        ///< Kernels actually visited.
  size_t CacheHitLayers = 0;        ///< Layers whose entry predated this call
                                    ///< (approximate under concurrent cold
                                    ///< submissions — the probe races).
  size_t FreshCompiles = 0;         ///< Kernels this call actually compiled —
                                    ///< race-free (from the compile itself,
                                    ///< not a cache probe); single-flight
                                    ///< joins of concurrent callers are 0.
  double WallSeconds = 0.0;         ///< Measured compile wall time (telemetry).
};

class CompilerSession {
public:
  /// Fleet hook: consulted by the winning thread of a cold Default-policy
  /// compile before it tunes. Returning a report fulfills the in-flight
  /// entry with it — callers observe a cache hit (Computed=false), no
  /// tuner runs. See setColdMissFetcher.
  using ColdMissFetcher =
      std::function<std::optional<KernelReport>(const std::string &Key)>;
  /// Fleet hook: fired after every successful fresh compile (never for
  /// cache hits, joins, or peer-fetched entries). See setCompileObserver.
  using CompileObserver =
      std::function<void(const std::string &Key, const KernelReport &Report)>;

private:
  SessionConfig Config;
  KernelCache Cache;
  /// Fleet hooks (guarded by HooksMu; read per cold compile, so the lock
  /// is off every warm path). Declared before Pool: workers read them.
  mutable std::mutex HooksMu;
  ColdMissFetcher MissFetcher;
  CompileObserver Observer;
  /// Async compile tasks submitted but not yet finished. Long-lived hosts
  /// (the CompileServer) quiesce() on this before tearing anything down.
  /// Declared (with the cv pair below) before Pool: the pool's destructor
  /// joins workers that still touch them, so they must be destroyed
  /// after the join.
  std::atomic<size_t> InFlight{0};
  /// Wakes quiesce() when the last in-flight job finishes while the
  /// waiter is parked on an empty queue.
  std::mutex QuiesceMu;
  std::condition_variable QuiesceCv;
  /// SessionStats counters (see sessionStats()); declared before Pool for
  /// the same destruction-order reason as the quiesce state above.
  std::atomic<uint64_t> ParkedJoinsCount{0};
  std::atomic<uint64_t> ContinuationJoinsCount{0};
  std::atomic<uint64_t> InlineReadyHitsCount{0};
  std::atomic<uint64_t> FreshDispatchesCount{0};
  std::atomic<uint64_t> TransferSeedsCount{0};
  /// Transfer-tuning index: cache key -> winning candidate index, grouped
  /// by the key's `target|spechash|kind|` prefix so seeds never cross a
  /// backend or workload family. Inner std::map keeps deterministic
  /// iteration (nearest-neighbor ties break by body order, not hash
  /// order). Touched only on cold compiles — warm hits never take the
  /// lock. Declared before Pool: workers record winners into it.
  std::mutex TransferMu;
  std::unordered_map<std::string, std::map<std::string, int>> TransferIndex;
  /// Submit-to-resolve latency histograms (docs/OBSERVABILITY.md), split
  /// by how the request resolved: fresh compile (cold, including
  /// peer-fetched misses), ready cache hit (warm), continuation join.
  /// Wait-free to record; declared before Pool — workers record into
  /// them, so they must outlive the worker join.
  obs::LatencyHistogram ColdLatencyHist;
  obs::LatencyHistogram WarmLatencyHist;
  obs::LatencyHistogram JoinLatencyHist;
  std::unique_ptr<ThreadPool> Pool;

  /// The pool handed to tuners, or null when candidate-parallelism is off.
  ThreadPool *tuningPool() { return Config.ParallelCandidates ? Pool.get() : nullptr; }

  /// Runs \p Request synchronously under \p Key (already derived).
  KernelReport compileKeyed(const CompileRequest &Request,
                            const std::string &Key,
                            bool *ComputedHere = nullptr);

  /// \p Base with SeedCandidate filled from the transfer index when the
  /// caller left it unset: the winning candidate of the structurally
  /// nearest already-compiled key in \p Key's group, if any is within the
  /// distance cutoff. Called only on cold compile paths.
  CompileOptions optionsWithSeed(const CompileOptions &Base,
                                 const std::string &Key);

  /// Candidate-space index the transfer index suggests for \p Key, or -1.
  int transferSeedFor(const std::string &Key);

  /// Feeds \p Key's winning candidate into the transfer index (no-op for
  /// fallback reports with no winner). Called after fresh compiles and
  /// peer-fetched reports — every report that proves a winner for a key.
  void recordTransferWinner(const std::string &Key,
                            const KernelReport &Report);

  /// compileAsync with an optional \p FreshCounter incremented iff the
  /// submitted job runs the compile itself (not a cache join) — the
  /// race-free accounting compileModel aggregates into FreshCompiles.
  CompileJob compileAsyncCounted(CompileRequest Request,
                                 std::atomic<size_t> *FreshCounter);

  /// The continuation engine behind every async entry point. Resolves
  /// \p Request against the cache without ever blocking a pool thread:
  /// ready hits fire \p Finish inline on the submitting thread, joins of
  /// an in-flight compile register a continuation the winner drains, and
  /// only a fresh compile (key winner, or Bypass) submits a pool task.
  /// \p Finish may be null (future-only callers); \p FreshCounter as in
  /// compileAsyncCounted.
  CompileJob dispatchAsync(CompileRequest Request,
                           std::function<void(const KernelReport *,
                                              std::exception_ptr, bool)>
                               Finish,
                           std::atomic<size_t> *FreshCounter);

  /// Marks one async job finished: decrements InFlight and, when it was
  /// the last one, wakes quiesce() — exact notification, no polling.
  void jobFinished();

  /// Snapshot copies of the fleet hooks (cheap: one mutex hop per cold
  /// compile; warm hits never get here).
  ColdMissFetcher missFetcher() const {
    std::lock_guard<std::mutex> Lock(HooksMu);
    return MissFetcher;
  }
  CompileObserver compileObserver() const {
    std::lock_guard<std::mutex> Lock(HooksMu);
    return Observer;
  }
  std::vector<CompileJob>
  compileAllAsyncCounted(std::vector<CompileRequest> Requests,
                         std::atomic<size_t> *FreshCounter);

public:
  explicit CompilerSession(SessionConfig Config = {});
  ~CompilerSession();

  CompilerSession(const CompilerSession &) = delete;
  CompilerSession &operator=(const CompilerSession &) = delete;

  /// The process-wide session every engine uses unless given its own
  /// (returned by value: a reference would race with resetShared).
  static std::shared_ptr<CompilerSession> shared();

  /// Test-only hook: replaces the process-wide session with a fresh one so
  /// tests that mutate the shared cache don't order-depend on each other.
  /// Engines constructed earlier keep their (old) session alive; new
  /// default-constructed engines pick up the replacement.
  static std::shared_ptr<CompilerSession> resetShared(SessionConfig Config = {});

  KernelCache &cache() { return Cache; }
  ThreadPool &pool() { return *Pool; }
  const SessionConfig &config() const { return Config; }

  /// Async compile tasks currently submitted or running — the session's
  /// queue depth (a stats() field of the compile server).
  size_t inFlightJobs() const { return InFlight.load(); }

  /// Blocks until every submitted async compile has finished, helping
  /// drain the pool from the calling thread, then parking on an untimed
  /// wait the final continuation wakes exactly (no timed polling when
  /// idle). Jobs submitted *while* quiescing are waited for too; the
  /// caller is responsible for stopping new submissions first
  /// (graceful-shutdown order: stop intake, then quiesce, then persist).
  void quiesce();

  /// Continuation-engine counters; see SessionStats.
  SessionStats sessionStats() const {
    SessionStats S;
    S.ParkedJoins = ParkedJoinsCount.load();
    S.ContinuationJoins = ContinuationJoinsCount.load();
    S.InlineReadyHits = InlineReadyHitsCount.load();
    S.FreshDispatches = FreshDispatchesCount.load();
    S.TransferSeeds = TransferSeedsCount.load();
    return S;
  }

  /// Async joins that parked a pool worker — 0 under the continuation
  /// engine, by construction. Exposed (and wired into the server `stats`
  /// reply) so regressions are an assertion away.
  uint64_t parkedJoins() const { return ParkedJoinsCount.load(); }

  /// Submit-to-resolve latency distributions, split by resolution kind;
  /// the server's `metrics` message serves these as the
  /// unit_compile_{cold,warm,join}_seconds families.
  struct LatencySnapshots {
    obs::HistogramSnapshot Cold, Warm, Join;
  };
  LatencySnapshots latencySnapshots() const {
    return {ColdLatencyHist.snapshot(), WarmLatencyHist.snapshot(),
            JoinLatencyHist.snapshot()};
  }

  //===--------------------------------------------------------------------===//
  // Fleet hooks
  //===--------------------------------------------------------------------===//

  /// Installs \p Fetch as the cold-miss fetcher. The single-flight winner
  /// of a cold Default-policy compile calls it (on its own thread — a
  /// blocking network probe is fine) before invoking the tuner; a
  /// returned report fulfills the entry as if it had been cached all
  /// along, so every joined waiter resolves and "computed here" stays
  /// false. Refresh compiles skip it by design — Refresh means "tune
  /// *here*, now". The compile server wires PeerManager::fetchMissing in
  /// here; pass nullptr to uninstall.
  void setColdMissFetcher(ColdMissFetcher Fetch) {
    std::lock_guard<std::mutex> Lock(HooksMu);
    MissFetcher = std::move(Fetch);
  }

  /// Installs \p Notify to observe every successful fresh compile (the
  /// single-flight winner, after the cache entry is fulfilled). Hits,
  /// joins, and peer-fetched entries never fire it — so announcing
  /// observed reports to peers cannot echo. Runs on the compiling
  /// thread; keep it non-blocking (PeerManager::announce just enqueues).
  void setCompileObserver(CompileObserver Notify) {
    std::lock_guard<std::mutex> Lock(HooksMu);
    Observer = std::move(Notify);
  }

  //===--------------------------------------------------------------------===//
  // The unified compile surface
  //===--------------------------------------------------------------------===//

  /// Compiles one request, honoring its cache policy and tuning budget.
  /// \p ComputedHere, when non-null, reports whether this call ran a
  /// fresh compile (true) or was served by the cache — a ready entry or
  /// a single-flight join of a concurrent compile (false). Race-free,
  /// unlike probing the cache before compiling; the server's "cached"
  /// response flag and compiled-layer accounting ride on it.
  KernelReport compile(const CompileRequest &Request,
                       bool *ComputedHere = nullptr);

  /// Submits one request to the session pool and returns immediately. A
  /// ready or in-flight cache entry is joined without a pool round-trip.
  /// CompileJob::get() rethrows any exception the backend raised.
  CompileJob compileAsync(CompileRequest Request);

  /// Completion callback for compileAsyncThen: exactly one of \p Report
  /// and \p Error is non-null/non-empty; \p Computed mirrors compile()'s
  /// ComputedHere (true only when the job ran the compile itself).
  /// Invoked on whichever thread resolves the job: the *submitting*
  /// thread (ready cache hits fire before compileAsyncThen returns), the
  /// winner's completing thread (single-flight joins, drained as
  /// continuations), or a pool worker (fresh compiles). Never invoked
  /// while the session holds an internal lock. Keep it short and never
  /// call back into blocking session APIs from inside it.
  using JobCallback = std::function<void(
      const KernelReport *Report, std::exception_ptr Error, bool Computed)>;

  /// compileAsync plus a completion hook: \p OnDone fires exactly once
  /// when the job resolves, including for cache hits and single-flight
  /// joins of another caller's in-flight compile. No variant ever parks a
  /// pool thread on a join — hits resolve inline and joins ride the
  /// winner's completion (see SessionStats) — so pending callbacks cost a
  /// list slot, not a worker. This is what lets an event-driven host —
  /// the compile server's streaming mode — push results as they land
  /// while keeping thousands of tickets in flight over a small pool.
  CompileJob compileAsyncThen(CompileRequest Request, JobCallback OnDone);

  /// Submits a batch, higher CompileOptions::Priority first; the returned
  /// jobs are in the original request order.
  std::vector<CompileJob> compileAllAsync(std::vector<CompileRequest> Requests);

  /// Compiles every conv layer of \p M by submitting all distinct shapes
  /// async and then joining ("submit all, then join") when the config
  /// allows shape parallelism; sequential otherwise. Per-layer reports
  /// are byte-identical between the two modes. \p TargetId resolves
  /// through the process-wide TargetRegistry.
  ModelCompileResult compileModel(const Model &M, const std::string &TargetId,
                                  const CompileOptions &Options = {});
  ModelCompileResult compileModel(const Model &M, const TargetBackend &Backend,
                                  const CompileOptions &Options = {});

  //===--------------------------------------------------------------------===//
  // Cache persistence
  //===--------------------------------------------------------------------===//

  /// Fingerprint the session's cache files are versioned under: a format
  /// tag plus every registered backend's cache salt (target id + spec
  /// hash, which folds in machine parameters, quantization scheme, and
  /// intrinsic descriptions) — so a file written under different machine
  /// models, a different spec revision, or a different format revision is
  /// rejected on load.
  static std::string persistenceFingerprint();

  /// Serializes the surviving ready cache entries to \p Path. Returns the
  /// number of entries written, or std::nullopt on I/O failure.
  std::optional<size_t> saveCache(const std::string &Path) const;

  /// Merges a saveCache() file into this session's cache; stale,
  /// corrupted, or cross-machine files load zero entries.
  KernelCache::LoadResult loadCache(const std::string &Path);
};

} // namespace unit

#endif // UNIT_RUNTIME_COMPILERSESSION_H
