//===- runtime/KernelCache.h - Shared compiled-kernel cache ---------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One thread-safe cache of compiled-kernel reports shared by every engine
/// and session, replacing the per-engine string maps the executors used to
/// carry. Keys are canonical structural serializations of the tensor
/// operation (core/Isomorphism.h canonicalComputeKey) prefixed with the
/// backend's salt, so isomorphic layers with renamed variables hit the same
/// entry while different machines never collide.
///
/// Lookups are single-flight: when two threads ask for the same missing key
/// concurrently, one compiles and the other waits on the same future — a
/// model with repeated shapes never tunes a shape twice.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_KERNELCACHE_H
#define UNIT_RUNTIME_KERNELCACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace unit {

/// What compiling one kernel produced: the modeled latency plus the search
/// telemetry the benches and per-layer reports surface.
struct KernelReport {
  double Seconds = 0.0;
  bool Tensorized = false;
  int BestCandidateIndex = -1; ///< Winning tuning candidate, -1 = fallback.
  int CandidatesTried = 0;
  std::string IntrinsicName;   ///< Winning instruction; empty for fallback.
};

class KernelCache {
public:
  using Compiler = std::function<KernelReport()>;

  /// Returns the cached report for \p Key, compiling it with \p Compile on
  /// a miss. Concurrent misses on one key run \p Compile exactly once; the
  /// losers block on the winner's future.
  KernelReport getOrCompute(const std::string &Key, const Compiler &Compile);

  /// Non-computing probe; std::nullopt when absent or still compiling.
  std::optional<KernelReport> lookup(const std::string &Key) const;

  bool contains(const std::string &Key) const;
  size_t size() const;
  void clear();

  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  CacheStats stats() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<std::string, std::shared_future<KernelReport>> Entries;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

} // namespace unit

#endif // UNIT_RUNTIME_KERNELCACHE_H
