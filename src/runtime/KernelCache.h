//===- runtime/KernelCache.h - Shared compiled-kernel cache ---------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One thread-safe cache of compiled-kernel reports shared by every engine
/// and session, replacing the per-engine string maps the executors used to
/// carry. Keys are canonical structural serializations of the tensor
/// operation (core/Isomorphism.h canonicalComputeKey) prefixed with the
/// backend's salt, so isomorphic layers with renamed variables hit the same
/// entry while different machines never collide.
///
/// Lookups are single-flight: when two threads ask for the same missing key
/// concurrently, one compiles and the other waits on the same future — a
/// model with repeated shapes never tunes a shape twice.
///
/// Joins come in two flavors. The blocking one (getOrCompute) parks the
/// calling thread on the winner's future — fine for caller-owned threads.
/// The continuation one (resolveThen) registers a Waiter callback on the
/// in-flight entry instead; the winner drains every registered waiter when
/// it completes, on the success and failure paths alike. A join therefore
/// never has to occupy a thread, which is what lets a session pool keep
/// tuning while thousands of tickets fan into the same few compiles.
///
/// The cache is bounded (optionally) by an LRU entry cap and/or an LRU
/// byte cap over the resident-byte accounting, expires (optionally) by
/// age — setTTL() makes ready entries older than the TTL read as absent,
/// so a long-lived daemon re-tunes them instead of serving stale reports
/// forever — and persists to disk: save() writes the surviving ready
/// entries under a caller-supplied fingerprint (machine parameters +
/// format version), and load() rejects files whose fingerprint does not
/// match byte-for-byte — stale or cross-machine entries never leak into a
/// session.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_RUNTIME_KERNELCACHE_H
#define UNIT_RUNTIME_KERNELCACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace unit {

/// What compiling one kernel produced: the modeled latency plus the search
/// telemetry the benches and per-layer reports surface.
struct KernelReport {
  double Seconds = 0.0;
  bool Tensorized = false;
  int BestCandidateIndex = -1; ///< Winning tuning candidate, -1 = fallback.
  int CandidatesTried = 0;
  std::string IntrinsicName;   ///< Winning instruction; empty for fallback.
};

class KernelCache {
public:
  using Compiler = std::function<KernelReport()>;

  /// Continuation registered on an in-flight entry. Fired exactly once by
  /// the winner when its compile resolves: (&Report, nullptr) on success,
  /// (nullptr, Error) on failure. Runs on the winner's completing thread
  /// with no cache lock held — keep it short and never call back into
  /// blocking cache APIs from inside it.
  using Waiter =
      std::function<void(const KernelReport *, std::exception_ptr)>;

  /// What resolveThen() found for a key.
  enum class ResolveKind {
    Ready,       ///< Entry ready; the future yields the report immediately.
    Joined,      ///< Compile in flight; the waiter (if any) was registered.
    MustCompute, ///< Caller is the winner and owns running the compile.
  };

  /// Winner-side handle handed out by resolveThen() on MustCompute. The
  /// holder must resolve it exactly once via fulfill() or fail(); both
  /// drain every waiter that joined while the compile ran. The embedded
  /// waiter list doubles as the entry's identity: if insert()/clear()
  /// displaced the slot mid-compile, completion still drains the original
  /// joiners but leaves the usurping entry's accounting alone.
  class ComputeTicket {
    friend class KernelCache;
    std::shared_ptr<std::promise<KernelReport>> Promise;
    std::shared_ptr<std::vector<Waiter>> Waiters;

  public:
    explicit operator bool() const { return Promise != nullptr; }
  };

  /// \p MaxEntries == 0 means unbounded; otherwise least-recently-used
  /// ready entries are evicted once the cap is exceeded. \p MaxBytes
  /// bounds the resident-byte accounting (bytesUsed()) the same way;
  /// both caps may be active at once and are enforced independently.
  /// In-flight entries are never evicted by either cap.
  explicit KernelCache(size_t MaxEntries = 0, size_t MaxBytes = 0)
      : MaxEntries(MaxEntries), MaxBytes(MaxBytes) {}

  /// Returns the cached report for \p Key, compiling it with \p Compile on
  /// a miss. Concurrent misses on one key run \p Compile exactly once; the
  /// losers block on the winner's future. \p ComputedHere, when non-null,
  /// reports whether *this* call ran the compile (false for ready hits
  /// and single-flight joiners) — the race-free "was it cached" signal.
  KernelReport getOrCompute(const std::string &Key, const Compiler &Compile,
                            bool *ComputedHere = nullptr);

  /// Non-blocking single-flight resolve. Exactly one concurrent caller per
  /// missing key gets MustCompute (plus a ComputeTicket it must resolve via
  /// fulfill()/fail()); everyone else gets Ready (report available through
  /// \p FutOut now) or Joined (\p OnDone registered for the winner's drain;
  /// a null \p OnDone joins future-only, for callers that will block on
  /// \p FutOut themselves). \p FutOut, when non-null, always receives the
  /// entry's future. Ready and Joined count as hits, MustCompute as a miss.
  /// In-flight entries keep every existing invariant: never evicted by the
  /// caps, never TTL-expired, and a failed compile erases the key before
  /// the error is published, so the key stays retryable and never poisoned.
  ResolveKind resolveThen(const std::string &Key, Waiter OnDone,
                          std::shared_future<KernelReport> *FutOut,
                          ComputeTicket *Ticket);

  /// Publishes the winner's report for \p Key: readies the entry's future,
  /// folds the now-known report into the byte accounting, enforces the
  /// caps, and fires every registered waiter with (&Report, nullptr).
  /// Waiters run on this thread, after the cache lock is released.
  void fulfill(const std::string &Key, ComputeTicket &Ticket,
               const KernelReport &Report);

  /// Publishes the winner's failure for \p Key: erases the entry *first*
  /// (so the key is immediately retryable — a failed compile never poisons
  /// the cache), then readies the future with \p Error and fires every
  /// registered waiter with (nullptr, Error), lock released.
  void fail(const std::string &Key, ComputeTicket &Ticket,
            std::exception_ptr Error);

  /// Non-computing probe; std::nullopt when absent or still compiling.
  std::optional<KernelReport> lookup(const std::string &Key) const;

  /// The entry's future when present — ready or still in flight. Lets
  /// async callers join an in-flight compile without blocking a thread;
  /// counts as a cache hit in stats(), like a getOrCompute hit.
  std::optional<std::shared_future<KernelReport>>
  peek(const std::string &Key) const;

  /// Inserts a ready report, replacing any existing entry — including an
  /// in-flight one, so production code prefers getOrCompute/load (which
  /// never displace a compile in progress); this is a seeding hook for
  /// tests and tooling.
  void insert(const std::string &Key, const KernelReport &Report);

  /// Drops \p Key if present (no-op otherwise).
  void erase(const std::string &Key);

  /// Drops \p Key only when its entry is ready. An in-flight entry stays:
  /// removing it would let a second compile of the same key start, and
  /// the winner's completion paths assume the entry is still theirs.
  /// CachePolicy::Refresh uses this — a compile currently in flight is
  /// fresh enough to serve as the refreshed result.
  void eraseReady(const std::string &Key);

  bool contains(const std::string &Key) const;
  size_t size() const;
  void clear();

  /// Changes the LRU entry cap (0 = unbounded); evicts immediately when
  /// the current size exceeds the new cap.
  void setCapacity(size_t NewMaxEntries);
  size_t capacity() const;

  /// Changes the LRU byte cap (0 = unbounded); evicts immediately when
  /// the current accounting exceeds the new cap. Eviction walks from the
  /// cold end of the LRU list, skipping in-flight entries.
  void setByteCapacity(size_t NewMaxBytes);
  size_t byteCapacity() const;

  /// Wall-clock source for age-based expiry; injectable so TTL tests can
  /// advance time deterministically instead of sleeping.
  using ClockFn = std::function<double()>;

  /// Age-based expiry: a ready entry older than \p Seconds (measured from
  /// the moment its report became ready, or from load() for persisted
  /// entries) reads as absent — lookup/peek/contains say no, getOrCompute
  /// drops it and recompiles, save() skips it. In-flight entries never
  /// expire (their winner is still computing). \p Seconds <= 0 disables
  /// expiry; \p Clock defaults to the process steady clock.
  void setTTL(double Seconds, ClockFn Clock = {});
  double ttlSeconds() const;

  /// Erases every expired ready entry now (expiry is otherwise lazy — an
  /// expired entry stays resident until its key is touched). Long-lived
  /// daemons call this periodically so dead entries release their bytes.
  /// Returns the number of entries dropped.
  size_t purgeExpired();

  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;   ///< Current entry count (== size()).
    size_t BytesUsed = 0; ///< Approximate resident bytes (== bytesUsed()).
  };
  CacheStats stats() const;

  /// Approximate resident size of the cache in bytes: for each entry the
  /// key (stored twice — hash-map key and LRU node), the report's owned
  /// intrinsic-name string, and the fixed per-entry bookkeeping. In-flight
  /// entries count without their (not-yet-known) intrinsic name. This is
  /// the sizing signal a long-lived server reports, and the quantity the
  /// byte cap (setByteCapacity / SessionConfig::CacheCapacityBytes)
  /// bounds.
  ///
  /// An O(entries) walk under the mutex — exact at the instant of the
  /// call, including in-flight -> ready growth the incremental counter
  /// only folds in at the winner's completion. Fine for the rare,
  /// operator-driven stats path (~10µs/1k entries); cap *enforcement*
  /// reads the O(1) counter instead.
  size_t bytesUsed() const;

  /// Per-entry byte accounting, most-recently-used first. Canonical keys
  /// serialize the whole operation (multi-KB each); a display-only
  /// consumer passes \p MaxKeyBytes to bound how much key material is
  /// copied while the cache mutex is held (Bytes still accounts the full
  /// key; 0 = copy keys whole).
  struct EntrySize {
    std::string Key;
    size_t Bytes = 0;
    bool Ready = true; ///< False while the entry's compile is in flight.
  };
  std::vector<EntrySize> entrySizes(size_t MaxKeyBytes = 0) const;

  //===--------------------------------------------------------------------===//
  // Fleet exchange (src/fabric): per-entry export / import
  //===--------------------------------------------------------------------===//

  /// One ready entry in exchange form — what fetch_cache/push_cache
  /// frames carry between same-fingerprint daemons.
  struct ExportedEntry {
    std::string Key;
    KernelReport Report;
  };

  /// Snapshots ready entries, most-recently-used first. With \p Keys,
  /// exports exactly those (absent, in-flight, and expired keys are
  /// skipped — a fetch for an in-flight key misses rather than blocking
  /// on the winner); without, a bulk export of everything ready.
  /// \p MaxBytes (0 = unbounded) caps the summed approximate wire size
  /// (key + intrinsic name + fixed framing) so one reply frame stays
  /// under the protocol's frame bound. Export refreshes no recency and
  /// counts no hits — it is replication, not a lookup.
  std::vector<ExportedEntry>
  exportReady(size_t MaxBytes = 0,
              const std::vector<std::string> *Keys = nullptr) const;

  /// Merges peer-supplied entries. Keys already present — ready *or* in
  /// flight — keep their local value: a peer's gift never displaces a
  /// live compile (the single-flight winner still owns its entry) or a
  /// local result. Caps are enforced after the merge, exactly as for
  /// load(). Returns the number of entries actually inserted.
  size_t importReady(const std::vector<ExportedEntry> &NewEntries);

  //===--------------------------------------------------------------------===//
  // Disk persistence
  //===--------------------------------------------------------------------===//

  enum class LoadStatus {
    Loaded,              ///< Entries merged into the cache.
    FileNotFound,        ///< Path could not be opened for reading.
    BadFormat,           ///< Corrupted / truncated / wrong format version.
    FingerprintMismatch, ///< Valid file from a different machine or config.
  };
  struct LoadResult {
    LoadStatus Status = LoadStatus::BadFormat;
    size_t EntriesLoaded = 0;
  };

  /// Writes every *ready* entry (in-flight compiles are skipped, evicted
  /// entries are gone — survivors only) in most-recently-used-first order
  /// under \p Fingerprint. Returns the number of entries written.
  size_t save(std::ostream &Out, const std::string &Fingerprint) const;

  /// Parses a save()d stream. All-or-nothing: a corrupted file or a
  /// fingerprint mismatch loads zero entries. Loaded entries are merged —
  /// keys already present (or in flight) keep their current value.
  LoadResult load(std::istream &In, const std::string &Fingerprint);

  /// File convenience wrappers. saveFile returns entries written, or
  /// std::nullopt when the file could not be created.
  std::optional<size_t> saveFile(const std::string &Path,
                                 const std::string &Fingerprint) const;
  LoadResult loadFile(const std::string &Path, const std::string &Fingerprint);

  /// Deletes "<Path>.tmp.*" leftovers a crashed saver orphaned (the
  /// write-then-rename scheme never publishes them, but each crash
  /// leaves one behind). Call at startup, before serving: a *live*
  /// process concurrently saving the same path could lose its in-flight
  /// temp to this sweep, and sharing one cache file between running
  /// daemons is unsupported anyway.
  static void removeStaleSaves(const std::string &Path);

private:
  struct Entry {
    std::shared_future<KernelReport> Fut;
    std::list<std::string>::iterator LruIt; ///< Position in Lru.
    /// The byte count this entry last contributed to BytesResident.
    /// Storing it makes the incremental counter exact: whatever was
    /// added is what gets subtracted on erase, even across the
    /// in-flight -> ready size transition.
    size_t AccountedBytes = 0;
    /// Clock reading when the report became ready; < 0 while in flight.
    /// The TTL is measured against this.
    double ReadyAt = -1;
    /// Continuations to drain when the in-flight compile resolves. Non-null
    /// exactly while in flight (resolveThen allocates it with the entry);
    /// ready entries drop it. Shared with the winner's ComputeTicket so a
    /// displaced winner still drains the joiners it owns.
    std::shared_ptr<std::vector<Waiter>> Waiters;
  };

  /// Moves \p E's node to the front of the LRU list (splice keeps the
  /// stored iterator valid, so the entry itself is untouched). Mu held.
  void touchLocked(const Entry &E) const;
  /// Recomputes \p E's resident bytes, folds the delta into
  /// BytesResident, and stores the new value. Mu must be held. Called
  /// on insert and when an in-flight entry becomes ready (the intrinsic
  /// name materializes).
  void accountLocked(const std::string &Key, Entry &E);
  /// Inserts an entry (Mu must be held) and returns its map slot.
  Entry &insertLocked(const std::string &Key,
                      std::shared_future<KernelReport> Fut);
  /// Erases \p Key from map + LRU list. Mu must be held.
  void eraseLocked(const std::string &Key);
  /// Evicts ready LRU-tail entries until size() <= MaxEntries and the
  /// byte accounting <= MaxBytes (in-flight compiles are never evicted).
  /// Mu must be held.
  void enforceCapacityLocked();
  /// Approximate bytes one entry keeps resident. Mu must be held.
  size_t entryBytesLocked(const std::string &Key, const Entry &E) const;
  /// True when \p E is ready and older than the TTL. Mu must be held.
  bool expiredLocked(const Entry &E) const;
  /// The TTL clock reading (Clock when set, steady clock otherwise).
  /// Mu must be held (Clock is caller-supplied mutable state).
  double nowLocked() const;

  mutable std::mutex Mu;
  std::unordered_map<std::string, Entry> Entries;
  /// Front = most recently used. Mutated by const probes (lookup/peek
  /// refresh recency), hence mutable.
  mutable std::list<std::string> Lru;
  size_t MaxEntries = 0;
  size_t MaxBytes = 0;
  double TTLSeconds = 0; ///< <= 0 = entries never expire.
  ClockFn Clock;         ///< Null = steadyNowSeconds.
  /// Sum of every entry's AccountedBytes — the O(1) signal the byte cap
  /// is enforced against (bytesUsed()/stats() keep their exact walk).
  size_t BytesResident = 0;
  mutable std::atomic<uint64_t> Hits{0}; ///< peek() is a const hit path.
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace unit

#endif // UNIT_RUNTIME_KERNELCACHE_H
