//===- tir/TIRPrinter.cpp --------------------------------------------------===//

#include "tir/TIRPrinter.h"

#include "ir/Printer.h"
#include "support/StringUtils.h"
#include "tir/StmtVisitor.h"

using namespace unit;

namespace {

class Printer : public StmtVisitor {
public:
  std::string Out;
  unsigned Indent = 0;

  void line(const std::string &S) {
    Out += std::string(Indent * 2, ' ') + S + "\n";
  }

  void visitFor(const ForNode *N) override {
    std::string Anno;
    if (N->Annotation != ForKind::Serial)
      Anno = std::string(" // ") + forKindName(N->Annotation);
    line(formatStr("for (%s = 0; %s < %lld; ++%s)%s",
                   N->LoopVar->name().c_str(), N->LoopVar->name().c_str(),
                   static_cast<long long>(N->extent()),
                   N->LoopVar->name().c_str(), Anno.c_str()));
    ++Indent;
    visit(N->Body);
    --Indent;
  }

  void visitStore(const StoreNode *N) override {
    line(N->Buf->name() + "[" + exprToString(N->Index) +
         "] = " + exprToString(N->Value) + ";");
  }

  void visitIfThenElse(const IfThenElseNode *N) override {
    line("if (" + exprToString(N->Cond) + ")");
    ++Indent;
    visit(N->Then);
    --Indent;
    if (N->Else) {
      line("else");
      ++Indent;
      visit(N->Else);
      --Indent;
    }
  }

  void visitPragma(const PragmaNode *N) override {
    line("#pragma " + N->Key + " " + N->Value);
    visit(N->Body);
  }

  void visitEvaluate(const EvaluateNode *N) override {
    line(exprToString(N->Value) + ";");
  }
};

} // namespace

std::string unit::stmtToString(const StmtRef &S) {
  Printer P;
  P.visit(S);
  return P.Out;
}
