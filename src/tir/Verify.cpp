//===- tir/Verify.cpp ------------------------------------------------------===//

#include "tir/Verify.h"

#include "ir/ExprVisitor.h"
#include "tir/StmtVisitor.h"

#include <set>

using namespace unit;

namespace {

/// Scans one embedded expression for violations.
class ExprChecker : public ExprVisitor {
public:
  const std::set<const IterVarNode *> &InScope;
  std::string Error;

  explicit ExprChecker(const std::set<const IterVarNode *> &InScope)
      : InScope(InScope) {}

  void visitVar(const VarNode *N) override {
    if (!InScope.count(N->IV.get()))
      Error = "loop variable '" + N->IV->name() +
              "' used outside its loop";
  }

  void visitLoad(const LoadNode *N) override {
    if (N->Indices.size() != 1)
      Error = "load from '" + N->Buf->name() +
              "' is not flattened to a single index";
    ExprVisitor::visitLoad(N);
  }

  void visitReduce(const ReduceNode *) override {
    Error = "Reduce node present in tensor IR";
  }
};

/// Walks statements tracking loop scope.
class StmtChecker : public StmtVisitor {
public:
  std::set<const IterVarNode *> InScope;
  std::string Error;

  void check(const ExprRef &E) {
    if (!Error.empty())
      return;
    ExprChecker C(InScope);
    C.visit(E);
    if (!C.Error.empty())
      Error = C.Error;
  }

  void visitExpr(const ExprRef &E) override { check(E); }

  void visitFor(const ForNode *N) override {
    if (!Error.empty())
      return;
    if (N->extent() <= 0) {
      Error = "loop '" + N->LoopVar->name() + "' has non-positive extent";
      return;
    }
    if (InScope.count(N->LoopVar.get())) {
      Error = "loop variable '" + N->LoopVar->name() + "' shadowed";
      return;
    }
    InScope.insert(N->LoopVar.get());
    StmtVisitor::visitFor(N);
    InScope.erase(N->LoopVar.get());
  }

  void visitStore(const StoreNode *N) override {
    if (!Error.empty())
      return;
    if (N->Index->dtype().lanes() != N->Value->dtype().lanes()) {
      Error = "store to '" + N->Buf->name() + "' has mismatched lanes";
      return;
    }
    StmtVisitor::visitStore(N);
  }
};

} // namespace

VerifyResult unit::verifyTIR(const StmtRef &S) {
  StmtChecker C;
  C.visit(S);
  return VerifyResult{C.Error};
}
