//===- tir/StmtVisitor.h - Statement visitors and mutators -----------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-only and rebuilding walks over tensor IR statements, mirroring
/// ir/ExprVisitor.h. StmtMutator also exposes an expression hook so passes
/// can rewrite expressions embedded in statements.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TIR_STMTVISITOR_H
#define UNIT_TIR_STMTVISITOR_H

#include "tir/Stmt.h"

namespace unit {

/// Read-only recursive statement walk.
class StmtVisitor {
public:
  virtual ~StmtVisitor();

  void visit(const StmtRef &S);

  virtual void visitFor(const ForNode *N);
  virtual void visitStore(const StoreNode *N);
  virtual void visitSeq(const SeqNode *N);
  virtual void visitIfThenElse(const IfThenElseNode *N);
  virtual void visitPragma(const PragmaNode *N);
  virtual void visitEvaluate(const EvaluateNode *N);

  /// Called for every expression embedded in a statement; default no-op.
  virtual void visitExpr(const ExprRef &E) {}
};

/// Rebuilding statement walk preserving sharing.
class StmtMutator {
public:
  virtual ~StmtMutator();

  StmtRef mutate(const StmtRef &S);

  virtual StmtRef mutateFor(const StmtRef &S, const ForNode *N);
  virtual StmtRef mutateStore(const StmtRef &S, const StoreNode *N);
  virtual StmtRef mutateSeq(const StmtRef &S, const SeqNode *N);
  virtual StmtRef mutateIfThenElse(const StmtRef &S, const IfThenElseNode *N);
  virtual StmtRef mutatePragma(const StmtRef &S, const PragmaNode *N);
  virtual StmtRef mutateEvaluate(const StmtRef &S, const EvaluateNode *N);

  /// Expression rewrite hook applied to embedded expressions; identity by
  /// default.
  virtual ExprRef mutateExpr(const ExprRef &E) { return E; }
};

} // namespace unit

#endif // UNIT_TIR_STMTVISITOR_H
