//===- tir/StmtVisitor.cpp -------------------------------------------------===//

#include "tir/StmtVisitor.h"

#include "support/ErrorHandling.h"

using namespace unit;

StmtVisitor::~StmtVisitor() = default;
StmtMutator::~StmtMutator() = default;

void StmtVisitor::visit(const StmtRef &S) {
  switch (S->kind()) {
  case StmtNode::Kind::For:
    return visitFor(cast<ForNode>(S));
  case StmtNode::Kind::Store:
    return visitStore(cast<StoreNode>(S));
  case StmtNode::Kind::Seq:
    return visitSeq(cast<SeqNode>(S));
  case StmtNode::Kind::IfThenElse:
    return visitIfThenElse(cast<IfThenElseNode>(S));
  case StmtNode::Kind::Pragma:
    return visitPragma(cast<PragmaNode>(S));
  case StmtNode::Kind::Evaluate:
    return visitEvaluate(cast<EvaluateNode>(S));
  }
  unit_unreachable("unknown statement kind");
}

void StmtVisitor::visitFor(const ForNode *N) { visit(N->Body); }

void StmtVisitor::visitStore(const StoreNode *N) {
  visitExpr(N->Index);
  visitExpr(N->Value);
}

void StmtVisitor::visitSeq(const SeqNode *N) {
  for (const StmtRef &S : N->Stmts)
    visit(S);
}

void StmtVisitor::visitIfThenElse(const IfThenElseNode *N) {
  visitExpr(N->Cond);
  visit(N->Then);
  if (N->Else)
    visit(N->Else);
}

void StmtVisitor::visitPragma(const PragmaNode *N) { visit(N->Body); }

void StmtVisitor::visitEvaluate(const EvaluateNode *N) {
  visitExpr(N->Value);
}

StmtRef StmtMutator::mutate(const StmtRef &S) {
  switch (S->kind()) {
  case StmtNode::Kind::For:
    return mutateFor(S, cast<ForNode>(S));
  case StmtNode::Kind::Store:
    return mutateStore(S, cast<StoreNode>(S));
  case StmtNode::Kind::Seq:
    return mutateSeq(S, cast<SeqNode>(S));
  case StmtNode::Kind::IfThenElse:
    return mutateIfThenElse(S, cast<IfThenElseNode>(S));
  case StmtNode::Kind::Pragma:
    return mutatePragma(S, cast<PragmaNode>(S));
  case StmtNode::Kind::Evaluate:
    return mutateEvaluate(S, cast<EvaluateNode>(S));
  }
  unit_unreachable("unknown statement kind");
}

StmtRef StmtMutator::mutateFor(const StmtRef &S, const ForNode *N) {
  StmtRef Body = mutate(N->Body);
  if (Body == N->Body)
    return S;
  return makeFor(N->LoopVar, N->Annotation, std::move(Body));
}

StmtRef StmtMutator::mutateStore(const StmtRef &S, const StoreNode *N) {
  ExprRef Index = mutateExpr(N->Index);
  ExprRef Value = mutateExpr(N->Value);
  if (Index == N->Index && Value == N->Value)
    return S;
  return makeStore(N->Buf, std::move(Index), std::move(Value));
}

StmtRef StmtMutator::mutateSeq(const StmtRef &S, const SeqNode *N) {
  std::vector<StmtRef> Stmts;
  Stmts.reserve(N->Stmts.size());
  bool Changed = false;
  for (const StmtRef &X : N->Stmts) {
    Stmts.push_back(mutate(X));
    Changed |= Stmts.back() != X;
  }
  if (!Changed)
    return S;
  return makeSeq(std::move(Stmts));
}

StmtRef StmtMutator::mutateIfThenElse(const StmtRef &S,
                                      const IfThenElseNode *N) {
  ExprRef Cond = mutateExpr(N->Cond);
  StmtRef Then = mutate(N->Then);
  StmtRef Else = N->Else ? mutate(N->Else) : nullptr;
  if (Cond == N->Cond && Then == N->Then && Else == N->Else)
    return S;
  return makeIfThenElse(std::move(Cond), std::move(Then), std::move(Else));
}

StmtRef StmtMutator::mutatePragma(const StmtRef &S, const PragmaNode *N) {
  StmtRef Body = mutate(N->Body);
  if (Body == N->Body)
    return S;
  return makePragma(N->Key, N->Value, std::move(Body));
}

StmtRef StmtMutator::mutateEvaluate(const StmtRef &S, const EvaluateNode *N) {
  ExprRef Value = mutateExpr(N->Value);
  if (Value == N->Value)
    return S;
  return makeEvaluate(std::move(Value));
}
