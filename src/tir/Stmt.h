//===- tir/Stmt.h - Imperative tensor IR -----------------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tensor IR of paper §II.C.3: an imperative loop program with two
/// constraints that enable strong analysis assumptions — every loop is
/// canonical (0..extent-1 step 1) and every buffer access is restrict
/// (no aliasing between distinct tensors). Statements reference the same
/// expression nodes as the DSL, but all loads/stores are flattened to a
/// single (possibly vector) element index.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TIR_STMT_H
#define UNIT_TIR_STMT_H

#include "ir/Expr.h"
#include "schedule/Schedule.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace unit {

class StmtNode;
using StmtRef = std::shared_ptr<const StmtNode>;

/// Base of all statements.
class StmtNode {
public:
  enum class Kind : uint8_t { For, Store, Seq, IfThenElse, Pragma, Evaluate };

private:
  const Kind K;

protected:
  explicit StmtNode(Kind K) : K(K) {}

public:
  virtual ~StmtNode();
  Kind kind() const { return K; }
};

/// Canonical counted loop. Extent comes from the loop variable.
class ForNode : public StmtNode {
public:
  const IterVar LoopVar;
  const ForKind Annotation;
  const StmtRef Body;

  ForNode(IterVar LoopVar, ForKind Annotation, StmtRef Body)
      : StmtNode(Kind::For), LoopVar(std::move(LoopVar)),
        Annotation(Annotation), Body(std::move(Body)) {}

  int64_t extent() const { return LoopVar->extent(); }

  static bool classof(const StmtNode *S) { return S->kind() == Kind::For; }
};

/// Buffer write with a flat element index; vector stores carry a vector
/// index (Ramp/Concat) whose lane count matches the value.
class StoreNode : public StmtNode {
public:
  const TensorRef Buf;
  const ExprRef Index;
  const ExprRef Value;

  StoreNode(TensorRef Buf, ExprRef Index, ExprRef Value)
      : StmtNode(Kind::Store), Buf(std::move(Buf)), Index(std::move(Index)),
        Value(std::move(Value)) {}

  static bool classof(const StmtNode *S) { return S->kind() == Kind::Store; }
};

/// Statement sequence.
class SeqNode : public StmtNode {
public:
  const std::vector<StmtRef> Stmts;

  explicit SeqNode(std::vector<StmtRef> Stmts)
      : StmtNode(Kind::Seq), Stmts(std::move(Stmts)) {}

  static bool classof(const StmtNode *S) { return S->kind() == Kind::Seq; }
};

/// Conditional; Else may be null. Residue guards lower to
/// `if (likely(lt(i, extent)))` — the branch whose cost the paper blames
/// for CPU workloads #1 and #4.
class IfThenElseNode : public StmtNode {
public:
  const ExprRef Cond;
  const StmtRef Then;
  const StmtRef Else; ///< May be null.

  IfThenElseNode(ExprRef Cond, StmtRef Then, StmtRef Else)
      : StmtNode(Kind::IfThenElse), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  static bool classof(const StmtNode *S) {
    return S->kind() == Kind::IfThenElse;
  }
};

/// Key/value annotation region; `{"tensorize", <intrinsic>}` marks the loop
/// nest the Replacer rewrites (paper Fig. 5c's `#pragma tensorize`).
class PragmaNode : public StmtNode {
public:
  const std::string Key;
  const std::string Value;
  const StmtRef Body;

  PragmaNode(std::string Key, std::string Value, StmtRef Body)
      : StmtNode(Kind::Pragma), Key(std::move(Key)), Value(std::move(Value)),
        Body(std::move(Body)) {}

  static bool classof(const StmtNode *S) { return S->kind() == Kind::Pragma; }
};

/// Expression evaluated for effect.
class EvaluateNode : public StmtNode {
public:
  const ExprRef Value;

  explicit EvaluateNode(ExprRef Value)
      : StmtNode(Kind::Evaluate), Value(std::move(Value)) {}

  static bool classof(const StmtNode *S) {
    return S->kind() == Kind::Evaluate;
  }
};

// Factories.
StmtRef makeFor(IterVar LoopVar, ForKind Annotation, StmtRef Body);
StmtRef makeStore(TensorRef Buf, ExprRef Index, ExprRef Value);
StmtRef makeSeq(std::vector<StmtRef> Stmts);
StmtRef makeIfThenElse(ExprRef Cond, StmtRef Then, StmtRef Else = nullptr);
StmtRef makePragma(std::string Key, std::string Value, StmtRef Body);
StmtRef makeEvaluate(ExprRef Value);

} // namespace unit

#endif // UNIT_TIR_STMT_H
