//===- tir/Lower.h - ComputeOp + Schedule -> tensor IR --------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a scheduled ComputeOp into imperative tensor IR:
///
///   * an initialization nest over the output (skipped for in-place-update
///     ops, whose accumulator is the live output buffer), then
///   * the main nest following the schedule's leaf order, where the store
///     accumulates `out = combine(out, source)` for reductions,
///   * with every multi-dimensional access flattened to row-major element
///     offsets, residue guards wrapped in `likely`, loop annotations and
///     pragmas materialized.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TIR_LOWER_H
#define UNIT_TIR_LOWER_H

#include "schedule/Schedule.h"
#include "tir/Stmt.h"

namespace unit {

/// Lowers \p S to tensor IR. Fatal-errors on malformed schedules.
StmtRef lower(const Schedule &S);

/// Flattens one DSL-level multi-index load into a single row-major index.
/// Exposed for the Replacer, which builds operand expressions directly.
ExprRef flattenLoad(const LoadNode *Load);

/// Row-major flat index expression for \p Buf with \p Indices.
ExprRef flattenIndex(const TensorRef &Buf, const std::vector<ExprRef> &Indices);

} // namespace unit

#endif // UNIT_TIR_LOWER_H
