//===- tir/TIRPrinter.h - Tensor IR pretty-printing ------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Indented text rendering of tensor IR, used by diagnostics, the example
/// binaries' stage dumps, and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TIR_TIRPRINTER_H
#define UNIT_TIR_TIRPRINTER_H

#include "tir/Stmt.h"

#include <string>

namespace unit {

/// Renders \p S as indented pseudo-C.
std::string stmtToString(const StmtRef &S);

} // namespace unit

#endif // UNIT_TIR_TIRPRINTER_H
