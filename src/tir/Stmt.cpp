//===- tir/Stmt.cpp --------------------------------------------------------===//

#include "tir/Stmt.h"

#include <cassert>

using namespace unit;

StmtNode::~StmtNode() = default;

StmtRef unit::makeFor(IterVar LoopVar, ForKind Annotation, StmtRef Body) {
  assert(LoopVar && Body && "null For components");
  return std::make_shared<ForNode>(std::move(LoopVar), Annotation,
                                   std::move(Body));
}

StmtRef unit::makeStore(TensorRef Buf, ExprRef Index, ExprRef Value) {
  assert(Buf && Index && Value && "null Store components");
  assert(Index->dtype().lanes() == Value->dtype().lanes() &&
         "store index and value lane counts must match");
  assert(Value->dtype().sameScalarType(Buf->dtype()) &&
         "store value scalar type must match the buffer");
  return std::make_shared<StoreNode>(std::move(Buf), std::move(Index),
                                     std::move(Value));
}

StmtRef unit::makeSeq(std::vector<StmtRef> Stmts) {
  assert(!Stmts.empty() && "empty sequence");
  if (Stmts.size() == 1)
    return Stmts.front();
  return std::make_shared<SeqNode>(std::move(Stmts));
}

StmtRef unit::makeIfThenElse(ExprRef Cond, StmtRef Then, StmtRef Else) {
  assert(Cond && Then && "null If components");
  return std::make_shared<IfThenElseNode>(std::move(Cond), std::move(Then),
                                          std::move(Else));
}

StmtRef unit::makePragma(std::string Key, std::string Value, StmtRef Body) {
  assert(Body && "null Pragma body");
  return std::make_shared<PragmaNode>(std::move(Key), std::move(Value),
                                      std::move(Body));
}

StmtRef unit::makeEvaluate(ExprRef Value) {
  assert(Value && "null Evaluate value");
  return std::make_shared<EvaluateNode>(std::move(Value));
}
