//===- tir/Verify.h - Tensor IR well-formedness checks ---------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the tensor IR constraints of paper §II.C.3: canonical loops
/// with distinct variables, flattened restrict accesses, no Reduce nodes,
/// every variable dominated by its loop, and lane-consistent vector stores.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TIR_VERIFY_H
#define UNIT_TIR_VERIFY_H

#include "tir/Stmt.h"

#include <string>

namespace unit {

/// Verification result; `ok()` is true when no violation was found.
struct VerifyResult {
  std::string Error; ///< Empty when valid.

  bool ok() const { return Error.empty(); }
};

/// Checks \p S against the tensor IR invariants.
VerifyResult verifyTIR(const StmtRef &S);

} // namespace unit

#endif // UNIT_TIR_VERIFY_H
