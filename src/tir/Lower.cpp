//===- tir/Lower.cpp -------------------------------------------------------===//

#include "tir/Lower.h"

#include "ir/ExprVisitor.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace unit;

ExprRef unit::flattenIndex(const TensorRef &Buf,
                           const std::vector<ExprRef> &Indices) {
  assert(Indices.size() == Buf->rank() && "rank mismatch in flatten");
  std::vector<int64_t> Strides = Buf->strides();
  ExprRef Flat = makeIntImm(0);
  for (size_t I = 0; I < Indices.size(); ++I)
    Flat = Flat + Indices[I] * makeIntImm(Strides[I]);
  return Flat;
}

ExprRef unit::flattenLoad(const LoadNode *Load) {
  if (Load->Indices.size() == 1)
    return makeVectorLoad(Load->Buf, Load->Indices.front());
  return makeVectorLoad(Load->Buf, flattenIndex(Load->Buf, Load->Indices));
}

namespace {

/// Rewrites every multi-index Load into a flat single-index Load.
class FlattenMutator : public ExprMutator {
public:
  ExprRef mutateLoad(const ExprRef &E, const LoadNode *N) override {
    std::vector<ExprRef> Indices;
    Indices.reserve(N->Indices.size());
    for (const ExprRef &I : N->Indices)
      Indices.push_back(mutate(I));
    if (Indices.size() == 1)
      return makeVectorLoad(N->Buf, Indices.front());
    return makeVectorLoad(N->Buf, flattenIndex(N->Buf, Indices));
  }
};

ExprNode::Kind combinerOpcode(ReduceKind K) {
  switch (K) {
  case ReduceKind::Sum:
    return ExprNode::Kind::Add;
  case ReduceKind::Max:
    return ExprNode::Kind::Max;
  case ReduceKind::Min:
    return ExprNode::Kind::Min;
  }
  unit_unreachable("unknown reduce kind");
}

/// Combiner identity element for initialization.
ExprRef combinerIdentity(ReduceKind K, DataType DType) {
  switch (K) {
  case ReduceKind::Sum:
    return DType.isFloat() ? makeFloatImm(0.0, DType) : makeIntImm(0, DType);
  case ReduceKind::Max:
    // A sufficiently small value; exact min-of-type for the integral types
    // we use. Floats use -inf-ish large negative.
    if (DType.isFloat())
      return makeFloatImm(-1e300, DType);
    return makeIntImm(DType.isUInt() ? 0
                                     : -(int64_t(1) << (DType.bits() - 1)),
                      DType);
  case ReduceKind::Min:
    if (DType.isFloat())
      return makeFloatImm(1e300, DType);
    if (DType.isUInt())
      return makeIntImm((int64_t(1) << DType.bits()) - 1, DType);
    return makeIntImm((int64_t(1) << (DType.bits() - 1)) - 1, DType);
  }
  unit_unreachable("unknown reduce kind");
}

} // namespace

StmtRef unit::lower(const Schedule &S) {
  const ComputeOp &Op = *S.op();
  const TensorRef &Out = Op.output();

  VarSubst Roots = S.rootBindings();
  FlattenMutator Flatten;

  // Output flat index in terms of leaf variables.
  std::vector<ExprRef> OutIdx;
  for (const IterVar &Axis : Op.axes())
    OutIdx.push_back(Roots.at(Axis.get()));
  ExprRef OutFlat = flattenIndex(Out, OutIdx);

  const ReduceNode *Reduce = Op.reduceRoot();

  // --- Main nest body ---
  ExprRef StoreValue;
  if (Reduce) {
    ExprRef Source = Flatten.mutate(substitute(Reduce->Source, Roots));
    ExprRef Current = makeVectorLoad(Out, OutFlat);
    StoreValue =
        makeBinary(combinerOpcode(Reduce->RKind), Current, std::move(Source));
  } else {
    StoreValue = Flatten.mutate(substitute(Op.body(), Roots));
  }
  StmtRef Body = makeStore(Out, OutFlat, std::move(StoreValue));

  // Residue guards around the store, wrapped in `likely`.
  for (const ExprRef &Pred : S.residuePredicates()) {
    ExprRef Guard = makeCall("likely", CallKind::Pure,
                             {Flatten.mutate(substitute(Pred, Roots))},
                             DataType::i32());
    // Predicates are already in leaf terms; substitution is a no-op but
    // keeps the invariant obvious.
    Body = makeIfThenElse(std::move(Guard), std::move(Body));
  }

  // Wrap the leaf loops inside-out.
  for (auto It = S.leaves().rbegin(), E = S.leaves().rend(); It != E; ++It) {
    const IterVar &Leaf = *It;
    Body = makeFor(Leaf, S.annotation(Leaf), std::move(Body));
    for (const auto &[Key, Value] : S.pragmas(Leaf))
      Body = makePragma(Key, Value, std::move(Body));
  }

  if (!Reduce || Op.isInPlaceUpdate())
    return Body;

  // --- Initialization nest (reduction ops only) ---
  // Loops directly over the root data-parallel axes; the init value is the
  // reduce's Init expression or the combiner identity.
  ExprRef InitValue = Reduce->Init
                          ? Flatten.mutate(Reduce->Init)
                          : combinerIdentity(Reduce->RKind,
                                             Out->dtype());
  std::vector<ExprRef> InitIdx;
  for (const IterVar &Axis : Op.axes())
    InitIdx.push_back(makeVar(Axis));
  StmtRef Init = makeStore(Out, flattenIndex(Out, InitIdx),
                           std::move(InitValue));
  for (auto It = Op.axes().rbegin(), E = Op.axes().rend(); It != E; ++It)
    Init = makeFor(*It, ForKind::Serial, std::move(Init));

  return makeSeq({std::move(Init), std::move(Body)});
}
