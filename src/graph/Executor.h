//===- graph/Executor.h - Model execution through pluggable engines -------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end model inference accounting. An InferenceEngine prices each
/// compute layer (UNIT engines run the real Inspector/Rewriter/Tuner
/// pipeline per distinct shape; simulated vendor engines price their fixed
/// expert schedules through the same cost model); the executor sums layers,
/// glue operators, and framework dispatch overheads — the quantities behind
/// the paper's Figs. 8, 9, and 12.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_EXECUTOR_H
#define UNIT_GRAPH_EXECUTOR_H

#include "graph/Fusion.h"
#include "graph/Layout.h"
#include "graph/Quantize.h"
#include "runtime/CompilerSession.h"
#include "tuner/Tuner.h"

#include <memory>
#include <string>

namespace unit {

/// Prices layers of one model on one software stack.
class InferenceEngine {
public:
  virtual ~InferenceEngine();

  virtual std::string name() const = 0;
  /// Modeled seconds for one conv (or dense-as-1x1) layer.
  virtual double convSeconds(const ConvLayer &Layer) = 0;
  /// Hint that \p M's layers are about to be priced. UNIT engines submit
  /// async compile jobs for every distinct shape, so the per-layer
  /// convSeconds calls overlap graph pricing with kernel tuning instead
  /// of blocking layer by layer. Default: no-op (vendor baselines price
  /// fixed expert schedules with nothing to warm).
  virtual void prefetch(const Model &M) { (void)M; }
  /// Framework dispatch overhead per operator.
  virtual double perOpOverheadSeconds() const = 0;
  /// Fraction of elementwise epilogues fused into producing kernels.
  virtual double fusionQuality() const = 0;
  /// Streaming bandwidth for unfused glue operators (bytes/second).
  virtual double glueBytesPerSecond() const = 0;
};

/// Sums conv kernels, glue traffic, and dispatch overheads.
double modelLatencySeconds(const Model &M, InferenceEngine &Engine);

/// Streaming bandwidth the UNIT engines assume for unfused glue
/// operators on \p M. Shared so an engine that compiles *remotely*
/// (server/RemoteEngine.h) prices glue identically to the in-process
/// UnitCpuEngine / UnitGpuEngine.
double cpuGlueBytesPerSecond(const CpuMachine &M);
double gpuGlueBytesPerSecond(const GpuMachine &M);

/// Per-layer stats a UNIT CPU engine exposes for the ablation benches.
struct CpuLayerReport {
  double Seconds = 0;
  bool Tensorized = false;
  int BestCandidateIndex = -1;
};

/// UNIT on a CPU target (any registered CpuDot spec: "x86", "arm",
/// "x86-amx", ...). Kernels are compiled through the CompilerSession's
/// shared KernelCache — isomorphic layers, even across engines and
/// models, tune once.
class UnitCpuEngine : public InferenceEngine {
  std::shared_ptr<const CpuBackend> Backend;
  std::shared_ptr<CompilerSession> Session;

public:
  /// Runs the registered target id \p Target's pipeline on \p Machine's
  /// parameters. \p Session defaults to the process-wide
  /// CompilerSession::shared().
  UnitCpuEngine(CpuMachine Machine, const std::string &Target,
                std::shared_ptr<CompilerSession> Session = nullptr);

  std::string name() const override;
  double convSeconds(const ConvLayer &Layer) override;
  void prefetch(const Model &M) override;
  double perOpOverheadSeconds() const override { return 4e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;

  /// Full per-layer report (tensorized? which tuning pair won?).
  CpuLayerReport convReport(const ConvLayer &Layer);
  /// Modeled seconds for a conv3d layer (paper Fig. 13).
  double conv3dSeconds(const Conv3dLayer &Layer);

  const CpuBackend &backend() const { return *Backend; }
  CompilerSession &session() { return *Session; }
};

/// UNIT on an Nvidia GPU (Tensor Core implicit-GEMM path), enumerating the
/// dimension-fusion choice alongside the kernel tuning space. Compiles
/// through the shared CompilerSession like the CPU engine.
class UnitGpuEngine : public InferenceEngine {
  std::shared_ptr<const GpuBackend> Backend;
  std::shared_ptr<CompilerSession> Session;

public:
  explicit UnitGpuEngine(GpuMachine Machine,
                         std::shared_ptr<CompilerSession> Session = nullptr);

  std::string name() const override;
  double convSeconds(const ConvLayer &Layer) override;
  void prefetch(const Model &M) override;
  double perOpOverheadSeconds() const override { return 4e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override;

  const GpuBackend &backend() const { return *Backend; }
  CompilerSession &session() { return *Session; }
};

/// SIMD fallback stats for a depthwise conv (no channel reduction, so the
/// Inspector rejects every dot instruction; shared with baselines).
KernelStats depthwiseSimdStats(const ConvLayer &Layer, double WideningFactor);

/// CUDA-core (non-tensor-core) conv pricing, used by UNIT's GPU fallback
/// and the cuDNN fp32/fp16 baselines of Fig. 1.
double gpuCudaCoreConvSeconds(const ConvLayer &Layer, const GpuMachine &M,
                              double MacThroughputScale);

} // namespace unit

#endif // UNIT_GRAPH_EXECUTOR_H
