//===- graph/Quantize.cpp --------------------------------------------------===//

#include "graph/Quantize.h"

using namespace unit;

std::string unit::describeQuantScheme(const QuantScheme &Scheme) {
  return Scheme.Activation.str() + "*" + Scheme.Weight.str() + "->" +
         Scheme.Accumulator.str() + "|lane" +
         std::to_string(Scheme.LaneMultiple) + "|red" +
         std::to_string(Scheme.ReduceMultiple);
}
