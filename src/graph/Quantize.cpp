//===- graph/Quantize.cpp --------------------------------------------------===//

#include "graph/Quantize.h"

#include "support/ErrorHandling.h"

using namespace unit;

QuantScheme unit::quantSchemeFor(TargetKind Target) {
  switch (Target) {
  case TargetKind::X86:
    return {DataType::u8(), DataType::i8(), DataType::i32(), 16, 4};
  case TargetKind::ARM:
    return {DataType::i8(), DataType::i8(), DataType::i32(), 4, 4};
  case TargetKind::NvidiaGPU:
    return {DataType::f16(), DataType::f16(), DataType::f32(), 16, 16};
  }
  unit_unreachable("unknown target");
}
