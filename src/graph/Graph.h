//===- graph/Graph.h - Graph-level model representation --------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal graph-level IR (paper §II.C.1): a model is the ordered list of
/// its compute-heavy operators (convolutions and dense layers) plus the
/// elementwise/pooling byte traffic flowing between them. Inter-operator
/// optimizations modeled here are the ones the paper relies on: tensor
/// padding for perfect tiling, data-layout blocking, and operator fusion.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_GRAPH_H
#define UNIT_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

namespace unit {

/// One convolution (a dense layer is a 1x1 conv on a 1x1 image).
struct ConvLayer {
  std::string Name;
  int64_t InC = 1;
  int64_t InH = 1, InW = 1;
  int64_t OutC = 1;
  int64_t KH = 1, KW = 1;
  int64_t Stride = 1;
  int64_t PadH = 0, PadW = 0;
  bool Depthwise = false;

  int64_t outH() const { return (InH - KH + 2 * PadH) / Stride + 1; }
  int64_t outW() const { return (InW - KW + 2 * PadW) / Stride + 1; }
  /// Multiply-accumulates of the un-padded computation.
  double macs() const;
  /// Distinct-shape key (layers with equal keys share compiled kernels).
  std::string shapeKey() const;
};

/// One conv3d layer (paper §VI.C extensibility study).
struct Conv3dLayer {
  std::string Name;
  int64_t InC = 1, InD = 1, InH = 1, InW = 1;
  int64_t OutC = 1, K = 1, Stride = 1, Pad = 0;

  int64_t outD() const { return (InD - K + 2 * Pad) / Stride + 1; }
  int64_t outH() const { return (InH - K + 2 * Pad) / Stride + 1; }
  int64_t outW() const { return (InW - K + 2 * Pad) / Stride + 1; }
};

/// A whole model: compute layers plus glue-operator traffic.
struct Model {
  std::string Name;
  std::vector<ConvLayer> Convs; ///< Includes the final dense layer(s).
  double ElementwiseBytes = 0;  ///< relu/add/pool/concat activation bytes.
  int GlueOps = 0;              ///< Count of non-conv operators (overheads).

  /// Adds a conv and accounts its output activation traffic.
  void addConv(ConvLayer Layer, bool FollowedByElementwise = true);
  /// Adds a dense layer as a 1x1 conv.
  void addDense(const std::string &Name, int64_t In, int64_t Out);
  /// Number of *distinct* conv workloads (the paper counts 148 across
  /// its nine models).
  int distinctConvShapes() const;
};

} // namespace unit

#endif // UNIT_GRAPH_GRAPH_H
