//===- graph/Executor.cpp --------------------------------------------------===//

#include "graph/Executor.h"

#include "core/Inspector.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace unit;

InferenceEngine::~InferenceEngine() = default;

double unit::modelLatencySeconds(const Model &M, InferenceEngine &Engine) {
  double Total = 0.0;
  for (const ConvLayer &L : M.Convs)
    Total += Engine.convSeconds(L) + Engine.perOpOverheadSeconds();

  FusionPlan Fused = fuseElementwise(M, Engine.fusionQuality());
  Total += Fused.RemainingGlueOps * Engine.perOpOverheadSeconds();
  Total += elementwiseLatencySeconds(2.0 * Fused.RemainingElementwiseBytes,
                                     0.0, Engine.glueBytesPerSecond());
  return Total;
}

KernelStats unit::depthwiseSimdStats(const ConvLayer &Layer,
                                     double WideningFactor) {
  KernelStats Stats;
  Stats.SimdMacs = Layer.macs();
  Stats.SimdElemBytes = 1.0;
  Stats.WideningFactor = WideningFactor;
  Stats.ParallelExtent =
      static_cast<double>(Layer.outH()) * static_cast<double>(Layer.OutC);
  double OutBytes = static_cast<double>(Layer.outH()) * Layer.outW() *
                    Layer.OutC * 4.0;
  Stats.OutputBytes = OutBytes;
  Stats.InputBytes =
      static_cast<double>(Layer.InH) * Layer.InW * Layer.InC;
  Stats.WeightBytes = static_cast<double>(Layer.KH) * Layer.KW * Layer.OutC;
  return Stats;
}

double unit::gpuCudaCoreConvSeconds(const ConvLayer &Layer,
                                    const GpuMachine &M,
                                    double MacThroughputScale) {
  double Macs = Layer.macs();
  double MacsPerSecond =
      M.SMs * M.FmaPerCyclePerSM * M.FreqGHz * 1e9 * MacThroughputScale;
  // bs=1 convolutions rarely saturate the CUDA cores; cap utilization by
  // the available spatial parallelism.
  double Blocks = std::max(
      1.0, static_cast<double>(Layer.outH()) * Layer.outW() / 64.0);
  double Utilization = std::min(1.0, Blocks * 4.0 / M.SMs);
  double ComputeSeconds = Macs / (MacsPerSecond * std::max(0.05, Utilization));
  double Bytes = static_cast<double>(Layer.InH) * Layer.InW * Layer.InC * 4 +
                 static_cast<double>(Layer.KH) * Layer.KW * Layer.InC *
                     Layer.OutC * 4 +
                 static_cast<double>(Layer.outH()) * Layer.outW() *
                     Layer.OutC * 8;
  double MemSeconds = Bytes / (M.DramBytesPerCycle * M.FreqGHz * 1e9);
  return std::max(ComputeSeconds, MemSeconds) +
         M.KernelLaunchMicros * 1e-6;
}

//===----------------------------------------------------------------------===//
// UnitCpuEngine
//===----------------------------------------------------------------------===//

UnitCpuEngine::UnitCpuEngine(CpuMachine MachineIn, TargetKind TargetIn)
    : Machine(std::move(MachineIn)), Target(TargetIn),
      Scheme(quantSchemeFor(TargetIn)) {}

std::string UnitCpuEngine::name() const {
  return std::string("UNIT (") + targetName(Target) + ")";
}

double UnitCpuEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

CpuLayerReport UnitCpuEngine::convReport(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  CpuLayerReport Report;
  if (Layer.Depthwise) {
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/1.5);
    Report.Seconds = simdLatencySeconds(Stats, Machine);
  } else {
    LaidOutOp Laid =
        buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
    std::vector<MatchResult> Matches = inspectTarget(Laid.Op, Target);
    if (Matches.empty()) {
      KernelStats Stats = analyzeSimdFallback(
          Laid.Op, /*WideningFactor=*/1.0,
          static_cast<double>(Layer.outH()) * Layer.outW());
      Report.Seconds = simdLatencySeconds(Stats, Machine);
    } else {
      TunedKernel Tuned = tuneCpu(Laid.Op, Matches.front(), Machine);
      Report.Seconds = Tuned.LatencySeconds;
      Report.Tensorized = true;
      Report.BestCandidateIndex = Tuned.BestCandidateIndex;
    }
  }
  Cache[Key] = Report;
  return Report;
}

double UnitCpuEngine::convSeconds(const ConvLayer &Layer) {
  return convReport(Layer).Seconds;
}

double UnitCpuEngine::conv3dSeconds(const Conv3dLayer &Layer) {
  LaidOutOp Laid =
      buildDirectConv3dOp(Layer, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
  std::vector<MatchResult> Matches = inspectTarget(Laid.Op, Target);
  if (Matches.empty())
    reportFatalError("conv3d failed to tensorize");
  return tuneCpu(Laid.Op, Matches.front(), Machine).LatencySeconds;
}

//===----------------------------------------------------------------------===//
// UnitGpuEngine
//===----------------------------------------------------------------------===//

UnitGpuEngine::UnitGpuEngine(GpuMachine MachineIn)
    : Machine(std::move(MachineIn)) {}

std::string UnitGpuEngine::name() const { return "UNIT (tensor core)"; }

double UnitGpuEngine::glueBytesPerSecond() const {
  return Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9;
}

double UnitGpuEngine::convSeconds(const ConvLayer &Layer) {
  std::string Key = Layer.shapeKey();
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  double Best;
  if (Layer.Depthwise) {
    Best = gpuCudaCoreConvSeconds(Layer, Machine, /*Scale=*/1.0);
  } else {
    // Enumerate the graph-level dimension-fusion choice alongside the
    // kernel tuning space (paper §IV.B GPU tuning) and keep the best.
    Best = 1e30;
    TensorIntrinsicRef Wmma =
        IntrinsicRegistry::instance().lookup("wmma.m16n16k16.f16");
    for (bool Fuse : {true, false}) {
      LaidOutOp Laid = buildConvAsGemmOp(Layer, DataType::f16(),
                                         DataType::f32(), 16, Fuse);
      std::optional<MatchResult> Match = inspect(Laid.Op, Wmma);
      if (!Match)
        continue;
      TunedKernel Tuned = tuneGpu(Laid.Op, *Match, Machine);
      double Rearrange =
          Laid.RearrangeBytes /
          (Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9);
      double Total = Tuned.LatencySeconds + Rearrange;
      Best = std::min(Best, Total);
    }
    if (Best >= 1e30)
      Best = gpuCudaCoreConvSeconds(Layer, Machine, 2.0);
  }
  Cache[Key] = Best;
  return Best;
}
