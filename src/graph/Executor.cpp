//===- graph/Executor.cpp --------------------------------------------------===//

#include "graph/Executor.h"

#include <algorithm>
#include <unordered_set>

using namespace unit;

InferenceEngine::~InferenceEngine() = default;

namespace {

/// Fire-and-forget async submission of every distinct conv shape in \p M:
/// the jobs land in the session cache, so the pricing loop's per-layer
/// compiles join in-flight tuning instead of running it serially. Skipped
/// when the session is configured for strictly sequential shapes.
void prefetchModel(CompilerSession &Session, const TargetBackendRef &Backend,
                   const Model &M) {
  if (!Session.config().ParallelShapes)
    return;
  std::unordered_set<std::string> Seen;
  std::vector<CompileRequest> Requests;
  for (const ConvLayer &L : M.Convs)
    if (Seen.insert(L.shapeKey()).second)
      Requests.emplace_back(Workload::conv2d(L), Backend);
  Session.compileAllAsync(std::move(Requests));
}

} // namespace

double unit::modelLatencySeconds(const Model &M, InferenceEngine &Engine) {
  Engine.prefetch(M);
  double Total = 0.0;
  for (const ConvLayer &L : M.Convs)
    Total += Engine.convSeconds(L) + Engine.perOpOverheadSeconds();

  FusionPlan Fused = fuseElementwise(M, Engine.fusionQuality());
  Total += Fused.RemainingGlueOps * Engine.perOpOverheadSeconds();
  Total += elementwiseLatencySeconds(2.0 * Fused.RemainingElementwiseBytes,
                                     0.0, Engine.glueBytesPerSecond());
  return Total;
}

KernelStats unit::depthwiseSimdStats(const ConvLayer &Layer,
                                     double WideningFactor) {
  KernelStats Stats;
  Stats.SimdMacs = Layer.macs();
  Stats.SimdElemBytes = 1.0;
  Stats.WideningFactor = WideningFactor;
  Stats.ParallelExtent =
      static_cast<double>(Layer.outH()) * static_cast<double>(Layer.OutC);
  double OutBytes = static_cast<double>(Layer.outH()) * Layer.outW() *
                    Layer.OutC * 4.0;
  Stats.OutputBytes = OutBytes;
  Stats.InputBytes =
      static_cast<double>(Layer.InH) * Layer.InW * Layer.InC;
  Stats.WeightBytes = static_cast<double>(Layer.KH) * Layer.KW * Layer.OutC;
  return Stats;
}

double unit::gpuCudaCoreConvSeconds(const ConvLayer &Layer,
                                    const GpuMachine &M,
                                    double MacThroughputScale) {
  double Macs = Layer.macs();
  double MacsPerSecond =
      M.SMs * M.FmaPerCyclePerSM * M.FreqGHz * 1e9 * MacThroughputScale;
  // bs=1 convolutions rarely saturate the CUDA cores; cap utilization by
  // the available spatial parallelism.
  double Blocks = std::max(
      1.0, static_cast<double>(Layer.outH()) * Layer.outW() / 64.0);
  double Utilization = std::min(1.0, Blocks * 4.0 / M.SMs);
  double ComputeSeconds = Macs / (MacsPerSecond * std::max(0.05, Utilization));
  double Bytes = static_cast<double>(Layer.InH) * Layer.InW * Layer.InC * 4 +
                 static_cast<double>(Layer.KH) * Layer.KW * Layer.InC *
                     Layer.OutC * 4 +
                 static_cast<double>(Layer.outH()) * Layer.outW() *
                     Layer.OutC * 8;
  double MemSeconds = Bytes / (M.DramBytesPerCycle * M.FreqGHz * 1e9);
  return std::max(ComputeSeconds, MemSeconds) +
         M.KernelLaunchMicros * 1e-6;
}

//===----------------------------------------------------------------------===//
// UnitCpuEngine
//===----------------------------------------------------------------------===//

UnitCpuEngine::UnitCpuEngine(CpuMachine MachineIn, const std::string &TargetIn,
                             std::shared_ptr<CompilerSession> SessionIn)
    : Backend(std::make_shared<CpuBackend>(std::move(MachineIn), TargetIn)),
      Session(SessionIn ? std::move(SessionIn) : CompilerSession::shared()) {}

std::string UnitCpuEngine::name() const {
  return "UNIT (" + Backend->id() + ")";
}

double unit::cpuGlueBytesPerSecond(const CpuMachine &M) {
  return M.DramBytesPerCycle * M.FreqGHz * 1e9;
}

double unit::gpuGlueBytesPerSecond(const GpuMachine &M) {
  return M.DramBytesPerCycle * M.FreqGHz * 1e9;
}

double UnitCpuEngine::glueBytesPerSecond() const {
  return cpuGlueBytesPerSecond(Backend->machine());
}

CpuLayerReport UnitCpuEngine::convReport(const ConvLayer &Layer) {
  KernelReport R =
      Session->compile(CompileRequest(Workload::conv2d(Layer), Backend));
  CpuLayerReport Report;
  Report.Seconds = R.Seconds;
  Report.Tensorized = R.Tensorized;
  Report.BestCandidateIndex = R.BestCandidateIndex;
  return Report;
}

double UnitCpuEngine::convSeconds(const ConvLayer &Layer) {
  return Session->compile(CompileRequest(Workload::conv2d(Layer), Backend))
      .Seconds;
}

void UnitCpuEngine::prefetch(const Model &M) {
  prefetchModel(*Session, Backend, M);
}

double UnitCpuEngine::conv3dSeconds(const Conv3dLayer &Layer) {
  return Session->compile(CompileRequest(Workload::conv3d(Layer), Backend))
      .Seconds;
}

//===----------------------------------------------------------------------===//
// UnitGpuEngine
//===----------------------------------------------------------------------===//

UnitGpuEngine::UnitGpuEngine(GpuMachine MachineIn,
                             std::shared_ptr<CompilerSession> SessionIn)
    : Backend(std::make_shared<GpuBackend>(std::move(MachineIn))),
      Session(SessionIn ? std::move(SessionIn) : CompilerSession::shared()) {}

std::string UnitGpuEngine::name() const { return "UNIT (tensor core)"; }

double UnitGpuEngine::glueBytesPerSecond() const {
  return gpuGlueBytesPerSecond(Backend->machine());
}

double UnitGpuEngine::convSeconds(const ConvLayer &Layer) {
  return Session->compile(CompileRequest(Workload::conv2d(Layer), Backend))
      .Seconds;
}

void UnitGpuEngine::prefetch(const Model &M) {
  prefetchModel(*Session, Backend, M);
}
