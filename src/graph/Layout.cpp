//===- graph/Layout.cpp ----------------------------------------------------===//

#include "graph/Layout.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace unit;

int64_t unit::padTo(int64_t X, int64_t Multiple) {
  return (X + Multiple - 1) / Multiple * Multiple;
}

LaidOutOp unit::buildDirectConvOp(const ConvLayer &Layer, DataType AType,
                                  DataType BType, DataType AccType,
                                  int64_t LaneMultiple,
                                  int64_t ReduceMultiple) {
  assert(!Layer.Depthwise &&
         "depthwise convolutions take the SIMD fallback path");
  // The paper's blocked layouts (§V.C): activations NHW[C/r]c_r, kernels
  // KCRS[y]k[x]c with y = LaneMultiple, x = ReduceMultiple. Channel
  // dimensions are padded so instruction tiles fit perfectly, and the
  // (ki, ci) register block is contiguous — one vector load.
  int64_t CO = padTo(Layer.InC, ReduceMultiple) / ReduceMultiple;
  int64_t KO = padTo(Layer.OutC, LaneMultiple) / LaneMultiple;
  int64_t OH = Layer.outH(), OW = Layer.outW();
  // The graph level materializes spatial padding into the blocked buffer,
  // so the kernel sees a borderless input image.
  int64_t H = (OH - 1) * Layer.Stride + Layer.KH;
  int64_t W = (OW - 1) * Layer.Stride + Layer.KW;

  TensorRef A = makeTensor("a", {H, W, CO, ReduceMultiple}, AType);
  TensorRef B = makeTensor(
      "b", {Layer.KH, Layer.KW, KO, CO, LaneMultiple, ReduceMultiple}, BType);
  TensorRef Out = makeTensor("c", {KO, OH, OW, LaneMultiple}, AccType);

  IterVar X = makeAxis("x", OH), Y = makeAxis("y", OW);
  IterVar Ko = makeAxis("ko", KO), Ki = makeAxis("ki", LaneMultiple);
  IterVar R = makeReduceAxis("r", Layer.KH), S = makeReduceAxis("s", Layer.KW);
  IterVar Co = makeReduceAxis("co", CO);
  IterVar Ci = makeReduceAxis("ci", ReduceMultiple);

  ExprRef Ax = makeVar(X) * makeIntImm(Layer.Stride) + makeVar(R);
  ExprRef Ay = makeVar(Y) * makeIntImm(Layer.Stride) + makeVar(S);
  ExprRef Prod =
      makeCast(AccType, makeLoad(A, {Ax, Ay, makeVar(Co), makeVar(Ci)})) *
      makeCast(AccType,
               makeLoad(B, {makeVar(R), makeVar(S), makeVar(Ko), makeVar(Co),
                            makeVar(Ki), makeVar(Ci)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {R, S, Co, Ci});

  LaidOutOp Result;
  // NCHW[x]c output order: channel blocks outermost, lanes innermost, so
  // the tuner's trailing data-parallel loops are the spatial ones (the
  // paper's Fig. 7 unrolls over the output image).
  Result.Op = ComputeOp::create("conv2d." + Layer.Name, Out,
                                {Ko, X, Y, Ki}, Body);
  double Padded = static_cast<double>(OH) * OW * KO * LaneMultiple *
                  Layer.KH * Layer.KW * CO * ReduceMultiple;
  Result.PaddingWasteFraction = 1.0 - Layer.macs() / Padded;
  // Blocked-layout packing of the input activations.
  Result.RearrangeBytes = static_cast<double>(H) * W * CO * ReduceMultiple *
                          AType.lanesBytes();
  return Result;
}

LaidOutOp unit::buildDirectConv3dOp(const Conv3dLayer &Layer, DataType AType,
                                    DataType BType, DataType AccType,
                                    int64_t LaneMultiple,
                                    int64_t ReduceMultiple) {
  int64_t CO = padTo(Layer.InC, ReduceMultiple) / ReduceMultiple;
  int64_t KO = padTo(Layer.OutC, LaneMultiple) / LaneMultiple;
  int64_t OD = Layer.outD(), OH = Layer.outH(), OW = Layer.outW();
  int64_t D = (OD - 1) * Layer.Stride + Layer.K;
  int64_t H = (OH - 1) * Layer.Stride + Layer.K;
  int64_t W = (OW - 1) * Layer.Stride + Layer.K;

  TensorRef A = makeTensor("a", {D, H, W, CO, ReduceMultiple}, AType);
  TensorRef B = makeTensor("b", {Layer.K, Layer.K, Layer.K, KO, CO,
                                 LaneMultiple, ReduceMultiple},
                           BType);
  TensorRef Out = makeTensor("c", {KO, OD, OH, OW, LaneMultiple}, AccType);

  IterVar Z = makeAxis("z", OD), X = makeAxis("x", OH), Y = makeAxis("y", OW);
  IterVar Ko = makeAxis("ko", KO), Ki = makeAxis("ki", LaneMultiple);
  IterVar Rd = makeReduceAxis("rd", Layer.K);
  IterVar R = makeReduceAxis("r", Layer.K), S = makeReduceAxis("s", Layer.K);
  IterVar Co = makeReduceAxis("co", CO);
  IterVar Ci = makeReduceAxis("ci", ReduceMultiple);

  ExprRef Az = makeVar(Z) * makeIntImm(Layer.Stride) + makeVar(Rd);
  ExprRef Ax = makeVar(X) * makeIntImm(Layer.Stride) + makeVar(R);
  ExprRef Ay = makeVar(Y) * makeIntImm(Layer.Stride) + makeVar(S);
  ExprRef Prod =
      makeCast(AccType,
               makeLoad(A, {Az, Ax, Ay, makeVar(Co), makeVar(Ci)})) *
      makeCast(AccType,
               makeLoad(B, {makeVar(Rd), makeVar(R), makeVar(S), makeVar(Ko),
                            makeVar(Co), makeVar(Ki), makeVar(Ci)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {Rd, R, S, Co, Ci});

  LaidOutOp Result;
  Result.Op = ComputeOp::create("conv3d." + Layer.Name, Out,
                                {Ko, Z, X, Y, Ki}, Body);
  double Real = static_cast<double>(OD) * OH * OW * Layer.OutC * Layer.K *
                Layer.K * Layer.K * Layer.InC;
  double Padded = static_cast<double>(OD) * OH * OW * KO * LaneMultiple *
                  Layer.K * Layer.K * Layer.K * CO * ReduceMultiple;
  Result.PaddingWasteFraction = 1.0 - Real / Padded;
  Result.RearrangeBytes = static_cast<double>(D) * H * W * CO *
                          ReduceMultiple * AType.lanesBytes();
  return Result;
}

ComputeOpRef unit::buildGemmOp(int64_t M, int64_t N, int64_t K,
                               DataType InType, DataType AccType) {
  TensorRef A = makeTensor("a", {M, K}, InType);
  TensorRef B = makeTensor("b", {K, N}, InType);
  TensorRef Out = makeTensor("c", {M, N}, AccType);
  IterVar I = makeAxis("i", M), J = makeAxis("j", N);
  IterVar Kk = makeReduceAxis("k", K);
  ExprRef Prod = makeCast(AccType, makeLoad(A, {makeVar(I), makeVar(Kk)})) *
                 makeCast(AccType, makeLoad(B, {makeVar(Kk), makeVar(J)}));
  return ComputeOp::create("gemm", Out, {I, J},
                           makeReduce(ReduceKind::Sum, Prod, {Kk}));
}

LaidOutOp unit::buildConvAsGemmOp(const ConvLayer &Layer, DataType InType,
                                  DataType AccType, int64_t Tile,
                                  bool FuseSpatial) {
  int64_t OH = Layer.outH(), OW = Layer.outW();
  // Spatial tiling: fusing H and W before padding wastes far less than
  // padding each dimension to a sub-tile (paper's FuseDim optimization) —
  // at the price of a data rearrangement pass over the input.
  int64_t M;
  if (FuseSpatial) {
    M = padTo(OH * OW, Tile);
  } else {
    // Separate tiling of H and W with a Tile = th x tw split (4 x 4 for
    // 16-lane fragments).
    int64_t Th = 4, Tw = Tile / Th;
    M = padTo(OH, Th) * padTo(OW, Tw);
  }
  int64_t N = padTo(Layer.OutC, Tile);
  int64_t Kd = padTo(Layer.KH * Layer.KW * Layer.InC, Tile);

  LaidOutOp Result;
  Result.Op = buildGemmOp(M, N, Kd, InType, AccType);
  double Padded = static_cast<double>(M) * N * Kd;
  Result.PaddingWasteFraction = 1.0 - Layer.macs() / Padded;
  // Implicit GEMM materializes nothing; the dimension-fusion variant pays
  // one rearrangement pass over the activations (the "software overhead on
  // data rearrangement" of paper §IV.B). Strided convolutions additionally
  // gather non-contiguous rows into the GEMM view — the locality loss the
  // paper blames for losing workloads #1 and #15 to cuDNN's native tiles.
  double ActBytes = static_cast<double>(Layer.InH) * Layer.InW * Layer.InC *
                    InType.lanesBytes();
  Result.RearrangeBytes = FuseSpatial ? ActBytes : 0.0;
  if (Layer.Stride > 1)
    Result.RearrangeBytes += 2.0 * ActBytes;
  return Result;
}
