//===- graph/Fusion.h - Operator fusion accounting --------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph-level operator fusion (paper §IV: "implementing UNIT on top of
/// TVM enables end-to-end model inference with other optimizations such as
/// operator fusion"). Engines that fuse fold elementwise epilogues
/// (bias/relu/residual-add) into the producing kernel, eliminating most of
/// their memory traffic and per-operator launches; library-driven stacks
/// execute them as separate glue operators.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_FUSION_H
#define UNIT_GRAPH_FUSION_H

#include "graph/Graph.h"

namespace unit {

/// Result of the fusion pass over a model's glue operators.
struct FusionPlan {
  double RemainingElementwiseBytes; ///< Traffic still paid separately.
  int RemainingGlueOps;             ///< Launches still paid separately.
};

/// Applies fusion with the engine's \p Quality in [0, 1]: at quality 1
/// about 15% of elementwise traffic remains (concat/pool boundaries that
/// cannot fold) plus one glue op per four; at 0 everything runs separately.
/// Partial quality (e.g. oneDNN post-ops fusing relu but not residual
/// adds) interpolates linearly.
FusionPlan fuseElementwise(const Model &M, double Quality);

} // namespace unit

#endif // UNIT_GRAPH_FUSION_H
