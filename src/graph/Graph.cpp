//===- graph/Graph.cpp -----------------------------------------------------===//

#include "graph/Graph.h"

#include "support/StringUtils.h"

#include <set>

using namespace unit;

double ConvLayer::macs() const {
  double PerOutput = Depthwise
                         ? static_cast<double>(KH * KW)
                         : static_cast<double>(InC * KH * KW);
  return static_cast<double>(outH()) * static_cast<double>(outW()) *
         static_cast<double>(OutC) * PerOutput;
}

std::string ConvLayer::shapeKey() const {
  return formatStr("c%lld.h%lld.w%lld.k%lld.r%lld.s%lld.st%lld.p%lld.%lld.dw%d",
                   static_cast<long long>(InC), static_cast<long long>(InH),
                   static_cast<long long>(InW), static_cast<long long>(OutC),
                   static_cast<long long>(KH), static_cast<long long>(KW),
                   static_cast<long long>(Stride),
                   static_cast<long long>(PadH), static_cast<long long>(PadW),
                   Depthwise ? 1 : 0);
}

void Model::addConv(ConvLayer Layer, bool FollowedByElementwise) {
  if (FollowedByElementwise) {
    // One elementwise pass (bias+relu or residual add) over the output.
    ElementwiseBytes += static_cast<double>(Layer.outH()) *
                        static_cast<double>(Layer.outW()) *
                        static_cast<double>(Layer.OutC) * 4.0;
    ++GlueOps;
  }
  Convs.push_back(std::move(Layer));
}

void Model::addDense(const std::string &Name, int64_t In, int64_t Out) {
  ConvLayer L;
  L.Name = Name;
  L.InC = In;
  L.OutC = Out;
  addConv(L, /*FollowedByElementwise=*/false);
}

int Model::distinctConvShapes() const {
  std::set<std::string> Keys;
  for (const ConvLayer &L : Convs)
    Keys.insert(L.shapeKey());
  return static_cast<int>(Keys.size());
}
