//===- graph/Fusion.cpp ----------------------------------------------------===//

#include "graph/Fusion.h"

using namespace unit;

#include <algorithm>

FusionPlan unit::fuseElementwise(const Model &M, double Quality) {
  Quality = std::clamp(Quality, 0.0, 1.0);
  FusionPlan Plan;
  double ByteFraction = 1.0 - 0.85 * Quality;
  double OpFraction = 1.0 - 0.75 * Quality;
  Plan.RemainingElementwiseBytes = M.ElementwiseBytes * ByteFraction;
  Plan.RemainingGlueOps =
      static_cast<int>(M.GlueOps * OpFraction + 0.999);
  return Plan;
}
