//===- graph/Quantize.h - Mixed-precision type selection -------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph-level quantization pass (paper §V.C: models are quantized
/// through Relay before tensorization). Selects the mixed-precision data
/// types each platform's tensorized instructions consume and accounts the
/// cast traffic at the graph boundary.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_QUANTIZE_H
#define UNIT_GRAPH_QUANTIZE_H

#include "ir/DataType.h"
#include "isa/TensorIntrinsic.h"

namespace unit {

/// The operand/accumulator types one platform's instructions consume.
struct QuantScheme {
  DataType Activation; ///< e.g. u8 for VNNI, f16 for Tensor Core.
  DataType Weight;
  DataType Accumulator;
  /// Multiple the output-channel dimension must pad to (instruction lanes)
  int64_t LaneMultiple;
  /// Multiple the reduce dimension must pad to (instruction reduce width).
  int64_t ReduceMultiple;
};

/// Platform scheme used in the paper's evaluation:
///   x86  -> u8 x i8 -> i32 (VNNI, 16 lanes x 4)
///   ARM  -> i8 x i8 -> i32 (SDOT, 4 lanes x 4)
///   GPU  -> f16 x f16 -> f32 (WMMA, 16x16x16)
QuantScheme quantSchemeFor(TargetKind Target);

} // namespace unit

#endif // UNIT_GRAPH_QUANTIZE_H
