//===- graph/Quantize.h - Mixed-precision type selection -------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph-level quantization pass (paper §V.C: models are quantized
/// through Relay before tensorization). A QuantScheme names the
/// mixed-precision data types one platform's tensorized instructions
/// consume; each backend's scheme lives in its TargetSpec
/// (target/TargetSpec.h) — this header deliberately enumerates no
/// platforms, so a new backend never edits the quantization pass. Fetch a
/// registered backend's scheme via TargetRegistry::get(id)->scheme().
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_QUANTIZE_H
#define UNIT_GRAPH_QUANTIZE_H

#include "ir/DataType.h"

#include <string>

namespace unit {

/// The operand/accumulator types one platform's instructions consume.
struct QuantScheme {
  DataType Activation; ///< e.g. u8 for VNNI, f16 for Tensor Core.
  DataType Weight;
  DataType Accumulator;
  /// Multiple the output-channel dimension must pad to (instruction lanes)
  int64_t LaneMultiple;
  /// Multiple the reduce dimension must pad to (instruction reduce width).
  int64_t ReduceMultiple;
};

/// Exact serialization of every field ("u8*i8->i32|lane16|red4"); folded
/// into TargetSpec::hash so a scheme revision invalidates cached kernels.
std::string describeQuantScheme(const QuantScheme &Scheme);

} // namespace unit

#endif // UNIT_GRAPH_QUANTIZE_H
