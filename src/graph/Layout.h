//===- graph/Layout.h - Layout, padding, and op construction ---------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds tensor-DSL ComputeOps from graph layers under the layouts the
/// paper uses: NCHW[x]c activations / KCRS[y]k[x]c kernels on CPU (channel
/// dimensions padded so instruction lanes tile perfectly, §II.C.1), and an
/// implicit-GEMM view for Tensor Cores on GPU where the spatial dimensions
/// may be *fused* before padding — the FuseDim optimization of Fig. 11.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_GRAPH_LAYOUT_H
#define UNIT_GRAPH_LAYOUT_H

#include "graph/Graph.h"
#include "ir/ComputeOp.h"

namespace unit {

/// Rounds \p X up to a multiple of \p Multiple.
int64_t padTo(int64_t X, int64_t Multiple);

/// A built operation plus padding accounting.
struct LaidOutOp {
  ComputeOpRef Op;
  double PaddingWasteFraction = 0.0; ///< Padded-but-useless work fraction.
  double RearrangeBytes = 0.0;       ///< Data-movement cost of the layout.
};

/// Direct convolution with channels padded for a dot-product instruction:
/// input channels to \p ReduceMultiple, output channels to \p LaneMultiple
/// (the [x]c / [y]k[x]c blocking). Dense layers (1x1 spatial) work too.
LaidOutOp buildDirectConvOp(const ConvLayer &Layer, DataType AType,
                            DataType BType, DataType AccType,
                            int64_t LaneMultiple, int64_t ReduceMultiple);

/// Conv3d variant of buildDirectConvOp (paper §VI.C).
LaidOutOp buildDirectConv3dOp(const Conv3dLayer &Layer, DataType AType,
                              DataType BType, DataType AccType,
                              int64_t LaneMultiple, int64_t ReduceMultiple);

/// Implicit-GEMM view of a convolution for a matrix instruction with
/// \p Tile-square fragments: M = spatial, N = output channels,
/// K = KH*KW*InC. With \p FuseSpatial the H and W dimensions are fused
/// *before* padding (saving redundant padding at the price of a data
/// rearrangement pass); otherwise each spatial dimension pads separately.
LaidOutOp buildConvAsGemmOp(const ConvLayer &Layer, DataType InType,
                            DataType AccType, int64_t Tile, bool FuseSpatial);

/// Plain GEMM builder (used by examples and tests).
ComputeOpRef buildGemmOp(int64_t M, int64_t N, int64_t K, DataType InType,
                         DataType AccType);

} // namespace unit

#endif // UNIT_GRAPH_LAYOUT_H
