//===- fabric/Handshake.h - Shared-secret challenge handshake ------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gate on every TCP connection (fleet peers and remote clients
/// alike). The secret itself never crosses the wire: the server sends a
/// fresh random nonce in a `challenge` frame, the dialer answers with an
/// `auth` frame carrying HMAC-SHA256(secret, nonce) as hex, and the
/// server verifies with a constant-time compare — a wrong secret gets an
/// `error` frame and a closed connection, a passive listener learns only
/// a nonce and a one-use proof. Unix-socket connections skip this
/// entirely (filesystem permissions are their gate). Frame schemas are in
/// docs/SERVER.md, "Fleet".
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_FABRIC_HANDSHAKE_H
#define UNIT_FABRIC_HANDSHAKE_H

#include <string>

namespace unit {

/// Server side: send `challenge`, read `auth`, verify the proof. On
/// success replies `auth_ok` and returns true; on any failure (bad proof,
/// malformed frame, peer gone) replies with an `error` frame when the
/// socket still writes, fills \p Err, and returns false — the caller
/// closes the fd and counts the auth failure.
bool runAuthChallenge(int Fd, const std::string &Secret,
                      std::string *Err = nullptr);

/// Dialer side: read `challenge`, answer `auth` with the HMAC proof, wait
/// for `auth_ok`. Returns false (with \p Err) on rejection or transport
/// failure; the caller closes the fd.
bool answerAuthChallenge(int Fd, const std::string &Secret,
                         std::string *Err = nullptr);

} // namespace unit

#endif // UNIT_FABRIC_HANDSHAKE_H
