//===- fabric/Endpoint.h - TCP endpoint parsing, dialing, listening ------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fabric's address plumbing: parse "host:port" / "[v6addr]:port"
/// strings, dial them (getaddrinfo, every resolved address tried in
/// order), and open listening sockets for the server's TCP side. Unix
/// socket paths are recognized by shape ("/..." or "./...") so one
/// endpoint string type covers both transports in the client.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_FABRIC_ENDPOINT_H
#define UNIT_FABRIC_ENDPOINT_H

#include <cstdint>
#include <optional>
#include <string>

namespace unit {

/// A parsed TCP endpoint. Host may be a name, an IPv4 literal, or an
/// IPv6 literal (brackets already stripped); empty means "any" for
/// listening and loopback for dialing.
struct Endpoint {
  std::string Host;
  uint16_t Port = 0;

  /// "host:port", IPv6 hosts re-bracketed — parseEndpoint(display())
  /// round-trips.
  std::string display() const;
};

/// Parse "host:port", "[v6addr]:port", or ":port". Returns nullopt (and
/// fills \p Err) for a missing/invalid port or unbalanced brackets.
std::optional<Endpoint> parseEndpoint(const std::string &Text,
                                      std::string *Err = nullptr);

/// True when \p Text names a Unix socket path rather than a TCP endpoint
/// (starts with '/', './', or '../').
bool looksLikeUnixPath(const std::string &Text);

/// Connect a TCP stream socket to \p Ep. Every address getaddrinfo
/// resolves is tried in order; TCP_NODELAY is set (the protocol is
/// request/response with small frames). Returns the connected fd, or -1
/// with \p Err filled.
int dialTcp(const Endpoint &Ep, std::string *Err = nullptr);

/// Bind + listen on \p Ep (SO_REUSEADDR; empty host binds the IPv6
/// wildcard with v6only off when possible, falling back to IPv4).
/// Returns the listening fd, or -1 with \p Err filled.
int listenTcp(const Endpoint &Ep, std::string *Err = nullptr);

/// The local port a socket is bound to (getsockname) — how tests and
/// `--listen-tcp host:0` discover an OS-assigned port. 0 on failure.
uint16_t boundTcpPort(int Fd);

} // namespace unit

#endif // UNIT_FABRIC_ENDPOINT_H
