//===- fabric/Hmac.h - SHA-256 / HMAC-SHA256 for the fleet handshake -----===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-contained SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104) plus the
/// small helpers the fabric handshake needs: hex encoding, a random nonce,
/// and a constant-time comparison. No external crypto dependency — the
/// container ships none, and the handshake only needs to keep a shared
/// secret off the wire, not to be a TLS replacement (see docs/SERVER.md,
/// "Fleet").
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_FABRIC_HMAC_H
#define UNIT_FABRIC_HMAC_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace unit {

/// SHA-256 digest of \p Len bytes at \p Data.
std::array<uint8_t, 32> sha256(const void *Data, size_t Len);

/// HMAC-SHA256 over \p Message with \p Key (RFC 2104; keys longer than the
/// 64-byte block are pre-hashed).
std::array<uint8_t, 32> hmacSha256(const std::string &Key,
                                   const std::string &Message);

/// Lowercase hex of \p Len bytes at \p Data.
std::string hexEncode(const uint8_t *Data, size_t Len);

/// HMAC-SHA256 as lowercase hex — the proof format the handshake sends.
std::string hmacHex(const std::string &Key, const std::string &Message);

/// \p Bytes random bytes as lowercase hex, from /dev/urandom when
/// available, std::random_device otherwise. Never the same twice in
/// practice; uniqueness per challenge is all the handshake needs.
std::string randomNonceHex(size_t Bytes = 16);

/// Byte-wise comparison whose running time does not depend on where the
/// first mismatch sits. Length mismatch returns false (lengths are public:
/// every proof is 64 hex chars).
bool constantTimeEquals(const std::string &A, const std::string &B);

} // namespace unit

#endif // UNIT_FABRIC_HMAC_H
