//===- fabric/PeerManager.h - Peer cache exchange for the fleet ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet side of the compile fabric: one PeerManager per daemon owns
/// a dialed connection to every configured --peer endpoint and moves
/// tuned-kernel reports between same-fingerprint caches, two ways —
///
///   announce: every fresh compile enqueues its (key, report); a
///     background pusher batches the queue into push_cache frames for
///     each live peer, so a kernel tuned once propagates fleet-wide
///     within a flush. Best-effort: the queue is bounded, a dead peer
///     drops its batch, and the compiling thread never blocks.
///
///   fetchMissing: the single-flight winner of a cold cache miss probes
///     peers with a one-key fetch_cache before invoking the tuner. A hit
///     imports the report and the compile resolves as a cache hit —
///     cluster-wide, a kernel is tuned once, not once per host.
///
/// Peer links are plain protocol connections (dial, shared-secret
/// handshake, hello/welcome) with one strictness on top: the welcome's
/// persistence fingerprint must equal ours exactly, or the link stays
/// connected but exchanges nothing — reports are only valid on machines
/// whose backends, tuning spaces, and format revision all match, and a
/// mismatched fleet silently trading entries would poison every cache.
/// On the first matching connect the manager also bulk-fetches the
/// peer's ready entries (byte-capped) so a daemon joining an established
/// fleet starts warm.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_FABRIC_PEERMANAGER_H
#define UNIT_FABRIC_PEERMANAGER_H

#include "fabric/Endpoint.h"
#include "obs/Histogram.h"
#include "runtime/KernelCache.h"
#include "server/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace unit {

struct PeerManagerConfig {
  /// Endpoints to dial (from --peer). Peers that are down are retried
  /// with backoff for the daemon's lifetime — fleet membership is
  /// configuration, not liveness.
  std::vector<Endpoint> Peers;
  /// Shared secret for the challenge handshake (same one the local TCP
  /// listener verifies).
  std::string Secret;
  /// Our persistence fingerprint, compared against each peer's welcome.
  std::string Fingerprint;
  /// Client name announced in hello (shows up in peers' stats).
  std::string SelfName = "unit-fabric-peer";
  /// Byte cap on one bulk warm-sync exchange.
  size_t MaxExchangeBytes = 4u << 20;
  /// Per-operation socket timeout: a hung peer must cost a cold compile
  /// at most this before it falls through to the local tuner.
  int IoTimeoutSeconds = 10;
  /// Cache that fetched and warm-synced entries import into.
  KernelCache *Cache = nullptr;
};

class PeerManager {
public:
  /// Exchange counters, surfaced in the server's `stats` fabric section.
  struct Stats {
    uint64_t PeersConnected = 0; ///< Live links right now (gauge).
    uint64_t EntriesPushed = 0;  ///< Entries peers accepted from our pushes.
    uint64_t EntriesFetched = 0; ///< Entries imported from peers (fetch+sync).
    uint64_t FetchHits = 0;      ///< Cold misses a peer resolved.
    uint64_t FetchMisses = 0;    ///< Cold misses no peer had.
  };

  explicit PeerManager(PeerManagerConfig Config);
  ~PeerManager();

  PeerManager(const PeerManager &) = delete;
  PeerManager &operator=(const PeerManager &) = delete;

  /// Starts the pusher thread (which also performs the initial dials and
  /// warm sync, off the caller's thread).
  void start();

  /// Flushes nothing, drops the queue, closes every link, joins the
  /// pusher. Idempotent.
  void stop();

  /// Enqueues one freshly tuned report for broadcast. Never blocks: the
  /// queue is bounded and drops oldest-first when full (announcements
  /// are an optimization — the fetch path is the correctness backstop).
  void announce(const std::string &Key, const KernelReport &Report);

  /// Probes every same-fingerprint peer for \p Key (in configuration
  /// order, first hit wins), imports the returned entries, and hands the
  /// report back. Blocking, bounded by IoTimeoutSeconds per peer; called
  /// by the session's cold-miss hook on the compile winner's thread.
  std::optional<KernelReport> fetchMissing(const std::string &Key);

  Stats stats() const;
  size_t configuredPeers() const { return Config.Peers.size(); }

  /// Round-trip distribution of cold-miss fetch_cache exchanges (dial +
  /// request + reply per probed peer) — the unit_peer_fetch_seconds
  /// metrics family.
  obs::HistogramSnapshot fetchRtt() const { return FetchRttHist.snapshot(); }

private:
  /// One dialed peer link. Mu serializes the request/response exchanges
  /// (pusher flushes and cold-miss fetches interleave at frame
  /// granularity); the link is strictly client-side, so no reader thread
  /// is needed — every frame we read is the reply to a frame we wrote
  /// (the server pushes notifications only for compile_async tickets,
  /// which peer links never submit).
  struct Peer {
    Endpoint Ep;
    std::mutex Mu;
    int Fd = -1;
    bool FingerprintMatch = false;
    double RetryAtSeconds = 0; ///< Dial backoff deadline (steady clock).
  };

  /// Dials + authenticates + hellos \p P if it is down (honoring its
  /// backoff), comparing fingerprints from the welcome; on the first
  /// matching connect, bulk warm-syncs. P.Mu must be held. Returns true
  /// when the link is up *and* fingerprints match.
  bool ensureExchangeableLocked(Peer &P);

  /// One request/response on \p P's link (P.Mu held). A transport
  /// failure closes the link (next use redials) and returns nullopt.
  std::optional<Json> exchangeLocked(Peer &P, const Json &Request);

  /// Decodes a cache_entries reply's entries array (skipping malformed
  /// items) and imports them; returns the imported entries.
  std::vector<KernelCache::ExportedEntry> importEntries(const Json &Reply);

  void closeLocked(Peer &P);
  void pusherLoop();

  PeerManagerConfig Config;
  std::vector<std::unique_ptr<Peer>> Links;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<KernelCache::ExportedEntry> Queue;
  bool ShuttingDown = false;
  std::thread Pusher;
  bool Started = false;

  std::atomic<uint64_t> ConnectedCount{0};
  std::atomic<uint64_t> PushedCount{0};
  std::atomic<uint64_t> FetchedCount{0};
  std::atomic<uint64_t> FetchHitCount{0};
  std::atomic<uint64_t> FetchMissCount{0};
  obs::LatencyHistogram FetchRttHist;
};

} // namespace unit

#endif // UNIT_FABRIC_PEERMANAGER_H
