//===- fabric/Handshake.cpp - Shared-secret challenge handshake ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fabric/Handshake.h"

#include "fabric/Hmac.h"
#include "server/Protocol.h"

namespace unit {

namespace {

void setError(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
}

} // namespace

bool runAuthChallenge(int Fd, const std::string &Secret, std::string *Err) {
  std::string Nonce = randomNonceHex();
  Json Challenge = Json::object();
  Challenge.set("type", "challenge");
  Challenge.set("nonce", Nonce);
  if (!writeFrame(Fd, Challenge.dump())) {
    setError(Err, "challenge write failed");
    return false;
  }

  std::string Payload;
  if (readFrame(Fd, Payload) != FrameStatus::Ok) {
    setError(Err, "connection closed before auth");
    return false;
  }
  std::optional<Json> Auth = Json::parse(Payload);
  bool Ok = Auth.has_value() && Auth->str("type") == "auth" &&
            constantTimeEquals(Auth->str("proof"), hmacHex(Secret, Nonce));
  if (!Ok) {
    Json Error = Json::object();
    Error.set("type", "error");
    Error.set("message", "authentication failed");
    writeFrame(Fd, Error.dump()); // Best effort; the fd closes either way.
    setError(Err, "authentication failed");
    return false;
  }

  Json AuthOk = Json::object();
  AuthOk.set("type", "auth_ok");
  if (!writeFrame(Fd, AuthOk.dump())) {
    setError(Err, "auth_ok write failed");
    return false;
  }
  return true;
}

bool answerAuthChallenge(int Fd, const std::string &Secret, std::string *Err) {
  std::string Payload;
  if (readFrame(Fd, Payload) != FrameStatus::Ok) {
    setError(Err, "connection closed before challenge");
    return false;
  }
  std::optional<Json> Challenge = Json::parse(Payload);
  if (!Challenge.has_value() || Challenge->str("type") != "challenge" ||
      Challenge->str("nonce").empty()) {
    setError(Err, "expected a challenge frame (is the endpoint a fabric "
                  "TCP listener?)");
    return false;
  }

  Json Auth = Json::object();
  Auth.set("type", "auth");
  Auth.set("proof", hmacHex(Secret, Challenge->str("nonce")));
  if (!writeFrame(Fd, Auth.dump())) {
    setError(Err, "auth write failed");
    return false;
  }

  if (readFrame(Fd, Payload) != FrameStatus::Ok) {
    setError(Err, "connection closed during auth");
    return false;
  }
  std::optional<Json> Reply = Json::parse(Payload);
  if (!Reply.has_value() || Reply->str("type") != "auth_ok") {
    std::string Message =
        Reply.has_value() ? Reply->str("message") : std::string();
    setError(Err, Message.empty() ? "authentication rejected" : Message);
    return false;
  }
  return true;
}

} // namespace unit
