//===- fabric/Hmac.cpp - SHA-256 / HMAC-SHA256 implementation ------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fabric/Hmac.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>

namespace unit {

namespace {

/// FIPS 180-4 round constants: fractional parts of the cube roots of the
/// first 64 primes.
constexpr uint32_t K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t X, unsigned N) {
  return (X >> N) | (X << (32 - N));
}

struct Sha256State {
  uint32_t H[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  uint8_t Block[64];
  size_t BlockLen = 0;
  uint64_t TotalBits = 0;

  void compress(const uint8_t *P) {
    uint32_t W[64];
    for (int I = 0; I < 16; ++I)
      W[I] = (uint32_t(P[4 * I]) << 24) | (uint32_t(P[4 * I + 1]) << 16) |
             (uint32_t(P[4 * I + 2]) << 8) | uint32_t(P[4 * I + 3]);
    for (int I = 16; I < 64; ++I) {
      uint32_t S0 = rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
      uint32_t S1 = rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
      W[I] = W[I - 16] + S0 + W[I - 7] + S1;
    }
    uint32_t A = H[0], B = H[1], C = H[2], D = H[3];
    uint32_t E = H[4], F = H[5], G = H[6], Hh = H[7];
    for (int I = 0; I < 64; ++I) {
      uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
      uint32_t Ch = (E & F) ^ (~E & G);
      uint32_t T1 = Hh + S1 + Ch + K[I] + W[I];
      uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
      uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
      uint32_t T2 = S0 + Maj;
      Hh = G;
      G = F;
      F = E;
      E = D + T1;
      D = C;
      C = B;
      B = A;
      A = T1 + T2;
    }
    H[0] += A;
    H[1] += B;
    H[2] += C;
    H[3] += D;
    H[4] += E;
    H[5] += F;
    H[6] += G;
    H[7] += Hh;
  }

  void update(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    TotalBits += uint64_t(Len) * 8;
    while (Len > 0) {
      size_t Take = std::min(Len, sizeof(Block) - BlockLen);
      std::memcpy(Block + BlockLen, P, Take);
      BlockLen += Take;
      P += Take;
      Len -= Take;
      if (BlockLen == sizeof(Block)) {
        compress(Block);
        BlockLen = 0;
      }
    }
  }

  std::array<uint8_t, 32> finish() {
    uint64_t Bits = TotalBits;
    uint8_t Pad = 0x80;
    update(&Pad, 1);
    uint8_t Zero = 0;
    while (BlockLen != 56)
      update(&Zero, 1);
    uint8_t LenBytes[8];
    for (int I = 0; I < 8; ++I)
      LenBytes[I] = uint8_t(Bits >> (56 - 8 * I));
    // update() would re-count the length bytes; splice them in manually.
    std::memcpy(Block + 56, LenBytes, 8);
    compress(Block);
    std::array<uint8_t, 32> Out;
    for (int I = 0; I < 8; ++I) {
      Out[4 * I] = uint8_t(H[I] >> 24);
      Out[4 * I + 1] = uint8_t(H[I] >> 16);
      Out[4 * I + 2] = uint8_t(H[I] >> 8);
      Out[4 * I + 3] = uint8_t(H[I]);
    }
    return Out;
  }
};

} // namespace

std::array<uint8_t, 32> sha256(const void *Data, size_t Len) {
  Sha256State S;
  S.update(Data, Len);
  return S.finish();
}

std::array<uint8_t, 32> hmacSha256(const std::string &Key,
                                   const std::string &Message) {
  constexpr size_t BlockSize = 64;
  uint8_t KeyBlock[BlockSize] = {0};
  if (Key.size() > BlockSize) {
    std::array<uint8_t, 32> Hashed = sha256(Key.data(), Key.size());
    std::memcpy(KeyBlock, Hashed.data(), Hashed.size());
  } else {
    std::memcpy(KeyBlock, Key.data(), Key.size());
  }

  uint8_t Inner[BlockSize], Outer[BlockSize];
  for (size_t I = 0; I < BlockSize; ++I) {
    Inner[I] = KeyBlock[I] ^ 0x36;
    Outer[I] = KeyBlock[I] ^ 0x5c;
  }

  Sha256State InnerHash;
  InnerHash.update(Inner, BlockSize);
  InnerHash.update(Message.data(), Message.size());
  std::array<uint8_t, 32> InnerDigest = InnerHash.finish();

  Sha256State OuterHash;
  OuterHash.update(Outer, BlockSize);
  OuterHash.update(InnerDigest.data(), InnerDigest.size());
  return OuterHash.finish();
}

std::string hexEncode(const uint8_t *Data, size_t Len) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Len * 2);
  for (size_t I = 0; I < Len; ++I) {
    Out.push_back(Digits[Data[I] >> 4]);
    Out.push_back(Digits[Data[I] & 0xf]);
  }
  return Out;
}

std::string hmacHex(const std::string &Key, const std::string &Message) {
  std::array<uint8_t, 32> Digest = hmacSha256(Key, Message);
  return hexEncode(Digest.data(), Digest.size());
}

std::string randomNonceHex(size_t Bytes) {
  std::string Raw(Bytes, '\0');
  bool Filled = false;
  if (std::FILE *Urandom = std::fopen("/dev/urandom", "rb")) {
    Filled = std::fread(&Raw[0], 1, Bytes, Urandom) == Bytes;
    std::fclose(Urandom);
  }
  if (!Filled) {
    std::random_device Rd;
    for (size_t I = 0; I < Bytes; ++I)
      Raw[I] = static_cast<char>(Rd() & 0xff);
  }
  return hexEncode(reinterpret_cast<const uint8_t *>(Raw.data()), Bytes);
}

bool constantTimeEquals(const std::string &A, const std::string &B) {
  if (A.size() != B.size())
    return false;
  unsigned char Diff = 0;
  for (size_t I = 0; I < A.size(); ++I)
    Diff |= static_cast<unsigned char>(A[I]) ^ static_cast<unsigned char>(B[I]);
  return Diff == 0;
}

} // namespace unit
