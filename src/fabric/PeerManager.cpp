//===- fabric/PeerManager.cpp ----------------------------------------------===//

#include "fabric/PeerManager.h"

#include "fabric/Handshake.h"
#include "support/Time.h"

#include <chrono>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace unit;

namespace {

/// Announcements parked while peers are slow or down. Oldest drop first:
/// a lost announcement costs the fleet one fetch round-trip later, never
/// correctness.
constexpr size_t MaxQueuedAnnouncements = 4096;

/// Entries per push_cache frame — keeps every frame far under the
/// protocol limit whatever the key sizes.
constexpr size_t MaxEntriesPerPush = 512;

/// Seconds before re-dialing a peer that refused the last dial.
constexpr double DialBackoffSeconds = 1.0;

} // namespace

PeerManager::PeerManager(PeerManagerConfig ConfigIn)
    : Config(std::move(ConfigIn)) {
  Links.reserve(Config.Peers.size());
  for (const Endpoint &Ep : Config.Peers) {
    auto P = std::make_unique<Peer>();
    P->Ep = Ep;
    Links.push_back(std::move(P));
  }
}

PeerManager::~PeerManager() { stop(); }

void PeerManager::start() {
  if (Started || Links.empty())
    return;
  Started = true;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    ShuttingDown = false;
  }
  Pusher = std::thread([this] { pusherLoop(); });
}

void PeerManager::stop() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (ShuttingDown && !Pusher.joinable())
      return;
    ShuttingDown = true;
    Queue.clear();
  }
  QueueCv.notify_all();
  if (Pusher.joinable())
    Pusher.join();
  for (auto &P : Links) {
    std::lock_guard<std::mutex> Lock(P->Mu);
    closeLocked(*P);
  }
}

void PeerManager::announce(const std::string &Key,
                           const KernelReport &Report) {
  if (Links.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (ShuttingDown)
      return;
    if (Queue.size() >= MaxQueuedAnnouncements)
      Queue.pop_front();
    Queue.push_back(KernelCache::ExportedEntry{Key, Report});
  }
  QueueCv.notify_one();
}

//===----------------------------------------------------------------------===//
// Link management
//===----------------------------------------------------------------------===//

void PeerManager::closeLocked(Peer &P) {
  if (P.Fd < 0)
    return;
  ::close(P.Fd);
  P.Fd = -1;
  P.FingerprintMatch = false;
  ConnectedCount.fetch_sub(1);
}

std::optional<Json> PeerManager::exchangeLocked(Peer &P, const Json &Request) {
  if (P.Fd < 0)
    return std::nullopt;
  if (!writeFrame(P.Fd, Request.dump())) {
    closeLocked(P);
    return std::nullopt;
  }
  std::string Payload;
  if (readFrame(P.Fd, Payload) != FrameStatus::Ok) {
    closeLocked(P);
    return std::nullopt;
  }
  std::optional<Json> Reply = Json::parse(Payload);
  if (!Reply)
    closeLocked(P); // A peer speaking garbage is a dead link.
  return Reply;
}

bool PeerManager::ensureExchangeableLocked(Peer &P) {
  if (P.Fd >= 0)
    return P.FingerprintMatch;
  double Now = steadyNowSeconds();
  if (Now < P.RetryAtSeconds)
    return false;
  P.RetryAtSeconds = Now + DialBackoffSeconds;

  int Fd = dialTcp(P.Ep);
  if (Fd < 0)
    return false;
  // Bound every exchange: a hung peer must cost a cold compile at most
  // one timeout before the local tuner takes over.
  timeval Timeout;
  Timeout.tv_sec = Config.IoTimeoutSeconds > 0 ? Config.IoTimeoutSeconds : 10;
  Timeout.tv_usec = 0;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
  if (!answerAuthChallenge(Fd, Config.Secret)) {
    ::close(Fd);
    return false;
  }
  P.Fd = Fd;
  ConnectedCount.fetch_add(1);

  Json Hello = Json::object();
  Hello.set("type", "hello");
  Hello.set("client", Config.SelfName);
  std::optional<Json> Welcome = exchangeLocked(P, Hello);
  if (!Welcome || Welcome->str("type") != "welcome") {
    closeLocked(P);
    return false;
  }
  // The strictness that makes exchange safe: identical persistence
  // fingerprints or nothing. The link stays up (it still answers
  // stats-style traffic and may match after a peer upgrade reconnect),
  // but no entry crosses it.
  P.FingerprintMatch = Welcome->str("fingerprint") == Config.Fingerprint;
  if (!P.FingerprintMatch)
    return false;

  // First contact on a matching link: pull the peer's ready entries so a
  // daemon joining an established fleet starts warm instead of paying a
  // fetch round-trip per cold key. Byte-capped by the *serving* side too;
  // existing local entries win on import.
  Json Fetch = Json::object();
  Fetch.set("type", "fetch_cache");
  Fetch.set("fingerprint", Config.Fingerprint);
  std::optional<Json> Reply = exchangeLocked(P, Fetch);
  if (Reply && Reply->str("type") == "cache_entries")
    importEntries(*Reply);
  return P.Fd >= 0 && P.FingerprintMatch;
}

std::vector<KernelCache::ExportedEntry>
PeerManager::importEntries(const Json &Reply) {
  std::vector<KernelCache::ExportedEntry> Decoded;
  const Json *Entries = Reply.get("entries");
  if (!Entries || !Entries->isArray())
    return Decoded;
  for (const Json &E : Entries->items()) {
    KernelCache::ExportedEntry X;
    X.Key = E.str("key");
    const Json *ReportJson = E.get("report");
    std::string Err;
    if (X.Key.empty() || !ReportJson ||
        !kernelReportFromJson(*ReportJson, X.Report, Err))
      continue; // Malformed entries are skipped, not fatal.
    Decoded.push_back(std::move(X));
  }
  if (Config.Cache && !Decoded.empty())
    FetchedCount.fetch_add(Config.Cache->importReady(Decoded));
  return Decoded;
}

//===----------------------------------------------------------------------===//
// The two exchange directions
//===----------------------------------------------------------------------===//

std::optional<KernelReport>
PeerManager::fetchMissing(const std::string &Key) {
  for (auto &PPtr : Links) {
    Peer &P = *PPtr;
    double Probe0 = steadyNowSeconds();
    std::lock_guard<std::mutex> Lock(P.Mu);
    if (!ensureExchangeableLocked(P))
      continue;
    Json Req = Json::object();
    Req.set("type", "fetch_cache");
    Req.set("fingerprint", Config.Fingerprint);
    Json Keys = Json::array();
    Keys.push(Key);
    Req.set("keys", std::move(Keys));
    std::optional<Json> Reply = exchangeLocked(P, Req);
    // One sample per completed exchange — failed dials and transport
    // errors are not RTTs.
    if (Reply)
      FetchRttHist.record(steadyNowSeconds() - Probe0);
    if (!Reply || Reply->str("type") != "cache_entries")
      continue;
    for (KernelCache::ExportedEntry &E : importEntries(*Reply))
      if (E.Key == Key) {
        FetchHitCount.fetch_add(1);
        return std::move(E.Report);
      }
  }
  FetchMissCount.fetch_add(1);
  return std::nullopt;
}

void PeerManager::pusherLoop() {
  while (true) {
    std::vector<KernelCache::ExportedEntry> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      // Timed wait, not pure event wait: the tick is also the dial-retry
      // cadence that brings warm sync to a peer that was down when its
      // announcements would have arrived.
      QueueCv.wait_for(Lock, std::chrono::milliseconds(250), [this] {
        return ShuttingDown || !Queue.empty();
      });
      if (ShuttingDown)
        return;
      while (!Queue.empty() && Batch.size() < MaxEntriesPerPush) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }

    if (Batch.empty()) {
      // Idle tick: keep links dialed (first contact warm-syncs).
      for (auto &P : Links) {
        std::lock_guard<std::mutex> Lock(P->Mu);
        ensureExchangeableLocked(*P);
      }
      continue;
    }

    Json Entries = Json::array();
    for (const KernelCache::ExportedEntry &E : Batch) {
      Json EJ = Json::object();
      EJ.set("key", E.Key);
      EJ.set("report", toJson(E.Report));
      Entries.push(std::move(EJ));
    }
    Json Push = Json::object();
    Push.set("type", "push_cache");
    Push.set("fingerprint", Config.Fingerprint);
    Push.set("entries", std::move(Entries));

    for (auto &PPtr : Links) {
      Peer &P = *PPtr;
      std::lock_guard<std::mutex> Lock(P.Mu);
      if (!ensureExchangeableLocked(P))
        continue; // Down or mismatched: this batch skips the peer.
      std::optional<Json> Reply = exchangeLocked(P, Push);
      if (Reply && Reply->str("type") == "cache_pushed")
        PushedCount.fetch_add(
            static_cast<uint64_t>(Reply->integer("accepted", 0)));
    }
  }
}

PeerManager::Stats PeerManager::stats() const {
  Stats S;
  S.PeersConnected = ConnectedCount.load();
  S.EntriesPushed = PushedCount.load();
  S.EntriesFetched = FetchedCount.load();
  S.FetchHits = FetchHitCount.load();
  S.FetchMisses = FetchMissCount.load();
  return S;
}
