//===- fabric/Endpoint.cpp - TCP endpoint parsing, dialing, listening ----===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fabric/Endpoint.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <vector>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace unit {

namespace {

void setError(std::string *Err, const std::string &Message) {
  if (Err)
    *Err = Message;
}

std::string errnoText() { return std::strerror(errno); }

} // namespace

std::string Endpoint::display() const {
  if (Host.find(':') != std::string::npos)
    return "[" + Host + "]:" + std::to_string(Port);
  return Host + ":" + std::to_string(Port);
}

std::optional<Endpoint> parseEndpoint(const std::string &Text,
                                      std::string *Err) {
  Endpoint Ep;
  std::string PortText;
  if (!Text.empty() && Text.front() == '[') {
    size_t Close = Text.find(']');
    if (Close == std::string::npos) {
      setError(Err, "endpoint '" + Text + "': unbalanced '['");
      return std::nullopt;
    }
    Ep.Host = Text.substr(1, Close - 1);
    if (Close + 1 >= Text.size() || Text[Close + 1] != ':') {
      setError(Err, "endpoint '" + Text + "': expected ':port' after ']'");
      return std::nullopt;
    }
    PortText = Text.substr(Close + 2);
  } else {
    size_t Colon = Text.rfind(':');
    if (Colon == std::string::npos ||
        Text.find(':') != Colon /* bare IPv6 — needs brackets */) {
      setError(Err, "endpoint '" + Text +
                        "': expected host:port ([addr]:port for IPv6)");
      return std::nullopt;
    }
    Ep.Host = Text.substr(0, Colon);
    PortText = Text.substr(Colon + 1);
  }

  unsigned Port = 0;
  const char *First = PortText.data(), *Last = First + PortText.size();
  auto [Ptr, Ec] = std::from_chars(First, Last, Port);
  if (PortText.empty() || Ec != std::errc() || Ptr != Last || Port > 65535) {
    setError(Err, "endpoint '" + Text + "': invalid port '" + PortText + "'");
    return std::nullopt;
  }
  Ep.Port = static_cast<uint16_t>(Port);
  return Ep;
}

bool looksLikeUnixPath(const std::string &Text) {
  return !Text.empty() &&
         (Text.front() == '/' || Text.rfind("./", 0) == 0 ||
          Text.rfind("../", 0) == 0);
}

int dialTcp(const Endpoint &Ep, std::string *Err) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  const std::string Host = Ep.Host.empty() ? "127.0.0.1" : Ep.Host;
  const std::string Port = std::to_string(Ep.Port);
  addrinfo *Results = nullptr;
  int Rc = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Results);
  if (Rc != 0) {
    setError(Err, "resolve " + Ep.display() + ": " + ::gai_strerror(Rc));
    return -1;
  }
  int Fd = -1;
  std::string LastError = "no addresses resolved";
  for (addrinfo *Ai = Results; Ai; Ai = Ai->ai_next) {
    Fd = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
    if (Fd < 0) {
      LastError = "socket: " + errnoText();
      continue;
    }
    if (::connect(Fd, Ai->ai_addr, Ai->ai_addrlen) == 0)
      break;
    LastError = "connect: " + errnoText();
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Results);
  if (Fd < 0) {
    setError(Err, "dial " + Ep.display() + ": " + LastError);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

int listenTcp(const Endpoint &Ep, std::string *Err) {
  addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  const char *Host = Ep.Host.empty() ? nullptr : Ep.Host.c_str();
  const std::string Port = std::to_string(Ep.Port);
  addrinfo *Results = nullptr;
  int Rc = ::getaddrinfo(Host, Port.c_str(), &Hints, &Results);
  if (Rc != 0) {
    setError(Err, "resolve " + Ep.display() + ": " + ::gai_strerror(Rc));
    return -1;
  }
  // Prefer the IPv6 wildcard (v6only off covers v4 too), then the rest
  // of the resolved addresses in order.
  std::vector<addrinfo *> Candidates;
  for (addrinfo *Ai = Results; Ai; Ai = Ai->ai_next)
    if (Ai->ai_family == AF_INET6)
      Candidates.push_back(Ai);
  for (addrinfo *Ai = Results; Ai; Ai = Ai->ai_next)
    if (Ai->ai_family != AF_INET6)
      Candidates.push_back(Ai);
  int Fd = -1;
  std::string LastError = "no addresses resolved";
  for (addrinfo *Ai : Candidates) {
    Fd = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
    if (Fd < 0) {
      LastError = "socket: " + errnoText();
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (Ai->ai_family == AF_INET6) {
      int Zero = 0;
      ::setsockopt(Fd, IPPROTO_IPV6, IPV6_V6ONLY, &Zero, sizeof(Zero));
    }
    if (::bind(Fd, Ai->ai_addr, Ai->ai_addrlen) == 0 && ::listen(Fd, 64) == 0)
      break;
    LastError = "bind/listen: " + errnoText();
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Results);
  if (Fd < 0) {
    setError(Err, "listen " + Ep.display() + ": " + LastError);
    return -1;
  }
  return Fd;
}

uint16_t boundTcpPort(int Fd) {
  sockaddr_storage Addr = {};
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return 0;
  if (Addr.ss_family == AF_INET)
    return ntohs(reinterpret_cast<sockaddr_in *>(&Addr)->sin_port);
  if (Addr.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6 *>(&Addr)->sin6_port);
  return 0;
}

} // namespace unit
