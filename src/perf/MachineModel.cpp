//===- perf/MachineModel.cpp -----------------------------------------------===//

#include "perf/MachineModel.h"

#include <cstdio>

using namespace unit;

namespace {
/// Appends one double in exact hex-float form.
void appendParam(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), ",%a", V);
  Out += Buf;
}
} // namespace

CpuMachine CpuMachine::cascadeLake() {
  CpuMachine M;
  M.Name = "c5.12xlarge (Cascade Lake 8275CL)";
  M.FreqGHz = 3.0;
  M.Cores = 24;
  M.LoadPortsPerCycle = 2.0;
  M.ForkJoinCycles = 15000.0;      // ~5 us to wake a thread pool.
  M.PerChunkSchedCycles = 150.0;
  M.ICacheBodyBudgetBytes = 8192.0; // Comfortable DSB/L1I footprint.
  M.ResidueBranchPenalty = 0.35;    // Guarded store costs ~1.35x.
  M.DramBytesPerCycle = 40.0;       // ~120 GB/s at 3 GHz.
  M.L2BytesPerCore = 1024.0 * 1024.0;
  M.SimdVectorBytes = 64.0;         // AVX-512.
  M.SimdPipes = 2.0;
  M.WideningFactorNoDot = 3.0;      // pmaddubsw+pmaddwd+paddd chains.
  return M;
}

CpuMachine CpuMachine::graviton2() {
  CpuMachine M;
  M.Name = "m6g.8xlarge (Graviton2 Neoverse N1)";
  M.FreqGHz = 2.3;
  M.Cores = 32;
  M.LoadPortsPerCycle = 2.0;
  M.ForkJoinCycles = 12000.0;
  M.PerChunkSchedCycles = 150.0;
  M.ICacheBodyBudgetBytes = 4096.0;
  M.ResidueBranchPenalty = 0.35;
  M.DramBytesPerCycle = 45.0;       // ~100 GB/s at 2.3 GHz.
  M.L2BytesPerCore = 512.0 * 1024.0;
  M.SimdVectorBytes = 16.0;         // 128-bit NEON.
  M.SimdPipes = 2.0;
  // Without DOT, an int8 MAC needs smull/smlal/saddlp widening chains —
  // roughly 8x fewer sustained MACs per cycle than the DOT pipeline
  // (paper Fig. 12's TVM-NEON baseline, beaten by >10x on some models).
  M.WideningFactorNoDot = 8.0;
  return M;
}

std::string CpuMachine::cacheFingerprint() const {
  std::string Out = Name;
  for (double V :
       {FreqGHz, static_cast<double>(Cores), LoadPortsPerCycle,
        ForkJoinCycles, PerChunkSchedCycles, ICacheBodyBudgetBytes,
        ResidueBranchPenalty, DramBytesPerCycle, L2BytesPerCore,
        SimdVectorBytes, SimdPipes, WideningFactorNoDot})
    appendParam(Out, V);
  return Out;
}

GpuMachine GpuMachine::v100() {
  GpuMachine M;
  M.Name = "p3.2xlarge (Tesla V100-SXM2)";
  M.FreqGHz = 1.53;
  M.SMs = 80;
  // 8 tensor cores/SM retire one warp-level m16n16k16 every ~4 cycles in
  // aggregate; a single warp can issue at best one every ~16 cycles, so
  // ~4 resident warps saturate an SM.
  M.WmmaPerCyclePerSM = 0.25;
  M.WarpIssueCycles = 16.0;
  M.FmaPerCyclePerSM = 64.0;        // fp32 CUDA cores.
  M.KernelLaunchMicros = 1.0;
  M.SyncBaseCycles = 200.0;
  M.SyncPerSegmentCycles = 20.0;
  M.RegsPerAccumTile = 256.0;       // One 16x16 fp32 fragment per warp.
  M.RegsBase = 512.0;
  M.RegBudgetPerWarp = 4096.0;      // Past this, spills (p=4 territory).
  M.DramBytesPerCycle = 580.0;      // ~900 GB/s HBM2 at 1.53 GHz.
  M.WarpsForPeakBandwidth = 160.0;  // ~2 warps per SM keep HBM busy.
  M.SharedBytesPerSM = 96.0 * 1024.0;
  return M;
}

std::string GpuMachine::cacheFingerprint() const {
  std::string Out = Name;
  for (double V :
       {FreqGHz, static_cast<double>(SMs), WmmaPerCyclePerSM,
        WarpIssueCycles, FmaPerCyclePerSM, KernelLaunchMicros,
        SyncBaseCycles, SyncPerSegmentCycles, RegsPerAccumTile, RegsBase,
        RegBudgetPerWarp, DramBytesPerCycle, WarpsForPeakBandwidth,
        SharedBytesPerSM})
    appendParam(Out, V);
  return Out;
}
