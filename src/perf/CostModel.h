//===- perf/CostModel.h - Schedule-level performance estimation -----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimates kernel latency from the *schedule structure* — the quantities
/// the paper's tuner actually manipulates (unrolled accumulators, parallel
/// chunks, split-K segments, residue guards) — against a MachineModel.
/// The Tuner profiles candidate schedules through this model, and the
/// simulated vendor libraries (baselines/) price their fixed expert
/// schedules through the *same* formulas, so comparisons measure schedule
/// quality, not model disagreement.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_PERF_COSTMODEL_H
#define UNIT_PERF_COSTMODEL_H

#include "core/Rewriter.h"
#include "perf/MachineModel.h"

namespace unit {

/// Schedule-level facts that determine modeled latency.
struct KernelStats {
  // -- Tensorized work --
  double Calls = 0;          ///< Intrinsic invocations (padding included).
  double MacsPerCall = 0;
  IntrinsicCost Cost;        ///< Instruction pipeline characteristics.
  double LoadsPerCall = 1;   ///< Vector loads feeding one invocation.
  // -- Schedule structure --
  double Unroll = 1;         ///< Independent accumulator tiles in flight.
  double ParallelExtent = 1; ///< CPU parallel chunks / GPU blocks.
  double SplitK = 1;         ///< GPU concurrent reduction segments.
  bool HasResidueGuards = false;
  double UsefulFraction = 1.0; ///< Non-padding fraction of the work.
  // -- Memory footprints in bytes --
  double OutputBytes = 0;
  double InputBytes = 0;
  double WeightBytes = 0;
  // -- SIMD fallback work (used when Calls == 0) --
  double SimdMacs = 0;
  double SimdElemBytes = 1;
  double WideningFactor = 1; ///< Extra instructions per MAC (no-DOT NEON).
};

/// Extracts stats from a tensorized plan's current schedule. Cheap enough
/// for the Tuner to call once per candidate (no lowering involved).
KernelStats analyzeTensorized(const TensorizePlan &Plan);

/// Fills the SIMD-fallback fields for a non-tensorized ComputeOp.
KernelStats analyzeSimdFallback(const ComputeOpRef &Op,
                                double WideningFactor,
                                double ParallelExtent);

/// Modeled seconds on a CPU for a tensorized kernel.
double cpuLatencySeconds(const KernelStats &S, const CpuMachine &M);

/// Modeled seconds on a CPU for a SIMD (non-tensorized) kernel.
double simdLatencySeconds(const KernelStats &S, const CpuMachine &M);

/// Modeled seconds on a GPU (tensor-core kernel).
double gpuLatencySeconds(const KernelStats &S, const GpuMachine &M);

/// Admissible lower bound on cpuLatencySeconds for a schedule whose
/// structural stats (Calls/Unroll/ParallelExtent/footprints) are known
/// but whose operand-generation facts are not: prices \p S with
/// LoadsPerCall = 1 and no residue guards — the optimistic floor of both.
/// cpuLatencySeconds is monotone nondecreasing in LoadsPerCall (the load
/// port term and the I-cache body-size penalty both grow with it) and in
/// the guard flag, so the returned value never exceeds the real latency.
/// The tuner's early-exit pruning leans on this admissibility: a
/// candidate whose bound beats the running best cannot be the winner.
double cpuLatencyLowerBoundSeconds(const KernelStats &S, const CpuMachine &M);

/// GPU analog. gpuLatencySeconds reads neither LoadsPerCall nor the guard
/// flag, so for exact structural stats this bound *equals* the latency —
/// GPU pruning is lossless by construction.
double gpuLatencyLowerBoundSeconds(const KernelStats &S, const GpuMachine &M);

/// Modeled seconds for a pure streaming elementwise pass over \p Bytes
/// (used for non-fused epilogues and framework glue operators).
double elementwiseLatencySeconds(double Bytes, double LaunchOverheadSeconds,
                                 double BytesPerSecond);

} // namespace unit

#endif // UNIT_PERF_COSTMODEL_H
