//===- perf/CostModel.cpp --------------------------------------------------===//

#include "perf/CostModel.h"

#include "core/OperandGen.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cmath>

using namespace unit;

KernelStats unit::analyzeTensorized(const TensorizePlan &Plan) {
  const Schedule &S = *Plan.Sched;
  const ComputeOp &Op = *S.op();
  const TensorIntrinsic &Intr = *Plan.Match.Intrinsic;

  KernelStats Stats;
  Stats.Cost = Intr.cost();
  Stats.MacsPerCall = Intr.cost().MacsPerInstr;

  // Walk the leaves, skipping the tensorized inner loops (they are covered
  // by one instruction invocation).
  Stats.Calls = 1;
  for (const IterVar &Leaf : S.leaves()) {
    bool IsInner = std::find(Plan.InnerLoops.begin(), Plan.InnerLoops.end(),
                             Leaf) != Plan.InnerLoops.end();
    if (IsInner)
      continue;
    Stats.Calls *= static_cast<double>(Leaf->extent());
    switch (S.annotation(Leaf)) {
    case ForKind::Unrolled:
      Stats.Unroll *= static_cast<double>(Leaf->extent());
      break;
    case ForKind::Parallel:
    case ForKind::GpuBlockX:
    case ForKind::GpuBlockY:
      Stats.ParallelExtent *= static_cast<double>(Leaf->extent());
      break;
    case ForKind::GpuThreadX:
    case ForKind::GpuThreadY:
      if (Leaf->isReduce())
        Stats.SplitK *= static_cast<double>(Leaf->extent());
      else
        Stats.ParallelExtent *= static_cast<double>(Leaf->extent());
      break;
    case ForKind::Serial:
    case ForKind::Vectorized:
      break;
    }
  }

  // Residue guards and padding waste from imperfect splits.
  for (const Schedule::SplitRel &R : S.splits()) {
    if (!R.NeedsGuard)
      continue;
    Stats.HasResidueGuards = true;
    double Padded =
        static_cast<double>(R.Outer->extent()) * static_cast<double>(R.Factor);
    Stats.UsefulFraction *= static_cast<double>(R.Parent->extent()) / Padded;
  }

  // Loads per invocation, from the operand-generation roles: a Broadcast
  // or Vectorize axis costs one vector load, every Unroll axis multiplies
  // the piece count. The accumulator stays register-resident across the
  // reduction, so it is not charged per call.
  VarSubst Roots = S.rootBindings();
  ExprRef OutIdx = generateOutputIndex(Plan, Roots);
  double Loads = 0;
  for (const OperandBinding &B : Plan.Match.Iso.Bindings) {
    if (B.IsAccumulator)
      continue;
    OperandInfo Info = generateOperand(Plan, B, Roots, OutIdx);
    double Pieces = 1;
    for (const auto &[Axis, Role] : Info.Roles)
      if (Role == OperandAxisRole::Unroll)
        Pieces *= static_cast<double>(Axis->extent());
    Loads += Pieces;
  }
  Stats.LoadsPerCall = std::max(1.0, Loads);

  // Memory footprints.
  auto FootprintBytes = [](const TensorRef &T) {
    return static_cast<double>(T->numElements()) * T->dtype().lanesBytes();
  };
  Stats.OutputBytes = FootprintBytes(Op.output());
  const std::vector<TensorRef> &Inputs = Op.inputs();
  for (size_t I = 0; I < Inputs.size(); ++I) {
    // Convention: the last reduce-only operand acts like weights; a 2-input
    // MAC op has activations first, weights second.
    if (I + 1 == Inputs.size() && Inputs.size() >= 2)
      Stats.WeightBytes += FootprintBytes(Inputs[I]);
    else
      Stats.InputBytes += FootprintBytes(Inputs[I]);
  }
  return Stats;
}

KernelStats unit::analyzeSimdFallback(const ComputeOpRef &Op,
                                      double WideningFactor,
                                      double ParallelExtent) {
  KernelStats Stats;
  double Macs = 1;
  for (const IterVar &IV : Op->allAxes())
    Macs *= static_cast<double>(IV->extent());
  Stats.SimdMacs = Macs;
  Stats.SimdElemBytes = Op->inputs().empty()
                            ? 1.0
                            : Op->inputs().front()->dtype().lanesBytes();
  Stats.WideningFactor = WideningFactor;
  Stats.ParallelExtent = ParallelExtent;
  auto FootprintBytes = [](const TensorRef &T) {
    return static_cast<double>(T->numElements()) * T->dtype().lanesBytes();
  };
  Stats.OutputBytes = FootprintBytes(Op->output());
  for (const TensorRef &T : Op->inputs())
    Stats.InputBytes += FootprintBytes(T);
  return Stats;
}

namespace {

/// Penalty for unrolled bodies that overflow the instruction cache or
/// decoded-uop budget (paper §III.C: "If it is too large, it will cause
/// I-cache misses").
double iCachePenalty(double BodyBytes, const CpuMachine &M) {
  if (BodyBytes <= M.ICacheBodyBudgetBytes)
    return 1.0;
  return 1.0 + 0.3 * std::log2(BodyBytes / M.ICacheBodyBudgetBytes);
}

double dramTrafficBytes(const KernelStats &S) {
  // One-pass traffic plus read-modify-write of the accumulator output.
  return 2.0 * S.OutputBytes + S.InputBytes + S.WeightBytes;
}

} // namespace

double unit::cpuLatencySeconds(const KernelStats &S, const CpuMachine &M) {
  double Chunks = std::max(1.0, S.ParallelExtent);
  double Threads = std::min<double>(M.Cores, Chunks);

  // Per-call cycles: the dependent accumulate chain is hidden by `Unroll`
  // independent accumulators (paper §III.C CPU tuning).
  double IssueCycles = 1.0 / S.Cost.IssuePerCycle;
  double ChainCycles = S.Cost.LatencyCycles / std::max(1.0, S.Unroll);
  double LoadCycles = S.LoadsPerCall / M.LoadPortsPerCycle;
  double BodyCycles = std::max({IssueCycles, ChainCycles, LoadCycles});
  if (S.HasResidueGuards)
    BodyCycles *= 1.0 + M.ResidueBranchPenalty;

  // Unrolled body footprint: each call is roughly (loads + 1 FMA-class
  // instruction) of ~8 encoded bytes.
  double BodyBytes = S.Unroll * (S.LoadsPerCall + 1.0) * 8.0;
  BodyCycles *= iCachePenalty(BodyBytes, M);

  // Imbalance-aware per-core work.
  double CallsPerChunk = S.Calls / Chunks;
  double PerCoreCalls = std::ceil(Chunks / Threads) * CallsPerChunk;
  double ComputeCycles = PerCoreCalls * BodyCycles;

  double OverheadCycles =
      M.ForkJoinCycles + M.PerChunkSchedCycles * (Chunks / Threads);

  double MemCycles = dramTrafficBytes(S) / M.DramBytesPerCycle;

  double Cycles = std::max(ComputeCycles, MemCycles) + OverheadCycles;
  return Cycles / (M.FreqGHz * 1e9);
}

double unit::simdLatencySeconds(const KernelStats &S, const CpuMachine &M) {
  double LanesPerVector = M.SimdVectorBytes / S.SimdElemBytes;
  double MacsPerCyclePerCore =
      LanesPerVector * M.SimdPipes / std::max(1.0, S.WideningFactor);
  double Chunks = std::max(1.0, S.ParallelExtent);
  double Threads = std::min<double>(M.Cores, Chunks);
  double PerCoreMacs = std::ceil(Chunks / Threads) * (S.SimdMacs / Chunks);
  double ComputeCycles = PerCoreMacs / MacsPerCyclePerCore;
  double OverheadCycles =
      M.ForkJoinCycles + M.PerChunkSchedCycles * (Chunks / Threads);
  double MemCycles = dramTrafficBytes(S) / M.DramBytesPerCycle;
  double Cycles = std::max(ComputeCycles, MemCycles) + OverheadCycles;
  return Cycles / (M.FreqGHz * 1e9);
}

double unit::gpuLatencySeconds(const KernelStats &S, const GpuMachine &M) {
  double Blocks = std::max(1.0, S.ParallelExtent);
  double SplitK = std::max(1.0, S.SplitK);
  double Unroll = std::max(1.0, S.Unroll);

  // A block's split-K segments are concurrent warps on one SM. With bs=1
  // there are often too few blocks to cover the SMs; split-K manufactures
  // extra warps to "keep the Tensor Cores busy" (paper §VI.B).
  double TotalWarps = Blocks * SplitK;
  double ActiveSMs = std::min<double>(M.SMs, Blocks);
  double WarpsPerSM = TotalWarps / ActiveSMs;

  // One warp issues a wmma every WarpIssueCycles at best; the dependent
  // accumulate chain stretches that unless `Unroll` independent
  // accumulators (the p x p outer product of Fig. 6) hide it.
  double PerWarpInterval =
      std::max(M.WarpIssueCycles, S.Cost.LatencyCycles / Unroll);
  double SMRate =
      std::min(M.WmmaPerCyclePerSM, WarpsPerSM / PerWarpInterval);
  double ComputeCycles = S.Calls / (ActiveSMs * SMRate);

  // Register pressure: every live accumulator tile holds a fragment in
  // the warp's registers; past the budget, spills dominate (the paper's
  // "any unrolling degree larger than 2 may overwhelm the registers").
  double RegsPerWarp = M.RegsBase + Unroll * M.RegsPerAccumTile;
  double SpillPenalty = 1.0;
  if (RegsPerWarp > M.RegBudgetPerWarp)
    SpillPenalty = 1.0 + 1.5 * (RegsPerWarp / M.RegBudgetPerWarp - 1.0);

  // Split-K epilogue: cross-segment reduction through shared memory.
  double SyncCycles = 0.0;
  if (SplitK > 1)
    SyncCycles = M.SyncBaseCycles + M.SyncPerSegmentCycles * SplitK;

  // Achievable DRAM bandwidth scales with memory-level parallelism: a
  // handful of resident warps cannot keep HBM busy, so split-K also lifts
  // the memory roofline of low-occupancy kernels.
  double BwUtilization =
      std::min(1.0, TotalWarps / M.WarpsForPeakBandwidth);
  double MemCycles = dramTrafficBytes(S) /
                     (M.DramBytesPerCycle * std::max(0.15, BwUtilization));

  double Cycles =
      std::max(ComputeCycles, MemCycles) * SpillPenalty + SyncCycles;
  return Cycles / (M.FreqGHz * 1e9) + M.KernelLaunchMicros * 1e-6;
}

double unit::cpuLatencyLowerBoundSeconds(const KernelStats &S,
                                         const CpuMachine &M) {
  KernelStats Floor = S;
  Floor.LoadsPerCall = 1;
  Floor.HasResidueGuards = false;
  return cpuLatencySeconds(Floor, M);
}

double unit::gpuLatencyLowerBoundSeconds(const KernelStats &S,
                                         const GpuMachine &M) {
  // No optimistic substitution needed: the GPU formula reads only fields
  // the caller can reconstruct exactly from the schedule arithmetic.
  return gpuLatencySeconds(S, M);
}

double unit::elementwiseLatencySeconds(double Bytes,
                                       double LaunchOverheadSeconds,
                                       double BytesPerSecond) {
  return LaunchOverheadSeconds + Bytes / BytesPerSecond;
}
