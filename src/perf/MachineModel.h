//===- perf/MachineModel.h - Analytic machine descriptions -----------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized machine models standing in for the paper's hardware
/// (AWS c5.12xlarge Cascade Lake, p3.2xlarge V100, m6g.8xlarge Graviton2).
/// The performance mechanisms the paper's tuner exploits are modeled
/// explicitly — dependent-issue latency hidden by unrolled accumulators,
/// thread fork/join overhead, I-cache pressure from deep unrolling,
/// residue-guard branches, SM occupancy, register-pressure spills, split-K
/// synchronization, and bandwidth rooflines — so tuning decisions have the
/// same qualitative consequences they have on silicon. See DESIGN.md for
/// the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_PERF_MACHINEMODEL_H
#define UNIT_PERF_MACHINEMODEL_H

#include <cstdint>
#include <string>

namespace unit {

/// A multicore CPU with SIMD/tensorized execution units.
struct CpuMachine {
  std::string Name;
  double FreqGHz;       ///< Core clock.
  int Cores;            ///< Physical cores usable by one inference.
  double LoadPortsPerCycle; ///< Vector loads issued per cycle per core.
  double ForkJoinCycles;    ///< Fixed cost of one parallel region.
  double PerChunkSchedCycles; ///< Scheduling cost per parallel chunk.
  double ICacheBodyBudgetBytes; ///< Unrolled body size before penalties.
  double ResidueBranchPenalty;  ///< Relative cost of a guarded body.
  double DramBytesPerCycle;     ///< Aggregate DRAM bandwidth / frequency.
  double L2BytesPerCore;        ///< Private-ish cache per core.
  /// SIMD fallback parameters (non-tensorized kernels).
  double SimdVectorBytes;   ///< Vector register width.
  double SimdPipes;         ///< Vector ALUs per core.
  /// Extra multiply-widen instructions per MAC when no dot instruction
  /// exists (the TVM-NEON baseline's handicap, paper Fig. 12).
  double WideningFactorNoDot;

  /// AWS c5.12xlarge: Intel Xeon Platinum 8275CL (Cascade Lake), 24 cores
  /// at 3.0 GHz, AVX-512 VNNI on two ports.
  static CpuMachine cascadeLake();

  /// AWS m6g.8xlarge: Graviton2 (Neoverse N1), 32 cores at 2.3 GHz,
  /// 128-bit NEON with the DOT extension.
  static CpuMachine graviton2();

  /// Exact serialization of every latency-relevant parameter (name
  /// included). Kernel-cache salts use this so two machines that share a
  /// name but differ in any parameter never share cached latencies.
  std::string cacheFingerprint() const;
};

/// A CUDA GPU with per-SM tensor cores.
struct GpuMachine {
  std::string Name;
  double FreqGHz;
  int SMs;
  double WmmaPerCyclePerSM; ///< Aggregate tensor-core retirement per SM.
  /// Best-case wmma issue interval of a single warp (one warp occupies one
  /// scheduler, so several resident warps are needed to saturate the SM's
  /// tensor cores — the utilization gap split-K fills, paper §III.C).
  double WarpIssueCycles;
  double FmaPerCyclePerSM;  ///< fp32 FMA lanes (the no-TC path of Fig. 1).
  double KernelLaunchMicros;
  double SyncBaseCycles;   ///< Block-wide __syncthreads cost.
  double SyncPerSegmentCycles; ///< Additional cost per split-K segment.
  double RegsPerAccumTile; ///< Warp registers one accumulator tile holds.
  double RegsBase;         ///< Base warp register usage.
  double RegBudgetPerWarp; ///< Spill threshold (paper: p>2 overwhelms).
  double DramBytesPerCycle;
  /// Warps needed in flight to reach peak DRAM bandwidth (memory-level
  /// parallelism): low-occupancy bs=1 kernels cannot saturate HBM, which
  /// is the second thing split-K buys back.
  double WarpsForPeakBandwidth;
  double SharedBytesPerSM;

  /// AWS p3.2xlarge: Tesla V100-SXM2, 80 SMs at 1.53 GHz.
  static GpuMachine v100();

  /// Exact parameter serialization; see CpuMachine::cacheFingerprint.
  std::string cacheFingerprint() const;
};

} // namespace unit

#endif // UNIT_PERF_MACHINEMODEL_H
