//===- support/Random.h - Deterministic PRNG for tests/workloads ---------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic random number generator. Tests and
/// workload generators must be reproducible across runs and platforms, so
/// we avoid std::mt19937's distribution non-portability.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_RANDOM_H
#define UNIT_SUPPORT_RANDOM_H

#include <cstdint>

namespace unit {

/// Deterministic 64-bit PRNG (SplitMix64, Steele et al.).
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [Lo, Hi] inclusive. Requires Lo <= Hi.
  int64_t uniform(int64_t Lo, int64_t Hi) {
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// Uniform double in [0, 1).
  double uniformReal() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

} // namespace unit

#endif // UNIT_SUPPORT_RANDOM_H
