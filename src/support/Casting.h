//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Node classes expose a
/// `static bool classof(const Base *)` predicate keyed on a Kind tag; these
/// templates provide checked downcasts without compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_CASTING_H
#define UNIT_SUPPORT_CASTING_H

#include <cassert>
#include <memory>

namespace unit {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val is an instance of To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when \p Val is not an instance of To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null argument.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Convenience overloads so call sites can pass shared_ptr handles directly.
template <typename To, typename From>
bool isa(const std::shared_ptr<From> &Val) {
  return isa<To>(Val.get());
}
template <typename To, typename From>
const To *cast(const std::shared_ptr<From> &Val) {
  return cast<To>(Val.get());
}
template <typename To, typename From>
const To *dyn_cast(const std::shared_ptr<From> &Val) {
  return dyn_cast<To>(Val.get());
}

} // namespace unit

#endif // UNIT_SUPPORT_CASTING_H
