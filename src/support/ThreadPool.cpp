//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "support/ThreadPool.h"

#include <chrono>

using namespace unit;

namespace {
/// Which pool (if any) owns the current thread, and that worker's queue
/// index. Lets enqueue() route nested submissions to the worker's own deque.
thread_local const ThreadPool *OwnerPool = nullptr;
thread_local size_t OwnerIndex = 0;
} // namespace

ThreadPool::ThreadPool(unsigned ThreadsRequested) {
  unsigned N = ThreadsRequested;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  Queues.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  // Drain: workers only exit once Stop is set *and* their scan comes up
  // empty, so queued tasks still run. Publishing Stop under SleepMu pairs
  // with the workers' untimed wait (no missed-wakeup window).
  {
    std::lock_guard<std::mutex> Lock(SleepMu);
    Stop.store(true);
  }
  SleepCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(Task T, uint64_t Group) {
  size_t Index;
  if (OwnerPool == this)
    Index = OwnerIndex;
  else
    Index = NextQueue.fetch_add(1) % Queues.size();
  {
    std::lock_guard<std::mutex> Lock(Queues[Index]->Mu);
    Queues[Index]->Tasks.push_back({std::move(T), Group});
  }
  {
    // Publish under SleepMu so a worker between its failed scan and its
    // wait cannot miss the update — which lets workers use an untimed
    // wait instead of burning CPU on a polling timeout.
    std::lock_guard<std::mutex> Lock(SleepMu);
    Pending.fetch_add(1);
  }
  SleepCv.notify_one();
}

void ThreadPool::submit(Task T) { enqueue(std::move(T), /*Group=*/0); }

bool ThreadPool::popFrom(size_t Index, Task &Out, bool Steal,
                         uint64_t Group) {
  WorkerQueue &Q = *Queues[Index];
  std::lock_guard<std::mutex> Lock(Q.Mu);
  if (Group == 0) {
    if (Q.Tasks.empty())
      return false;
    if (Steal) {
      Out = std::move(Q.Tasks.front().Fn);
      Q.Tasks.pop_front();
    } else {
      Out = std::move(Q.Tasks.back().Fn);
      Q.Tasks.pop_back();
    }
    Pending.fetch_sub(1);
    return true;
  }
  // Group-restricted scan (owner LIFO / thief FIFO over matching tasks).
  if (Steal) {
    for (auto It = Q.Tasks.begin(); It != Q.Tasks.end(); ++It)
      if (It->Group == Group) {
        Out = std::move(It->Fn);
        Q.Tasks.erase(It);
        Pending.fetch_sub(1);
        return true;
      }
  } else {
    for (auto It = Q.Tasks.rbegin(); It != Q.Tasks.rend(); ++It)
      if (It->Group == Group) {
        Out = std::move(It->Fn);
        Q.Tasks.erase(std::next(It).base());
        Pending.fetch_sub(1);
        return true;
      }
  }
  return false;
}

bool ThreadPool::findTask(Task &Out, size_t HomeIndex, uint64_t Group) {
  if (HomeIndex < Queues.size() &&
      popFrom(HomeIndex, Out, /*Steal=*/false, Group))
    return true;
  for (size_t Off = 1; Off <= Queues.size(); ++Off) {
    size_t Victim = (HomeIndex + Off) % Queues.size();
    if (Victim == HomeIndex)
      continue;
    if (popFrom(Victim, Out, /*Steal=*/true, Group))
      return true;
  }
  return false;
}

bool ThreadPool::runOne() {
  Task T;
  // External threads have no home queue; start stealing at 0.
  size_t Home = (OwnerPool == this) ? OwnerIndex : 0;
  if (!findTask(T, Home, /*Group=*/0))
    return false;
  T();
  return true;
}

void ThreadPool::workerLoop(size_t Index) {
  OwnerPool = this;
  OwnerIndex = Index;
  Task T;
  while (true) {
    if (findTask(T, Index, /*Group=*/0)) {
      T();
      T = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMu);
    if (Stop.load() && Pending.load() == 0)
      return;
    SleepCv.wait(Lock, [this] {
      return Stop.load() || Pending.load() > 0;
    });
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (N == 1) {
    Fn(0);
    return;
  }
  uint64_t Group = NextGroup.fetch_add(1);
  struct Latch {
    std::mutex Mu;
    std::condition_variable Cv;
    size_t Remaining;
    std::exception_ptr FirstError;
  };
  auto Done = std::make_shared<Latch>();
  Done->Remaining = N;
  for (size_t I = 0; I < N; ++I)
    enqueue(
        [&Fn, Done, I] {
          // Contain exceptions in the task: escaping a worker's T() would
          // std::terminate, and unwinding a helping caller would free the
          // frame sibling tasks still reference. The first error is
          // rethrown from parallelFor once every task has finished.
          std::exception_ptr Error;
          try {
            Fn(I);
          } catch (...) {
            Error = std::current_exception();
          }
          std::lock_guard<std::mutex> Lock(Done->Mu);
          if (Error && !Done->FirstError)
            Done->FirstError = Error;
          if (--Done->Remaining == 0)
            Done->Cv.notify_all();
        },
        Group);
  // Help with *this group only* while waiting; see the header for why the
  // restriction matters for nested single-flight waits. Once the group's
  // queues are drained the stragglers run on other threads, so block on
  // the latch instead of spinning.
  size_t Home = (OwnerPool == this) ? OwnerIndex : 0;
  Task T;
  while (true) {
    if (findTask(T, Home, Group)) {
      T();
      T = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> Lock(Done->Mu);
    if (Done->Remaining == 0)
      break;
    Done->Cv.wait(Lock);
  }
  std::lock_guard<std::mutex> Lock(Done->Mu);
  if (Done->FirstError)
    std::rethrow_exception(Done->FirstError);
}
