//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus join/pad helpers used by
/// the IR printers and the benchmark tables.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_STRINGUTILS_H
#define UNIT_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace unit {

/// printf-style formatting returning a std::string.
std::string formatStr(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Renders a shape like [2, 3, 4] as "2x3x4".
std::string shapeStr(const std::vector<int64_t> &Shape);

/// Left-pads \p S with spaces to \p Width characters.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to \p Width characters.
std::string padRight(const std::string &S, size_t Width);

} // namespace unit

#endif // UNIT_SUPPORT_STRINGUTILS_H
