//===- support/Table.cpp --------------------------------------------------===//

#include "support/Table.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace unit;

std::string Table::str() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto Render = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < NumCols; ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      Line += padRight(Cell, Widths[I]);
      if (I + 1 != NumCols)
        Line += "  ";
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = Render(Header);
  size_t RuleLen = 0;
  for (size_t I = 0; I < NumCols; ++I)
    RuleLen += Widths[I] + (I + 1 != NumCols ? 2 : 0);
  Out += std::string(RuleLen, '-') + "\n";
  for (const auto &Row : Rows)
    Out += Render(Row);
  return Out;
}

void Table::print() const {
  std::string S = str();
  std::fwrite(S.data(), 1, S.size(), stdout);
}
