//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace unit;

std::string unit::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  va_end(Args);
  return Out;
}

std::string unit::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string unit::shapeStr(const std::vector<int64_t> &Shape) {
  std::vector<std::string> Parts;
  Parts.reserve(Shape.size());
  for (int64_t D : Shape)
    Parts.push_back(std::to_string(D));
  return join(Parts, "x");
}

std::string unit::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string unit::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
