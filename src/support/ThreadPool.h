//===- support/ThreadPool.h - Work-stealing task pool ---------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool. Each worker owns a deque: tasks
/// submitted from a worker go to its own deque (LIFO pop for locality),
/// external submissions are distributed round-robin, and idle workers steal
/// from the front of their siblings' deques. The calling thread can help
/// drain the pool (runOne / parallelFor), so nested waits never deadlock.
///
/// The CompilerSession uses one of these to tune distinct kernel shapes
/// concurrently and to score tuning candidates in parallel; determinism is
/// the *callers'* responsibility (index-stable result slots + index-stable
/// argmin), the pool guarantees only that every submitted task runs.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_THREADPOOL_H
#define UNIT_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace unit {

class ThreadPool {
public:
  using Task = std::function<void()>;

  /// \p ThreadsRequested == 0 picks std::thread::hardware_concurrency()
  /// (at least 1). A pool with 1 thread still overlaps with the caller,
  /// which helps via runOne() while waiting.
  explicit ThreadPool(unsigned ThreadsRequested = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p T. From a worker thread the task lands on that worker's
  /// own deque; from outside it is distributed round-robin.
  void submit(Task T);

  /// Runs one pending task on the calling thread (stealing from any
  /// worker). Returns false when nothing was pending.
  bool runOne();

  /// Runs Fn(0), ..., Fn(N-1) across the pool; the calling thread helps
  /// until every index has finished. Indices may execute in any order and
  /// concurrently — Fn must only touch per-index state.
  ///
  /// While waiting, the caller only ever executes *this call's own*
  /// tasks, never unrelated ones. That restriction is what makes nested
  /// blocking safe: a thread mid-way through a single-flight compile can
  /// help its own candidate scoring, but can never steal a task that
  /// would block on the very future it is responsible for fulfilling.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

private:
  /// 0 = ungrouped (any thread may run it); otherwise the parallelFor
  /// call it belongs to.
  struct QueuedTask {
    Task Fn;
    uint64_t Group = 0;
  };
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<QueuedTask> Tasks;
  };

  void enqueue(Task T, uint64_t Group);
  /// Pops from queue \p Index: back (LIFO) for its owner, front (steal)
  /// for everyone else. With \p Group != 0 only that group's tasks match.
  bool popFrom(size_t Index, Task &Out, bool Steal, uint64_t Group);
  /// Finds a pending task, preferring \p HomeIndex's queue.
  bool findTask(Task &Out, size_t HomeIndex, uint64_t Group);
  void workerLoop(size_t Index);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::mutex SleepMu;
  std::condition_variable SleepCv;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> NextQueue{0};
  std::atomic<uint64_t> NextGroup{1};
  std::atomic<int> Pending{0}; ///< Submitted but not yet dequeued.
};

} // namespace unit

#endif // UNIT_SUPPORT_THREADPOOL_H
