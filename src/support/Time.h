//===- support/Time.h - Monotonic wall-clock helper -----------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one steady-clock-in-seconds helper the benches and the server
/// share for wall-time deltas. Monotonic — suitable only for measuring
/// durations, never for timestamps.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_TIME_H
#define UNIT_SUPPORT_TIME_H

#include <chrono>

namespace unit {

/// Seconds on the monotonic clock; subtract two calls for a duration.
inline double steadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace unit

#endif // UNIT_SUPPORT_TIME_H
