//===- support/Table.h - ASCII table rendering for bench output ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small column-aligned ASCII table used by every bench binary to print
/// the rows/series the paper's figures plot.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_TABLE_H
#define UNIT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace unit {

/// Column-aligned ASCII table builder.
class Table {
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;

public:
  explicit Table(std::vector<std::string> HeaderCells)
      : Header(std::move(HeaderCells)) {}

  /// Appends a row; missing cells render empty, extra cells are kept.
  void addRow(std::vector<std::string> Cells) { Rows.push_back(std::move(Cells)); }

  /// Renders the table (header, separator, rows), one trailing newline.
  std::string str() const;

  /// Renders and writes to stdout.
  void print() const;
};

} // namespace unit

#endif // UNIT_SUPPORT_TABLE_H
