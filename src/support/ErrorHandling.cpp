//===- support/ErrorHandling.cpp ------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace unit;

void unit::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::abort();
}

void unit::unitUnreachableImpl(const char *Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
