//===- support/ErrorHandling.h - Fatal errors and unreachable ------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting helpers. The library does not use C++ exceptions;
/// unrecoverable conditions abort with a diagnostic, matching LLVM practice.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SUPPORT_ERRORHANDLING_H
#define UNIT_SUPPORT_ERRORHANDLING_H

#include <string>

namespace unit {

/// Prints "fatal error: <Msg>" to stderr and aborts. Used for conditions
/// triggered by bad user input (malformed DSL programs, shape mismatches).
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Internal-invariant violation; prints location and aborts.
[[noreturn]] void unitUnreachableImpl(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace unit

/// Marks a point in code that must never execute.
#define unit_unreachable(MSG)                                                  \
  ::unit::unitUnreachableImpl(MSG, __FILE__, __LINE__)

#endif // UNIT_SUPPORT_ERRORHANDLING_H
