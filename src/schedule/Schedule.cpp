//===- schedule/Schedule.cpp ----------------------------------------------===//

#include "schedule/Schedule.h"

#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace unit;

const char *unit::forKindName(ForKind K) {
  switch (K) {
  case ForKind::Serial:
    return "serial";
  case ForKind::Parallel:
    return "parallel";
  case ForKind::Unrolled:
    return "unroll";
  case ForKind::Vectorized:
    return "vectorize";
  case ForKind::GpuBlockX:
    return "blockIdx.x";
  case ForKind::GpuBlockY:
    return "blockIdx.y";
  case ForKind::GpuThreadX:
    return "threadIdx.x";
  case ForKind::GpuThreadY:
    return "threadIdx.y";
  }
  unit_unreachable("unknown ForKind");
}

Schedule::Schedule(ComputeOpRef OpIn) : Op(std::move(OpIn)) {
  assert(Op && "null ComputeOp");
  Leaves = Op->allAxes();
}

bool Schedule::isLeaf(const IterVar &IV) const {
  return std::find(Leaves.begin(), Leaves.end(), IV) != Leaves.end();
}

std::pair<IterVar, IterVar> Schedule::split(const IterVar &IV,
                                            int64_t Factor) {
  auto It = std::find(Leaves.begin(), Leaves.end(), IV);
  if (It == Leaves.end())
    reportFatalError("split: '" + IV->name() + "' is not a leaf loop");
  if (Factor <= 0)
    reportFatalError(formatStr("split: factor %lld must be positive",
                               static_cast<long long>(Factor)));
  if (Factor > IV->extent())
    Factor = IV->extent(); // Clamp: a factor beyond the extent is one tile.

  int64_t OuterExtent = (IV->extent() + Factor - 1) / Factor;
  bool NeedsGuard = IV->extent() % Factor != 0;
  auto Outer = std::make_shared<IterVarNode>(IV->name() + ".o", OuterExtent,
                                             IV->kind());
  auto Inner =
      std::make_shared<IterVarNode>(IV->name() + ".i", Factor, IV->kind());

  // Replace IV in the leaf list with (outer, inner).
  *It = Outer;
  Leaves.insert(It + 1, Inner);
  Splits.push_back({IV, Outer, Inner, Factor, NeedsGuard});
  return {Outer, Inner};
}

IterVar Schedule::fuse(const IterVar &Outer, const IterVar &Inner) {
  auto OuterIt = std::find(Leaves.begin(), Leaves.end(), Outer);
  if (OuterIt == Leaves.end() || OuterIt + 1 == Leaves.end() ||
      *(OuterIt + 1) != Inner)
    reportFatalError("fuse: '" + Outer->name() + "' and '" + Inner->name() +
                     "' must be adjacent leaf loops");
  if (Outer->kind() != Inner->kind())
    reportFatalError("fuse: cannot fuse a data-parallel loop with a "
                     "reduce loop");

  auto Fused = std::make_shared<IterVarNode>(
      Outer->name() + "." + Inner->name() + ".fused",
      Outer->extent() * Inner->extent(), Outer->kind());
  *OuterIt = Fused;
  Leaves.erase(OuterIt + 1);
  Fuses.push_back({Outer, Inner, Fused});
  return Fused;
}

void Schedule::reorder(const std::vector<IterVar> &Order) {
  // Gather current positions of the listed leaves; the leaves then occupy
  // those same positions in the requested order (TVM semantics).
  std::vector<size_t> Positions;
  for (const IterVar &IV : Order) {
    auto It = std::find(Leaves.begin(), Leaves.end(), IV);
    if (It == Leaves.end())
      reportFatalError("reorder: '" + IV->name() + "' is not a leaf loop");
    Positions.push_back(static_cast<size_t>(It - Leaves.begin()));
  }
  std::vector<size_t> Sorted = Positions;
  std::sort(Sorted.begin(), Sorted.end());
  if (std::adjacent_find(Sorted.begin(), Sorted.end()) != Sorted.end())
    reportFatalError("reorder: duplicate loop in order list");
  for (size_t I = 0; I < Order.size(); ++I)
    Leaves[Sorted[I]] = Order[I];
}

void Schedule::annotate(const IterVar &IV, ForKind K) {
  if (!isLeaf(IV))
    reportFatalError("annotate: '" + IV->name() + "' is not a leaf loop");
  if (K == ForKind::Parallel && IV->isReduce())
    reportFatalError("annotate: reduce loop '" + IV->name() +
                     "' cannot be CPU-parallel");
  Annotations[IV.get()] = K;
}

void Schedule::bind(const IterVar &IV, ForKind GpuKind) {
  if (GpuKind != ForKind::GpuBlockX && GpuKind != ForKind::GpuBlockY &&
      GpuKind != ForKind::GpuThreadX && GpuKind != ForKind::GpuThreadY)
    reportFatalError("bind: expected a GPU thread/block kind");
  if (!isLeaf(IV))
    reportFatalError("bind: '" + IV->name() + "' is not a leaf loop");
  Annotations[IV.get()] = GpuKind;
}

void Schedule::pragma(const IterVar &IV, std::string Key, std::string Value) {
  if (!isLeaf(IV))
    reportFatalError("pragma: '" + IV->name() + "' is not a leaf loop");
  Pragmas[IV.get()].emplace_back(std::move(Key), std::move(Value));
}

ForKind Schedule::annotation(const IterVar &IV) const {
  auto It = Annotations.find(IV.get());
  return It == Annotations.end() ? ForKind::Serial : It->second;
}

std::vector<std::pair<std::string, std::string>>
Schedule::pragmas(const IterVar &IV) const {
  auto It = Pragmas.find(IV.get());
  return It == Pragmas.end()
             ? std::vector<std::pair<std::string, std::string>>{}
             : It->second;
}

/// Resolves the value of every IterVar ever mentioned (leaves and interior
/// nodes of the split/fuse tree) as expressions over leaf variables. Runs a
/// fixpoint because relations may be recorded in any order relative to each
/// other (a split of a fused loop, a fuse of split products, ...).
static VarSubst resolveAllValues(const std::vector<IterVar> &Leaves,
                                 const std::vector<Schedule::SplitRel> &Splits,
                                 const std::vector<Schedule::FuseRel> &Fuses) {
  VarSubst Values;
  for (const IterVar &Leaf : Leaves)
    Values[Leaf.get()] = makeVar(Leaf);

  std::vector<bool> SplitDone(Splits.size(), false);
  std::vector<bool> FuseDone(Fuses.size(), false);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < Splits.size(); ++I) {
      if (SplitDone[I])
        continue;
      const Schedule::SplitRel &R = Splits[I];
      auto OuterIt = Values.find(R.Outer.get());
      auto InnerIt = Values.find(R.Inner.get());
      if (OuterIt == Values.end() || InnerIt == Values.end())
        continue;
      Values[R.Parent.get()] =
          OuterIt->second * makeIntImm(R.Factor) + InnerIt->second;
      SplitDone[I] = true;
      Progress = true;
    }
    for (size_t I = 0; I < Fuses.size(); ++I) {
      if (FuseDone[I])
        continue;
      const Schedule::FuseRel &R = Fuses[I];
      auto FusedIt = Values.find(R.Fused.get());
      if (FusedIt == Values.end())
        continue;
      ExprRef InnerExtent = makeIntImm(R.Inner->extent());
      Values[R.Outer.get()] = FusedIt->second / InnerExtent;
      Values[R.Inner.get()] = FusedIt->second % InnerExtent;
      FuseDone[I] = true;
      Progress = true;
    }
  }
  return Values;
}

VarSubst Schedule::rootBindings() const {
  VarSubst Values = resolveAllValues(Leaves, Splits, Fuses);
  VarSubst Roots;
  for (const IterVar &IV : Op->allAxes()) {
    auto It = Values.find(IV.get());
    assert(It != Values.end() && "unresolved root axis");
    Roots[IV.get()] = It->second;
  }
  return Roots;
}

std::vector<ExprRef> Schedule::residuePredicates() const {
  VarSubst Values = resolveAllValues(Leaves, Splits, Fuses);
  std::vector<ExprRef> Preds;
  for (const SplitRel &R : Splits) {
    if (!R.NeedsGuard)
      continue;
    auto It = Values.find(R.Parent.get());
    assert(It != Values.end() && "unresolved guarded parent");
    // `parent < extent`, encoded as a Pure builtin call; the lowering wraps
    // it in `likely(...)` to mirror TVM's residue guards.
    Preds.push_back(makeCall("lt", CallKind::Pure,
                             {It->second, makeIntImm(R.Parent->extent())},
                             DataType::i32()));
  }
  return Preds;
}
