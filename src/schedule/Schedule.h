//===- schedule/Schedule.h - Loop transformation primitives ---------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor-DSL scheduling: split / fuse / reorder / annotate loops of one
/// ComputeOp without changing its semantics (paper §II.C.2). The Rewriter
/// expresses its loop reorganization with these primitives, and the Tuner
/// explores spaces of them (paper §III.C, Fig. 7).
///
/// A Schedule tracks the evolving list of leaf loops plus the split/fuse
/// relations that reconstruct each root axis value from leaf loop variables
/// at lowering time.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SCHEDULE_SCHEDULE_H
#define UNIT_SCHEDULE_SCHEDULE_H

#include "ir/ComputeOp.h"
#include "ir/ExprUtil.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace unit {

/// Loop annotation carried onto the lowered tensor-IR For node.
enum class ForKind : uint8_t {
  Serial,
  Parallel,   ///< CPU threads over this loop.
  Unrolled,   ///< Fully unrolled for ILP (paper §III.C CPU tuning).
  Vectorized, ///< SIMD fallback (non-tensorized ops).
  GpuBlockX,  ///< CUDA blockIdx.x binding.
  GpuBlockY,  ///< CUDA blockIdx.y binding.
  GpuThreadX, ///< CUDA threadIdx.x binding (split-K segments live here).
  GpuThreadY, ///< CUDA threadIdx.y binding.
};

/// Returns a printable annotation name ("parallel", "unroll", ...).
const char *forKindName(ForKind K);

/// Mutable scheduling state for one ComputeOp.
class Schedule {
public:
  /// One split record: Parent was divided into (Outer, Inner) with
  /// Inner extent == Factor. Imperfect divisions round Outer up and
  /// request a residue guard at lowering.
  struct SplitRel {
    IterVar Parent, Outer, Inner;
    int64_t Factor;
    bool NeedsGuard;
  };

  /// One fuse record: adjacent (Outer, Inner) became Fused.
  struct FuseRel {
    IterVar Outer, Inner, Fused;
  };

private:
  ComputeOpRef Op;
  std::vector<IterVar> Leaves;
  std::vector<SplitRel> Splits;
  std::vector<FuseRel> Fuses;
  std::map<const IterVarNode *, ForKind> Annotations;
  std::map<const IterVarNode *, std::vector<std::pair<std::string, std::string>>>
      Pragmas;

public:
  /// Starts from the default loop nest: data-parallel axes then reduce axes.
  explicit Schedule(ComputeOpRef Op);

  const ComputeOpRef &op() const { return Op; }
  const std::vector<IterVar> &leaves() const { return Leaves; }
  const std::vector<SplitRel> &splits() const { return Splits; }

  /// Splits leaf \p IV by \p Factor; returns (outer, inner). The inner loop
  /// has extent Factor. If Factor does not divide the extent the outer loop
  /// rounds up and lowering guards the body (the `likely` clause whose
  /// branch cost hurts paper workloads #1/#4).
  std::pair<IterVar, IterVar> split(const IterVar &IV, int64_t Factor);

  /// Fuses \p Outer with the immediately following leaf \p Inner.
  IterVar fuse(const IterVar &Outer, const IterVar &Inner);

  /// Reorders the listed leaves into the given order; they occupy the same
  /// set of positions they previously held (TVM semantics). Loops not
  /// listed keep their positions.
  void reorder(const std::vector<IterVar> &Order);

  /// Annotation primitives.
  void parallel(const IterVar &IV) { annotate(IV, ForKind::Parallel); }
  void unroll(const IterVar &IV) { annotate(IV, ForKind::Unrolled); }
  void vectorize(const IterVar &IV) { annotate(IV, ForKind::Vectorized); }
  void bind(const IterVar &IV, ForKind GpuKind);
  void annotate(const IterVar &IV, ForKind K);

  /// Attaches a pragma (e.g. {"tensorize", "<intrinsic name>"}) to a leaf;
  /// lowering wraps the loop in a Pragma node for the Replacer to find.
  void pragma(const IterVar &IV, std::string Key, std::string Value);

  /// The annotation of a leaf (Serial when unset).
  ForKind annotation(const IterVar &IV) const;

  /// Pragmas attached to a leaf (empty when none).
  std::vector<std::pair<std::string, std::string>>
  pragmas(const IterVar &IV) const;

  /// Reconstructs each *root* axis value as an expression over leaf loop
  /// variables (walking split/fuse relations in reverse).
  VarSubst rootBindings() const;

  /// Residue-guard predicates (`root < extent`) for every imperfect split,
  /// already expressed over leaf variables.
  std::vector<ExprRef> residuePredicates() const;

  /// True if \p IV currently is a leaf.
  bool isLeaf(const IterVar &IV) const;
};

} // namespace unit

#endif // UNIT_SCHEDULE_SCHEDULE_H
