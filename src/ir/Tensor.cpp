//===- ir/Tensor.cpp -------------------------------------------------------===//

#include "ir/Tensor.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace unit;

TensorNode::TensorNode(std::string Name, std::vector<int64_t> Shape,
                       DataType DType)
    : Name(std::move(Name)), Shape(std::move(Shape)), DType(DType) {
  assert(DType.isScalar() && "tensor element type must be scalar");
  for ([[maybe_unused]] int64_t D : this->Shape)
    assert(D > 0 && "tensor dimensions must be positive");
}

int64_t TensorNode::numElements() const {
  int64_t N = 1;
  for (int64_t D : Shape)
    N *= D;
  return N;
}

std::vector<int64_t> TensorNode::strides() const {
  std::vector<int64_t> S(Shape.size(), 1);
  for (int I = static_cast<int>(Shape.size()) - 2; I >= 0; --I)
    S[I] = S[I + 1] * Shape[I + 1];
  return S;
}

TensorRef unit::makeTensor(std::string Name, std::vector<int64_t> Shape,
                           DataType DType) {
  return std::make_shared<TensorNode>(std::move(Name), std::move(Shape),
                                      DType);
}
