//===- ir/Tensor.h - Named tensor placeholders ----------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TensorNode is a named, shaped, typed array placeholder. At the DSL level
/// tensors are the operands of ComputeOps; inside a tensorized instruction's
/// semantics program they abstract the instruction's *registers* (paper
/// §III.A), which is why the Inspector insists each instruction tensor binds
/// to exactly one operation tensor.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_TENSOR_H
#define UNIT_IR_TENSOR_H

#include "ir/DataType.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace unit {

/// A named array placeholder with static shape and scalar element type.
class TensorNode {
  std::string Name;
  std::vector<int64_t> Shape;
  DataType DType;

public:
  TensorNode(std::string Name, std::vector<int64_t> Shape, DataType DType);

  const std::string &name() const { return Name; }
  const std::vector<int64_t> &shape() const { return Shape; }
  DataType dtype() const { return DType; }

  unsigned rank() const { return static_cast<unsigned>(Shape.size()); }
  int64_t dim(unsigned I) const { return Shape[I]; }

  /// Total element count.
  int64_t numElements() const;

  /// Row-major element strides (innermost dimension has stride 1).
  std::vector<int64_t> strides() const;
};

using TensorRef = std::shared_ptr<const TensorNode>;

/// Creates a tensor placeholder.
TensorRef makeTensor(std::string Name, std::vector<int64_t> Shape,
                     DataType DType);

} // namespace unit

#endif // UNIT_IR_TENSOR_H
