//===- ir/Printer.cpp ------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

using namespace unit;

namespace {

const char *binaryOpSymbol(ExprNode::Kind K) {
  switch (K) {
  case ExprNode::Kind::Add:
    return "+";
  case ExprNode::Kind::Sub:
    return "-";
  case ExprNode::Kind::Mul:
    return "*";
  case ExprNode::Kind::Div:
    return "/";
  case ExprNode::Kind::Mod:
    return "%";
  case ExprNode::Kind::Min:
    return "min";
  case ExprNode::Kind::Max:
    return "max";
  default:
    unit_unreachable("not a binary opcode");
  }
}

/// Precedence used solely to minimize parentheses in output.
int precedence(ExprNode::Kind K) {
  switch (K) {
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
    return 1;
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod:
    return 2;
  default:
    return 3;
  }
}

std::string print(const ExprRef &E, int ParentPrec);

std::string printList(const std::vector<ExprRef> &Es) {
  std::vector<std::string> Parts;
  Parts.reserve(Es.size());
  for (const ExprRef &I : Es)
    Parts.push_back(print(I, 0));
  return join(Parts, ", ");
}

std::string print(const ExprRef &E, int ParentPrec) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    return std::to_string(cast<IntImmNode>(E)->Value);
  case ExprNode::Kind::FloatImm:
    return formatStr("%g", cast<FloatImmNode>(E)->Value);
  case ExprNode::Kind::Var:
    return cast<VarNode>(E)->IV->name();
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod: {
    const auto *B = cast<BinaryNode>(E);
    int Prec = precedence(E->kind());
    std::string S = print(B->LHS, Prec) + " " + binaryOpSymbol(E->kind()) +
                    " " + print(B->RHS, Prec + 1);
    if (Prec < ParentPrec)
      S = "(" + S + ")";
    return S;
  }
  case ExprNode::Kind::Min:
  case ExprNode::Kind::Max: {
    const auto *B = cast<BinaryNode>(E);
    return std::string(binaryOpSymbol(E->kind())) + "(" + print(B->LHS, 0) +
           ", " + print(B->RHS, 0) + ")";
  }
  case ExprNode::Kind::Cast: {
    const auto *C = cast<CastNode>(E);
    return C->dtype().str() + "(" + print(C->Value, 0) + ")";
  }
  case ExprNode::Kind::Load: {
    const auto *L = cast<LoadNode>(E);
    return L->Buf->name() + "[" + printList(L->Indices) + "]";
  }
  case ExprNode::Kind::Select: {
    const auto *S = cast<SelectNode>(E);
    return "select(" + print(S->Cond, 0) + ", " + print(S->TrueValue, 0) +
           ", " + print(S->FalseValue, 0) + ")";
  }
  case ExprNode::Kind::Ramp: {
    const auto *R = cast<RampNode>(E);
    return formatStr("ramp(%s, %lld, %u)", print(R->Base, 0).c_str(),
                     static_cast<long long>(R->Stride), R->dtype().lanes());
  }
  case ExprNode::Kind::Broadcast: {
    const auto *B = cast<BroadcastNode>(E);
    return formatStr("x%u(%s)", B->Repeat, print(B->Value, 0).c_str());
  }
  case ExprNode::Kind::Concat: {
    const auto *C = cast<ConcatNode>(E);
    return "concat(" + printList(C->Parts) + ")";
  }
  case ExprNode::Kind::Call: {
    const auto *C = cast<CallNode>(E);
    return C->Callee + "(" + printList(C->Args) + ")";
  }
  case ExprNode::Kind::Reduce: {
    const auto *R = cast<ReduceNode>(E);
    const char *Comb = R->RKind == ReduceKind::Sum   ? "sum"
                       : R->RKind == ReduceKind::Max ? "max"
                                                     : "min";
    std::vector<std::string> AxisNames;
    for (const IterVar &A : R->Axes)
      AxisNames.push_back(A->name());
    std::string S = std::string(Comb) + "[" + join(AxisNames, ", ") + "](" +
                    print(R->Source, 0) + ")";
    if (R->Init)
      S = print(R->Init, 1) + " + " + S;
    return S;
  }
  }
  unit_unreachable("unknown expression kind");
}

} // namespace

std::string unit::exprToString(const ExprRef &E) { return print(E, 0); }
