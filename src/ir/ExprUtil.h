//===- ir/ExprUtil.h - Expression analyses and rewrites -------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared expression helpers: structural equality, loop-variable
/// substitution, and collection of variables/loads — used by the Schedule
/// lowering, the Inspector, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_EXPRUTIL_H
#define UNIT_IR_EXPRUTIL_H

#include "ir/Expr.h"

#include <map>
#include <vector>

namespace unit {

/// Structural equality: same shape, kinds, dtypes, immediates; loop
/// variables compare by IterVar identity and tensors by TensorNode identity.
bool structuralEqual(const ExprRef &A, const ExprRef &B);

/// Substitution map keyed by IterVar node identity.
using VarSubst = std::map<const IterVarNode *, ExprRef>;

/// Replaces every VarNode whose IterVar appears in \p Subst.
ExprRef substitute(const ExprRef &E, const VarSubst &Subst);

/// Collects distinct loop variables in first-appearance order.
std::vector<IterVar> collectVars(const ExprRef &E);

/// Collects every Load node (in visit order; duplicates preserved).
std::vector<const LoadNode *> collectLoads(const ExprRef &E);

/// Returns the constant value if \p E is an IntImm.
bool matchConstInt(const ExprRef &E, int64_t *Value);

} // namespace unit

#endif // UNIT_IR_EXPRUTIL_H
