//===- ir/DataType.h - Scalar/vector data types ---------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mixed-precision data types. Tensorized instructions consume low-bitwidth
/// lanes (u8/i8/f16) and accumulate into wider lanes (i32/f32); DataType
/// carries the (kind, bits, lanes) triple used throughout the IR.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_DATATYPE_H
#define UNIT_IR_DATATYPE_H

#include <cstdint>
#include <string>

namespace unit {

/// Scalar type family.
enum class DTypeKind : uint8_t {
  Int,   ///< Signed two's-complement integer.
  UInt,  ///< Unsigned integer.
  Float, ///< IEEE-754 binary float (16/32/64 bits).
};

/// A (kind, bits, lanes) data type. Lanes > 1 denotes a flat vector value;
/// multi-dimensional instruction operands (e.g. the 16x16 fp16 tile of a
/// Tensor Core fragment) are flattened row-major into lanes.
class DataType {
  DTypeKind Kind;
  uint8_t Bits;
  uint16_t Lanes;

public:
  constexpr DataType()
      : Kind(DTypeKind::Int), Bits(32), Lanes(1) {}
  constexpr DataType(DTypeKind Kind, unsigned Bits, unsigned Lanes = 1)
      : Kind(Kind), Bits(static_cast<uint8_t>(Bits)),
        Lanes(static_cast<uint16_t>(Lanes)) {}

  DTypeKind kind() const { return Kind; }
  unsigned bits() const { return Bits; }
  unsigned lanes() const { return Lanes; }

  bool isInt() const { return Kind == DTypeKind::Int; }
  bool isUInt() const { return Kind == DTypeKind::UInt; }
  bool isIntegral() const { return isInt() || isUInt(); }
  bool isFloat() const { return Kind == DTypeKind::Float; }
  bool isScalar() const { return Lanes == 1; }
  bool isVector() const { return Lanes > 1; }

  /// Bytes occupied by one lane.
  unsigned lanesBytes() const { return Bits / 8; }
  /// Total bytes of the whole (possibly vector) value.
  unsigned totalBytes() const { return (Bits / 8) * Lanes; }

  /// Same scalar type with a different lane count.
  DataType withLanes(unsigned NewLanes) const {
    return DataType(Kind, Bits, NewLanes);
  }
  /// The scalar element type.
  DataType scalar() const { return withLanes(1); }
  /// True when scalar kind and bits match (lanes ignored).
  bool sameScalarType(DataType Other) const {
    return Kind == Other.Kind && Bits == Other.Bits;
  }

  bool operator==(DataType Other) const {
    return Kind == Other.Kind && Bits == Other.Bits && Lanes == Other.Lanes;
  }
  bool operator!=(DataType Other) const { return !(*this == Other); }

  /// Renders like "i8", "u8x64", "f16x256".
  std::string str() const;

  // Common shorthands.
  static constexpr DataType i8(unsigned Lanes = 1) {
    return DataType(DTypeKind::Int, 8, Lanes);
  }
  static constexpr DataType u8(unsigned Lanes = 1) {
    return DataType(DTypeKind::UInt, 8, Lanes);
  }
  static constexpr DataType i16(unsigned Lanes = 1) {
    return DataType(DTypeKind::Int, 16, Lanes);
  }
  static constexpr DataType u16(unsigned Lanes = 1) {
    return DataType(DTypeKind::UInt, 16, Lanes);
  }
  static constexpr DataType i32(unsigned Lanes = 1) {
    return DataType(DTypeKind::Int, 32, Lanes);
  }
  static constexpr DataType u32(unsigned Lanes = 1) {
    return DataType(DTypeKind::UInt, 32, Lanes);
  }
  static constexpr DataType i64(unsigned Lanes = 1) {
    return DataType(DTypeKind::Int, 64, Lanes);
  }
  static constexpr DataType f16(unsigned Lanes = 1) {
    return DataType(DTypeKind::Float, 16, Lanes);
  }
  static constexpr DataType f32(unsigned Lanes = 1) {
    return DataType(DTypeKind::Float, 32, Lanes);
  }
  static constexpr DataType f64(unsigned Lanes = 1) {
    return DataType(DTypeKind::Float, 64, Lanes);
  }
};

/// fp16 emulation helpers (round-to-nearest-even), used by the interpreter
/// to reproduce Tensor Core input rounding bit-exactly.
float fp16RoundToNearest(float Value);

} // namespace unit

#endif // UNIT_IR_DATATYPE_H
