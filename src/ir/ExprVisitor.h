//===- ir/ExprVisitor.h - Expression visitors and mutators ----------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive visitor (read-only walk) and mutator (rebuilding walk) over
/// the expression tree. Mutators preserve sharing: an unchanged subtree is
/// returned by reference, not copied.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_EXPRVISITOR_H
#define UNIT_IR_EXPRVISITOR_H

#include "ir/Expr.h"

namespace unit {

/// Read-only recursive expression walk. Override the per-kind hooks; the
/// default implementations recurse into children.
class ExprVisitor {
public:
  virtual ~ExprVisitor();

  /// Dispatches on kind.
  void visit(const ExprRef &E);

  virtual void visitIntImm(const IntImmNode *N);
  virtual void visitFloatImm(const FloatImmNode *N);
  virtual void visitVar(const VarNode *N);
  virtual void visitBinary(const BinaryNode *N);
  virtual void visitCast(const CastNode *N);
  virtual void visitLoad(const LoadNode *N);
  virtual void visitSelect(const SelectNode *N);
  virtual void visitRamp(const RampNode *N);
  virtual void visitBroadcast(const BroadcastNode *N);
  virtual void visitConcat(const ConcatNode *N);
  virtual void visitCall(const CallNode *N);
  virtual void visitReduce(const ReduceNode *N);
};

/// Rebuilding expression walk; override hooks to replace subtrees.
class ExprMutator {
public:
  virtual ~ExprMutator();

  /// Dispatches on kind; returns the (possibly shared) rebuilt node.
  ExprRef mutate(const ExprRef &E);

  virtual ExprRef mutateIntImm(const ExprRef &E, const IntImmNode *N);
  virtual ExprRef mutateFloatImm(const ExprRef &E, const FloatImmNode *N);
  virtual ExprRef mutateVar(const ExprRef &E, const VarNode *N);
  virtual ExprRef mutateBinary(const ExprRef &E, const BinaryNode *N);
  virtual ExprRef mutateCast(const ExprRef &E, const CastNode *N);
  virtual ExprRef mutateLoad(const ExprRef &E, const LoadNode *N);
  virtual ExprRef mutateSelect(const ExprRef &E, const SelectNode *N);
  virtual ExprRef mutateRamp(const ExprRef &E, const RampNode *N);
  virtual ExprRef mutateBroadcast(const ExprRef &E, const BroadcastNode *N);
  virtual ExprRef mutateConcat(const ExprRef &E, const ConcatNode *N);
  virtual ExprRef mutateCall(const ExprRef &E, const CallNode *N);
  virtual ExprRef mutateReduce(const ExprRef &E, const ReduceNode *N);
};

} // namespace unit

#endif // UNIT_IR_EXPRVISITOR_H
