//===- ir/ExprUtil.cpp -----------------------------------------------------===//

#include "ir/ExprUtil.h"

#include "ir/ExprVisitor.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace unit;

bool unit::structuralEqual(const ExprRef &A, const ExprRef &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->kind() != B->kind() || A->dtype() != B->dtype())
    return false;

  switch (A->kind()) {
  case ExprNode::Kind::IntImm:
    return cast<IntImmNode>(A)->Value == cast<IntImmNode>(B)->Value;
  case ExprNode::Kind::FloatImm:
    return cast<FloatImmNode>(A)->Value == cast<FloatImmNode>(B)->Value;
  case ExprNode::Kind::Var:
    return cast<VarNode>(A)->IV == cast<VarNode>(B)->IV;
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod:
  case ExprNode::Kind::Min:
  case ExprNode::Kind::Max: {
    const auto *BA = cast<BinaryNode>(A);
    const auto *BB = cast<BinaryNode>(B);
    return structuralEqual(BA->LHS, BB->LHS) &&
           structuralEqual(BA->RHS, BB->RHS);
  }
  case ExprNode::Kind::Cast:
    return structuralEqual(cast<CastNode>(A)->Value, cast<CastNode>(B)->Value);
  case ExprNode::Kind::Load: {
    const auto *LA = cast<LoadNode>(A);
    const auto *LB = cast<LoadNode>(B);
    if (LA->Buf != LB->Buf || LA->Indices.size() != LB->Indices.size())
      return false;
    for (size_t I = 0; I < LA->Indices.size(); ++I)
      if (!structuralEqual(LA->Indices[I], LB->Indices[I]))
        return false;
    return true;
  }
  case ExprNode::Kind::Select: {
    const auto *SA = cast<SelectNode>(A);
    const auto *SB = cast<SelectNode>(B);
    return structuralEqual(SA->Cond, SB->Cond) &&
           structuralEqual(SA->TrueValue, SB->TrueValue) &&
           structuralEqual(SA->FalseValue, SB->FalseValue);
  }
  case ExprNode::Kind::Ramp: {
    const auto *RA = cast<RampNode>(A);
    const auto *RB = cast<RampNode>(B);
    return RA->Stride == RB->Stride && structuralEqual(RA->Base, RB->Base);
  }
  case ExprNode::Kind::Broadcast: {
    const auto *BA = cast<BroadcastNode>(A);
    const auto *BB = cast<BroadcastNode>(B);
    return BA->Repeat == BB->Repeat && structuralEqual(BA->Value, BB->Value);
  }
  case ExprNode::Kind::Concat: {
    const auto *CA = cast<ConcatNode>(A);
    const auto *CB = cast<ConcatNode>(B);
    if (CA->Parts.size() != CB->Parts.size())
      return false;
    for (size_t I = 0; I < CA->Parts.size(); ++I)
      if (!structuralEqual(CA->Parts[I], CB->Parts[I]))
        return false;
    return true;
  }
  case ExprNode::Kind::Call: {
    const auto *CA = cast<CallNode>(A);
    const auto *CB = cast<CallNode>(B);
    if (CA->Callee != CB->Callee || CA->Args.size() != CB->Args.size())
      return false;
    for (size_t I = 0; I < CA->Args.size(); ++I)
      if (!structuralEqual(CA->Args[I], CB->Args[I]))
        return false;
    return true;
  }
  case ExprNode::Kind::Reduce: {
    const auto *RA = cast<ReduceNode>(A);
    const auto *RB = cast<ReduceNode>(B);
    if (RA->RKind != RB->RKind || RA->Axes != RB->Axes)
      return false;
    if (static_cast<bool>(RA->Init) != static_cast<bool>(RB->Init))
      return false;
    if (RA->Init && !structuralEqual(RA->Init, RB->Init))
      return false;
    return structuralEqual(RA->Source, RB->Source);
  }
  }
  unit_unreachable("unknown expression kind");
}

namespace {

/// Replaces loop variables per a substitution map.
class SubstMutator : public ExprMutator {
  const VarSubst &Subst;

public:
  explicit SubstMutator(const VarSubst &Subst) : Subst(Subst) {}

  ExprRef mutateVar(const ExprRef &E, const VarNode *N) override {
    auto It = Subst.find(N->IV.get());
    return It == Subst.end() ? E : It->second;
  }
};

/// Collects distinct IterVars in appearance order.
class VarCollector : public ExprVisitor {
public:
  std::vector<IterVar> Vars;

  void visitVar(const VarNode *N) override {
    if (std::find(Vars.begin(), Vars.end(), N->IV) == Vars.end())
      Vars.push_back(N->IV);
  }
};

/// Collects loads in visit order.
class LoadCollector : public ExprVisitor {
public:
  std::vector<const LoadNode *> Loads;

  void visitLoad(const LoadNode *N) override {
    Loads.push_back(N);
    ExprVisitor::visitLoad(N);
  }
};

} // namespace

ExprRef unit::substitute(const ExprRef &E, const VarSubst &Subst) {
  SubstMutator M(Subst);
  return M.mutate(E);
}

std::vector<IterVar> unit::collectVars(const ExprRef &E) {
  VarCollector C;
  C.visit(E);
  return std::move(C.Vars);
}

std::vector<const LoadNode *> unit::collectLoads(const ExprRef &E) {
  LoadCollector C;
  C.visit(E);
  return std::move(C.Loads);
}

bool unit::matchConstInt(const ExprRef &E, int64_t *Value) {
  const auto *I = dyn_cast<IntImmNode>(E.get());
  if (!I)
    return false;
  *Value = I->Value;
  return true;
}
