//===- ir/Expr.cpp ---------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace unit;

ExprNode::~ExprNode() = default;

IterVar unit::makeAxis(std::string Name, int64_t Extent) {
  assert(Extent > 0 && "axis extent must be positive");
  return std::make_shared<IterVarNode>(std::move(Name), Extent,
                                       IterKind::DataParallel);
}

IterVar unit::makeReduceAxis(std::string Name, int64_t Extent) {
  assert(Extent > 0 && "axis extent must be positive");
  return std::make_shared<IterVarNode>(std::move(Name), Extent,
                                       IterKind::Reduce);
}

ExprRef unit::makeIntImm(int64_t Value, DataType DType) {
  assert(DType.isIntegral() && "integer immediate needs an integral type");
  return std::make_shared<IntImmNode>(Value, DType);
}

ExprRef unit::makeFloatImm(double Value, DataType DType) {
  assert(DType.isFloat() && "float immediate needs a float type");
  return std::make_shared<FloatImmNode>(Value, DType);
}

ExprRef unit::makeVar(const IterVar &IV) {
  assert(IV && "null IterVar");
  return std::make_shared<VarNode>(IV);
}

[[maybe_unused]] static bool isBinaryOp(ExprNode::Kind Op) {
  return Op >= ExprNode::Kind::Add && Op <= ExprNode::Kind::Max;
}

/// Constant-folds integral Op(L, R).
static int64_t foldInt(ExprNode::Kind Op, int64_t L, int64_t R) {
  switch (Op) {
  case ExprNode::Kind::Add:
    return L + R;
  case ExprNode::Kind::Sub:
    return L - R;
  case ExprNode::Kind::Mul:
    return L * R;
  case ExprNode::Kind::Div:
    assert(R != 0 && "division by zero in constant fold");
    return L / R;
  case ExprNode::Kind::Mod:
    assert(R != 0 && "modulo by zero in constant fold");
    return L % R;
  case ExprNode::Kind::Min:
    return L < R ? L : R;
  case ExprNode::Kind::Max:
    return L > R ? L : R;
  default:
    unit_unreachable("not a binary opcode");
  }
}

ExprRef unit::makeBinary(ExprNode::Kind Op, ExprRef LHS, ExprRef RHS) {
  assert(isBinaryOp(Op) && "makeBinary requires a binary opcode");
  assert(LHS && RHS && "null operand");
  assert(LHS->dtype() == RHS->dtype() &&
         "binary operands must have identical types");

  const auto *LI = dyn_cast<IntImmNode>(LHS);
  const auto *RI = dyn_cast<IntImmNode>(RHS);
  if (LI && RI)
    return makeIntImm(foldInt(Op, LI->Value, RI->Value), LHS->dtype());

  // Identities that keep index expressions readable after substitution.
  if (RI) {
    if (RI->Value == 0 && (Op == ExprNode::Kind::Add || Op == ExprNode::Kind::Sub))
      return LHS;
    if (RI->Value == 1 && (Op == ExprNode::Kind::Mul || Op == ExprNode::Kind::Div))
      return LHS;
    if (RI->Value == 0 && Op == ExprNode::Kind::Mul)
      return RHS;
  }
  if (LI) {
    if (LI->Value == 0 && Op == ExprNode::Kind::Add)
      return RHS;
    if (LI->Value == 1 && Op == ExprNode::Kind::Mul)
      return RHS;
    if (LI->Value == 0 && Op == ExprNode::Kind::Mul)
      return LHS;
  }
  DataType DType = LHS->dtype();
  return std::make_shared<BinaryNode>(Op, std::move(LHS), std::move(RHS),
                                      DType);
}

ExprRef unit::makeCast(DataType DType, ExprRef Value) {
  assert(Value && "null cast operand");
  assert(DType.lanes() == Value->dtype().lanes() &&
         "cast must preserve lane count");
  if (Value->dtype() == DType)
    return Value;
  return std::make_shared<CastNode>(DType, std::move(Value));
}

ExprRef unit::makeLoad(const TensorRef &Buf, std::vector<ExprRef> Indices) {
  assert(Buf && "null tensor");
  assert(Indices.size() == Buf->rank() &&
         "DSL-level load must index every tensor dimension");
  unsigned Lanes = 1;
  for (const ExprRef &I : Indices) {
    assert(I->dtype().isIntegral() && "indices must be integral");
    Lanes *= I->dtype().lanes();
  }
  return std::make_shared<LoadNode>(Buf, std::move(Indices),
                                    Buf->dtype().withLanes(Lanes));
}

ExprRef unit::makeVectorLoad(const TensorRef &Buf, ExprRef FlatIndex) {
  assert(Buf && FlatIndex && "null operand");
  unsigned Lanes = FlatIndex->dtype().lanes();
  std::vector<ExprRef> Indices;
  Indices.push_back(std::move(FlatIndex));
  return std::make_shared<LoadNode>(Buf, std::move(Indices),
                                    Buf->dtype().withLanes(Lanes));
}

ExprRef unit::makeSelect(ExprRef Cond, ExprRef TrueValue, ExprRef FalseValue) {
  assert(Cond && TrueValue && FalseValue && "null operand");
  assert(TrueValue->dtype() == FalseValue->dtype() &&
         "select arms must have identical types");
  return std::make_shared<SelectNode>(std::move(Cond), std::move(TrueValue),
                                      std::move(FalseValue));
}

ExprRef unit::makeRamp(ExprRef Base, int64_t Stride, unsigned Lanes) {
  assert(Base && Base->dtype().isScalar() && Base->dtype().isIntegral() &&
         "ramp base must be a scalar integer");
  assert(Lanes > 1 && "ramp needs at least two lanes");
  return std::make_shared<RampNode>(std::move(Base), Stride, Lanes);
}

ExprRef unit::makeBroadcast(ExprRef Value, unsigned Repeat) {
  assert(Value && "null broadcast operand");
  assert(Repeat > 1 && "broadcast repeat must exceed one");
  return std::make_shared<BroadcastNode>(std::move(Value), Repeat);
}

ExprRef unit::makeConcat(std::vector<ExprRef> Parts) {
  assert(!Parts.empty() && "empty concat");
  if (Parts.size() == 1)
    return Parts.front();
  unsigned Lanes = 0;
  DataType Scalar = Parts.front()->dtype().scalar();
  for (const ExprRef &P : Parts) {
    assert(P->dtype().scalar() == Scalar &&
           "concat parts must share a scalar type");
    Lanes += P->dtype().lanes();
  }
  return std::make_shared<ConcatNode>(std::move(Parts),
                                      Scalar.withLanes(Lanes));
}

ExprRef unit::makeCall(std::string Callee, CallKind CKind,
                       std::vector<ExprRef> Args, DataType DType) {
  return std::make_shared<CallNode>(std::move(Callee), CKind, std::move(Args),
                                    DType);
}

ExprRef unit::makeReduce(ReduceKind RKind, ExprRef Source,
                         std::vector<IterVar> Axes, ExprRef Init) {
  assert(Source && "null reduce source");
  assert(!Axes.empty() && "reduce needs at least one axis");
  for ([[maybe_unused]] const IterVar &A : Axes)
    assert(A->isReduce() && "reduce axes must be annotated Reduce");
  assert((!Init || Init->dtype() == Source->dtype()) &&
         "reduce init type must match the source");
  return std::make_shared<ReduceNode>(RKind, std::move(Source),
                                      std::move(Axes), std::move(Init));
}

ExprRef unit::operator+(ExprRef LHS, ExprRef RHS) {
  return makeBinary(ExprNode::Kind::Add, std::move(LHS), std::move(RHS));
}
ExprRef unit::operator-(ExprRef LHS, ExprRef RHS) {
  return makeBinary(ExprNode::Kind::Sub, std::move(LHS), std::move(RHS));
}
ExprRef unit::operator*(ExprRef LHS, ExprRef RHS) {
  return makeBinary(ExprNode::Kind::Mul, std::move(LHS), std::move(RHS));
}
ExprRef unit::operator/(ExprRef LHS, ExprRef RHS) {
  return makeBinary(ExprNode::Kind::Div, std::move(LHS), std::move(RHS));
}
ExprRef unit::operator%(ExprRef LHS, ExprRef RHS) {
  return makeBinary(ExprNode::Kind::Mod, std::move(LHS), std::move(RHS));
}
