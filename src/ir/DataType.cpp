//===- ir/DataType.cpp -----------------------------------------------------===//

#include "ir/DataType.h"

#include "support/ErrorHandling.h"

#include <cmath>
#include <cstring>

using namespace unit;

std::string DataType::str() const {
  std::string Out;
  switch (Kind) {
  case DTypeKind::Int:
    Out = "i";
    break;
  case DTypeKind::UInt:
    Out = "u";
    break;
  case DTypeKind::Float:
    Out = "f";
    break;
  }
  Out += std::to_string(Bits);
  if (Lanes > 1)
    Out += "x" + std::to_string(Lanes);
  return Out;
}

float unit::fp16RoundToNearest(float Value) {
  // Convert f32 -> IEEE binary16 with round-to-nearest-even, then back.
  // This reproduces the precision loss Tensor Core inputs experience.
  if (std::isnan(Value))
    return Value;
  uint32_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  uint32_t Sign = Bits & 0x80000000u;
  int32_t Exp = static_cast<int32_t>((Bits >> 23) & 0xff) - 127;
  uint32_t Mant = Bits & 0x7fffffu;

  uint16_t Half;
  if (Exp > 15) {
    Half = 0x7c00; // Overflow to infinity.
  } else if (Exp >= -14) {
    // Normal half. Keep 10 mantissa bits, round-to-nearest-even on bit 12.
    uint32_t M = Mant >> 13;
    uint32_t Rem = Mant & 0x1fffu;
    if (Rem > 0x1000u || (Rem == 0x1000u && (M & 1)))
      ++M;
    uint32_t E = static_cast<uint32_t>(Exp + 15);
    if (M == 0x400u) { // Mantissa rounding overflowed into the exponent.
      M = 0;
      ++E;
    }
    Half = static_cast<uint16_t>((E << 10) | M);
    if (E >= 31)
      Half = 0x7c00;
  } else if (Exp >= -25) {
    // Subnormal half: value = M * 2^-24 after rounding. The 24-bit full
    // mantissa represents 1.Mant * 2^Exp, so M = round(FullMant * 2^(Exp+1))
    // i.e. drop (-Exp - 1) bits with round-to-nearest-even.
    uint32_t FullMant = Mant | 0x800000u;
    int DropBits = -Exp - 1;
    uint32_t M = FullMant >> DropBits;
    uint32_t Rem = FullMant & ((1u << DropBits) - 1);
    uint32_t Halfway = 1u << (DropBits - 1);
    if (Rem > Halfway || (Rem == Halfway && (M & 1)))
      ++M;
    Half = static_cast<uint16_t>(M);
  } else {
    Half = 0; // Underflow to zero.
  }
  Half = static_cast<uint16_t>(Half | (Sign >> 16));

  // Convert back to f32.
  uint32_t HSign = (Half & 0x8000u) << 16;
  uint32_t HExp = (Half >> 10) & 0x1f;
  uint32_t HMant = Half & 0x3ffu;
  uint32_t Out;
  if (HExp == 0x1f) {
    Out = HSign | 0x7f800000u | (HMant << 13);
  } else if (HExp == 0) {
    if (HMant == 0) {
      Out = HSign;
    } else {
      // Normalize the subnormal.
      int E = -14;
      while (!(HMant & 0x400u)) {
        HMant <<= 1;
        --E;
      }
      HMant &= 0x3ffu;
      Out = HSign | (static_cast<uint32_t>(E + 127) << 23) | (HMant << 13);
    }
  } else {
    Out = HSign | ((HExp - 15 + 127) << 23) | (HMant << 13);
  }
  float Result;
  std::memcpy(&Result, &Out, sizeof(Result));
  return Result;
}
