//===- ir/ExprVisitor.cpp --------------------------------------------------===//

#include "ir/ExprVisitor.h"

#include "support/ErrorHandling.h"

using namespace unit;

ExprVisitor::~ExprVisitor() = default;
ExprMutator::~ExprMutator() = default;

void ExprVisitor::visit(const ExprRef &E) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    return visitIntImm(cast<IntImmNode>(E));
  case ExprNode::Kind::FloatImm:
    return visitFloatImm(cast<FloatImmNode>(E));
  case ExprNode::Kind::Var:
    return visitVar(cast<VarNode>(E));
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod:
  case ExprNode::Kind::Min:
  case ExprNode::Kind::Max:
    return visitBinary(cast<BinaryNode>(E));
  case ExprNode::Kind::Cast:
    return visitCast(cast<CastNode>(E));
  case ExprNode::Kind::Load:
    return visitLoad(cast<LoadNode>(E));
  case ExprNode::Kind::Select:
    return visitSelect(cast<SelectNode>(E));
  case ExprNode::Kind::Ramp:
    return visitRamp(cast<RampNode>(E));
  case ExprNode::Kind::Broadcast:
    return visitBroadcast(cast<BroadcastNode>(E));
  case ExprNode::Kind::Concat:
    return visitConcat(cast<ConcatNode>(E));
  case ExprNode::Kind::Call:
    return visitCall(cast<CallNode>(E));
  case ExprNode::Kind::Reduce:
    return visitReduce(cast<ReduceNode>(E));
  }
  unit_unreachable("unknown expression kind");
}

void ExprVisitor::visitIntImm(const IntImmNode *) {}
void ExprVisitor::visitFloatImm(const FloatImmNode *) {}
void ExprVisitor::visitVar(const VarNode *) {}

void ExprVisitor::visitBinary(const BinaryNode *N) {
  visit(N->LHS);
  visit(N->RHS);
}

void ExprVisitor::visitCast(const CastNode *N) { visit(N->Value); }

void ExprVisitor::visitLoad(const LoadNode *N) {
  for (const ExprRef &I : N->Indices)
    visit(I);
}

void ExprVisitor::visitSelect(const SelectNode *N) {
  visit(N->Cond);
  visit(N->TrueValue);
  visit(N->FalseValue);
}

void ExprVisitor::visitRamp(const RampNode *N) { visit(N->Base); }
void ExprVisitor::visitBroadcast(const BroadcastNode *N) { visit(N->Value); }

void ExprVisitor::visitConcat(const ConcatNode *N) {
  for (const ExprRef &P : N->Parts)
    visit(P);
}

void ExprVisitor::visitCall(const CallNode *N) {
  for (const ExprRef &A : N->Args)
    visit(A);
}

void ExprVisitor::visitReduce(const ReduceNode *N) {
  visit(N->Source);
  if (N->Init)
    visit(N->Init);
}

ExprRef ExprMutator::mutate(const ExprRef &E) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm:
    return mutateIntImm(E, cast<IntImmNode>(E));
  case ExprNode::Kind::FloatImm:
    return mutateFloatImm(E, cast<FloatImmNode>(E));
  case ExprNode::Kind::Var:
    return mutateVar(E, cast<VarNode>(E));
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub:
  case ExprNode::Kind::Mul:
  case ExprNode::Kind::Div:
  case ExprNode::Kind::Mod:
  case ExprNode::Kind::Min:
  case ExprNode::Kind::Max:
    return mutateBinary(E, cast<BinaryNode>(E));
  case ExprNode::Kind::Cast:
    return mutateCast(E, cast<CastNode>(E));
  case ExprNode::Kind::Load:
    return mutateLoad(E, cast<LoadNode>(E));
  case ExprNode::Kind::Select:
    return mutateSelect(E, cast<SelectNode>(E));
  case ExprNode::Kind::Ramp:
    return mutateRamp(E, cast<RampNode>(E));
  case ExprNode::Kind::Broadcast:
    return mutateBroadcast(E, cast<BroadcastNode>(E));
  case ExprNode::Kind::Concat:
    return mutateConcat(E, cast<ConcatNode>(E));
  case ExprNode::Kind::Call:
    return mutateCall(E, cast<CallNode>(E));
  case ExprNode::Kind::Reduce:
    return mutateReduce(E, cast<ReduceNode>(E));
  }
  unit_unreachable("unknown expression kind");
}

ExprRef ExprMutator::mutateIntImm(const ExprRef &E, const IntImmNode *) {
  return E;
}
ExprRef ExprMutator::mutateFloatImm(const ExprRef &E, const FloatImmNode *) {
  return E;
}
ExprRef ExprMutator::mutateVar(const ExprRef &E, const VarNode *) { return E; }

ExprRef ExprMutator::mutateBinary(const ExprRef &E, const BinaryNode *N) {
  ExprRef LHS = mutate(N->LHS);
  ExprRef RHS = mutate(N->RHS);
  if (LHS == N->LHS && RHS == N->RHS)
    return E;
  return makeBinary(N->kind(), std::move(LHS), std::move(RHS));
}

ExprRef ExprMutator::mutateCast(const ExprRef &E, const CastNode *N) {
  ExprRef Value = mutate(N->Value);
  if (Value == N->Value)
    return E;
  return makeCast(N->dtype(), std::move(Value));
}

ExprRef ExprMutator::mutateLoad(const ExprRef &E, const LoadNode *N) {
  std::vector<ExprRef> Indices;
  Indices.reserve(N->Indices.size());
  bool Changed = false;
  for (const ExprRef &I : N->Indices) {
    Indices.push_back(mutate(I));
    Changed |= Indices.back() != I;
  }
  if (!Changed)
    return E;
  unsigned Lanes = 1;
  for (const ExprRef &I : Indices)
    Lanes *= I->dtype().lanes();
  return std::make_shared<LoadNode>(N->Buf, std::move(Indices),
                                    N->Buf->dtype().withLanes(Lanes));
}

ExprRef ExprMutator::mutateSelect(const ExprRef &E, const SelectNode *N) {
  ExprRef Cond = mutate(N->Cond);
  ExprRef TrueValue = mutate(N->TrueValue);
  ExprRef FalseValue = mutate(N->FalseValue);
  if (Cond == N->Cond && TrueValue == N->TrueValue &&
      FalseValue == N->FalseValue)
    return E;
  return makeSelect(std::move(Cond), std::move(TrueValue),
                    std::move(FalseValue));
}

ExprRef ExprMutator::mutateRamp(const ExprRef &E, const RampNode *N) {
  ExprRef Base = mutate(N->Base);
  if (Base == N->Base)
    return E;
  return makeRamp(std::move(Base), N->Stride, N->dtype().lanes());
}

ExprRef ExprMutator::mutateBroadcast(const ExprRef &E,
                                     const BroadcastNode *N) {
  ExprRef Value = mutate(N->Value);
  if (Value == N->Value)
    return E;
  return makeBroadcast(std::move(Value), N->Repeat);
}

ExprRef ExprMutator::mutateConcat(const ExprRef &E, const ConcatNode *N) {
  std::vector<ExprRef> Parts;
  Parts.reserve(N->Parts.size());
  bool Changed = false;
  for (const ExprRef &P : N->Parts) {
    Parts.push_back(mutate(P));
    Changed |= Parts.back() != P;
  }
  if (!Changed)
    return E;
  return makeConcat(std::move(Parts));
}

ExprRef ExprMutator::mutateCall(const ExprRef &E, const CallNode *N) {
  std::vector<ExprRef> Args;
  Args.reserve(N->Args.size());
  bool Changed = false;
  for (const ExprRef &A : N->Args) {
    Args.push_back(mutate(A));
    Changed |= Args.back() != A;
  }
  if (!Changed)
    return E;
  return makeCall(N->Callee, N->CKind, std::move(Args), N->dtype());
}

ExprRef ExprMutator::mutateReduce(const ExprRef &E, const ReduceNode *N) {
  ExprRef Source = mutate(N->Source);
  ExprRef Init = N->Init ? mutate(N->Init) : nullptr;
  if (Source == N->Source && Init == N->Init)
    return E;
  return makeReduce(N->RKind, std::move(Source), N->Axes, std::move(Init));
}
