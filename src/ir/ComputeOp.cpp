//===- ir/ComputeOp.cpp ----------------------------------------------------===//

#include "ir/ComputeOp.h"

#include "ir/ExprUtil.h"
#include "ir/ExprVisitor.h"
#include "ir/Printer.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace unit;

ComputeOpRef ComputeOp::create(std::string Name, TensorRef Output,
                               std::vector<IterVar> Axes, ExprRef Body,
                               bool InPlaceUpdate) {
  if (!Output || !Body)
    reportFatalError("ComputeOp '" + Name + "': null output or body");
  if (Axes.size() != Output->rank())
    reportFatalError("ComputeOp '" + Name +
                     "': one data-parallel axis per output dimension "
                     "required");
  for (size_t I = 0; I < Axes.size(); ++I) {
    if (Axes[I]->isReduce())
      reportFatalError("ComputeOp '" + Name +
                       "': output axes must be data-parallel");
    if (Axes[I]->extent() != Output->dim(static_cast<unsigned>(I)))
      reportFatalError(formatStr(
          "ComputeOp '%s': axis '%s' extent %lld != output dim %lld",
          Name.c_str(), Axes[I]->name().c_str(),
          static_cast<long long>(Axes[I]->extent()),
          static_cast<long long>(Output->dim(static_cast<unsigned>(I)))));
  }
  if (!Body->dtype().isScalar() ||
      !Body->dtype().sameScalarType(Output->dtype()))
    reportFatalError("ComputeOp '" + Name +
                     "': body type " + Body->dtype().str() +
                     " does not match output element type " +
                     Output->dtype().str());

  auto Op = std::shared_ptr<ComputeOp>(new ComputeOp());
  Op->Name = std::move(Name);
  Op->Output = std::move(Output);
  Op->Axes = std::move(Axes);
  Op->Body = std::move(Body);
  Op->InPlaceUpdate = InPlaceUpdate;

  if (const auto *R = dyn_cast<ReduceNode>(Op->Body.get()))
    Op->ReduceAxes = R->Axes;

  // Every referenced variable must be a declared axis.
  std::vector<IterVar> Used = collectVars(Op->Body);
  for (const IterVar &IV : Used) {
    bool Known =
        std::find(Op->Axes.begin(), Op->Axes.end(), IV) != Op->Axes.end() ||
        std::find(Op->ReduceAxes.begin(), Op->ReduceAxes.end(), IV) !=
            Op->ReduceAxes.end();
    if (!Known)
      reportFatalError("ComputeOp '" + Op->Name + "': loop variable '" +
                       IV->name() + "' is not a declared axis");
  }

  // Reduce must be the root only.
  struct NestedReduceCheck : ExprVisitor {
    bool Root = true;
    void visitReduce(const ReduceNode *N) override {
      if (!Root)
        reportFatalError("ComputeOp: Reduce only allowed at the body root");
      Root = false;
      ExprVisitor::visitReduce(N);
    }
  } Check;
  Check.visit(Op->Body);

  // Collect distinct input tensors.
  for (const LoadNode *L : collectLoads(Op->Body)) {
    if (L->Buf == Op->Output && Op->InPlaceUpdate)
      continue; // The in-place accumulator is not an extra input.
    if (std::find(Op->Inputs.begin(), Op->Inputs.end(), L->Buf) ==
        Op->Inputs.end())
      Op->Inputs.push_back(L->Buf);
  }
  return Op;
}

const ReduceNode *ComputeOp::reduceRoot() const {
  return dyn_cast<ReduceNode>(Body.get());
}

std::vector<IterVar> ComputeOp::allAxes() const {
  std::vector<IterVar> All = Axes;
  All.insert(All.end(), ReduceAxes.begin(), ReduceAxes.end());
  return All;
}

std::string ComputeOp::str() const {
  std::string Out = "compute " + Name + ":\n";
  for (const IterVar &IV : Axes)
    Out += formatStr("  axis %s : [0, %lld)\n", IV->name().c_str(),
                     static_cast<long long>(IV->extent()));
  for (const IterVar &IV : ReduceAxes)
    Out += formatStr("  reduce_axis %s : [0, %lld)\n", IV->name().c_str(),
                     static_cast<long long>(IV->extent()));
  std::vector<std::string> Idx;
  for (const IterVar &IV : Axes)
    Idx.push_back(IV->name());
  Out += "  " + Output->name() + "[" + join(Idx, ", ") + "] " +
         (InPlaceUpdate ? "+= " : "= ") + exprToString(Body) + "\n";
  return Out;
}
