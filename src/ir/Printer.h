//===- ir/Printer.h - Expression pretty-printing ---------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions as compact text; used for diagnostics, golden tests,
/// and the stage-by-stage dumps of the example binaries.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_PRINTER_H
#define UNIT_IR_PRINTER_H

#include "ir/Expr.h"

#include <string>

namespace unit {

/// Renders \p E like "c[x, y, k] + i32(a[x + r, y + s, rc]) * i32(b[...])".
std::string exprToString(const ExprRef &E);

} // namespace unit

#endif // UNIT_IR_PRINTER_H
