//===- ir/ComputeOp.h - Tensor operation programs --------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ComputeOp is the tensor Op data structure of paper §II.C.2: the
/// declared tensors, loop variables, and expression of one tensor
/// operation. Both deep-learning operators (conv, dense) *and* the
/// semantics of tensorized instructions (paper Fig. 4) are ComputeOps —
/// that shared abstraction is what makes the Inspector's analysis uniform.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_COMPUTEOP_H
#define UNIT_IR_COMPUTEOP_H

#include "ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace unit {

class ComputeOp;
using ComputeOpRef = std::shared_ptr<const ComputeOp>;

/// A single tensor operation: `Output[Axes...] = Body`, where Body may be
/// a Reduce over additional reduce axes.
class ComputeOp {
  std::string Name;
  TensorRef Output;
  std::vector<IterVar> Axes;       ///< Data-parallel axes, one per output dim.
  std::vector<IterVar> ReduceAxes; ///< From the Reduce root (if any).
  ExprRef Body;
  bool InPlaceUpdate; ///< Accumulator register must alias the output (+=).
  std::vector<TensorRef> Inputs; ///< Distinct load sources, appearance order.

  ComputeOp() = default;

public:
  /// Builds and validates a ComputeOp.
  ///
  /// Checks: one axis per output dimension with matching extents; the body
  /// dtype matches the output element type; every loop variable referenced
  /// belongs to Axes or to the Reduce's axes; Reduce appears only at the
  /// root. Fatal-errors on violation (these are user programs).
  ///
  /// \param InPlaceUpdate marks `+=` semantics (Tensor Core, paper Fig. 4c):
  /// the accumulator register is the output register, so the Inspector must
  /// bind the instruction's accumulator to the operation's output buffer.
  static ComputeOpRef create(std::string Name, TensorRef Output,
                             std::vector<IterVar> Axes, ExprRef Body,
                             bool InPlaceUpdate = false);

  const std::string &name() const { return Name; }
  const TensorRef &output() const { return Output; }
  const std::vector<IterVar> &axes() const { return Axes; }
  const std::vector<IterVar> &reduceAxes() const { return ReduceAxes; }
  const ExprRef &body() const { return Body; }
  bool isInPlaceUpdate() const { return InPlaceUpdate; }
  const std::vector<TensorRef> &inputs() const { return Inputs; }

  /// The Reduce root, or null for pure elementwise ops.
  const ReduceNode *reduceRoot() const;

  /// All axes: data-parallel then reduce.
  std::vector<IterVar> allAxes() const;

  /// Human-readable multi-line rendering.
  std::string str() const;
};

} // namespace unit

#endif // UNIT_IR_COMPUTEOP_H
