//===- ir/Expr.h - Tensor DSL expression tree ------------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable expression nodes for the tensor DSL and the tensor IR. The
/// same node set serves both levels (paper §II.C): at the DSL level Load
/// nodes carry multi-dimensional indices; after lowering to tensor IR all
/// accesses are flattened to a single (possibly vector) index expression.
///
/// Casting uses the LLVM isa/cast/dyn_cast idiom keyed on ExprNode::Kind.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_IR_EXPR_H
#define UNIT_IR_EXPR_H

#include "ir/Tensor.h"
#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace unit {

class ExprNode;
using ExprRef = std::shared_ptr<const ExprNode>;

/// Loop axis annotation (paper Fig. 4: `loop_axis` vs `reduce_axis`).
enum class IterKind : uint8_t {
  DataParallel, ///< Iterations are independent.
  Reduce,       ///< Iterations accumulate into the same output element.
};

/// A loop axis: name, trip count, and data-parallel/reduce annotation.
/// Identity is by node pointer; schedules create fresh IterVars when
/// splitting or fusing loops.
class IterVarNode {
  std::string Name;
  int64_t Extent;
  IterKind Kind;

public:
  IterVarNode(std::string Name, int64_t Extent, IterKind Kind)
      : Name(std::move(Name)), Extent(Extent), Kind(Kind) {}

  const std::string &name() const { return Name; }
  int64_t extent() const { return Extent; }
  IterKind kind() const { return Kind; }
  bool isReduce() const { return Kind == IterKind::Reduce; }
};

using IterVar = std::shared_ptr<const IterVarNode>;

/// Creates a data-parallel loop axis.
IterVar makeAxis(std::string Name, int64_t Extent);
/// Creates a reduction loop axis.
IterVar makeReduceAxis(std::string Name, int64_t Extent);

//===----------------------------------------------------------------------===//
// Expression nodes
//===----------------------------------------------------------------------===//

/// Base of all expression nodes.
class ExprNode {
public:
  enum class Kind : uint8_t {
    IntImm,
    FloatImm,
    Var,
    // Binary arithmetic (kept contiguous; see BinaryNode::classof).
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    // End of binary arithmetic.
    Cast,
    Load,
    Select,
    Ramp,
    Broadcast,
    Concat,
    Call,
    Reduce,
  };

private:
  const Kind K;
  const DataType DType;

protected:
  ExprNode(Kind K, DataType DType) : K(K), DType(DType) {}

public:
  virtual ~ExprNode();

  Kind kind() const { return K; }
  DataType dtype() const { return DType; }
};

/// Integer immediate (also used for unsigned via dtype).
class IntImmNode : public ExprNode {
public:
  const int64_t Value;

  IntImmNode(int64_t Value, DataType DType)
      : ExprNode(Kind::IntImm, DType), Value(Value) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::IntImm; }
};

/// Floating-point immediate.
class FloatImmNode : public ExprNode {
public:
  const double Value;

  FloatImmNode(double Value, DataType DType)
      : ExprNode(Kind::FloatImm, DType), Value(Value) {}

  static bool classof(const ExprNode *E) {
    return E->kind() == Kind::FloatImm;
  }
};

/// Reference to a loop axis. Loop variables are i32.
class VarNode : public ExprNode {
public:
  const IterVar IV;

  explicit VarNode(IterVar IV)
      : ExprNode(Kind::Var, DataType::i32()), IV(std::move(IV)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Var; }
};

/// Binary arithmetic. A single node class covers Add..Max; `kind()` is the
/// opcode, which is what the Inspector's isomorphism check compares.
class BinaryNode : public ExprNode {
public:
  const ExprRef LHS, RHS;

  BinaryNode(Kind Op, ExprRef LHS, ExprRef RHS, DataType DType)
      : ExprNode(Op, DType), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  static bool classof(const ExprNode *E) {
    return E->kind() >= Kind::Add && E->kind() <= Kind::Max;
  }
};

/// Data type conversion. Lane count is preserved.
class CastNode : public ExprNode {
public:
  const ExprRef Value;

  CastNode(DataType DType, ExprRef Value)
      : ExprNode(Kind::Cast, DType), Value(std::move(Value)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Cast; }
};

/// Tensor element (or vector) read.
///
/// DSL level: `Indices.size() == tensor rank`, each index scalar.
/// Tensor IR level: `Indices.size() == 1`, a flattened element index whose
/// lane count equals the load's lane count.
class LoadNode : public ExprNode {
public:
  const TensorRef Buf;
  const std::vector<ExprRef> Indices;

  LoadNode(TensorRef Buf, std::vector<ExprRef> Indices, DataType DType)
      : ExprNode(Kind::Load, DType), Buf(std::move(Buf)),
        Indices(std::move(Indices)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Load; }
};

/// Ternary select (used for residue guards' masked values).
class SelectNode : public ExprNode {
public:
  const ExprRef Cond, TrueValue, FalseValue;

  SelectNode(ExprRef Cond, ExprRef TrueValue, ExprRef FalseValue)
      : ExprNode(Kind::Select, TrueValue->dtype()), Cond(std::move(Cond)),
        TrueValue(std::move(TrueValue)), FalseValue(std::move(FalseValue)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Select; }
};

/// Affine vector index: Base + [0, Stride, 2*Stride, ...] with `lanes()`
/// entries. Produces a vector i32.
class RampNode : public ExprNode {
public:
  const ExprRef Base;
  const int64_t Stride;

  RampNode(ExprRef Base, int64_t Stride, unsigned Lanes)
      : ExprNode(Kind::Ramp, DataType::i32(Lanes)), Base(std::move(Base)),
        Stride(Stride) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Ramp; }
};

/// Tile-repeat broadcast: the value vector repeated `Repeat` times
/// ([v0..vn v0..vn ...]). With a scalar operand this is the conventional
/// SIMD broadcast. This is the "broadcast along ki by 16" of paper Fig. 5.
class BroadcastNode : public ExprNode {
public:
  const ExprRef Value;
  const unsigned Repeat;

  BroadcastNode(ExprRef Value, unsigned Repeat)
      : ExprNode(Kind::Broadcast,
                 Value->dtype().withLanes(Value->dtype().lanes() * Repeat)),
        Value(std::move(Value)), Repeat(Repeat) {}

  static bool classof(const ExprNode *E) {
    return E->kind() == Kind::Broadcast;
  }
};

/// Lane concatenation of same-scalar-type vectors — the "unrolled and
/// concatenated along ki" operand rule of paper Fig. 5.
class ConcatNode : public ExprNode {
public:
  const std::vector<ExprRef> Parts;

  ConcatNode(std::vector<ExprRef> Parts, DataType DType)
      : ExprNode(Kind::Concat, DType), Parts(std::move(Parts)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Concat; }
};

/// Call classification.
enum class CallKind : uint8_t {
  Pure,      ///< Side-effect-free builtin (e.g. "likely").
  Tensorized ///< A tensorized hardware instruction; name keys the registry.
};

/// Builtin or tensorized-instruction call.
class CallNode : public ExprNode {
public:
  const std::string Callee;
  const CallKind CKind;
  const std::vector<ExprRef> Args;

  CallNode(std::string Callee, CallKind CKind, std::vector<ExprRef> Args,
           DataType DType)
      : ExprNode(Kind::Call, DType), Callee(std::move(Callee)), CKind(CKind),
        Args(std::move(Args)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Call; }
};

/// Reduction combiner.
enum class ReduceKind : uint8_t { Sum, Max, Min };

/// Reduction over one or more reduce axes; only valid at the root of a
/// ComputeOp body. `Init` is the accumulator initializer: null means the
/// combiner identity (0 for Sum), an expression means "accumulate on top of
/// this" (the `c[i] +` of VNNI's semantics, paper Fig. 4a).
class ReduceNode : public ExprNode {
public:
  const ReduceKind RKind;
  const ExprRef Source;
  const std::vector<IterVar> Axes;
  const ExprRef Init; ///< May be null.

  ReduceNode(ReduceKind RKind, ExprRef Source, std::vector<IterVar> Axes,
             ExprRef Init)
      : ExprNode(Kind::Reduce, Source->dtype()), RKind(RKind),
        Source(std::move(Source)), Axes(std::move(Axes)),
        Init(std::move(Init)) {}

  static bool classof(const ExprNode *E) { return E->kind() == Kind::Reduce; }
};

//===----------------------------------------------------------------------===//
// Factory helpers
//===----------------------------------------------------------------------===//

ExprRef makeIntImm(int64_t Value, DataType DType = DataType::i32());
ExprRef makeFloatImm(double Value, DataType DType = DataType::f32());
ExprRef makeVar(const IterVar &IV);
/// Binary op with light constant folding and algebraic identities
/// (x+0, x*1, x*0, const@const); keeps index expressions tidy.
ExprRef makeBinary(ExprNode::Kind Op, ExprRef LHS, ExprRef RHS);
ExprRef makeCast(DataType DType, ExprRef Value);
ExprRef makeLoad(const TensorRef &Buf, std::vector<ExprRef> Indices);
/// Vector load with explicit result lanes (tensor IR level, flat index).
ExprRef makeVectorLoad(const TensorRef &Buf, ExprRef FlatIndex);
ExprRef makeSelect(ExprRef Cond, ExprRef TrueValue, ExprRef FalseValue);
ExprRef makeRamp(ExprRef Base, int64_t Stride, unsigned Lanes);
ExprRef makeBroadcast(ExprRef Value, unsigned Repeat);
ExprRef makeConcat(std::vector<ExprRef> Parts);
ExprRef makeCall(std::string Callee, CallKind CKind, std::vector<ExprRef> Args,
                 DataType DType);
ExprRef makeReduce(ReduceKind RKind, ExprRef Source, std::vector<IterVar> Axes,
                   ExprRef Init = nullptr);

// Operator sugar for writing DSL programs in tests/examples.
ExprRef operator+(ExprRef LHS, ExprRef RHS);
ExprRef operator-(ExprRef LHS, ExprRef RHS);
ExprRef operator*(ExprRef LHS, ExprRef RHS);
ExprRef operator/(ExprRef LHS, ExprRef RHS);
ExprRef operator%(ExprRef LHS, ExprRef RHS);

} // namespace unit

#endif // UNIT_IR_EXPR_H
