//===- core/Pipeline.h - UNIT's end-to-end kernel pipeline ----------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public facade over Inspector -> Rewriter -> Replacer: give it a
/// tensor operation and an instruction (or target platform), get back
/// verified tensor IR with the instruction injected. A tuning hook lets
/// callers (the Tuner, examples) reorganize the outer loops between the
/// loop rewrite and lowering — the paper's §III.C.3 stage.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_PIPELINE_H
#define UNIT_CORE_PIPELINE_H

#include "core/Replacer.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace unit {

/// A compiled kernel: the final tensor IR plus (when tensorized) the plan
/// that produced it.
struct CompiledKernel {
  ComputeOpRef Op;
  std::optional<TensorizePlan> Plan; ///< Empty: SIMD fallback, no intrinsic.
  StmtRef TIR;
};

/// Callback that refines \p Plan's schedule (outer loops only) before
/// lowering.
using TuneHook = std::function<void(TensorizePlan &)>;

/// Lowers \p Plan's schedule and injects the instruction; verifies the
/// result. Call repeatedly as the schedule evolves during tuning.
StmtRef lowerPlan(const TensorizePlan &Plan);

/// Full pipeline against one specific instruction. Returns std::nullopt
/// when the Inspector rejects the pair.
std::optional<CompiledKernel> compileWithIntrinsic(const ComputeOpRef &Op,
                                                   const TensorIntrinsicRef &Intr,
                                                   const TuneHook &Tune = {});

/// Full pipeline against an explicit instruction list: tries each in order
/// and uses the first applicable one. Falls back to a plain (vectorizable)
/// schedule when nothing matches — mobilenet's depthwise convolutions take
/// this path. The runtime's TargetBackends call this with their own
/// intrinsic list, keeping target dispatch in one place
/// (runtime/TargetRegistry.h).
CompiledKernel
compileForIntrinsics(const ComputeOpRef &Op,
                     const std::vector<TensorIntrinsicRef> &Intrinsics,
                     const TuneHook &Tune = {});

/// Convenience overload: the registered instructions of target id
/// \p Target, resolved through the TargetRegistry (defined in
/// runtime/Workload.cpp — the registry sits above this layer; resolving
/// there means a spec-only target's instructions are in play no matter
/// which registry a process touches first). The runtime's unified
/// entry, compileWorkload (runtime/Workload.h), routes every workload
/// kind — conv2d / conv3d / dense-as-1x1 / raw op — through this same
/// pipeline; prefer it when compiling anything other than an
/// already-built operation.
CompiledKernel compileForTarget(const ComputeOpRef &Op,
                                const std::string &Target,
                                const TuneHook &Tune = {});

} // namespace unit

#endif // UNIT_CORE_PIPELINE_H
