//===- core/Rewriter.h - Loop reorganization (paper §III.C.1) -------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Given an Inspector match, tiles each mapped operation loop by the
/// corresponding instruction loop's trip count, sinks the tile-inner loops
/// to the innermost positions in instruction order, and annotates the
/// region with the `tensorize` pragma (paper Fig. 5c). The remaining outer
/// loops stay available for the Tuner.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_REWRITER_H
#define UNIT_CORE_REWRITER_H

#include "core/Inspector.h"
#include "schedule/Schedule.h"

#include <map>
#include <memory>

namespace unit {

/// A reorganized schedule poised for instruction replacement.
struct TensorizePlan {
  std::shared_ptr<Schedule> Sched; ///< Shared so the Tuner can keep refining.
  MatchResult Match;

  /// Tile-inner loop per instruction axis (these form the pragma region).
  std::map<const IterVarNode *, IterVar> InnerVarOf;
  /// Tile-outer loop per mapped operation axis.
  std::map<const IterVarNode *, IterVar> OuterVarOf;

  /// Outer loops in leaf order, split by annotation kind.
  std::vector<IterVar> OuterDataParallel;
  std::vector<IterVar> OuterReduce;
  /// The tensorized inner loops, instruction axis order (outermost first).
  std::vector<IterVar> InnerLoops;
};

/// Performs the loop reorganization for \p Match on a fresh schedule of
/// \p Op. The resulting plan's schedule has leaf order
/// [outer data-parallel..., outer reduce..., inner (instruction order)...]
/// with the `tensorize` pragma on the outermost inner loop.
TensorizePlan reorganizeLoops(const ComputeOpRef &Op,
                              const MatchResult &Match);

} // namespace unit

#endif // UNIT_CORE_REWRITER_H
