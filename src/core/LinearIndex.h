//===- core/LinearIndex.h - Affine index analysis --------------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decomposes an index expression into `Base + sum(Coeff_v * v)` over a
/// chosen set of target loop variables, leaving everything else symbolic in
/// Base. The Inspector uses it to read access strides, and the Replacer
/// uses it to derive each operand's vectorize/broadcast/unroll coefficients
/// (the "loop variable ... and their coefficients in the index expression
/// are exposed" interface of paper §III.C.2).
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_LINEARINDEX_H
#define UNIT_CORE_LINEARINDEX_H

#include "ir/Expr.h"

#include <map>
#include <set>

namespace unit {

/// Result of affine decomposition over target variables.
struct LinearIndex {
  bool Valid = false;
  ExprRef Base; ///< Expression free of every target variable.
  std::map<const IterVarNode *, int64_t> Coeffs; ///< Per-target coefficients.

  /// Coefficient of \p IV (0 when absent).
  int64_t coeffOf(const IterVarNode *IV) const {
    auto It = Coeffs.find(IV);
    return It == Coeffs.end() ? 0 : It->second;
  }
  bool dependsOn(const IterVarNode *IV) const { return coeffOf(IV) != 0; }
};

/// Decomposes \p E as Base + sum(Coeff_v * v) for v in \p Targets.
/// Returns Valid=false when \p E is not affine in the targets (a target
/// multiplied by a non-constant, or inside a division/modulo).
LinearIndex analyzeLinear(const ExprRef &E,
                          const std::set<const IterVarNode *> &Targets);

} // namespace unit

#endif // UNIT_CORE_LINEARINDEX_H
