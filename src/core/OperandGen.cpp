//===- core/OperandGen.cpp -------------------------------------------------===//

#include "core/OperandGen.h"

#include "core/LinearIndex.h"
#include "ir/ExprUtil.h"
#include "support/ErrorHandling.h"
#include "tir/Lower.h"

#include <algorithm>
#include <cassert>

using namespace unit;

namespace {

/// One instruction axis as seen by one register's lane layout.
struct LaneAxis {
  IterVar InstrAxis;
  int64_t LaneCoeff; ///< Stride in the register's lane order.
  int64_t OpStride;  ///< Stride in the operation's flat buffer index.
  bool OpDepends;    ///< Whether the operation access varies along it.
};

/// Recursively builds the flat index vector for one register, walking lane
/// axes from slowest- to fastest-varying (\p Axes is sorted by LaneCoeff
/// descending). Returns an i32 vector expression whose lane count is the
/// product of the axis extents.
ExprRef buildIndexVector(
    const std::vector<LaneAxis> &Axes, size_t Depth, ExprRef Base,
    std::vector<std::pair<IterVar, OperandAxisRole>> *Roles) {
  if (Depth == Axes.size())
    return Base;
  const LaneAxis &Axis = Axes[Depth];
  auto Extent = static_cast<unsigned>(Axis.InstrAxis->extent());
  bool Last = Depth + 1 == Axes.size();

  if (!Axis.OpDepends) {
    // Tile-repeat broadcast: the same inner pattern fills every step of
    // this (slower-varying) axis.
    ExprRef Inner = buildIndexVector(Axes, Depth + 1, Base, Roles);
    if (Roles)
      Roles->emplace_back(Axis.InstrAxis, OperandAxisRole::Broadcast);
    if (Extent == 1)
      return Inner;
    return makeBroadcast(std::move(Inner), Extent);
  }

  if (Last) {
    // Fastest-varying depended axis: a strided vector access.
    if (Roles)
      Roles->emplace_back(Axis.InstrAxis, OperandAxisRole::Vectorize);
    if (Extent == 1)
      return Base;
    return makeRamp(std::move(Base), Axis.OpStride, Extent);
  }

  // Interior depended axis: unroll and concatenate.
  if (Roles)
    Roles->emplace_back(Axis.InstrAxis, OperandAxisRole::Unroll);
  std::vector<ExprRef> Parts;
  Parts.reserve(Extent);
  for (unsigned T = 0; T < Extent; ++T) {
    ExprRef Stepped =
        Base + makeIntImm(static_cast<int64_t>(T) * Axis.OpStride);
    Parts.push_back(buildIndexVector(Axes, Depth + 1, std::move(Stepped),
                                     /*Roles=*/nullptr));
  }
  return makeConcat(std::move(Parts));
}

/// The set of tile-inner loop variables of \p Plan.
std::set<const IterVarNode *> innerVarSet(const TensorizePlan &Plan) {
  std::set<const IterVarNode *> Out;
  for (const auto &[InstrAxis, Inner] : Plan.InnerVarOf)
    Out.insert(Inner.get());
  return Out;
}

/// Sorts \p Axes by lane coefficient, slowest-varying first.
void sortByLaneCoeff(std::vector<LaneAxis> &Axes) {
  std::sort(Axes.begin(), Axes.end(),
            [](const LaneAxis &A, const LaneAxis &B) {
              return A.LaneCoeff > B.LaneCoeff;
            });
}

/// When the operation access is *contiguous in lane order* — every lane
/// axis is depended on and its buffer stride is proportional to its lane
/// stride — the whole register fills with one strided vector access. This
/// is what the paper's blocked data layouts (NCHW[x]c / KCRS[y]k[x]c,
/// §V.C) buy: the register block is one load, not an unrolled gather.
/// Returns null when the collapse does not apply.
ExprRef tryContiguousCollapse(
    const std::vector<LaneAxis> &Axes, const ExprRef &Base,
    std::vector<std::pair<IterVar, OperandAxisRole>> *Roles) {
  if (Axes.empty())
    return nullptr;
  int64_t ElemStride = Axes.back().OpStride;
  if (ElemStride == 0)
    return nullptr;
  unsigned TotalLanes = 1;
  for (const LaneAxis &Axis : Axes) {
    if (!Axis.OpDepends)
      return nullptr;
    if (Axis.OpStride != ElemStride * Axis.LaneCoeff)
      return nullptr;
    TotalLanes *= static_cast<unsigned>(Axis.InstrAxis->extent());
  }
  if (Roles)
    for (const LaneAxis &Axis : Axes)
      Roles->emplace_back(Axis.InstrAxis, OperandAxisRole::Vectorize);
  if (TotalLanes == 1)
    return Base;
  return makeRamp(Base, ElemStride, TotalLanes);
}

} // namespace

ExprRef unit::generateOutputIndex(const TensorizePlan &Plan,
                                  const VarSubst &Roots) {
  const ComputeOp &Op = *Plan.Sched->op();
  const ComputeOp &Sem = *Plan.Match.Intrinsic->semantics();
  const TensorRef &Out = Op.output();

  // Operation output flat index over final leaf variables.
  std::vector<ExprRef> OutIdx;
  for (const IterVar &Axis : Op.axes())
    OutIdx.push_back(Roots.at(Axis.get()));
  ExprRef OutFlat = flattenIndex(Out, OutIdx);

  LinearIndex OLI = analyzeLinear(OutFlat, innerVarSet(Plan));
  if (!OLI.Valid)
    reportFatalError("operand generation: output index is not affine in "
                     "the tensorized loops");

  // Instruction output lane layout: identity access over its data-parallel
  // axes, so lane coefficients are the semantics output tensor strides.
  std::vector<int64_t> Strides = Sem.output()->strides();
  std::vector<LaneAxis> Axes;
  for (size_t D = 0; D < Sem.axes().size(); ++D) {
    const IterVar &InstrAxis = Sem.axes()[D];
    IterVar InnerVar = Plan.InnerVarOf.at(InstrAxis.get());
    int64_t OpStride = OLI.coeffOf(InnerVar.get());
    if (OpStride == 0)
      reportFatalError("operand generation: operation output does not vary "
                       "along instruction axis '" +
                       InstrAxis->name() + "'");
    Axes.push_back({InstrAxis, Strides[D], OpStride, /*OpDepends=*/true});
  }
  sortByLaneCoeff(Axes);
  if (ExprRef Collapsed =
          tryContiguousCollapse(Axes, OLI.Base, /*Roles=*/nullptr))
    return Collapsed;
  return buildIndexVector(Axes, 0, OLI.Base, /*Roles=*/nullptr);
}

OperandInfo unit::generateOperand(const TensorizePlan &Plan,
                                  const OperandBinding &Binding,
                                  const VarSubst &Roots,
                                  const ExprRef &AccumIndex) {
  OperandInfo Info;
  Info.InstrTensor = Binding.InstrTensor;

  if (Binding.IsAccumulator) {
    // The accumulator register is fed the operation's own output region.
    Info.Operand =
        makeVectorLoad(Plan.Sched->op()->output(), AccumIndex);
    for (const IterVar &InstrAxis :
         Plan.Match.Intrinsic->semantics()->axes())
      Info.Roles.emplace_back(InstrAxis, OperandAxisRole::Vectorize);
    return Info;
  }

  // Register lane layout from the instruction-side access.
  std::set<const IterVarNode *> InstrAxesSet;
  for (const IterVar &IV : Plan.Match.Intrinsic->semantics()->allAxes())
    InstrAxesSet.insert(IV.get());
  ExprRef InstrFlat =
      flattenIndex(Binding.InstrLoad->Buf, Binding.InstrLoad->Indices);
  LinearIndex ILI = analyzeLinear(InstrFlat, InstrAxesSet);
  if (!ILI.Valid)
    reportFatalError("operand generation: instruction access is not affine");

  // Operation-side flat index over final leaf variables.
  std::vector<ExprRef> OpIdx;
  OpIdx.reserve(Binding.OpLoad->Indices.size());
  for (const ExprRef &I : Binding.OpLoad->Indices)
    OpIdx.push_back(substitute(I, Roots));
  ExprRef OpFlat = flattenIndex(Binding.OpLoad->Buf, OpIdx);
  LinearIndex OLI = analyzeLinear(OpFlat, innerVarSet(Plan));
  if (!OLI.Valid)
    reportFatalError("operand generation: operation access is not affine in "
                     "the tensorized loops");

  // Lane axes: every instruction axis the register layout depends on.
  std::vector<LaneAxis> Axes;
  int64_t ExpectedLanes = 1;
  for (const auto &[IVNode, LaneCoeff] : ILI.Coeffs) {
    IterVar InstrAxis;
    for (const IterVar &IV : Plan.Match.Intrinsic->semantics()->allAxes())
      if (IV.get() == IVNode)
        InstrAxis = IV;
    assert(InstrAxis && "lane coefficient for unknown instruction axis");
    assert(LaneCoeff > 0 && "negative lane stride in instruction access");
    IterVar InnerVar = Plan.InnerVarOf.at(IVNode);
    int64_t OpStride = OLI.coeffOf(InnerVar.get());
    Axes.push_back(
        {InstrAxis, LaneCoeff, OpStride, /*OpDepends=*/OpStride != 0});
    ExpectedLanes *= InstrAxis->extent();
  }
  sortByLaneCoeff(Axes);

  ExprRef IdxVec = tryContiguousCollapse(Axes, OLI.Base, &Info.Roles);
  if (!IdxVec)
    IdxVec = buildIndexVector(Axes, 0, OLI.Base, &Info.Roles);
  Info.Operand = makeVectorLoad(Binding.OpLoad->Buf, IdxVec);
  if (static_cast<int64_t>(Info.Operand->dtype().lanes()) !=
      Binding.InstrTensor->numElements())
    reportFatalError("operand generation: lane count does not fill "
                     "register '" +
                     Binding.InstrTensor->name() + "'");
  (void)ExpectedLanes;
  return Info;
}
