//===- core/Inspector.cpp --------------------------------------------------===//

#include "core/Inspector.h"

#include "ir/ExprUtil.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <set>

using namespace unit;

IterVar AxisMapping::opAxisFor(const IterVarNode *InstrAxis) const {
  for (const auto &[OpAxis, IAxis] : Pairs)
    if (IAxis.get() == InstrAxis)
      return OpAxis;
  return nullptr;
}

IterVar AxisMapping::instrAxisFor(const IterVarNode *OpAxis) const {
  for (const auto &[OAxis, InstrAxis] : Pairs)
    if (OAxis.get() == OpAxis)
      return InstrAxis;
  return nullptr;
}

namespace {

/// Set of loop variables appearing in a load's index expressions.
std::set<const IterVarNode *> varSetOfLoad(const LoadNode *Load) {
  std::set<const IterVarNode *> Out;
  for (const ExprRef &Idx : Load->Indices)
    for (const IterVar &IV : collectVars(Idx))
      Out.insert(IV.get());
  return Out;
}

/// Distinct loop variables in a load's index expressions, in order.
std::vector<IterVar> collectLoadVars(const LoadNode *Load) {
  std::vector<IterVar> Out;
  for (const ExprRef &Idx : Load->Indices)
    for (const IterVar &IV : collectVars(Idx))
      if (std::find(Out.begin(), Out.end(), IV) == Out.end())
        Out.push_back(IV);
  return Out;
}

/// The feasibility test of paper §III.B.2: for every bound operand pair
/// (u = op access, v = instruction access), S'(u) ⊆ S(v) where
/// S'(u) = { f(x) | x in S(u) ∩ A }.
bool mappingFeasible(const AxisMapping &Mapping, const IsoResult &Iso) {
  for (const OperandBinding &B : Iso.Bindings) {
    if (B.IsAccumulator)
      continue; // The accumulator aliases the output; checked by shape.
    std::set<const IterVarNode *> SV = varSetOfLoad(B.InstrLoad);
    for (const IterVar &OpVar : collectLoadVars(B.OpLoad)) {
      IterVar InstrVar = Mapping.instrAxisFor(OpVar.get());
      if (!InstrVar)
        continue; // Not in A: stays an outer loop; broadcast handles it.
      if (!SV.count(InstrVar.get()))
        return false; // One register lane would need several addresses.
    }
  }
  return true;
}

/// Recursively assigns operation axes to instruction axes.
///
/// \p InstrAxes lists the instruction axes still to assign; \p Candidates
/// lists, per instruction axis, the op axes that qualify (same annotation,
/// perfect tiling), pre-sorted innermost-first. Feasible complete mappings
/// are appended to \p Out (bounded enumeration; shapes make this tiny).
void enumerate(const std::vector<IterVar> &InstrAxes, size_t Depth,
               const std::vector<std::vector<IterVar>> &Candidates,
               std::vector<std::pair<IterVar, IterVar>> &Current,
               const IsoResult &Iso, std::vector<AxisMapping> &Out) {
  if (Depth == InstrAxes.size()) {
    AxisMapping M{Current};
    if (mappingFeasible(M, Iso))
      Out.push_back(std::move(M));
    return;
  }
  const IterVar &InstrAxis = InstrAxes[Depth];
  for (const IterVar &OpAxis : Candidates[Depth]) {
    bool Used = false;
    for (const auto &[Assigned, _] : Current)
      Used |= Assigned == OpAxis;
    if (Used)
      continue;
    Current.emplace_back(OpAxis, InstrAxis);
    enumerate(InstrAxes, Depth + 1, Candidates, Current, Iso, Out);
    Current.pop_back();
  }
}

} // namespace

std::optional<MatchResult> unit::inspect(const ComputeOpRef &Op,
                                         const TensorIntrinsicRef &Intr,
                                         std::string *WhyNot) {
  auto Fail = [&](const std::string &Why) -> std::optional<MatchResult> {
    if (WhyNot)
      *WhyNot = Why;
    return std::nullopt;
  };

  // Step 1: compute isomorphism (paper Algorithm 1).
  IsoResult Iso = matchCompute(*Intr->semantics(), *Op);
  if (!Iso.Matched)
    return Fail("compute isomorphism failed: " + Iso.FailureReason);

  // In-place instructions additionally require the op's output element
  // type to match the accumulator register's element type.
  if (Intr->accumulatesInPlace() &&
      Intr->semantics()->output()->dtype() != Op->output()->dtype())
    return Fail("accumulator element type mismatch");

  // Step 2: array access isomorphism — enumerate loop mappings.
  std::vector<IterVar> InstrAxes = Intr->semantics()->allAxes();

  // Candidates per instruction axis: op axes of the same annotation whose
  // extent the instruction extent tiles perfectly (the graph level pads
  // shapes to guarantee this; see graph/Layout). Innermost-first for the
  // greedy locality preference of paper §IV.A.
  std::vector<IterVar> OpAxesInnermostFirst = Op->allAxes();
  std::reverse(OpAxesInnermostFirst.begin(), OpAxesInnermostFirst.end());

  std::vector<std::vector<IterVar>> Candidates;
  for (const IterVar &InstrAxis : InstrAxes) {
    std::vector<IterVar> C;
    for (const IterVar &OpAxis : OpAxesInnermostFirst) {
      if (OpAxis->kind() != InstrAxis->kind())
        continue;
      if (OpAxis->extent() % InstrAxis->extent() != 0)
        continue;
      C.push_back(OpAxis);
    }
    if (C.empty())
      return Fail("no operation axis can host instruction axis '" +
                  InstrAxis->name() + "'");
    Candidates.push_back(std::move(C));
  }

  std::vector<AxisMapping> Feasible;
  std::vector<std::pair<IterVar, IterVar>> Current;
  enumerate(InstrAxes, 0, Candidates, Current, Iso, Feasible);
  if (Feasible.empty())
    return Fail("no feasible loop mapping (S'(u) ⊆ S(v) fails everywhere)");

  MatchResult Result;
  Result.Intrinsic = Intr;
  Result.Iso = std::move(Iso);
  Result.Mapping = Feasible.front();
  Result.Alternatives.assign(Feasible.begin() + 1, Feasible.end());
  return Result;
}

std::vector<MatchResult> unit::inspectTarget(const ComputeOpRef &Op,
                                             const std::string &Target) {
  std::vector<MatchResult> Out;
  for (const TensorIntrinsicRef &Intr :
       IntrinsicRegistry::instance().forTarget(Target)) {
    if (std::optional<MatchResult> M = inspect(Op, Intr))
      Out.push_back(std::move(*M));
  }
  return Out;
}
