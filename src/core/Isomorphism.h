//===- core/Isomorphism.h - Compute isomorphism (paper Algorithm 1) -------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first Inspector step (paper §III.B.1): decide whether a tensorized
/// instruction and a tensor operation are *arithmetically equivalent* by
/// checking isomorphism of their expression trees — same topology, same
/// opcodes, same data types — while binding each instruction register
/// (tensor) to exactly one data source in the operation.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_ISOMORPHISM_H
#define UNIT_CORE_ISOMORPHISM_H

#include "ir/ComputeOp.h"

#include <string>
#include <vector>

namespace unit {

/// One register binding: the instruction's operand tensor, the operation
/// tensor it binds to, and representative loads on both sides (index
/// expressions feed the access-isomorphism check and operand generation).
struct OperandBinding {
  TensorRef InstrTensor;
  const LoadNode *InstrLoad = nullptr;
  TensorRef OpTensor;              ///< Null for accumulator-to-output binds.
  const LoadNode *OpLoad = nullptr;
  /// True when this register is the accumulator fed with the operation's
  /// own output (instruction init `c[i] +` matched against an identity
  /// init, or an in-place `+=` instruction).
  bool IsAccumulator = false;
};

/// Result of the compute-isomorphism check.
struct IsoResult {
  bool Matched = false;
  std::vector<OperandBinding> Bindings; ///< One per instruction tensor.
  std::string FailureReason;            ///< Set when !Matched.

  /// The binding of instruction tensor \p T, or null.
  const OperandBinding *bindingFor(const TensorRef &T) const;
};

/// Runs Algorithm 1 between \p Instr's and \p Op's compute bodies:
/// matches the reduction structure (combiner kind, elementwise source
/// trees, accumulator initialization) and produces register bindings.
IsoResult matchCompute(const ComputeOp &Instr, const ComputeOp &Op);

/// Canonical structural serialization of \p Op. Loop variables and tensors
/// are numbered by first appearance (axes in declaration order, tensors
/// output-first), so two operations that differ only in variable, tensor,
/// or operation names — the renamings matchCompute treats as isomorphic —
/// serialize to the same string, while any difference in topology, opcodes,
/// extents, shapes, or data types produces a different one. The runtime's
/// KernelCache uses this as its kernel key (runtime/KernelCache.h).
std::string canonicalComputeKey(const ComputeOp &Op);

/// Structural distance between two canonicalComputeKey serializations:
/// token-level edit distance (numbers, identifiers, and punctuation are
/// single tokens, so `224` vs `225` costs one edit, not a digit-wise
/// count). A metric on serializations — zero iff the strings are equal
/// (renamed-isomorphic ops, which serialize identically, are at distance
/// zero), symmetric, triangle inequality. \p Cutoff bounds the work: the
/// banded computation gives up and returns Cutoff + 1 as soon as the
/// distance provably exceeds Cutoff, so nearest-neighbor scans over many
/// cached keys stay cheap. The CompilerSession's transfer tuning uses
/// this to find a near-isomorphic neighbor whose cached winner seeds a
/// new key's search (docs/TUNING.md).
size_t structuralDistance(const std::string &A, const std::string &B,
                          size_t Cutoff);

} // namespace unit

#endif // UNIT_CORE_ISOMORPHISM_H
