//===- core/Inspector.h - Applicability detection (paper §III.B) ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides whether — and how — a tensorized instruction applies to a tensor
/// operation. Two steps (paper §III.B):
///
///  1. Compute isomorphism (Isomorphism.h): the expression trees match.
///  2. Array-access isomorphism: enumerate mappings f from operation loop
///     variables to instruction loop variables (same annotation, extents
///     tile perfectly) and keep those where every operand access pair
///     (u, v) satisfies S'(u) ⊆ S(v) — otherwise one register lane would
///     correspond to several memory addresses.
///
/// Mappings are enumerated innermost-first and the first feasible one is
/// preferred for locality (paper §IV.A); the rest are surfaced as an extra
/// tuning dimension (paper §III.B.2).
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_INSPECTOR_H
#define UNIT_CORE_INSPECTOR_H

#include "core/Isomorphism.h"
#include "isa/TensorIntrinsic.h"

#include <optional>
#include <vector>

namespace unit {

/// One feasible loop mapping: for every instruction axis, the operation
/// axis it tensorizes (instruction order: data-parallel axes then reduce
/// axes, matching TensorIntrinsic semantics order).
struct AxisMapping {
  /// Pairs of (operation axis, instruction axis).
  std::vector<std::pair<IterVar, IterVar>> Pairs;

  /// The operation axis mapped to \p InstrAxis, or null.
  IterVar opAxisFor(const IterVarNode *InstrAxis) const;
  /// The instruction axis \p OpAxis maps to, or null.
  IterVar instrAxisFor(const IterVarNode *OpAxis) const;
};

/// A successful applicability result.
struct MatchResult {
  TensorIntrinsicRef Intrinsic;
  IsoResult Iso;
  AxisMapping Mapping;                   ///< Greedy innermost-first choice.
  std::vector<AxisMapping> Alternatives; ///< Other feasible mappings.
};

/// Inspects one (operation, instruction) pair. Returns std::nullopt with
/// no side effects when inapplicable; \p WhyNot (optional) receives the
/// first failure reason for diagnostics.
std::optional<MatchResult> inspect(const ComputeOpRef &Op,
                                   const TensorIntrinsicRef &Intr,
                                   std::string *WhyNot = nullptr);

/// Tries every instruction of target id \p Target in the global
/// IntrinsicRegistry against \p Op, registration order. Returns all
/// matches (typically the caller takes the first or lets the tuner
/// choose). A TargetSpec's instructions enter the global registry when
/// the spec is registered (first TargetRegistry access registers the
/// shipped specs); when compiling for a registered target, prefer
/// backend->intrinsics() / compileForTarget, which consult the
/// backend's own spec list.
std::vector<MatchResult> inspectTarget(const ComputeOpRef &Op,
                                       const std::string &Target);

} // namespace unit

#endif // UNIT_CORE_INSPECTOR_H
