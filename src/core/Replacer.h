//===- core/Replacer.h - Tensorized instruction injection ------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tensor-IR transformation of paper §IV.B step 3: replaces the loop
/// nest under a `#pragma tensorize <intrinsic>` with a single vector store
/// of the tensorized call, whose register operands come from the operand
/// generation rules (OperandGen.h).
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_REPLACER_H
#define UNIT_CORE_REPLACER_H

#include "core/Rewriter.h"
#include "tir/Stmt.h"

namespace unit {

/// Rewrites every `tensorize` pragma region of \p Lowered that names
/// \p Plan's intrinsic. Residue guards from outer imperfect splits are
/// re-established around the replacement store.
StmtRef replaceTensorized(const StmtRef &Lowered, const TensorizePlan &Plan);

} // namespace unit

#endif // UNIT_CORE_REPLACER_H
