//===- core/Replacer.cpp ---------------------------------------------------===//

#include "core/Replacer.h"

#include "core/OperandGen.h"
#include "ir/ExprUtil.h"
#include "support/ErrorHandling.h"
#include "tir/StmtVisitor.h"

#include <cassert>

using namespace unit;

namespace {

/// Replaces matching tensorize pragma regions with the generated call.
class TensorizeReplacer : public StmtMutator {
  const TensorizePlan &Plan;
  StmtRef Replacement;
  bool Replaced = false;

public:
  TensorizeReplacer(const TensorizePlan &Plan, StmtRef Replacement)
      : Plan(Plan), Replacement(std::move(Replacement)) {}

  bool replaced() const { return Replaced; }

  StmtRef mutatePragma(const StmtRef &S, const PragmaNode *N) override {
    if (N->Key == "tensorize" &&
        N->Value == Plan.Match.Intrinsic->name()) {
      Replaced = true;
      return Replacement;
    }
    return StmtMutator::mutatePragma(S, N);
  }
};

} // namespace

StmtRef unit::replaceTensorized(const StmtRef &Lowered,
                                const TensorizePlan &Plan) {
  const Schedule &S = *Plan.Sched;
  const ComputeOp &Op = *S.op();
  const TensorIntrinsic &Intr = *Plan.Match.Intrinsic;
  const ComputeOp &Sem = *Intr.semantics();

  VarSubst Roots = S.rootBindings();
  ExprRef OutIdx = generateOutputIndex(Plan, Roots);

  // Register operands in the semantics' input order (the convention the
  // interpreter's emulation expects, interp/Interp.cpp).
  std::vector<ExprRef> Args;
  for (const TensorRef &InstrInput : Sem.inputs()) {
    const OperandBinding *B = Plan.Match.Iso.bindingFor(InstrInput);
    if (!B)
      reportFatalError("replacer: no binding for instruction register '" +
                       InstrInput->name() + "'");
    OperandInfo Info = generateOperand(Plan, *B, Roots, OutIdx);
    Args.push_back(Info.Operand);
  }
  if (Intr.accumulatesInPlace())
    Args.push_back(makeVectorLoad(Op.output(), OutIdx));

  DataType CallType = Sem.output()->dtype().withLanes(
      static_cast<unsigned>(Sem.output()->numElements()));
  ExprRef Call =
      makeCall(Intr.name(), CallKind::Tensorized, std::move(Args), CallType);
  StmtRef Replacement = makeStore(Op.output(), OutIdx, std::move(Call));

  // Outer imperfect splits guard whole instruction tiles.
  for (const ExprRef &Pred : S.residuePredicates()) {
    ExprRef Guard = makeCall("likely", CallKind::Pure, {Pred},
                             DataType::i32());
    Replacement = makeIfThenElse(std::move(Guard), std::move(Replacement));
  }

  TensorizeReplacer R(Plan, std::move(Replacement));
  StmtRef Out = R.mutate(Lowered);
  if (!R.replaced())
    reportFatalError("replacer: tensorize pragma for '" + Intr.name() +
                     "' not found in lowered IR");
  return Out;
}
