//===- core/Rewriter.cpp ---------------------------------------------------===//

#include "core/Rewriter.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>

using namespace unit;

TensorizePlan unit::reorganizeLoops(const ComputeOpRef &Op,
                                    const MatchResult &Match) {
  TensorizePlan Plan;
  Plan.Sched = std::make_shared<Schedule>(Op);
  Plan.Match = Match;
  Schedule &S = *Plan.Sched;

  // Tile every mapped operation axis by the instruction axis extent. The
  // Inspector guaranteed divisibility, so no residue guards appear here.
  for (const auto &[OpAxis, InstrAxis] : Match.Mapping.Pairs) {
    auto [Outer, Inner] = S.split(OpAxis, InstrAxis->extent());
    Plan.OuterVarOf[OpAxis.get()] = Outer;
    Plan.InnerVarOf[InstrAxis.get()] = Inner;
  }

  // Inner loops in instruction order (data-parallel axes then reduce axes,
  // i.e. the semantics ComputeOp's own order).
  for (const IterVar &InstrAxis : Match.Intrinsic->semantics()->allAxes()) {
    auto It = Plan.InnerVarOf.find(InstrAxis.get());
    assert(It != Plan.InnerVarOf.end() && "unmapped instruction axis");
    Plan.InnerLoops.push_back(It->second);
  }

  // Outer loops: every current leaf that is not a tensorized inner loop,
  // preserving relative order, partitioned data-parallel before reduce so
  // the reduction nest wraps the tensorized instruction (Fig. 7a).
  std::vector<IterVar> Others;
  for (const IterVar &Leaf : S.leaves()) {
    if (std::find(Plan.InnerLoops.begin(), Plan.InnerLoops.end(), Leaf) !=
        Plan.InnerLoops.end())
      continue;
    Others.push_back(Leaf);
  }
  for (const IterVar &IV : Others) {
    if (IV->isReduce())
      Plan.OuterReduce.push_back(IV);
    else
      Plan.OuterDataParallel.push_back(IV);
  }

  // Final leaf order.
  std::vector<IterVar> Order = Plan.OuterDataParallel;
  Order.insert(Order.end(), Plan.OuterReduce.begin(), Plan.OuterReduce.end());
  Order.insert(Order.end(), Plan.InnerLoops.begin(), Plan.InnerLoops.end());
  S.reorder(Order);

  // Mark the region for the Replacer.
  S.pragma(Plan.InnerLoops.front(), "tensorize", Match.Intrinsic->name());
  return Plan;
}
