//===- core/Isomorphism.cpp ------------------------------------------------===//
//
// Implements paper Algorithm 1. `A` denotes instruction-side expressions,
// `B` operation-side expressions, following the paper's convention.
//
//===----------------------------------------------------------------------===//

#include "core/Isomorphism.h"

#include "ir/ExprUtil.h"
#include "ir/Printer.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace unit;

const OperandBinding *IsoResult::bindingFor(const TensorRef &T) const {
  for (const OperandBinding &B : Bindings)
    if (B.InstrTensor == T)
      return &B;
  return nullptr;
}

namespace {

/// Mutable matching state: instruction tensor -> bound operation load.
struct BindState {
  std::vector<OperandBinding> Bindings;
  std::string Failure;

  OperandBinding *find(const TensorNode *InstrTensor) {
    for (OperandBinding &B : Bindings)
      if (B.InstrTensor.get() == InstrTensor)
        return &B;
    return nullptr;
  }

  bool fail(const std::string &Why) {
    if (Failure.empty())
      Failure = Why;
    return false;
  }

  /// Binds instruction load \p A to operation load \p B; a register cannot
  /// correspond to two different data sources (paper §III.B.1).
  bool bindLoad(const LoadNode *A, const LoadNode *B) {
    OperandBinding *Existing = find(A->Buf.get());
    if (!Existing) {
      OperandBinding NewBind;
      NewBind.InstrTensor = A->Buf;
      NewBind.InstrLoad = A;
      NewBind.OpTensor = B->Buf;
      NewBind.OpLoad = B;
      Bindings.push_back(NewBind);
      return true;
    }
    if (Existing->IsAccumulator)
      return fail("register '" + A->Buf->name() +
                  "' already bound as the accumulator");
    if (Existing->OpTensor != B->Buf)
      return fail("register '" + A->Buf->name() +
                  "' bound to two different tensors ('" +
                  Existing->OpTensor->name() + "' and '" + B->Buf->name() +
                  "')");
    // Same tensor: the access pattern must be identical too, otherwise one
    // register lane would need two addresses.
    if (Existing->OpLoad->Indices.size() != B->Indices.size())
      return fail("register '" + A->Buf->name() + "' bound to two accesses");
    for (size_t I = 0; I < B->Indices.size(); ++I)
      if (!structuralEqual(Existing->OpLoad->Indices[I], B->Indices[I]))
        return fail("register '" + A->Buf->name() +
                    "' bound to two different access patterns");
    return true;
  }

  /// Binds instruction register \p InstrTensor as the accumulator fed by
  /// the operation's output.
  bool bindAccumulator(const TensorRef &InstrTensor, const LoadNode *A) {
    if (find(InstrTensor.get()))
      return fail("accumulator register '" + InstrTensor->name() +
                  "' already bound to an input");
    OperandBinding NewBind;
    NewBind.InstrTensor = InstrTensor;
    NewBind.InstrLoad = A;
    NewBind.IsAccumulator = true;
    Bindings.push_back(NewBind);
    return true;
  }
};

/// Core of Algorithm 1: recursive topology/opcode/dtype match.
bool inspect(const ExprRef &A, const ExprRef &B, BindState &State) {
  if (A->dtype() != B->dtype())
    return State.fail("type mismatch: " + A->dtype().str() + " vs " +
                      B->dtype().str());

  // Leaves.
  if (const auto *AL = dyn_cast<LoadNode>(A.get())) {
    const auto *BL = dyn_cast<LoadNode>(B.get());
    if (!BL)
      return State.fail("register operand matched against non-load: " +
                        exprToString(B));
    return State.bindLoad(AL, BL);
  }
  if (const auto *AI = dyn_cast<IntImmNode>(A.get())) {
    const auto *BI = dyn_cast<IntImmNode>(B.get());
    if (!BI || BI->Value != AI->Value)
      return State.fail("immediate mismatch");
    return true;
  }
  if (const auto *AF = dyn_cast<FloatImmNode>(A.get())) {
    const auto *BF = dyn_cast<FloatImmNode>(B.get());
    if (!BF || BF->Value != AF->Value)
      return State.fail("immediate mismatch");
    return true;
  }

  // Interior arithmetic: opcodes must agree.
  if (A->kind() != B->kind())
    return State.fail("opcode mismatch at " + exprToString(A) + " vs " +
                      exprToString(B));

  if (const auto *AB = dyn_cast<BinaryNode>(A.get())) {
    const auto *BB = cast<BinaryNode>(B.get());
    return inspect(AB->LHS, BB->LHS, State) &&
           inspect(AB->RHS, BB->RHS, State);
  }
  if (const auto *AC = dyn_cast<CastNode>(A.get())) {
    const auto *BC = cast<CastNode>(B.get());
    return inspect(AC->Value, BC->Value, State);
  }
  return State.fail("unsupported node in instruction semantics: " +
                    exprToString(A));
}

} // namespace

namespace {

/// Serialization state for canonicalComputeKey: positional ids for loop
/// variables and tensors so names never reach the key.
struct KeyPrinter {
  std::map<const IterVarNode *, int> VarIds;
  std::map<const TensorNode *, int> TensorIds;
  std::vector<TensorRef> TensorTable; ///< Id order, for the shape suffix.
  std::string Out;

  int varId(const IterVarNode *IV) {
    auto It = VarIds.find(IV);
    if (It != VarIds.end())
      return It->second;
    int Id = static_cast<int>(VarIds.size());
    VarIds.emplace(IV, Id);
    return Id;
  }

  int tensorId(const TensorRef &T) {
    auto It = TensorIds.find(T.get());
    if (It != TensorIds.end())
      return It->second;
    int Id = static_cast<int>(TensorIds.size());
    TensorIds.emplace(T.get(), Id);
    TensorTable.push_back(T);
    return Id;
  }

  void print(const ExprRef &E) {
    switch (E->kind()) {
    case ExprNode::Kind::IntImm:
      // Immediates carry their dtype: inspect() rejects dtype mismatches,
      // so the key must separate them too.
      Out += "i" + std::to_string(cast<IntImmNode>(E.get())->Value) + ":" +
             E->dtype().str();
      return;
    case ExprNode::Kind::FloatImm: {
      // Hex-float round-trips exactly; to_string's fixed 6 decimals would
      // collapse distinct immediates onto one key.
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), "f%a:",
                    cast<FloatImmNode>(E.get())->Value);
      Out += Buf;
      Out += E->dtype().str();
      return;
    }
    case ExprNode::Kind::Var:
      Out += "%" + std::to_string(varId(cast<VarNode>(E.get())->IV.get()));
      return;
    case ExprNode::Kind::Cast: {
      const auto *C = cast<CastNode>(E.get());
      Out += "cast<" + E->dtype().str() + ">(";
      print(C->Value);
      Out += ")";
      return;
    }
    case ExprNode::Kind::Load: {
      const auto *L = cast<LoadNode>(E.get());
      Out += "@" + std::to_string(tensorId(L->Buf)) + "[";
      for (size_t I = 0; I < L->Indices.size(); ++I) {
        if (I)
          Out += ",";
        print(L->Indices[I]);
      }
      Out += "]";
      return;
    }
    case ExprNode::Kind::Select: {
      const auto *S = cast<SelectNode>(E.get());
      Out += "sel(";
      print(S->Cond);
      Out += ",";
      print(S->TrueValue);
      Out += ",";
      print(S->FalseValue);
      Out += ")";
      return;
    }
    case ExprNode::Kind::Call: {
      const auto *C = cast<CallNode>(E.get());
      Out += "call:" + C->Callee + "(";
      for (size_t I = 0; I < C->Args.size(); ++I) {
        if (I)
          Out += ",";
        print(C->Args[I]);
      }
      Out += ")";
      return;
    }
    case ExprNode::Kind::Reduce: {
      const auto *R = cast<ReduceNode>(E.get());
      Out += "red" + std::to_string(static_cast<int>(R->RKind)) + "<";
      for (size_t I = 0; I < R->Axes.size(); ++I) {
        if (I)
          Out += ",";
        Out += "%" + std::to_string(varId(R->Axes[I].get()));
      }
      Out += ">(";
      print(R->Source);
      if (R->Init) {
        Out += ";";
        print(R->Init);
      }
      Out += ")";
      return;
    }
    default:
      // Binary arithmetic (Add..Max) and the vector-level nodes (Ramp,
      // Broadcast, Concat) share the generic opcode rendering.
      if (const auto *B = dyn_cast<BinaryNode>(E.get())) {
        Out += "op" + std::to_string(static_cast<int>(E->kind())) + "(";
        print(B->LHS);
        Out += ",";
        print(B->RHS);
        Out += ")";
        return;
      }
      if (const auto *R = dyn_cast<RampNode>(E.get())) {
        Out += "ramp" + std::to_string(R->Stride) + "x" +
               std::to_string(E->dtype().lanes()) + "(";
        print(R->Base);
        Out += ")";
        return;
      }
      if (const auto *B = dyn_cast<BroadcastNode>(E.get())) {
        Out += "bcast" + std::to_string(B->Repeat) + "(";
        print(B->Value);
        Out += ")";
        return;
      }
      if (const auto *C = dyn_cast<ConcatNode>(E.get())) {
        Out += "cat(";
        for (size_t I = 0; I < C->Parts.size(); ++I) {
          if (I)
            Out += ",";
          print(C->Parts[I]);
        }
        Out += ")";
        return;
      }
      unit_unreachable("unhandled expression node in canonicalComputeKey");
    }
  }
};

} // namespace

std::string unit::canonicalComputeKey(const ComputeOp &Op) {
  KeyPrinter P;
  // Axes first, declaration order, so the body's variable ids line up for
  // any naming of the same loop structure.
  P.Out += "dp[";
  for (size_t I = 0; I < Op.axes().size(); ++I) {
    if (I)
      P.Out += ",";
    P.Out += std::to_string(Op.axes()[I]->extent());
    P.varId(Op.axes()[I].get());
  }
  P.Out += "]rd[";
  for (size_t I = 0; I < Op.reduceAxes().size(); ++I) {
    if (I)
      P.Out += ",";
    P.Out += std::to_string(Op.reduceAxes()[I]->extent());
    P.varId(Op.reduceAxes()[I].get());
  }
  P.Out += "]";
  if (Op.isInPlaceUpdate())
    P.Out += "inplace;";
  P.tensorId(Op.output()); // Output is always tensor @0.
  P.Out += "body:";
  P.print(Op.body());
  // Tensor table: dtype and shape per positional id (names excluded).
  P.Out += ";tensors:";
  for (size_t I = 0; I < P.TensorTable.size(); ++I) {
    const TensorRef &T = P.TensorTable[I];
    if (I)
      P.Out += "|";
    P.Out += T->dtype().str() + "[";
    for (unsigned D = 0; D < T->rank(); ++D) {
      if (D)
        P.Out += ",";
      P.Out += std::to_string(T->dim(D));
    }
    P.Out += "]";
  }
  return P.Out;
}

IsoResult unit::matchCompute(const ComputeOp &Instr, const ComputeOp &Op) {
  IsoResult Result;
  const ReduceNode *AR = Instr.reduceRoot();
  const ReduceNode *BR = Op.reduceRoot();

  // Both sides must agree on reduction presence and combiner.
  if (static_cast<bool>(AR) != static_cast<bool>(BR)) {
    Result.FailureReason = "reduction structure mismatch";
    return Result;
  }

  BindState State;
  if (AR) {
    if (AR->RKind != BR->RKind) {
      Result.FailureReason = "reduction combiner mismatch";
      return Result;
    }
    if (!inspect(AR->Source, BR->Source, State)) {
      Result.FailureReason = State.Failure;
      return Result;
    }
    // Accumulator initialization. Cases (instruction side):
    //  * Init = Load(c): VNNI/DOT style explicit accumulator register.
    //    - op Init null  -> c is fed the operation's own accumulation
    //      state (bind as accumulator-to-output).
    //    - op Init Load  -> bind c to that tensor like a normal operand.
    //  * In-place += (Tensor Core): accumulator register is the output;
    //    the op must be a plain reduction (Init null) so its output can
    //    serve as the live accumulator.
    if (Instr.isInPlaceUpdate()) {
      if (BR->Init && !Op.isInPlaceUpdate()) {
        Result.FailureReason =
            "in-place instruction cannot seed a custom accumulator init";
        return Result;
      }
    } else if (AR->Init) {
      const auto *AInit = dyn_cast<LoadNode>(AR->Init.get());
      if (!AInit) {
        Result.FailureReason = "unsupported instruction init expression";
        return Result;
      }
      if (!BR->Init) {
        if (!State.bindAccumulator(AInit->Buf, AInit)) {
          Result.FailureReason = State.Failure;
          return Result;
        }
      } else {
        if (AR->Init->dtype() != BR->Init->dtype()) {
          Result.FailureReason = "accumulator type mismatch";
          return Result;
        }
        if (!inspect(AR->Init, BR->Init, State)) {
          Result.FailureReason = State.Failure;
          return Result;
        }
      }
    } else if (BR->Init) {
      Result.FailureReason =
          "operation has an accumulator init the instruction cannot honor";
      return Result;
    }
  } else {
    if (!inspect(Instr.body(), Op.body(), State)) {
      Result.FailureReason = State.Failure;
      return Result;
    }
  }

  Result.Matched = true;
  Result.Bindings = std::move(State.Bindings);
  return Result;
}

//===----------------------------------------------------------------------===//
// Structural distance (transfer tuning, docs/TUNING.md)
//===----------------------------------------------------------------------===//

namespace {

/// Splits a canonical key into comparison units: maximal digit runs,
/// maximal identifier runs ([A-Za-z_@%$.]+ covers dtype names and the
/// positional @N/%N ids' sigils merged with their digits handled as two
/// tokens), and single punctuation characters. Comparing token-wise makes
/// one changed extent cost one edit regardless of its digit count.
std::vector<std::string> tokenizeKey(const std::string &S) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  auto IsDigit = [](char C) { return C >= '0' && C <= '9'; };
  auto IsIdent = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
  };
  while (I < S.size()) {
    size_t Start = I;
    if (IsDigit(S[I])) {
      while (I < S.size() && IsDigit(S[I]))
        ++I;
    } else if (IsIdent(S[I])) {
      while (I < S.size() && IsIdent(S[I]))
        ++I;
    } else {
      ++I;
    }
    Tokens.emplace_back(S, Start, I - Start);
  }
  return Tokens;
}

} // namespace

size_t unit::structuralDistance(const std::string &A, const std::string &B,
                                size_t Cutoff) {
  if (A == B)
    return 0;
  std::vector<std::string> TA = tokenizeKey(A);
  std::vector<std::string> TB = tokenizeKey(B);
  size_t N = TA.size(), M = TB.size();
  // Length difference is a lower bound on the edit distance.
  size_t Diff = N > M ? N - M : M - N;
  if (Diff > Cutoff)
    return Cutoff + 1;

  // Banded Levenshtein: cells more than Cutoff off the diagonal can never
  // come back under the cutoff, so only a 2*Cutoff+1 band per row is
  // computed. Two rolling rows; cells outside the band read as "over".
  const size_t Over = Cutoff + 1;
  std::vector<size_t> Prev(M + 1, Over), Cur(M + 1, Over);
  for (size_t J = 0; J <= M && J <= Cutoff; ++J)
    Prev[J] = J;
  for (size_t I = 1; I <= N; ++I) {
    size_t Lo = I > Cutoff ? I - Cutoff : 0;
    size_t Hi = std::min(M, I + Cutoff);
    std::fill(Cur.begin(), Cur.end(), Over);
    if (Lo == 0)
      Cur[0] = I;
    size_t RowMin = Over;
    for (size_t J = std::max<size_t>(1, Lo); J <= Hi; ++J) {
      size_t Sub = Prev[J - 1] + (TA[I - 1] == TB[J - 1] ? 0 : 1);
      size_t Del = Prev[J] + 1;
      size_t Ins = Cur[J - 1] + 1;
      Cur[J] = std::min({Sub, Del, Ins, Over});
      RowMin = std::min(RowMin, Cur[J]);
    }
    if (Lo == 0)
      RowMin = std::min(RowMin, Cur[0]);
    if (RowMin >= Over)
      return Over; // Every band cell already exceeds the cutoff.
    std::swap(Prev, Cur);
  }
  return std::min(Prev[M], Over);
}
