//===- core/Isomorphism.cpp ------------------------------------------------===//
//
// Implements paper Algorithm 1. `A` denotes instruction-side expressions,
// `B` operation-side expressions, following the paper's convention.
//
//===----------------------------------------------------------------------===//

#include "core/Isomorphism.h"

#include "ir/ExprUtil.h"
#include "ir/Printer.h"
#include "support/ErrorHandling.h"

using namespace unit;

const OperandBinding *IsoResult::bindingFor(const TensorRef &T) const {
  for (const OperandBinding &B : Bindings)
    if (B.InstrTensor == T)
      return &B;
  return nullptr;
}

namespace {

/// Mutable matching state: instruction tensor -> bound operation load.
struct BindState {
  std::vector<OperandBinding> Bindings;
  std::string Failure;

  OperandBinding *find(const TensorNode *InstrTensor) {
    for (OperandBinding &B : Bindings)
      if (B.InstrTensor.get() == InstrTensor)
        return &B;
    return nullptr;
  }

  bool fail(const std::string &Why) {
    if (Failure.empty())
      Failure = Why;
    return false;
  }

  /// Binds instruction load \p A to operation load \p B; a register cannot
  /// correspond to two different data sources (paper §III.B.1).
  bool bindLoad(const LoadNode *A, const LoadNode *B) {
    OperandBinding *Existing = find(A->Buf.get());
    if (!Existing) {
      OperandBinding NewBind;
      NewBind.InstrTensor = A->Buf;
      NewBind.InstrLoad = A;
      NewBind.OpTensor = B->Buf;
      NewBind.OpLoad = B;
      Bindings.push_back(NewBind);
      return true;
    }
    if (Existing->IsAccumulator)
      return fail("register '" + A->Buf->name() +
                  "' already bound as the accumulator");
    if (Existing->OpTensor != B->Buf)
      return fail("register '" + A->Buf->name() +
                  "' bound to two different tensors ('" +
                  Existing->OpTensor->name() + "' and '" + B->Buf->name() +
                  "')");
    // Same tensor: the access pattern must be identical too, otherwise one
    // register lane would need two addresses.
    if (Existing->OpLoad->Indices.size() != B->Indices.size())
      return fail("register '" + A->Buf->name() + "' bound to two accesses");
    for (size_t I = 0; I < B->Indices.size(); ++I)
      if (!structuralEqual(Existing->OpLoad->Indices[I], B->Indices[I]))
        return fail("register '" + A->Buf->name() +
                    "' bound to two different access patterns");
    return true;
  }

  /// Binds instruction register \p InstrTensor as the accumulator fed by
  /// the operation's output.
  bool bindAccumulator(const TensorRef &InstrTensor, const LoadNode *A) {
    if (find(InstrTensor.get()))
      return fail("accumulator register '" + InstrTensor->name() +
                  "' already bound to an input");
    OperandBinding NewBind;
    NewBind.InstrTensor = InstrTensor;
    NewBind.InstrLoad = A;
    NewBind.IsAccumulator = true;
    Bindings.push_back(NewBind);
    return true;
  }
};

/// Core of Algorithm 1: recursive topology/opcode/dtype match.
bool inspect(const ExprRef &A, const ExprRef &B, BindState &State) {
  if (A->dtype() != B->dtype())
    return State.fail("type mismatch: " + A->dtype().str() + " vs " +
                      B->dtype().str());

  // Leaves.
  if (const auto *AL = dyn_cast<LoadNode>(A.get())) {
    const auto *BL = dyn_cast<LoadNode>(B.get());
    if (!BL)
      return State.fail("register operand matched against non-load: " +
                        exprToString(B));
    return State.bindLoad(AL, BL);
  }
  if (const auto *AI = dyn_cast<IntImmNode>(A.get())) {
    const auto *BI = dyn_cast<IntImmNode>(B.get());
    if (!BI || BI->Value != AI->Value)
      return State.fail("immediate mismatch");
    return true;
  }
  if (const auto *AF = dyn_cast<FloatImmNode>(A.get())) {
    const auto *BF = dyn_cast<FloatImmNode>(B.get());
    if (!BF || BF->Value != AF->Value)
      return State.fail("immediate mismatch");
    return true;
  }

  // Interior arithmetic: opcodes must agree.
  if (A->kind() != B->kind())
    return State.fail("opcode mismatch at " + exprToString(A) + " vs " +
                      exprToString(B));

  if (const auto *AB = dyn_cast<BinaryNode>(A.get())) {
    const auto *BB = cast<BinaryNode>(B.get());
    return inspect(AB->LHS, BB->LHS, State) &&
           inspect(AB->RHS, BB->RHS, State);
  }
  if (const auto *AC = dyn_cast<CastNode>(A.get())) {
    const auto *BC = cast<CastNode>(B.get());
    return inspect(AC->Value, BC->Value, State);
  }
  return State.fail("unsupported node in instruction semantics: " +
                    exprToString(A));
}

} // namespace

IsoResult unit::matchCompute(const ComputeOp &Instr, const ComputeOp &Op) {
  IsoResult Result;
  const ReduceNode *AR = Instr.reduceRoot();
  const ReduceNode *BR = Op.reduceRoot();

  // Both sides must agree on reduction presence and combiner.
  if (static_cast<bool>(AR) != static_cast<bool>(BR)) {
    Result.FailureReason = "reduction structure mismatch";
    return Result;
  }

  BindState State;
  if (AR) {
    if (AR->RKind != BR->RKind) {
      Result.FailureReason = "reduction combiner mismatch";
      return Result;
    }
    if (!inspect(AR->Source, BR->Source, State)) {
      Result.FailureReason = State.Failure;
      return Result;
    }
    // Accumulator initialization. Cases (instruction side):
    //  * Init = Load(c): VNNI/DOT style explicit accumulator register.
    //    - op Init null  -> c is fed the operation's own accumulation
    //      state (bind as accumulator-to-output).
    //    - op Init Load  -> bind c to that tensor like a normal operand.
    //  * In-place += (Tensor Core): accumulator register is the output;
    //    the op must be a plain reduction (Init null) so its output can
    //    serve as the live accumulator.
    if (Instr.isInPlaceUpdate()) {
      if (BR->Init && !Op.isInPlaceUpdate()) {
        Result.FailureReason =
            "in-place instruction cannot seed a custom accumulator init";
        return Result;
      }
    } else if (AR->Init) {
      const auto *AInit = dyn_cast<LoadNode>(AR->Init.get());
      if (!AInit) {
        Result.FailureReason = "unsupported instruction init expression";
        return Result;
      }
      if (!BR->Init) {
        if (!State.bindAccumulator(AInit->Buf, AInit)) {
          Result.FailureReason = State.Failure;
          return Result;
        }
      } else {
        if (AR->Init->dtype() != BR->Init->dtype()) {
          Result.FailureReason = "accumulator type mismatch";
          return Result;
        }
        if (!inspect(AR->Init, BR->Init, State)) {
          Result.FailureReason = State.Failure;
          return Result;
        }
      }
    } else if (BR->Init) {
      Result.FailureReason =
          "operation has an accumulator init the instruction cannot honor";
      return Result;
    }
  } else {
    if (!inspect(Instr.body(), Op.body(), State)) {
      Result.FailureReason = State.Failure;
      return Result;
    }
  }

  Result.Matched = true;
  Result.Bindings = std::move(State.Bindings);
  return Result;
}
