//===- core/OperandGen.h - Operand generation rules (paper §III.C.2) ------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the register-operand expressions for a tensorized call. For each
/// instruction register, the rule walks the register's lane layout from
/// slowest- to fastest-varying instruction axis and, per axis, either
///
///   * vectorizes (a stride Ramp) when it is the last axis and the
///     operation access depends on it,
///   * unrolls-and-concatenates when the operation access depends on it
///     but more axes follow, or
///   * broadcasts (tile-repeat) when the operation access is invariant
///     along it —
///
/// exactly the "c is a 16-lane vector; a vectorized by 4 and broadcast by
/// 16; b vectorized by 4, unrolled and concatenated along ki" rules of
/// paper Fig. 5(c).
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_CORE_OPERANDGEN_H
#define UNIT_CORE_OPERANDGEN_H

#include "core/Rewriter.h"

namespace unit {

/// How one instruction axis contributes to one operand (recorded for
/// diagnostics and the performance model's load counting).
enum class OperandAxisRole : uint8_t { Vectorize, Unroll, Broadcast };

/// Lane-layout role breakdown of one generated operand.
struct OperandInfo {
  TensorRef InstrTensor;
  ExprRef Operand; ///< The generated (vector) expression.
  std::vector<std::pair<IterVar, OperandAxisRole>> Roles; ///< Instr axes.
};

/// Generates the operand expression for instruction register \p Binding.
///
/// \p Plan supplies the mapping and tile-inner variables; \p Roots is the
/// *final* schedule's root-axis bindings (outer loop variables remain
/// symbolic, tile-inner variables are eliminated into lane patterns).
/// For the accumulator register, pass the operation output access via
/// \p AccumIndex (the flat vector index into the output buffer).
OperandInfo generateOperand(const TensorizePlan &Plan,
                            const OperandBinding &Binding,
                            const VarSubst &Roots, const ExprRef &AccumIndex);

/// Generates the flat vector index of the operation's *output* region
/// covered by one instruction call (lane order = instruction output
/// layout). Also used as the accumulator access.
ExprRef generateOutputIndex(const TensorizePlan &Plan, const VarSubst &Roots);

} // namespace unit

#endif // UNIT_CORE_OPERANDGEN_H
