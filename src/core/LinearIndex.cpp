//===- core/LinearIndex.cpp ------------------------------------------------===//

#include "core/LinearIndex.h"

#include "ir/ExprUtil.h"
#include "support/ErrorHandling.h"

using namespace unit;

namespace {

/// Returns true if \p L has no target terms and a constant base.
bool isPureConstant(const LinearIndex &L, int64_t *Value) {
  if (!L.Coeffs.empty())
    return false;
  return matchConstInt(L.Base, Value);
}

/// True if the expression mentions any target variable.
bool mentionsTargets(const ExprRef &E,
                     const std::set<const IterVarNode *> &Targets) {
  for (const IterVar &IV : collectVars(E))
    if (Targets.count(IV.get()))
      return true;
  return false;
}

LinearIndex invalid() { return LinearIndex{}; }

LinearIndex analyze(const ExprRef &E,
                    const std::set<const IterVarNode *> &Targets) {
  switch (E->kind()) {
  case ExprNode::Kind::IntImm: {
    LinearIndex L;
    L.Valid = true;
    L.Base = E;
    return L;
  }
  case ExprNode::Kind::Var: {
    const auto *V = cast<VarNode>(E);
    LinearIndex L;
    L.Valid = true;
    if (Targets.count(V->IV.get())) {
      L.Base = makeIntImm(0);
      L.Coeffs[V->IV.get()] = 1;
    } else {
      L.Base = E;
    }
    return L;
  }
  case ExprNode::Kind::Add:
  case ExprNode::Kind::Sub: {
    const auto *B = cast<BinaryNode>(E);
    LinearIndex L = analyze(B->LHS, Targets);
    LinearIndex R = analyze(B->RHS, Targets);
    if (!L.Valid || !R.Valid)
      return invalid();
    bool Negate = E->kind() == ExprNode::Kind::Sub;
    LinearIndex Out;
    Out.Valid = true;
    Out.Base = makeBinary(E->kind(), L.Base, R.Base);
    Out.Coeffs = std::move(L.Coeffs);
    for (const auto &[IV, C] : R.Coeffs) {
      Out.Coeffs[IV] += Negate ? -C : C;
      if (Out.Coeffs[IV] == 0)
        Out.Coeffs.erase(IV);
    }
    return Out;
  }
  case ExprNode::Kind::Mul: {
    const auto *B = cast<BinaryNode>(E);
    LinearIndex L = analyze(B->LHS, Targets);
    LinearIndex R = analyze(B->RHS, Targets);
    if (!L.Valid || !R.Valid)
      return invalid();
    int64_t C;
    if (isPureConstant(R, &C)) {
      LinearIndex Out;
      Out.Valid = true;
      Out.Base = L.Base * makeIntImm(C);
      for (const auto &[IV, K] : L.Coeffs)
        if (K * C != 0)
          Out.Coeffs[IV] = K * C;
      return Out;
    }
    if (isPureConstant(L, &C)) {
      LinearIndex Out;
      Out.Valid = true;
      Out.Base = makeIntImm(C) * R.Base;
      for (const auto &[IV, K] : R.Coeffs)
        if (K * C != 0)
          Out.Coeffs[IV] = K * C;
      return Out;
    }
    // Symbolic * symbolic: fine only when target-free.
    if (L.Coeffs.empty() && R.Coeffs.empty()) {
      LinearIndex Out;
      Out.Valid = true;
      Out.Base = E;
      return Out;
    }
    return invalid();
  }
  default: {
    // Any other node is opaque: acceptable as pure base when it does not
    // mention a target variable.
    if (mentionsTargets(E, Targets))
      return invalid();
    LinearIndex L;
    L.Valid = true;
    L.Base = E;
    return L;
  }
  }
}

} // namespace

LinearIndex unit::analyzeLinear(const ExprRef &E,
                                const std::set<const IterVarNode *> &Targets) {
  return analyze(E, Targets);
}
