//===- core/Pipeline.cpp ---------------------------------------------------===//

#include "core/Pipeline.h"

#include "support/ErrorHandling.h"
#include "tir/Lower.h"
#include "tir/Verify.h"

using namespace unit;

StmtRef unit::lowerPlan(const TensorizePlan &Plan) {
  StmtRef Lowered = lower(*Plan.Sched);
  StmtRef Final = replaceTensorized(Lowered, Plan);
  VerifyResult V = verifyTIR(Final);
  if (!V.ok())
    reportFatalError("pipeline: generated IR failed verification: " +
                     V.Error);
  return Final;
}

std::optional<CompiledKernel>
unit::compileWithIntrinsic(const ComputeOpRef &Op,
                           const TensorIntrinsicRef &Intr,
                           const TuneHook &Tune) {
  std::optional<MatchResult> Match = inspect(Op, Intr);
  if (!Match)
    return std::nullopt;

  CompiledKernel Kernel;
  Kernel.Op = Op;
  Kernel.Plan = reorganizeLoops(Op, *Match);
  if (Tune)
    Tune(*Kernel.Plan);
  Kernel.TIR = lowerPlan(*Kernel.Plan);
  return Kernel;
}

CompiledKernel
unit::compileForIntrinsics(const ComputeOpRef &Op,
                           const std::vector<TensorIntrinsicRef> &Intrinsics,
                           const TuneHook &Tune) {
  for (const TensorIntrinsicRef &Intr : Intrinsics) {
    if (std::optional<CompiledKernel> K =
            compileWithIntrinsic(Op, Intr, Tune))
      return std::move(*K);
  }

  // SIMD fallback: no tensorized instruction applies; vectorize the
  // innermost data-parallel loop when possible.
  CompiledKernel Kernel;
  Kernel.Op = Op;
  auto Sched = Schedule(Op);
  if (!Op->axes().empty())
    Sched.vectorize(Op->axes().back());
  Kernel.TIR = lower(Sched);
  VerifyResult V = verifyTIR(Kernel.TIR);
  if (!V.ok())
    reportFatalError("pipeline: fallback IR failed verification: " + V.Error);
  return Kernel;
}

// compileForTarget is defined in runtime/Workload.cpp: it resolves the
// id through the TargetRegistry (which core/ sits below), so spec-only
// targets work regardless of which registry a process touches first.
