//===- models/Table1.h - The paper's 16 selected conv layers --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16 representative convolution workloads of paper Table I, selected
/// from the 148 distinct shapes across the model zoo: diverse channels,
/// spatial sizes, kernels, and strides. Workloads #1/#4 (CPU) and #1/#15
/// (GPU) are the adversarial cases the paper analyzes.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_MODELS_TABLE1_H
#define UNIT_MODELS_TABLE1_H

#include "graph/Graph.h"

#include <vector>

namespace unit {

/// Returns the 16 Table I workloads in paper order (index 0 is layer #1).
std::vector<ConvLayer> table1Workloads();

} // namespace unit

#endif // UNIT_MODELS_TABLE1_H
