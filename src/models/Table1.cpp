//===- models/Table1.cpp ---------------------------------------------------===//

#include "models/Table1.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace unit;

std::vector<ConvLayer> unit::table1Workloads() {
  // Columns of paper Table I: C, IHW, K, R=S, Stride, OHW. All sixteen use
  // valid padding (IHW, R, Stride and OHW are mutually consistent).
  struct Row {
    int64_t C, IHW, K, R, Stride, OHW;
  };
  static const Row Rows[16] = {
      {288, 35, 384, 3, 2, 17},  {160, 9, 224, 3, 1, 7},
      {1056, 7, 192, 1, 1, 7},   {80, 73, 192, 3, 1, 71},
      {128, 16, 128, 3, 1, 14},  {192, 16, 192, 3, 1, 14},
      {256, 16, 256, 3, 1, 14},  {1024, 14, 512, 1, 1, 14},
      {128, 16, 160, 3, 1, 14},  {576, 14, 192, 1, 1, 14},
      {96, 16, 128, 3, 1, 14},   {1024, 14, 256, 1, 1, 14},
      {576, 14, 128, 1, 1, 14},  {64, 29, 96, 3, 1, 27},
      {64, 56, 128, 1, 2, 28},   {608, 14, 192, 1, 1, 14},
  };

  std::vector<ConvLayer> Out;
  for (int I = 0; I < 16; ++I) {
    const Row &R = Rows[I];
    ConvLayer L;
    L.Name = formatStr("table1.%d", I + 1);
    L.InC = R.C;
    L.InH = L.InW = R.IHW;
    L.OutC = R.K;
    L.KH = L.KW = R.R;
    L.Stride = R.Stride;
    L.PadH = L.PadW = 0;
    assert(L.outH() == R.OHW && "Table I row is internally inconsistent");
    Out.push_back(L);
  }
  return Out;
}
