//===- models/ModelZoo.h - The paper's nine CNN models ---------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layer tables for the nine models of the paper's evaluation (§V.C, all
/// from the MXNet Model Zoo): resnet-18/50/50_v1b/101/152, inception-bn,
/// inception-v3, mobilenet-v1/v2. Only the conv/dense shapes matter to the
/// compiler; the tables follow the published architectures, giving the
/// ~148 distinct convolution workloads the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_MODELS_MODELZOO_H
#define UNIT_MODELS_MODELZOO_H

#include "graph/Graph.h"

#include <vector>

namespace unit {

Model makeResnet18();
Model makeResnet50();
Model makeResnet50V1b(); ///< v1b: the stride lives on the 3x3, not the 1x1.
Model makeResnet101();
Model makeResnet152();
Model makeInceptionBN();
Model makeInceptionV3();
Model makeMobilenetV1();
Model makeMobilenetV2();

/// resnet-18 with only its last stage widened (512 -> 640 channels).
/// Every layer outside s4 is shape-identical to makeResnet18() and the s4
/// layers are near-isomorphic to their 512-channel originals, so this is
/// the transfer-tuning exercise model (docs/TUNING.md): a session warmed
/// on resnet-18 compiles it with cache hits for the shared stages and
/// seeded searches for the widened ones. Deliberately NOT part of
/// paperModels() — the paper evaluates nine models.
Model makeResnet18Wide();

/// The nine models in the paper's figure order.
std::vector<Model> paperModels();

/// Resnet-18's convolutions lifted to 3-D (paper §VI.C / Fig. 13): the
/// spatial extent becomes a cube of roughly the square root of the 2-D
/// extent so layer cost stays in a comparable range.
std::vector<Conv3dLayer> makeResnet18Conv3d();

} // namespace unit

#endif // UNIT_MODELS_MODELZOO_H
