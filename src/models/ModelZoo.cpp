//===- models/ModelZoo.cpp -------------------------------------------------===//

#include "models/ModelZoo.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace unit;

namespace {

ConvLayer conv(const std::string &Name, int64_t InC, int64_t HW, int64_t OutC,
               int64_t K, int64_t Stride, int64_t Pad) {
  ConvLayer L;
  L.Name = Name;
  L.InC = InC;
  L.InH = L.InW = HW;
  L.OutC = OutC;
  L.KH = L.KW = K;
  L.Stride = Stride;
  L.PadH = L.PadW = Pad;
  return L;
}

ConvLayer convRect(const std::string &Name, int64_t InC, int64_t HW,
                   int64_t OutC, int64_t KH, int64_t KW, int64_t PadH,
                   int64_t PadW) {
  ConvLayer L;
  L.Name = Name;
  L.InC = InC;
  L.InH = L.InW = HW;
  L.OutC = OutC;
  L.KH = KH;
  L.KW = KW;
  L.Stride = 1;
  L.PadH = PadH;
  L.PadW = PadW;
  return L;
}

ConvLayer dwConv(const std::string &Name, int64_t C, int64_t HW,
                 int64_t Stride) {
  ConvLayer L = conv(Name, C, HW, C, 3, Stride, 1);
  L.Depthwise = true;
  return L;
}

/// Shared ResNet stem: 7x7/2 then (after the 3x3/2 maxpool) 56x56x64.
void addResnetStem(Model &M) {
  M.addConv(conv("conv0", 3, 224, 64, 7, 2, 3));
}

/// One basic block (two 3x3 convs) + optional downsample.
void addBasicBlock(Model &M, const std::string &Name, int64_t InC, int64_t HW,
                   int64_t OutC, int64_t Stride) {
  M.addConv(conv(Name + ".conv1", InC, HW, OutC, 3, Stride, 1));
  M.addConv(conv(Name + ".conv2", OutC, HW / Stride, OutC, 3, 1, 1));
  if (Stride != 1 || InC != OutC)
    M.addConv(conv(Name + ".down", InC, HW, OutC, 1, Stride, 0));
}

/// One bottleneck block (1x1, 3x3, 1x1). \p StrideOn3x3 selects the v1b
/// variant (paper §V.C's resnet-50_v1b).
void addBottleneck(Model &M, const std::string &Name, int64_t InC, int64_t HW,
                   int64_t Mid, int64_t OutC, int64_t Stride,
                   bool StrideOn3x3) {
  int64_t S1 = StrideOn3x3 ? 1 : Stride;
  int64_t S2 = StrideOn3x3 ? Stride : 1;
  M.addConv(conv(Name + ".conv1", InC, HW, Mid, 1, S1, 0));
  M.addConv(conv(Name + ".conv2", Mid, HW / S1, Mid, 3, S2, 1));
  M.addConv(conv(Name + ".conv3", Mid, HW / Stride, OutC, 1, 1, 0));
  if (Stride != 1 || InC != OutC)
    M.addConv(conv(Name + ".down", InC, HW, OutC, 1, Stride, 0));
}

Model makeResnetBottleneck(const std::string &Name,
                           const std::vector<int> &BlocksPerStage,
                           bool StrideOn3x3) {
  Model M;
  M.Name = Name;
  addResnetStem(M);
  int64_t HW = 56, InC = 64;
  const int64_t Mids[4] = {64, 128, 256, 512};
  for (int Stage = 0; Stage < 4; ++Stage) {
    int64_t Mid = Mids[Stage], OutC = Mid * 4;
    for (int B = 0; B < BlocksPerStage[static_cast<size_t>(Stage)]; ++B) {
      int64_t Stride = (Stage > 0 && B == 0) ? 2 : 1;
      addBottleneck(M, formatStr("s%d.b%d", Stage + 1, B), InC, HW, Mid, OutC,
                    Stride, StrideOn3x3);
      HW /= Stride;
      InC = OutC;
    }
  }
  M.addDense("fc", 2048, 1000);
  return M;
}

/// BN-Inception module. Channel vector: {1x1, 3x3reduce, 3x3, dbl3x3reduce,
/// dbl3x3a, dbl3x3b, poolproj}; zero disables a branch. \p Stride 2 drops
/// the 1x1 and pool-proj branches (grid reduction modules).
void addInceptionBnModule(Model &M, const std::string &Name, int64_t InC,
                          int64_t HW, const std::vector<int64_t> &Ch,
                          int64_t Stride) {
  int64_t OutHW = HW / Stride;
  if (Ch[0] > 0)
    M.addConv(conv(Name + ".1x1", InC, HW, Ch[0], 1, 1, 0));
  M.addConv(conv(Name + ".3x3r", InC, HW, Ch[1], 1, 1, 0));
  M.addConv(conv(Name + ".3x3", Ch[1], HW, Ch[2], 3, Stride, 1));
  M.addConv(conv(Name + ".d3x3r", InC, HW, Ch[3], 1, 1, 0));
  M.addConv(conv(Name + ".d3x3a", Ch[3], HW, Ch[4], 3, 1, 1));
  M.addConv(conv(Name + ".d3x3b", Ch[4], HW, Ch[5], 3, Stride, 1));
  if (Ch[6] > 0)
    M.addConv(conv(Name + ".proj", InC, OutHW, Ch[6], 1, 1, 0));
}

} // namespace

Model unit::makeResnet18() {
  Model M;
  M.Name = "resnet-18";
  addResnetStem(M);
  addBasicBlock(M, "s1.b0", 64, 56, 64, 1);
  addBasicBlock(M, "s1.b1", 64, 56, 64, 1);
  addBasicBlock(M, "s2.b0", 64, 56, 128, 2);
  addBasicBlock(M, "s2.b1", 128, 28, 128, 1);
  addBasicBlock(M, "s3.b0", 128, 28, 256, 2);
  addBasicBlock(M, "s3.b1", 256, 14, 256, 1);
  addBasicBlock(M, "s4.b0", 256, 14, 512, 2);
  addBasicBlock(M, "s4.b1", 512, 7, 512, 1);
  M.addDense("fc", 512, 1000);
  return M;
}

Model unit::makeResnet18Wide() {
  Model M;
  M.Name = "resnet-18-wide";
  addResnetStem(M);
  addBasicBlock(M, "s1.b0", 64, 56, 64, 1);
  addBasicBlock(M, "s1.b1", 64, 56, 64, 1);
  addBasicBlock(M, "s2.b0", 64, 56, 128, 2);
  addBasicBlock(M, "s2.b1", 128, 28, 128, 1);
  addBasicBlock(M, "s3.b0", 128, 28, 256, 2);
  addBasicBlock(M, "s3.b1", 256, 14, 256, 1);
  // Only the last stage differs from makeResnet18(): 512 -> 640.
  addBasicBlock(M, "s4.b0", 256, 14, 640, 2);
  addBasicBlock(M, "s4.b1", 640, 7, 640, 1);
  M.addDense("fc", 640, 1000);
  return M;
}

Model unit::makeResnet50() {
  return makeResnetBottleneck("resnet-50", {3, 4, 6, 3},
                              /*StrideOn3x3=*/false);
}

Model unit::makeResnet50V1b() {
  return makeResnetBottleneck("resnet-50_v1b", {3, 4, 6, 3},
                              /*StrideOn3x3=*/true);
}

Model unit::makeResnet101() {
  return makeResnetBottleneck("resnet-101", {3, 4, 23, 3},
                              /*StrideOn3x3=*/false);
}

Model unit::makeResnet152() {
  return makeResnetBottleneck("resnet-152", {3, 8, 36, 3},
                              /*StrideOn3x3=*/false);
}

Model unit::makeInceptionBN() {
  Model M;
  M.Name = "inception-bn";
  M.addConv(conv("conv1", 3, 224, 64, 7, 2, 3));       // 112
  M.addConv(conv("conv2red", 64, 56, 64, 1, 1, 0));    // after pool
  M.addConv(conv("conv2", 64, 56, 192, 3, 1, 1));
  // 28x28 modules.
  addInceptionBnModule(M, "3a", 192, 28, {64, 64, 64, 64, 96, 96, 32}, 1);
  addInceptionBnModule(M, "3b", 256, 28, {64, 64, 96, 64, 96, 96, 64}, 1);
  addInceptionBnModule(M, "3c", 320, 28, {0, 128, 160, 64, 96, 96, 0}, 2);
  // 14x14 modules.
  addInceptionBnModule(M, "4a", 576, 14, {224, 64, 96, 96, 128, 128, 128}, 1);
  addInceptionBnModule(M, "4b", 576, 14, {192, 96, 128, 96, 128, 128, 128}, 1);
  addInceptionBnModule(M, "4c", 576, 14, {160, 128, 160, 128, 160, 160, 128},
                       1);
  addInceptionBnModule(M, "4d", 608, 14, {96, 128, 192, 160, 192, 192, 128},
                       1);
  addInceptionBnModule(M, "4e", 608, 14, {0, 128, 192, 192, 256, 256, 0}, 2);
  // 7x7 modules.
  addInceptionBnModule(M, "5a", 1056, 7, {352, 192, 320, 160, 224, 224, 128},
                       1);
  addInceptionBnModule(M, "5b", 1024, 7, {352, 192, 320, 192, 224, 224, 128},
                       1);
  M.addDense("fc", 1024, 1000);
  return M;
}

Model unit::makeInceptionV3() {
  Model M;
  M.Name = "inception-v3";
  M.addConv(conv("conv0", 3, 299, 32, 3, 2, 0));    // 149
  M.addConv(conv("conv1", 32, 149, 32, 3, 1, 0));   // 147
  M.addConv(conv("conv2", 32, 147, 64, 3, 1, 1));   // 147, then pool -> 73
  M.addConv(conv("conv3", 64, 73, 80, 1, 1, 0));    // 73
  M.addConv(conv("conv4", 80, 73, 192, 3, 1, 0));   // 71, then pool -> 35

  // Mixed 5b/5c/5d at 35x35 (in 192/256/288).
  auto Mixed5 = [&](const std::string &Name, int64_t InC, int64_t Proj) {
    M.addConv(conv(Name + ".1x1", InC, 35, 64, 1, 1, 0));
    M.addConv(conv(Name + ".5x5r", InC, 35, 48, 1, 1, 0));
    M.addConv(conv(Name + ".5x5", 48, 35, 64, 5, 1, 2));
    M.addConv(conv(Name + ".d3x3r", InC, 35, 64, 1, 1, 0));
    M.addConv(conv(Name + ".d3x3a", 64, 35, 96, 3, 1, 1));
    M.addConv(conv(Name + ".d3x3b", 96, 35, 96, 3, 1, 1));
    M.addConv(conv(Name + ".proj", InC, 35, Proj, 1, 1, 0));
  };
  Mixed5("5b", 192, 32);
  Mixed5("5c", 256, 64);
  Mixed5("5d", 288, 64);

  // Mixed 6a: grid reduction 35 -> 17 (Table I workload #1 lives here).
  M.addConv(conv("6a.3x3", 288, 35, 384, 3, 2, 0));
  M.addConv(conv("6a.d3x3r", 288, 35, 64, 1, 1, 0));
  M.addConv(conv("6a.d3x3a", 64, 35, 96, 3, 1, 1));
  M.addConv(conv("6a.d3x3b", 96, 35, 96, 3, 2, 0));

  // Mixed 6b..6e at 17x17 with factorized 7x1/1x7 branches.
  auto Mixed6 = [&](const std::string &Name, int64_t C7) {
    int64_t InC = 768;
    M.addConv(conv(Name + ".1x1", InC, 17, 192, 1, 1, 0));
    M.addConv(conv(Name + ".7x7r", InC, 17, C7, 1, 1, 0));
    M.addConv(convRect(Name + ".1x7", C7, 17, C7, 1, 7, 0, 3));
    M.addConv(convRect(Name + ".7x1", C7, 17, 192, 7, 1, 3, 0));
    M.addConv(conv(Name + ".d7x7r", InC, 17, C7, 1, 1, 0));
    M.addConv(convRect(Name + ".d7x1a", C7, 17, C7, 7, 1, 3, 0));
    M.addConv(convRect(Name + ".d1x7a", C7, 17, C7, 1, 7, 0, 3));
    M.addConv(convRect(Name + ".d7x1b", C7, 17, C7, 7, 1, 3, 0));
    M.addConv(convRect(Name + ".d1x7b", C7, 17, 192, 1, 7, 0, 3));
    M.addConv(conv(Name + ".proj", InC, 17, 192, 1, 1, 0));
  };
  Mixed6("6b", 128);
  Mixed6("6c", 160);
  Mixed6("6d", 160);
  Mixed6("6e", 192);

  // Mixed 7a: grid reduction 17 -> 8.
  M.addConv(conv("7a.3x3r", 768, 17, 192, 1, 1, 0));
  M.addConv(conv("7a.3x3", 192, 17, 320, 3, 2, 0));
  M.addConv(conv("7a.7x7r", 768, 17, 192, 1, 1, 0));
  M.addConv(convRect("7a.1x7", 192, 17, 192, 1, 7, 0, 3));
  M.addConv(convRect("7a.7x1", 192, 17, 192, 7, 1, 3, 0));
  M.addConv(conv("7a.3x3b", 192, 17, 192, 3, 2, 0));

  // Mixed 7b/7c at 8x8 (in 1280/2048).
  auto Mixed7 = [&](const std::string &Name, int64_t InC) {
    M.addConv(conv(Name + ".1x1", InC, 8, 320, 1, 1, 0));
    M.addConv(conv(Name + ".3x3r", InC, 8, 384, 1, 1, 0));
    M.addConv(convRect(Name + ".1x3", 384, 8, 384, 1, 3, 0, 1));
    M.addConv(convRect(Name + ".3x1", 384, 8, 384, 3, 1, 1, 0));
    M.addConv(conv(Name + ".d3x3r", InC, 8, 448, 1, 1, 0));
    M.addConv(conv(Name + ".d3x3", 448, 8, 384, 3, 1, 1));
    M.addConv(convRect(Name + ".d1x3", 384, 8, 384, 1, 3, 0, 1));
    M.addConv(convRect(Name + ".d3x1", 384, 8, 384, 3, 1, 1, 0));
    M.addConv(conv(Name + ".proj", InC, 8, 192, 1, 1, 0));
  };
  Mixed7("7b", 1280);
  Mixed7("7c", 2048);

  M.addDense("fc", 2048, 1000);
  return M;
}

Model unit::makeMobilenetV1() {
  Model M;
  M.Name = "mobilenet-v1";
  M.addConv(conv("conv0", 3, 224, 32, 3, 2, 1));
  struct Step {
    int64_t OutC, Stride;
  };
  const Step Steps[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                        {512, 1}, {1024, 2}, {1024, 1}};
  int64_t C = 32, HW = 112;
  int Idx = 0;
  for (const Step &S : Steps) {
    M.addConv(dwConv(formatStr("dw%d", Idx), C, HW, S.Stride));
    HW /= S.Stride;
    M.addConv(conv(formatStr("pw%d", Idx), C, HW, S.OutC, 1, 1, 0));
    C = S.OutC;
    ++Idx;
  }
  M.addDense("fc", 1024, 1000);
  return M;
}

Model unit::makeMobilenetV2() {
  Model M;
  M.Name = "mobilenet-v2";
  M.addConv(conv("conv0", 3, 224, 32, 3, 2, 1));
  struct Block {
    int64_t T, C, N, S;
  };
  const Block Blocks[] = {{1, 16, 1, 1},  {6, 24, 2, 2}, {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1}, {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  int64_t C = 32, HW = 112;
  int Idx = 0;
  for (const Block &B : Blocks) {
    for (int64_t N = 0; N < B.N; ++N) {
      int64_t Stride = N == 0 ? B.S : 1;
      int64_t Expanded = C * B.T;
      if (B.T != 1)
        M.addConv(conv(formatStr("b%d.expand", Idx), C, HW, Expanded, 1, 1, 0));
      M.addConv(dwConv(formatStr("b%d.dw", Idx), Expanded, HW, Stride));
      HW /= Stride;
      M.addConv(conv(formatStr("b%d.project", Idx), Expanded, HW, B.C, 1, 1, 0));
      C = B.C;
      ++Idx;
    }
  }
  M.addConv(conv("conv_last", 320, 7, 1280, 1, 1, 0));
  M.addDense("fc", 1280, 1000);
  return M;
}

std::vector<Model> unit::paperModels() {
  return {makeResnet18(),    makeResnet50(),   makeResnet50V1b(),
          makeInceptionBN(), makeInceptionV3(), makeResnet101(),
          makeResnet152(),   makeMobilenetV1(), makeMobilenetV2()};
}

std::vector<Conv3dLayer> unit::makeResnet18Conv3d() {
  // Lift each distinct resnet-18 conv to 3-D: the square spatial grid
  // becomes a cube with edge ~ the square root (clamped to >= kernel),
  // mirroring the paper's manual conversion.
  std::vector<Conv3dLayer> Out;
  Model R18 = makeResnet18();
  int Idx = 0;
  for (const ConvLayer &L : R18.Convs) {
    if (L.KH != L.KW || L.InH == 1)
      continue; // Skip the dense layer.
    Conv3dLayer C3;
    C3.Name = formatStr("res18-3d.%d", Idx++);
    C3.InC = L.InC;
    int64_t Edge = 4;
    while (Edge * Edge < L.InH)
      Edge += 2;
    C3.InD = C3.InH = C3.InW = Edge;
    C3.OutC = L.OutC;
    C3.K = L.KH;
    C3.Stride = L.Stride;
    C3.Pad = L.PadH;
    Out.push_back(C3);
  }
  return Out;
}
