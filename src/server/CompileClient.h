//===- server/CompileClient.h - Compile-server client library -------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the compile-server protocol (docs/SERVER.md): a
/// blocking, single-connection handle that frames requests, awaits the
/// matching response, and decodes it back into runtime types. One request
/// is in flight per client at a time (the protocol is strictly
/// request/response); concurrency comes from connecting more clients —
/// the server's shared session deduplicates their isomorphic work.
///
/// Every typed call returns std::nullopt / false on failure and fills the
/// optional \p Err out-param with either the transport error or the
/// server's error-message payload. request() is the raw escape hatch the
/// tests use to exercise malformed traffic.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SERVER_COMPILECLIENT_H
#define UNIT_SERVER_COMPILECLIENT_H

#include "server/Protocol.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace unit {

class CompileClient {
public:
  CompileClient() = default;
  ~CompileClient();

  CompileClient(const CompileClient &) = delete;
  CompileClient &operator=(const CompileClient &) = delete;

  /// Connects to the server's Unix socket. Does not send hello.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends one request frame and reads the matching response frame.
  std::optional<Json> request(const Json &Request, std::string *Err = nullptr);

  /// hello handshake; \p MaxCandidates > 0 registers a per-client tuning
  /// budget the server will clamp every later request to. Returns the
  /// welcome message (server name, protocol version, cache fingerprint).
  std::optional<Json> hello(const std::string &ClientName,
                            int MaxCandidates = 0, std::string *Err = nullptr);

  struct CompileResult {
    KernelReport Report;
    bool Cached = false; ///< Served from a pre-existing ready entry.
  };
  std::optional<CompileResult> compileConv(const std::string &Target,
                                           const ConvLayer &Layer,
                                           const CompileOptions &Options = {},
                                           std::string *Err = nullptr);
  std::optional<CompileResult> compileConv3d(const std::string &Target,
                                             const Conv3dLayer &Layer,
                                             const CompileOptions &Options = {},
                                             std::string *Err = nullptr);
  std::optional<CompileResult> compileDense(const std::string &Target,
                                            const std::string &Name,
                                            int64_t In, int64_t Out,
                                            const CompileOptions &Options = {},
                                            std::string *Err = nullptr);

  struct ModelResult {
    std::string ModelName;
    std::vector<KernelReport> Layers;
    size_t DistinctShapes = 0;
    size_t CacheHitLayers = 0;
    double ServerWallSeconds = 0; ///< Compile wall time inside the server.
  };
  std::optional<ModelResult> compileModel(const std::string &Target,
                                          const Model &M,
                                          const CompileOptions &Options = {},
                                          std::string *Err = nullptr);

  /// One backend the server advertises (the list_targets message): its
  /// target id, description, conv3d capability, spec hash, and
  /// instruction names.
  struct TargetInfo {
    std::string Id;
    std::string Description;
    bool SupportsConv3d = false;
    std::string SpecHash;
    std::vector<std::string> Intrinsics;
  };
  /// Asks the server which targets it can compile for — how a client
  /// discovers backends instead of hard-coding an id list.
  std::optional<std::vector<TargetInfo>> listTargets(std::string *Err =
                                                         nullptr);

  /// The server's stats_result message (left as Json: the schema is the
  /// protocol's, docs/SERVER.md; \p Detail adds per-entry cache bytes).
  std::optional<Json> stats(bool Detail = false, std::string *Err = nullptr);

  /// Asks the server to persist its cache; returns entries written.
  std::optional<size_t> saveCache(const std::string &Path = "",
                                  std::string *Err = nullptr);

  /// Sends shutdown and awaits bye. The server stops accepting after its
  /// owner observes the request; this connection is closed either way.
  bool shutdownServer(std::string *Err = nullptr);

private:
  /// request() + error-response unwrapping + expected-type check.
  std::optional<Json> roundTrip(const Json &Request, const char *ExpectType,
                                std::string *Err);
  /// The shared compile envelope: every compile* method encodes its
  /// workload and funnels through here.
  std::optional<CompileResult> compileWorkload(const std::string &Target,
                                               Json WorkloadJson,
                                               const CompileOptions &Options,
                                               std::string *Err);
  std::optional<CompileResult> decodeResult(const Json &Response,
                                            std::string *Err);

  int Fd = -1;
  uint64_t NextId = 1;
};

} // namespace unit

#endif // UNIT_SERVER_COMPILECLIENT_H
