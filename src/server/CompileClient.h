//===- server/CompileClient.h - Compile-server client library -------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the compile-server protocol (docs/SERVER.md): a
/// single-connection handle that frames requests, awaits replies, and
/// decodes them back into runtime types. A background reader thread owns
/// the receive side of the socket: replies are handed to whichever call
/// is awaiting one, and pushed streaming notifications ("result" frames
/// keyed by ticket) resolve the matching submit() future the moment they
/// arrive — which is what lets one connection keep many compiles in
/// flight at once.
///
/// Two ways to compile:
///   - blocking: compileConv / compileConv3d / compileDense /
///     compileModel — one request, one reply, strictly serialized;
///   - streaming: submitConv / submitConv3d / submitDense (or
///     submitModelLayers, which pipelines a whole model's submissions
///     before collecting any reply) return an AsyncHandle whose future
///     resolves when the server pushes the result — out of order with
///     respect to submission is the norm. wait()/waitAll() join;
///     cancel() drops a pending ticket's delivery; poll() asks the
///     server whether a ticket is still pending.
///
/// The connection can optionally heal itself: setAutoReconnect() makes
/// the reader redial the socket on EOF and resubmit every unresolved
/// ticket (tickets are server-assigned, so replay is invisible to
/// wait()/waitAll() — the new tickets land on the existing futures).
///
/// Threading: the request-issuing methods (everything that writes to the
/// socket) must be called from one thread at a time; wait()/waitAll()
/// only touch futures and may be called from anywhere. Every typed call
/// returns std::nullopt / false on failure and fills the optional \p Err
/// out-param with either the transport error or the server's
/// error-message payload. request() is the raw escape hatch the tests
/// use to exercise malformed traffic.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SERVER_COMPILECLIENT_H
#define UNIT_SERVER_COMPILECLIENT_H

#include "server/Protocol.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace unit {

class CompileClient {
public:
  CompileClient() = default;
  ~CompileClient();

  CompileClient(const CompileClient &) = delete;
  CompileClient &operator=(const CompileClient &) = delete;

  /// Connects to the server's Unix socket and starts the reader thread.
  /// Does not send hello.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);

  /// Fabric connect: tries \p Endpoints in order until one accepts, and
  /// remembers the whole list for failover. An endpoint is a Unix socket
  /// path (recognized by shape: "/...", "./...", "../...") or a TCP
  /// "host:port" / "[v6addr]:port"; TCP dials answer the server's
  /// shared-secret challenge with \p Secret (fabric/Handshake.h — the
  /// secret itself never crosses the wire). With setAutoReconnect() on,
  /// a dead connection fails over: the reader redials *across the list*,
  /// starting after the endpoint that died, and resubmits every
  /// unresolved ticket — so a daemon loss resolves the original futures
  /// against its fleet sibling.
  bool connect(const std::vector<std::string> &Endpoints,
               const std::string &Secret, std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd.load() >= 0; }

  /// Opt-in transparent reconnect. When enabled and the reader hits EOF
  /// (server restarted, connection dropped), it redials the same socket
  /// path — up to \p MaxAttempts tries, \p RetryDelayMillis apart —
  /// replays the hello handshake, and resubmits every unresolved ticket.
  /// Tickets are server-assigned, so replay is a protocol detail: the new
  /// tickets are remapped onto the existing futures and wait()/waitAll()
  /// resolve as if nothing happened. What is NOT transparent: request/
  /// reply exchanges in flight *during* the drop fail with a transport
  /// error (their replies died with the old connection — resubmit those
  /// by hand), and cancel()/poll() on a pre-reconnect AsyncHandle target
  /// the old ticket number, which the new server connection does not
  /// know. Enable before submitting work; off by default so failures
  /// stay loud in tools that want them loud.
  void setAutoReconnect(bool Enable, int MaxAttempts = 10,
                        int RetryDelayMillis = 50);

  /// Tickets replayed onto a new connection by auto-reconnect so far.
  uint64_t resubmittedTickets() const { return ResubmittedCount.load(); }

  /// Sends one request frame and reads the matching response frame
  /// (notifications that arrive in between are dispatched to their
  /// tickets, never returned here).
  std::optional<Json> request(const Json &Request, std::string *Err = nullptr);

  /// hello handshake; \p MaxCandidates > 0 registers a per-client tuning
  /// budget the server will clamp every later request to. Returns the
  /// welcome message (server name, protocol version, streaming flag,
  /// cache fingerprint).
  std::optional<Json> hello(const std::string &ClientName,
                            int MaxCandidates = 0, std::string *Err = nullptr);

  struct CompileResult {
    KernelReport Report;
    bool Cached = false; ///< Served from a pre-existing ready entry.
    /// Delivery sequence on this connection (1 = first notification the
    /// reader saw); 0 for blocking results. Lets callers observe
    /// out-of-order completion without timestamping.
    uint64_t Arrival = 0;
  };
  std::optional<CompileResult> compileConv(const std::string &Target,
                                           const ConvLayer &Layer,
                                           const CompileOptions &Options = {},
                                           std::string *Err = nullptr);
  std::optional<CompileResult> compileConv3d(const std::string &Target,
                                             const Conv3dLayer &Layer,
                                             const CompileOptions &Options = {},
                                             std::string *Err = nullptr);
  std::optional<CompileResult> compileDense(const std::string &Target,
                                            const std::string &Name,
                                            int64_t In, int64_t Out,
                                            const CompileOptions &Options = {},
                                            std::string *Err = nullptr);

  //===--------------------------------------------------------------------===//
  // Streaming (compile_async / result notifications)
  //===--------------------------------------------------------------------===//

  /// Handle on one submitted compile: the server-assigned ticket plus a
  /// future the reader thread resolves when the result notification
  /// lands. Copyable; all copies observe the same result.
  struct AsyncHandle {
    uint64_t Ticket = 0;
    std::shared_future<CompileResult> Fut;
    bool valid() const { return Fut.valid(); }
    bool ready() const {
      return Fut.valid() && Fut.wait_for(std::chrono::seconds(0)) ==
                                std::future_status::ready;
    }
  };

  std::optional<AsyncHandle> submitConv(const std::string &Target,
                                        const ConvLayer &Layer,
                                        const CompileOptions &Options = {},
                                        std::string *Err = nullptr);
  std::optional<AsyncHandle> submitConv3d(const std::string &Target,
                                          const Conv3dLayer &Layer,
                                          const CompileOptions &Options = {},
                                          std::string *Err = nullptr);
  std::optional<AsyncHandle> submitDense(const std::string &Target,
                                         const std::string &Name, int64_t In,
                                         int64_t Out,
                                         const CompileOptions &Options = {},
                                         std::string *Err = nullptr);

  /// Pipelined batch submission: writes one compile_async frame per conv
  /// layer of \p M back-to-back, then collects the submitted replies —
  /// no per-layer round-trip stall, which is what makes a warm model zoo
  /// stream at socket speed. Handles are index-aligned with M.Convs.
  std::optional<std::vector<AsyncHandle>>
  submitModelLayers(const std::string &Target, const Model &M,
                    const CompileOptions &Options = {},
                    std::string *Err = nullptr);

  /// Blocks until \p Handle's result lands; nullopt + \p Err when the
  /// compile failed, the ticket was cancelled, or the connection died.
  std::optional<CompileResult> wait(const AsyncHandle &Handle,
                                    std::string *Err = nullptr);

  /// Waits for every not-yet-waited, not-cancelled submission on this
  /// connection. Returns false (first failure in \p Err) if any ticket
  /// failed; the rest are still joined.
  bool waitAll(std::string *Err = nullptr);

  /// Asks the server to drop \p Handle's delivery (the compile itself
  /// runs to completion inside the shared session). The local future
  /// fails with "cancelled"; waitAll() no longer waits for it.
  bool cancel(const AsyncHandle &Handle, std::string *Err = nullptr);

  /// The server's view of \p Handle: "pending" or "resolved".
  std::optional<std::string> poll(const AsyncHandle &Handle,
                                  std::string *Err = nullptr);

  /// Tickets submitted but not yet resolved by a notification.
  size_t pendingTickets() const;

  struct ModelResult {
    std::string ModelName;
    std::vector<KernelReport> Layers;
    size_t DistinctShapes = 0;
    size_t CacheHitLayers = 0;
    double ServerWallSeconds = 0; ///< Compile wall time inside the server.
  };
  std::optional<ModelResult> compileModel(const std::string &Target,
                                          const Model &M,
                                          const CompileOptions &Options = {},
                                          std::string *Err = nullptr);

  /// One backend the server advertises (the list_targets message): its
  /// target id, description, conv3d capability, spec hash, and
  /// instruction names.
  struct TargetInfo {
    std::string Id;
    std::string Description;
    bool SupportsConv3d = false;
    std::string SpecHash;
    /// Where the spec came from: "builtin", "file" (--target-spec), or
    /// "wire" (register_target). Pre-provenance servers read as builtin.
    std::string Source = "builtin";
    std::vector<std::string> Intrinsics;
  };
  /// Asks the server which targets it can compile for — how a client
  /// discovers backends instead of hard-coding an id list.
  std::optional<std::vector<TargetInfo>> listTargets(std::string *Err =
                                                         nullptr);

  /// The server's acknowledgement of a register_target message.
  struct RegisteredTarget {
    std::string Id;
    std::string SpecHash;
    std::string Source;
  };
  /// Registers \p SpecDoc (a target-spec JSON document, the same schema
  /// `unit_serve --target-spec` loads) on the running daemon. The server
  /// validates all-or-nothing and replies with an error frame naming the
  /// offending JSON path on rejection; TCP servers refuse the message on
  /// unauthenticated connections.
  std::optional<RegisteredTarget> registerTarget(const Json &SpecDoc,
                                                 std::string *Err = nullptr);

  /// The server's stats_result message (left as Json: the schema is the
  /// protocol's, docs/SERVER.md; \p Detail adds per-entry cache bytes).
  std::optional<Json> stats(bool Detail = false, std::string *Err = nullptr);

  /// The server's metrics message: latency histogram snapshots (cold /
  /// warm / join compile, frame round-trip, peer fetch RTT, tuner
  /// per-candidate cost) as Json — docs/OBSERVABILITY.md has the schema.
  std::optional<Json> metrics(std::string *Err = nullptr);

  /// The server's dump_trace message: every live span as Chrome
  /// trace-event JSON (the "trace" field loads directly into
  /// chrome://tracing / Perfetto).
  std::optional<Json> dumpTrace(std::string *Err = nullptr);

  /// Asks the server to persist its cache; returns entries written.
  std::optional<size_t> saveCache(const std::string &Path = "",
                                  std::string *Err = nullptr);

  /// Sends shutdown and awaits bye. The server stops accepting after its
  /// owner observes the request; this connection is closed either way.
  bool shutdownServer(std::string *Err = nullptr);

private:
  /// A result notification the reader saw before the submitted reply
  /// registered its ticket (the server resolves warm hits fast enough
  /// for this to be routine under pipelined submission).
  struct EarlyNote {
    Json Frame;
    uint64_t Arrival = 0;
  };

  /// request() + error-response unwrapping + expected-type check.
  std::optional<Json> roundTrip(const Json &Request, const char *ExpectType,
                                std::string *Err);
  /// The shared compile envelope: every compile* method encodes its
  /// workload and funnels through here.
  std::optional<CompileResult> compileWorkload(const std::string &Target,
                                               Json WorkloadJson,
                                               const CompileOptions &Options,
                                               std::string *Err);
  std::optional<AsyncHandle> submitWorkload(const std::string &Target,
                                            Json WorkloadJson,
                                            const CompileOptions &Options,
                                            std::string *Err);
  Json makeCompileMessage(const char *Type, const std::string &Target,
                          Json WorkloadJson, const CompileOptions &Options);
  std::optional<CompileResult> decodeResult(const Json &Response,
                                            std::string *Err);

  /// Dials one endpoint string (Unix path or TCP host:port, including
  /// the auth handshake for TCP). Returns the connected fd or -1.
  int dialEndpoint(const std::string &Ep, std::string *Err);

  /// Write side of request(): frames one message onto the socket.
  bool sendRequest(const Json &Request, std::string *Err);
  /// Read side of request(): pops the next *reply* frame the reader
  /// queued (blocking; fails when the reader died).
  std::optional<Json> awaitReply(std::string *Err);
  /// Registers \p Ticket from a submitted reply, claiming any notification
  /// that raced ahead of it. \p RequestMsg is the original compile_async
  /// frame, retained while the ticket is pending so auto-reconnect can
  /// resubmit it verbatim.
  AsyncHandle registerTicket(uint64_t Ticket, Json RequestMsg);
  /// Resolves one submit future from its notification frame.
  static void resolveTicket(std::promise<CompileResult> &P, const Json &Note,
                            uint64_t Arrival);

  void readerLoop();
  /// Fails every outstanding ticket and reply waiter (reader exit path).
  void failAllPending(const std::string &Why);
  /// Reader-thread reconnect: redial, re-hello, resubmit every pending
  /// ticket, remap the new server tickets onto the existing promises.
  /// Returns true when the reader should keep reading (on the new fd);
  /// false hands the exit back to failAllPending. \p Why is the transport
  /// error that killed the old connection (for failure messages).
  bool tryReconnect(const std::string &Why);

  /// Mutated by the reader on reconnect while user threads write frames,
  /// hence atomic; retired descriptors are shut down but only ::close()d
  /// in close(), so a concurrent writer can never hit a recycled fd.
  std::atomic<int> Fd{-1};
  uint64_t NextId = 1;

  /// One queued reply: the parsed frame, or the parse error when the
  /// peer sent a syntactically broken frame (a real server never does; a
  /// test harness might) — kept in one queue so replies stay in order.
  struct QueuedReply {
    std::optional<Json> Frame;
    std::string Err;
  };

  std::thread Reader;
  mutable std::mutex Mu; ///< Guards everything below.
  std::condition_variable ReplyCv;
  std::deque<QueuedReply> Replies; ///< Non-notification frames, in order.
  bool ReaderExited = false;
  std::string ReaderExitReason;
  std::unordered_map<uint64_t, std::shared_ptr<std::promise<CompileResult>>>
      Tickets;
  std::unordered_map<uint64_t, EarlyNote> Unclaimed;
  std::vector<AsyncHandle> Outstanding; ///< For waitAll; pruned by cancel.
  uint64_t ArrivalCounter = 0;
  /// Original compile_async frame per pending ticket — the reconnect
  /// replay buffer. Entries live exactly as long as their Tickets entry.
  std::unordered_map<uint64_t, Json> TicketRequests;
  /// Auto-reconnect configuration (setAutoReconnect; read by the reader).
  bool AutoReconnect = false;
  int ReconnectAttempts = 10;
  int ReconnectDelayMillis = 50;
  /// Every endpoint connect() was given, in failover order; reconnects
  /// cycle through it starting after CurrentEndpoint (the one in use).
  std::vector<std::string> EndpointList;
  std::string FabricSecret; ///< For TCP auth on (re)dials.
  size_t CurrentEndpoint = 0;
  std::string ConnectedPath; ///< Endpoint in use; set by connect().
  Json HelloMsg;             ///< Last successful hello, replayed on redial.
  bool HelloSent = false;
  /// Set by close() (under Mu, paired with the reader's commit check) so
  /// a reconnect can never install a fresh fd after close() decided which
  /// fd to shut down — the join would deadlock otherwise.
  std::atomic<bool> ShuttingDown{false};
  std::vector<int> RetiredFds; ///< Dead fds awaiting close()'s ::close.
  std::atomic<uint64_t> ResubmittedCount{0};
};

} // namespace unit

#endif // UNIT_SERVER_COMPILECLIENT_H
