//===- server/RemoteEngine.h - InferenceEngine over the compile server ----===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-as-client path: an InferenceEngine whose kernel reports come
/// from a CompileServer over the socket instead of an in-process
/// CompilerSession. Glue traffic, dispatch overheads, and fusion quality
/// are priced locally from the same machine model the in-process
/// UnitCpuEngine uses, so for the same machine + target,
/// modelLatencySeconds over a RemoteCpuEngine equals the in-process
/// number exactly (the whole stack is deterministic) — asserted in
/// tests/test_server.cpp.
///
/// prefetch(model) pipelines one compile_async submission per distinct
/// layer shape and returns without joining — the same overlap the
/// in-process engines get from CompilerSession::compileAsync. The server
/// tunes the shapes concurrently and pushes each result as it lands; the
/// per-layer convSeconds calls during pricing join the matching future
/// (already resolved by then in the common case) instead of paying a
/// compile round trip each.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SERVER_REMOTEENGINE_H
#define UNIT_SERVER_REMOTEENGINE_H

#include "graph/Executor.h"
#include "server/CompileClient.h"

#include <string>
#include <unordered_map>

namespace unit {

/// UNIT on a dot-product CPU, compiled by a remote CompileServer.
class RemoteCpuEngine : public InferenceEngine {
  CompileClient Client;
  CpuMachine Machine;
  std::string Target;
  /// ConvLayer::shapeKey -> modeled seconds. The shape key is a strictly
  /// finer partition than the server's canonical cache key, so memoizing
  /// locally is sound (same reasoning as CpuBackend's key memo).
  std::unordered_map<std::string, double> SecondsByShape;
  /// Shapes submitted by prefetch whose results have not been priced yet;
  /// convSeconds joins the future and moves the number to SecondsByShape.
  std::unordered_map<std::string, CompileClient::AsyncHandle> PendingByShape;

public:
  RemoteCpuEngine(CpuMachine Machine, std::string Target)
      : Machine(std::move(Machine)), Target(std::move(Target)) {}

  /// Connects and sends hello; \p MaxCandidates > 0 registers this
  /// engine's per-client tuning budget with the server.
  bool connect(const std::string &SocketPath, const std::string &ClientName,
               int MaxCandidates = 0, std::string *Err = nullptr);

  std::string name() const override;
  double convSeconds(const ConvLayer &Layer) override;
  void prefetch(const Model &M) override;
  double perOpOverheadSeconds() const override { return 4e-6; }
  double fusionQuality() const override { return 1.0; }
  double glueBytesPerSecond() const override {
    return cpuGlueBytesPerSecond(Machine);
  }

  CompileClient &client() { return Client; }
};

} // namespace unit

#endif // UNIT_SERVER_REMOTEENGINE_H
