//===- server/CompileServer.h - Cross-model batch compile daemon ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer over CompilerSession: one daemon accepting many
/// clients on a Unix-domain socket (length-prefixed JSON messages, see
/// docs/SERVER.md), all sharing one session — so isomorphic layers of
/// concurrently submitted models single-flight onto one tuner run, and a
/// model one client already compiled is a pure cache hit for the next.
/// The *session*, not a model, is the unit of deployment.
///
/// Admission control: each compile request carries CompileOptions
/// (priority orders batch submission inside the session pool), and each
/// client may be capped to a per-client tuning budget at hello time; the
/// server clamps every request's MaxCandidates to the client's cap and
/// the server-wide cap, whichever is tighter.
///
/// Streaming: compile_async answers with a ticket immediately and the
/// result is pushed later as a notification, so one connection pipelines
/// many compiles. Each connection keeps a ticket table and a frame-level
/// write mutex that multiplexes notifications (written by session pool
/// workers as jobs resolve, in completion order) with ordinary replies
/// (written by the connection thread). Delivery of a ticket's
/// notification is deferred until its submitted reply has hit the wire,
/// so a client never learns a result before the ticket that names it;
/// cancel drops a pending ticket's delivery (the underlying cache entry,
/// shared with other clients, always completes); poll reports liveness.
///
/// Persistence: when configured with a cache file the server loads it at
/// start (warm restart: zero tuner invocations for known kernels), saves
/// it periodically while compiles are happening, and saves once more on
/// graceful shutdown.
///
/// Shutdown is orderly: stop() (or a client's shutdown message followed
/// by the owner calling stop()) closes the listener, lets every in-flight
/// request finish and deliver its response, quiesces the session's async
/// jobs, persists, and only then returns.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SERVER_COMPILESERVER_H
#define UNIT_SERVER_COMPILESERVER_H

#include "fabric/PeerManager.h"
#include "runtime/CompilerSession.h"
#include "server/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace unit {

struct ServerConfig {
  /// Unix-domain socket path the daemon listens on. Required. Kept short
  /// (sun_path is ~100 bytes); an existing stale socket file is replaced.
  std::string SocketPath;

  /// Kernel-cache persistence file; empty disables persistence.
  std::string CacheFile;

  /// Seconds between periodic cache saves (only when compiles happened
  /// since the last save); <= 0 disables the periodic thread — the cache
  /// is then saved only on graceful shutdown.
  double PersistIntervalSeconds = 30.0;

  /// Server-wide tuning-budget cap applied to every request
  /// (<= 0 = unlimited). Per-client caps from hello tighten it further.
  int MaxCandidatesCap = 0;

  /// TCP listen endpoint ("host:port", "[v6addr]:port", or ":port";
  /// port 0 = OS-assigned, discoverable via tcpPort()). Empty = Unix
  /// socket only. Requires a non-empty Secret — every TCP connection is
  /// gated by the shared-secret challenge handshake before its first
  /// request frame.
  std::string TcpListen;

  /// Shared secret for the fabric handshake (fabric/Handshake.h). Never
  /// crosses the wire; required when TcpListen or Peers are set.
  std::string Secret;

  /// Peer daemon endpoints ("host:port") to exchange tuned-kernel cache
  /// entries with (fabric/PeerManager.h). Peers whose persistence
  /// fingerprint differs exchange nothing, by design.
  std::vector<std::string> Peers;

  /// Test hook: the fingerprint announced to / compared against peers
  /// instead of CompilerSession::persistenceFingerprint(). Lets tests
  /// prove the mismatch path without faking a whole divergent target
  /// registry.
  std::string PeerFingerprintOverride;

  /// Byte cap on one bulk peer cache exchange (fetch_cache with no key
  /// list). 0 = the PeerManager default.
  size_t MaxPeerExchangeBytes = 4u << 20;

  /// Compile-lifecycle tracing (docs/OBSERVABILITY.md): when enabled the
  /// server owns a TraceRecorder, installs it process-wide for the span
  /// instrumentation in session/tuner/fabric, and serves `dump_trace`.
  /// Off costs nothing; on costs one ring write per span.
  bool TraceEnabled = true;

  /// Byte budget of each writer thread's trace ring (drop-oldest).
  size_t TraceBytesPerThread = 256 * 1024;

  /// When set, stop() writes the final trace as Chrome trace-event JSON
  /// here (the --trace-out flag) — load it in Perfetto.
  std::string TraceOutFile;

  /// Compiles (blocking or streaming) whose server-side wall time is at
  /// least this many milliseconds get a one-line span digest on stderr;
  /// <= 0 disables the slow log.
  double SlowCompileMillis = 0;

  /// The session to serve. Null = the server constructs a private one
  /// from SessionCfg (the common daemon case; tests pass their own).
  std::shared_ptr<CompilerSession> Session;
  SessionConfig SessionCfg;
};

class CompileServer {
public:
  explicit CompileServer(ServerConfig Config);
  ~CompileServer();

  CompileServer(const CompileServer &) = delete;
  CompileServer &operator=(const CompileServer &) = delete;

  /// Binds + listens + starts the accept loop (and the persist thread
  /// when configured). Loads CacheFile first when present. Returns false
  /// with \p Err filled on socket errors.
  bool start(std::string *Err = nullptr);

  /// Graceful shutdown; idempotent and safe to call concurrently from
  /// any thread that is not a connection handler — late callers block
  /// until the teardown in progress completes (so a destructor racing an
  /// explicit stop() never destroys members still in use). See file
  /// comment for the ordering.
  void stop();

  bool running() const { return Running.load(); }

  /// Blocks until a client sends a shutdown message, stop() runs, or
  /// \p InterruptFlag (when non-null, e.g. wired to SIGINT) becomes
  /// non-zero. The caller still calls stop() afterwards.
  void waitForShutdownRequest(
      const volatile std::sig_atomic_t *InterruptFlag = nullptr);

  CompilerSession &session() { return *Session; }
  const std::string &socketPath() const { return Config.SocketPath; }

  /// The port the TCP listener is bound to (0 when TcpListen is unset).
  /// With "--listen-tcp host:0" this is where the OS-assigned port
  /// becomes known — tests and supervisors read it instead of racing a
  /// log line.
  uint16_t tcpPort() const { return BoundTcpPort; }

  /// Outcome of start()'s CacheFile load — lets the host warn when a
  /// warm-start file was rejected (corrupted, or written under another
  /// machine/tuner fingerprint) instead of starting cold in silence.
  const KernelCache::LoadResult &cacheLoadResult() const { return CacheLoad; }

  /// Lifetime totals (also surfaced through the stats message).
  struct Totals {
    uint64_t Connections = 0;
    uint64_t Requests = 0;
    /// Kernels this server actually compiled (race-free, from the
    /// compile itself): cache hits and single-flight joins of another
    /// client's in-flight compile never count.
    uint64_t CompiledKernels = 0;
    uint64_t Errors = 0; ///< Error responses sent.
  };
  Totals totals() const;

private:
  /// Everything the server tracks about one client name: admission cap
  /// and latency accounting. Kept by name across reconnects.
  struct ClientStats {
    int MaxCandidatesCap = 0; ///< <= 0 = uncapped (beyond the server cap).
    uint64_t Requests = 0;
    uint64_t CompileRequests = 0;
    uint64_t LayersRequested = 0;
    uint64_t LayersFromCache = 0;
    double TotalSeconds = 0; ///< Wall time spent serving this client.
    double MaxSeconds = 0;
  };

  /// One pending (or resolved-but-unannounced) compile_async ticket.
  struct TicketState {
    /// True once the submitted reply naming this ticket has been written.
    /// A job that resolves earlier parks its payload in Deferred instead
    /// of writing — the client must never see a result for a ticket it
    /// has not been told about.
    bool Announced = false;
    /// The notification frame of a job that resolved pre-announce.
    std::string Deferred;
  };

  struct Connection {
    int Fd = -1;
    /// TCP connections must pass the shared-secret challenge before
    /// their first request frame; Unix connections skip it (filesystem
    /// permissions on the socket path are their gate).
    bool NeedsAuth = false;
    /// Set once the challenge succeeds. Handlers that mutate global
    /// state (register_target) re-check NeedsAuth implies Authed as
    /// defense in depth, so a dispatch-path regression fails closed.
    bool Authed = false;
    /// From hello; connections that never introduce themselves share the
    /// "(anonymous)" stats bucket — per-connection names would grow the
    /// Clients map without bound on a daemon serving short connections.
    std::string ClientName;
    std::thread Thread;
    std::atomic<bool> Done{false};

    /// One frame at a time on Fd: the connection thread's replies and the
    /// pool workers' pushed notifications interleave at frame granularity
    /// behind this, never mid-frame.
    std::mutex WriteMu;

    /// Ticket table (guarded by TicketMu). A ticket lives here from
    /// compile_async until its notification is delivered or it is
    /// cancelled; UnresolvedJobs counts completion callbacks not yet
    /// fired (cancelled tickets included — the session job still runs),
    /// and TicketCv wakes the drain that keeps this Connection alive
    /// until the last callback referencing it has finished.
    std::mutex TicketMu;
    std::condition_variable TicketCv;
    uint64_t NextTicket = 1;
    std::map<uint64_t, TicketState> Tickets;
    size_t UnresolvedJobs = 0;
  };

  /// One accept loop per listener: the Unix socket and (when configured)
  /// the TCP listener each run this on their own thread. \p RequireAuth
  /// marks accepted connections for the handshake gate.
  void acceptLoop(int ListenerFd, bool RequireAuth);
  void serveConnection(Connection &Conn);
  void persistLoop();
  /// Joins and closes finished connections. Called from the accept loop
  /// on every new connection *and* on fd exhaustion — finished fds are
  /// closed only here and in stop(), and freeing them is what gets
  /// accept() past EMFILE.
  void reapFinishedConnections();

  /// Sets ShutdownRequested and wakes waitForShutdownRequest() and the
  /// persist thread — the one place the signaling sequence lives.
  void requestShutdown();

  /// Dispatches one request; returns the response message and sets
  /// \p CloseAfter for shutdown and \p AnnounceTicket for compile_async
  /// (the ticket whose deferred notification becomes deliverable once
  /// the response is on the wire). Compile paths may throw (backends and
  /// bad_alloc propagate through the cache by design) — serveConnection
  /// wraps the call in an exception barrier that turns the failure into
  /// an error response instead of terminating the daemon.
  Json handleRequest(Connection &Conn, const Json &Request, bool &CloseAfter,
                     uint64_t &AnnounceTicket);
  Json handleHello(Connection &Conn, const Json &Request);
  Json handleCompile(Connection &Conn, const Json &Request);
  Json handleCompileAsync(Connection &Conn, const Json &Request,
                          uint64_t &AnnounceTicket);
  Json handleCancel(Connection &Conn, const Json &Request);
  Json handlePoll(Connection &Conn, const Json &Request);
  Json handleCompileModel(Connection &Conn, const Json &Request);
  Json handleListTargets(const Json &Request);
  Json handleRegisterTarget(Connection &Conn, const Json &Request);
  Json handleStats(const Json &Request);
  Json handleSaveCache(const Json &Request);
  /// Observability handlers (docs/OBSERVABILITY.md): `metrics` serves
  /// every latency-histogram family; `dump_trace` serves the recorder's
  /// current contents as Chrome trace-event JSON.
  Json handleMetrics(const Json &Request);
  Json handleDumpTrace(const Json &Request);
  /// Peer exchange handlers (docs/SERVER.md, "Fleet"). A fingerprint
  /// mismatch answers with zero entries / zero accepted — an empty
  /// exchange, not an error, so mixed fleets degrade to independence.
  Json handleFetchCache(const Json &Request);
  Json handlePushCache(const Json &Request);

  /// The fingerprint peer exchange is keyed on (the override, or the
  /// session's persistence fingerprint).
  std::string peerFingerprint() const;

  /// Decodes target/workload/options out of a compile or compile_async
  /// request (the shared half of the two handlers). On failure returns
  /// false with \p ErrorReply filled.
  bool parseCompileRequest(Connection &Conn, const Json &Request,
                           std::optional<CompileRequest> &Out,
                           Json &ErrorReply);

  /// Writes one frame to \p Conn under its write mutex. A false return
  /// means the peer is gone; callers drop the frame (the read loop will
  /// notice on its side).
  bool writeToConnection(Connection &Conn, const std::string &Payload);

  /// Marks \p Ticket announced and delivers its notification if the job
  /// already resolved. Called by serveConnection right after writing the
  /// submitted reply.
  void announceTicket(Connection &Conn, uint64_t Ticket);

  /// The completion hook for one streaming job: delivers (or defers) the
  /// notification, does the stats/persistence accounting, and signals the
  /// connection drain. Runs on a session pool worker.
  void finishTicket(Connection &Conn, uint64_t Ticket, double SubmitSeconds,
                    CachePolicy Policy, const KernelReport *Report,
                    std::exception_ptr Error, bool Computed);

  /// Clamps \p Requested through the client's and the server's budget
  /// caps (tightest positive cap wins; <= 0 stays "full space" only when
  /// no cap applies).
  int effectiveBudget(const std::string &ClientName, int Requested) const;

  /// The stats bucket for \p ClientName, bounded: hello names are
  /// caller-controlled, so past MaxClientBuckets distinct names new ones
  /// fold into one "(overflow)" bucket instead of growing the map (and
  /// every stats response) without bound over a daemon's uptime.
  /// StatsMu must be held.
  ClientStats &clientSlotLocked(const std::string &ClientName);

  Json errorResponse(const Json &Request, const std::string &Message);
  void recordServed(Connection &Conn, double Seconds, uint64_t Layers,
                    uint64_t FromCache, uint64_t FreshKernels,
                    bool IsCompile);

  ServerConfig Config;
  std::shared_ptr<CompilerSession> Session;

  int ListenFd = -1;
  /// TCP side of the fabric (−1 when TcpListen is unset); its own accept
  /// thread feeds the same serveConnection, behind the handshake gate.
  int TcpListenFd = -1;
  uint16_t BoundTcpPort = 0;
  std::thread TcpAcceptThread;
  /// Peer cache exchange (null when no --peer endpoints).
  std::unique_ptr<PeerManager> PeerMgr;
  /// flock()-held for the server's lifetime ("<socket>.lock"): the
  /// authoritative claim on the socket path. The connect()-probe in
  /// start() only produces a nicer message; the lock is what prevents
  /// two daemons racing a stale socket from both binding (and stop()
  /// from unlinking a replacement's live socket).
  int LockFd = -1;
  std::thread AcceptThread;
  std::thread PersistThread;
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  /// Serializes stop() so a second caller returns only after teardown
  /// finished, not while it is in progress.
  std::mutex StopMu;

  mutable std::mutex ConnMu;
  std::vector<std::unique_ptr<Connection>> Connections;

  mutable std::mutex StatsMu;
  std::map<std::string, ClientStats> Clients; ///< Ordered => stable stats.
  Totals Lifetime;
  double StartSeconds = 0;
  /// From start(); see cacheLoadResult(). Initialized to FileNotFound
  /// (LoadResult's own default is BadFormat, which would read as a
  /// corruption warning on a server configured without a cache file).
  KernelCache::LoadResult CacheLoad{KernelCache::LoadStatus::FileNotFound, 0};

  std::mutex ShutdownMu;
  std::condition_variable ShutdownCv;
  bool ShutdownRequested = false;

  /// Serializes cache saves: the persist thread, save_cache handlers,
  /// and stop() must never write one file concurrently (saveFile is
  /// atomic per call via tmp+rename, but interleaved renames would
  /// still race on which snapshot wins).
  std::mutex SaveMu;

  /// Compiles completed since the last persist (persist thread trigger).
  std::atomic<uint64_t> CompilesSinceSave{0};

  /// Streaming lifetime counters (surfaced in the stats message's
  /// "streaming" object; atomics because notifications complete on pool
  /// workers, not the stats-serving thread).
  std::atomic<uint64_t> TicketsIssued{0};
  std::atomic<uint64_t> NotificationsDelivered{0};
  std::atomic<uint64_t> TicketsCancelled{0};

  /// Fabric lifetime counters (the stats message's "fabric" object).
  std::atomic<uint64_t> AuthFailures{0};
  std::atomic<uint64_t> PeerFetchesServed{0};
  std::atomic<uint64_t> PeerPushesServed{0};
  std::atomic<uint64_t> PeerEntriesServed{0};
  std::atomic<uint64_t> PeerEntriesAccepted{0};

  /// Request-frame round trip (read -> reply written), all request
  /// types — the unit_frame_seconds metrics family.
  obs::LatencyHistogram FrameLatencyHist;

  /// The trace recorder behind every span this process records while the
  /// server runs (installed as the process-wide active recorder in
  /// start(), uninstalled in stop()). Null when TraceEnabled is false.
  std::unique_ptr<obs::TraceRecorder> Trace;
};

} // namespace unit

#endif // UNIT_SERVER_COMPILESERVER_H
