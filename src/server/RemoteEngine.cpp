//===- server/RemoteEngine.cpp ---------------------------------------------===//

#include "server/RemoteEngine.h"

#include "support/ErrorHandling.h"

using namespace unit;

bool RemoteCpuEngine::connect(const std::string &SocketPath,
                              const std::string &ClientName,
                              int MaxCandidates, std::string *Err) {
  if (!Client.connect(SocketPath, Err))
    return false;
  return Client.hello(ClientName, MaxCandidates, Err).has_value();
}

std::string RemoteCpuEngine::name() const {
  return "UNIT (" + Target + ", remote)";
}

double RemoteCpuEngine::convSeconds(const ConvLayer &Layer) {
  const std::string ShapeKey = Layer.shapeKey();
  auto It = SecondsByShape.find(ShapeKey);
  if (It != SecondsByShape.end())
    return It->second;
  // A prefetch()ed shape: join its pushed result (usually already in —
  // the server compiled while this engine priced earlier layers).
  auto Pending = PendingByShape.find(ShapeKey);
  if (Pending != PendingByShape.end()) {
    std::string Err;
    std::optional<CompileClient::CompileResult> Result =
        Client.wait(Pending->second, &Err);
    if (!Result)
      reportFatalError("remote compile of '" + Layer.Name + "' failed: " +
                       Err);
    PendingByShape.erase(Pending);
    SecondsByShape.emplace(ShapeKey, Result->Report.Seconds);
    return Result->Report.Seconds;
  }
  std::string Err;
  std::optional<CompileClient::CompileResult> Result =
      Client.compileConv(Target, Layer, {}, &Err);
  if (!Result)
    reportFatalError("remote compile of '" + Layer.Name + "' failed: " + Err);
  SecondsByShape.emplace(ShapeKey, Result->Report.Seconds);
  return Result->Report.Seconds;
}

void RemoteCpuEngine::prefetch(const Model &M) {
  // Streaming submission, no join: one compile_async per distinct
  // unknown shape, results pushed while the caller goes on pricing —
  // remote prefetch overlaps exactly like the in-process engines'
  // compileAsync prefetch does.
  std::string Err;
  for (const ConvLayer &L : M.Convs) {
    const std::string ShapeKey = L.shapeKey();
    if (SecondsByShape.count(ShapeKey) || PendingByShape.count(ShapeKey))
      continue;
    std::optional<CompileClient::AsyncHandle> Handle =
        Client.submitConv(Target, L, {}, &Err);
    if (!Handle)
      reportFatalError("remote prefetch of model '" + M.Name + "' failed: " +
                       Err);
    PendingByShape.emplace(ShapeKey, std::move(*Handle));
  }
}
