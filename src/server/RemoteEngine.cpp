//===- server/RemoteEngine.cpp ---------------------------------------------===//

#include "server/RemoteEngine.h"

#include "support/ErrorHandling.h"

using namespace unit;

bool RemoteCpuEngine::connect(const std::string &SocketPath,
                              const std::string &ClientName,
                              int MaxCandidates, std::string *Err) {
  if (!Client.connect(SocketPath, Err))
    return false;
  return Client.hello(ClientName, MaxCandidates, Err).has_value();
}

std::string RemoteCpuEngine::name() const {
  return "UNIT (" + Target + ", remote)";
}

double RemoteCpuEngine::convSeconds(const ConvLayer &Layer) {
  auto It = SecondsByShape.find(Layer.shapeKey());
  if (It != SecondsByShape.end())
    return It->second;
  std::string Err;
  std::optional<CompileClient::CompileResult> Result =
      Client.compileConv(Target, Layer, {}, &Err);
  if (!Result)
    reportFatalError("remote compile of '" + Layer.Name + "' failed: " + Err);
  SecondsByShape.emplace(Layer.shapeKey(), Result->Report.Seconds);
  return Result->Report.Seconds;
}

void RemoteCpuEngine::prefetch(const Model &M) {
  std::string Err;
  std::optional<CompileClient::ModelResult> Result =
      Client.compileModel(Target, M, {}, &Err);
  if (!Result)
    reportFatalError("remote compile of model '" + M.Name + "' failed: " +
                     Err);
  for (size_t I = 0; I < M.Convs.size() && I < Result->Layers.size(); ++I)
    SecondsByShape.emplace(M.Convs[I].shapeKey(), Result->Layers[I].Seconds);
}
