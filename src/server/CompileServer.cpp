//===- server/CompileServer.cpp --------------------------------------------===//

#include "server/CompileServer.h"

#include "fabric/Handshake.h"
#include "obs/Build.h"
#include "runtime/CompileRequest.h"
#include "runtime/Workload.h"
#include "target/MachineOverlay.h"
#include "target/SpecFile.h"
#include "target/TargetRegistry.h"
#include "tuner/Tuner.h"

#include "support/Time.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace unit;

namespace {

/// Shown in stats detail: enough of a canonical structural key to
/// recognize the kernel without shipping (or copying under the cache
/// mutex) the whole serialization.
constexpr size_t MaxShownKeyBytes = 72;

/// Distinct named stats buckets a daemon keeps before folding new names
/// into "(overflow)" (names are caller-controlled wire input).
constexpr size_t MaxClientBuckets = 1024;

/// Concurrent connections the daemon serves. One thread + one fd each;
/// without a cap, stalled peers pin them until fd exhaustion makes even
/// the shutdown message unreachable. Excess connections are accepted
/// and immediately closed (the client sees EOF).
constexpr size_t MaxConnections = 256;

/// One line per compile slower than the operator's --slow-compile-ms
/// threshold: enough of a digest to find the request in a trace dump
/// without grepping for it. Ticket 0 marks the blocking compile path.
void logSlowCompile(double ThresholdMillis, double Seconds,
                    const std::string &Client, uint64_t Ticket,
                    const char *Kind, const KernelReport *Report) {
  double Millis = Seconds * 1e3;
  if (ThresholdMillis <= 0 || Millis < ThresholdMillis)
    return;
  std::fprintf(stderr,
               "unit slow-compile: %.1f ms client=%s ticket=%llu kind=%s "
               "candidates=%d intrinsic=%s\n",
               Millis, Client.c_str(),
               static_cast<unsigned long long>(Ticket), Kind,
               Report ? Report->CandidatesTried : -1,
               Report && !Report->IntrinsicName.empty()
                   ? Report->IntrinsicName.c_str()
                   : "(none)");
}

} // namespace

CompileServer::CompileServer(ServerConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      Session(Config.Session
                  ? Config.Session
                  : std::make_shared<CompilerSession>(Config.SessionCfg)) {}

CompileServer::~CompileServer() { stop(); }

bool CompileServer::start(std::string *Err) {
  // Releases every resource this call acquired; flock drops with the fd.
  auto FailMsg = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (TcpListenFd >= 0) {
      ::close(TcpListenFd);
      TcpListenFd = -1;
      BoundTcpPort = 0;
    }
    if (LockFd >= 0) {
      ::close(LockFd);
      LockFd = -1;
    }
    PeerMgr.reset();
    return false;
  };
  auto Fail = [&](const std::string &Msg) {
    return FailMsg(Msg + " (" + std::strerror(errno) + ")");
  };

  if (Running.load()) {
    if (Err)
      *Err = "server already running";
    return false;
  }
  sockaddr_un Addr;
  if (!makeUnixSocketAddr(Config.SocketPath, Addr, Err))
    return false;

  // Claim the path first: a lifetime flock on "<path>.lock" is the
  // authoritative ownership of the socket name. Without it, two daemons
  // racing a *stale* socket can both pass the liveness probe below,
  // and the loser's unlink orphans the winner's freshly bound socket.
  LockFd = ::open((Config.SocketPath + ".lock").c_str(),
                  O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (LockFd < 0)
    return Fail("open(" + Config.SocketPath + ".lock) failed");
  if (::flock(LockFd, LOCK_EX | LOCK_NB) != 0)
    return FailMsg("another server owns " + Config.SocketPath +
                   " (lock held on its .lock file)");

  // Replace a *stale socket* only: anything else at the path (a mistyped
  // --socket pointing at a real file) must never be deleted, and if
  // something answers on the path a daemon is alive there — silently
  // unlinking its socket would orphan it (reachable by nobody, still
  // holding the cache). With the lock held this is belt-and-braces plus
  // a clearer error message.
  struct stat PathStat;
  if (::lstat(Config.SocketPath.c_str(), &PathStat) == 0) {
    if (!S_ISSOCK(PathStat.st_mode))
      return FailMsg(Config.SocketPath + " exists and is not a socket");
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Probe >= 0) {
      bool Alive = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                             sizeof(Addr)) == 0;
      ::close(Probe);
      if (Alive)
        return FailMsg("a server is already listening on " +
                       Config.SocketPath);
    }
    ::unlink(Config.SocketPath.c_str()); // Stale (nothing answered).
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket() failed");
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind(" + Config.SocketPath + ") failed");
  if (::listen(ListenFd, 64) < 0)
    return Fail("listen() failed");

  // The fabric's TCP side: an unauthenticated TCP listener would expose
  // the whole compile surface (including shutdown and cache pushes) to
  // the network, so a secret is mandatory with either TCP feature.
  if ((!Config.TcpListen.empty() || !Config.Peers.empty()) &&
      Config.Secret.empty())
    return FailMsg("--listen-tcp/--peer require a shared secret "
                   "(ServerConfig::Secret / --secret-file)");
  if (!Config.TcpListen.empty()) {
    std::string ParseErr;
    std::optional<Endpoint> Listen = parseEndpoint(Config.TcpListen, &ParseErr);
    if (!Listen)
      return FailMsg("bad --listen-tcp endpoint: " + ParseErr);
    TcpListenFd = listenTcp(*Listen, &ParseErr);
    if (TcpListenFd < 0)
      return FailMsg("listen-tcp " + Config.TcpListen + ": " + ParseErr);
    BoundTcpPort = boundTcpPort(TcpListenFd);
  }
  if (!Config.Peers.empty()) {
    PeerManagerConfig PeerCfg;
    for (const std::string &Text : Config.Peers) {
      std::string ParseErr;
      std::optional<Endpoint> Ep = parseEndpoint(Text, &ParseErr);
      if (!Ep)
        return FailMsg("bad --peer endpoint '" + Text + "': " + ParseErr);
      PeerCfg.Peers.push_back(std::move(*Ep));
    }
    PeerCfg.Secret = Config.Secret;
    PeerCfg.Fingerprint = peerFingerprint();
    if (Config.MaxPeerExchangeBytes > 0)
      PeerCfg.MaxExchangeBytes = Config.MaxPeerExchangeBytes;
    PeerCfg.Cache = &Session->cache();
    PeerMgr = std::make_unique<PeerManager>(std::move(PeerCfg));
  }

  if (!Config.CacheFile.empty()) {
    // Sweep temp files a crashed predecessor orphaned, then warm up.
    KernelCache::removeStaleSaves(Config.CacheFile);
    CacheLoad = Session->loadCache(Config.CacheFile); // Missing file: no-op.
  }

  StartSeconds = steadyNowSeconds();
  Stopping.store(false);
  {
    std::lock_guard<std::mutex> Lock(ShutdownMu);
    ShutdownRequested = false;
  }
  // Install the trace recorder before any thread can compile: spans
  // opened on pool workers and peer threads find it through the
  // process-wide pointer (one branch when tracing is off).
  if (Config.TraceEnabled) {
    Trace = std::make_unique<obs::TraceRecorder>(Config.TraceBytesPerThread);
    obs::setActiveRecorder(Trace.get());
  }
  Running.store(true);
  // Wire the session into the fleet before any connection can compile:
  // cold winners probe peers before tuning, fresh tunes are announced.
  if (PeerMgr) {
    PeerManager *Mgr = PeerMgr.get();
    Session->setColdMissFetcher(
        [Mgr](const std::string &Key) { return Mgr->fetchMissing(Key); });
    Session->setCompileObserver(
        [Mgr](const std::string &Key, const KernelReport &Report) {
          Mgr->announce(Key, Report);
        });
    PeerMgr->start();
  }
  AcceptThread = std::thread([this] { acceptLoop(ListenFd, false); });
  if (TcpListenFd >= 0)
    TcpAcceptThread =
        std::thread([this] { acceptLoop(TcpListenFd, /*RequireAuth=*/true); });
  if (!Config.CacheFile.empty() && Config.PersistIntervalSeconds > 0)
    PersistThread = std::thread([this] { persistLoop(); });
  return true;
}

void CompileServer::stop() {
  // Late callers (e.g. a destructor racing an explicit stop()) block
  // here until the in-progress teardown completes, then no-op.
  std::lock_guard<std::mutex> StopLock(StopMu);
  if (!Running.exchange(false))
    return;
  Stopping.store(true);

  // 1. Stop intake: wake the blocked accept() and join the accept loop.
  //    (shutdown() on a listening socket waking accept() is a Linux
  //    behavior — the platform this repo builds and tests on.) The
  //    socket path is unlinked immediately, while the name still
  //    belongs to this daemon: deferring it past the (potentially long)
  //    connection drain would race a replacement daemon that correctly
  //    judged the silent socket stale and bound its own at this path.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (TcpListenFd >= 0)
    ::shutdown(TcpListenFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (TcpAcceptThread.joinable())
    TcpAcceptThread.join();
  ::close(ListenFd);
  ListenFd = -1;
  if (TcpListenFd >= 0) {
    ::close(TcpListenFd);
    TcpListenFd = -1;
    BoundTcpPort = 0;
  }
  ::unlink(Config.SocketPath.c_str());

  // 2. Unblock idle connections (threads parked in readFrame see EOF);
  //    a thread mid-request keeps its write side and delivers its
  //    response before noticing Stopping. Connection fds stay open until
  //    their threads are joined (only the reaper above and this function
  //    ever close them — and the reaper cannot run concurrently with
  //    this, the accept loop is already joined), so shutdown() can never
  //    hit a recycled descriptor.
  std::vector<std::unique_ptr<Connection>> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const auto &Conn : Connections)
      if (!Conn->Done.load())
        ::shutdown(Conn->Fd, SHUT_RD);
    ToJoin.swap(Connections);
  }
  for (const auto &Conn : ToJoin) {
    if (Conn->Thread.joinable())
      Conn->Thread.join();
    ::close(Conn->Fd);
  }

  // 3. Drain async jobs still in the session pool (prefetches etc.).
  Session->quiesce();

  // With no compiles left running, unhook the session from the fleet and
  // retire the peer links. Hook removal must precede PeerMgr teardown:
  // the session may outlive this server (tests share sessions), and a
  // dangling fetcher would call into freed memory on its next cold miss.
  if (PeerMgr) {
    Session->setColdMissFetcher(nullptr);
    Session->setCompileObserver(nullptr);
    PeerMgr->stop();
    PeerMgr.reset();
  }

  // Every span-producing thread is quiesced; uninstall the recorder
  // (CAS-guarded — a second server in this process may have replaced it)
  // and flush the requested trace dump before the recorder dies.
  if (Trace) {
    obs::clearActiveRecorder(Trace.get());
    if (!Config.TraceOutFile.empty()) {
      std::string Dump = chromeTraceJson(Trace->snapshot()).dump();
      FILE *Out = std::fopen(Config.TraceOutFile.c_str(), "w");
      if (!Out || std::fwrite(Dump.data(), 1, Dump.size(), Out) != Dump.size())
        std::fprintf(stderr,
                     "unit CompileServer: trace dump to %s failed\n",
                     Config.TraceOutFile.c_str());
      if (Out)
        std::fclose(Out);
    }
    Trace.reset();
  }

  // 4. Stop the persist thread, then take the final consistent save. A
  //    failed shutdown save means a cold restart the operator expects to
  //    be warm — say so.
  requestShutdown();
  if (PersistThread.joinable())
    PersistThread.join();
  if (!Config.CacheFile.empty()) {
    std::lock_guard<std::mutex> Lock(SaveMu);
    if (!Session->saveCache(Config.CacheFile))
      std::fprintf(stderr,
                   "unit CompileServer: final cache save to %s failed; "
                   "the next start will be cold\n",
                   Config.CacheFile.c_str());
  }

  // 5. Only now release the path claim (the .lock file itself stays —
  //    unlinking it would reopen the takeover race for a waiter already
  //    holding an open fd to it). Held through the final save so a
  //    replacement daemon cannot sweep our in-flight save temp or load
  //    the cache file before the last snapshot lands; a successor
  //    start()ing earlier fails fast with "another server owns" and its
  //    supervisor retries.
  if (LockFd >= 0) {
    ::close(LockFd);
    LockFd = -1;
  }
}

void CompileServer::requestShutdown() {
  {
    std::lock_guard<std::mutex> Lock(ShutdownMu);
    ShutdownRequested = true;
  }
  ShutdownCv.notify_all();
}

void CompileServer::waitForShutdownRequest(
    const volatile std::sig_atomic_t *InterruptFlag) {
  std::unique_lock<std::mutex> Lock(ShutdownMu);
  while (!ShutdownRequested && !Stopping.load() &&
         !(InterruptFlag && *InterruptFlag))
    ShutdownCv.wait_for(Lock, std::chrono::milliseconds(100));
}

CompileServer::Totals CompileServer::totals() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return Lifetime;
}

//===----------------------------------------------------------------------===//
// Accept / connection loops
//===----------------------------------------------------------------------===//

void CompileServer::acceptLoop(int ListenerFd, bool RequireAuth) {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenerFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stopping.load())
        break; // stop() shut the listener down.
      // Transient errors must not end the loop: the listener would stay
      // open (so replacement daemons refuse to start) while nobody
      // serves the backlog. ECONNABORTED = client gone mid-handshake;
      // EMFILE/ENFILE = fd exhaustion, back off and let connections
      // close before retrying.
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Reap before retrying: waiting for the next *successful*
        // accept to reap would deadlock — it is exactly the finished
        // connections' still-open fds keeping accept() at EMFILE.
        reapFinishedConnections();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      // Genuinely broken listener: a daemon that silently stops
      // accepting while Running would hang its owner's
      // waitForShutdownRequest() forever, reachable by nobody. Make the
      // failure loud and self-terminating.
      std::fprintf(stderr,
                   "unit CompileServer: accept() failed (%s); requesting "
                   "shutdown\n",
                   std::strerror(errno));
      requestShutdown();
      break;
    }
    // Bound response writes: a client that stops reading while a large
    // response is mid-write must not pin this connection's thread —
    // stop() joins every handler, so an unbounded write would turn one
    // stalled client into a daemon that cannot shut down.
    timeval SendTimeout;
    SendTimeout.tv_sec = 30;
    SendTimeout.tv_usec = 0;
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                 sizeof(SendTimeout));
    // Reap finished connections so a long-lived daemon doesn't
    // accumulate joined-out threads (or their fds).
    reapFinishedConnections();
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      if (Connections.size() >= MaxConnections) {
        ::close(Fd);
        continue;
      }
    }
    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Conn->NeedsAuth = RequireAuth;
    Conn->ClientName = "(anonymous)";
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Lifetime.Connections;
    }
    Connection *Raw = Conn.get();
    Raw->Thread = std::thread([this, Raw] { serveConnection(*Raw); });
    std::lock_guard<std::mutex> Lock(ConnMu);
    Connections.push_back(std::move(Conn));
  }
}

void CompileServer::reapFinishedConnections() {
  std::lock_guard<std::mutex> Lock(ConnMu);
  for (auto It = Connections.begin(); It != Connections.end();) {
    if ((*It)->Done.load()) {
      if ((*It)->Thread.joinable())
        (*It)->Thread.join();
      ::close((*It)->Fd);
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

void CompileServer::serveConnection(Connection &Conn) {
  // TCP connections earn their first request frame: challenge, proof,
  // auth_ok — or an error frame and EOF. The secret itself never crosses
  // the wire (fabric/Handshake.h).
  if (Conn.NeedsAuth && !runAuthChallenge(Conn.Fd, Config.Secret)) {
    AuthFailures.fetch_add(1);
    ::shutdown(Conn.Fd, SHUT_RDWR);
    Conn.Done.store(true);
    return;
  }
  Conn.Authed = true;
  std::string Payload;
  while (!Stopping.load()) {
    FrameStatus Status = readFrame(Conn.Fd, Payload);
    if (Status != FrameStatus::Ok)
      break;
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Lifetime.Requests;
    }
    // Root span of the request tree: opened before dispatch so every
    // handler span (admission, cache_resolve, ...) parents under it, and
    // scoped to the iteration so the announce write is covered too.
    double FrameT0 = steadyNowSeconds();
    obs::Span ReqSpan("request");
    bool CloseAfter = false;
    uint64_t AnnounceTicketId = 0;
    Json Response;
    std::string ParseErr;
    std::optional<Json> Request = Json::parse(Payload, &ParseErr);
    if (Request) {
      ReqSpan.annotate("type", Request->str("type").c_str());
      // Exception barrier: compiles can throw (user-registered backends,
      // bad_alloc under memory pressure — KernelCache deliberately
      // propagates them so the key stays retryable). One request's
      // failure must become one error response, never std::terminate
      // for the whole shared daemon.
      try {
        Response = handleRequest(Conn, *Request, CloseAfter, AnnounceTicketId);
      } catch (const std::exception &E) {
        Response = errorResponse(*Request,
                                 std::string("compile failed: ") + E.what());
      } catch (...) {
        Response = errorResponse(*Request, "compile failed: unknown error");
      }
    } else {
      Response = errorResponse(Json(), "malformed JSON: " + ParseErr);
    }
    std::string Dump = Response.dump();
    if (Dump.size() > MaxFrameBytes) {
      // A silently dropped connection reads as a crashed daemon; tell
      // the client its request produced an unshippable response
      // instead. Built minimal on purpose: echoing the request id here
      // could make the fallback itself oversize (ids are arbitrary
      // client JSON).
      if (Response.str("type") != "error") {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Lifetime.Errors;
      }
      Json TooBig = Json::object();
      TooBig.set("type", "error");
      TooBig.set("message", "response exceeds the frame limit; request "
                            "less at once (split the model, or drop "
                            "'detail')");
      Dump = TooBig.dump();
    }
    if (!writeToConnection(Conn, Dump))
      break;
    // Read-to-reply-written: what a synchronous client actually waited.
    FrameLatencyHist.record(steadyNowSeconds() - FrameT0);
    // Only after the submitted reply is on the wire may this ticket's
    // notification go out — the client must learn the ticket number
    // before the result that carries it.
    if (AnnounceTicketId != 0)
      announceTicket(Conn, AnnounceTicketId);
    if (CloseAfter)
      break;
  }
  // Drain streaming work before retiring: completion callbacks hold a
  // reference to this Connection, so it must outlive the last of them —
  // and this wait is also what delivers (or, with the peer gone, cleanly
  // discards) every pending ticket on shutdown: the read side may be
  // closed, but the write side stays up until the table is empty, so a
  // pipelined client never hangs on a vanished ticket.
  {
    std::unique_lock<std::mutex> Lock(Conn.TicketMu);
    Conn.TicketCv.wait(Lock, [&Conn] { return Conn.UnresolvedJobs == 0; });
    Conn.Tickets.clear();
  }
  // Tell the peer we are done *now* (EOF on its next read): the fd is
  // close()d only by whoever joins this thread (the accept loop's
  // reaper or stop() — closing here would race stop()'s shutdown() on a
  // recycled descriptor number), and that join can be arbitrarily far
  // away on an idle daemon. A double shutdown() from a racing stop() is
  // harmless.
  ::shutdown(Conn.Fd, SHUT_RDWR);
  Conn.Done.store(true);
}

bool CompileServer::writeToConnection(Connection &Conn,
                                      const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(Conn.WriteMu);
  return writeFrame(Conn.Fd, Payload);
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

Json CompileServer::errorResponse(const Json &Request,
                                  const std::string &Message) {
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Lifetime.Errors;
  }
  Json J = Json::object();
  J.set("type", "error");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("message", Message);
  return J;
}

Json CompileServer::handleRequest(Connection &Conn, const Json &Request,
                                  bool &CloseAfter, uint64_t &AnnounceTicket) {
  const std::string Type = Request.str("type");
  if (Type == "hello")
    return handleHello(Conn, Request);
  if (Type == "compile")
    return handleCompile(Conn, Request);
  if (Type == "compile_async")
    return handleCompileAsync(Conn, Request, AnnounceTicket);
  if (Type == "cancel")
    return handleCancel(Conn, Request);
  if (Type == "poll")
    return handlePoll(Conn, Request);
  if (Type == "compile_model")
    return handleCompileModel(Conn, Request);
  if (Type == "list_targets")
    return handleListTargets(Request);
  if (Type == "register_target")
    return handleRegisterTarget(Conn, Request);
  if (Type == "stats")
    return handleStats(Request);
  if (Type == "metrics")
    return handleMetrics(Request);
  if (Type == "dump_trace")
    return handleDumpTrace(Request);
  if (Type == "save_cache")
    return handleSaveCache(Request);
  if (Type == "fetch_cache")
    return handleFetchCache(Request);
  if (Type == "push_cache")
    return handlePushCache(Request);
  if (Type == "shutdown") {
    CloseAfter = true;
    requestShutdown();
    Json J = Json::object();
    J.set("type", "bye");
    if (const Json *Id = Request.get("id"))
      J.set("id", *Id);
    return J;
  }
  return errorResponse(Request, "unknown request type '" + Type + "'");
}

Json CompileServer::handleHello(Connection &Conn, const Json &Request) {
  std::string Name = Request.str("client");
  if (!Name.empty())
    Conn.ClientName = Name;
  int Cap = static_cast<int>(Request.integer("max_candidates", 0));
  bool BudgetRejected = false;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    // A budget stored in the shared overflow bucket would be silently
    // ignored (effectiveBudget looks up the real name) — fail loudly
    // instead of quietly dropping the client's admission contract.
    // (errorResponse takes StatsMu itself, so only flag it here.)
    bool WouldFold = Clients.find(Conn.ClientName) == Clients.end() &&
                     Clients.size() >= MaxClientBuckets;
    if (Cap > 0 && WouldFold) {
      BudgetRejected = true;
    } else {
      ClientStats &C = clientSlotLocked(Conn.ClientName);
      // Every hello (re)sets the cap: omitting the budget clears any
      // previously registered one, so a reconnecting client is never
      // silently stuck with a stale clamp under its name.
      C.MaxCandidatesCap = Cap > 0 ? Cap : 0;
      ++C.Requests;
    }
  }
  if (BudgetRejected)
    return errorResponse(Request,
                         "too many distinct client names to register a "
                         "per-client budget; reuse an existing name");
  Json J = Json::object();
  J.set("type", "welcome");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("server", "unit_serve");
  J.set("protocol", ProtocolVersion);
  // Capability flag, not a version bump: the streaming message family is
  // an addition, and additions are advertised, not versioned.
  J.set("streaming", true);
  // Same shape for the observability family: `metrics` and `dump_trace`
  // are additive messages, advertised rather than versioned.
  J.set("metrics", true);
  // Advertise the per-connection ticket budget so clients size their
  // pipelines from the wire instead of hardcoding the server's constant.
  J.set("max_pending_tickets",
        static_cast<int64_t>(MaxPendingTicketsPerConnection));
  J.set("fingerprint", CompilerSession::persistenceFingerprint());
  if (Config.MaxCandidatesCap > 0)
    J.set("server_max_candidates", Config.MaxCandidatesCap);
  return J;
}

CompileServer::ClientStats &
CompileServer::clientSlotLocked(const std::string &ClientName) {
  auto It = Clients.find(ClientName);
  if (It != Clients.end())
    return It->second;
  if (Clients.size() >= MaxClientBuckets)
    return Clients["(overflow)"];
  return Clients[ClientName];
}

int CompileServer::effectiveBudget(const std::string &ClientName,
                                   int Requested) const {
  int Effective = Requested;
  auto Tighten = [&Effective](int Cap) {
    if (Cap > 0 && (Effective <= 0 || Effective > Cap))
      Effective = Cap;
  };
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    auto It = Clients.find(ClientName);
    if (It != Clients.end())
      Tighten(It->second.MaxCandidatesCap);
  }
  Tighten(Config.MaxCandidatesCap);
  return Effective;
}

void CompileServer::recordServed(Connection &Conn, double Seconds,
                                 uint64_t Layers, uint64_t FromCache,
                                 uint64_t FreshKernels, bool IsCompile) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ClientStats &C = clientSlotLocked(Conn.ClientName);
  ++C.Requests;
  if (IsCompile) {
    ++C.CompileRequests;
    C.LayersRequested += Layers;
    C.LayersFromCache += FromCache;
    Lifetime.CompiledKernels += FreshKernels;
  }
  C.TotalSeconds += Seconds;
  C.MaxSeconds = std::max(C.MaxSeconds, Seconds);
}

bool CompileServer::parseCompileRequest(Connection &Conn, const Json &Request,
                                        std::optional<CompileRequest> &Out,
                                        Json &ErrorReply) {
  // Targets resolve through the registry, not a protocol-level name
  // table: a backend registered at runtime is immediately addressable.
  const std::string TargetId = Request.str("target", "x86");
  TargetBackendRef Target = TargetRegistry::instance().lookup(TargetId);
  auto Fail = [&](const std::string &Message) {
    ErrorReply = errorResponse(Request, Message);
    return false;
  };
  if (!Target)
    return Fail("unknown target '" + TargetId + "'");
  const Json *WorkloadJson = Request.get("workload");
  if (!WorkloadJson || !WorkloadJson->isObject())
    return Fail("missing 'workload' object");

  CompileOptions Options = optionsFromJson(Request.get("options"));
  Options.MaxCandidates =
      effectiveBudget(Conn.ClientName, Options.MaxCandidates);

  std::string WireErr;
  std::optional<Workload> Work;
  const std::string Kind = WorkloadJson->str("kind", "conv2d");
  if (Kind == "conv2d") {
    ConvLayer L;
    if (!convLayerFromJson(*WorkloadJson, L, WireErr))
      return Fail(WireErr);
    Work = Workload::conv2d(std::move(L));
  } else if (Kind == "dense") {
    int64_t In = 0, OutDim = 0;
    if (!readIntField(*WorkloadJson, "in", 0, In, WireErr) ||
        !readIntField(*WorkloadJson, "out", 0, OutDim, WireErr))
      return Fail(WireErr);
    if (In <= 0 || OutDim <= 0 || In > MaxWorkloadDim ||
        OutDim > MaxWorkloadDim)
      return Fail("dense requires positive 'in' and 'out' within the "
                  "supported maximum");
    Work = Workload::dense(WorkloadJson->str("name", "dense"), In, OutDim);
  } else if (Kind == "conv3d") {
    // Routing conv3d to a backend without the hook would fatal-error the
    // daemon, so gate on the backend's declared capability — new
    // registered backends are picked up without touching the server.
    if (!Target->supportsConv3d())
      return Fail("conv3d is not supported on " + TargetId);
    Conv3dLayer L;
    if (!conv3dLayerFromJson(*WorkloadJson, L, WireErr))
      return Fail(WireErr);
    Work = Workload::conv3d(std::move(L));
  } else {
    return Fail("unknown workload kind '" + Kind + "'");
  }
  Out.emplace(std::move(*Work), std::move(Target), Options);
  return true;
}

Json CompileServer::handleCompile(Connection &Conn, const Json &Request) {
  std::optional<CompileRequest> Compile;
  Json ErrorReply;
  if (!parseCompileRequest(Conn, Request, Compile, ErrorReply))
    return ErrorReply;

  // "Cached" means this request triggered no fresh compile: served by a
  // ready entry or a single-flight join of a concurrent client's
  // compile. The signal comes from the compile call itself (race-free,
  // unlike probing the cache first) — so racing clients on one cold key
  // account exactly one compiled layer between them.
  double T0 = steadyNowSeconds();
  bool Computed = false;
  KernelReport Report = Session->compile(*Compile, &Computed);
  double Seconds = steadyNowSeconds() - T0;
  logSlowCompile(Config.SlowCompileMillis, Seconds, Conn.ClientName,
                 /*Ticket=*/0, Computed ? "cold" : "warm", &Report);
  bool Cached = !Computed;
  // Dirty-flag for the persist thread — only compiles that actually
  // inserted into the cache count (Bypass computes but writes nothing).
  if (Computed && Compile->Options.Policy != CachePolicy::Bypass)
    CompilesSinceSave.fetch_add(1);
  recordServed(Conn, Seconds, /*Layers=*/1, /*FromCache=*/Cached ? 1 : 0,
               /*FreshKernels=*/Computed ? 1 : 0, /*IsCompile=*/true);

  Json J = Json::object();
  J.set("type", "result");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("cached", Cached);
  J.set("report", toJson(Report));
  return J;
}

Json CompileServer::handleCompileAsync(Connection &Conn, const Json &Request,
                                       uint64_t &AnnounceTicket) {
  // Parse + ticket issue + session submit; the dispatch's cache_resolve
  // span parents here, and the pool-side compile span links back through
  // the context the session captures at submit.
  obs::Span Adm("admission");
  std::optional<CompileRequest> Compile;
  Json ErrorReply;
  if (!parseCompileRequest(Conn, Request, Compile, ErrorReply))
    return ErrorReply;

  uint64_t Ticket = 0;
  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    if (Conn.Tickets.size() < MaxPendingTicketsPerConnection) {
      Ticket = Conn.NextTicket++;
      Conn.Tickets.emplace(Ticket, TicketState{});
      ++Conn.UnresolvedJobs;
    }
  }
  if (Ticket == 0)
    return errorResponse(Request,
                         "too many pending tickets on this connection (max " +
                             std::to_string(MaxPendingTicketsPerConnection) +
                             "); wait for results or cancel some");
  TicketsIssued.fetch_add(1);
  Adm.annotate("ticket", Ticket);

  // The callback may fire before this handler returns (a warm hit is a
  // near-immediate pool task); delivery still waits for the announce
  // below, so the wire order is always submitted-then-result.
  double T0 = steadyNowSeconds();
  CachePolicy Policy = Compile->Options.Policy;
  Session->compileAsyncThen(
      std::move(*Compile),
      [this, &Conn, Ticket, T0, Policy](const KernelReport *Report,
                                        std::exception_ptr Error,
                                        bool Computed) {
        finishTicket(Conn, Ticket, T0, Policy, Report, Error, Computed);
      });

  Json J = Json::object();
  J.set("type", "submitted");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("ticket", Ticket);
  AnnounceTicket = Ticket;
  return J;
}

void CompileServer::finishTicket(Connection &Conn, uint64_t Ticket,
                                 double SubmitSeconds, CachePolicy Policy,
                                 const KernelReport *Report,
                                 std::exception_ptr Error, bool Computed) {
  std::string Payload;
  if (Report) {
    Payload = makeResultNotification(Ticket, /*Cached=*/!Computed, *Report)
                  .dump();
  } else {
    std::string Message = "compile failed: unknown error";
    if (Error) {
      try {
        std::rethrow_exception(Error);
      } catch (const std::exception &E) {
        Message = std::string("compile failed: ") + E.what();
      } catch (...) {
      }
    }
    Payload = makeErrorNotification(Ticket, Message).dump();
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Lifetime.Errors;
  }

  // The work happened whether or not anyone still wants the answer, so
  // the accounting is unconditional; only delivery is gated on the
  // ticket's fate.
  if (Computed && Policy != CachePolicy::Bypass)
    CompilesSinceSave.fetch_add(1);
  double WallSeconds = steadyNowSeconds() - SubmitSeconds;
  logSlowCompile(Config.SlowCompileMillis, WallSeconds, Conn.ClientName,
                 Ticket,
                 !Report ? "error" : (Computed ? "cold" : "warm"), Report);
  recordServed(Conn, WallSeconds, /*Layers=*/1,
               /*FromCache=*/(Report && !Computed) ? 1 : 0,
               /*FreshKernels=*/Computed ? 1 : 0, /*IsCompile=*/true);

  bool Deliver = false;
  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    auto It = Conn.Tickets.find(Ticket);
    if (It != Conn.Tickets.end()) {
      if (It->second.Announced) {
        Conn.Tickets.erase(It);
        Deliver = true;
      } else {
        // Resolved before the submitted reply went out: park the frame;
        // announceTicket flushes it. (Cancelled tickets are already out
        // of the table — their result is simply dropped.)
        It->second.Deferred = std::move(Payload);
      }
    }
  }
  if (Deliver) {
    // Counted before the write: a client holding the pushed result must
    // never read a stats snapshot that has not counted it yet. (A failed
    // write — peer gone — still counts as a push.)
    NotificationsDelivered.fetch_add(1);
    obs::Span Write("notification_write");
    Write.annotate("ticket", Ticket);
    writeToConnection(Conn, Payload);
  }

  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    --Conn.UnresolvedJobs;
    // Notify while still holding TicketMu: the moment the drain can see
    // zero it may retire the Connection, so an unlocked notify here
    // would touch a freed condition variable.
    Conn.TicketCv.notify_all();
  }
}

void CompileServer::announceTicket(Connection &Conn, uint64_t Ticket) {
  std::string Payload;
  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    auto It = Conn.Tickets.find(Ticket);
    if (It == Conn.Tickets.end())
      return; // Cancelled between reply and announce (defensive).
    if (It->second.Deferred.empty()) {
      It->second.Announced = true; // Job still running; callback delivers.
      return;
    }
    Payload = std::move(It->second.Deferred);
    Conn.Tickets.erase(It);
  }
  NotificationsDelivered.fetch_add(1); // Before the write; see finishTicket.
  obs::Span Write("notification_write");
  Write.annotate("ticket", Ticket);
  writeToConnection(Conn, Payload);
}

Json CompileServer::handleCancel(Connection &Conn, const Json &Request) {
  uint64_t Ticket = static_cast<uint64_t>(Request.integer("ticket", 0));
  if (Ticket == 0)
    return errorResponse(Request, "cancel requires a positive 'ticket'");
  bool Known = false, WasPending = false;
  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    Known = Ticket < Conn.NextTicket;
    WasPending = Conn.Tickets.erase(Ticket) > 0;
  }
  if (!Known)
    return errorResponse(Request, "unknown ticket " + std::to_string(Ticket) +
                                      " (never issued on this connection)");
  if (WasPending)
    TicketsCancelled.fetch_add(1);
  // Cancellation is delivery-only: the session job (and the shared cache
  // entry other clients may be joining) runs to completion regardless —
  // a cancel can never corrupt or evict single-flight state.
  Json J = Json::object();
  J.set("type", "cancelled");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("ticket", Ticket);
  J.set("was_pending", WasPending);
  return J;
}

Json CompileServer::handlePoll(Connection &Conn, const Json &Request) {
  uint64_t Ticket = static_cast<uint64_t>(Request.integer("ticket", 0));
  if (Ticket == 0)
    return errorResponse(Request, "poll requires a positive 'ticket'");
  bool Known = false, Pending = false;
  {
    std::lock_guard<std::mutex> Lock(Conn.TicketMu);
    Known = Ticket < Conn.NextTicket;
    Pending = Conn.Tickets.count(Ticket) != 0;
  }
  if (!Known)
    return errorResponse(Request, "unknown ticket " + std::to_string(Ticket) +
                                      " (never issued on this connection)");
  Json J = Json::object();
  J.set("type", "ticket_status");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("ticket", Ticket);
  // "resolved" covers delivered, failed-and-delivered, and cancelled —
  // the table only distinguishes pending from gone.
  J.set("state", Pending ? "pending" : "resolved");
  return J;
}

Json CompileServer::handleCompileModel(Connection &Conn, const Json &Request) {
  const std::string TargetId = Request.str("target", "x86");
  TargetBackendRef Target = TargetRegistry::instance().lookup(TargetId);
  if (!Target)
    return errorResponse(Request, "unknown target '" + TargetId + "'");
  const Json *ModelJson = Request.get("model");
  if (!ModelJson)
    return errorResponse(Request, "missing 'model' object");
  Model M;
  std::string WireErr;
  if (!modelFromJson(*ModelJson, M, WireErr))
    return errorResponse(Request, WireErr);

  CompileOptions Options = optionsFromJson(Request.get("options"));
  Options.MaxCandidates =
      effectiveBudget(Conn.ClientName, Options.MaxCandidates);

  double T0 = steadyNowSeconds();
  ModelCompileResult Result;
  try {
    Result = Session->compileModel(M, *Target, Options);
  } catch (...) {
    // Layers compiled before the failing one are already in the cache;
    // a conservative dirty tick keeps the persist thread from skipping
    // them if the daemon later dies ungracefully.
    if (Options.Policy != CachePolicy::Bypass)
      CompilesSinceSave.fetch_add(1);
    throw; // serveConnection's barrier turns this into an error reply.
  }
  double Seconds = steadyNowSeconds() - T0;
  // Dirty-flag for the persist thread: only kernels this call actually
  // compiled changed the cache (race-free FreshCompiles, not the probed
  // hit count — and Bypass writes nothing).
  if (Options.Policy != CachePolicy::Bypass && Result.FreshCompiles > 0)
    CompilesSinceSave.fetch_add(1);
  logSlowCompile(Config.SlowCompileMillis, Seconds, Conn.ClientName,
                 /*Ticket=*/0,
                 Result.FreshCompiles > 0 ? "model" : "model-warm",
                 /*Report=*/nullptr);
  recordServed(Conn, Seconds, Result.Layers.size(), Result.CacheHitLayers,
               /*FreshKernels=*/Result.FreshCompiles, /*IsCompile=*/true);

  Json Layers = Json::array();
  for (const KernelReport &R : Result.Layers)
    Layers.push(toJson(R));
  Json J = Json::object();
  J.set("type", "model_result");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("model", M.Name);
  J.set("layers", std::move(Layers));
  J.set("distinct_shapes", Result.DistinctShapes);
  J.set("cache_hit_layers", Result.CacheHitLayers);
  J.set("wall_seconds", Result.WallSeconds);
  return J;
}

Json CompileServer::handleListTargets(const Json &Request) {
  // The registry snapshot *is* the response: backends registered after
  // the daemon started (in-process hosts can do that) appear here with
  // no server change, which is how test_extensibility proves the
  // spec-only integration story over the wire.
  Json Targets = Json::array();
  for (const TargetBackendRef &B : TargetRegistry::instance().all()) {
    Json T = Json::object();
    T.set("id", B->id());
    T.set("description", B->description());
    T.set("conv3d", B->supportsConv3d());
    T.set("spec_hash", B->specHash());
    T.set("source", specSourceName(
                        TargetRegistry::instance().specSourceFor(B->id())));
    Json Intrs = Json::array();
    for (const TensorIntrinsicRef &I : B->intrinsics())
      Intrs.push(I->name());
    T.set("intrinsics", std::move(Intrs));
    Targets.push(std::move(T));
  }
  Json J = Json::object();
  J.set("type", "targets");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("targets", std::move(Targets));
  return J;
}

Json CompileServer::handleRegisterTarget(Connection &Conn,
                                         const Json &Request) {
  // Registering a backend changes what every subsequent compile on this
  // daemon can do — operator action, not client traffic. TCP callers
  // proved the shared secret before their first frame reached dispatch;
  // this re-check makes a future dispatch-path mistake fail closed
  // instead of open.
  if (Conn.NeedsAuth && !Conn.Authed)
    return errorResponse(Request,
                         "register_target requires an authenticated "
                         "connection");
  const Json *SpecDoc = Request.get("spec");
  if (!SpecDoc || !SpecDoc->isObject())
    return errorResponse(Request,
                         "register_target needs a 'spec' object (the "
                         "target-spec JSON document, docs/BACKENDS.md)");
  if (SpecDoc->dump().size() > MaxSpecFileBytes)
    return errorResponse(Request,
                         "register_target spec exceeds the " +
                             std::to_string(MaxSpecFileBytes) +
                             "-byte spec-document limit");
  TargetSpec Spec;
  std::string Err;
  // parseSpec validates everything TargetSpec::validate() would abort
  // on, so wire input can never reach the fatal path; a rejected spec
  // leaves the registry untouched.
  if (!parseSpec(*SpecDoc, Spec, &Err))
    return errorResponse(Request, Err);
  TargetBackendRef Backend =
      TargetRegistry::instance().registerSpec(std::move(Spec),
                                              SpecSource::Wire);
  Json J = Json::object();
  J.set("type", "target_registered");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("target", Backend->id());
  J.set("spec_hash", Backend->specHash());
  J.set("source", specSourceName(SpecSource::Wire));
  return J;
}

Json CompileServer::handleStats(const Json &Request) {
  KernelCache::CacheStats CS = Session->cache().stats();
  Json Cache = Json::object();
  Cache.set("entries", CS.Entries);
  Cache.set("bytes", CS.BytesUsed);
  Cache.set("capacity", Session->cache().capacity());
  Cache.set("hits", CS.Hits);
  Cache.set("misses", CS.Misses);
  Cache.set("evictions", CS.Evictions);

  Json ClientsJson = Json::array();
  Totals Snapshot;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Snapshot = Lifetime;
    for (const auto &KV : Clients) {
      const ClientStats &C = KV.second;
      Json CJ = Json::object();
      CJ.set("client", KV.first);
      CJ.set("requests", C.Requests);
      CJ.set("compile_requests", C.CompileRequests);
      CJ.set("layers_requested", C.LayersRequested);
      CJ.set("layers_from_cache", C.LayersFromCache);
      if (C.MaxCandidatesCap > 0)
        CJ.set("max_candidates", C.MaxCandidatesCap);
      CJ.set("total_seconds", C.TotalSeconds);
      CJ.set("max_seconds", C.MaxSeconds);
      if (C.CompileRequests > 0)
        CJ.set("mean_seconds", C.TotalSeconds / C.CompileRequests);
      ClientsJson.push(std::move(CJ));
    }
  }

  Json J = Json::object();
  J.set("type", "stats_result");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("uptime_seconds", steadyNowSeconds() - StartSeconds);
  J.set("build", obs::buildString());
  J.set("pid", static_cast<int64_t>(::getpid()));
  J.set("connections", Snapshot.Connections);
  J.set("requests", Snapshot.Requests);
  J.set("compiled_kernels", Snapshot.CompiledKernels);
  J.set("errors", Snapshot.Errors);
  J.set("tuner_invocations", tunerInvocations());
  J.set("inflight_jobs", Session->inFlightJobs());
  // Continuation-engine counters: parked_joins must read 0 — a nonzero
  // value means some session path went back to blocking a pool worker on
  // a join, the regression the engine exists to prevent.
  SessionStats SS = Session->sessionStats();
  // Tuner economics (docs/TUNING.md). The process-wide counters sit next
  // to the session's transfer_seeds so one stats probe answers "is the
  // search actually being cut": pruned_candidates > 0 proves early exit
  // is biting, transfer_seeds > 0 proves warm starts are flowing, and
  // refit_active distinguishes measured machine constants from factory
  // ones. tuner_invocations stays top-level for older dashboards.
  Json Tuner = Json::object();
  Tuner.set("invocations", tunerInvocations());
  Tuner.set("candidates_scored", tunerCandidatesScored());
  Tuner.set("pruned_candidates", tunerPrunedCandidates());
  Tuner.set("transfer_seeds", SS.TransferSeeds);
  Tuner.set("refit_active", machineOverlayActive());
  J.set("tuner", std::move(Tuner));
  Json SessionJson = Json::object();
  SessionJson.set("parked_joins", SS.ParkedJoins);
  SessionJson.set("continuation_joins", SS.ContinuationJoins);
  SessionJson.set("inline_ready_hits", SS.InlineReadyHits);
  SessionJson.set("fresh_dispatches", SS.FreshDispatches);
  J.set("session", std::move(SessionJson));
  // Snapshot order is the consistency guarantee: the later-lifecycle
  // counters (delivered, cancelled) are acquire-read *before* issued.
  // Both only ever grow after an issue, so any interleaving yields
  // delivered <= issued and cancelled <= issued — a monitoring client
  // can never observe a notification for a ticket the same snapshot has
  // not issued yet.
  uint64_t Delivered = NotificationsDelivered.load(std::memory_order_acquire);
  uint64_t Cancelled = TicketsCancelled.load(std::memory_order_acquire);
  uint64_t Issued = TicketsIssued.load(std::memory_order_acquire);
  Json Streaming = Json::object();
  Streaming.set("tickets_issued", Issued);
  Streaming.set("notifications_delivered", Delivered);
  Streaming.set("tickets_cancelled", Cancelled);
  J.set("streaming", std::move(Streaming));
  // Fabric counters are always present (zeros on a Unix-only daemon) so
  // fleet dashboards need no schema probing.
  Json Fabric = Json::object();
  Fabric.set("tcp_listen", Config.TcpListen);
  Fabric.set("tcp_port", static_cast<int64_t>(BoundTcpPort));
  Fabric.set("auth_failures", AuthFailures.load());
  Fabric.set("peers_configured",
             static_cast<uint64_t>(Config.Peers.size()));
  PeerManager::Stats PS = PeerMgr ? PeerMgr->stats() : PeerManager::Stats{};
  Fabric.set("peers_connected", PS.PeersConnected);
  Fabric.set("entries_pushed", PS.EntriesPushed);
  Fabric.set("entries_fetched", PS.EntriesFetched);
  Fabric.set("fetch_hits", PS.FetchHits);
  Fabric.set("fetch_misses", PS.FetchMisses);
  Fabric.set("fetches_served", PeerFetchesServed.load());
  Fabric.set("pushes_served", PeerPushesServed.load());
  Fabric.set("entries_served", PeerEntriesServed.load());
  Fabric.set("entries_accepted", PeerEntriesAccepted.load());
  J.set("fabric", std::move(Fabric));
  J.set("cache", std::move(Cache));
  J.set("clients", std::move(ClientsJson));

  if (Request.boolean("detail", false)) {
    Json Entries = Json::array();
    for (const KernelCache::EntrySize &E :
         Session->cache().entrySizes(MaxShownKeyBytes)) {
      Json EJ = Json::object();
      EJ.set("key", E.Key);
      EJ.set("bytes", E.Bytes);
      EJ.set("ready", E.Ready);
      Entries.push(std::move(EJ));
    }
    J.set("entries", std::move(Entries));
  }
  return J;
}

Json CompileServer::handleSaveCache(const Json &Request) {
  // Wire input is untrusted: an arbitrary client-supplied path would let
  // any connection rename-replace any file the daemon user can write.
  // Saves go to the operator-configured cache file, full stop; a 'path'
  // is accepted only when it matches it.
  std::string Path = Request.str("path", Config.CacheFile);
  if (Config.CacheFile.empty())
    return errorResponse(Request, "the server has no configured cache file");
  if (Path != Config.CacheFile)
    return errorResponse(Request, "save_cache only writes the server's "
                                  "configured cache file");
  // The dirty snapshot is taken under SaveMu so racing savers cannot
  // both subtract the same ticks (an underflow would disable the
  // persist thread's idle short-circuit forever); ticks from compiles
  // finishing during the save still survive it.
  std::optional<size_t> Saved;
  {
    std::lock_guard<std::mutex> Lock(SaveMu);
    uint64_t Dirty = CompilesSinceSave.load();
    Saved = Session->saveCache(Path);
    if (Saved)
      CompilesSinceSave.fetch_sub(Dirty);
  }
  if (!Saved)
    return errorResponse(Request, "could not write '" + Path + "'");
  Json J = Json::object();
  J.set("type", "saved");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("path", Path);
  J.set("entries", *Saved);
  return J;
}

Json CompileServer::handleMetrics(const Json &Request) {
  // One frozen snapshot per family — each is internally consistent
  // (count equals the bucket sum) even while compiles are landing.
  CompilerSession::LatencySnapshots LS = Session->latencySnapshots();
  Json Hists = Json::object();
  Hists.set("unit_compile_cold_seconds", toJson(LS.Cold));
  Hists.set("unit_compile_warm_seconds", toJson(LS.Warm));
  Hists.set("unit_compile_join_seconds", toJson(LS.Join));
  Hists.set("unit_frame_seconds", toJson(FrameLatencyHist.snapshot()));
  Hists.set("unit_peer_fetch_seconds",
            toJson(PeerMgr ? PeerMgr->fetchRtt() : obs::HistogramSnapshot()));
  Hists.set("unit_tuner_candidate_seconds", toJson(tunerCandidateCost()));
  Json J = Json::object();
  J.set("type", "metrics");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("uptime_seconds", steadyNowSeconds() - StartSeconds);
  J.set("build", obs::buildString());
  J.set("histograms", std::move(Hists));
  return J;
}

Json CompileServer::handleDumpTrace(const Json &Request) {
  Json J = Json::object();
  J.set("type", "trace");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("enabled", Trace != nullptr);
  J.set("trace", chromeTraceJson(Trace ? Trace->snapshot()
                                       : std::vector<obs::TraceEvent>()));
  return J;
}

//===----------------------------------------------------------------------===//
// Peer cache exchange (the serving side of fabric/PeerManager.h)
//===----------------------------------------------------------------------===//

std::string CompileServer::peerFingerprint() const {
  return Config.PeerFingerprintOverride.empty()
             ? CompilerSession::persistenceFingerprint()
             : Config.PeerFingerprintOverride;
}

Json CompileServer::handleFetchCache(const Json &Request) {
  PeerFetchesServed.fetch_add(1);
  Json Entries = Json::array();
  size_t Count = 0;
  // Mismatched fingerprints exchange nothing — an empty reply, not an
  // error: reports are only valid between identical machine/tuner/format
  // configurations, and a mixed fleet should degrade to independent
  // daemons, not to a poisoned cache.
  if (Request.str("fingerprint") == peerFingerprint()) {
    std::vector<std::string> Keys;
    bool HasKeys = false;
    if (const Json *KeysJson = Request.get("keys")) {
      HasKeys = KeysJson->isArray();
      if (HasKeys)
        for (const Json &K : KeysJson->items())
          if (K.isString())
            Keys.push_back(K.asString());
    }
    // Targeted fetches (cold-miss probes) are never byte-capped — the
    // caller asked for specific keys; only bulk warm syncs are.
    std::vector<KernelCache::ExportedEntry> Exported =
        Session->cache().exportReady(HasKeys ? 0 : Config.MaxPeerExchangeBytes,
                                     HasKeys ? &Keys : nullptr);
    Count = Exported.size();
    for (const KernelCache::ExportedEntry &E : Exported) {
      Json EJ = Json::object();
      EJ.set("key", E.Key);
      EJ.set("report", toJson(E.Report));
      Entries.push(std::move(EJ));
    }
  }
  PeerEntriesServed.fetch_add(Count);
  Json J = Json::object();
  J.set("type", "cache_entries");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("fingerprint", peerFingerprint());
  J.set("entries", std::move(Entries));
  return J;
}

Json CompileServer::handlePushCache(const Json &Request) {
  PeerPushesServed.fetch_add(1);
  size_t Accepted = 0;
  if (Request.str("fingerprint") == peerFingerprint()) {
    std::vector<KernelCache::ExportedEntry> In;
    if (const Json *Entries = Request.get("entries"))
      if (Entries->isArray())
        for (const Json &E : Entries->items()) {
          KernelCache::ExportedEntry X;
          X.Key = E.str("key");
          const Json *ReportJson = E.get("report");
          std::string DecodeErr;
          if (X.Key.empty() || !ReportJson ||
              !kernelReportFromJson(*ReportJson, X.Report, DecodeErr))
            continue; // Malformed entries are skipped, not fatal.
          In.push_back(std::move(X));
        }
    Accepted = Session->cache().importReady(In);
    // Imported entries are cache content the persist thread has not
    // saved yet — they must survive a crash like locally tuned ones.
    if (Accepted > 0)
      CompilesSinceSave.fetch_add(1);
  }
  PeerEntriesAccepted.fetch_add(Accepted);
  Json J = Json::object();
  J.set("type", "cache_pushed");
  if (const Json *Id = Request.get("id"))
    J.set("id", *Id);
  J.set("accepted", Accepted);
  return J;
}

//===----------------------------------------------------------------------===//
// Periodic persistence
//===----------------------------------------------------------------------===//

void CompileServer::persistLoop() {
  std::unique_lock<std::mutex> Lock(ShutdownMu);
  auto Interval = std::chrono::duration<double>(Config.PersistIntervalSeconds);
  while (!ShutdownRequested && !Stopping.load()) {
    ShutdownCv.wait_for(Lock, Interval);
    if (ShutdownRequested || Stopping.load())
      break; // stop() takes the final save after joining this thread.
    // With a TTL configured, sweep expired entries on the same cadence —
    // expiry is otherwise lazy, and a long-lived daemon should release
    // dead entries' bytes even for keys nobody asks about again.
    if (Session->cache().ttlSeconds() > 0) {
      Lock.unlock();
      Session->cache().purgeExpired();
      Lock.lock();
      if (ShutdownRequested || Stopping.load())
        break;
    }
    if (CompilesSinceSave.load() == 0)
      continue;
    Lock.unlock();
    {
      // Snapshot under SaveMu (see handleSaveCache), and only a
      // successful save consumes the dirty count — a transient write
      // failure leaves it set, so the next interval retries instead of
      // silently dropping everything since the last good save.
      std::lock_guard<std::mutex> SaveLock(SaveMu);
      uint64_t Dirty = CompilesSinceSave.load();
      if (Dirty != 0 && Session->saveCache(Config.CacheFile))
        CompilesSinceSave.fetch_sub(Dirty);
    }
    Lock.lock();
  }
}
