//===- server/Protocol.h - Compile-server wire protocol -------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format CompileServer and CompileClient speak, documented for
/// humans in docs/SERVER.md: every message is one JSON object framed by a
/// 4-byte big-endian byte-length prefix. This header provides the three
/// pieces both ends share —
///
///   - Json: a minimal self-contained JSON value (parse / dump), kept
///     dependency-free on purpose (the container bakes in no JSON lib);
///   - frame I/O over a socket fd (writeFrame / readFrame, EINTR-safe,
///     bounded by MaxFrameBytes so a corrupt length prefix cannot OOM);
///   - schema codecs between protocol JSON and the runtime types
///     (ConvLayer, Conv3dLayer, Model, KernelReport, CompileOptions).
///
/// Targets cross the wire as string ids ("x86", "arm-sve", ...); the
/// server resolves them through the TargetRegistry, so a newly registered
/// spec is addressable with no protocol change, and clients discover the
/// live set with the list_targets message.
///
/// Beyond the blocking request/response pairs, the protocol has a
/// streaming mode: compile_async answers immediately with a
/// server-assigned ticket, and the compile's result is *pushed* later as
/// a notification frame — a "result" message carrying "ticket" instead of
/// "id" — when the job resolves, in completion order (out-of-order with
/// respect to submission is the norm). One connection can therefore keep
/// many compiles in flight; cancel and poll manage tickets. The
/// notification builders below keep the two ends agreeing on that frame
/// shape.
///
/// Protocol evolution: ProtocolVersion is echoed in the welcome message;
/// a client talking to a newer server must tolerate unknown response
/// fields (additions bump nothing — the streaming family and the
/// welcome's "streaming" flag are such additions), while renames/removals
/// bump the version.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_SERVER_PROTOCOL_H
#define UNIT_SERVER_PROTOCOL_H

#include "graph/Graph.h"
#include "obs/Histogram.h"
#include "obs/Trace.h"
#include "runtime/CompileOptions.h"
#include "runtime/KernelCache.h"

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <sys/un.h>

namespace unit {

/// Version of the message schema; echoed by the server's welcome.
constexpr int ProtocolVersion = 1;

/// Frames larger than this are rejected on read *and* write — a corrupt
/// length prefix must never turn into a multi-gigabyte allocation.
constexpr uint32_t MaxFrameBytes = 1u << 24;

/// Upper bound on any single workload dimension crossing the wire.
/// Generous for any real model (the largest paper-model extent is ~10^3)
/// but keeps a remote client from driving the compile pipeline — written
/// for trusted in-process callers, where fatal-error aborts are
/// acceptable — with astronomical extents.
constexpr int64_t MaxWorkloadDim = int64_t(1) << 20;

/// Pending compile_async tickets one connection may hold. Tickets are
/// wire-driven state, so they must be bounded — but since the session's
/// continuation engine made a pending join cost a table entry plus a
/// registered callback (not a parked pool thread), the bound is a memory
/// cap, not a thread cap: raised from 1024 to 8192 to let one connection
/// keep whole-fleet fan-in in flight. The welcome frame advertises it
/// (`max_pending_tickets`) so clients adapt instead of hardcoding; an
/// over-limit submission is an error frame, not a dropped connection.
constexpr size_t MaxPendingTicketsPerConnection = 8192;

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

/// A minimal JSON value. Objects preserve insertion order (deterministic
/// dumps, stable docs examples); member lookup is linear, which is fine at
/// protocol-message sizes.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Members = std::vector<std::pair<std::string, Json>>;

  Json() : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), BoolVal(B) {}
  Json(double N) : K(Kind::Number), NumVal(N) {}
  /// One template for every integer type. Fixed-width overloads would be
  /// ambiguous for size_t on platforms where it aliases neither int64_t
  /// nor uint64_t exactly (e.g. unsigned long vs. unsigned long long).
  template <typename T,
            typename std::enable_if<std::is_integral<T>::value &&
                                        !std::is_same<T, bool>::value,
                                    int>::type = 0>
  Json(T N) : K(Kind::Number), NumVal(static_cast<double>(N)) {}
  Json(std::string S) : K(Kind::String), StrVal(std::move(S)) {}
  Json(const char *S) : K(Kind::String), StrVal(S) {}

  static Json array() { Json J; J.K = Kind::Array; return J; }
  static Json object() { Json J; J.K = Kind::Object; return J; }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolVal; }
  double asNumber() const { return NumVal; }
  int64_t asInt() const { return static_cast<int64_t>(NumVal); }
  const std::string &asString() const { return StrVal; }
  const std::vector<Json> &items() const { return Items; }
  const Members &members() const { return Fields; }

  /// Array append (fatal on non-array misuse is overkill for a protocol
  /// type; misuse just grows the right representation).
  Json &push(Json Value) {
    K = Kind::Array;
    Items.push_back(std::move(Value));
    return *this;
  }

  /// Object member set; replaces an existing key in place. Linear scan —
  /// right for hand-built messages, wrong for bulk parsing (see append).
  Json &set(const std::string &Key, Json Value);

  /// Appends a member without the duplicate scan — O(1), used by the
  /// parser so a large object frame parses in linear time. Duplicate
  /// keys resolve to the *first* occurrence (get() scans front to back).
  Json &append(std::string Key, Json Value) {
    K = Kind::Object;
    Fields.emplace_back(std::move(Key), std::move(Value));
    return *this;
  }

  /// Member pointer, or nullptr when absent / not an object.
  const Json *get(const std::string &Key) const;

  // Tolerant typed accessors for optional message fields. integer()
  // yields \p Dflt for fractional or out-of-int64-range numbers too —
  // never a truncating (or UB) cast of untrusted input.
  std::string str(const std::string &Key, const std::string &Dflt = "") const;
  double num(const std::string &Key, double Dflt = 0) const;
  int64_t integer(const std::string &Key, int64_t Dflt = 0) const;
  bool boolean(const std::string &Key, bool Dflt = false) const;

  /// Compact serialization (no whitespace). Non-finite numbers dump as 0 —
  /// they are not representable in JSON.
  std::string dump() const;

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error). On failure returns std::nullopt and fills \p Err.
  static std::optional<Json> parse(const std::string &Text,
                                   std::string *Err = nullptr);

private:
  Kind K;
  bool BoolVal = false;
  double NumVal = 0;
  std::string StrVal;
  std::vector<Json> Items;
  Members Fields;
};

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

/// Writes one length-prefixed frame. Returns false on I/O error or when
/// \p Payload exceeds MaxFrameBytes.
bool writeFrame(int Fd, const std::string &Payload);

enum class FrameStatus {
  Ok,    ///< One full frame read into the payload.
  Eof,   ///< Peer closed cleanly between frames.
  Error, ///< I/O error, oversized frame, or mid-frame close.
};

/// Reads one length-prefixed frame (blocking, EINTR-safe).
FrameStatus readFrame(int Fd, std::string &Payload);

//===----------------------------------------------------------------------===//
// Schema codecs
//===----------------------------------------------------------------------===//

Json toJson(const ConvLayer &L);
Json toJson(const Conv3dLayer &L);
Json toJson(const Model &M);
Json toJson(const KernelReport &R);
Json toJson(const CompileOptions &O);

/// Observability codecs (docs/OBSERVABILITY.md). A histogram snapshot
/// becomes one family object of the `metrics` reply: count, sum,
/// derived p50/p95/p99, and cumulative buckets (Prometheus `le`
/// semantics; trailing empty buckets elided, "+Inf" always present).
Json toJson(const obs::HistogramSnapshot &S);

/// A recorder snapshot as Chrome trace-event JSON — the `dump_trace`
/// reply's "trace" object and the `--trace-out` file, loadable in
/// Perfetto / chrome://tracing. Events are complete ("ph":"X") with
/// span/parent ids and the annotation string under "args".
Json chromeTraceJson(const std::vector<obs::TraceEvent> &Events);

/// Decoders are strict about shape fields (a missing dimension is an
/// error, not a silent 1) and fill \p Err with the offending field.
bool convLayerFromJson(const Json &J, ConvLayer &L, std::string &Err);
bool conv3dLayerFromJson(const Json &J, Conv3dLayer &L, std::string &Err);
bool modelFromJson(const Json &J, Model &M, std::string &Err);
bool kernelReportFromJson(const Json &J, KernelReport &R, std::string &Err);

/// Options are tolerant: a null / absent \p J yields defaults.
CompileOptions optionsFromJson(const Json *J);

/// The streaming notification frames (docs/SERVER.md "Streaming"): a
/// "result" message keyed by "ticket" (never "id" — that is how a reader
/// tells a pushed notification from the reply to a blocking compile).
/// Success carries the report + cached flag; failure carries "error".
Json makeResultNotification(uint64_t Ticket, bool Cached,
                            const KernelReport &R);
Json makeErrorNotification(uint64_t Ticket, const std::string &Message);

/// True when \p Frame is a pushed streaming notification rather than the
/// reply to a request — the one dispatch test client readers perform.
bool isNotification(const Json &Frame);

/// Strict integral field read: absent yields \p Dflt; present but
/// non-numeric, fractional, or outside the exactly-representable int64
/// range is an error (a client's 224.9 must not silently compile a
/// 224-high layer, and casting an out-of-range double is UB).
bool readIntField(const Json &Obj, const char *Key, int64_t Dflt,
                  int64_t &Out, std::string &Err);

/// Fills \p Addr for \p Path (AF_UNIX), rejecting empty or
/// sun_path-overflowing paths — shared by client connect and server
/// bind/probe so both ends accept exactly the same paths.
bool makeUnixSocketAddr(const std::string &Path, struct sockaddr_un &Addr,
                        std::string *Err);

const char *cachePolicyName(CachePolicy P);
std::optional<CachePolicy> cachePolicyFromName(const std::string &Name);

} // namespace unit

#endif // UNIT_SERVER_PROTOCOL_H
