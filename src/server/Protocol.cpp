//===- server/Protocol.cpp -------------------------------------------------===//

#include "server/Protocol.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace unit;

namespace {

/// Is \p N exactly an int64? Fractional values must be wire errors (or
/// tolerant-accessor defaults), never silent truncations — and casting
/// an out-of-range double to int64 is UB. 2^53 bounds what a double
/// represents exactly anyway.
bool integralInRange(double N) {
  return N == std::floor(N) && std::fabs(N) <= 9007199254740992.0; // 2^53
}

} // namespace

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

Json &Json::set(const std::string &Key, Json Value) {
  K = Kind::Object;
  for (auto &KV : Fields)
    if (KV.first == Key) {
      KV.second = std::move(Value);
      return *this;
    }
  Fields.emplace_back(Key, std::move(Value));
  return *this;
}

const Json *Json::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &KV : Fields)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

std::string Json::str(const std::string &Key, const std::string &Dflt) const {
  const Json *J = get(Key);
  return J && J->isString() ? J->asString() : Dflt;
}

double Json::num(const std::string &Key, double Dflt) const {
  const Json *J = get(Key);
  return J && J->isNumber() ? J->asNumber() : Dflt;
}

int64_t Json::integer(const std::string &Key, int64_t Dflt) const {
  const Json *J = get(Key);
  if (!J || !J->isNumber() || !integralInRange(J->asNumber()))
    return Dflt;
  return J->asInt();
}

bool Json::boolean(const std::string &Key, bool Dflt) const {
  const Json *J = get(Key);
  return J && J->isBool() ? J->asBool() : Dflt;
}

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatStr("\\u%04x",
                         static_cast<unsigned>(static_cast<unsigned char>(C)));
      else
        Out += C;
    }
  }
  Out += '"';
}

void dumpValue(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    return;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    return;
  case Json::Kind::Number: {
    double N = J.asNumber();
    if (!std::isfinite(N))
      N = 0;
    // Integers (the common case: dims, counts) print without an exponent
    // or trailing zeros; everything else round-trips via shortest-exact
    // to_chars. Locale-independent on purpose — printf %g under a
    // non-C LC_NUMERIC would emit a ',' decimal point, i.e. invalid
    // JSON, and clients embed in hosts that may setlocale().
    if (N == std::floor(N) && std::fabs(N) < 1e15) {
      Out += formatStr("%lld", static_cast<long long>(N));
    } else {
      char Buf[64];
      std::to_chars_result R = std::to_chars(Buf, Buf + sizeof(Buf), N);
      Out.append(Buf, R.ptr);
    }
    return;
  }
  case Json::Kind::String:
    dumpString(J.asString(), Out);
    return;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &Item : J.items()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(Item, Out);
    }
    Out += ']';
    return;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &KV : J.members()) {
      if (!First)
        Out += ',';
      First = false;
      dumpString(KV.first, Out);
      Out += ':';
      dumpValue(KV.second, Out);
    }
    Out += '}';
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Parser: recursive descent, depth-bounded.
//===----------------------------------------------------------------------===//

constexpr int MaxParseDepth = 64;

struct Parser {
  const char *Cur;
  const char *End;
  std::string Err;

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return false;
  }

  void skipWs() {
    while (Cur != End &&
           (*Cur == ' ' || *Cur == '\t' || *Cur == '\n' || *Cur == '\r'))
      ++Cur;
  }

  bool literal(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (static_cast<size_t>(End - Cur) < Len || std::strncmp(Cur, Lit, Len) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Cur += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Cur == End || *Cur != '"')
      return fail("expected string");
    ++Cur;
    Out.clear();
    while (Cur != End && *Cur != '"') {
      char C = *Cur++;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Cur == End)
        return fail("truncated escape");
      char E = *Cur++;
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'u': {
        if (End - Cur < 4)
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = *Cur++;
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are beyond
        // what protocol strings need; lone surrogates encode as-is).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    if (Cur == End)
      return fail("unterminated string");
    ++Cur; // closing quote
    return true;
  }

  bool parseValue(Json &Out, int Depth) {
    if (Depth > MaxParseDepth)
      return fail("nesting too deep");
    skipWs();
    if (Cur == End)
      return fail("unexpected end of input");
    switch (*Cur) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Json();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Json(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Json(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case '[': {
      ++Cur;
      Out = Json::array();
      skipWs();
      if (Cur != End && *Cur == ']') {
        ++Cur;
        return true;
      }
      while (true) {
        Json Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.push(std::move(Item));
        skipWs();
        if (Cur == End)
          return fail("unterminated array");
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == ']') {
          ++Cur;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '{': {
      ++Cur;
      Out = Json::object();
      skipWs();
      if (Cur != End && *Cur == '}') {
        ++Cur;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Cur == End || *Cur != ':')
          return fail("expected ':'");
        ++Cur;
        Json Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.append(std::move(Key), std::move(Value));
        skipWs();
        if (Cur == End)
          return fail("unterminated object");
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == '}') {
          ++Cur;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    default: {
      // Number. from_chars, not strtod: the JSON grammar's '.' decimal
      // point must parse identically no matter the host's LC_NUMERIC.
      // from_chars is also stricter in the right ways (no leading '+'),
      // except it accepts "inf"/"nan" — which JSON forbids, hence the
      // leading-character and finiteness guards.
      if (*Cur != '-' && !(*Cur >= '0' && *Cur <= '9'))
        return fail("expected value");
      double N = 0;
      std::from_chars_result R = std::from_chars(Cur, End, N);
      if (R.ec != std::errc() || R.ptr == Cur || !std::isfinite(N))
        return fail("expected value");
      Cur = R.ptr;
      Out = Json(N);
      return true;
    }
    }
  }
};

} // namespace

std::string Json::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

std::optional<Json> Json::parse(const std::string &Text, std::string *Err) {
  Parser P{Text.data(), Text.data() + Text.size(), {}};
  Json Out;
  if (!P.parseValue(Out, 0)) {
    if (Err)
      *Err = P.Err;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Cur != P.End) {
    if (Err)
      *Err = "trailing garbage after JSON value";
    return std::nullopt;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    // MSG_NOSIGNAL: a peer closing mid-write must surface as an error
    // return, not SIGPIPE — clients and embedding hosts do not install
    // the signal handling the daemon does. Non-socket fds (pipes,
    // socketpair stand-ins in tests) reject send() with ENOTSOCK; fall
    // back to write() for them.
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Returns bytes read (== Len), 0 on clean EOF at the *first* byte, or -1
/// on error / mid-buffer EOF.
ssize_t readAll(int Fd, char *Data, size_t Len) {
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = ::read(Fd, Data + Got, Len - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(N);
  }
  return static_cast<ssize_t>(Got);
}

} // namespace

bool unit::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  // One contiguous buffer, one write loop: a separate 4-byte header write
  // costs an extra TCP segment (and a Nagle/delayed-ACK stall for small
  // frames) once frames cross real network links instead of a local
  // Unix socket.
  std::string Frame;
  Frame.reserve(4 + Payload.size());
  Frame.push_back(static_cast<char>(Len >> 24));
  Frame.push_back(static_cast<char>(Len >> 16));
  Frame.push_back(static_cast<char>(Len >> 8));
  Frame.push_back(static_cast<char>(Len));
  Frame.append(Payload);
  return writeAll(Fd, Frame.data(), Frame.size());
}

FrameStatus unit::readFrame(int Fd, std::string &Payload) {
  char Header[4];
  ssize_t N = readAll(Fd, Header, 4);
  if (N == 0)
    return FrameStatus::Eof;
  if (N < 0)
    return FrameStatus::Error;
  uint32_t Len = (static_cast<uint32_t>(static_cast<unsigned char>(Header[0])) << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[1])) << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(Header[2])) << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(Header[3]));
  if (Len > MaxFrameBytes)
    return FrameStatus::Error;
  Payload.resize(Len);
  if (Len > 0 && readAll(Fd, &Payload[0], Len) != static_cast<ssize_t>(Len))
    return FrameStatus::Error;
  return FrameStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Schema codecs
//===----------------------------------------------------------------------===//

Json unit::toJson(const ConvLayer &L) {
  Json J = Json::object();
  J.set("kind", "conv2d");
  J.set("name", L.Name);
  J.set("in_c", L.InC).set("in_h", L.InH).set("in_w", L.InW);
  J.set("out_c", L.OutC);
  J.set("k_h", L.KH).set("k_w", L.KW);
  J.set("stride", L.Stride);
  J.set("pad_h", L.PadH).set("pad_w", L.PadW);
  if (L.Depthwise)
    J.set("depthwise", true);
  return J;
}

Json unit::toJson(const Conv3dLayer &L) {
  Json J = Json::object();
  J.set("kind", "conv3d");
  J.set("name", L.Name);
  J.set("in_c", L.InC).set("in_d", L.InD).set("in_h", L.InH).set("in_w", L.InW);
  J.set("out_c", L.OutC);
  J.set("k", L.K).set("stride", L.Stride).set("pad", L.Pad);
  return J;
}

Json unit::toJson(const Model &M) {
  Json Layers = Json::array();
  for (const ConvLayer &L : M.Convs)
    Layers.push(toJson(L));
  Json J = Json::object();
  J.set("name", M.Name);
  J.set("layers", std::move(Layers));
  J.set("elementwise_bytes", M.ElementwiseBytes);
  J.set("glue_ops", M.GlueOps);
  return J;
}

Json unit::toJson(const KernelReport &R) {
  Json J = Json::object();
  J.set("seconds", R.Seconds);
  J.set("tensorized", R.Tensorized);
  J.set("best_candidate_index", R.BestCandidateIndex);
  J.set("candidates_tried", R.CandidatesTried);
  J.set("intrinsic", R.IntrinsicName);
  return J;
}

Json unit::toJson(const CompileOptions &O) {
  Json J = Json::object();
  J.set("max_candidates", O.MaxCandidates);
  J.set("policy", cachePolicyName(O.Policy));
  J.set("priority", O.Priority);
  return J;
}

Json unit::toJson(const obs::HistogramSnapshot &S) {
  Json J = Json::object();
  J.set("count", S.Count);
  J.set("sum", S.SumSeconds);
  J.set("p50", S.quantile(0.50));
  J.set("p95", S.quantile(0.95));
  J.set("p99", S.quantile(0.99));
  int Last = -1;
  for (int B = 0; B < obs::HistogramSnapshot::OverflowBucket; ++B)
    if (S.Buckets[B])
      Last = B;
  Json Buckets = Json::array();
  uint64_t Cumulative = 0;
  for (int B = 0; B <= Last; ++B) {
    Cumulative += S.Buckets[B];
    Json Bk = Json::object();
    Bk.set("le", obs::HistogramSnapshot::upperBoundSeconds(B));
    Bk.set("count", Cumulative);
    Buckets.push(std::move(Bk));
  }
  Json Inf = Json::object();
  Inf.set("le", "+Inf");
  Inf.set("count", S.Count);
  Buckets.push(std::move(Inf));
  J.set("buckets", std::move(Buckets));
  return J;
}

Json unit::chromeTraceJson(const std::vector<obs::TraceEvent> &Events) {
  Json List = Json::array();
  for (const obs::TraceEvent &E : Events) {
    Json Args = Json::object();
    Args.set("span", E.SpanId);
    Args.set("parent", E.ParentId);
    if (E.Args[0])
      Args.set("note", std::string(E.Args,
                                   strnlen(E.Args, sizeof(E.Args))));
    Json Ev = Json::object();
    Ev.set("name", std::string(E.Name, strnlen(E.Name, sizeof(E.Name))));
    Ev.set("ph", "X");
    Ev.set("ts", E.StartMicros);
    Ev.set("dur", E.DurationMicros);
    Ev.set("pid", 1);
    Ev.set("tid", E.ThreadTag);
    Ev.set("args", std::move(Args));
    List.push(std::move(Ev));
  }
  Json J = Json::object();
  J.set("traceEvents", std::move(List));
  return J;
}

namespace {

/// Fetches a required integral field into \p Out.
bool requireInt(const Json &J, const char *Key, int64_t &Out,
                std::string &Err) {
  const Json *F = J.get(Key);
  if (!F || !F->isNumber()) {
    Err = std::string("missing or non-numeric field '") + Key + "'";
    return false;
  }
  if (!integralInRange(F->asNumber())) {
    Err = std::string("field '") + Key + "' must be an integer";
    return false;
  }
  Out = F->asInt();
  return true;
}

} // namespace

bool unit::readIntField(const Json &Obj, const char *Key, int64_t Dflt,
                        int64_t &Out, std::string &Err) {
  const Json *F = Obj.get(Key);
  if (!F) {
    Out = Dflt;
    return true;
  }
  if (!F->isNumber() || !integralInRange(F->asNumber())) {
    Err = std::string("field '") + Key + "' must be an integer";
    return false;
  }
  Out = F->asInt();
  return true;
}

bool unit::makeUnixSocketAddr(const std::string &Path, sockaddr_un &Addr,
                              std::string *Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path empty or too long for sun_path";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

namespace {

bool checkDims(std::initializer_list<int64_t> Dims, std::string &Err) {
  for (int64_t D : Dims)
    if (D > MaxWorkloadDim) {
      Err = "workload dimension exceeds the supported maximum (" +
            std::to_string(MaxWorkloadDim) + ")";
      return false;
    }
  return true;
}

} // namespace

bool unit::convLayerFromJson(const Json &J, ConvLayer &L, std::string &Err) {
  if (!J.isObject()) {
    Err = "conv2d workload must be an object";
    return false;
  }
  L.Name = J.str("name");
  if (!requireInt(J, "in_c", L.InC, Err) || !requireInt(J, "in_h", L.InH, Err) ||
      !requireInt(J, "in_w", L.InW, Err) ||
      !requireInt(J, "out_c", L.OutC, Err) ||
      !requireInt(J, "k_h", L.KH, Err) || !requireInt(J, "k_w", L.KW, Err))
    return false;
  if (!readIntField(J, "stride", 1, L.Stride, Err) ||
      !readIntField(J, "pad_h", 0, L.PadH, Err) ||
      !readIntField(J, "pad_w", 0, L.PadW, Err))
    return false;
  L.Depthwise = J.boolean("depthwise", false);
  if (L.InC <= 0 || L.InH <= 0 || L.InW <= 0 || L.OutC <= 0 || L.KH <= 0 ||
      L.KW <= 0 || L.Stride <= 0 || L.PadH < 0 || L.PadW < 0) {
    Err = "conv2d dimensions must be positive (pads non-negative)";
    return false;
  }
  if (!checkDims({L.InC, L.InH, L.InW, L.OutC, L.KH, L.KW, L.Stride, L.PadH,
                  L.PadW},
                 Err))
    return false;
  // A kernel larger than the padded input would lower to an empty (or
  // negative-extent) output nest — a fatal error in-process, so it must
  // be a wire error here.
  if (L.outH() <= 0 || L.outW() <= 0) {
    Err = "conv2d output extent is not positive (kernel larger than the "
          "padded input?)";
    return false;
  }
  return true;
}

bool unit::conv3dLayerFromJson(const Json &J, Conv3dLayer &L,
                               std::string &Err) {
  if (!J.isObject()) {
    Err = "conv3d workload must be an object";
    return false;
  }
  L.Name = J.str("name");
  if (!requireInt(J, "in_c", L.InC, Err) || !requireInt(J, "in_d", L.InD, Err) ||
      !requireInt(J, "in_h", L.InH, Err) || !requireInt(J, "in_w", L.InW, Err) ||
      !requireInt(J, "out_c", L.OutC, Err) || !requireInt(J, "k", L.K, Err))
    return false;
  if (!readIntField(J, "stride", 1, L.Stride, Err) ||
      !readIntField(J, "pad", 0, L.Pad, Err))
    return false;
  if (L.InC <= 0 || L.InD <= 0 || L.InH <= 0 || L.InW <= 0 || L.OutC <= 0 ||
      L.K <= 0 || L.Stride <= 0 || L.Pad < 0) {
    Err = "conv3d dimensions must be positive (pad non-negative)";
    return false;
  }
  if (!checkDims({L.InC, L.InD, L.InH, L.InW, L.OutC, L.K, L.Stride, L.Pad},
                 Err))
    return false;
  if (L.outD() <= 0 || L.outH() <= 0 || L.outW() <= 0) {
    Err = "conv3d output extent is not positive (kernel larger than the "
          "padded input?)";
    return false;
  }
  return true;
}

bool unit::modelFromJson(const Json &J, Model &M, std::string &Err) {
  if (!J.isObject()) {
    Err = "model must be an object";
    return false;
  }
  M.Name = J.str("name", "unnamed");
  const Json *Layers = J.get("layers");
  if (!Layers || !Layers->isArray() || Layers->items().empty()) {
    Err = "model requires a non-empty 'layers' array";
    return false;
  }
  M.Convs.clear();
  for (const Json &LayerJson : Layers->items()) {
    ConvLayer L;
    if (!convLayerFromJson(LayerJson, L, Err))
      return false;
    M.Convs.push_back(std::move(L));
  }
  M.ElementwiseBytes = J.num("elementwise_bytes", 0);
  M.GlueOps = static_cast<int>(J.integer("glue_ops", 0));
  return true;
}

bool unit::kernelReportFromJson(const Json &J, KernelReport &R,
                                std::string &Err) {
  if (!J.isObject()) {
    Err = "report must be an object";
    return false;
  }
  const Json *Seconds = J.get("seconds");
  if (!Seconds || !Seconds->isNumber()) {
    Err = "report missing 'seconds'";
    return false;
  }
  R.Seconds = Seconds->asNumber();
  R.Tensorized = J.boolean("tensorized", false);
  R.BestCandidateIndex = static_cast<int>(J.integer("best_candidate_index", -1));
  R.CandidatesTried = static_cast<int>(J.integer("candidates_tried", 0));
  R.IntrinsicName = J.str("intrinsic");
  return true;
}

Json unit::makeResultNotification(uint64_t Ticket, bool Cached,
                                  const KernelReport &R) {
  Json J = Json::object();
  J.set("type", "result");
  J.set("ticket", Ticket);
  J.set("cached", Cached);
  J.set("report", toJson(R));
  return J;
}

Json unit::makeErrorNotification(uint64_t Ticket, const std::string &Message) {
  Json J = Json::object();
  J.set("type", "result");
  J.set("ticket", Ticket);
  J.set("error", Message);
  return J;
}

bool unit::isNotification(const Json &Frame) {
  // Only "result" frames are ever pushed; cancelled / ticket_status
  // replies also carry a ticket but arrive strictly in request order.
  return Frame.isObject() && Frame.str("type") == "result" &&
         Frame.get("ticket") != nullptr;
}

CompileOptions unit::optionsFromJson(const Json *J) {
  CompileOptions O;
  if (!J || !J->isObject())
    return O;
  O.MaxCandidates = static_cast<int>(J->integer("max_candidates", -1));
  O.Priority = static_cast<int>(J->integer("priority", 0));
  if (std::optional<CachePolicy> P = cachePolicyFromName(J->str("policy")))
    O.Policy = *P;
  return O;
}

const char *unit::cachePolicyName(CachePolicy P) {
  switch (P) {
  case CachePolicy::Default:
    return "default";
  case CachePolicy::Bypass:
    return "bypass";
  case CachePolicy::Refresh:
    return "refresh";
  }
  return "default";
}

std::optional<CachePolicy>
unit::cachePolicyFromName(const std::string &Name) {
  if (Name == "default")
    return CachePolicy::Default;
  if (Name == "bypass")
    return CachePolicy::Bypass;
  if (Name == "refresh")
    return CachePolicy::Refresh;
  return std::nullopt;
}
