//===- server/CompileClient.cpp --------------------------------------------===//

#include "server/CompileClient.h"

#include "fabric/Endpoint.h"
#include "fabric/Handshake.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <tuple>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace unit;

namespace {

void setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
}

} // namespace

CompileClient::~CompileClient() { close(); }

bool CompileClient::connect(const std::string &SocketPath, std::string *Err) {
  return connect(std::vector<std::string>{SocketPath}, std::string(), Err);
}

bool CompileClient::connect(const std::vector<std::string> &Endpoints,
                            const std::string &Secret, std::string *Err) {
  close();
  if (Endpoints.empty()) {
    setErr(Err, "no endpoints to connect to");
    return false;
  }
  {
    // Published before the dial: dialEndpoint reads the secret, and the
    // reader (not started yet) will read the list on reconnects.
    std::lock_guard<std::mutex> Lock(Mu);
    EndpointList = Endpoints;
    FabricSecret = Secret;
  }
  int NewFd = -1;
  size_t Chosen = 0;
  std::string FirstErr;
  for (size_t I = 0; I < Endpoints.size() && NewFd < 0; ++I) {
    std::string DialErr;
    NewFd = dialEndpoint(Endpoints[I], &DialErr);
    if (NewFd >= 0)
      Chosen = I;
    else if (FirstErr.empty())
      FirstErr = DialErr;
  }
  if (NewFd < 0) {
    setErr(Err, FirstErr.empty() ? "connect failed" : FirstErr);
    return false;
  }
  Fd.store(NewFd);
  ShuttingDown.store(false);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ReaderExited = false;
    ReaderExitReason.clear();
    Replies.clear();
    Unclaimed.clear();
    Outstanding.clear();
    TicketRequests.clear();
    ArrivalCounter = 0;
    CurrentEndpoint = Chosen;
    ConnectedPath = Endpoints[Chosen];
    HelloMsg = Json();
    HelloSent = false;
  }
  Reader = std::thread([this] { readerLoop(); });
  return true;
}

int CompileClient::dialEndpoint(const std::string &Ep, std::string *Err) {
  if (looksLikeUnixPath(Ep)) {
    sockaddr_un Addr;
    if (!makeUnixSocketAddr(Ep, Addr, Err))
      return -1;
    int NewFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (NewFd < 0) {
      setErr(Err, std::string("socket() failed: ") + std::strerror(errno));
      return -1;
    }
    if (::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      setErr(Err, "connect(" + Ep + ") failed: " + std::strerror(errno));
      ::close(NewFd);
      return -1;
    }
    return NewFd;
  }
  std::string DetailErr;
  std::optional<Endpoint> Parsed = parseEndpoint(Ep, &DetailErr);
  if (!Parsed) {
    setErr(Err, "bad endpoint '" + Ep + "': " + DetailErr);
    return -1;
  }
  int NewFd = dialTcp(*Parsed, &DetailErr);
  if (NewFd < 0) {
    setErr(Err, "connect(" + Ep + ") failed: " + DetailErr);
    return -1;
  }
  std::string SecretCopy;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    SecretCopy = FabricSecret;
  }
  if (!answerAuthChallenge(NewFd, SecretCopy, &DetailErr)) {
    setErr(Err, "auth with " + Ep + " failed: " + DetailErr);
    ::close(NewFd);
    return -1;
  }
  return NewFd;
}

void CompileClient::close() {
  // shutdown() (not close()) wakes the reader parked in readFrame; the fd
  // itself is released only after the join, so the reader can never race
  // a recycled descriptor number. ShuttingDown is published under Mu,
  // paired with tryReconnect()'s commit check: either the reader sees it
  // and exits instead of installing a new fd, or it committed first and
  // the Fd read below picks up the new descriptor to shut down.
  int CurFd;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown.store(true);
    CurFd = Fd.load();
  }
  if (CurFd >= 0)
    ::shutdown(CurFd, SHUT_RDWR);
  if (Reader.joinable())
    Reader.join();
  // Post-join re-read: a reconnect that won the race above swapped in a
  // fresh fd (and retired the one we shut down).
  CurFd = Fd.load();
  if (CurFd >= 0) {
    ::close(CurFd);
    Fd.store(-1);
  }
  std::vector<int> Dead;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Dead.swap(RetiredFds);
  }
  for (int F : Dead)
    ::close(F);
}

void CompileClient::setAutoReconnect(bool Enable, int MaxAttempts,
                                     int RetryDelayMillis) {
  std::lock_guard<std::mutex> Lock(Mu);
  AutoReconnect = Enable;
  ReconnectAttempts = MaxAttempts > 0 ? MaxAttempts : 1;
  ReconnectDelayMillis = RetryDelayMillis > 0 ? RetryDelayMillis : 0;
}

//===----------------------------------------------------------------------===//
// Reader thread: the receive side of the socket
//===----------------------------------------------------------------------===//

void CompileClient::readerLoop() {
  std::string Payload;
  while (true) {
    FrameStatus Status = readFrame(Fd.load(), Payload);
    if (Status != FrameStatus::Ok) {
      std::string Why = Status == FrameStatus::Eof
                            ? "server closed the connection"
                            : "read failed";
      // Auto-reconnect turns a dead transport into a redial + ticket
      // replay; only when that is off (or exhausted) does the exit
      // cascade to every pending future.
      if (tryReconnect(Why))
        continue;
      failAllPending(Why);
      return;
    }
    std::string ParseErr;
    std::optional<Json> Frame = Json::parse(Payload, &ParseErr);
    if (Frame && isNotification(*Frame)) {
      uint64_t Ticket = static_cast<uint64_t>(Frame->integer("ticket", 0));
      std::shared_ptr<std::promise<CompileResult>> P;
      uint64_t Arrival = 0;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        Arrival = ++ArrivalCounter;
        auto It = Tickets.find(Ticket);
        if (It != Tickets.end()) {
          P = std::move(It->second);
          Tickets.erase(It);
          TicketRequests.erase(Ticket); // Resolved: no replay needed.
        } else {
          // The submitted reply naming this ticket has not been consumed
          // yet (pipelined submission); park the note for registerTicket.
          Unclaimed[Ticket] = EarlyNote{std::move(*Frame), Arrival};
        }
      }
      if (P)
        resolveTicket(*P, *Frame, Arrival);
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      QueuedReply R;
      if (Frame)
        R.Frame = std::move(*Frame);
      else
        R.Err = "malformed response: " + ParseErr;
      Replies.push_back(std::move(R));
    }
    ReplyCv.notify_all();
  }
}

void CompileClient::failAllPending(const std::string &Why) {
  std::unordered_map<uint64_t, std::shared_ptr<std::promise<CompileResult>>>
      Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ReaderExited = true;
    ReaderExitReason = Why;
    Orphans.swap(Tickets);
    TicketRequests.clear();
  }
  for (auto &KV : Orphans)
    KV.second->set_exception(
        std::make_exception_ptr(std::runtime_error(Why)));
  ReplyCv.notify_all();
}

bool CompileClient::tryReconnect(const std::string &Why) {
  int Attempts, DelayMs;
  std::vector<std::string> Eps;
  size_t StartIdx;
  Json Hello;
  bool SendHello;
  std::unordered_map<uint64_t, std::shared_ptr<std::promise<CompileResult>>>
      Pending;
  std::unordered_map<uint64_t, Json> Requests;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!AutoReconnect || ShuttingDown.load())
      return false;
    // Gate user round trips while the wire is rebuilt: replies the old
    // connection owed are unrecoverable, so in-flight request/reply
    // exchanges fail fast instead of waiting forever. Registered tickets
    // are the replayable part — take ownership of them here.
    ReaderExited = true;
    ReaderExitReason = Why + " (reconnecting)";
    Attempts = ReconnectAttempts;
    DelayMs = ReconnectDelayMillis;
    Eps = EndpointList;
    StartIdx = CurrentEndpoint;
    Hello = HelloMsg;
    SendHello = HelloSent;
    Pending.swap(Tickets);
    Requests.swap(TicketRequests);
    // Early notes were paired with submitted replies that just died
    // unconsumed; their round trips fail, so the notes are orphans.
    Unclaimed.clear();
  }
  ReplyCv.notify_all();

  auto FailPending = [&](const std::string &Reason) {
    for (auto &KV : Pending)
      KV.second->set_exception(
          std::make_exception_ptr(std::runtime_error(Reason)));
    Pending.clear();
    return false; // Hands the reader exit to failAllPending.
  };

  // Redial. Bounded attempt rounds over the whole endpoint list,
  // starting *after* the endpoint that just died: mid-stream failover to
  // a fleet sibling is the same motion as reconnecting to a restarted
  // daemon, just one list slot over. A server restart needs a beat to
  // re-bind, hence the inter-round delay.
  if (Eps.empty())
    return FailPending("reconnect failed: no endpoints");
  int NewFd = -1;
  size_t Chosen = StartIdx;
  for (int A = 0; A < Attempts && NewFd < 0 && !ShuttingDown.load(); ++A) {
    if (A)
      std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    for (size_t E = 0; E < Eps.size() && NewFd < 0; ++E) {
      size_t Idx = (StartIdx + 1 + E) % Eps.size();
      NewFd = dialEndpoint(Eps[Idx], nullptr);
      if (NewFd >= 0)
        Chosen = Idx;
    }
  }
  if (NewFd < 0)
    return FailPending("reconnect failed: " + Why);

  // Synchronous handshake + replay on the new socket, owned entirely by
  // this (reader) thread — ReaderExited keeps user threads off the wire.
  // Notifications can already arrive interleaved (a replayed warm hit
  // resolves before the last submitted reply); stash them for after the
  // ticket remap.
  std::vector<Json> Notes;
  auto ReadReply = [&](Json &Out) {
    std::string Buf;
    while (true) {
      if (readFrame(NewFd, Buf) != FrameStatus::Ok)
        return false;
      std::optional<Json> F = Json::parse(Buf, nullptr);
      if (!F)
        return false;
      if (isNotification(*F)) {
        Notes.push_back(std::move(*F));
        continue;
      }
      Out = std::move(*F);
      return true;
    }
  };
  auto Abort = [&](const std::string &Reason) {
    ::close(NewFd);
    return FailPending(Reason);
  };
  if (SendHello) {
    Json Welcome;
    if (!writeFrame(NewFd, Hello.dump()) || !ReadReply(Welcome) ||
        Welcome.str("type") != "welcome")
      return Abort("reconnect failed: hello handshake rejected");
  }
  // Pipeline every unresolved submission, then collect the new tickets —
  // the server answers one connection in order, so the k-th submitted
  // reply belongs to the k-th replayed frame.
  std::vector<uint64_t> Order;
  Order.reserve(Pending.size());
  for (const auto &KV : Pending) {
    auto RIt = Requests.find(KV.first);
    if (RIt == Requests.end())
      continue; // No retained frame (never happens for submit paths).
    if (!writeFrame(NewFd, RIt->second.dump()))
      return Abort("reconnect failed: resubmission write failed");
    Order.push_back(KV.first);
  }
  std::vector<std::tuple<uint64_t, uint64_t, Json>> Remapped; // old, new, msg
  for (uint64_t Old : Order) {
    Json Reply;
    if (!ReadReply(Reply))
      return Abort("reconnect failed: resubmission reply lost");
    uint64_t NewTicket =
        Reply.str("type") == "submitted"
            ? static_cast<uint64_t>(Reply.integer("ticket", 0))
            : 0;
    if (NewTicket == 0) {
      // The new server rejected this one (e.g. unknown target after a
      // config change); fail just its future, replay the rest.
      Pending[Old]->set_exception(std::make_exception_ptr(std::runtime_error(
          "resubmission rejected: " + Reply.str("message", Reply.dump()))));
      Pending.erase(Old);
      continue;
    }
    Remapped.emplace_back(Old, NewTicket, std::move(Requests[Old]));
  }

  // Commit: install the new fd and remapped tickets, reopen the gate.
  // The ShuttingDown check pairs with close() — if close() won the race,
  // installing NewFd would leave it un-shutdown and the join would hang.
  std::vector<std::pair<std::shared_ptr<std::promise<CompileResult>>, Json>>
      Resolved;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown.load()) {
      ::close(NewFd);
      return FailPending("connection closed");
    }
    for (auto &T : Remapped) {
      Tickets[std::get<1>(T)] = Pending[std::get<0>(T)];
      TicketRequests[std::get<1>(T)] = std::move(std::get<2>(T));
    }
    for (Json &Note : Notes) {
      uint64_t Ticket = static_cast<uint64_t>(Note.integer("ticket", 0));
      auto It = Tickets.find(Ticket);
      if (It == Tickets.end())
        continue; // For a ticket whose resubmission was rejected.
      Resolved.emplace_back(std::move(It->second), std::move(Note));
      Tickets.erase(It);
      TicketRequests.erase(Ticket);
    }
    RetiredFds.push_back(Fd.load());
    Fd.store(NewFd);
    CurrentEndpoint = Chosen;
    ConnectedPath = Eps[Chosen];
    ResubmittedCount.fetch_add(Remapped.size());
    ReaderExited = false;
    ReaderExitReason.clear();
  }
  for (auto &KV : Resolved) {
    uint64_t Arrival;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Arrival = ++ArrivalCounter;
    }
    resolveTicket(*KV.first, KV.second, Arrival);
  }
  return true;
}

void CompileClient::resolveTicket(std::promise<CompileResult> &P,
                                  const Json &Note, uint64_t Arrival) {
  if (const Json *Error = Note.get("error")) {
    P.set_exception(std::make_exception_ptr(std::runtime_error(
        "server error: " +
        (Error->isString() ? Error->asString() : Note.dump()))));
    return;
  }
  const Json *ReportJson = Note.get("report");
  CompileResult R;
  std::string DecodeErr;
  if (!ReportJson || !kernelReportFromJson(*ReportJson, R.Report, DecodeErr)) {
    P.set_exception(std::make_exception_ptr(std::runtime_error(
        DecodeErr.empty() ? "result missing 'report'" : DecodeErr)));
    return;
  }
  R.Cached = Note.boolean("cached", false);
  R.Arrival = Arrival;
  P.set_value(std::move(R));
}

//===----------------------------------------------------------------------===//
// Request / reply plumbing
//===----------------------------------------------------------------------===//

bool CompileClient::sendRequest(const Json &Request, std::string *Err) {
  int CurFd = Fd.load();
  if (CurFd < 0) {
    setErr(Err, "not connected");
    return false;
  }
  if (!writeFrame(CurFd, Request.dump())) {
    setErr(Err, "write failed (server gone?)");
    return false;
  }
  return true;
}

std::optional<Json> CompileClient::awaitReply(std::string *Err) {
  std::unique_lock<std::mutex> Lock(Mu);
  ReplyCv.wait(Lock, [this] { return !Replies.empty() || ReaderExited; });
  if (Replies.empty()) {
    setErr(Err, ReaderExitReason.empty() ? "connection closed"
                                         : ReaderExitReason);
    return std::nullopt;
  }
  QueuedReply R = std::move(Replies.front());
  Replies.pop_front();
  if (!R.Frame) {
    setErr(Err, R.Err);
    return std::nullopt;
  }
  return std::move(R.Frame);
}

std::optional<Json> CompileClient::request(const Json &Request,
                                           std::string *Err) {
  // With auto-reconnect on, a transport failure is the reader's to heal:
  // tearing the client down here would yank the redial out from under it
  // (and orphan the tickets it is busy replaying). The caller just sees
  // this one exchange fail.
  bool Healing;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Healing = AutoReconnect;
  }
  if (!sendRequest(Request, Err)) {
    if (!Healing)
      close();
    return std::nullopt;
  }
  std::optional<Json> Reply = awaitReply(Err);
  if (!Reply) {
    // A dead reader means a dead connection; a merely malformed frame
    // (test traffic) leaves the connection usable.
    bool Dead;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Dead = ReaderExited;
    }
    if (Dead && !Healing)
      close();
  }
  return Reply;
}

std::optional<Json> CompileClient::roundTrip(const Json &Request,
                                             const char *ExpectType,
                                             std::string *Err) {
  std::optional<Json> Response = request(Request, Err);
  if (!Response)
    return std::nullopt;
  std::string Type = Response->str("type");
  if (Type == "error") {
    setErr(Err, "server error: " + Response->str("message"));
    return std::nullopt;
  }
  if (Type != ExpectType) {
    setErr(Err, "expected '" + std::string(ExpectType) + "' response, got '" +
                    Type + "'");
    return std::nullopt;
  }
  return Response;
}

std::optional<Json> CompileClient::hello(const std::string &ClientName,
                                         int MaxCandidates, std::string *Err) {
  Json J = Json::object();
  J.set("type", "hello");
  J.set("client", ClientName);
  if (MaxCandidates > 0)
    J.set("max_candidates", MaxCandidates);
  std::optional<Json> Welcome = roundTrip(J, "welcome", Err);
  if (Welcome) {
    // Retain the accepted handshake: auto-reconnect replays it so the new
    // connection carries the same client name and budget.
    std::lock_guard<std::mutex> Lock(Mu);
    HelloMsg = std::move(J);
    HelloSent = true;
  }
  return Welcome;
}

//===----------------------------------------------------------------------===//
// Blocking compiles
//===----------------------------------------------------------------------===//

std::optional<CompileClient::CompileResult>
CompileClient::decodeResult(const Json &Response, std::string *Err) {
  const Json *ReportJson = Response.get("report");
  if (!ReportJson) {
    setErr(Err, "result missing 'report'");
    return std::nullopt;
  }
  CompileResult R;
  std::string DecodeErr;
  if (!kernelReportFromJson(*ReportJson, R.Report, DecodeErr)) {
    setErr(Err, DecodeErr);
    return std::nullopt;
  }
  R.Cached = Response.boolean("cached", false);
  return R;
}

Json CompileClient::makeCompileMessage(const char *Type,
                                       const std::string &Target,
                                       Json WorkloadJson,
                                       const CompileOptions &Options) {
  Json J = Json::object();
  J.set("type", Type);
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("workload", std::move(WorkloadJson));
  J.set("options", toJson(Options));
  return J;
}

std::optional<CompileClient::CompileResult>
CompileClient::compileWorkload(const std::string &Target, Json WorkloadJson,
                               const CompileOptions &Options,
                               std::string *Err) {
  std::optional<Json> Response =
      roundTrip(makeCompileMessage("compile", Target, std::move(WorkloadJson),
                                   Options),
                "result", Err);
  if (!Response)
    return std::nullopt;
  return decodeResult(*Response, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv(const std::string &Target, const ConvLayer &Layer,
                           const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv3d(const std::string &Target,
                             const Conv3dLayer &Layer,
                             const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileDense(const std::string &Target, const std::string &Name,
                            int64_t In, int64_t Out,
                            const CompileOptions &Options, std::string *Err) {
  Json Work = Json::object();
  Work.set("kind", "dense");
  Work.set("name", Name);
  Work.set("in", In);
  Work.set("out", Out);
  return compileWorkload(Target, std::move(Work), Options, Err);
}

//===----------------------------------------------------------------------===//
// Streaming compiles
//===----------------------------------------------------------------------===//

CompileClient::AsyncHandle CompileClient::registerTicket(uint64_t Ticket,
                                                         Json RequestMsg) {
  auto P = std::make_shared<std::promise<CompileResult>>();
  AsyncHandle H;
  H.Ticket = Ticket;
  H.Fut = P->get_future().share();
  std::optional<EarlyNote> Early;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Unclaimed.find(Ticket);
    if (It != Unclaimed.end()) {
      Early = std::move(It->second);
      Unclaimed.erase(It);
    } else if (ReaderExited) {
      // The connection died between the submitted reply and now; nobody
      // will ever resolve this ticket — fail it instead of parking it.
      P->set_exception(std::make_exception_ptr(std::runtime_error(
          ReaderExitReason.empty() ? "connection closed" : ReaderExitReason)));
      Outstanding.push_back(H);
      return H;
    } else {
      Tickets.emplace(Ticket, P);
      // Pending: retain the frame so auto-reconnect can resubmit it.
      TicketRequests.emplace(Ticket, std::move(RequestMsg));
    }
    Outstanding.push_back(H);
  }
  if (Early)
    resolveTicket(*P, Early->Frame, Early->Arrival);
  return H;
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitWorkload(const std::string &Target, Json WorkloadJson,
                              const CompileOptions &Options,
                              std::string *Err) {
  Json Msg = makeCompileMessage("compile_async", Target,
                                std::move(WorkloadJson), Options);
  std::optional<Json> Response = roundTrip(Msg, "submitted", Err);
  if (!Response)
    return std::nullopt;
  uint64_t Ticket = static_cast<uint64_t>(Response->integer("ticket", 0));
  if (Ticket == 0) {
    setErr(Err, "submitted reply missing 'ticket'");
    return std::nullopt;
  }
  return registerTicket(Ticket, std::move(Msg));
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitConv(const std::string &Target, const ConvLayer &Layer,
                          const CompileOptions &Options, std::string *Err) {
  return submitWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitConv3d(const std::string &Target,
                            const Conv3dLayer &Layer,
                            const CompileOptions &Options, std::string *Err) {
  return submitWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitDense(const std::string &Target, const std::string &Name,
                           int64_t In, int64_t Out,
                           const CompileOptions &Options, std::string *Err) {
  Json Work = Json::object();
  Work.set("kind", "dense");
  Work.set("name", Name);
  Work.set("in", In);
  Work.set("out", Out);
  return submitWorkload(Target, std::move(Work), Options, Err);
}

std::optional<std::vector<CompileClient::AsyncHandle>>
CompileClient::submitModelLayers(const std::string &Target, const Model &M,
                                 const CompileOptions &Options,
                                 std::string *Err) {
  // Write every frame first, then collect replies: the server handles one
  // connection's requests in order, so the k-th submitted reply belongs
  // to the k-th layer — and the socket stays full instead of stalling a
  // round trip per layer.
  std::vector<Json> Messages;
  Messages.reserve(M.Convs.size());
  for (const ConvLayer &L : M.Convs)
    Messages.push_back(
        makeCompileMessage("compile_async", Target, toJson(L), Options));
  for (const Json &Msg : Messages)
    if (!sendRequest(Msg, Err)) {
      close();
      return std::nullopt;
    }
  // Consume every reply of the batch even after a failure: returning
  // early would leave the later replies queued and desynchronize every
  // subsequent request on this connection. Tickets that did get issued
  // are registered regardless, so waitAll() still joins (and the reader
  // still routes) their notifications.
  std::vector<AsyncHandle> Handles;
  Handles.reserve(M.Convs.size());
  std::string FirstErr;
  for (size_t I = 0; I < M.Convs.size(); ++I) {
    std::optional<Json> Reply = awaitReply(Err);
    if (!Reply) {
      close(); // Transport failure: nothing more will arrive.
      return std::nullopt;
    }
    uint64_t Ticket = static_cast<uint64_t>(Reply->integer("ticket", 0));
    if (Reply->str("type") == "submitted" && Ticket != 0) {
      Handles.push_back(registerTicket(Ticket, std::move(Messages[I])));
    } else if (FirstErr.empty()) {
      FirstErr = Reply->str("type") == "error"
                     ? "server error: " + Reply->str("message")
                     : "expected 'submitted' reply, got '" +
                           Reply->str("type") + "'";
    }
  }
  if (!FirstErr.empty()) {
    setErr(Err, FirstErr);
    return std::nullopt;
  }
  return Handles;
}

std::optional<CompileClient::CompileResult>
CompileClient::wait(const AsyncHandle &Handle, std::string *Err) {
  if (!Handle.valid()) {
    setErr(Err, "invalid async handle");
    return std::nullopt;
  }
  try {
    return Handle.Fut.get();
  } catch (const std::exception &E) {
    setErr(Err, E.what());
    return std::nullopt;
  }
}

bool CompileClient::waitAll(std::string *Err) {
  std::vector<AsyncHandle> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ToJoin.swap(Outstanding);
  }
  bool Ok = true;
  std::string FirstErr;
  for (const AsyncHandle &H : ToJoin) {
    std::string HandleErr;
    if (!wait(H, &HandleErr) && Ok) {
      Ok = false;
      FirstErr = HandleErr;
    }
  }
  if (!Ok)
    setErr(Err, FirstErr);
  return Ok;
}

bool CompileClient::cancel(const AsyncHandle &Handle, std::string *Err) {
  Json J = Json::object();
  J.set("type", "cancel");
  J.set("id", NextId++);
  J.set("ticket", Handle.Ticket);
  std::optional<Json> Response = roundTrip(J, "cancelled", Err);
  if (!Response)
    return false;
  if (Response->boolean("was_pending", false)) {
    // No notification will ever come: resolve the local future as
    // cancelled and stop waitAll from waiting on it.
    std::shared_ptr<std::promise<CompileResult>> P;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Tickets.find(Handle.Ticket);
      if (It != Tickets.end()) {
        P = std::move(It->second);
        Tickets.erase(It);
        TicketRequests.erase(Handle.Ticket);
      }
      Outstanding.erase(
          std::remove_if(Outstanding.begin(), Outstanding.end(),
                         [&](const AsyncHandle &H) {
                           return H.Ticket == Handle.Ticket;
                         }),
          Outstanding.end());
    }
    if (P)
      P->set_exception(std::make_exception_ptr(
          std::runtime_error("cancelled by this client")));
  }
  return true;
}

std::optional<std::string> CompileClient::poll(const AsyncHandle &Handle,
                                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "poll");
  J.set("id", NextId++);
  J.set("ticket", Handle.Ticket);
  std::optional<Json> Response = roundTrip(J, "ticket_status", Err);
  if (!Response)
    return std::nullopt;
  return Response->str("state");
}

size_t CompileClient::pendingTickets() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Tickets.size();
}

//===----------------------------------------------------------------------===//
// Model compiles, discovery, stats, persistence, shutdown
//===----------------------------------------------------------------------===//

std::optional<CompileClient::ModelResult>
CompileClient::compileModel(const std::string &Target, const Model &M,
                            const CompileOptions &Options, std::string *Err) {
  Json J = Json::object();
  J.set("type", "compile_model");
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("model", toJson(M));
  J.set("options", toJson(Options));
  std::optional<Json> Response = roundTrip(J, "model_result", Err);
  if (!Response)
    return std::nullopt;

  const Json *Layers = Response->get("layers");
  if (!Layers || !Layers->isArray()) {
    setErr(Err, "model_result missing 'layers'");
    return std::nullopt;
  }
  ModelResult R;
  R.ModelName = Response->str("model");
  R.Layers.reserve(Layers->items().size());
  for (const Json &LayerJson : Layers->items()) {
    KernelReport Report;
    std::string DecodeErr;
    if (!kernelReportFromJson(LayerJson, Report, DecodeErr)) {
      setErr(Err, DecodeErr);
      return std::nullopt;
    }
    R.Layers.push_back(std::move(Report));
  }
  R.DistinctShapes = static_cast<size_t>(Response->integer("distinct_shapes"));
  R.CacheHitLayers =
      static_cast<size_t>(Response->integer("cache_hit_layers"));
  R.ServerWallSeconds = Response->num("wall_seconds");
  return R;
}

std::optional<std::vector<CompileClient::TargetInfo>>
CompileClient::listTargets(std::string *Err) {
  Json J = Json::object();
  J.set("type", "list_targets");
  J.set("id", NextId++);
  std::optional<Json> Response = roundTrip(J, "targets", Err);
  if (!Response)
    return std::nullopt;
  const Json *Targets = Response->get("targets");
  if (!Targets || !Targets->isArray()) {
    setErr(Err, "targets response missing 'targets'");
    return std::nullopt;
  }
  std::vector<TargetInfo> Out;
  Out.reserve(Targets->items().size());
  for (const Json &T : Targets->items()) {
    TargetInfo Info;
    Info.Id = T.str("id");
    Info.Description = T.str("description");
    Info.SupportsConv3d = T.boolean("conv3d", false);
    Info.SpecHash = T.str("spec_hash");
    Info.Source = T.str("source", "builtin");
    if (const Json *Intrs = T.get("intrinsics"))
      for (const Json &I : Intrs->items())
        if (I.isString())
          Info.Intrinsics.push_back(I.asString());
    Out.push_back(std::move(Info));
  }
  return Out;
}

std::optional<CompileClient::RegisteredTarget>
CompileClient::registerTarget(const Json &SpecDoc, std::string *Err) {
  Json J = Json::object();
  J.set("type", "register_target");
  J.set("id", NextId++);
  J.set("spec", SpecDoc);
  std::optional<Json> Response = roundTrip(J, "target_registered", Err);
  if (!Response)
    return std::nullopt;
  RegisteredTarget Out;
  Out.Id = Response->str("target");
  Out.SpecHash = Response->str("spec_hash");
  Out.Source = Response->str("source", "wire");
  return Out;
}

std::optional<Json> CompileClient::stats(bool Detail, std::string *Err) {
  Json J = Json::object();
  J.set("type", "stats");
  J.set("id", NextId++);
  if (Detail)
    J.set("detail", true);
  return roundTrip(J, "stats_result", Err);
}

std::optional<Json> CompileClient::metrics(std::string *Err) {
  Json J = Json::object();
  J.set("type", "metrics");
  J.set("id", NextId++);
  return roundTrip(J, "metrics", Err);
}

std::optional<Json> CompileClient::dumpTrace(std::string *Err) {
  Json J = Json::object();
  J.set("type", "dump_trace");
  J.set("id", NextId++);
  return roundTrip(J, "trace", Err);
}

std::optional<size_t> CompileClient::saveCache(const std::string &Path,
                                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "save_cache");
  J.set("id", NextId++);
  if (!Path.empty())
    J.set("path", Path);
  std::optional<Json> Response = roundTrip(J, "saved", Err);
  if (!Response)
    return std::nullopt;
  return static_cast<size_t>(Response->integer("entries"));
}

bool CompileClient::shutdownServer(std::string *Err) {
  Json J = Json::object();
  J.set("type", "shutdown");
  bool Ok = roundTrip(J, "bye", Err).has_value();
  close();
  return Ok;
}
