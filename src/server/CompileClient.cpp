//===- server/CompileClient.cpp --------------------------------------------===//

#include "server/CompileClient.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace unit;

namespace {

void setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
}

} // namespace

CompileClient::~CompileClient() { close(); }

bool CompileClient::connect(const std::string &SocketPath, std::string *Err) {
  close();
  sockaddr_un Addr;
  if (!makeUnixSocketAddr(SocketPath, Addr, Err))
    return false;
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setErr(Err, std::string("socket() failed: ") + std::strerror(errno));
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    setErr(Err, "connect(" + SocketPath + ") failed: " + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

void CompileClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

std::optional<Json> CompileClient::request(const Json &Request,
                                           std::string *Err) {
  if (Fd < 0) {
    setErr(Err, "not connected");
    return std::nullopt;
  }
  if (!writeFrame(Fd, Request.dump())) {
    setErr(Err, "write failed (server gone?)");
    close();
    return std::nullopt;
  }
  std::string Payload;
  FrameStatus Status = readFrame(Fd, Payload);
  if (Status != FrameStatus::Ok) {
    setErr(Err, Status == FrameStatus::Eof ? "server closed the connection"
                                           : "read failed");
    close();
    return std::nullopt;
  }
  std::string ParseErr;
  std::optional<Json> Response = Json::parse(Payload, &ParseErr);
  if (!Response)
    setErr(Err, "malformed response: " + ParseErr);
  return Response;
}

std::optional<Json> CompileClient::roundTrip(const Json &Request,
                                             const char *ExpectType,
                                             std::string *Err) {
  std::optional<Json> Response = request(Request, Err);
  if (!Response)
    return std::nullopt;
  std::string Type = Response->str("type");
  if (Type == "error") {
    setErr(Err, "server error: " + Response->str("message"));
    return std::nullopt;
  }
  if (Type != ExpectType) {
    setErr(Err, "expected '" + std::string(ExpectType) + "' response, got '" +
                    Type + "'");
    return std::nullopt;
  }
  return Response;
}

std::optional<Json> CompileClient::hello(const std::string &ClientName,
                                         int MaxCandidates, std::string *Err) {
  Json J = Json::object();
  J.set("type", "hello");
  J.set("client", ClientName);
  if (MaxCandidates > 0)
    J.set("max_candidates", MaxCandidates);
  return roundTrip(J, "welcome", Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::decodeResult(const Json &Response, std::string *Err) {
  const Json *ReportJson = Response.get("report");
  if (!ReportJson) {
    setErr(Err, "result missing 'report'");
    return std::nullopt;
  }
  CompileResult R;
  std::string DecodeErr;
  if (!kernelReportFromJson(*ReportJson, R.Report, DecodeErr)) {
    setErr(Err, DecodeErr);
    return std::nullopt;
  }
  R.Cached = Response.boolean("cached", false);
  return R;
}

std::optional<CompileClient::CompileResult>
CompileClient::compileWorkload(const std::string &Target, Json WorkloadJson,
                               const CompileOptions &Options,
                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "compile");
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("workload", std::move(WorkloadJson));
  J.set("options", toJson(Options));
  std::optional<Json> Response = roundTrip(J, "result", Err);
  if (!Response)
    return std::nullopt;
  return decodeResult(*Response, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv(const std::string &Target, const ConvLayer &Layer,
                           const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv3d(const std::string &Target,
                             const Conv3dLayer &Layer,
                             const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileDense(const std::string &Target, const std::string &Name,
                            int64_t In, int64_t Out,
                            const CompileOptions &Options, std::string *Err) {
  Json Work = Json::object();
  Work.set("kind", "dense");
  Work.set("name", Name);
  Work.set("in", In);
  Work.set("out", Out);
  return compileWorkload(Target, std::move(Work), Options, Err);
}

std::optional<CompileClient::ModelResult>
CompileClient::compileModel(const std::string &Target, const Model &M,
                            const CompileOptions &Options, std::string *Err) {
  Json J = Json::object();
  J.set("type", "compile_model");
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("model", toJson(M));
  J.set("options", toJson(Options));
  std::optional<Json> Response = roundTrip(J, "model_result", Err);
  if (!Response)
    return std::nullopt;

  const Json *Layers = Response->get("layers");
  if (!Layers || !Layers->isArray()) {
    setErr(Err, "model_result missing 'layers'");
    return std::nullopt;
  }
  ModelResult R;
  R.ModelName = Response->str("model");
  R.Layers.reserve(Layers->items().size());
  for (const Json &LayerJson : Layers->items()) {
    KernelReport Report;
    std::string DecodeErr;
    if (!kernelReportFromJson(LayerJson, Report, DecodeErr)) {
      setErr(Err, DecodeErr);
      return std::nullopt;
    }
    R.Layers.push_back(std::move(Report));
  }
  R.DistinctShapes = static_cast<size_t>(Response->integer("distinct_shapes"));
  R.CacheHitLayers =
      static_cast<size_t>(Response->integer("cache_hit_layers"));
  R.ServerWallSeconds = Response->num("wall_seconds");
  return R;
}

std::optional<std::vector<CompileClient::TargetInfo>>
CompileClient::listTargets(std::string *Err) {
  Json J = Json::object();
  J.set("type", "list_targets");
  J.set("id", NextId++);
  std::optional<Json> Response = roundTrip(J, "targets", Err);
  if (!Response)
    return std::nullopt;
  const Json *Targets = Response->get("targets");
  if (!Targets || !Targets->isArray()) {
    setErr(Err, "targets response missing 'targets'");
    return std::nullopt;
  }
  std::vector<TargetInfo> Out;
  Out.reserve(Targets->items().size());
  for (const Json &T : Targets->items()) {
    TargetInfo Info;
    Info.Id = T.str("id");
    Info.Description = T.str("description");
    Info.SupportsConv3d = T.boolean("conv3d", false);
    Info.SpecHash = T.str("spec_hash");
    if (const Json *Intrs = T.get("intrinsics"))
      for (const Json &I : Intrs->items())
        if (I.isString())
          Info.Intrinsics.push_back(I.asString());
    Out.push_back(std::move(Info));
  }
  return Out;
}

std::optional<Json> CompileClient::stats(bool Detail, std::string *Err) {
  Json J = Json::object();
  J.set("type", "stats");
  J.set("id", NextId++);
  if (Detail)
    J.set("detail", true);
  return roundTrip(J, "stats_result", Err);
}

std::optional<size_t> CompileClient::saveCache(const std::string &Path,
                                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "save_cache");
  J.set("id", NextId++);
  if (!Path.empty())
    J.set("path", Path);
  std::optional<Json> Response = roundTrip(J, "saved", Err);
  if (!Response)
    return std::nullopt;
  return static_cast<size_t>(Response->integer("entries"));
}

bool CompileClient::shutdownServer(std::string *Err) {
  Json J = Json::object();
  J.set("type", "shutdown");
  bool Ok = roundTrip(J, "bye", Err).has_value();
  close();
  return Ok;
}
