//===- server/CompileClient.cpp --------------------------------------------===//

#include "server/CompileClient.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace unit;

namespace {

void setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
}

} // namespace

CompileClient::~CompileClient() { close(); }

bool CompileClient::connect(const std::string &SocketPath, std::string *Err) {
  close();
  sockaddr_un Addr;
  if (!makeUnixSocketAddr(SocketPath, Addr, Err))
    return false;
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setErr(Err, std::string("socket() failed: ") + std::strerror(errno));
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    setErr(Err, "connect(" + SocketPath + ") failed: " + std::strerror(errno));
    ::close(Fd);
    Fd = -1;
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ReaderExited = false;
    ReaderExitReason.clear();
    Replies.clear();
    Unclaimed.clear();
    Outstanding.clear();
    ArrivalCounter = 0;
  }
  Reader = std::thread([this] { readerLoop(); });
  return true;
}

void CompileClient::close() {
  // shutdown() (not close()) wakes the reader parked in readFrame; the fd
  // itself is released only after the join, so the reader can never race
  // a recycled descriptor number.
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
  if (Reader.joinable())
    Reader.join();
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

//===----------------------------------------------------------------------===//
// Reader thread: the receive side of the socket
//===----------------------------------------------------------------------===//

void CompileClient::readerLoop() {
  std::string Payload;
  while (true) {
    FrameStatus Status = readFrame(Fd, Payload);
    if (Status != FrameStatus::Ok) {
      failAllPending(Status == FrameStatus::Eof
                         ? "server closed the connection"
                         : "read failed");
      return;
    }
    std::string ParseErr;
    std::optional<Json> Frame = Json::parse(Payload, &ParseErr);
    if (Frame && isNotification(*Frame)) {
      uint64_t Ticket = static_cast<uint64_t>(Frame->integer("ticket", 0));
      std::shared_ptr<std::promise<CompileResult>> P;
      uint64_t Arrival = 0;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        Arrival = ++ArrivalCounter;
        auto It = Tickets.find(Ticket);
        if (It != Tickets.end()) {
          P = std::move(It->second);
          Tickets.erase(It);
        } else {
          // The submitted reply naming this ticket has not been consumed
          // yet (pipelined submission); park the note for registerTicket.
          Unclaimed[Ticket] = EarlyNote{std::move(*Frame), Arrival};
        }
      }
      if (P)
        resolveTicket(*P, *Frame, Arrival);
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      QueuedReply R;
      if (Frame)
        R.Frame = std::move(*Frame);
      else
        R.Err = "malformed response: " + ParseErr;
      Replies.push_back(std::move(R));
    }
    ReplyCv.notify_all();
  }
}

void CompileClient::failAllPending(const std::string &Why) {
  std::unordered_map<uint64_t, std::shared_ptr<std::promise<CompileResult>>>
      Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ReaderExited = true;
    ReaderExitReason = Why;
    Orphans.swap(Tickets);
  }
  for (auto &KV : Orphans)
    KV.second->set_exception(
        std::make_exception_ptr(std::runtime_error(Why)));
  ReplyCv.notify_all();
}

void CompileClient::resolveTicket(std::promise<CompileResult> &P,
                                  const Json &Note, uint64_t Arrival) {
  if (const Json *Error = Note.get("error")) {
    P.set_exception(std::make_exception_ptr(std::runtime_error(
        "server error: " +
        (Error->isString() ? Error->asString() : Note.dump()))));
    return;
  }
  const Json *ReportJson = Note.get("report");
  CompileResult R;
  std::string DecodeErr;
  if (!ReportJson || !kernelReportFromJson(*ReportJson, R.Report, DecodeErr)) {
    P.set_exception(std::make_exception_ptr(std::runtime_error(
        DecodeErr.empty() ? "result missing 'report'" : DecodeErr)));
    return;
  }
  R.Cached = Note.boolean("cached", false);
  R.Arrival = Arrival;
  P.set_value(std::move(R));
}

//===----------------------------------------------------------------------===//
// Request / reply plumbing
//===----------------------------------------------------------------------===//

bool CompileClient::sendRequest(const Json &Request, std::string *Err) {
  if (Fd < 0) {
    setErr(Err, "not connected");
    return false;
  }
  if (!writeFrame(Fd, Request.dump())) {
    setErr(Err, "write failed (server gone?)");
    return false;
  }
  return true;
}

std::optional<Json> CompileClient::awaitReply(std::string *Err) {
  std::unique_lock<std::mutex> Lock(Mu);
  ReplyCv.wait(Lock, [this] { return !Replies.empty() || ReaderExited; });
  if (Replies.empty()) {
    setErr(Err, ReaderExitReason.empty() ? "connection closed"
                                         : ReaderExitReason);
    return std::nullopt;
  }
  QueuedReply R = std::move(Replies.front());
  Replies.pop_front();
  if (!R.Frame) {
    setErr(Err, R.Err);
    return std::nullopt;
  }
  return std::move(R.Frame);
}

std::optional<Json> CompileClient::request(const Json &Request,
                                           std::string *Err) {
  if (!sendRequest(Request, Err)) {
    close();
    return std::nullopt;
  }
  std::optional<Json> Reply = awaitReply(Err);
  if (!Reply) {
    // A dead reader means a dead connection; a merely malformed frame
    // (test traffic) leaves the connection usable.
    bool Dead;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Dead = ReaderExited;
    }
    if (Dead)
      close();
  }
  return Reply;
}

std::optional<Json> CompileClient::roundTrip(const Json &Request,
                                             const char *ExpectType,
                                             std::string *Err) {
  std::optional<Json> Response = request(Request, Err);
  if (!Response)
    return std::nullopt;
  std::string Type = Response->str("type");
  if (Type == "error") {
    setErr(Err, "server error: " + Response->str("message"));
    return std::nullopt;
  }
  if (Type != ExpectType) {
    setErr(Err, "expected '" + std::string(ExpectType) + "' response, got '" +
                    Type + "'");
    return std::nullopt;
  }
  return Response;
}

std::optional<Json> CompileClient::hello(const std::string &ClientName,
                                         int MaxCandidates, std::string *Err) {
  Json J = Json::object();
  J.set("type", "hello");
  J.set("client", ClientName);
  if (MaxCandidates > 0)
    J.set("max_candidates", MaxCandidates);
  return roundTrip(J, "welcome", Err);
}

//===----------------------------------------------------------------------===//
// Blocking compiles
//===----------------------------------------------------------------------===//

std::optional<CompileClient::CompileResult>
CompileClient::decodeResult(const Json &Response, std::string *Err) {
  const Json *ReportJson = Response.get("report");
  if (!ReportJson) {
    setErr(Err, "result missing 'report'");
    return std::nullopt;
  }
  CompileResult R;
  std::string DecodeErr;
  if (!kernelReportFromJson(*ReportJson, R.Report, DecodeErr)) {
    setErr(Err, DecodeErr);
    return std::nullopt;
  }
  R.Cached = Response.boolean("cached", false);
  return R;
}

Json CompileClient::makeCompileMessage(const char *Type,
                                       const std::string &Target,
                                       Json WorkloadJson,
                                       const CompileOptions &Options) {
  Json J = Json::object();
  J.set("type", Type);
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("workload", std::move(WorkloadJson));
  J.set("options", toJson(Options));
  return J;
}

std::optional<CompileClient::CompileResult>
CompileClient::compileWorkload(const std::string &Target, Json WorkloadJson,
                               const CompileOptions &Options,
                               std::string *Err) {
  std::optional<Json> Response =
      roundTrip(makeCompileMessage("compile", Target, std::move(WorkloadJson),
                                   Options),
                "result", Err);
  if (!Response)
    return std::nullopt;
  return decodeResult(*Response, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv(const std::string &Target, const ConvLayer &Layer,
                           const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileConv3d(const std::string &Target,
                             const Conv3dLayer &Layer,
                             const CompileOptions &Options, std::string *Err) {
  return compileWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::CompileResult>
CompileClient::compileDense(const std::string &Target, const std::string &Name,
                            int64_t In, int64_t Out,
                            const CompileOptions &Options, std::string *Err) {
  Json Work = Json::object();
  Work.set("kind", "dense");
  Work.set("name", Name);
  Work.set("in", In);
  Work.set("out", Out);
  return compileWorkload(Target, std::move(Work), Options, Err);
}

//===----------------------------------------------------------------------===//
// Streaming compiles
//===----------------------------------------------------------------------===//

CompileClient::AsyncHandle CompileClient::registerTicket(uint64_t Ticket) {
  auto P = std::make_shared<std::promise<CompileResult>>();
  AsyncHandle H;
  H.Ticket = Ticket;
  H.Fut = P->get_future().share();
  std::optional<EarlyNote> Early;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Unclaimed.find(Ticket);
    if (It != Unclaimed.end()) {
      Early = std::move(It->second);
      Unclaimed.erase(It);
    } else if (ReaderExited) {
      // The connection died between the submitted reply and now; nobody
      // will ever resolve this ticket — fail it instead of parking it.
      P->set_exception(std::make_exception_ptr(std::runtime_error(
          ReaderExitReason.empty() ? "connection closed" : ReaderExitReason)));
      Outstanding.push_back(H);
      return H;
    } else {
      Tickets.emplace(Ticket, P);
    }
    Outstanding.push_back(H);
  }
  if (Early)
    resolveTicket(*P, Early->Frame, Early->Arrival);
  return H;
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitWorkload(const std::string &Target, Json WorkloadJson,
                              const CompileOptions &Options,
                              std::string *Err) {
  std::optional<Json> Response =
      roundTrip(makeCompileMessage("compile_async", Target,
                                   std::move(WorkloadJson), Options),
                "submitted", Err);
  if (!Response)
    return std::nullopt;
  uint64_t Ticket = static_cast<uint64_t>(Response->integer("ticket", 0));
  if (Ticket == 0) {
    setErr(Err, "submitted reply missing 'ticket'");
    return std::nullopt;
  }
  return registerTicket(Ticket);
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitConv(const std::string &Target, const ConvLayer &Layer,
                          const CompileOptions &Options, std::string *Err) {
  return submitWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitConv3d(const std::string &Target,
                            const Conv3dLayer &Layer,
                            const CompileOptions &Options, std::string *Err) {
  return submitWorkload(Target, toJson(Layer), Options, Err);
}

std::optional<CompileClient::AsyncHandle>
CompileClient::submitDense(const std::string &Target, const std::string &Name,
                           int64_t In, int64_t Out,
                           const CompileOptions &Options, std::string *Err) {
  Json Work = Json::object();
  Work.set("kind", "dense");
  Work.set("name", Name);
  Work.set("in", In);
  Work.set("out", Out);
  return submitWorkload(Target, std::move(Work), Options, Err);
}

std::optional<std::vector<CompileClient::AsyncHandle>>
CompileClient::submitModelLayers(const std::string &Target, const Model &M,
                                 const CompileOptions &Options,
                                 std::string *Err) {
  // Write every frame first, then collect replies: the server handles one
  // connection's requests in order, so the k-th submitted reply belongs
  // to the k-th layer — and the socket stays full instead of stalling a
  // round trip per layer.
  for (const ConvLayer &L : M.Convs)
    if (!sendRequest(makeCompileMessage("compile_async", Target, toJson(L),
                                        Options),
                     Err)) {
      close();
      return std::nullopt;
    }
  // Consume every reply of the batch even after a failure: returning
  // early would leave the later replies queued and desynchronize every
  // subsequent request on this connection. Tickets that did get issued
  // are registered regardless, so waitAll() still joins (and the reader
  // still routes) their notifications.
  std::vector<AsyncHandle> Handles;
  Handles.reserve(M.Convs.size());
  std::string FirstErr;
  for (size_t I = 0; I < M.Convs.size(); ++I) {
    std::optional<Json> Reply = awaitReply(Err);
    if (!Reply) {
      close(); // Transport failure: nothing more will arrive.
      return std::nullopt;
    }
    uint64_t Ticket = static_cast<uint64_t>(Reply->integer("ticket", 0));
    if (Reply->str("type") == "submitted" && Ticket != 0) {
      Handles.push_back(registerTicket(Ticket));
    } else if (FirstErr.empty()) {
      FirstErr = Reply->str("type") == "error"
                     ? "server error: " + Reply->str("message")
                     : "expected 'submitted' reply, got '" +
                           Reply->str("type") + "'";
    }
  }
  if (!FirstErr.empty()) {
    setErr(Err, FirstErr);
    return std::nullopt;
  }
  return Handles;
}

std::optional<CompileClient::CompileResult>
CompileClient::wait(const AsyncHandle &Handle, std::string *Err) {
  if (!Handle.valid()) {
    setErr(Err, "invalid async handle");
    return std::nullopt;
  }
  try {
    return Handle.Fut.get();
  } catch (const std::exception &E) {
    setErr(Err, E.what());
    return std::nullopt;
  }
}

bool CompileClient::waitAll(std::string *Err) {
  std::vector<AsyncHandle> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ToJoin.swap(Outstanding);
  }
  bool Ok = true;
  std::string FirstErr;
  for (const AsyncHandle &H : ToJoin) {
    std::string HandleErr;
    if (!wait(H, &HandleErr) && Ok) {
      Ok = false;
      FirstErr = HandleErr;
    }
  }
  if (!Ok)
    setErr(Err, FirstErr);
  return Ok;
}

bool CompileClient::cancel(const AsyncHandle &Handle, std::string *Err) {
  Json J = Json::object();
  J.set("type", "cancel");
  J.set("id", NextId++);
  J.set("ticket", Handle.Ticket);
  std::optional<Json> Response = roundTrip(J, "cancelled", Err);
  if (!Response)
    return false;
  if (Response->boolean("was_pending", false)) {
    // No notification will ever come: resolve the local future as
    // cancelled and stop waitAll from waiting on it.
    std::shared_ptr<std::promise<CompileResult>> P;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Tickets.find(Handle.Ticket);
      if (It != Tickets.end()) {
        P = std::move(It->second);
        Tickets.erase(It);
      }
      Outstanding.erase(
          std::remove_if(Outstanding.begin(), Outstanding.end(),
                         [&](const AsyncHandle &H) {
                           return H.Ticket == Handle.Ticket;
                         }),
          Outstanding.end());
    }
    if (P)
      P->set_exception(std::make_exception_ptr(
          std::runtime_error("cancelled by this client")));
  }
  return true;
}

std::optional<std::string> CompileClient::poll(const AsyncHandle &Handle,
                                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "poll");
  J.set("id", NextId++);
  J.set("ticket", Handle.Ticket);
  std::optional<Json> Response = roundTrip(J, "ticket_status", Err);
  if (!Response)
    return std::nullopt;
  return Response->str("state");
}

size_t CompileClient::pendingTickets() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Tickets.size();
}

//===----------------------------------------------------------------------===//
// Model compiles, discovery, stats, persistence, shutdown
//===----------------------------------------------------------------------===//

std::optional<CompileClient::ModelResult>
CompileClient::compileModel(const std::string &Target, const Model &M,
                            const CompileOptions &Options, std::string *Err) {
  Json J = Json::object();
  J.set("type", "compile_model");
  J.set("id", NextId++);
  J.set("target", Target);
  J.set("model", toJson(M));
  J.set("options", toJson(Options));
  std::optional<Json> Response = roundTrip(J, "model_result", Err);
  if (!Response)
    return std::nullopt;

  const Json *Layers = Response->get("layers");
  if (!Layers || !Layers->isArray()) {
    setErr(Err, "model_result missing 'layers'");
    return std::nullopt;
  }
  ModelResult R;
  R.ModelName = Response->str("model");
  R.Layers.reserve(Layers->items().size());
  for (const Json &LayerJson : Layers->items()) {
    KernelReport Report;
    std::string DecodeErr;
    if (!kernelReportFromJson(LayerJson, Report, DecodeErr)) {
      setErr(Err, DecodeErr);
      return std::nullopt;
    }
    R.Layers.push_back(std::move(Report));
  }
  R.DistinctShapes = static_cast<size_t>(Response->integer("distinct_shapes"));
  R.CacheHitLayers =
      static_cast<size_t>(Response->integer("cache_hit_layers"));
  R.ServerWallSeconds = Response->num("wall_seconds");
  return R;
}

std::optional<std::vector<CompileClient::TargetInfo>>
CompileClient::listTargets(std::string *Err) {
  Json J = Json::object();
  J.set("type", "list_targets");
  J.set("id", NextId++);
  std::optional<Json> Response = roundTrip(J, "targets", Err);
  if (!Response)
    return std::nullopt;
  const Json *Targets = Response->get("targets");
  if (!Targets || !Targets->isArray()) {
    setErr(Err, "targets response missing 'targets'");
    return std::nullopt;
  }
  std::vector<TargetInfo> Out;
  Out.reserve(Targets->items().size());
  for (const Json &T : Targets->items()) {
    TargetInfo Info;
    Info.Id = T.str("id");
    Info.Description = T.str("description");
    Info.SupportsConv3d = T.boolean("conv3d", false);
    Info.SpecHash = T.str("spec_hash");
    if (const Json *Intrs = T.get("intrinsics"))
      for (const Json &I : Intrs->items())
        if (I.isString())
          Info.Intrinsics.push_back(I.asString());
    Out.push_back(std::move(Info));
  }
  return Out;
}

std::optional<Json> CompileClient::stats(bool Detail, std::string *Err) {
  Json J = Json::object();
  J.set("type", "stats");
  J.set("id", NextId++);
  if (Detail)
    J.set("detail", true);
  return roundTrip(J, "stats_result", Err);
}

std::optional<size_t> CompileClient::saveCache(const std::string &Path,
                                               std::string *Err) {
  Json J = Json::object();
  J.set("type", "save_cache");
  J.set("id", NextId++);
  if (!Path.empty())
    J.set("path", Path);
  std::optional<Json> Response = roundTrip(J, "saved", Err);
  if (!Response)
    return std::nullopt;
  return static_cast<size_t>(Response->integer("entries"));
}

bool CompileClient::shutdownServer(std::string *Err) {
  Json J = Json::object();
  J.set("type", "shutdown");
  bool Ok = roundTrip(J, "bye", Err).has_value();
  close();
  return Ok;
}
