//===- target/MachineOverlay.cpp - Measured machine-model refit ------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//

#include "target/MachineOverlay.h"

#include "server/Protocol.h" // Json — the repo's one JSON implementation.
#include "target/TargetRegistry.h"

#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace unit {

namespace {

std::atomic<bool> OverlayActive{false};

bool fail(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

/// Replaces \p *Field with \p Block[Key] when present. Every machine
/// parameter is a finite positive quantity — a zero frequency or
/// bandwidth would divide-by-zero inside the cost model, so bad values
/// are rejected here, before any spec is touched.
bool refitField(const Json &Block, const char *Key, double *Field,
                std::string *Err) {
  const Json *V = Block.get(Key);
  if (!V)
    return true;
  if (!V->isNumber())
    return fail(Err, std::string("overlay field '") + Key +
                         "' is not a number");
  double X = V->asNumber();
  if (!std::isfinite(X) || X <= 0)
    return fail(Err, std::string("overlay field '") + Key +
                         "' must be finite and > 0");
  *Field = X;
  return true;
}

/// Integer-valued parameters (core / SM counts) additionally reject
/// fractional refits: 23.5 cores is a measurement bug, not a machine.
bool refitCountField(const Json &Block, const char *Key, int *Field,
                     std::string *Err) {
  const Json *V = Block.get(Key);
  if (!V)
    return true;
  if (!V->isNumber())
    return fail(Err, std::string("overlay field '") + Key +
                         "' is not a number");
  double X = V->asNumber();
  if (!std::isfinite(X) || X <= 0 || X != std::floor(X) || X > 1 << 20)
    return fail(Err, std::string("overlay field '") + Key +
                         "' must be a positive integer");
  *Field = static_cast<int>(X);
  return true;
}

/// Rejects keys outside \p Known: a typo'd field silently keeping its
/// factory value would defeat the whole point of a refit.
bool checkKnownKeys(const Json &Block, const char *BlockName,
                    const std::vector<std::string> &Known,
                    std::string *Err) {
  for (const auto &Member : Block.members()) {
    bool Found = false;
    for (const std::string &K : Known)
      if (Member.first == K) {
        Found = true;
        break;
      }
    if (!Found)
      return fail(Err, std::string("unknown ") + BlockName +
                           " overlay field '" + Member.first + "'");
  }
  return true;
}

// Field names mirror perf/MachineModel.h in declaration (and
// cacheFingerprint) order.
bool applyCpuBlock(const Json &Block, CpuMachine &M, std::string *Err) {
  if (!checkKnownKeys(Block, "cpu",
                      {"freq_ghz", "cores", "load_ports_per_cycle",
                       "fork_join_cycles", "per_chunk_sched_cycles",
                       "icache_body_budget_bytes", "residue_branch_penalty",
                       "dram_bytes_per_cycle", "l2_bytes_per_core",
                       "simd_vector_bytes", "simd_pipes",
                       "widening_factor_no_dot"},
                      Err))
    return false;
  return refitField(Block, "freq_ghz", &M.FreqGHz, Err) &&
         refitCountField(Block, "cores", &M.Cores, Err) &&
         refitField(Block, "load_ports_per_cycle", &M.LoadPortsPerCycle,
                    Err) &&
         refitField(Block, "fork_join_cycles", &M.ForkJoinCycles, Err) &&
         refitField(Block, "per_chunk_sched_cycles", &M.PerChunkSchedCycles,
                    Err) &&
         refitField(Block, "icache_body_budget_bytes",
                    &M.ICacheBodyBudgetBytes, Err) &&
         refitField(Block, "residue_branch_penalty", &M.ResidueBranchPenalty,
                    Err) &&
         refitField(Block, "dram_bytes_per_cycle", &M.DramBytesPerCycle,
                    Err) &&
         refitField(Block, "l2_bytes_per_core", &M.L2BytesPerCore, Err) &&
         refitField(Block, "simd_vector_bytes", &M.SimdVectorBytes, Err) &&
         refitField(Block, "simd_pipes", &M.SimdPipes, Err) &&
         refitField(Block, "widening_factor_no_dot", &M.WideningFactorNoDot,
                    Err);
}

bool applyGpuBlock(const Json &Block, GpuMachine &M, std::string *Err) {
  if (!checkKnownKeys(Block, "gpu",
                      {"freq_ghz", "sms", "wmma_per_cycle_per_sm",
                       "warp_issue_cycles", "fma_per_cycle_per_sm",
                       "kernel_launch_micros", "sync_base_cycles",
                       "sync_per_segment_cycles", "regs_per_accum_tile",
                       "regs_base", "reg_budget_per_warp",
                       "dram_bytes_per_cycle", "warps_for_peak_bandwidth",
                       "shared_bytes_per_sm"},
                      Err))
    return false;
  return refitField(Block, "freq_ghz", &M.FreqGHz, Err) &&
         refitCountField(Block, "sms", &M.SMs, Err) &&
         refitField(Block, "wmma_per_cycle_per_sm", &M.WmmaPerCyclePerSM,
                    Err) &&
         refitField(Block, "warp_issue_cycles", &M.WarpIssueCycles, Err) &&
         refitField(Block, "fma_per_cycle_per_sm", &M.FmaPerCyclePerSM,
                    Err) &&
         refitField(Block, "kernel_launch_micros", &M.KernelLaunchMicros,
                    Err) &&
         refitField(Block, "sync_base_cycles", &M.SyncBaseCycles, Err) &&
         refitField(Block, "sync_per_segment_cycles",
                    &M.SyncPerSegmentCycles, Err) &&
         refitField(Block, "regs_per_accum_tile", &M.RegsPerAccumTile,
                    Err) &&
         refitField(Block, "regs_base", &M.RegsBase, Err) &&
         refitField(Block, "reg_budget_per_warp", &M.RegBudgetPerWarp,
                    Err) &&
         refitField(Block, "dram_bytes_per_cycle", &M.DramBytesPerCycle,
                    Err) &&
         refitField(Block, "warps_for_peak_bandwidth",
                    &M.WarpsForPeakBandwidth, Err) &&
         refitField(Block, "shared_bytes_per_sm", &M.SharedBytesPerSM, Err);
}

} // namespace

bool applyMachineOverlayText(const std::string &Text, std::string *Err) {
  std::string ParseErr;
  std::optional<Json> Doc = Json::parse(Text, &ParseErr);
  if (!Doc)
    return fail(Err, "overlay parse error: " + ParseErr);
  if (!Doc->isObject())
    return fail(Err, "overlay document is not an object");
  if (Doc->integer("version", -1) != 1)
    return fail(Err, "overlay 'version' must be 1");
  const Json *Refit = Doc->get("refit");
  if (!Refit || !Refit->isArray() || Refit->items().empty())
    return fail(Err, "overlay 'refit' must be a non-empty array");

  // Validate every entry against the live registry and build the refit
  // specs first; only a fully valid document mutates any registration.
  TargetRegistry &Registry = TargetRegistry::instance();
  std::vector<TargetSpec> Updated;
  std::vector<SpecSource> UpdatedSources;
  for (const Json &Entry : Refit->items()) {
    if (!Entry.isObject())
      return fail(Err, "overlay refit entry is not an object");
    std::string Target = Entry.str("target");
    if (Target.empty())
      return fail(Err, "overlay refit entry is missing 'target'");
    for (const TargetSpec &Prev : Updated)
      if (Prev.Id == Target)
        return fail(Err, "overlay lists target '" + Target + "' twice");
    if (!Registry.lookup(Target))
      return fail(Err, "overlay target '" + Target + "' is not registered");
    if (!Registry.hasSpecFor(Target))
      return fail(Err, "overlay target '" + Target +
                           "' is a hand-written backend (no spec to refit)");
    TargetSpec Spec = Registry.specFor(Target);

    const Json *Cpu = Entry.get("cpu");
    const Json *Gpu = Entry.get("gpu");
    if ((Cpu != nullptr) == (Gpu != nullptr))
      return fail(Err, "overlay target '" + Target +
                           "' needs exactly one of 'cpu' / 'gpu'");
    if (Cpu) {
      if (Spec.Engine != TargetSpec::EngineKind::CpuDot)
        return fail(Err, "overlay target '" + Target +
                             "' is a GPU target but carries a 'cpu' block");
      if (!Cpu->isObject())
        return fail(Err, "overlay 'cpu' block is not an object");
      if (!applyCpuBlock(*Cpu, Spec.Cpu, Err))
        return false;
    } else {
      if (Spec.Engine != TargetSpec::EngineKind::GpuImplicitGemm)
        return fail(Err, "overlay target '" + Target +
                             "' is a CPU target but carries a 'gpu' block");
      if (!Gpu->isObject())
        return fail(Err, "overlay 'gpu' block is not an object");
      if (!applyGpuBlock(*Gpu, Spec.Gpu, Err))
        return false;
    }
    Updated.push_back(std::move(Spec));
    // A refit changes constants, not provenance: a file-loaded spec
    // stays "file" in list_targets after the overlay lands.
    UpdatedSources.push_back(Registry.specSourceFor(Target));
  }

  // registerSpec re-hashes each spec, so cache keys and the persistence
  // fingerprint move with the refit constants automatically.
  for (size_t I = 0; I < Updated.size(); ++I)
    Registry.registerSpec(std::move(Updated[I]), UpdatedSources[I]);
  OverlayActive.store(true, std::memory_order_relaxed);
  return true;
}

bool applyMachineOverlayFile(const std::string &Path, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, "cannot read overlay file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return applyMachineOverlayText(Buf.str(), Err);
}

bool machineOverlayActive() {
  return OverlayActive.load(std::memory_order_relaxed);
}

} // namespace unit
