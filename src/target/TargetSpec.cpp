//===- target/TargetSpec.cpp -----------------------------------------------===//

#include "target/TargetSpec.h"

#include "core/Isomorphism.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

using namespace unit;

namespace {

/// FNV-1a 64-bit. Collisions across the handful of spec revisions a
/// deployment sees are astronomically unlikely, and a wrong hash only
/// costs a cold cache, never a wrong kernel.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

std::string TargetSpec::hash() const {
  // Canonical description: every field that can change a compiled
  // report. The inactive machine block is deliberately excluded — a
  // CpuDot spec's report cannot depend on GPU parameters.
  std::string Desc = "unit-target-spec-v1|" + Id + "|";
  Desc += Engine == EngineKind::CpuDot ? "cpu-dot" : "gpu-implicit-gemm";
  Desc += "|" + describeQuantScheme(Scheme);
  Desc += "|machine:";
  Desc += Engine == EngineKind::CpuDot ? Cpu.cacheFingerprint()
                                       : Gpu.cacheFingerprint();
  if (Engine == EngineKind::CpuDot)
    Desc += SupportsConv3d ? "|conv3d" : "|no-conv3d";
  for (const TensorIntrinsicRef &I : Intrinsics) {
    Desc += "|intr:" + I->name() + ";" + I->llvmIntrinsic() + ";";
    Desc += canonicalComputeKey(*I->semantics());
    Desc += formatStr(";%a;%a;%a", I->cost().LatencyCycles,
                      I->cost().IssuePerCycle, I->cost().MacsPerInstr);
  }
  return formatStr("%016llx",
                   static_cast<unsigned long long>(fnv1a(Desc)));
}

std::string TargetSpec::cacheSalt() const { return Id + "|" + hash(); }

void TargetSpec::validate() const {
  if (Id.empty())
    reportFatalError("TargetSpec: empty target id");
  if (Id.find('|') != std::string::npos)
    reportFatalError("TargetSpec '" + Id +
                     "': target ids must not contain '|' (the cache-key "
                     "separator)");
  if (Intrinsics.empty())
    reportFatalError("TargetSpec '" + Id + "': no instructions — describe "
                     "at least one TensorIntrinsic");
  for (const TensorIntrinsicRef &I : Intrinsics) {
    if (!I)
      reportFatalError("TargetSpec '" + Id + "': null intrinsic");
    if (I->target() != Id)
      reportFatalError("TargetSpec '" + Id + "': instruction '" + I->name() +
                       "' is registered for target '" + I->target() + "'");
  }
  if (Scheme.LaneMultiple <= 0 || Scheme.ReduceMultiple <= 0)
    reportFatalError("TargetSpec '" + Id +
                     "': padding multiples must be positive");
}
