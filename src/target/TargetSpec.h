//===- target/TargetSpec.h - Declarative backend description --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §III.A claim made literal: integrating a new hardware
/// backend is *registering a description*, not writing a compiler. A
/// TargetSpec bundles everything the runtime needs for one platform —
///
///   - a string target id (the registry key, the wire name, the cache-key
///     prefix): "x86", "arm-sve", "my-npu", ...;
///   - the tensor-DSL instruction set (isa/TensorIntrinsic.h), widest
///     first;
///   - the quantization scheme the instructions consume
///     (graph/Quantize.h);
///   - the machine-model parameters the analytic cost model prices
///     against (perf/MachineModel.h), driven by one of two generic
///     compile strategies (direct-conv dot-product CPU, implicit-GEMM
///     tensor-core GPU);
///
/// and TargetRegistry::registerSpec(spec) materializes a full backend
/// from it: the graph quantizer, the Inspector, the tuner, the kernel
/// cache, the compile server, and the wire protocol all pick the new
/// target up with zero core-compiler edits (asserted in
/// tests/test_extensibility.cpp). See docs/BACKENDS.md for a worked
/// example.
///
/// spec.hash() digests every field that can change a compiled report;
/// it prefixes cache keys and is folded into the persisted-cache
/// fingerprint, so kernels tuned under one spec revision can never be
/// served under another.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TARGET_TARGETSPEC_H
#define UNIT_TARGET_TARGETSPEC_H

#include "graph/Quantize.h"
#include "isa/TensorIntrinsic.h"
#include "perf/MachineModel.h"

#include <string>
#include <vector>

namespace unit {

/// Declarative description of one hardware backend.
struct TargetSpec {
  /// Registry key and wire name. Lowercase by convention; must be
  /// non-empty and free of '|' (the cache-key field separator).
  std::string Id;

  /// One-line human description, surfaced by the server's list_targets.
  std::string Description;

  /// Which generic compile strategy drives the spec's machine block.
  /// This is a strategy choice, not a target enumeration: every new
  /// backend reuses one of the two existing pipelines with its own
  /// parameters.
  enum class EngineKind {
    CpuDot,          ///< Direct-conv blocking + dot-product tuner (tuneCpu).
    GpuImplicitGemm, ///< Implicit-GEMM view + tensor-core tuner (tuneGpu).
  };
  EngineKind Engine = EngineKind::CpuDot;

  /// Machine-model parameters; the block matching Engine is used, the
  /// other is ignored (and excluded from hash()).
  CpuMachine Cpu;
  GpuMachine Gpu;

  /// The operand/accumulator types and padding multiples the spec's
  /// instructions consume.
  QuantScheme Scheme;

  /// The tensor-DSL instruction set, widest-first (the Inspector takes
  /// the first applicable instruction). Every instruction's target()
  /// must equal Id.
  std::vector<TensorIntrinsicRef> Intrinsics;

  /// CpuDot only: conv3d workloads flow through the same direct-conv
  /// pipeline (paper §VI.C). GpuImplicitGemm backends never support it.
  bool SupportsConv3d = true;

  /// Deterministic digest (16 hex chars) of the full description: id,
  /// engine, scheme, active machine fingerprint, and every instruction's
  /// name/semantics/cost. Any revision yields a new hash.
  std::string hash() const;

  /// "<Id>|<hash()>" — the prefix of every cache key compiled under this
  /// spec, so two spec revisions (or two machines) never share entries.
  std::string cacheSalt() const;

  /// Fatal-errors on structural mistakes: empty or '|'-containing id, no
  /// instructions, an instruction registered for a different target id,
  /// or non-positive padding multiples.
  void validate() const;
};

} // namespace unit

#endif // UNIT_TARGET_TARGETSPEC_H
