//===- target/TargetRegistry.cpp -------------------------------------------===//

#include "target/TargetRegistry.h"

#include "core/Inspector.h"
#include "core/Isomorphism.h"
#include "graph/Executor.h"
#include "graph/Layout.h"
#include "perf/CostModel.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"
#include "target/BuiltinSpecs.h"
#include "tuner/Tuner.h"

#include <algorithm>
#include <unordered_set>

using namespace unit;

TargetBackend::~TargetBackend() = default;

std::vector<TensorIntrinsicRef> TargetBackend::intrinsics() const {
  return IntrinsicRegistry::instance().forTarget(id());
}

std::string TargetBackend::conv3dKey(const Conv3dLayer &) const {
  reportFatalError(id() + " backend does not support conv3d workloads");
}

KernelReport TargetBackend::compileConv3d(const Conv3dLayer &, ThreadPool *,
                                          const CompileOptions &) const {
  reportFatalError(id() + " backend does not support conv3d workloads");
}

namespace {

/// First applicable instruction from \p Intrs against \p Op.
std::optional<MatchResult>
firstMatch(const ComputeOpRef &Op,
           const std::vector<TensorIntrinsicRef> &Intrs) {
  for (const TensorIntrinsicRef &Intr : Intrs)
    if (std::optional<MatchResult> M = inspect(Op, Intr))
      return M;
  return std::nullopt;
}

KernelReport reportFromTuned(const TunedKernel &Tuned,
                             const std::string &IntrName) {
  KernelReport R;
  R.Seconds = Tuned.LatencySeconds;
  R.Tensorized = true;
  R.BestCandidateIndex = Tuned.BestCandidateIndex;
  // Reports are cached, persisted, and exchanged between peers, so they
  // must stay a pure function of (workload, target, budget): the searched
  // space size qualifies, the pruned search's scored count (which varies
  // with seeding and thread timing) does not. TunedKernel keeps the
  // scored-only telemetry for in-process callers.
  R.CandidatesTried = Tuned.SpaceSize;
  R.IntrinsicName = IntrName;
  return R;
}

/// CompileOptions -> TunerOptions for one search. \p SpaceOffset /
/// \p ViewSpace translate a concatenated-enumeration seed (the GPU
/// backend's fuse-enum reports index [fused..., unfused...]) into this
/// view's local space; pass 0 / -1 for single-view backends.
TunerOptions tunerOptions(const CompileOptions &Options, int SpaceOffset = 0,
                          int ViewSpace = -1) {
  TunerOptions Opts;
  Opts.MaxCandidates = Options.MaxCandidates;
  Opts.Prune = Options.PruneSearch;
  if (Options.SeedCandidate >= 0) {
    int Local = Options.SeedCandidate - SpaceOffset;
    if (ViewSpace < 0 || (Local >= 0 && Local < ViewSpace))
      Opts.SeedCandidate = Local;
  }
  return Opts;
}

int64_t dataParallelExtent(const ComputeOpRef &Op) {
  int64_t Extent = 1;
  for (const IterVar &IV : Op->axes())
    Extent *= IV->extent();
  return Extent;
}

/// The spec's own instructions first (spec order is widest-first), then
/// any instructions user code added to the global registry under the same
/// target id — so a runtime-registered custom instruction still extends a
/// spec backend, and a revised spec's instructions shadow the stale
/// global copies dedup left behind.
std::vector<TensorIntrinsicRef> specIntrinsics(const TargetSpec &Spec) {
  std::vector<TensorIntrinsicRef> Out = Spec.Intrinsics;
  std::unordered_set<std::string> Names;
  for (const TensorIntrinsicRef &I : Out)
    Names.insert(I->name());
  for (const TensorIntrinsicRef &I :
       IntrinsicRegistry::instance().forTarget(Spec.Id))
    if (Names.insert(I->name()).second)
      Out.push_back(I);
  return Out;
}

/// The registered spec for \p TargetId with its machine block replaced.
TargetSpec specWithMachine(const std::string &TargetId, CpuMachine Machine) {
  TargetSpec Spec = TargetRegistry::instance().specFor(TargetId);
  if (Spec.Engine != TargetSpec::EngineKind::CpuDot)
    reportFatalError("target '" + TargetId + "' is not a CPU target");
  Spec.Cpu = std::move(Machine);
  return Spec;
}

TargetSpec specWithMachine(const std::string &TargetId, GpuMachine Machine) {
  TargetSpec Spec = TargetRegistry::instance().specFor(TargetId);
  if (Spec.Engine != TargetSpec::EngineKind::GpuImplicitGemm)
    reportFatalError("target '" + TargetId + "' is not a GPU target");
  Spec.Gpu = std::move(Machine);
  return Spec;
}

} // namespace

//===----------------------------------------------------------------------===//
// CpuBackend
//===----------------------------------------------------------------------===//

CpuBackend::CpuBackend(TargetSpec SpecIn) : Spec(std::move(SpecIn)) {
  Spec.validate();
  if (Spec.Engine != TargetSpec::EngineKind::CpuDot)
    reportFatalError("CpuBackend requires a CpuDot spec (target '" +
                     Spec.Id + "')");
  // The hash folds in the full machine-parameter fingerprint: two
  // machines sharing a label but differing in any latency-relevant knob
  // never share cached reports.
  Hash = Spec.hash();
  Salt = Spec.cacheSalt();
}

CpuBackend::CpuBackend(CpuMachine Machine, const std::string &TargetId)
    : CpuBackend(specWithMachine(TargetId, std::move(Machine))) {}

std::vector<TensorIntrinsicRef> CpuBackend::intrinsics() const {
  return specIntrinsics(Spec);
}

std::string CpuBackend::convKey(const ConvLayer &Layer) const {
  if (Layer.Depthwise)
    return cacheSalt() + "|dw|" + Layer.shapeKey();
  std::string Shape = Layer.shapeKey();
  {
    std::lock_guard<std::mutex> Lock(KeyMu);
    auto It = KeyMemo.find(Shape);
    if (It != KeyMemo.end())
      return It->second;
  }
  // The CPU report is a pure function of the laid-out op, so the
  // canonical key is sound here: layers whose different raw shapes pad
  // to isomorphic blocked ops share one compiled kernel.
  LaidOutOp Laid = buildDirectConvOp(Layer, Spec.Scheme.Activation,
                                     Spec.Scheme.Weight,
                                     Spec.Scheme.Accumulator,
                                     Spec.Scheme.LaneMultiple,
                                     Spec.Scheme.ReduceMultiple);
  std::string Key = cacheSalt() + "|conv|" + canonicalComputeKey(*Laid.Op);
  std::lock_guard<std::mutex> Lock(KeyMu);
  KeyMemo.emplace(std::move(Shape), Key);
  return Key;
}

KernelReport CpuBackend::compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                     const CompileOptions &Options) const {
  KernelReport Report;
  if (Layer.Depthwise) {
    // No channel reduction, so the Inspector rejects every dot
    // instruction; price the SIMD schedule directly.
    KernelStats Stats = depthwiseSimdStats(Layer, /*WideningFactor=*/1.5);
    Report.Seconds = simdLatencySeconds(Stats, Spec.Cpu);
    return Report;
  }
  LaidOutOp Laid = buildDirectConvOp(Layer, Spec.Scheme.Activation,
                                     Spec.Scheme.Weight,
                                     Spec.Scheme.Accumulator,
                                     Spec.Scheme.LaneMultiple,
                                     Spec.Scheme.ReduceMultiple);
  std::optional<MatchResult> Match = firstMatch(Laid.Op, intrinsics());
  if (!Match) {
    KernelStats Stats = analyzeSimdFallback(
        Laid.Op, /*WideningFactor=*/1.0,
        static_cast<double>(Layer.outH()) * Layer.outW());
    Report.Seconds = simdLatencySeconds(Stats, Spec.Cpu);
    return Report;
  }
  TunedKernel Tuned =
      tuneCpu(Laid.Op, *Match, Spec.Cpu, Pool, tunerOptions(Options));
  return reportFromTuned(Tuned, Match->Intrinsic->name());
}

KernelReport CpuBackend::compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                   const CompileOptions &Options) const {
  if (std::optional<MatchResult> Match = firstMatch(Op, intrinsics())) {
    TunedKernel Tuned =
        tuneCpu(Op, *Match, Spec.Cpu, Pool, tunerOptions(Options));
    return reportFromTuned(Tuned, Match->Intrinsic->name());
  }
  KernelReport Report;
  KernelStats Stats =
      analyzeSimdFallback(Op, /*WideningFactor=*/1.0,
                          static_cast<double>(dataParallelExtent(Op)));
  Report.Seconds = simdLatencySeconds(Stats, Spec.Cpu);
  return Report;
}

std::string CpuBackend::conv3dKey(const Conv3dLayer &Layer) const {
  if (!Spec.SupportsConv3d)
    return TargetBackend::conv3dKey(Layer);
  std::string Shape = formatStr(
      "3d|c%lld.d%lld.h%lld.w%lld.k%lld.r%lld.st%lld.p%lld",
      static_cast<long long>(Layer.InC), static_cast<long long>(Layer.InD),
      static_cast<long long>(Layer.InH), static_cast<long long>(Layer.InW),
      static_cast<long long>(Layer.OutC), static_cast<long long>(Layer.K),
      static_cast<long long>(Layer.Stride),
      static_cast<long long>(Layer.Pad));
  {
    std::lock_guard<std::mutex> Lock(KeyMu);
    auto It = KeyMemo.find(Shape);
    if (It != KeyMemo.end())
      return It->second;
  }
  LaidOutOp Laid = buildDirectConv3dOp(Layer, Spec.Scheme.Activation,
                                       Spec.Scheme.Weight,
                                       Spec.Scheme.Accumulator,
                                       Spec.Scheme.LaneMultiple,
                                       Spec.Scheme.ReduceMultiple);
  std::string Key = cacheSalt() + "|conv3d|" + canonicalComputeKey(*Laid.Op);
  std::lock_guard<std::mutex> Lock(KeyMu);
  KeyMemo.emplace(std::move(Shape), Key);
  return Key;
}

KernelReport CpuBackend::compileConv3d(const Conv3dLayer &Layer,
                                       ThreadPool *Pool,
                                       const CompileOptions &Options) const {
  if (!Spec.SupportsConv3d)
    return TargetBackend::compileConv3d(Layer, Pool, Options);
  LaidOutOp Laid = buildDirectConv3dOp(Layer, Spec.Scheme.Activation,
                                       Spec.Scheme.Weight,
                                       Spec.Scheme.Accumulator,
                                       Spec.Scheme.LaneMultiple,
                                       Spec.Scheme.ReduceMultiple);
  std::optional<MatchResult> Match = firstMatch(Laid.Op, intrinsics());
  if (!Match)
    reportFatalError("conv3d failed to tensorize");
  TunedKernel Tuned =
      tuneCpu(Laid.Op, *Match, Spec.Cpu, Pool, tunerOptions(Options));
  return reportFromTuned(Tuned, Match->Intrinsic->name());
}

//===----------------------------------------------------------------------===//
// GpuBackend
//===----------------------------------------------------------------------===//

GpuBackend::GpuBackend(TargetSpec SpecIn) : Spec(std::move(SpecIn)) {
  Spec.validate();
  if (Spec.Engine != TargetSpec::EngineKind::GpuImplicitGemm)
    reportFatalError("GpuBackend requires a GpuImplicitGemm spec (target '" +
                     Spec.Id + "')");
  Hash = Spec.hash();
  Salt = Spec.cacheSalt();
}

GpuBackend::GpuBackend(GpuMachine Machine, const std::string &TargetId)
    : GpuBackend(specWithMachine(TargetId, std::move(Machine))) {}

std::vector<TensorIntrinsicRef> GpuBackend::intrinsics() const {
  return specIntrinsics(Spec);
}

std::string GpuBackend::convKey(const ConvLayer &Layer) const {
  if (Layer.Depthwise)
    return cacheSalt() + "|dw|" + Layer.shapeKey();
  // The compiled result folds in the fused *and* unfused implicit-GEMM
  // views plus their layout-rearrangement traffic, all of which the
  // padded GEMM op erases (two layers with different strides can build
  // identical GEMMs yet pay different rearrange costs) — so the key is
  // the full conv geometry, which still excludes names and therefore
  // still collapses isomorphic renamed layers.
  return cacheSalt() + "|conv+fuse-enum|" + Layer.shapeKey();
}

KernelReport GpuBackend::compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                     const CompileOptions &Options) const {
  KernelReport Report;
  if (Layer.Depthwise) {
    Report.Seconds = gpuCudaCoreConvSeconds(Layer, Spec.Gpu, /*Scale=*/1.0);
    return Report;
  }
  // Enumerate the graph-level dimension-fusion choice alongside the kernel
  // tuning space (paper §IV.B GPU tuning) and keep the best.
  std::vector<TensorIntrinsicRef> Intrs = intrinsics();
  double Best = 1e30;
  for (bool Fuse : {true, false}) {
    LaidOutOp Laid =
        buildConvAsGemmOp(Layer, Spec.Scheme.Activation,
                          Spec.Scheme.Accumulator, Spec.Scheme.LaneMultiple,
                          Fuse);
    std::optional<MatchResult> Match = firstMatch(Laid.Op, Intrs);
    if (!Match)
      continue;
    // A transfer seed indexes the concatenated enumeration; hand each
    // view the part of it that falls in its own space (the running
    // CandidatesTried is exactly this view's offset).
    TunedKernel Tuned =
        tuneGpu(Laid.Op, *Match, Spec.Gpu, Pool,
                tunerOptions(Options, Report.CandidatesTried,
                             Options.MaxCandidates));
    double Rearrange = Laid.RearrangeBytes /
                       (Spec.Gpu.DramBytesPerCycle * Spec.Gpu.FreqGHz * 1e9);
    double Total = Tuned.LatencySeconds + Rearrange;
    if (Total < Best) {
      Best = Total;
      Report.Tensorized = true;
      // Index into the concatenated [fused..., unfused...] candidate
      // enumeration, consistent with the summed CandidatesTried — an
      // index >= the fused variant's count means the unfused view won.
      Report.BestCandidateIndex =
          Report.CandidatesTried + Tuned.BestCandidateIndex;
      Report.IntrinsicName = Match->Intrinsic->name();
    }
    Report.CandidatesTried += Tuned.SpaceSize;
  }
  if (Best >= 1e30)
    Best = gpuCudaCoreConvSeconds(Layer, Spec.Gpu, 2.0);
  Report.Seconds = Best;
  return Report;
}

KernelReport GpuBackend::compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                   const CompileOptions &Options) const {
  if (std::optional<MatchResult> Match = firstMatch(Op, intrinsics())) {
    TunedKernel Tuned =
        tuneGpu(Op, *Match, Spec.Gpu, Pool, tunerOptions(Options));
    return reportFromTuned(Tuned, Match->Intrinsic->name());
  }
  // CUDA-core fallback for untensorizable ops: roofline over total MACs
  // (the Fig. 1 no-tensor-core path, without layer-level utilization
  // detail since all we have here is the operation).
  KernelReport Report;
  double Macs = static_cast<double>(dataParallelExtent(Op));
  for (const IterVar &IV : Op->reduceAxes())
    Macs *= static_cast<double>(IV->extent());
  double MacsPerSecond = Spec.Gpu.SMs * Spec.Gpu.FmaPerCyclePerSM *
                         Spec.Gpu.FreqGHz * 1e9;
  Report.Seconds = Macs / MacsPerSecond + Spec.Gpu.KernelLaunchMicros * 1e-6;
  return Report;
}

//===----------------------------------------------------------------------===//
// TargetRegistry
//===----------------------------------------------------------------------===//

TargetRegistry &TargetRegistry::instance() {
  // Magic-static init is thread-safe; defaults are the shipped specs.
  static TargetRegistry *Registry = [] {
    auto *R = new TargetRegistry();
    for (TargetSpec &Spec : builtinTargetSpecs())
      R->registerSpec(std::move(Spec));
    return R;
  }();
  return *Registry;
}

const char *unit::specSourceName(SpecSource Source) {
  switch (Source) {
  case SpecSource::Builtin:
    return "builtin";
  case SpecSource::File:
    return "file";
  case SpecSource::Wire:
    return "wire";
  }
  return "builtin";
}

TargetBackendRef TargetRegistry::registerSpec(TargetSpec Spec,
                                              SpecSource Source) {
  Spec.validate();
  // Make the spec's instructions visible to the global inspection
  // helpers (inspectTarget, compileForTarget). Same-name entries are
  // replaced in place: the built-in specs re-register the instructions
  // registerBuiltinIntrinsics installed (identical objects in spirit),
  // and a *revised* spec's instructions must be what the global
  // registry serves too — never a stale previous revision.
  IntrinsicRegistry &Intrs = IntrinsicRegistry::instance();
  for (const TensorIntrinsicRef &I : Spec.Intrinsics)
    Intrs.addOrReplace(I);

  TargetBackendRef Backend;
  if (Spec.Engine == TargetSpec::EngineKind::CpuDot)
    Backend = std::make_shared<CpuBackend>(Spec);
  else
    Backend = std::make_shared<GpuBackend>(Spec);

  std::lock_guard<std::mutex> Lock(Mu);
  Sources.insert_or_assign(Spec.Id, Source);
  Specs.insert_or_assign(Spec.Id, std::move(Spec));
  registerBackendLocked(Backend);
  return Backend;
}

void TargetRegistry::registerBackend(TargetBackendRef Backend) {
  if (!Backend)
    reportFatalError("TargetRegistry: null backend");
  std::lock_guard<std::mutex> Lock(Mu);
  // A hand-written backend carries no spec; dropping the replaced
  // registration's spec keeps specFor()'s contract honest.
  Specs.erase(Backend->id());
  Sources.erase(Backend->id());
  registerBackendLocked(std::move(Backend));
}

void TargetRegistry::registerBackendLocked(TargetBackendRef Backend) {
  for (TargetBackendRef &B : Backends)
    if (B->id() == Backend->id()) {
      B = std::move(Backend);
      return;
    }
  Backends.push_back(std::move(Backend));
}

TargetBackendRef TargetRegistry::get(const std::string &Id) const {
  if (TargetBackendRef B = lookup(Id))
    return B;
  reportFatalError("TargetRegistry: no backend registered for '" + Id + "'");
}

TargetBackendRef TargetRegistry::lookup(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const TargetBackendRef &B : Backends)
    if (B->id() == Id)
      return B;
  return nullptr;
}

TargetSpec TargetRegistry::specFor(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Specs.find(Id);
  if (It == Specs.end())
    reportFatalError("TargetRegistry: no spec registered for '" + Id +
                     "' (hand-written backends carry no spec)");
  return It->second;
}

bool TargetRegistry::hasSpecFor(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Specs.count(Id) != 0;
}

SpecSource TargetRegistry::specSourceFor(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Sources.find(Id);
  return It == Sources.end() ? SpecSource::Builtin : It->second;
}

std::vector<TargetBackendRef> TargetRegistry::all() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Backends;
}
