//===- target/SpecFile.cpp - Target specs as JSON files --------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//

#include "target/SpecFile.h"

#include "core/Isomorphism.h"
#include "isa/Intrinsics.h"
#include "support/ErrorHandling.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace unit {

namespace {

bool fail(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

//===----------------------------------------------------------------------===//
// DataType codec ("i8", "u8", "i16", "f16", ... — DataType::str inverse)
//===----------------------------------------------------------------------===//

bool parseDataType(const std::string &Text, DataType &Out) {
  if (Text.size() < 2)
    return false;
  DTypeKind Kind;
  switch (Text[0]) {
  case 'i': Kind = DTypeKind::Int; break;
  case 'u': Kind = DTypeKind::UInt; break;
  case 'f': Kind = DTypeKind::Float; break;
  default: return false;
  }
  int Bits = 0;
  for (size_t I = 1; I < Text.size(); ++I) {
    if (Text[I] < '0' || Text[I] > '9')
      return false; // Vector spellings ("u8x64") are not scheme types.
    Bits = Bits * 10 + (Text[I] - '0');
    if (Bits > 64)
      return false;
  }
  if (Bits != 8 && Bits != 16 && Bits != 32 && Bits != 64)
    return false;
  if (Kind == DTypeKind::Float && Bits == 8)
    return false;
  Out = DataType(Kind, static_cast<unsigned>(Bits));
  return true;
}

bool readDataTypeField(const Json &Obj, const std::string &Path,
                       const char *Key, DataType &Out, std::string *Err) {
  const Json *V = Obj.get(Key);
  if (!V || !V->isString())
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be a scalar dtype string (\"i8\", \"u8\", "
                         "\"i16\", \"f16\", ...)");
  if (!parseDataType(V->asString(), Out))
    return fail(Err, "spec field '" + Path + "." + Key +
                         "': unknown dtype '" + V->asString() + "'");
  return true;
}

//===----------------------------------------------------------------------===//
// Shared field readers — every error names the offending JSON path.
//===----------------------------------------------------------------------===//

bool readPositiveDouble(const Json &Obj, const std::string &Path,
                        const char *Key, double &Out, std::string *Err) {
  const Json *V = Obj.get(Key);
  if (!V || !V->isNumber())
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be a number");
  double X = V->asNumber();
  if (!std::isfinite(X) || X <= 0)
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be finite and > 0");
  Out = X;
  return true;
}

bool readPositiveInt(const Json &Obj, const std::string &Path,
                     const char *Key, int64_t Max, int64_t &Out,
                     std::string *Err) {
  const Json *V = Obj.get(Key);
  if (!V || !V->isNumber())
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be a number");
  double X = V->asNumber();
  if (!std::isfinite(X) || X <= 0 || X != std::floor(X) ||
      X > static_cast<double>(Max))
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be a positive integer <= " +
                         std::to_string(Max));
  Out = static_cast<int64_t>(X);
  return true;
}

bool readString(const Json &Obj, const std::string &Path, const char *Key,
                std::string &Out, std::string *Err) {
  const Json *V = Obj.get(Key);
  if (!V || !V->isString() || V->asString().empty())
    return fail(Err, "spec field '" + Path + "." + Key +
                         "' must be a non-empty string");
  Out = V->asString();
  return true;
}

/// Rejects members of \p Obj outside \p Known — a typo'd machine
/// parameter silently keeping a default would defeat the all-or-nothing
/// contract (same stance as MachineOverlay).
bool checkKnownKeys(const Json &Obj, const std::string &Path,
                    const std::vector<std::string> &Known, std::string *Err) {
  for (const auto &Member : Obj.members()) {
    bool Found = false;
    for (const std::string &K : Known)
      if (Member.first == K) {
        Found = true;
        break;
      }
    if (!Found)
      return fail(Err, "unknown spec field '" + Path +
                           (Path.empty() ? "" : ".") + Member.first + "'");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Machine blocks — snake_case keys mirroring perf/MachineModel.h in
// declaration (and cacheFingerprint) order, plus "name". Every field is
// required: a defaulted machine constant would silently misprice every
// kernel compiled under the spec.
//===----------------------------------------------------------------------===//

bool parseCpuBlock(const Json &Block, CpuMachine &M, std::string *Err) {
  if (!checkKnownKeys(Block, "cpu",
                      {"name", "freq_ghz", "cores", "load_ports_per_cycle",
                       "fork_join_cycles", "per_chunk_sched_cycles",
                       "icache_body_budget_bytes", "residue_branch_penalty",
                       "dram_bytes_per_cycle", "l2_bytes_per_core",
                       "simd_vector_bytes", "simd_pipes",
                       "widening_factor_no_dot"},
                      Err))
    return false;
  int64_t Cores = 0;
  if (!readString(Block, "cpu", "name", M.Name, Err) ||
      !readPositiveDouble(Block, "cpu", "freq_ghz", M.FreqGHz, Err) ||
      !readPositiveInt(Block, "cpu", "cores", 1 << 20, Cores, Err) ||
      !readPositiveDouble(Block, "cpu", "load_ports_per_cycle",
                          M.LoadPortsPerCycle, Err) ||
      !readPositiveDouble(Block, "cpu", "fork_join_cycles", M.ForkJoinCycles,
                          Err) ||
      !readPositiveDouble(Block, "cpu", "per_chunk_sched_cycles",
                          M.PerChunkSchedCycles, Err) ||
      !readPositiveDouble(Block, "cpu", "icache_body_budget_bytes",
                          M.ICacheBodyBudgetBytes, Err) ||
      !readPositiveDouble(Block, "cpu", "residue_branch_penalty",
                          M.ResidueBranchPenalty, Err) ||
      !readPositiveDouble(Block, "cpu", "dram_bytes_per_cycle",
                          M.DramBytesPerCycle, Err) ||
      !readPositiveDouble(Block, "cpu", "l2_bytes_per_core", M.L2BytesPerCore,
                          Err) ||
      !readPositiveDouble(Block, "cpu", "simd_vector_bytes",
                          M.SimdVectorBytes, Err) ||
      !readPositiveDouble(Block, "cpu", "simd_pipes", M.SimdPipes, Err) ||
      !readPositiveDouble(Block, "cpu", "widening_factor_no_dot",
                          M.WideningFactorNoDot, Err))
    return false;
  M.Cores = static_cast<int>(Cores);
  return true;
}

bool parseGpuBlock(const Json &Block, GpuMachine &M, std::string *Err) {
  if (!checkKnownKeys(Block, "gpu",
                      {"name", "freq_ghz", "sms", "wmma_per_cycle_per_sm",
                       "warp_issue_cycles", "fma_per_cycle_per_sm",
                       "kernel_launch_micros", "sync_base_cycles",
                       "sync_per_segment_cycles", "regs_per_accum_tile",
                       "regs_base", "reg_budget_per_warp",
                       "dram_bytes_per_cycle", "warps_for_peak_bandwidth",
                       "shared_bytes_per_sm"},
                      Err))
    return false;
  int64_t SMs = 0;
  if (!readString(Block, "gpu", "name", M.Name, Err) ||
      !readPositiveDouble(Block, "gpu", "freq_ghz", M.FreqGHz, Err) ||
      !readPositiveInt(Block, "gpu", "sms", 1 << 20, SMs, Err) ||
      !readPositiveDouble(Block, "gpu", "wmma_per_cycle_per_sm",
                          M.WmmaPerCyclePerSM, Err) ||
      !readPositiveDouble(Block, "gpu", "warp_issue_cycles",
                          M.WarpIssueCycles, Err) ||
      !readPositiveDouble(Block, "gpu", "fma_per_cycle_per_sm",
                          M.FmaPerCyclePerSM, Err) ||
      !readPositiveDouble(Block, "gpu", "kernel_launch_micros",
                          M.KernelLaunchMicros, Err) ||
      !readPositiveDouble(Block, "gpu", "sync_base_cycles", M.SyncBaseCycles,
                          Err) ||
      !readPositiveDouble(Block, "gpu", "sync_per_segment_cycles",
                          M.SyncPerSegmentCycles, Err) ||
      !readPositiveDouble(Block, "gpu", "regs_per_accum_tile",
                          M.RegsPerAccumTile, Err) ||
      !readPositiveDouble(Block, "gpu", "regs_base", M.RegsBase, Err) ||
      !readPositiveDouble(Block, "gpu", "reg_budget_per_warp",
                          M.RegBudgetPerWarp, Err) ||
      !readPositiveDouble(Block, "gpu", "dram_bytes_per_cycle",
                          M.DramBytesPerCycle, Err) ||
      !readPositiveDouble(Block, "gpu", "warps_for_peak_bandwidth",
                          M.WarpsForPeakBandwidth, Err) ||
      !readPositiveDouble(Block, "gpu", "shared_bytes_per_sm",
                          M.SharedBytesPerSM, Err))
    return false;
  M.SMs = static_cast<int>(SMs);
  return true;
}

Json cpuBlockJson(const CpuMachine &M) {
  Json J = Json::object();
  J.set("name", M.Name);
  J.set("freq_ghz", M.FreqGHz);
  J.set("cores", M.Cores);
  J.set("load_ports_per_cycle", M.LoadPortsPerCycle);
  J.set("fork_join_cycles", M.ForkJoinCycles);
  J.set("per_chunk_sched_cycles", M.PerChunkSchedCycles);
  J.set("icache_body_budget_bytes", M.ICacheBodyBudgetBytes);
  J.set("residue_branch_penalty", M.ResidueBranchPenalty);
  J.set("dram_bytes_per_cycle", M.DramBytesPerCycle);
  J.set("l2_bytes_per_core", M.L2BytesPerCore);
  J.set("simd_vector_bytes", M.SimdVectorBytes);
  J.set("simd_pipes", M.SimdPipes);
  J.set("widening_factor_no_dot", M.WideningFactorNoDot);
  return J;
}

Json gpuBlockJson(const GpuMachine &M) {
  Json J = Json::object();
  J.set("name", M.Name);
  J.set("freq_ghz", M.FreqGHz);
  J.set("sms", M.SMs);
  J.set("wmma_per_cycle_per_sm", M.WmmaPerCyclePerSM);
  J.set("warp_issue_cycles", M.WarpIssueCycles);
  J.set("fma_per_cycle_per_sm", M.FmaPerCyclePerSM);
  J.set("kernel_launch_micros", M.KernelLaunchMicros);
  J.set("sync_base_cycles", M.SyncBaseCycles);
  J.set("sync_per_segment_cycles", M.SyncPerSegmentCycles);
  J.set("regs_per_accum_tile", M.RegsPerAccumTile);
  J.set("regs_base", M.RegsBase);
  J.set("reg_budget_per_warp", M.RegBudgetPerWarp);
  J.set("dram_bytes_per_cycle", M.DramBytesPerCycle);
  J.set("warps_for_peak_bandwidth", M.WarpsForPeakBandwidth);
  J.set("shared_bytes_per_sm", M.SharedBytesPerSM);
  return J;
}

//===----------------------------------------------------------------------===//
// Intrinsics — two kinds, matching the two generic builders. "dot" is a
// VNNI/DOT-style Lanes x Reduce dot product; "mac" is a WMMA-style MxMxM
// in-place matrix-multiply-accumulate. Every builtin spec is built from
// exactly these builders, which is what makes serialization lossless.
//===----------------------------------------------------------------------===//

bool parseIntrinsic(const Json &Obj, const std::string &Path,
                    const std::string &TargetId, TensorIntrinsicRef &Out,
                    std::string *Err) {
  if (!Obj.isObject())
    return fail(Err, "spec field '" + Path + "' must be an object");
  std::string Kind, Name, Llvm;
  if (!readString(Obj, Path, "kind", Kind, Err) ||
      !readString(Obj, Path, "name", Name, Err) ||
      !readString(Obj, Path, "llvm", Llvm, Err))
    return false;
  const Json *CostObj = Obj.get("cost");
  if (!CostObj || !CostObj->isObject())
    return fail(Err, "spec field '" + Path + ".cost' must be an object");
  if (!checkKnownKeys(*CostObj, Path + ".cost",
                      {"latency_cycles", "issue_per_cycle", "macs_per_instr"},
                      Err))
    return false;
  IntrinsicCost Cost;
  if (!readPositiveDouble(*CostObj, Path + ".cost", "latency_cycles",
                          Cost.LatencyCycles, Err) ||
      !readPositiveDouble(*CostObj, Path + ".cost", "issue_per_cycle",
                          Cost.IssuePerCycle, Err) ||
      !readPositiveDouble(*CostObj, Path + ".cost", "macs_per_instr",
                          Cost.MacsPerInstr, Err))
    return false;

  if (Kind == "dot") {
    if (!checkKnownKeys(Obj, Path,
                        {"kind", "name", "llvm", "lanes", "reduce", "a_type",
                         "b_type", "cost"},
                        Err))
      return false;
    int64_t Lanes = 0, Reduce = 0;
    DataType AType, BType;
    // 1<<16 per dimension bounds the semantics tensors a wire-supplied
    // spec can make this process materialize.
    if (!readPositiveInt(Obj, Path, "lanes", 1 << 16, Lanes, Err) ||
        !readPositiveInt(Obj, Path, "reduce", 1 << 16, Reduce, Err) ||
        !readDataTypeField(Obj, Path, "a_type", AType, Err) ||
        !readDataTypeField(Obj, Path, "b_type", BType, Err))
      return false;
    if (Lanes * Reduce > (1 << 20))
      return fail(Err, "spec field '" + Path +
                           "': lanes x reduce exceeds 2^20 MACs per "
                           "instruction");
    Out = makeDotProductIntrinsic(Name, Llvm, TargetId, Lanes, Reduce, AType,
                                  BType, Cost);
    return true;
  }
  if (Kind == "mac") {
    if (!checkKnownKeys(Obj, Path,
                        {"kind", "name", "llvm", "m", "in_type", "acc_type",
                         "cost"},
                        Err))
      return false;
    int64_t M = 0;
    DataType InType, AccType;
    if (!readPositiveInt(Obj, Path, "m", 1 << 10, M, Err) ||
        !readDataTypeField(Obj, Path, "in_type", InType, Err) ||
        !readDataTypeField(Obj, Path, "acc_type", AccType, Err))
      return false;
    Out = makeMacIntrinsic(Name, Llvm, TargetId, M, InType, AccType, Cost);
    return true;
  }
  return fail(Err, "spec field '" + Path + ".kind' must be \"dot\" or "
                   "\"mac\", got '" + Kind + "'");
}

Json serializeIntrinsic(const TensorIntrinsicRef &I) {
  const ComputeOpRef &Sem = I->semantics();
  Json J = Json::object();
  TensorIntrinsicRef Rebuilt;
  if (I->accumulatesInPlace()) {
    // MxMxM in-place MAC: recover M from the first data-parallel axis,
    // input type from the A operand, accumulator type from the output.
    int64_t M = Sem->axes().empty() ? 0 : Sem->axes()[0]->extent();
    DataType InType = Sem->inputs().empty() ? DataType()
                                            : Sem->inputs()[0]->dtype();
    DataType AccType = Sem->output()->dtype();
    J.set("kind", "mac");
    J.set("name", I->name());
    J.set("llvm", I->llvmIntrinsic());
    J.set("m", M);
    J.set("in_type", InType.str());
    J.set("acc_type", AccType.str());
    Rebuilt = makeMacIntrinsic(I->name(), I->llvmIntrinsic(), I->target(), M,
                               InType, AccType, I->cost());
  } else {
    int64_t Lanes = I->outputLanes();
    int64_t Reduce = I->reduceWidth();
    DataType AType = Sem->inputs().empty() ? DataType()
                                           : Sem->inputs()[0]->dtype();
    DataType BType = Sem->inputs().size() < 2 ? DataType()
                                              : Sem->inputs()[1]->dtype();
    J.set("kind", "dot");
    J.set("name", I->name());
    J.set("llvm", I->llvmIntrinsic());
    J.set("lanes", Lanes);
    J.set("reduce", Reduce);
    J.set("a_type", AType.str());
    J.set("b_type", BType.str());
    Rebuilt = makeDotProductIntrinsic(I->name(), I->llvmIntrinsic(),
                                      I->target(), Lanes, Reduce, AType,
                                      BType, I->cost());
  }
  // The file form must reconstruct these exact semantics, or the parsed
  // spec would hash differently and every cache key would silently move.
  // Hand-written DSL intrinsics that the two builder shapes cannot
  // express have no faithful file form — refuse rather than lose bits.
  if (canonicalComputeKey(*Rebuilt->semantics()) !=
      canonicalComputeKey(*Sem))
    reportFatalError("serializeSpec: intrinsic '" + I->name() +
                     "' has hand-written semantics not expressible as a "
                     "\"dot\" or \"mac\" spec-file intrinsic");
  Json Cost = Json::object();
  Cost.set("latency_cycles", I->cost().LatencyCycles);
  Cost.set("issue_per_cycle", I->cost().IssuePerCycle);
  Cost.set("macs_per_instr", I->cost().MacsPerInstr);
  J.set("cost", std::move(Cost));
  return J;
}

const char *engineName(TargetSpec::EngineKind Engine) {
  return Engine == TargetSpec::EngineKind::CpuDot ? "cpu-dot"
                                                  : "gpu-implicit-gemm";
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

Json serializeSpec(const TargetSpec &Spec) {
  Json Doc = Json::object();
  Doc.set("version", SpecFileVersion);
  Doc.set("id", Spec.Id);
  Doc.set("description", Spec.Description);
  Doc.set("engine", engineName(Spec.Engine));
  Json Scheme = Json::object();
  Scheme.set("activation", Spec.Scheme.Activation.str());
  Scheme.set("weight", Spec.Scheme.Weight.str());
  Scheme.set("accumulator", Spec.Scheme.Accumulator.str());
  Scheme.set("lane_multiple", Spec.Scheme.LaneMultiple);
  Scheme.set("reduce_multiple", Spec.Scheme.ReduceMultiple);
  Doc.set("scheme", std::move(Scheme));
  if (Spec.Engine == TargetSpec::EngineKind::CpuDot) {
    Doc.set("cpu", cpuBlockJson(Spec.Cpu));
    Doc.set("conv3d", Spec.SupportsConv3d);
  } else {
    Doc.set("gpu", gpuBlockJson(Spec.Gpu));
  }
  Json Intrs = Json::array();
  for (const TensorIntrinsicRef &I : Spec.Intrinsics)
    Intrs.push(serializeIntrinsic(I));
  Doc.set("intrinsics", std::move(Intrs));
  return Doc;
}

bool parseSpec(const Json &Doc, TargetSpec &Out, std::string *Err) {
  if (!Doc.isObject())
    return fail(Err, "spec document is not an object");
  if (!checkKnownKeys(Doc, "",
                      {"version", "id", "description", "engine", "scheme",
                       "cpu", "gpu", "conv3d", "intrinsics"},
                      Err))
    return false;
  if (Doc.integer("version", -1) != SpecFileVersion)
    return fail(Err, "spec field 'version' must be " +
                         std::to_string(SpecFileVersion));

  TargetSpec Spec;
  if (!readString(Doc, "", "id", Spec.Id, Err))
    return false;
  if (Spec.Id.find('|') != std::string::npos)
    return fail(Err, "spec field 'id' must not contain '|' (the cache-key "
                     "separator)");
  const Json *Desc = Doc.get("description");
  if (Desc) {
    if (!Desc->isString())
      return fail(Err, "spec field 'description' must be a string");
    Spec.Description = Desc->asString();
  }

  std::string Engine;
  if (!readString(Doc, "", "engine", Engine, Err))
    return false;
  if (Engine == "cpu-dot")
    Spec.Engine = TargetSpec::EngineKind::CpuDot;
  else if (Engine == "gpu-implicit-gemm")
    Spec.Engine = TargetSpec::EngineKind::GpuImplicitGemm;
  else
    return fail(Err, "spec field 'engine' must be \"cpu-dot\" or "
                     "\"gpu-implicit-gemm\", got '" + Engine + "'");

  const Json *SchemeObj = Doc.get("scheme");
  if (!SchemeObj || !SchemeObj->isObject())
    return fail(Err, "spec field 'scheme' must be an object");
  if (!checkKnownKeys(*SchemeObj, "scheme",
                      {"activation", "weight", "accumulator", "lane_multiple",
                       "reduce_multiple"},
                      Err))
    return false;
  int64_t LaneMultiple = 0, ReduceMultiple = 0;
  if (!readDataTypeField(*SchemeObj, "scheme", "activation",
                         Spec.Scheme.Activation, Err) ||
      !readDataTypeField(*SchemeObj, "scheme", "weight", Spec.Scheme.Weight,
                         Err) ||
      !readDataTypeField(*SchemeObj, "scheme", "accumulator",
                         Spec.Scheme.Accumulator, Err) ||
      !readPositiveInt(*SchemeObj, "scheme", "lane_multiple", 1 << 16,
                       LaneMultiple, Err) ||
      !readPositiveInt(*SchemeObj, "scheme", "reduce_multiple", 1 << 16,
                       ReduceMultiple, Err))
    return false;
  Spec.Scheme.LaneMultiple = LaneMultiple;
  Spec.Scheme.ReduceMultiple = ReduceMultiple;

  // The machine block must agree with the engine: pricing a cpu-dot spec
  // with GPU constants (or vice versa) is an authoring error, not a
  // defaultable choice.
  const Json *Cpu = Doc.get("cpu");
  const Json *Gpu = Doc.get("gpu");
  if (Spec.Engine == TargetSpec::EngineKind::CpuDot) {
    if (Gpu)
      return fail(Err, "spec field 'gpu': engine \"cpu-dot\" takes a 'cpu' "
                       "machine block, not 'gpu'");
    if (!Cpu || !Cpu->isObject())
      return fail(Err, "spec field 'cpu' must be an object (engine is "
                       "\"cpu-dot\")");
    if (!parseCpuBlock(*Cpu, Spec.Cpu, Err))
      return false;
    const Json *Conv3d = Doc.get("conv3d");
    if (Conv3d && !Conv3d->isBool())
      return fail(Err, "spec field 'conv3d' must be a boolean");
    Spec.SupportsConv3d = Conv3d ? Conv3d->asBool() : true;
  } else {
    if (Cpu)
      return fail(Err, "spec field 'cpu': engine \"gpu-implicit-gemm\" "
                       "takes a 'gpu' machine block, not 'cpu'");
    if (Doc.get("conv3d"))
      return fail(Err, "spec field 'conv3d': \"gpu-implicit-gemm\" engines "
                       "never support conv3d");
    if (!Gpu || !Gpu->isObject())
      return fail(Err, "spec field 'gpu' must be an object (engine is "
                       "\"gpu-implicit-gemm\")");
    if (!parseGpuBlock(*Gpu, Spec.Gpu, Err))
      return false;
    Spec.SupportsConv3d = false;
  }

  const Json *Intrs = Doc.get("intrinsics");
  if (!Intrs || !Intrs->isArray() || Intrs->items().empty())
    return fail(Err, "spec field 'intrinsics' must be a non-empty array");
  std::unordered_set<std::string> Names;
  for (size_t I = 0; I < Intrs->items().size(); ++I) {
    std::string Path = "intrinsics[" + std::to_string(I) + "]";
    TensorIntrinsicRef Intr;
    if (!parseIntrinsic(Intrs->items()[I], Path, Spec.Id, Intr, Err))
      return false;
    if (!Names.insert(Intr->name()).second)
      return fail(Err, "spec field '" + Path + ".name': duplicate "
                       "intrinsic name '" + Intr->name() + "'");
    Spec.Intrinsics.push_back(std::move(Intr));
  }

  Out = std::move(Spec);
  return true;
}

bool parseSpecText(const std::string &Text, TargetSpec &Out,
                   std::string *Err) {
  if (Text.size() > MaxSpecFileBytes)
    return fail(Err, "spec document is " + std::to_string(Text.size()) +
                         " bytes, over the " +
                         std::to_string(MaxSpecFileBytes) + "-byte limit");
  std::string ParseErr;
  std::optional<Json> Doc = Json::parse(Text, &ParseErr);
  if (!Doc)
    return fail(Err, "spec parse error: " + ParseErr);
  return parseSpec(*Doc, Out, Err);
}

bool loadSpecFile(const std::string &Path, TargetSpec &Out,
                  std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, "cannot read spec file '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();
  if (Text.size() > MaxSpecFileBytes)
    return fail(Err, "spec file '" + Path + "' is " +
                         std::to_string(Text.size()) + " bytes, over the " +
                         std::to_string(MaxSpecFileBytes) + "-byte limit");
  if (!parseSpecText(Text, Out, Err)) {
    if (Err)
      *Err = "spec file '" + Path + "': " + *Err;
    return false;
  }
  return true;
}

TargetBackendRef registerSpecFile(const std::string &Path, std::string *Err) {
  TargetSpec Spec;
  if (!loadSpecFile(Path, Spec, Err))
    return nullptr;
  // Everything validate() would abort on was already checked non-fatally
  // by parseSpec, so registration cannot fire the fatal path on file
  // input.
  return TargetRegistry::instance().registerSpec(std::move(Spec),
                                                 SpecSource::File);
}

} // namespace unit
