//===- target/BuiltinSpecs.cpp ---------------------------------------------===//

#include "target/BuiltinSpecs.h"

#include "isa/Intrinsics.h"

using namespace unit;

TargetSpec unit::x86VnniSpec() {
  TargetSpec S;
  S.Id = "x86";
  S.Description = "AVX-512 VNNI dot product, Cascade Lake (c5.12xlarge)";
  S.Engine = TargetSpec::EngineKind::CpuDot;
  S.Cpu = CpuMachine::cascadeLake();
  S.Scheme = {DataType::u8(), DataType::i8(), DataType::i32(), 16, 4};
  S.Intrinsics = {makeVNNIVpdpbusd(), makeVNNIVpdpbusd256(),
                  makeVNNIVpdpbusd128(), makeAVX512Vpdpwssd()};
  return S;
}

TargetSpec unit::armDotSpec() {
  TargetSpec S;
  S.Id = "arm";
  S.Description = "NEON SDOT/UDOT, Graviton2 Neoverse N1 (m6g.8xlarge)";
  S.Engine = TargetSpec::EngineKind::CpuDot;
  S.Cpu = CpuMachine::graviton2();
  S.Scheme = {DataType::i8(), DataType::i8(), DataType::i32(), 4, 4};
  S.Intrinsics = {makeARMSdot(), makeARMUdot()};
  return S;
}

TargetSpec unit::nvgpuWmmaSpec() {
  TargetSpec S;
  S.Id = "nvgpu";
  S.Description = "Tensor Core WMMA implicit GEMM, V100 (p3.2xlarge)";
  S.Engine = TargetSpec::EngineKind::GpuImplicitGemm;
  S.Gpu = GpuMachine::v100();
  S.Scheme = {DataType::f16(), DataType::f16(), DataType::f32(), 16, 16};
  S.Intrinsics = {makeWMMAF16(), makeWMMAS8()};
  S.SupportsConv3d = false; // Implicit-GEMM path is 2d-conv only.
  return S;
}

TargetSpec unit::x86AmxSpec() {
  // Spec-only backend #1: AMX tiles on a Sapphire Rapids-class machine.
  // Everything below — the machine parameters included — lives in this
  // one function; no other compiler file names "x86-amx".
  TargetSpec S;
  S.Id = "x86-amx";
  S.Description = "AMX tile int8 matmul (16x64 tiles), Sapphire Rapids "
                  "(c7i.12xlarge)";
  S.Engine = TargetSpec::EngineKind::CpuDot;

  CpuMachine M;
  M.Name = "c7i.12xlarge (Sapphire Rapids 8488C)";
  M.FreqGHz = 3.2;
  M.Cores = 24;
  M.LoadPortsPerCycle = 3.0; // SPR: three load pipes feed the tile unit.
  M.ForkJoinCycles = 15000.0;
  M.PerChunkSchedCycles = 150.0;
  M.ICacheBodyBudgetBytes = 8192.0;
  M.ResidueBranchPenalty = 0.35;
  M.DramBytesPerCycle = 60.0; // DDR5: ~190 GB/s at 3.2 GHz.
  M.L2BytesPerCore = 2.0 * 1024.0 * 1024.0;
  M.SimdVectorBytes = 64.0;
  M.SimdPipes = 2.0;
  M.WideningFactorNoDot = 3.0;
  S.Cpu = M;

  // One tdpbusd consumes a 16-row x 64-byte A tile against B and
  // accumulates 16 i32 lanes per row step: modeled as a 16-lane x
  // 64-wide dot product (16x64 = 1024 MACs per instruction). The tile
  // unit retires one tdpbusd every other cycle with ~52-cycle
  // result-to-use latency — exactly the hazard the tuner's accumulator
  // unrolling hides.
  S.Scheme = {DataType::u8(), DataType::i8(), DataType::i32(), 16, 64};
  IntrinsicCost Cost{/*LatencyCycles=*/52.0, /*IssuePerCycle=*/0.5,
                     /*MacsPerInstr=*/1024.0};
  S.Intrinsics = {makeDotProductIntrinsic(
      "amx.tdpbusd", "llvm.x86.tdpbusd.internal", S.Id, /*Lanes=*/16,
      /*Reduce=*/64, DataType::u8(), DataType::i8(), Cost)};
  return S;
}

TargetSpec unit::armSveSpec() {
  // Spec-only backend #2: 256-bit SVE on a Graviton3-class machine. A
  // 256-bit vector holds 8 i32 accumulators, each fed by a 4-wide i8
  // dot — twice NEON sdot's width at slightly higher latency.
  TargetSpec S;
  S.Id = "arm-sve";
  S.Description = "SVE 256-bit scalable sdot (8 lanes x 4), Graviton3 "
                  "(m7g.8xlarge)";
  S.Engine = TargetSpec::EngineKind::CpuDot;

  CpuMachine M;
  M.Name = "m7g.8xlarge (Graviton3 Neoverse V1)";
  M.FreqGHz = 2.6;
  M.Cores = 32;
  M.LoadPortsPerCycle = 2.0;
  M.ForkJoinCycles = 12000.0;
  M.PerChunkSchedCycles = 150.0;
  M.ICacheBodyBudgetBytes = 6144.0;
  M.ResidueBranchPenalty = 0.35;
  M.DramBytesPerCycle = 80.0; // DDR5: ~210 GB/s at 2.6 GHz.
  M.L2BytesPerCore = 1024.0 * 1024.0;
  M.SimdVectorBytes = 32.0; // 256-bit SVE.
  M.SimdPipes = 2.0;
  M.WideningFactorNoDot = 8.0;
  S.Cpu = M;

  S.Scheme = {DataType::i8(), DataType::i8(), DataType::i32(), 8, 4};
  IntrinsicCost Cost{/*LatencyCycles=*/4.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/32.0};
  S.Intrinsics = {makeDotProductIntrinsic(
      "sve.sdot.256", "llvm.aarch64.sve.sdot.nxv8i32", S.Id, /*Lanes=*/8,
      /*Reduce=*/4, DataType::i8(), DataType::i8(), Cost)};
  return S;
}

std::vector<TargetSpec> unit::builtinTargetSpecs() {
  return {x86VnniSpec(), armDotSpec(), nvgpuWmmaSpec(), x86AmxSpec(),
          armSveSpec()};
}
