//===- target/BuiltinSpecs.h - The shipped target descriptions ------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backends this build ships, each one a self-contained TargetSpec —
/// the paper's three evaluation platforms plus two backends that exist
/// *only* as specs (no compiler code anywhere mentions them), proving the
/// integration story of §III.A:
///
///   x86      AVX-512 VNNI dot product on Cascade Lake (c5.12xlarge)
///   arm      NEON SDOT/UDOT on Graviton2 (m6g.8xlarge)
///   nvgpu    Tensor Core WMMA on V100 (p3.2xlarge)
///   x86-amx  AMX tile int8 matmul (16-lane x 64-wide tiles), Sapphire
///            Rapids-class machine — defined here, registered as a spec
///   arm-sve  SVE 256-bit scalable sdot (8 lanes x 4), Graviton3-class
///            machine — defined here, registered as a spec
///
/// TargetRegistry::instance() registers all five on first access.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TARGET_BUILTINSPECS_H
#define UNIT_TARGET_BUILTINSPECS_H

#include "target/TargetSpec.h"

#include <vector>

namespace unit {

/// "x86": u8 x i8 -> i32 VNNI, 16 lanes x 4 reduce, Cascade Lake.
TargetSpec x86VnniSpec();

/// "arm": i8 x i8 -> i32 SDOT, 4 lanes x 4 reduce, Graviton2.
TargetSpec armDotSpec();

/// "nvgpu": f16 -> f32 WMMA m16n16k16, V100 implicit-GEMM path.
TargetSpec nvgpuWmmaSpec();

/// "x86-amx": tdpbusd-style tile matmul, 16x64 int8 tiles. Spec-only.
TargetSpec x86AmxSpec();

/// "arm-sve": 256-bit scalable sdot, 8 lanes x 4 reduce. Spec-only.
TargetSpec armSveSpec();

/// All of the above, registration order.
std::vector<TargetSpec> builtinTargetSpecs();

} // namespace unit

#endif // UNIT_TARGET_BUILTINSPECS_H
