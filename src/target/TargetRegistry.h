//===- target/TargetRegistry.h - Backend registration & dispatch ----------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide table of compilation backends, keyed by string target
/// id. A backend bundles everything the runtime needs to compile for one
/// platform — quantization scheme, machine model, intrinsic list, plan
/// builder / tuner dispatch — and is almost always *materialized from a
/// declarative TargetSpec* via registerSpec: the engines, the
/// CompilerSession, the compile server, and the wire protocol all resolve
/// targets here, so one registerSpec call is a complete new backend
/// (docs/BACKENDS.md).
///
/// Two generic backend drivers cover the spec space: CpuBackend
/// (direct-conv blocking + dot-product tuner) and GpuBackend
/// (implicit-GEMM + tensor-core tuner). Hand-written TargetBackend
/// subclasses remain possible through registerBackend for platforms
/// neither driver fits.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TARGET_TARGETREGISTRY_H
#define UNIT_TARGET_TARGETREGISTRY_H

#include "graph/Graph.h"
#include "graph/Quantize.h"
#include "runtime/CompileOptions.h"
#include "runtime/KernelCache.h"
#include "target/TargetSpec.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace unit {

class ThreadPool;

/// Compilation services for one hardware platform. Implementations are
/// immutable and thread-safe: compile* methods may run concurrently from
/// the CompilerSession's pool.
class TargetBackend {
public:
  virtual ~TargetBackend();

  /// The backend's target id ("x86", "arm-sve", ...): registry key, wire
  /// name, and cache-key prefix component.
  virtual const std::string &id() const = 0;

  /// One-line human description (list_targets); may be empty.
  virtual std::string description() const { return std::string(); }

  /// Digest of the backend's full description — the TargetSpec hash for
  /// spec-materialized backends. Folded into the persisted-cache
  /// fingerprint so kernels never survive a spec revision.
  virtual std::string specHash() const { return cacheSalt(); }

  /// Prefixed to every cache key ("x86|<spec-hash>"), so backends of the
  /// same id with different specs or machine models never share entries.
  virtual std::string cacheSalt() const = 0;

  /// The operand/accumulator types this platform's instructions consume.
  virtual const QuantScheme &scheme() const = 0;

  /// Registered instructions for this target, widest-first.
  virtual std::vector<TensorIntrinsicRef> intrinsics() const;

  /// Canonical cache key for one conv layer: the backend's salt plus the
  /// structural serialization of the operation it would build, so two
  /// layers that build isomorphic operations share one compiled kernel.
  virtual std::string convKey(const ConvLayer &Layer) const = 0;

  /// Tunes one conv layer. \p Pool, when non-null, scores tuning
  /// candidates concurrently (result is identical either way);
  /// \p Options.MaxCandidates caps the search space.
  virtual KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                                   const CompileOptions &Options = {}) const = 0;

  /// Tunes one already-built tensor operation.
  virtual KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                                 const CompileOptions &Options = {}) const = 0;

  /// Conv3d support (paper §VI.C). The base implementations fatal-error;
  /// backends that can tensorize 3d convolutions override all three.
  /// Hosts that must not abort on bad input (the compile server) check
  /// supportsConv3d() before routing a conv3d workload here.
  virtual bool supportsConv3d() const { return false; }
  virtual std::string conv3dKey(const Conv3dLayer &Layer) const;
  virtual KernelReport compileConv3d(const Conv3dLayer &Layer,
                                     ThreadPool *Pool,
                                     const CompileOptions &Options = {}) const;
};

using TargetBackendRef = std::shared_ptr<const TargetBackend>;

/// UNIT on a dot-product CPU: the generic driver behind every CpuDot
/// spec (x86 VNNI, ARM DOT, AMX tiles, SVE, ...).
class CpuBackend : public TargetBackend {
  TargetSpec Spec;
  std::string Hash; ///< Spec.hash(), computed once.
  std::string Salt; ///< Spec id + hash.
  /// ConvLayer::shapeKey -> canonical cache key. The shape key is a
  /// strictly finer partition than the canonical key, so memoizing is
  /// sound — and it keeps the cache-hit path from rebuilding the whole
  /// blocked-layout op just to probe the cache.
  mutable std::mutex KeyMu;
  mutable std::unordered_map<std::string, std::string> KeyMemo;

public:
  /// Materializes \p Spec (Engine must be CpuDot).
  explicit CpuBackend(TargetSpec Spec);

  /// The registered spec for \p TargetId with its machine swapped for
  /// \p Machine — how an engine runs a registered target's pipeline on
  /// custom machine parameters. Fatal-errors when \p TargetId is not a
  /// spec-registered CPU target.
  CpuBackend(CpuMachine Machine, const std::string &TargetId);

  const std::string &id() const override { return Spec.Id; }
  std::string description() const override { return Spec.Description; }
  std::string specHash() const override { return Hash; }
  std::string cacheSalt() const override { return Salt; }
  const QuantScheme &scheme() const override { return Spec.Scheme; }
  std::vector<TensorIntrinsicRef> intrinsics() const override;
  std::string convKey(const ConvLayer &Layer) const override;
  KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                           const CompileOptions &Options = {}) const override;
  KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                         const CompileOptions &Options = {}) const override;

  /// Conv3d flows through the same pipeline (paper §VI.C).
  bool supportsConv3d() const override { return Spec.SupportsConv3d; }
  std::string conv3dKey(const Conv3dLayer &Layer) const override;
  KernelReport compileConv3d(const Conv3dLayer &Layer, ThreadPool *Pool,
                             const CompileOptions &Options = {}) const override;

  const CpuMachine &machine() const { return Spec.Cpu; }
  const TargetSpec &spec() const { return Spec; }
};

/// UNIT on a tensor-core GPU: the generic driver behind GpuImplicitGemm
/// specs. The conv compile enumerates the graph-level dimension-fusion
/// choice alongside the kernel tuning space.
class GpuBackend : public TargetBackend {
  TargetSpec Spec;
  std::string Hash;
  std::string Salt;

public:
  /// Materializes \p Spec (Engine must be GpuImplicitGemm).
  explicit GpuBackend(TargetSpec Spec);

  /// The registered spec for \p TargetId with its machine swapped for
  /// \p Machine (see CpuBackend's counterpart).
  GpuBackend(GpuMachine Machine, const std::string &TargetId = "nvgpu");

  const std::string &id() const override { return Spec.Id; }
  std::string description() const override { return Spec.Description; }
  std::string specHash() const override { return Hash; }
  std::string cacheSalt() const override { return Salt; }
  const QuantScheme &scheme() const override { return Spec.Scheme; }
  std::vector<TensorIntrinsicRef> intrinsics() const override;
  std::string convKey(const ConvLayer &Layer) const override;
  KernelReport compileConv(const ConvLayer &Layer, ThreadPool *Pool,
                           const CompileOptions &Options = {}) const override;
  KernelReport compileOp(const ComputeOpRef &Op, ThreadPool *Pool,
                         const CompileOptions &Options = {}) const override;

  const GpuMachine &machine() const { return Spec.Gpu; }
  const TargetSpec &spec() const { return Spec; }
};

/// Where a registered spec came from — surfaced by the server's
/// list_targets so operators can tell shipped backends from ones loaded
/// at startup (`--target-spec`) or pushed into a running daemon
/// (`register_target`). In-process registrations (tests, embedding
/// hosts) default to Builtin: they are compiled-in as far as an operator
/// is concerned.
enum class SpecSource { Builtin, File, Wire };

/// Wire/display name: "builtin", "file", or "wire".
const char *specSourceName(SpecSource Source);

/// Process-wide target-id -> backend table. The shipped specs
/// (target/BuiltinSpecs.h) are registered as defaults on first access;
/// registering a spec or backend for an existing id replaces it — that is
/// how a spec revision rolls out.
class TargetRegistry {
  mutable std::mutex Mu;
  std::vector<TargetBackendRef> Backends;
  /// Specs behind spec-registered backends, for specFor(). Kept in
  /// lockstep with Backends: a hand-written registerBackend for an id
  /// erases the id's spec.
  std::unordered_map<std::string, TargetSpec> Specs;
  /// Provenance per spec-registered id, in lockstep with Specs.
  std::unordered_map<std::string, SpecSource> Sources;

  TargetRegistry() = default;
  /// Installs \p Backend under its id, replacing any previous
  /// registration. Mu must be held.
  void registerBackendLocked(TargetBackendRef Backend);

public:
  TargetRegistry(const TargetRegistry &) = delete;
  TargetRegistry &operator=(const TargetRegistry &) = delete;

  static TargetRegistry &instance();

  /// Materializes a full backend from \p Spec (validated first), makes
  /// its instructions visible to the global IntrinsicRegistry (by-name
  /// dedup, so re-registering a revised spec is fine), and registers it
  /// under Spec.Id — replacing any previous registration. This is the
  /// whole integration surface for a new hardware target. \p Source
  /// records where the spec came from for list_targets provenance.
  TargetBackendRef registerSpec(TargetSpec Spec,
                                SpecSource Source = SpecSource::Builtin);

  /// Registers a hand-written backend (advanced; specs cover the normal
  /// cases). Replaces any existing backend with the same id.
  void registerBackend(TargetBackendRef Backend);

  /// The backend for \p Id; fatal-errors when none is registered.
  TargetBackendRef get(const std::string &Id) const;

  /// The backend for \p Id, or null — the non-aborting lookup unvalidated
  /// input (the wire protocol) resolves through.
  TargetBackendRef lookup(const std::string &Id) const;

  /// The spec \p Id was registered from; fatal-errors for ids that are
  /// unknown or backed by a hand-written backend.
  TargetSpec specFor(const std::string &Id) const;

  /// True when specFor(\p Id) would succeed — the non-aborting probe
  /// overlay loaders use before dereferencing untrusted target ids.
  bool hasSpecFor(const std::string &Id) const;

  /// Provenance of \p Id's spec. Ids without a recorded source (unknown,
  /// or behind a hand-written backend) read as Builtin — provenance is a
  /// display property, never a dispatch key.
  SpecSource specSourceFor(const std::string &Id) const;

  std::vector<TargetBackendRef> all() const;
};

} // namespace unit

#endif // UNIT_TARGET_TARGETREGISTRY_H
