//===- target/MachineOverlay.h - Measured machine-model refit --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a *machine overlay*: a JSON file that replaces selected
/// machine-model constants of already-registered TargetSpecs with values
/// refit from measurements (docs/TUNING.md "Cost-model refit"). The
/// overlay rides the existing spec-revision mechanism — each refit target
/// is re-registered through TargetRegistry::registerSpec, so its spec
/// hash changes, every cache key moves, and the persisted-cache
/// fingerprint rejects kernels tuned under the factory constants. Nothing
/// downstream needs to know a refit happened.
///
/// Overlay schema (written by tools/unit_refit, hand-editable):
///
///   { "version": 1,
///     "refit": [
///       { "target": "x86",
///         "cpu": { "fork_join_cycles": 1400, "dram_bytes_per_cycle": 42 } },
///       { "target": "nvgpu",
///         "gpu": { "dram_bytes_per_cycle": 580 } } ] }
///
/// Field names mirror perf/MachineModel.h in snake_case; absent fields
/// keep their registered values. The block ("cpu" / "gpu") must match the
/// target's engine. Application is all-or-nothing: every entry is
/// validated against the registry before any spec is replaced.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TARGET_MACHINEOVERLAY_H
#define UNIT_TARGET_MACHINEOVERLAY_H

#include <string>

namespace unit {

/// Parses \p Text as an overlay document and re-registers every listed
/// target with its refit machine model. Returns false (registry
/// untouched) with \p Err filled on malformed JSON, an unknown version,
/// an unregistered or non-spec-registered target, an engine/block
/// mismatch, or a non-finite / non-positive refit value. On success sets
/// the process-wide machineOverlayActive() flag.
bool applyMachineOverlayText(const std::string &Text, std::string *Err);

/// Reads \p Path and applies it via applyMachineOverlayText.
bool applyMachineOverlayFile(const std::string &Path, std::string *Err);

/// True once any overlay has been applied in this process. Surfaced as
/// "refit_active" in the compile server's stats reply so operators can
/// tell refit daemons from factory-constant ones.
bool machineOverlayActive();

} // namespace unit

#endif // UNIT_TARGET_MACHINEOVERLAY_H
