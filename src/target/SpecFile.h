//===- target/SpecFile.h - Target specs as JSON files ---------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ACT thesis made operational: a compiler backend is *data*. This
/// header defines a JSON file format for TargetSpec — target id, engine
/// kind, quantization scheme, machine-model parameters, and the intrinsic
/// set — so a new backend is a file dropped next to the daemon
/// (`unit_serve --target-spec my-npu.json`) or a `register_target` wire
/// message, with zero rebuilds. Parsed with the server's own Json
/// (server/Protocol.h); no new dependency.
///
/// serializeSpec and parseSpec are exact inverses: parse(serialize(S))
/// produces a spec with an identical hash() — and therefore identical
/// cache keys and persistence fingerprints — because Json round-trips
/// doubles bit-exactly (shortest-form dump, from_chars parse) and every
/// intrinsic is rebuilt through the same generic builders
/// (makeDotProductIntrinsic / makeMacIntrinsic) the builtins use, so the
/// canonical semantics keys match too. tests/test_specfile.cpp locks this
/// with golden files under tests/data/specs/.
///
/// Parsing is all-or-nothing in the MachineOverlay mold: every field is
/// validated (unknown keys, dtype spellings, positivity, duplicate
/// intrinsic names, engine/machine-block agreement) before anything is
/// registered, and errors name the offending JSON path
/// ("intrinsics[2].lanes"). A rejected document leaves the registry
/// untouched. Schema reference: docs/BACKENDS.md "Specs as files".
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TARGET_SPECFILE_H
#define UNIT_TARGET_SPECFILE_H

#include "server/Protocol.h"
#include "target/TargetRegistry.h"
#include "target/TargetSpec.h"

#include <string>

namespace unit {

/// Spec documents (file or wire) larger than this are rejected before
/// parsing: a backend description is a few KB, and the register_target
/// handler must not let one frame balloon the registry.
constexpr size_t MaxSpecFileBytes = 1u << 20;

/// The schema revision `version` must carry. Renames/removals bump it;
/// additions do not (unknown keys are rejected, so additions *are*
/// breaking for old parsers — bump on any schema change).
constexpr int SpecFileVersion = 1;

/// Serializes \p Spec to its canonical JSON document. Fatal-errors when
/// an intrinsic's semantics are not expressible as one of the two generic
/// builder shapes (dot / mac) — hand-written DSL intrinsics have no
/// faithful file form, and a lossy serialization would break the
/// hash-preservation contract.
Json serializeSpec(const TargetSpec &Spec);

/// Parses one spec document into \p Out. All-or-nothing: returns false
/// with \p Err naming the offending JSON path and leaves \p Out
/// unspecified; no global state is touched either way.
bool parseSpec(const Json &Doc, TargetSpec &Out, std::string *Err);

/// Json::parse + parseSpec, with the over-size guard applied to \p Text.
bool parseSpecText(const std::string &Text, TargetSpec &Out,
                   std::string *Err);

/// Reads and parses \p Path (size-capped at MaxSpecFileBytes).
bool loadSpecFile(const std::string &Path, TargetSpec &Out, std::string *Err);

/// loadSpecFile + TargetRegistry::registerSpec with SpecSource::File —
/// the `unit_serve --target-spec` entry point. Returns the materialized
/// backend, or null with \p Err set (registry untouched).
TargetBackendRef registerSpecFile(const std::string &Path, std::string *Err);

} // namespace unit

#endif // UNIT_TARGET_SPECFILE_H
