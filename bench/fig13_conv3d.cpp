//===- bench/fig13_conv3d.cpp - Paper Fig. 13 ------------------------------===//
//
// Extensibility to a new operation: resnet-18's convolutions converted to
// 3-D and fed to UNIT with *no compiler changes* — the same Inspector
// matches the 8-deep loop nest against VNNI. Normalized to a oneDNN-style
// fixed-schedule conv3d kernel (1.0); the paper reports an average 1.2x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Inspector.h"
#include "graph/Executor.h"
#include "models/ModelZoo.h"
#include "tuner/Tuner.h"
#include "target/TargetRegistry.h"

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Figure 13: conv3d layers of res18-3d (vs oneDNN = 1.0)");

  CpuMachine Machine = CpuMachine::cascadeLake();
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();

  Table T({"layer", "oneDNN(us)", "UNIT(us)", "oneDNN", "UNIT"});
  std::vector<double> Rel;
  int Idx = 0;
  std::vector<Conv3dLayer> Layers = makeResnet18Conv3d();
  // The paper plots eleven distinct layers (0..10).
  if (Layers.size() > 11)
    Layers.resize(11);
  for (const Conv3dLayer &L : Layers) {
    LaidOutOp Laid =
        buildDirectConv3dOp(L, Scheme.Activation, Scheme.Weight,
                            Scheme.Accumulator, Scheme.LaneMultiple,
                            Scheme.ReduceMultiple);
    std::vector<MatchResult> Matches = inspectTarget(Laid.Op, "x86");
    if (Matches.empty()) {
      T.addRow({std::to_string(Idx++), "no match"});
      continue;
    }
    // oneDNN-style fixed default blocking (JIT exact tails, no residue
    // guards) vs UNIT's tuned schedule, through the same cost model.
    TensorizePlan Fixed =
        buildCpuPlan(Laid.Op, Matches.front(), CpuTuningPair{1024, 4});
    KernelStats FixedStats = analyzeTensorized(Fixed);
    FixedStats.HasResidueGuards = false;
    double Ref = cpuLatencySeconds(FixedStats, Machine);
    double Unit = tuneCpu(Laid.Op, Matches.front(), Machine).LatencySeconds;
    Rel.push_back(Ref / Unit);
    T.addRow({std::to_string(Idx++), fmtUs(Ref), fmtUs(Unit), "1.00",
              fmt2(Ref / Unit)});
  }
  T.addRow({"gmean", "", "", "1.00", fmt2(geomean(Rel))});
  T.print();

  std::printf("\nUNIT extends to conv3d unchanged, averaging %.2fx "
              "(paper: 1.2x)\n",
              geomean(Rel));
  return 0;
}
