//===- bench/table1_workloads.cpp - Paper Table I --------------------------===//
//
// Prints the characteristics of the 16 selected convolution layers and
// verifies they are drawn from the model zoo's 148-odd distinct workloads.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "models/ModelZoo.h"
#include "models/Table1.h"

#include <set>

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Table I: characteristics of the selected convolution layers");

  std::vector<ConvLayer> Layers = table1Workloads();
  Table T({"", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11",
           "12", "13", "14", "15", "16"});
  auto Row = [&](const std::string &Name, auto Get) {
    std::vector<std::string> Cells{Name};
    for (const ConvLayer &L : Layers)
      Cells.push_back(std::to_string(Get(L)));
    T.addRow(Cells);
  };
  Row("C", [](const ConvLayer &L) { return L.InC; });
  Row("IHW", [](const ConvLayer &L) { return L.InH; });
  Row("K", [](const ConvLayer &L) { return L.OutC; });
  Row("R=S", [](const ConvLayer &L) { return L.KH; });
  Row("Stride", [](const ConvLayer &L) { return L.Stride; });
  Row("OHW", [](const ConvLayer &L) { return L.outH(); });
  T.print();

  // Distinct conv workloads across the nine models (paper: 148).
  std::set<std::string> Keys;
  for (const Model &M : paperModels())
    for (const ConvLayer &L : M.Convs)
      if (L.InH > 1) // Convolutions, not dense layers.
        Keys.insert(L.shapeKey());
  std::printf("\nDistinct convolution workloads across the nine models: %zu "
              "(paper: 148)\n",
              Keys.size());
  return 0;
}
