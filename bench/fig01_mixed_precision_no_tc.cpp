//===- bench/fig01_mixed_precision_no_tc.cpp - Paper Fig. 1 ---------------===//
//
// The paper's motivating experiment: on a V100, running fp16 inference
// *without* Tensor Core support is slower than plain fp32 because of the
// data-cast overhead at operator boundaries. Relative performance of
// cuDNN-fp16-no-TC vs the cuDNN-fp32 baseline (1.0); every bar lands
// below 1.0.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/VendorLibrary.h"
#include "models/ModelZoo.h"

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader(
      "Figure 1: fp16 without mixed-precision instructions vs fp32 (V100)");

  GpuMachine Machine = GpuMachine::v100();
  CuDnnFp32Engine Fp32(Machine);
  CuDnnFp16NoTcEngine Fp16(Machine);

  Table T({"model", "fp32(ms)", "fp16-noTC(ms)", "cuDNN(fp32)",
           "cuDNN(fp16) w/o Tensor Core"});
  std::vector<double> Rel;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, Fp32);
    double NoTc = modelLatencySeconds(M, Fp16);
    Rel.push_back(Base / NoTc);
    T.addRow({M.Name, formatStr("%.2f", Base * 1e3),
              formatStr("%.2f", NoTc * 1e3), "1.00", fmt2(Base / NoTc)});
  }
  T.addRow({"geomean", "", "", "1.00", fmt2(geomean(Rel))});
  T.print();

  std::printf("\nfp16 without Tensor Cores runs at %.2fx of fp32 — "
              "mixed precision needs hardware support (paper Fig. 1)\n",
              geomean(Rel));
  return 0;
}
