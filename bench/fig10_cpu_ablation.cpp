//===- bench/fig10_cpu_ablation.cpp - Paper Fig. 10 -----------------------===//
//
// CPU code-space exploration on the 16 Table I layers, normalized to the
// oneDNN kernel (1.0): Parallel (fuse<3000) / +Unroll (the (3000,8) pair)
// / +Tune (full pair search). The paper finds Parallel+Unroll responsible
// for most of the speedup, tuning adding little, and workloads #1 and #4
// *losing* to oneDNN because their output shapes tile imperfectly (the
// `likely` residue guards).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/VendorLibrary.h"
#include "core/Inspector.h"
#include "models/Table1.h"
#include "tuner/Tuner.h"
#include "target/TargetRegistry.h"

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Figure 10: CPU ablation on Table I layers (vs oneDNN = 1.0)");

  CpuMachine Machine = CpuMachine::cascadeLake();
  OneDnnEngine OneDnn(Machine);
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();

  Table T({"#", "oneDNN(us)", "Parallel", "+Unroll", "+Tune", "best-pair#"});
  std::vector<double> Tuned;
  int WithinFirst8 = 0, OptimalAtFirst = 0, N = 0;
  int Idx = 0;
  for (const ConvLayer &L : table1Workloads()) {
    ++Idx;
    double Ref = OneDnn.convSeconds(L);
    LaidOutOp Laid =
        buildDirectConvOp(L, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
    std::vector<MatchResult> Matches = inspectTarget(Laid.Op, "x86");
    if (Matches.empty()) {
      T.addRow({std::to_string(Idx), "n/a"});
      continue;
    }
    CpuAblation A = cpuAblation(Laid.Op, Matches.front(), Machine);
    TunedKernel Best = tuneCpu(Laid.Op, Matches.front(), Machine);
    Tuned.push_back(Ref / A.Tuned);
    ++N;
    if (Best.BestCandidateIndex < 8)
      ++WithinFirst8;
    if (Best.BestCandidateIndex == 0)
      ++OptimalAtFirst;
    T.addRow({std::to_string(Idx), fmtUs(Ref), fmt2(Ref / A.ParallelOnly),
              fmt2(Ref / A.ParallelUnroll), fmt2(Ref / A.Tuned),
              std::to_string(Best.BestCandidateIndex + 1)});
  }
  T.addRow({"geomean", "", "", "", fmt2(geomean(Tuned)), ""});
  T.print();

  std::printf("\n%d/%d kernels optimal at the first tuning pair "
              "(paper: more than half);\n%d/%d optimal within the first 8 "
              "pairs (paper: >95%%)\n",
              OptimalAtFirst, N, WithinFirst8, N);
  return 0;
}
