//===- bench/fig09_gpu_e2e.cpp - Paper Fig. 9 -----------------------------===//
//
// Mixed-precision end-to-end inference (bs=1) accelerated by Tensor Cores
// on the V100 model: TVM w/ cuDNN (baseline, 1.0) vs UNIT. The paper
// reports a mean speedup of 1.75x, up to 2.2x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/VendorLibrary.h"
#include "models/ModelZoo.h"

#include <algorithm>

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Figure 9: GPU end-to-end, relative perf vs cuDNN (fp16 w/ TC)");

  GpuMachine Machine = GpuMachine::v100();
  CuDnnTensorCoreEngine CuDnn(Machine);
  UnitGpuEngine Unit(Machine);

  Table T({"model", "cuDNN(ms)", "unit(ms)", "cuDNN", "UNIT"});
  std::vector<double> UnitRel;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, CuDnn);
    double UnitS = modelLatencySeconds(M, Unit);
    UnitRel.push_back(Base / UnitS);
    T.addRow({M.Name, formatStr("%.2f", Base * 1e3),
              formatStr("%.2f", UnitS * 1e3), "1.00", fmt2(Base / UnitS)});
  }
  T.addRow({"geomean", "", "", "1.00", fmt2(geomean(UnitRel))});
  T.print();

  std::printf("\nUNIT speedup over cuDNN: mean %.2fx, max %.2fx "
              "(paper: 1.75x mean, 2.2x max)\n",
              geomean(UnitRel),
              *std::max_element(UnitRel.begin(), UnitRel.end()));
  return 0;
}
