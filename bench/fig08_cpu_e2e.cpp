//===- bench/fig08_cpu_e2e.cpp - Paper Fig. 8 -----------------------------===//
//
// Quantized end-to-end inference (bs=1) accelerated by Intel VNNI on the
// Cascade Lake model: MXNet w/ oneDNN (baseline, 1.0) vs TVM's manual VNNI
// schedules vs UNIT. The paper reports UNIT at 1.3x geomean over
// MXNet-oneDNN and 1.18x over TVM.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/TVMBaselines.h"
#include "baselines/VendorLibrary.h"
#include "models/ModelZoo.h"

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Figure 8: CPU end-to-end, relative perf vs MXNet w/ oneDNN");

  CpuMachine Machine = CpuMachine::cascadeLake();
  MxnetOneDnnEngine Mxnet(Machine);
  TvmManualEngine Tvm = makeTvmManualVnni(Machine);
  UnitCpuEngine Unit(Machine, "x86");

  Table T({"model", "mxnet+oneDNN(ms)", "tvm(ms)", "unit(ms)",
           "MXNet w/ oneDNN", "TVM", "UNIT"});
  std::vector<double> TvmRel, UnitRel, UnitOverTvm;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, Mxnet);
    double TvmS = modelLatencySeconds(M, Tvm);
    double UnitS = modelLatencySeconds(M, Unit);
    TvmRel.push_back(Base / TvmS);
    UnitRel.push_back(Base / UnitS);
    UnitOverTvm.push_back(TvmS / UnitS);
    T.addRow({M.Name, formatStr("%.2f", Base * 1e3),
              formatStr("%.2f", TvmS * 1e3), formatStr("%.2f", UnitS * 1e3),
              "1.00", fmt2(Base / TvmS), fmt2(Base / UnitS)});
  }
  T.addRow({"geomean", "", "", "", "1.00", fmt2(geomean(TvmRel)),
            fmt2(geomean(UnitRel))});
  T.print();

  std::printf("\nUNIT speedup: %.2fx over MXNet-oneDNN (paper: 1.3x), "
              "%.2fx over TVM (paper: 1.18x)\n",
              geomean(UnitRel), geomean(UnitOverTvm));
  return 0;
}
