//===- bench/fig11_gpu_ablation.cpp - Paper Fig. 11 -----------------------===//
//
// GPU code-space exploration on the 16 Table I layers, normalized to the
// cuDNN Tensor Core kernel (1.0): Generic (p=2 outer-product accumulation)
// / +FuseDim (fuse H,W before padding) / +SplitK (parallelize the
// reduction) / +Tune (full search). The paper finds SplitK the largest
// single win, and #1/#15 losing to cuDNN (strided access, poor locality).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/VendorLibrary.h"
#include "core/Inspector.h"
#include "models/Table1.h"
#include "tuner/Tuner.h"

#include <algorithm>

using namespace unit;
using namespace unit::bench;

namespace {

/// Kernel seconds for one (fuse, config) choice, including the im2col
/// rearrangement pass.
double kernelSeconds(const ConvLayer &L, bool Fuse, GpuTuningConfig Config,
                     const GpuMachine &Machine) {
  TensorIntrinsicRef Wmma =
      IntrinsicRegistry::instance().lookup("wmma.m16n16k16.f16");
  LaidOutOp Laid =
      buildConvAsGemmOp(L, DataType::f16(), DataType::f32(), 16, Fuse);
  std::optional<MatchResult> Match = inspect(Laid.Op, Wmma);
  if (!Match)
    return 1e30;
  TensorizePlan Plan = buildGpuPlan(Laid.Op, *Match, Config);
  double Rearrange = Laid.RearrangeBytes /
                     (Machine.DramBytesPerCycle * Machine.FreqGHz * 1e9);
  return gpuLatencySeconds(analyzeTensorized(Plan), Machine) + Rearrange;
}

/// Split-K segment count for the paper's "split the reduction by 64".
int64_t splitKSegments(const ConvLayer &L) {
  int64_t ReduceElems = L.KH * L.KW * L.InC;
  return std::clamp<int64_t>(ReduceElems / 64, 1, 64);
}

} // namespace

int main() {
  printHeader("Figure 11: GPU ablation on Table I layers (vs cuDNN = 1.0)");

  GpuMachine Machine = GpuMachine::v100();
  CuDnnTensorCoreEngine CuDnn(Machine);

  Table T({"#", "cuDNN(us)", "Generic", "+FuseDim", "+SplitK", "+Tune"});
  std::vector<double> Tuned;
  int Idx = 0;
  for (const ConvLayer &L : table1Workloads()) {
    ++Idx;
    double Ref = CuDnn.convSeconds(L);
    double Generic = kernelSeconds(L, /*Fuse=*/false, {2, 1}, Machine);
    double FuseDim =
        std::min(Generic, kernelSeconds(L, /*Fuse=*/true, {2, 1}, Machine));
    double SplitK = std::min(
        FuseDim,
        std::min(kernelSeconds(L, true, {2, splitKSegments(L)}, Machine),
                 kernelSeconds(L, false, {2, splitKSegments(L)}, Machine)));
    // Full tune: every config x fusion choice.
    double Best = 1e30;
    for (bool Fuse : {false, true})
      for (const GpuTuningConfig &Config : defaultGpuTuningConfigs())
        Best = std::min(Best, kernelSeconds(L, Fuse, Config, Machine));
    Tuned.push_back(Ref / Best);
    T.addRow({std::to_string(Idx), fmtUs(Ref), fmt2(Ref / Generic),
              fmt2(Ref / FuseDim), fmt2(Ref / SplitK), fmt2(Ref / Best)});
  }
  T.addRow({"geomean", "", "", "", "", fmt2(geomean(Tuned))});
  T.print();

  std::printf("\nSplitK delivers the largest single gain on the deep-channel "
              "layers; additional tuning adds little (paper Fig. 11)\n");
  return 0;
}
