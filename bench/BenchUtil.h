//===- bench/BenchUtil.h - Shared helpers for figure benches --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table/series printing and geometric means for the per-figure bench
/// binaries. Each binary prints the rows/series the corresponding paper
/// figure plots, normalized the same way the paper normalizes.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_BENCH_BENCHUTIL_H
#define UNIT_BENCH_BENCHUTIL_H

#include "support/StringUtils.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace unit::bench {

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

inline std::string fmt2(double V) { return formatStr("%.2f", V); }
inline std::string fmtUs(double Seconds) {
  return formatStr("%.1f", Seconds * 1e6);
}

inline void printHeader(const std::string &Title) {
  std::printf("==== %s ====\n", Title.c_str());
}

} // namespace unit::bench

#endif // UNIT_BENCH_BENCHUTIL_H
