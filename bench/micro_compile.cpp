//===- bench/micro_compile.cpp - Compile-time micro benchmarks -------------===//
//
// google-benchmark suite measuring UNIT's own compilation costs: the
// Inspector's applicability analysis, the Rewriter's loop reorganization,
// lowering + instruction replacement, and a full CPU tuning run. Keeps the
// "moderate effort" claim of the paper honest on the compiler side.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "graph/Executor.h"
#include "models/Table1.h"
#include "tuner/Tuner.h"

#include <benchmark/benchmark.h>

using namespace unit;

namespace {

LaidOutOp table1Op(int Index) {
  QuantScheme Scheme = quantSchemeFor(TargetKind::X86);
  ConvLayer L = table1Workloads()[static_cast<size_t>(Index)];
  return buildDirectConvOp(L, Scheme.Activation, Scheme.Weight,
                           Scheme.Accumulator, Scheme.LaneMultiple,
                           Scheme.ReduceMultiple);
}

TensorIntrinsicRef vnni() {
  return IntrinsicRegistry::instance().lookup("vnni.vpdpbusd");
}

void BM_InspectorApplicability(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  for (auto _ : State) {
    std::optional<MatchResult> M = inspect(Laid.Op, vnni());
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_InspectorApplicability);

void BM_RewriterReorganize(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  for (auto _ : State) {
    TensorizePlan Plan = reorganizeLoops(Laid.Op, *M);
    benchmark::DoNotOptimize(Plan);
  }
}
BENCHMARK(BM_RewriterReorganize);

void BM_LowerAndReplace(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  for (auto _ : State) {
    TensorizePlan Plan = reorganizeLoops(Laid.Op, *M);
    StmtRef TIR = lowerPlan(Plan);
    benchmark::DoNotOptimize(TIR);
  }
}
BENCHMARK(BM_LowerAndReplace);

void BM_CostModelEvaluation(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  CpuMachine Machine = CpuMachine::cascadeLake();
  TensorizePlan Plan = buildCpuPlan(Laid.Op, *M, CpuTuningPair{3000, 8});
  for (auto _ : State) {
    double Latency = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
    benchmark::DoNotOptimize(Latency);
  }
}
BENCHMARK(BM_CostModelEvaluation);

void BM_FullCpuTuneOneLayer(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  CpuMachine Machine = CpuMachine::cascadeLake();
  for (auto _ : State) {
    TunedKernel Tuned = tuneCpu(Laid.Op, *M, Machine);
    benchmark::DoNotOptimize(Tuned);
  }
}
BENCHMARK(BM_FullCpuTuneOneLayer);

} // namespace

BENCHMARK_MAIN();
