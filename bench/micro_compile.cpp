//===- bench/micro_compile.cpp - Compile-time micro benchmarks -------------===//
//
// google-benchmark suite measuring UNIT's own compilation costs: the
// Inspector's applicability analysis, the Rewriter's loop reorganization,
// lowering + instruction replacement, a full CPU tuning run, and the
// runtime layer — cold compile vs. KernelCache hit, and sequential vs.
// parallel whole-model compilation. Keeps the "moderate effort" claim of
// the paper honest on the compiler side.
//
// main() first cross-checks that parallel compileModel produces
// byte-identical per-layer reports to sequential mode and prints a
// cold-vs-hit latency summary, then runs the registered benchmarks.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "graph/Executor.h"
#include "models/ModelZoo.h"
#include "models/Table1.h"
#include "runtime/CompileRequest.h"
#include "runtime/CompilerSession.h"
#include "server/CompileClient.h"
#include "server/CompileServer.h"
#include "support/ThreadPool.h"
#include "support/Time.h"
#include "tuner/Tuner.h"
#include "target/TargetRegistry.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

using namespace unit;

namespace {

LaidOutOp table1Op(int Index) {
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();
  ConvLayer L = table1Workloads()[static_cast<size_t>(Index)];
  return buildDirectConvOp(L, Scheme.Activation, Scheme.Weight,
                           Scheme.Accumulator, Scheme.LaneMultiple,
                           Scheme.ReduceMultiple);
}

TensorIntrinsicRef vnni() {
  return IntrinsicRegistry::instance().lookup("vnni.vpdpbusd");
}

void BM_InspectorApplicability(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  for (auto _ : State) {
    std::optional<MatchResult> M = inspect(Laid.Op, vnni());
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_InspectorApplicability);

void BM_RewriterReorganize(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  for (auto _ : State) {
    TensorizePlan Plan = reorganizeLoops(Laid.Op, *M);
    benchmark::DoNotOptimize(Plan);
  }
}
BENCHMARK(BM_RewriterReorganize);

void BM_LowerAndReplace(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  for (auto _ : State) {
    TensorizePlan Plan = reorganizeLoops(Laid.Op, *M);
    StmtRef TIR = lowerPlan(Plan);
    benchmark::DoNotOptimize(TIR);
  }
}
BENCHMARK(BM_LowerAndReplace);

void BM_CostModelEvaluation(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  CpuMachine Machine = CpuMachine::cascadeLake();
  TensorizePlan Plan = buildCpuPlan(Laid.Op, *M, CpuTuningPair{3000, 8});
  for (auto _ : State) {
    double Latency = cpuLatencySeconds(analyzeTensorized(Plan), Machine);
    benchmark::DoNotOptimize(Latency);
  }
}
BENCHMARK(BM_CostModelEvaluation);

void BM_FullCpuTuneOneLayer(benchmark::State &State) {
  LaidOutOp Laid = table1Op(4);
  std::optional<MatchResult> M = inspect(Laid.Op, vnni());
  CpuMachine Machine = CpuMachine::cascadeLake();
  for (auto _ : State) {
    TunedKernel Tuned = tuneCpu(Laid.Op, *M, Machine);
    benchmark::DoNotOptimize(Tuned);
  }
}
BENCHMARK(BM_FullCpuTuneOneLayer);

//===----------------------------------------------------------------------===//
// Runtime layer: KernelCache and CompilerSession
//===----------------------------------------------------------------------===//

SessionConfig sequentialConfig() {
  SessionConfig C;
  C.Threads = 1;
  C.ParallelShapes = false;
  C.ParallelCandidates = false;
  return C;
}

/// One full compile of a Table I layer with no cache in front of it.
void BM_ColdCompileOneLayer(benchmark::State &State) {
  TargetBackendRef Backend = TargetRegistry::instance().get("x86");
  ConvLayer L = table1Workloads()[4];
  for (auto _ : State) {
    KernelReport R = Backend->compileConv(L, /*Pool=*/nullptr);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ColdCompileOneLayer);

/// The same layer served from the shared KernelCache (key derivation plus
/// one map probe).
void BM_CacheHitRecompile(benchmark::State &State) {
  CompilerSession Session(sequentialConfig());
  TargetBackendRef Backend = TargetRegistry::instance().get("x86");
  ConvLayer L = table1Workloads()[4];
  Session.compile({Workload::conv2d(L), Backend}); // Warm the entry.
  for (auto _ : State) {
    KernelReport R = Session.compile({Workload::conv2d(L), Backend});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CacheHitRecompile);

/// Whole-model compile, one shape at a time (cache cleared per iteration,
/// pool kept warm so only compilation is measured).
void BM_CompileModelSequential(benchmark::State &State) {
  Model Resnet = makeResnet18();
  CompilerSession Session(sequentialConfig());
  for (auto _ : State) {
    State.PauseTiming();
    Session.cache().clear();
    State.ResumeTiming();
    ModelCompileResult R = Session.compileModel(Resnet, "x86");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CompileModelSequential)->Unit(benchmark::kMillisecond);

/// Whole-model compile with distinct shapes tuned concurrently and tuning
/// candidates scored in parallel.
void BM_CompileModelParallel(benchmark::State &State) {
  Model Resnet = makeResnet18();
  CompilerSession Session; // Defaults: pool-wide parallelism.
  for (auto _ : State) {
    State.PauseTiming();
    Session.cache().clear();
    State.ResumeTiming();
    ModelCompileResult R = Session.compileModel(Resnet, "x86");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CompileModelParallel)->Unit(benchmark::kMillisecond);

/// Re-compiling a model whose every shape is already cached.
void BM_CompileModelAllCacheHits(benchmark::State &State) {
  Model Resnet = makeResnet18();
  CompilerSession Session(sequentialConfig());
  Session.compileModel(Resnet, "x86"); // Warm everything.
  for (auto _ : State) {
    ModelCompileResult R = Session.compileModel(Resnet, "x86");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CompileModelAllCacheHits)->Unit(benchmark::kMillisecond);

/// Measured host quantities the cost-model refit consumes
/// (tools/unit_refit, docs/TUNING.md "Cost-model refit").
struct HostProbe {
  double MemcpyGbps = 0;  ///< Sustained large-copy bandwidth.
  double ForkJoinUs = 0;  ///< Cost of one empty parallel region.
};

/// Measures the two machine-model constants a host can observe cheaply:
/// DRAM bandwidth via a large memcpy sweep and parallel-region fork/join
/// overhead via empty parallelFor regions. Coarse on a noisy CI box —
/// which is exactly the point: the refit pipeline must survive real
/// measurements, not curated ones.
HostProbe probeHost() {
  HostProbe Probe;
  // Buffers far beyond L3 so the copy streams from DRAM. One warm pass
  // to fault the pages, then timed passes counting read+write traffic.
  constexpr size_t Bytes = size_t(64) << 20;
  constexpr int Passes = 4;
  std::vector<char> Src(Bytes, 1), Dst(Bytes, 0);
  std::memcpy(Dst.data(), Src.data(), Bytes);
  double T0 = steadyNowSeconds();
  for (int I = 0; I < Passes; ++I) {
    std::memcpy(Dst.data(), Src.data(), Bytes);
    benchmark::DoNotOptimize(Dst.data());
  }
  double CopySeconds = steadyNowSeconds() - T0;
  Probe.MemcpyGbps =
      2.0 * static_cast<double>(Bytes) * Passes / CopySeconds / 1e9;

  ThreadPool Pool;
  // Warm the pool (first region pays thread wake-up), then time empty
  // regions: pure fork + join, no body.
  Pool.parallelFor(Pool.threadCount(), [](size_t) {});
  constexpr int Regions = 200;
  T0 = steadyNowSeconds();
  for (int I = 0; I < Regions; ++I)
    Pool.parallelFor(Pool.threadCount(), [](size_t) {});
  Probe.ForkJoinUs = (steadyNowSeconds() - T0) / Regions * 1e6;
  // Below-timer-resolution readings still have to survive the refit
  // pipeline's positivity checks (and the JSON's %.3f), so floor at 1 ns.
  if (Probe.ForkJoinUs < 0.001)
    Probe.ForkJoinUs = 0.001;
  std::printf("host probe: memcpy %.1f GB/s | fork/join %.1f us "
              "(%u threads)\n",
              Probe.MemcpyGbps, Probe.ForkJoinUs, Pool.threadCount());
  return Probe;
}

/// Prints the cold-vs-hit summary, verifies parallel/sequential
/// compileModel determinism, measures the warm-from-disk path, and emits
/// the machine-readable BENCH_compile.json the CI job archives.
void runtimeSummary() {
  TargetBackendRef Backend = TargetRegistry::instance().get("x86");
  ConvLayer L = table1Workloads()[4];

  double T0 = steadyNowSeconds();
  KernelReport Cold = Backend->compileConv(L, nullptr);
  double ColdSeconds = steadyNowSeconds() - T0;

  CompilerSession Session(sequentialConfig());
  Session.compile({Workload::conv2d(L), Backend});
  constexpr int Hits = 200;
  T0 = steadyNowSeconds();
  for (int I = 0; I < Hits; ++I) {
    KernelReport R = Session.compile({Workload::conv2d(L), Backend});
    benchmark::DoNotOptimize(R);
  }
  double HitSeconds = (steadyNowSeconds() - T0) / Hits;
  std::printf("cold compile: %.1f us | cache-hit recompile: %.2f us | "
              "speedup: %.0fx (report %.3g s)\n",
              ColdSeconds * 1e6, HitSeconds * 1e6, ColdSeconds / HitSeconds,
              Cold.Seconds);

  Model Resnet = makeResnet18();
  CompilerSession Seq(sequentialConfig());
  CompilerSession Par;
  ModelCompileResult A = Seq.compileModel(Resnet, "x86");
  ModelCompileResult B = Par.compileModel(Resnet, "x86");
  for (size_t I = 0; I < A.Layers.size(); ++I) {
    bool Same =
        std::memcmp(&A.Layers[I].Seconds, &B.Layers[I].Seconds,
                    sizeof(double)) == 0 &&
        A.Layers[I].Tensorized == B.Layers[I].Tensorized &&
        A.Layers[I].BestCandidateIndex == B.Layers[I].BestCandidateIndex &&
        A.Layers[I].IntrinsicName == B.Layers[I].IntrinsicName;
    if (!Same) {
      std::fprintf(stderr,
                   "FAIL: parallel compileModel diverged from sequential "
                   "at layer %zu (%s)\n",
                   I, Resnet.Convs[I].Name.c_str());
      std::exit(1);
    }
  }
  std::printf("resnet18 compileModel: sequential %.1f ms | parallel %.1f ms "
              "| %zu distinct shapes | per-layer reports byte-identical\n",
              A.WallSeconds * 1e3, B.WallSeconds * 1e3, B.DistinctShapes);

  // Warm-from-disk: persist the sequential session's cache, restore it
  // into a fresh session, and re-price the model with zero tuning. The
  // Table I layer is compiled into Seq first so the single-layer hit
  // loop below times a genuinely disk-restored entry, not a cold tune.
  Seq.compile({Workload::conv2d(L), Backend});
  const std::string CachePath = "bench_micro_compile.cache.kc";
  double DiskSaveSeconds = 0, DiskLoadSeconds = 0, WarmDiskModelSeconds = 0;
  double WarmDiskHitSeconds = 0;
  size_t PersistedEntries = 0;
  {
    T0 = steadyNowSeconds();
    std::optional<size_t> Saved = Seq.saveCache(CachePath);
    DiskSaveSeconds = steadyNowSeconds() - T0;
    if (!Saved) {
      std::fprintf(stderr, "FAIL: could not write %s\n", CachePath.c_str());
      std::exit(1);
    }
    PersistedEntries = *Saved;

    CompilerSession FromDisk(sequentialConfig());
    T0 = steadyNowSeconds();
    KernelCache::LoadResult Load = FromDisk.loadCache(CachePath);
    DiskLoadSeconds = steadyNowSeconds() - T0;
    if (Load.Status != KernelCache::LoadStatus::Loaded ||
        Load.EntriesLoaded != PersistedEntries) {
      std::fprintf(stderr, "FAIL: persisted cache did not restore\n");
      std::exit(1);
    }
    uint64_t TunesBefore = tunerInvocations();
    ModelCompileResult Warm = FromDisk.compileModel(Resnet, "x86");
    WarmDiskModelSeconds = Warm.WallSeconds;
    if (tunerInvocations() != TunesBefore ||
        Warm.CacheHitLayers != Resnet.Convs.size()) {
      std::fprintf(stderr, "FAIL: warm-from-disk compile invoked the tuner\n");
      std::exit(1);
    }
    // Single-layer hit latency against the restored (not re-tuned) cache.
    T0 = steadyNowSeconds();
    for (int I = 0; I < Hits; ++I) {
      KernelReport R = FromDisk.compile({Workload::conv2d(L), Backend});
      benchmark::DoNotOptimize(R);
    }
    WarmDiskHitSeconds = (steadyNowSeconds() - T0) / Hits;
  }
  std::printf("persisted %zu kernels: save %.2f ms | load %.2f ms | "
              "warm-from-disk resnet18 %.2f ms (zero tuner invocations)\n",
              PersistedEntries, DiskSaveSeconds * 1e3, DiskLoadSeconds * 1e3,
              WarmDiskModelSeconds * 1e3);

  // Server restart from the same persisted cache: time from start() (which
  // loads the file) to a client's fully-warm whole-model compile over the
  // socket — the fast-restart number a deployment actually sees.
  double ServerRestartWarmSeconds = 0;
  {
    ServerConfig Config;
    Config.SocketPath =
        "/tmp/unit_micro_" + std::to_string(::getpid()) + ".sock";
    Config.CacheFile = CachePath;
    Config.PersistIntervalSeconds = 0;
    CompileServer Server(Config);
    uint64_t TunesBefore = tunerInvocations();
    T0 = steadyNowSeconds();
    std::string Err;
    CompileClient Client;
    std::optional<CompileClient::ModelResult> Warm;
    if (!Server.start(&Err) || !Client.connect(Config.SocketPath, &Err) ||
        !Client.hello("micro_compile", 0, &Err) ||
        !(Warm = Client.compileModel("x86", Resnet, {}, &Err))) {
      std::fprintf(stderr, "FAIL: server restart bench: %s\n", Err.c_str());
      std::exit(1);
    }
    ServerRestartWarmSeconds = steadyNowSeconds() - T0;
    if (tunerInvocations() != TunesBefore ||
        Warm->CacheHitLayers != Resnet.Convs.size()) {
      std::fprintf(stderr,
                   "FAIL: server restart was not warm-from-persisted-cache\n");
      std::exit(1);
    }
    Client.close();
    Server.stop();
  }
  std::remove(CachePath.c_str());
  std::printf("server restart from persisted cache: start+connect+compile "
              "resnet18 %.2f ms (zero tuner invocations)\n",
              ServerRestartWarmSeconds * 1e3);

  // Per-target rows: one cold resnet18 compile on every registered
  // backend — the paper's three machines plus the spec-only x86-amx and
  // arm-sve — so a regression (or win) in any backend's compile path
  // shows up in the archived JSON.
  struct TargetRow {
    std::string Id;
    std::string SpecHash;
    size_t DistinctShapes = 0;
    double ColdMs = 0;
    double ModeledConvMs = 0;
    size_t TensorizedLayers = 0;
  };
  std::vector<TargetRow> Rows;
  for (const TargetBackendRef &Target : TargetRegistry::instance().all()) {
    CompilerSession PerTarget; // Fresh cache: every row is a cold compile.
    ModelCompileResult R = PerTarget.compileModel(Resnet, *Target);
    TargetRow Row;
    Row.Id = Target->id();
    Row.SpecHash = Target->specHash();
    Row.DistinctShapes = R.DistinctShapes;
    Row.ColdMs = R.WallSeconds * 1e3;
    for (const KernelReport &Layer : R.Layers) {
      Row.ModeledConvMs += Layer.Seconds * 1e3;
      Row.TensorizedLayers += Layer.Tensorized ? 1 : 0;
    }
    Rows.push_back(std::move(Row));
    std::printf("target %-10s cold resnet18 compile %7.1f ms | modeled conv "
                "%7.3f ms | %2zu/%zu layers tensorized\n",
                Rows.back().Id.c_str(), Rows.back().ColdMs,
                Rows.back().ModeledConvMs, Rows.back().TensorizedLayers,
                Resnet.Convs.size());
  }

  // Transfer tuning (docs/TUNING.md): compile the channel-widened
  // resnet-18 cold, then in a session warmed on resnet-18. The warm
  // compile must spend >= 50% fewer tuner invocations (shared shapes hit
  // the cache, new shapes start from a transferred seed) and must have
  // applied at least one transfer seed — both enforced in the exit code
  // so the paired BENCH_compile.json can never show a silent regression.
  Model Wide = makeResnet18Wide();
  CompilerSession ColdWide(sequentialConfig());
  uint64_t Inv0 = tunerInvocations();
  T0 = steadyNowSeconds();
  ColdWide.compileModel(Wide, "x86");
  double ColdTransferMs = (steadyNowSeconds() - T0) * 1e3;
  uint64_t InvWideCold = tunerInvocations() - Inv0;

  CompilerSession WarmWide(sequentialConfig());
  WarmWide.compileModel(Resnet, "x86");
  Inv0 = tunerInvocations();
  T0 = steadyNowSeconds();
  WarmWide.compileModel(Wide, "x86");
  double WarmTransferMs = (steadyNowSeconds() - T0) * 1e3;
  uint64_t InvWideWarm = tunerInvocations() - Inv0;
  uint64_t TransferSeedHits = WarmWide.sessionStats().TransferSeeds;
  std::printf("transfer: resnet-18-wide cold %.2f ms (%llu tuner runs) | "
              "after resnet-18 %.2f ms (%llu tuner runs, %llu seeded)\n",
              ColdTransferMs, static_cast<unsigned long long>(InvWideCold),
              WarmTransferMs, static_cast<unsigned long long>(InvWideWarm),
              static_cast<unsigned long long>(TransferSeedHits));
  if (InvWideWarm * 2 > InvWideCold) {
    std::fprintf(stderr,
                 "FAIL: warm transfer compile used %llu tuner invocations, "
                 "cold used %llu (need >= 50%% cut)\n",
                 static_cast<unsigned long long>(InvWideWarm),
                 static_cast<unsigned long long>(InvWideCold));
    std::exit(1);
  }
  if (TransferSeedHits == 0) {
    std::fprintf(stderr, "FAIL: no transfer seeds were applied\n");
    std::exit(1);
  }

  HostProbe Probe = probeHost();

  std::FILE *Json = std::fopen("BENCH_compile.json", "w");
  if (!Json) {
    std::fprintf(stderr, "FAIL: could not write BENCH_compile.json\n");
    std::exit(1);
  }
  std::fprintf(
      Json,
      "{\n"
      "  \"bench\": \"micro_compile\",\n"
      "  \"cold_compile_us\": %.3f,\n"
      "  \"in_memory_hit_us\": %.3f,\n"
      "  \"warm_from_disk_hit_us\": %.3f,\n"
      "  \"cache_save_ms\": %.3f,\n"
      "  \"cache_load_ms\": %.3f,\n"
      "  \"persisted_entries\": %zu,\n"
      "  \"model\": \"resnet18\",\n"
      "  \"model_distinct_shapes\": %zu,\n"
      "  \"model_cold_sequential_ms\": %.3f,\n"
      "  \"model_cold_parallel_ms\": %.3f,\n"
      "  \"model_warm_from_disk_ms\": %.3f,\n"
      "  \"server_restart_warm_ms\": %.3f,\n"
      "  \"parallel_byte_identical\": true,\n"
      "  \"warm_from_disk_zero_tuner_invocations\": true,\n"
      "  \"server_restart_zero_tuner_invocations\": true,\n"
      "  \"cold_transfer_ms\": %.3f,\n"
      "  \"warm_transfer_ms\": %.3f,\n"
      "  \"tuner_invocations_wide_cold\": %llu,\n"
      "  \"tuner_invocations_wide_warm\": %llu,\n"
      "  \"transfer_seed_hits\": %llu,\n"
      "  \"host_probe\": {\"memcpy_gbps\": %.3f, \"fork_join_us\": %.3f},\n"
      "  \"targets\": [",
      ColdSeconds * 1e6, HitSeconds * 1e6, WarmDiskHitSeconds * 1e6,
      DiskSaveSeconds * 1e3, DiskLoadSeconds * 1e3, PersistedEntries,
      B.DistinctShapes, A.WallSeconds * 1e3, B.WallSeconds * 1e3,
      WarmDiskModelSeconds * 1e3, ServerRestartWarmSeconds * 1e3,
      ColdTransferMs, WarmTransferMs,
      static_cast<unsigned long long>(InvWideCold),
      static_cast<unsigned long long>(InvWideWarm),
      static_cast<unsigned long long>(TransferSeedHits), Probe.MemcpyGbps,
      Probe.ForkJoinUs);
  for (size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(
        Json,
        "%s\n    {\"id\": \"%s\", \"spec_hash\": \"%s\", "
        "\"distinct_shapes\": %zu, \"cold_compile_ms\": %.3f, "
        "\"modeled_conv_ms\": %.3f, \"tensorized_layers\": %zu}",
        I ? "," : "", Rows[I].Id.c_str(), Rows[I].SpecHash.c_str(),
        Rows[I].DistinctShapes, Rows[I].ColdMs, Rows[I].ModeledConvMs,
        Rows[I].TensorizedLayers);
  std::fprintf(Json, "\n  ]\n}\n");
  std::fclose(Json);
  std::printf("wrote BENCH_compile.json\n");
}

} // namespace

int main(int argc, char **argv) {
  // --benchmark_list_tests should print names and exit instantly, not
  // pay for model compiles; skip the summary for it.
  bool ListOnly = false;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    // Bare flag or any value except an explicit =false.
    if (std::strcmp(Arg, "--benchmark_list_tests") == 0 ||
        (std::strncmp(Arg, "--benchmark_list_tests=",
                      sizeof("--benchmark_list_tests=") - 1) == 0 &&
         std::strcmp(Arg + sizeof("--benchmark_list_tests=") - 1, "false") !=
             0))
      ListOnly = true;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  if (!ListOnly)
    runtimeSummary();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
