//===- bench/server_throughput.cpp - Multi-client compile throughput -------===//
//
// Measures the compile server end to end: several clients connected at
// once, compiling overlapping model sets against one shared session.
// Reports cold throughput (every kernel tuned once, cross-client dedup),
// warm throughput (every layer a cache hit), the pipelined-vs-blocking
// comparison for per-layer traffic (compile_async streaming vs one
// round trip per layer — the streaming protocol's reason to exist), and
// restart-from-persisted-cache time; emits machine-readable
// BENCH_server.json (archived by CI).
//
// Plain binary (no google-benchmark): the interesting numbers are
// one-shot wall times, like the fig* benches.
//
//===----------------------------------------------------------------------===//

#include "fabric/Endpoint.h"
#include "models/ModelZoo.h"
#include "runtime/CompileRequest.h"
#include "server/CompileClient.h"
#include "server/CompileServer.h"
#include "support/Time.h"
#include "tuner/Tuner.h"
#include "target/TargetRegistry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace unit;

namespace {

struct ClientOutcome {
  size_t Layers = 0;
  size_t CacheHitLayers = 0;
  bool Ok = true;
  std::string Err;
};

/// Each client compiles its share of \p Models over one connection.
ClientOutcome runClient(const std::string &SocketPath, const std::string &Name,
                        const std::vector<const Model *> &Models) {
  ClientOutcome Out;
  CompileClient Client;
  if (!Client.connect(SocketPath, &Out.Err) ||
      !Client.hello(Name, 0, &Out.Err)) {
    Out.Ok = false;
    return Out;
  }
  for (const Model *M : Models) {
    std::optional<CompileClient::ModelResult> R =
        Client.compileModel("x86", *M, {}, &Out.Err);
    if (!R) {
      Out.Ok = false;
      return Out;
    }
    Out.Layers += R->Layers.size();
    Out.CacheHitLayers += R->CacheHitLayers;
  }
  return Out;
}

/// Blocking per-layer traffic: one compile round trip per conv layer —
/// the client stalls on every reply before sending the next request.
ClientOutcome runClientBlockingLayers(const std::string &SocketPath,
                                      const std::string &Name,
                                      const std::vector<const Model *> &Models) {
  ClientOutcome Out;
  CompileClient Client;
  if (!Client.connect(SocketPath, &Out.Err) ||
      !Client.hello(Name, 0, &Out.Err)) {
    Out.Ok = false;
    return Out;
  }
  for (const Model *M : Models)
    for (const ConvLayer &L : M->Convs) {
      std::optional<CompileClient::CompileResult> R =
          Client.compileConv("x86", L, {}, &Out.Err);
      if (!R) {
        Out.Ok = false;
        return Out;
      }
      ++Out.Layers;
      if (R->Cached)
        ++Out.CacheHitLayers;
    }
  return Out;
}

/// Pipelined per-layer traffic: every layer of every model submitted as
/// compile_async before any result is joined; the socket never idles on
/// a round trip.
ClientOutcome runClientPipelinedLayers(
    const std::string &SocketPath, const std::string &Name,
    const std::vector<const Model *> &Models) {
  ClientOutcome Out;
  CompileClient Client;
  if (!Client.connect(SocketPath, &Out.Err) ||
      !Client.hello(Name, 0, &Out.Err)) {
    Out.Ok = false;
    return Out;
  }
  std::vector<CompileClient::AsyncHandle> Handles;
  for (const Model *M : Models) {
    std::optional<std::vector<CompileClient::AsyncHandle>> Submitted =
        Client.submitModelLayers("x86", *M, {}, &Out.Err);
    if (!Submitted) {
      Out.Ok = false;
      return Out;
    }
    Handles.insert(Handles.end(), Submitted->begin(), Submitted->end());
  }
  for (const CompileClient::AsyncHandle &H : Handles) {
    std::optional<CompileClient::CompileResult> R = Client.wait(H, &Out.Err);
    if (!R) {
      Out.Ok = false;
      return Out;
    }
    ++Out.Layers;
    if (R->Cached)
      ++Out.CacheHitLayers;
  }
  return Out;
}

/// One burst at a given fan-in depth: a handful of distinct NEVER-SEEN
/// kernels, each submitted \p Depth times back-to-back on one
/// connection, then joined. Every duplicate ticket is an in-flight join
/// on its key's single compile. The tuning cost (the distinct kernels)
/// is identical at every depth, so the ticket rate measures what a
/// pending join costs the session: continuations keep it near-free and
/// the rate scales with depth; a join that parked a pool thread would
/// starve the workers and collapse the deep burst. Returns tickets/s.
double runFanInBurst(const std::string &SocketPath, const std::string &Tag,
                     size_t Depth, size_t &TicketsOut) {
  static int Fresh = 0; // Advancing channel offset: every burst is cold.
  constexpr size_t DistinctKernels = 4;
  std::vector<ConvLayer> Layers;
  for (size_t I = 0; I < DistinctKernels; ++I) {
    ConvLayer L;
    L.Name = Tag + "_" + std::to_string(I);
    L.InC = 1024 + 16 * Fresh++;
    L.InH = L.InW = 7;
    L.OutC = 32;
    L.KH = L.KW = 1;
    Layers.push_back(L);
  }
  Model Burst;
  Burst.Name = Tag;
  for (size_t I = 0; I < DistinctKernels * Depth; ++I)
    Burst.Convs.push_back(Layers[I % DistinctKernels]);

  CompileClient Client;
  std::string Err;
  if (!Client.connect(SocketPath, &Err) || !Client.hello(Tag, 0, &Err)) {
    std::fprintf(stderr, "FAIL: %s: %s\n", Tag.c_str(), Err.c_str());
    std::exit(1);
  }
  double T0 = steadyNowSeconds();
  std::optional<std::vector<CompileClient::AsyncHandle>> Handles =
      Client.submitModelLayers("x86", Burst, {}, &Err);
  bool Ok = Handles.has_value() && Client.waitAll(&Err);
  double Wall = steadyNowSeconds() - T0;
  if (!Ok) {
    std::fprintf(stderr, "FAIL: %s: %s\n", Tag.c_str(), Err.c_str());
    std::exit(1);
  }
  TicketsOut = Burst.Convs.size();
  return static_cast<double>(TicketsOut) / Wall;
}

using ClientFn = ClientOutcome (*)(const std::string &, const std::string &,
                                   const std::vector<const Model *> &);

/// Fans \p Models out across \p ClientCount concurrent clients
/// round-robin and returns the wall time plus merged outcomes.
double runWaveWith(ClientFn Fn, const std::string &SocketPath,
                   const char *Tag, const std::vector<Model> &Models,
                   size_t ClientCount, size_t &LayersOut, size_t &HitsOut) {
  std::vector<std::vector<const Model *>> Shares(ClientCount);
  for (size_t I = 0; I < Models.size(); ++I)
    Shares[I % ClientCount].push_back(&Models[I]);
  std::vector<ClientOutcome> Outcomes(ClientCount);
  double T0 = steadyNowSeconds();
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < ClientCount; ++C)
    Threads.emplace_back([&, C] {
      Outcomes[C] = Fn(SocketPath,
                       std::string(Tag) + "-" + std::to_string(C), Shares[C]);
    });
  for (std::thread &T : Threads)
    T.join();
  double Wall = steadyNowSeconds() - T0;
  LayersOut = 0;
  HitsOut = 0;
  for (const ClientOutcome &O : Outcomes) {
    if (!O.Ok) {
      std::fprintf(stderr, "FAIL: client error: %s\n", O.Err.c_str());
      std::exit(1);
    }
    LayersOut += O.Layers;
    HitsOut += O.CacheHitLayers;
  }
  return Wall;
}

double runWave(const std::string &SocketPath, const char *Tag,
               const std::vector<Model> &Models, size_t ClientCount,
               size_t &LayersOut, size_t &HitsOut) {
  return runWaveWith(runClient, SocketPath, Tag, Models, ClientCount,
                     LayersOut, HitsOut);
}

} // namespace

int main() {
  const std::string SocketPath =
      "/tmp/unit_bench_" + std::to_string(::getpid()) + ".sock";
  const std::string CachePath =
      "/tmp/unit_bench_" + std::to_string(::getpid()) + ".kc";
  constexpr size_t ClientCount = 4;

  std::vector<Model> Models = paperModels();
  size_t TotalLayers = 0;
  std::set<std::string> DistinctKeys;
  TargetBackendRef Backend = TargetRegistry::instance().get("x86");
  for (const Model &M : Models) {
    TotalLayers += M.Convs.size();
    for (const ConvLayer &L : M.Convs)
      DistinctKeys.insert(
          CompileRequest(Workload::conv2d(L), Backend).cacheKey());
  }

  // Baseline: the tuner work ONE session needs for all nine models (not
  // every distinct key reaches the tuner — depthwise layers fall back to
  // SIMD without a search). Four concurrent clients must match this.
  uint64_t TunesBefore = tunerInvocations();
  {
    CompilerSession Baseline;
    for (const Model &M : Models)
      Baseline.compileModel(M, "x86");
  }
  uint64_t ExpectedTunes = tunerInvocations() - TunesBefore;

  ServerConfig Config;
  Config.SocketPath = SocketPath;
  Config.CacheFile = CachePath;
  Config.PersistIntervalSeconds = 0; // Persist on shutdown only.
  auto Server = std::make_unique<CompileServer>(Config);
  std::string Err;
  if (!Server->start(&Err)) {
    std::fprintf(stderr, "FAIL: %s\n", Err.c_str());
    return 1;
  }

  // Wave 1 — cold: every tunable kernel tuned exactly once across all
  // clients (single-flight dedup, isomorphic layers across the nine
  // models collapse).
  TunesBefore = tunerInvocations();
  size_t ColdLayers = 0, ColdHits = 0;
  double ColdWall = runWave(SocketPath, "cold", Models, ClientCount,
                            ColdLayers, ColdHits);
  uint64_t ColdTunes = tunerInvocations() - TunesBefore;
  bool DedupOk = ColdTunes == ExpectedTunes;
  if (!DedupOk)
    std::fprintf(stderr,
                 "FAIL: expected %llu tuner invocations, measured %llu\n",
                 static_cast<unsigned long long>(ExpectedTunes),
                 static_cast<unsigned long long>(ColdTunes));
  std::printf("cold: %zu clients, %zu models, %zu layers -> %llu tuned "
              "kernels (%zu distinct, single-session baseline %llu tunes) "
              "in %.1f ms\n",
              ClientCount, Models.size(), ColdLayers,
              static_cast<unsigned long long>(ColdTunes), DistinctKeys.size(),
              static_cast<unsigned long long>(ExpectedTunes), ColdWall * 1e3);

  // Wave 2 — warm: all layers served from the shared cache.
  TunesBefore = tunerInvocations();
  size_t WarmLayers = 0, WarmHits = 0;
  double WarmWall = runWave(SocketPath, "warm", Models, ClientCount,
                            WarmLayers, WarmHits);
  bool WarmOk =
      tunerInvocations() == TunesBefore && WarmHits == WarmLayers;
  if (!WarmOk)
    std::fprintf(stderr, "FAIL: warm wave hit the tuner (%zu/%zu hits)\n",
                 WarmHits, WarmLayers);
  double WarmRps = static_cast<double>(Models.size()) / WarmWall;
  std::printf("warm: %zu layers all cache hits in %.2f ms "
              "(%.0f model compiles/s)\n",
              WarmLayers, WarmWall * 1e3, WarmRps);

  // Pipelined vs blocking, warm, per-layer: the same layer set once as
  // one blocking round trip per layer and once as a compile_async
  // stream. Round-trip serialization is what the streaming protocol
  // removes, so pipelined must sustain at least blocking's rate; a
  // couple of attempts absorb scheduler noise on loaded CI machines.
  double BlockingRps = 0, PipelinedRps = 0;
  double BlockingWall = 0, PipelinedWall = 0;
  bool PipelinedOk = false;
  for (int Attempt = 0; Attempt < 3 && !PipelinedOk; ++Attempt) {
    size_t Layers = 0, Hits = 0;
    BlockingWall = runWaveWith(runClientBlockingLayers, SocketPath,
                               "warm-blocking", Models, ClientCount, Layers,
                               Hits);
    if (Hits != Layers) {
      std::fprintf(stderr, "FAIL: warm blocking wave missed the cache "
                           "(%zu/%zu hits)\n",
                   Hits, Layers);
      return 1;
    }
    BlockingRps = static_cast<double>(Layers) / BlockingWall;
    size_t PipeLayers = 0, PipeHits = 0;
    PipelinedWall =
        runWaveWith(runClientPipelinedLayers, SocketPath, "warm-pipelined",
                    Models, ClientCount, PipeLayers, PipeHits);
    if (PipeHits != PipeLayers) {
      std::fprintf(stderr, "FAIL: warm pipelined wave missed the cache "
                           "(%zu/%zu hits)\n",
                   PipeHits, PipeLayers);
      return 1;
    }
    PipelinedRps = static_cast<double>(PipeLayers) / PipelinedWall;
    PipelinedOk = PipelinedRps >= BlockingRps;
  }
  if (!PipelinedOk)
    std::fprintf(stderr,
                 "FAIL: pipelined warm rps (%.0f) below blocking (%.0f)\n",
                 PipelinedRps, BlockingRps);
  std::printf("warm per-layer: blocking %.2f ms (%.0f layers/s) vs "
              "pipelined %.2f ms (%.0f layers/s) — %.2fx\n",
              BlockingWall * 1e3, BlockingRps, PipelinedWall * 1e3,
              PipelinedRps, PipelinedRps / BlockingRps);

  // Fan-in sweep: one connection bursts 4 cold kernels x Depth duplicate
  // tickets each, at one join per pool worker (1x) and at ten (10x). The
  // tuner does identical work at both depths, so the rate may not fall
  // off when the in-flight join count passes the pool size — the
  // continuation engine's contract (a join is a callback, not a parked
  // worker). The 0.8 floor leaves room for scheduler noise; with parked
  // joins the deep burst loses an order of magnitude, not 20%.
  size_t FanDepth = std::thread::hardware_concurrency();
  if (FanDepth < 4)
    FanDepth = 4;
  double Fanin1Rps = 0, Fanin10Rps = 0;
  size_t Fanin1Tickets = 0, Fanin10Tickets = 0;
  bool FaninOk = false;
  for (int Attempt = 0; Attempt < 3 && !FaninOk; ++Attempt) {
    Fanin1Rps = runFanInBurst(SocketPath, "fanin-1x", FanDepth,
                              Fanin1Tickets);
    Fanin10Rps = runFanInBurst(SocketPath, "fanin-10x", FanDepth * 10,
                               Fanin10Tickets);
    FaninOk = Fanin10Rps >= 0.8 * Fanin1Rps;
  }
  if (!FaninOk)
    std::fprintf(stderr,
                 "FAIL: 10x fan-in rate (%.0f tickets/s) fell below 0.8x "
                 "the 1x rate (%.0f tickets/s)\n",
                 Fanin10Rps, Fanin1Rps);
  std::printf("fan-in: depth %zu (%zu tickets) %.0f tickets/s | depth %zu "
              "(%zu tickets) %.0f tickets/s — %.2fx\n",
              FanDepth, Fanin1Tickets, Fanin1Rps, FanDepth * 10,
              Fanin10Tickets, Fanin10Rps, Fanin10Rps / Fanin1Rps);

  size_t CacheBytes = Server->session().cache().bytesUsed();
  size_t CacheEntries = Server->session().cache().size();

  // Restart: stop (persists), start a fresh server on the same cache
  // file, and compile everything again — zero tuner invocations.
  double T0 = steadyNowSeconds();
  Server->stop();
  Server.reset();
  double StopSeconds = steadyNowSeconds() - T0;

  Server = std::make_unique<CompileServer>(Config);
  T0 = steadyNowSeconds();
  if (!Server->start(&Err)) {
    std::fprintf(stderr, "FAIL: restart: %s\n", Err.c_str());
    return 1;
  }
  double RestartStartSeconds = steadyNowSeconds() - T0;
  TunesBefore = tunerInvocations();
  size_t RestartLayers = 0, RestartHits = 0;
  T0 = steadyNowSeconds();
  double RestartWall = runWave(SocketPath, "restart", Models, ClientCount,
                               RestartLayers, RestartHits);
  bool RestartOk =
      tunerInvocations() == TunesBefore && RestartHits == RestartLayers;
  if (!RestartOk)
    std::fprintf(stderr, "FAIL: restart re-tuned (%zu/%zu hits)\n",
                 RestartHits, RestartLayers);
  std::printf("restart: stop+persist %.2f ms | start+load %.2f ms | "
              "recompile all models %.2f ms (zero tuner invocations)\n",
              StopSeconds * 1e3, RestartStartSeconds * 1e3,
              RestartWall * 1e3);

  // Observability overhead: the same warm per-layer blocking wave against
  // this (tracing-on, the default) daemon, then — after it stops and
  // uninstalls the process-wide recorder, so spans are truly inert —
  // against a daemon with TraceEnabled=false warm-loaded from the same
  // persisted cache. Spans and histogram records are on the hot path of
  // every request, so this is the direct price of leaving them compiled
  // in; best-of-3 each side absorbs CI scheduler noise, and the 0.9
  // floor is the instrument-by-default contract.
  double TraceOnRps = 0;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    size_t OnLayers = 0, OnHits = 0;
    double OnWall =
        runWaveWith(runClientBlockingLayers, SocketPath, "trace-on", Models,
                    ClientCount, OnLayers, OnHits);
    if (OnHits != OnLayers) {
      std::fprintf(stderr, "FAIL: tracing-on warm wave missed the cache "
                           "(%zu/%zu hits)\n",
                   OnHits, OnLayers);
      return 1;
    }
    TraceOnRps =
        std::max(TraceOnRps, static_cast<double>(OnLayers) / OnWall);
  }

  // Tail latency of a warm compile as the server's own histograms see it
  // (the metrics message the dashboards would scrape) — read before the
  // daemon goes down.
  double WarmP99Ms = 0;
  {
    CompileClient MetricsClient;
    std::optional<Json> M;
    if (MetricsClient.connect(SocketPath, &Err) &&
        MetricsClient.hello("bench-metrics", 0, &Err))
      M = MetricsClient.metrics(&Err);
    if (!M) {
      std::fprintf(stderr, "FAIL: metrics: %s\n", Err.c_str());
      return 1;
    }
    if (const Json *Hists = M->get("histograms"))
      if (const Json *Warm = Hists->get("unit_compile_warm_seconds"))
        WarmP99Ms = Warm->num("p99", 0) * 1e3;
    std::printf("warm p99 (server histogram): %.3f ms\n", WarmP99Ms);
  }
  Server->stop();

  ServerConfig NoTraceConfig;
  NoTraceConfig.SocketPath = SocketPath + ".notrace";
  NoTraceConfig.CacheFile = CachePath;
  NoTraceConfig.PersistIntervalSeconds = 0;
  NoTraceConfig.TraceEnabled = false;
  auto NoTraceServer = std::make_unique<CompileServer>(NoTraceConfig);
  if (!NoTraceServer->start(&Err)) {
    std::fprintf(stderr, "FAIL: tracing-off server: %s\n", Err.c_str());
    return 1;
  }
  double TraceOffRps = 0;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    size_t OffLayers = 0, OffHits = 0;
    double OffWall =
        runWaveWith(runClientBlockingLayers, NoTraceConfig.SocketPath,
                    "trace-off", Models, ClientCount, OffLayers, OffHits);
    if (OffHits != OffLayers) {
      std::fprintf(stderr, "FAIL: tracing-off warm wave missed the cache "
                           "(%zu/%zu hits)\n",
                   OffHits, OffLayers);
      return 1;
    }
    TraceOffRps =
        std::max(TraceOffRps, static_cast<double>(OffLayers) / OffWall);
  }
  NoTraceServer->stop();
  NoTraceServer.reset();
  bool TracingOk = TraceOnRps >= 0.9 * TraceOffRps;
  if (!TracingOk)
    std::fprintf(stderr,
                 "FAIL: tracing-on warm rps (%.0f) below 0.9x tracing-off "
                 "(%.0f)\n",
                 TraceOnRps, TraceOffRps);
  std::printf("tracing overhead: on %.0f layers/s vs off %.0f layers/s — "
              "%.3fx\n",
              TraceOnRps, TraceOffRps, TraceOnRps / TraceOffRps);

  std::remove(CachePath.c_str());

  // Fabric cluster: a hub daemon listening on TCP plus two peered
  // daemons. A never-seen kernel set tunes exactly once CLUSTER-wide
  // (on the hub), then both peers serve it warm through the fabric —
  // bulk warm-sync or per-key cold-miss fetch, never their own tuner.
  const std::string FabricSecret = "bench-fabric-secret";
  constexpr size_t FabricKernels = 8;
  constexpr size_t FabricPeerDaemons = 2;
  Model FabricModel;
  FabricModel.Name = "fabric-burst";
  for (size_t I = 0; I < FabricKernels; ++I) {
    ConvLayer L;
    L.Name = "fabric_" + std::to_string(I);
    L.InC = 4096 + 16 * static_cast<int64_t>(I);
    L.InH = L.InW = 7;
    L.OutC = 32;
    L.KH = L.KW = 3;
    L.Stride = 1;
    L.PadH = L.PadW = 1;
    FabricModel.Convs.push_back(L);
  }
  std::set<std::string> FabricKeys;
  for (const ConvLayer &L : FabricModel.Convs)
    FabricKeys.insert(
        CompileRequest(Workload::conv2d(L), Backend).cacheKey());

  ServerConfig HubConfig;
  HubConfig.SocketPath = SocketPath + ".hub";
  HubConfig.TcpListen = "127.0.0.1:0";
  HubConfig.Secret = FabricSecret;
  auto Hub = std::make_unique<CompileServer>(HubConfig);
  if (!Hub->start(&Err)) {
    std::fprintf(stderr, "FAIL: fabric hub: %s\n", Err.c_str());
    return 1;
  }
  std::string HubEp = Endpoint{"127.0.0.1", Hub->tcpPort()}.display();

  TunesBefore = tunerInvocations();
  ClientOutcome HubCold = runClientBlockingLayers(
      HubConfig.SocketPath, "fabric-hub", {&FabricModel});
  if (!HubCold.Ok) {
    std::fprintf(stderr, "FAIL: fabric hub client: %s\n",
                 HubCold.Err.c_str());
    return 1;
  }
  uint64_t FabricColdTunes = tunerInvocations() - TunesBefore;
  bool FabricColdOk = FabricColdTunes == FabricKeys.size();
  if (!FabricColdOk)
    std::fprintf(stderr,
                 "FAIL: fabric cold tuned %llu kernels, expected %zu\n",
                 static_cast<unsigned long long>(FabricColdTunes),
                 FabricKeys.size());

  std::vector<std::unique_ptr<CompileServer>> Peers;
  std::vector<std::string> PeerSockets;
  for (size_t D = 0; D < FabricPeerDaemons; ++D) {
    ServerConfig PeerConfig;
    PeerConfig.SocketPath = SocketPath + ".peer" + std::to_string(D);
    PeerConfig.Secret = FabricSecret;
    PeerConfig.Peers.push_back(HubEp);
    PeerSockets.push_back(PeerConfig.SocketPath);
    auto P = std::make_unique<CompileServer>(std::move(PeerConfig));
    if (!P->start(&Err)) {
      std::fprintf(stderr, "FAIL: fabric peer %zu: %s\n", D, Err.c_str());
      return 1;
    }
    Peers.push_back(std::move(P));
  }

  TunesBefore = tunerInvocations();
  std::vector<ClientOutcome> PeerOutcomes(FabricPeerDaemons);
  T0 = steadyNowSeconds();
  {
    std::vector<std::thread> Threads;
    for (size_t D = 0; D < FabricPeerDaemons; ++D)
      Threads.emplace_back([&, D] {
        PeerOutcomes[D] = runClientBlockingLayers(
            PeerSockets[D], "fabric-peer-" + std::to_string(D),
            {&FabricModel});
      });
    for (std::thread &T : Threads)
      T.join();
  }
  double FabricWarmWall = steadyNowSeconds() - T0;
  size_t FabricWarmLayers = 0, FabricWarmHits = 0;
  for (const ClientOutcome &O : PeerOutcomes) {
    if (!O.Ok) {
      std::fprintf(stderr, "FAIL: fabric peer client: %s\n", O.Err.c_str());
      return 1;
    }
    FabricWarmLayers += O.Layers;
    FabricWarmHits += O.CacheHitLayers;
  }
  bool FabricWarmOk = tunerInvocations() == TunesBefore &&
                      FabricWarmHits == FabricWarmLayers;
  if (!FabricWarmOk)
    std::fprintf(stderr,
                 "FAIL: fabric peers re-tuned or missed (%zu/%zu hits, "
                 "%llu tunes)\n",
                 FabricWarmHits, FabricWarmLayers,
                 static_cast<unsigned long long>(tunerInvocations() -
                                                 TunesBefore));
  double FabricWarmRps =
      static_cast<double>(FabricWarmLayers) / FabricWarmWall;
  std::printf("fabric: %zu daemons, %zu distinct kernels -> %llu cold "
              "tunes cluster-wide; %zu peer layers served warm via the "
              "fabric in %.2f ms (%.0f layers/s)\n",
              FabricPeerDaemons + 1, FabricKeys.size(),
              static_cast<unsigned long long>(FabricColdTunes),
              FabricWarmLayers, FabricWarmWall * 1e3, FabricWarmRps);
  for (auto &P : Peers)
    P->stop();
  Hub->stop();

  std::FILE *Json = std::fopen("BENCH_server.json", "w");
  if (!Json) {
    std::fprintf(stderr, "FAIL: could not write BENCH_server.json\n");
    return 1;
  }
  std::fprintf(
      Json,
      "{\n"
      "  \"bench\": \"server_throughput\",\n"
      "  \"clients\": %zu,\n"
      "  \"models\": %zu,\n"
      "  \"total_layers\": %zu,\n"
      "  \"distinct_kernels\": %zu,\n"
      "  \"single_session_tuner_invocations\": %llu,\n"
      "  \"cold_tuner_invocations\": %llu,\n"
      "  \"cross_client_dedup_ok\": %s,\n"
      "  \"cold_wall_ms\": %.3f,\n"
      "  \"warm_wall_ms\": %.3f,\n"
      "  \"warm_model_compiles_per_sec\": %.1f,\n"
      "  \"warm_all_cache_hits\": %s,\n"
      "  \"warm_blocking_layer_wall_ms\": %.3f,\n"
      "  \"warm_blocking_layer_rps\": %.1f,\n"
      "  \"warm_pipelined_layer_wall_ms\": %.3f,\n"
      "  \"warm_pipelined_layer_rps\": %.1f,\n"
      "  \"pipelined_speedup\": %.3f,\n"
      "  \"pipelined_ge_blocking\": %s,\n"
      "  \"fanin_depth\": %zu,\n"
      "  \"fanin_1x_tickets\": %zu,\n"
      "  \"fanin_1x_rps\": %.1f,\n"
      "  \"fanin_10x_tickets\": %zu,\n"
      "  \"fanin_10x_rps\": %.1f,\n"
      "  \"fanin_10x_ge_80pct_of_1x\": %s,\n"
      "  \"cache_entries\": %zu,\n"
      "  \"cache_bytes\": %zu,\n"
      "  \"restart_stop_persist_ms\": %.3f,\n"
      "  \"restart_start_load_ms\": %.3f,\n"
      "  \"restart_recompile_ms\": %.3f,\n"
      "  \"restart_zero_tuner_invocations\": %s,\n"
      "  \"warm_p99_ms\": %.4f,\n"
      "  \"tracing_on_warm_layer_rps\": %.1f,\n"
      "  \"tracing_off_warm_layer_rps\": %.1f,\n"
      "  \"tracing_overhead_ok\": %s,\n"
      "  \"fabric_daemons\": %zu,\n"
      "  \"fabric_distinct_kernels\": %zu,\n"
      "  \"fabric_cold_tunes_clusterwide\": %llu,\n"
      "  \"fabric_cold_tunes_equal_distinct\": %s,\n"
      "  \"fabric_warm_layers\": %zu,\n"
      "  \"fabric_warm_wall_ms\": %.3f,\n"
      "  \"fabric_warm_fetch_rps\": %.1f,\n"
      "  \"fabric_peers_zero_tuner_invocations\": %s\n"
      "}\n",
      ClientCount, Models.size(), TotalLayers, DistinctKeys.size(),
      static_cast<unsigned long long>(ExpectedTunes),
      static_cast<unsigned long long>(ColdTunes), DedupOk ? "true" : "false",
      ColdWall * 1e3, WarmWall * 1e3, WarmRps, WarmOk ? "true" : "false",
      BlockingWall * 1e3, BlockingRps, PipelinedWall * 1e3, PipelinedRps,
      PipelinedRps / BlockingRps, PipelinedOk ? "true" : "false", FanDepth,
      Fanin1Tickets, Fanin1Rps, Fanin10Tickets, Fanin10Rps,
      FaninOk ? "true" : "false", CacheEntries, CacheBytes, StopSeconds * 1e3,
      RestartStartSeconds * 1e3, RestartWall * 1e3,
      RestartOk ? "true" : "false", WarmP99Ms, TraceOnRps, TraceOffRps,
      TracingOk ? "true" : "false", FabricPeerDaemons + 1, FabricKeys.size(),
      static_cast<unsigned long long>(FabricColdTunes),
      FabricColdOk ? "true" : "false", FabricWarmLayers, FabricWarmWall * 1e3,
      FabricWarmRps, FabricWarmOk ? "true" : "false");
  std::fclose(Json);
  std::printf("wrote BENCH_server.json\n");
  return (DedupOk && WarmOk && PipelinedOk && FaninOk && RestartOk &&
          TracingOk && FabricColdOk && FabricWarmOk)
             ? 0
             : 1;
}
