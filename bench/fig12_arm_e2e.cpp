//===- bench/fig12_arm_e2e.cpp - Paper Fig. 12 ----------------------------===//
//
// Extensibility to a new platform: ARM DOT on Graviton2. TVM-NEON (plain
// SIMD, baseline 1.0) vs TVM's manually written DOT schedules vs UNIT.
// The paper reports UNIT consistently ahead, 1.13x over TVM-Manual.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "baselines/TVMBaselines.h"
#include "models/ModelZoo.h"

using namespace unit;
using namespace unit::bench;

int main() {
  printHeader("Figure 12: ARM end-to-end, relative perf vs TVM-NEON");

  CpuMachine Machine = CpuMachine::graviton2();
  TvmNeonEngine Neon(Machine);
  TvmManualEngine Manual = makeTvmManualDot(Machine);
  UnitCpuEngine Unit(Machine, "arm");

  Table T({"model", "neon(ms)", "manual(ms)", "unit(ms)", "TVM-NEON",
           "TVM-Manual", "UNIT"});
  std::vector<double> ManualRel, UnitRel, UnitOverManual;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, Neon);
    double ManualS = modelLatencySeconds(M, Manual);
    double UnitS = modelLatencySeconds(M, Unit);
    ManualRel.push_back(Base / ManualS);
    UnitRel.push_back(Base / UnitS);
    UnitOverManual.push_back(ManualS / UnitS);
    T.addRow({M.Name, formatStr("%.2f", Base * 1e3),
              formatStr("%.2f", ManualS * 1e3),
              formatStr("%.2f", UnitS * 1e3), "1.00", fmt2(Base / ManualS),
              fmt2(Base / UnitS)});
  }
  T.addRow({"geomean", "", "", "", "1.00", fmt2(geomean(ManualRel)),
            fmt2(geomean(UnitRel))});
  T.print();

  std::printf("\nUNIT: %.2fx over TVM-NEON, %.2fx over TVM-Manual "
              "(paper: up to 15.4x over NEON, 1.13x geomean over manual)\n",
              geomean(UnitRel), geomean(UnitOverManual));
  return 0;
}
