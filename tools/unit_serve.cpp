//===- tools/unit_serve.cpp - The compile-server daemon --------------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// Runs a CompileServer until a client sends shutdown or SIGINT/SIGTERM
// arrives. See docs/SERVER.md for the protocol and a walkthrough.
//
//   unit_serve --socket /tmp/unit.sock [--cache /var/tmp/unit.kc]
//              [--persist-interval 30] [--threads N]
//              [--max-candidates N] [--cache-capacity N]
//              [--cache-bytes N] [--cache-ttl SEC]
//              [--listen-tcp HOST:PORT --secret-file FILE]
//              [--peer HOST:PORT]...
//
//===----------------------------------------------------------------------===//

#include "server/CompileServer.h"
#include "target/MachineOverlay.h"
#include "target/SpecFile.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace unit;

namespace {

volatile std::sig_atomic_t Interrupted = 0;

void onSignal(int) { Interrupted = 1; }

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH            Unix socket to listen on (required)\n"
      "  --cache FILE             persist the kernel cache to FILE\n"
      "  --persist-interval SEC   periodic save interval (default 30, 0 =\n"
      "                           save only on shutdown)\n"
      "  --threads N              session pool threads (default: hardware)\n"
      "  --max-candidates N       server-wide tuning-budget cap\n"
      "  --cache-capacity N       LRU entry cap (default unbounded)\n"
      "  --cache-bytes N          LRU byte cap over the cache's resident-\n"
      "                           byte accounting (default unbounded)\n"
      "  --cache-ttl SEC          age out cached kernels after SEC seconds\n"
      "                           (default: never expire)\n"
      "  --listen-tcp HOST:PORT   also listen on TCP (fleet serving; every\n"
      "                           connection must pass the shared-secret\n"
      "                           handshake; port 0 = OS-assigned)\n"
      "  --secret-file FILE       shared secret for the fabric handshake\n"
      "                           (first line of FILE; required with\n"
      "                           --listen-tcp / --peer)\n"
      "  --peer HOST:PORT         exchange tuned kernels with this peer\n"
      "                           daemon (repeatable; same-fingerprint\n"
      "                           peers only)\n"
      "  --target-spec FILE       register a target backend from a spec\n"
      "                           JSON file before serving (repeatable;\n"
      "                           docs/BACKENDS.md \"Specs as files\")\n"
      "  --machine-overlay FILE   refit machine-model constants from FILE\n"
      "                           (written by unit_refit) before serving;\n"
      "                           moves the spec hashes, so a persisted\n"
      "                           cache tuned without it starts cold\n"
      "  --trace-out FILE         dump the span buffer as Chrome trace-\n"
      "                           event JSON to FILE on shutdown\n"
      "  --slow-compile-ms N      log a one-line digest of every compile\n"
      "                           slower than N milliseconds\n"
      "  --no-trace               disable span recording (histograms and\n"
      "                           metrics stay on)\n",
      Argv0);
}

/// First line of \p Path, trailing CR/LF trimmed — the shared secret.
/// Exits loudly on a missing/empty file: a daemon silently listening on
/// TCP with an empty secret would be an open compile server.
std::string readSecretFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "error: cannot read secret file '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  char Buf[512];
  std::string Secret;
  if (std::fgets(Buf, sizeof(Buf), F))
    Secret = Buf;
  std::fclose(F);
  while (!Secret.empty() &&
         (Secret.back() == '\n' || Secret.back() == '\r'))
    Secret.pop_back();
  if (Secret.empty()) {
    std::fprintf(stderr, "error: secret file '%s' is empty\n", Path.c_str());
    std::exit(2);
  }
  return Secret;
}

} // namespace

int main(int argc, char **argv) {
  ServerConfig Config;
  std::string OverlayPath;
  std::vector<std::string> SpecPaths;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--socket")
      Config.SocketPath = NextValue();
    else if (Arg == "--cache")
      Config.CacheFile = NextValue();
    else if (Arg == "--persist-interval")
      Config.PersistIntervalSeconds = std::atof(NextValue());
    else if (Arg == "--threads")
      Config.SessionCfg.Threads =
          static_cast<unsigned>(std::atoi(NextValue()));
    else if (Arg == "--max-candidates")
      Config.MaxCandidatesCap = std::atoi(NextValue());
    else if (Arg == "--cache-capacity")
      Config.SessionCfg.CacheCapacity =
          static_cast<size_t>(std::atoll(NextValue()));
    else if (Arg == "--cache-bytes")
      Config.SessionCfg.CacheCapacityBytes =
          static_cast<size_t>(std::atoll(NextValue()));
    else if (Arg == "--cache-ttl")
      Config.SessionCfg.CacheTTLSeconds = std::atof(NextValue());
    else if (Arg == "--listen-tcp")
      Config.TcpListen = NextValue();
    else if (Arg == "--secret-file")
      Config.Secret = readSecretFile(NextValue());
    else if (Arg == "--peer")
      Config.Peers.push_back(NextValue());
    else if (Arg == "--target-spec")
      SpecPaths.push_back(NextValue());
    else if (Arg == "--machine-overlay")
      OverlayPath = NextValue();
    else if (Arg == "--trace-out")
      Config.TraceOutFile = NextValue();
    else if (Arg == "--slow-compile-ms")
      Config.SlowCompileMillis = std::atof(NextValue());
    else if (Arg == "--no-trace")
      Config.TraceEnabled = false;
    else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (Config.SocketPath.empty()) {
    usage(argv[0]);
    return 2;
  }

  // File specs register before the overlay (so an overlay can refit a
  // file-loaded target) and before the server constructs its session
  // (so cache keys, the persisted-cache fingerprint check, and peer
  // fingerprints all see the final registry).
  for (const std::string &Path : SpecPaths) {
    std::string Err;
    TargetBackendRef Backend = registerSpecFile(Path, &Err);
    if (!Backend) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    std::printf("unit_serve: registered target '%s' (spec %s) from %s\n",
                Backend->id().c_str(), Backend->specHash().c_str(),
                Path.c_str());
  }

  // Refit before the server constructs its session: the new spec hashes
  // must be live before the persisted cache's fingerprint is checked.
  if (!OverlayPath.empty()) {
    std::string Err;
    if (!applyMachineOverlayFile(OverlayPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    std::printf("unit_serve: applied machine overlay %s\n",
                OverlayPath.c_str());
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A client vanishing mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  size_t PeerCount = Config.Peers.size();
  CompileServer Server(std::move(Config));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("unit_serve: listening on %s\n", Server.socketPath().c_str());
  if (Server.tcpPort() != 0)
    std::printf("unit_serve: fabric TCP listener on port %u (%zu peers "
                "configured)\n",
                static_cast<unsigned>(Server.tcpPort()), PeerCount);
  switch (Server.cacheLoadResult().Status) {
  case KernelCache::LoadStatus::BadFormat:
    std::fprintf(stderr, "unit_serve: warning: cache file is corrupted; "
                         "starting cold\n");
    break;
  case KernelCache::LoadStatus::FingerprintMismatch:
    std::fprintf(stderr,
                 "unit_serve: warning: cache file was written under a "
                 "different machine/tuner fingerprint; starting cold\n");
    break;
  case KernelCache::LoadStatus::Loaded:
  case KernelCache::LoadStatus::FileNotFound:
    break;
  }
  if (KernelCache::CacheStats S = Server.session().cache().stats();
      S.Entries > 0)
    std::printf("unit_serve: warm start, %zu cached kernels (%zu bytes)\n",
                S.Entries, S.BytesUsed);
  std::fflush(stdout);

  Server.waitForShutdownRequest(&Interrupted);
  Server.stop();

  CompileServer::Totals T = Server.totals();
  std::printf("unit_serve: served %llu requests from %llu connections "
              "(%llu kernels compiled, %llu errors)\n",
              static_cast<unsigned long long>(T.Requests),
              static_cast<unsigned long long>(T.Connections),
              static_cast<unsigned long long>(T.CompiledKernels),
              static_cast<unsigned long long>(T.Errors));
  return 0;
}
