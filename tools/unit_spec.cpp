//===- tools/unit_spec.cpp - Target-spec file authoring helper -------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// Works with the spec-file format of docs/BACKENDS.md "Specs as files":
//
//   unit_spec --dump TARGET          serialize a registered target's spec
//                                    to stdout (start a new file from a
//                                    builtin, or inspect one)
//   unit_spec --hash FILE            parse FILE and print "<id> <hash>"
//                                    (what cache keys will be salted with)
//   unit_spec --check FILE           parse FILE and report OK / the error
//   unit_spec --write-goldens DIR    write every builtin spec to
//                                    DIR/<id>.json — regenerates
//                                    tests/data/specs after a deliberate
//                                    spec revision
//
//===----------------------------------------------------------------------===//

#include "target/BuiltinSpecs.h"
#include "target/SpecFile.h"
#include "target/TargetRegistry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace unit;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s (--dump TARGET | --hash FILE | --check FILE |\n"
               "          --write-goldens DIR)\n",
               Argv0);
}

int dumpTarget(const std::string &Id) {
  TargetRegistry &Registry = TargetRegistry::instance();
  if (!Registry.hasSpecFor(Id)) {
    std::fprintf(stderr,
                 "error: '%s' is not a spec-registered target\n", Id.c_str());
    return 1;
  }
  std::printf("%s\n", serializeSpec(Registry.specFor(Id)).dump().c_str());
  return 0;
}

int hashFile(const std::string &Path, bool PrintHash) {
  TargetSpec Spec;
  std::string Err;
  if (!loadSpecFile(Path, Spec, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (PrintHash)
    std::printf("%s %s\n", Spec.Id.c_str(), Spec.hash().c_str());
  else
    std::printf("%s: OK (target '%s', %zu intrinsics)\n", Path.c_str(),
                Spec.Id.c_str(), Spec.Intrinsics.size());
  return 0;
}

int writeGoldens(const std::string &Dir) {
  for (const TargetSpec &Spec : builtinTargetSpecs()) {
    std::string Path = Dir + "/" + Spec.Id + ".json";
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 1;
    }
    Out << serializeSpec(Spec).dump() << "\n";
    std::printf("wrote %s (spec %s)\n", Path.c_str(), Spec.hash().c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 3) {
    usage(argv[0]);
    return 2;
  }
  std::string Mode = argv[1], Operand = argv[2];
  if (Mode == "--dump")
    return dumpTarget(Operand);
  if (Mode == "--hash")
    return hashFile(Operand, /*PrintHash=*/true);
  if (Mode == "--check")
    return hashFile(Operand, /*PrintHash=*/false);
  if (Mode == "--write-goldens")
    return writeGoldens(Operand);
  usage(argv[0]);
  return 2;
}
