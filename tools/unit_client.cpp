//===- tools/unit_client.cpp - Example compile-server client ---------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// The copy-paste client from docs/SERVER.md: connects to unit_serve,
// compiles one or more model-zoo models — blocking (one compile_model
// round trip each) or pipelined (--async: every layer submitted as
// compile_async up front, results pushed as they land) — or asks for
// stats / persistence / shutdown, and prints what the server did.
//
//   unit_client --socket /tmp/unit.sock --model resnet-18
//   unit_client --socket /tmp/unit.sock --async --model resnet-18 --model resnet-50
//   unit_client --socket /tmp/unit.sock --stats
//   unit_client --socket /tmp/unit.sock --shutdown
//
//===----------------------------------------------------------------------===//

#include "models/ModelZoo.h"
#include "server/CompileClient.h"
#include "target/SpecFile.h" // MaxSpecFileBytes — client-side size cap.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace unit;

namespace {

std::optional<Model> zooModel(const std::string &Name) {
  for (Model &M : paperModels())
    if (M.Name == Name)
      return std::move(M);
  // The transfer-tuning exercise model (docs/TUNING.md) is addressable
  // here too, so CI can warm a server on resnet-18 and then watch
  // transfer_seeds move while the widened variant compiles.
  if (Name == "resnet-18-wide")
    return makeResnet18Wide();
  return std::nullopt;
}

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --connect EP...) [actions]\n"
      "  --socket PATH       server Unix socket\n"
      "  --connect EP        server endpoint: a Unix socket path or a TCP\n"
      "                      HOST:PORT (needs --secret-file); repeatable —\n"
      "                      later endpoints are failover targets\n"
      "  --secret-file FILE  shared secret for TCP endpoints (first line)\n"
      "  --client NAME       client name for the hello handshake\n"
      "  --budget N          per-client tuning budget (hello max_candidates)\n"
      "  --model NAME        compile a zoo model (resnet-18, resnet-50, ...);\n"
      "                      repeatable — all named models are compiled\n"
      "  --async             pipeline every layer of every --model over one\n"
      "                      connection (compile_async + pushed results)\n"
      "                      instead of blocking compile_model round trips\n"
      "  --target T          target id, default x86 (see --list-targets)\n"
      "  --register-spec F   register a target backend from spec JSON file\n"
      "                      F on the running server (repeatable; runs\n"
      "                      before any --model compile, so one invocation\n"
      "                      can register a target and compile on it)\n"
      "  --priority N        batch priority for the compile\n"
      "  --expect-warm       exit 1 unless every layer was a cache hit\n"
      "  --list-targets      print the backends the server can compile for\n"
      "  --stats             print the server's stats message\n"
      "  --metrics           print the server's latency histograms in\n"
      "                      Prometheus text exposition format\n"
      "  --dump-trace FILE   write the server's span buffer as Chrome\n"
      "                      trace-event JSON ('-' = stdout); load it in\n"
      "                      chrome://tracing or Perfetto\n"
      "  --save-cache        ask the server to persist its cache now\n"
      "  --shutdown          ask the server to shut down\n",
      Argv0);
}

/// Renders the metrics message's "histograms" object as Prometheus text:
/// one `# TYPE <family> histogram` header per family, cumulative
/// `_bucket{le="..."}` lines (the server already emits cumulative
/// counts), then `_sum` and `_count`.
void printPrometheus(const Json &Hists) {
  for (const auto &KV : Hists.members()) {
    const std::string &Name = KV.first;
    const Json &H = KV.second;
    std::printf("# TYPE %s histogram\n", Name.c_str());
    if (const Json *Buckets = H.get("buckets"))
      for (const Json &B : Buckets->items()) {
        const Json *Le = B.get("le");
        char LeBuf[40];
        if (Le && Le->isNumber())
          std::snprintf(LeBuf, sizeof(LeBuf), "%.9g", Le->asNumber());
        else
          std::snprintf(LeBuf, sizeof(LeBuf), "+Inf");
        std::printf("%s_bucket{le=\"%s\"} %llu\n", Name.c_str(), LeBuf,
                    static_cast<unsigned long long>(B.integer("count", 0)));
      }
    std::printf("%s_sum %.9g\n", Name.c_str(), H.num("sum", 0));
    std::printf("%s_count %llu\n", Name.c_str(),
                static_cast<unsigned long long>(H.integer("count", 0)));
  }
}

/// --async: submit every layer of every model as compile_async before
/// joining anything, then wait for the pushed results. Returns false on
/// any failure; \p WarmLayers counts cached results for --expect-warm.
bool compileModelsAsync(CompileClient &Client, const std::string &Target,
                        const std::vector<Model> &Models,
                        const CompileOptions &Options, size_t &TotalLayers,
                        size_t &WarmLayers) {
  std::string Err;
  struct Submitted {
    const Model *M;
    std::vector<CompileClient::AsyncHandle> Handles;
  };
  std::vector<Submitted> All;
  size_t Tickets = 0;
  for (const Model &M : Models) {
    std::optional<std::vector<CompileClient::AsyncHandle>> Handles =
        Client.submitModelLayers(Target, M, Options, &Err);
    if (!Handles) {
      std::fprintf(stderr, "error: submitting '%s': %s\n", M.Name.c_str(),
                   Err.c_str());
      return false;
    }
    Tickets += Handles->size();
    All.push_back({&M, std::move(*Handles)});
  }
  std::printf("pipelined %zu tickets across %zu models on one connection\n",
              Tickets, Models.size());

  TotalLayers = 0;
  WarmLayers = 0;
  uint64_t OutOfOrder = 0, LastArrival = 0;
  for (const Submitted &S : All) {
    double ModelSeconds = 0;
    size_t ModelWarm = 0;
    for (size_t I = 0; I < S.Handles.size(); ++I) {
      std::optional<CompileClient::CompileResult> R =
          Client.wait(S.Handles[I], &Err);
      if (!R) {
        std::fprintf(stderr, "error: layer %zu of '%s': %s\n", I,
                     S.M->Name.c_str(), Err.c_str());
        return false;
      }
      ModelSeconds += R->Report.Seconds;
      if (R->Cached)
        ++ModelWarm;
      // Results arrive in completion order; count inversions against
      // submission order to show the pipelining at work.
      if (R->Arrival < LastArrival)
        ++OutOfOrder;
      LastArrival = R->Arrival;
    }
    TotalLayers += S.Handles.size();
    WarmLayers += ModelWarm;
    std::printf("%s on %s: %zu layers pipelined, cached layers: %zu/%zu, "
                "modeled conv time %.3f ms\n",
                S.M->Name.c_str(), Target.c_str(), S.Handles.size(),
                ModelWarm, S.Handles.size(), ModelSeconds * 1e3);
  }
  std::printf("pipelined completion: %zu/%zu tickets resolved "
              "(%llu out-of-submission-order deliveries)\n",
              TotalLayers, Tickets,
              static_cast<unsigned long long>(OutOfOrder));
  return true;
}

/// First line of \p Path, trailing CR/LF trimmed — the shared secret.
std::string readSecretFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "error: cannot read secret file '%s'\n",
                 Path.c_str());
    std::exit(2);
  }
  char Buf[512];
  std::string Secret;
  if (std::fgets(Buf, sizeof(Buf), F))
    Secret = Buf;
  std::fclose(F);
  while (!Secret.empty() &&
         (Secret.back() == '\n' || Secret.back() == '\r'))
    Secret.pop_back();
  return Secret;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, Secret, ClientName = "unit_client",
                                  TargetName = "x86";
  std::vector<std::string> Endpoints;
  std::vector<std::string> ModelNames;
  std::vector<std::string> SpecPaths;
  std::string TraceOutPath;
  int Budget = 0, Priority = 0;
  bool WantStats = false, WantSave = false, WantShutdown = false,
       ExpectWarm = false, WantTargets = false, Async = false,
       WantMetrics = false, WantTrace = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--socket")
      SocketPath = NextValue();
    else if (Arg == "--connect")
      Endpoints.push_back(NextValue());
    else if (Arg == "--secret-file")
      Secret = readSecretFile(NextValue());
    else if (Arg == "--client")
      ClientName = NextValue();
    else if (Arg == "--budget")
      Budget = std::atoi(NextValue());
    else if (Arg == "--model")
      ModelNames.push_back(NextValue());
    else if (Arg == "--async")
      Async = true;
    else if (Arg == "--target")
      TargetName = NextValue();
    else if (Arg == "--register-spec")
      SpecPaths.push_back(NextValue());
    else if (Arg == "--priority")
      Priority = std::atoi(NextValue());
    else if (Arg == "--expect-warm")
      ExpectWarm = true;
    else if (Arg == "--list-targets")
      WantTargets = true;
    else if (Arg == "--stats")
      WantStats = true;
    else if (Arg == "--metrics")
      WantMetrics = true;
    else if (Arg == "--dump-trace") {
      TraceOutPath = NextValue();
      WantTrace = true;
    } else if (Arg == "--save-cache")
      WantSave = true;
    else if (Arg == "--shutdown")
      WantShutdown = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  // --socket is sugar for a single Unix endpoint at the front of the
  // failover list.
  if (!SocketPath.empty())
    Endpoints.insert(Endpoints.begin(), SocketPath);
  if (Endpoints.empty() ||
      (ModelNames.empty() && SpecPaths.empty() && !WantStats && !WantSave &&
       !WantShutdown && !WantTargets && !WantMetrics && !WantTrace)) {
    usage(argv[0]);
    return 2;
  }

  CompileClient Client;
  std::string Err;
  if (!Client.connect(Endpoints, Secret, &Err) ||
      !Client.hello(ClientName, Budget, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  // Registrations run first so one invocation can push a spec and then
  // --list-targets / --model against it. The file is parsed locally only
  // as JSON — spec validation is the server's job, so its error message
  // (naming the offending JSON path) is what the operator sees.
  for (const std::string &Path : SpecPaths) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot read spec file '%s'\n",
                   Path.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Text = Buf.str();
    if (Text.size() > MaxSpecFileBytes) {
      std::fprintf(stderr, "error: spec file '%s' is %zu bytes, over the "
                           "%zu-byte limit\n",
                   Path.c_str(), Text.size(), MaxSpecFileBytes);
      return 1;
    }
    std::optional<Json> Doc = Json::parse(Text, &Err);
    if (!Doc) {
      std::fprintf(stderr, "error: spec file '%s': %s\n", Path.c_str(),
                   Err.c_str());
      return 1;
    }
    std::optional<CompileClient::RegisteredTarget> Registered =
        Client.registerTarget(*Doc, &Err);
    if (!Registered) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("registered target '%s' spec %s source=%s\n",
                Registered->Id.c_str(), Registered->SpecHash.c_str(),
                Registered->Source.c_str());
  }

  if (WantTargets) {
    std::optional<std::vector<CompileClient::TargetInfo>> Targets =
        Client.listTargets(&Err);
    if (!Targets) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    for (const CompileClient::TargetInfo &T : *Targets)
      std::printf("%-10s spec %s  conv3d=%s  source=%-7s  %s\n", T.Id.c_str(),
                  T.SpecHash.c_str(), T.SupportsConv3d ? "yes" : "no",
                  T.Source.c_str(), T.Description.c_str());
  }

  if (!ModelNames.empty()) {
    std::vector<Model> Models;
    for (const std::string &Name : ModelNames) {
      std::optional<Model> M = zooModel(Name);
      if (!M) {
        std::fprintf(stderr, "error: no zoo model named '%s'\n", Name.c_str());
        return 1;
      }
      Models.push_back(std::move(*M));
    }
    CompileOptions Options;
    Options.Priority = Priority;

    size_t TotalLayers = 0, WarmLayers = 0;
    if (Async) {
      if (!compileModelsAsync(Client, TargetName, Models, Options,
                              TotalLayers, WarmLayers))
        return 1;
    } else {
      for (const Model &M : Models) {
        std::optional<CompileClient::ModelResult> Result =
            Client.compileModel(TargetName, M, Options, &Err);
        if (!Result) {
          std::fprintf(stderr, "error: %s\n", Err.c_str());
          return 1;
        }
        double Total = 0;
        for (const KernelReport &R : Result->Layers)
          Total += R.Seconds;
        std::printf("%s on %s: %zu layers (%zu distinct kernels), "
                    "cache-hit layers: %zu/%zu, modeled conv time %.3f ms, "
                    "server wall %.1f ms\n",
                    Result->ModelName.c_str(), TargetName.c_str(),
                    Result->Layers.size(), Result->DistinctShapes,
                    Result->CacheHitLayers, Result->Layers.size(), Total * 1e3,
                    Result->ServerWallSeconds * 1e3);
        TotalLayers += Result->Layers.size();
        WarmLayers += Result->CacheHitLayers;
      }
    }
    if (ExpectWarm && WarmLayers != TotalLayers) {
      std::fprintf(stderr,
                   "error: expected a fully warm compile, but only %zu of "
                   "%zu layers hit the shared cache\n",
                   WarmLayers, TotalLayers);
      return 1;
    }
  }

  if (WantStats) {
    std::optional<Json> Stats = Client.stats(/*Detail=*/false, &Err);
    if (!Stats) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("%s\n", Stats->dump().c_str());
  }

  if (WantMetrics) {
    std::optional<Json> Metrics = Client.metrics(&Err);
    if (!Metrics) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    if (const Json *Hists = Metrics->get("histograms"))
      printPrometheus(*Hists);
  }

  if (WantTrace) {
    std::optional<Json> Trace = Client.dumpTrace(&Err);
    if (!Trace) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    const Json *Inner = Trace->get("trace");
    std::string Dump = Inner ? Inner->dump() : "{}";
    if (TraceOutPath == "-") {
      std::printf("%s\n", Dump.c_str());
    } else {
      std::FILE *Out = std::fopen(TraceOutPath.c_str(), "w");
      if (!Out ||
          std::fwrite(Dump.data(), 1, Dump.size(), Out) != Dump.size()) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     TraceOutPath.c_str());
        if (Out)
          std::fclose(Out);
        return 1;
      }
      std::fclose(Out);
      std::printf("wrote %zu trace bytes to %s\n", Dump.size(),
                  TraceOutPath.c_str());
    }
  }

  if (WantSave) {
    std::optional<size_t> Entries = Client.saveCache("", &Err);
    if (!Entries) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("server persisted %zu cache entries\n", *Entries);
  }

  if (WantShutdown) {
    if (!Client.shutdownServer(&Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("server acknowledged shutdown\n");
  }
  return 0;
}
