//===- tools/unit_refit.cpp - Refit machine constants from measurements ----===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// Turns the host_probe section of a micro_compile BENCH_compile.json into
// a machine-overlay file (docs/TUNING.md "Cost-model refit"): the two
// machine-model constants a host can actually measure cheaply — DRAM
// bandwidth and parallel-region fork/join overhead — are recomputed from
// the measurements, everything else keeps its registered value.
//
//   unit_refit --bench BENCH_compile.json [--target ID]...
//              [--out refit_overlay.json] [--apply]
//
// The overlay is consumed by `unit_serve --machine-overlay FILE` (or any
// host calling applyMachineOverlayFile); --apply additionally loads it
// into this process and prints the refit spec hashes, which doubles as an
// end-to-end validation of the generated file.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "target/MachineOverlay.h"
#include "target/TargetRegistry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace unit;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --bench FILE [options]\n"
      "  --bench FILE   BENCH_compile.json with a host_probe section\n"
      "                 (written by the micro_compile benchmark)\n"
      "  --target ID    CPU target to refit (repeatable; default: every\n"
      "                 spec-registered CPU target)\n"
      "  --out FILE     overlay file to write (default refit_overlay.json)\n"
      "  --apply        also apply the overlay to this process and print\n"
      "                 the refit spec hashes (validates the file)\n",
      Argv0);
}

} // namespace

int main(int argc, char **argv) {
  std::string BenchPath;
  std::string OutPath = "refit_overlay.json";
  std::vector<std::string> Targets;
  bool Apply = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--bench")
      BenchPath = NextValue();
    else if (Arg == "--target")
      Targets.push_back(NextValue());
    else if (Arg == "--out")
      OutPath = NextValue();
    else if (Arg == "--apply")
      Apply = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (BenchPath.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream In(BenchPath, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", BenchPath.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  std::optional<Json> Bench = Json::parse(Buf.str(), &Err);
  if (!Bench) {
    std::fprintf(stderr, "error: %s: %s\n", BenchPath.c_str(), Err.c_str());
    return 1;
  }
  const Json *Probe = Bench->get("host_probe");
  if (!Probe || !Probe->isObject()) {
    std::fprintf(stderr,
                 "error: %s has no host_probe section (re-run the "
                 "micro_compile benchmark to measure one)\n",
                 BenchPath.c_str());
    return 1;
  }
  double MemcpyGbps = Probe->num("memcpy_gbps", 0);
  double ForkJoinUs = Probe->num("fork_join_us", 0);
  if (!std::isfinite(MemcpyGbps) || MemcpyGbps <= 0 ||
      !std::isfinite(ForkJoinUs) || ForkJoinUs <= 0) {
    std::fprintf(stderr,
                 "error: host_probe needs positive memcpy_gbps and "
                 "fork_join_us\n");
    return 1;
  }

  TargetRegistry &Registry = TargetRegistry::instance();
  if (Targets.empty())
    for (const TargetBackendRef &B : Registry.all())
      if (Registry.hasSpecFor(B->id()) &&
          Registry.specFor(B->id()).Engine == TargetSpec::EngineKind::CpuDot)
        Targets.push_back(B->id());

  Json RefitArray = Json::array();
  for (const std::string &Id : Targets) {
    if (!Registry.lookup(Id) || !Registry.hasSpecFor(Id)) {
      std::fprintf(stderr, "error: '%s' is not a spec-registered target\n",
                   Id.c_str());
      return 1;
    }
    TargetSpec Spec = Registry.specFor(Id);
    if (Spec.Engine != TargetSpec::EngineKind::CpuDot) {
      std::fprintf(stderr,
                   "error: '%s' is a GPU target; the host probe measures "
                   "the host CPU\n",
                   Id.c_str());
      return 1;
    }
    // The probe measures wall-clock quantities; the model wants cycles at
    // the spec's frequency: bytes/cycle = (GB/s) / GHz, and cycles =
    // microseconds * GHz * 1000.
    double DramBytesPerCycle = MemcpyGbps / Spec.Cpu.FreqGHz;
    double ForkJoinCycles = ForkJoinUs * Spec.Cpu.FreqGHz * 1e3;
    std::printf("%-10s dram_bytes_per_cycle %7.2f -> %7.2f | "
                "fork_join_cycles %8.0f -> %8.0f\n",
                Id.c_str(), Spec.Cpu.DramBytesPerCycle, DramBytesPerCycle,
                Spec.Cpu.ForkJoinCycles, ForkJoinCycles);
    Json Cpu = Json::object();
    Cpu.set("dram_bytes_per_cycle", DramBytesPerCycle);
    Cpu.set("fork_join_cycles", ForkJoinCycles);
    Json Entry = Json::object();
    Entry.set("target", Id);
    Entry.set("cpu", std::move(Cpu));
    RefitArray.push(std::move(Entry));
  }
  if (RefitArray.items().empty()) {
    std::fprintf(stderr, "error: no CPU targets to refit\n");
    return 1;
  }

  Json Overlay = Json::object();
  Overlay.set("version", 1);
  Overlay.set("refit", std::move(RefitArray));
  std::string Text = Overlay.dump();
  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "%s\n", Text.c_str());
  std::fclose(Out);
  std::printf("wrote %s (%zu targets)\n", OutPath.c_str(),
              Overlay.get("refit")->items().size());

  if (Apply) {
    if (!applyMachineOverlayText(Text, &Err)) {
      std::fprintf(stderr, "error: generated overlay failed to apply: %s\n",
                   Err.c_str());
      return 1;
    }
    for (const Json &Entry : Overlay.get("refit")->items()) {
      std::string Id = Entry.str("target");
      std::printf("%-10s refit spec hash %s\n", Id.c_str(),
                  Registry.specFor(Id).hash().c_str());
    }
  }
  return 0;
}
