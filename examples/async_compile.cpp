//===- examples/async_compile.cpp - The unified compile surface ------------===//
//
// Demonstrates the Workload / CompileRequest / CompileJob API:
//
//   1. every workload kind (conv2d, dense-as-1x1, conv3d, raw op) flows
//      through the same CompileRequest entry point;
//   2. compileAsync overlaps work — a whole model is "submit all, then
//      join" while this thread stays free;
//   3. the kernel cache persists, so a second session (standing in for a
//      second process) restores it and compiles with zero tuning.
//
//===----------------------------------------------------------------------===//

#include "models/ModelZoo.h"
#include "runtime/CompileRequest.h"
#include "runtime/CompilerSession.h"
#include "tuner/Tuner.h"

#include <cstdio>
#include <vector>

using namespace unit;

int main() {
  CompilerSession Session;

  // --- One entry point for every workload kind ---------------------------
  ConvLayer Conv{"conv3x3", 64, 56, 56, 64, 3, 3, 1, 1, 1, false};
  KernelReport ConvReport =
      Session.compile({Workload::conv2d(Conv), "x86"});
  KernelReport DenseReport =
      Session.compile({Workload::dense("fc", 512, 1000), "x86"});
  Conv3dLayer C3;
  C3.Name = "conv3d";
  C3.InC = 64;
  C3.InD = C3.InH = C3.InW = 14;
  C3.OutC = 64;
  C3.K = 3;
  C3.Pad = 1;
  KernelReport Conv3dReport =
      Session.compile({Workload::conv3d(C3), "x86"});
  std::printf("conv2d %.1f us (%s) | dense %.1f us | conv3d %.1f us (%s)\n",
              ConvReport.Seconds * 1e6, ConvReport.IntrinsicName.c_str(),
              DenseReport.Seconds * 1e6, Conv3dReport.Seconds * 1e6,
              Conv3dReport.IntrinsicName.c_str());

  // --- Submit all, then join ---------------------------------------------
  Model Resnet = makeResnet18();
  std::vector<CompileRequest> Requests;
  for (const ConvLayer &L : Resnet.Convs)
    Requests.emplace_back(Workload::conv2d(L), "x86");
  std::vector<CompileJob> Jobs = Session.compileAllAsync(std::move(Requests));
  // ... this thread is free to price the graph, load weights, etc. ...
  double Total = 0;
  for (const CompileJob &Job : Jobs)
    Total += Job.get().Seconds; // Joins; rethrows on compile failure.
  std::printf("resnet18: %zu layers submitted async, sum of kernels %.2f ms\n",
              Jobs.size(), Total * 1e3);

  // --- Persist, restore, compile with zero tuning ------------------------
  const char *Path = "async_compile.cache.kc";
  std::optional<size_t> Saved = Session.saveCache(Path);
  if (!Saved) {
    std::fprintf(stderr, "could not write %s\n", Path);
    return 1;
  }
  CompilerSession SecondRun;
  SecondRun.loadCache(Path);
  uint64_t TunesBefore = tunerInvocations();
  ModelCompileResult Warm = SecondRun.compileModel(Resnet, "x86");
  std::printf("second run: %zu kernels restored from disk, %zu/%zu layers "
              "warm, %llu tuner invocations\n",
              *Saved, Warm.CacheHitLayers, Resnet.Convs.size(),
              static_cast<unsigned long long>(tunerInvocations() -
                                              TunesBefore));
  std::remove(Path);
  return 0;
}
