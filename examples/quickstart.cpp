//===- examples/quickstart.cpp - UNIT in five minutes ----------------------===//
//
// Tensorizes a small quantized matrix multiply with Intel VNNI:
//
//   1. write the operation in the tensor DSL,
//   2. let the Inspector decide whether/how vpdpbusd applies,
//   3. let the Rewriter reorganize the loops and inject the instruction,
//   4. execute both the naive and the tensorized program and compare.
//
// Build: cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "tir/Lower.h"
#include "tir/TIRPrinter.h"

#include <cstdio>

using namespace unit;

int main() {
  // --- 1. The operation: c[i,j] = sum_k u8(a[i,k]) * i8(b[j,k]) in i32.
  const int64_t N = 16, M = 32, K = 64;
  TensorRef A = makeTensor("a", {N, K}, DataType::u8());
  TensorRef B = makeTensor("b", {M, K}, DataType::i8());
  TensorRef C = makeTensor("c", {N, M}, DataType::i32());
  IterVar I = makeAxis("i", N), J = makeAxis("j", M);
  IterVar Kk = makeReduceAxis("k", K);
  ExprRef Prod =
      makeCast(DataType::i32(), makeLoad(A, {makeVar(I), makeVar(Kk)})) *
      makeCast(DataType::i32(), makeLoad(B, {makeVar(J), makeVar(Kk)}));
  ComputeOpRef Op = ComputeOp::create(
      "matmul", C, {I, J}, makeReduce(ReduceKind::Sum, Prod, {Kk}));

  std::printf("The tensor operation:\n%s\n", Op->str().c_str());

  // --- 2+3. Inspect and rewrite against VNNI.
  TensorIntrinsicRef Vnni =
      IntrinsicRegistry::instance().lookup("vnni.vpdpbusd");
  std::printf("Instruction semantics (%s):\n%s\n",
              Vnni->llvmIntrinsic().c_str(),
              Vnni->semantics()->str().c_str());

  std::optional<CompiledKernel> Kernel = compileWithIntrinsic(Op, Vnni);
  if (!Kernel) {
    std::printf("vpdpbusd does not apply to this operation\n");
    return 1;
  }
  std::printf("Tensorized tensor IR:\n%s\n",
              stmtToString(Kernel->TIR).c_str());

  // --- 4. Run both programs on the same inputs.
  SplitMix64 Rng(2026);
  Buffer ABuf(A), BBuf(B), CNaive(C), CTensorized(C);
  ABuf.fillRandom(Rng);
  BBuf.fillRandom(Rng);

  Schedule Naive(Op);
  Interp Run1;
  Run1.bind(A, &ABuf);
  Run1.bind(B, &BBuf);
  Run1.bind(C, &CNaive);
  Run1.run(lower(Naive));

  Interp Run2;
  Run2.bind(A, &ABuf);
  Run2.bind(B, &BBuf);
  Run2.bind(C, &CTensorized);
  Run2.run(Kernel->TIR);

  for (int64_t E = 0; E < C->numElements(); ++E) {
    if (CNaive.getInt(E) != CTensorized.getInt(E)) {
      std::printf("MISMATCH at element %lld\n", static_cast<long long>(E));
      return 1;
    }
  }
  std::printf("Naive and tensorized programs agree on all %lld outputs.\n",
              static_cast<long long>(C->numElements()));
  return 0;
}
