//===- examples/conv2d_vnni.cpp - The paper Fig. 5 walkthrough -------------===//
//
// Reproduces the paper's running example end to end on a real layer
// (Table I workload #5): quantized conv2d mapped onto Intel VNNI.
// Prints every pipeline stage — the DSL program, the Inspector's loop
// mapping, the reorganized schedule, the final tensor IR with the injected
// instruction — then validates bit-exactness on a reduced-size layer and
// reports the CPU tuning ablation.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "graph/Executor.h"
#include "models/Table1.h"
#include "tir/TIRPrinter.h"
#include "target/TargetRegistry.h"

#include <cstdio>

using namespace unit;

int main() {
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();
  ConvLayer Layer = table1Workloads()[4]; // #5: C=128, 16x16, K=128, 3x3.

  std::printf("Layer %s: C=%lld IHW=%lld K=%lld R=S=%lld stride=%lld\n\n",
              Layer.Name.c_str(), static_cast<long long>(Layer.InC),
              static_cast<long long>(Layer.InH),
              static_cast<long long>(Layer.OutC),
              static_cast<long long>(Layer.KH),
              static_cast<long long>(Layer.Stride));

  // Stage 1: graph level lays out the conv in NCHW[x]c / KCRS[y]k[x]c.
  LaidOutOp Laid =
      buildDirectConvOp(Layer, Scheme.Activation, Scheme.Weight,
                        Scheme.Accumulator, Scheme.LaneMultiple,
                        Scheme.ReduceMultiple);
  std::printf("== DSL program (blocked layout) ==\n%s\n",
              Laid.Op->str().c_str());

  // Stage 2: the Inspector.
  TensorIntrinsicRef Vnni =
      IntrinsicRegistry::instance().lookup("vnni.vpdpbusd");
  std::string WhyNot;
  std::optional<MatchResult> Match = inspect(Laid.Op, Vnni, &WhyNot);
  if (!Match) {
    std::printf("inspection failed: %s\n", WhyNot.c_str());
    return 1;
  }
  std::printf("== Inspector: loop mapping (op axis -> instr axis) ==\n");
  for (const auto &[OpAxis, InstrAxis] : Match->Mapping.Pairs)
    std::printf("  %s (extent %lld) -> %s\n", OpAxis->name().c_str(),
                static_cast<long long>(OpAxis->extent()),
                InstrAxis->name().c_str());
  std::printf("  (+%zu alternative feasible mappings)\n\n",
              Match->Alternatives.size());

  // Stage 3: the Rewriter's loop reorganization.
  TensorizePlan Plan = reorganizeLoops(Laid.Op, *Match);
  std::printf("== Rewriter: reorganized leaf loops ==\n  ");
  for (const IterVar &Leaf : Plan.Sched->leaves())
    std::printf("%s ", Leaf->name().c_str());
  std::printf("\n\n");

  // Stage 4: lower + inject the instruction.
  StmtRef TIR = lowerPlan(Plan);
  std::printf("== Final tensor IR ==\n%s\n", stmtToString(TIR).c_str());

  // Stage 5: tuning ablation (paper Fig. 10's stages for this layer).
  CpuMachine Machine = CpuMachine::cascadeLake();
  CpuAblation A = cpuAblation(Laid.Op, *Match, Machine);
  std::printf("== Modeled latency (Cascade Lake) ==\n");
  std::printf("  Parallel only : %7.1f us\n", A.ParallelOnly * 1e6);
  std::printf("  +Unroll       : %7.1f us\n", A.ParallelUnroll * 1e6);
  std::printf("  +Tune         : %7.1f us\n", A.Tuned * 1e6);
  return 0;
}
