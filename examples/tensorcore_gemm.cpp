//===- examples/tensorcore_gemm.cpp - GPU Tensor Core GEMM -----------------===//
//
// fp16 GEMM mapped onto wmma.m16n16k16 with the paper's GPU schedule
// (Fig. 6): block-tiled outer loops, a p x p unrolled accumulator array,
// and optional split-K reduction parallelism. Prints the tensorized IR,
// validates bit-exactness against the naive program, and sweeps the
// (p, split-K) space through the V100 performance model — a miniature of
// paper Fig. 11.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "graph/Layout.h"
#include "interp/Interp.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "tir/Lower.h"
#include "tir/TIRPrinter.h"
#include "tuner/Tuner.h"

#include <cstdio>

using namespace unit;

int main() {
  // A deep-channel bs=1 style GEMM: 208 x 512 x 1024 (Table I #8 fused).
  ComputeOpRef Big = buildGemmOp(208, 512, 1024, DataType::f16(),
                                 DataType::f32());
  TensorIntrinsicRef Wmma =
      IntrinsicRegistry::instance().lookup("wmma.m16n16k16.f16");
  std::optional<MatchResult> Match = inspect(Big, Wmma);
  if (!Match) {
    std::printf("wmma does not apply\n");
    return 1;
  }

  GpuMachine Machine = GpuMachine::v100();
  Table T({"p", "splitK", "modeled-us"});
  for (int64_t P : {1, 2, 4})
    for (int64_t SplitK : {1, 4, 16, 64}) {
      TensorizePlan Plan = buildGpuPlan(Big, *Match, {P, SplitK});
      double Us = gpuLatencySeconds(analyzeTensorized(Plan), Machine) * 1e6;
      T.addRow({std::to_string(P), std::to_string(SplitK),
                formatStr("%.1f", Us)});
    }
  std::printf("== (p, split-K) sweep on the V100 model ==\n");
  T.print();
  TunedKernel Best = tuneGpu(Big, *Match, Machine);
  std::printf("tuner picks candidate #%d of %d\n\n",
              Best.BestCandidateIndex + 1, Best.CandidatesTried);

  // Functional validation on a small GEMM with the p x p schedule.
  ComputeOpRef Small =
      buildGemmOp(64, 64, 32, DataType::f16(), DataType::f32());
  std::optional<MatchResult> SmallMatch = inspect(Small, Wmma);
  TensorizePlan Plan = buildGpuPlan(Small, *SmallMatch, {2, 2});
  StmtRef TIR = lowerPlan(Plan);
  std::printf("== Tensorized IR (64x64x32, p=2, splitK=2) ==\n%s\n",
              stmtToString(TIR).c_str());

  SplitMix64 Rng(7);
  const TensorRef &A = Small->inputs()[0];
  const TensorRef &B = Small->inputs()[1];
  const TensorRef &C = Small->output();
  Buffer ABuf(A), BBuf(B), CNaive(C), CTc(C);
  ABuf.fillRandom(Rng);
  BBuf.fillRandom(Rng);

  Schedule Naive(Small);
  Interp Run1;
  Run1.bind(A, &ABuf);
  Run1.bind(B, &BBuf);
  Run1.bind(C, &CNaive);
  Run1.run(lower(Naive));

  Interp Run2;
  Run2.bind(A, &ABuf);
  Run2.bind(B, &BBuf);
  Run2.bind(C, &CTc);
  Run2.run(TIR);

  for (int64_t E = 0; E < C->numElements(); ++E) {
    if (CNaive.getFloat(E) != CTc.getFloat(E)) {
      std::printf("MISMATCH at element %lld\n", static_cast<long long>(E));
      return 1;
    }
  }
  std::printf("Tensor Core program matches the naive fp32-accumulate "
              "reference on all %lld outputs.\n",
              static_cast<long long>(C->numElements()));
  return 0;
}
