//===- examples/custom_intrinsic.cpp - Extensibility demo ------------------===//
//
// The paper's central claim (§VI.C): integrating a brand-new tensorized
// instruction requires only *describing its semantics in the tensor DSL*
// — no new analysis, no new transformation. This example invents "dot8",
// a hypothetical 8-lane x 2-wide u8 dot-product instruction, registers it,
// and watches UNIT tensorize a matmul with it, bit-exactly.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "interp/Interp.h"
#include "tir/Lower.h"
#include "tir/TIRPrinter.h"

#include <cstdio>

using namespace unit;

namespace {

/// The new instruction, written exactly like paper Fig. 4:
///   d[i:8] = c[i] + sum_{j<2} i32(a[i*2+j]) * i32(b[i*2+j])
TensorIntrinsicRef makeDot8() {
  TensorRef A = makeTensor("dot8.a", {16}, DataType::u8());
  TensorRef B = makeTensor("dot8.b", {16}, DataType::u8());
  TensorRef C = makeTensor("dot8.c", {8}, DataType::i32());
  TensorRef D = makeTensor("dot8.d", {8}, DataType::i32());
  IterVar I = makeAxis("i", 8);
  IterVar J = makeReduceAxis("j", 2);
  ExprRef Lane = makeVar(I) * makeIntImm(2) + makeVar(J);
  ExprRef Prod = makeCast(DataType::i32(), makeLoad(A, {Lane})) *
                 makeCast(DataType::i32(), makeLoad(B, {Lane}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {J},
                            makeLoad(C, {makeVar(I)}));
  IntrinsicCost Cost{/*LatencyCycles=*/4.0, /*IssuePerCycle=*/2.0,
                     /*MacsPerInstr=*/16.0};
  return std::make_shared<TensorIntrinsic>(
      "example.dot8", "llvm.example.dot8", "x86",
      ComputeOp::create("example.dot8", D, {I}, Body), Cost);
}

} // namespace

int main() {
  // One registry call integrates the instruction end to end — emulation
  // included, because the interpreter executes the DSL semantics directly.
  IntrinsicRegistry::instance().add(makeDot8());
  TensorIntrinsicRef Dot8 =
      IntrinsicRegistry::instance().lookup("example.dot8");
  std::printf("Registered: %s\n%s\n", Dot8->name().c_str(),
              Dot8->semantics()->str().c_str());

  // A u8 x u8 matmul the built-in VNNI cannot take (it needs u8 x i8)...
  const int64_t N = 8, M = 16, K = 32;
  TensorRef A = makeTensor("a", {N, K}, DataType::u8());
  TensorRef B = makeTensor("b", {M, K}, DataType::u8());
  TensorRef C = makeTensor("c", {N, M}, DataType::i32());
  IterVar I = makeAxis("i", N), J = makeAxis("j", M);
  IterVar Kk = makeReduceAxis("k", K);
  ExprRef Prod =
      makeCast(DataType::i32(), makeLoad(A, {makeVar(I), makeVar(Kk)})) *
      makeCast(DataType::i32(), makeLoad(B, {makeVar(J), makeVar(Kk)}));
  ComputeOpRef Op = ComputeOp::create(
      "matmul_u8u8", C, {I, J}, makeReduce(ReduceKind::Sum, Prod, {Kk}));

  TensorIntrinsicRef Vnni =
      IntrinsicRegistry::instance().lookup("vnni.vpdpbusd");
  std::string WhyNot;
  if (!inspect(Op, Vnni, &WhyNot))
    std::printf("vpdpbusd rejects it, as expected: %s\n\n", WhyNot.c_str());

  // ...but dot8 takes it, through the unchanged pipeline.
  std::optional<CompiledKernel> Kernel = compileWithIntrinsic(Op, Dot8);
  if (!Kernel) {
    std::printf("dot8 failed to apply\n");
    return 1;
  }
  std::printf("Tensorized with the custom instruction:\n%s\n",
              stmtToString(Kernel->TIR).c_str());

  // Validate.
  SplitMix64 Rng(99);
  Buffer ABuf(A), BBuf(B), CNaive(C), CCustom(C);
  ABuf.fillRandom(Rng);
  BBuf.fillRandom(Rng);
  Schedule Naive(Op);
  Interp Run1;
  Run1.bind(A, &ABuf);
  Run1.bind(B, &BBuf);
  Run1.bind(C, &CNaive);
  Run1.run(lower(Naive));
  Interp Run2;
  Run2.bind(A, &ABuf);
  Run2.bind(B, &BBuf);
  Run2.bind(C, &CCustom);
  Run2.run(Kernel->TIR);
  for (int64_t E = 0; E < C->numElements(); ++E) {
    if (CNaive.getInt(E) != CCustom.getInt(E)) {
      std::printf("MISMATCH at %lld\n", static_cast<long long>(E));
      return 1;
    }
  }
  std::printf("Custom-instruction program matches the reference on all "
              "%lld outputs.\n",
              static_cast<long long>(C->numElements()));
  return 0;
}
