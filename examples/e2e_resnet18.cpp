//===- examples/e2e_resnet18.cpp - End-to-end model compilation ------------===//
//
// Compiles quantized resnet-18 through the full UNIT stack — graph-level
// quantization/layout/fusion, per-layer Inspector/Rewriter/Tuner — and
// prints the per-layer report (instruction used, winning tuning pair,
// modeled latency) plus the end-to-end comparison against the simulated
// MXNet+oneDNN and TVM baselines.
//
//===----------------------------------------------------------------------===//

#include "baselines/TVMBaselines.h"
#include "baselines/VendorLibrary.h"
#include "models/ModelZoo.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <set>

using namespace unit;

int main() {
  CpuMachine Machine = CpuMachine::cascadeLake();
  Model R18 = makeResnet18();
  UnitCpuEngine Unit(Machine, "x86");

  std::printf("Compiling %s: %zu compute layers, %d distinct conv shapes\n\n",
              R18.Name.c_str(), R18.Convs.size(), R18.distinctConvShapes());

  Table T({"layer", "shape (CxHxW -> K, RxS/s)", "tensorized", "pair#",
           "modeled-us"});
  std::set<std::string> Seen;
  double Total = 0;
  for (const ConvLayer &L : R18.Convs) {
    CpuLayerReport Report = Unit.convReport(L);
    Total += Report.Seconds;
    std::string Shape = formatStr(
        "%lldx%lldx%lld -> %lld, %lldx%lld/%lld",
        static_cast<long long>(L.InC), static_cast<long long>(L.InH),
        static_cast<long long>(L.InW), static_cast<long long>(L.OutC),
        static_cast<long long>(L.KH), static_cast<long long>(L.KW),
        static_cast<long long>(L.Stride));
    bool First = Seen.insert(L.shapeKey()).second;
    T.addRow({L.Name, Shape, Report.Tensorized ? "vnni.vpdpbusd" : "simd",
              Report.Tensorized ? std::to_string(Report.BestCandidateIndex + 1)
                                : "-",
              formatStr("%.1f%s", Report.Seconds * 1e6,
                        First ? "" : " (cached)")});
  }
  T.print();
  std::printf("\nSum of conv kernels: %.2f ms\n", Total * 1e3);

  MxnetOneDnnEngine Mxnet(Machine);
  TvmManualEngine Tvm = makeTvmManualVnni(Machine);
  double UnitE2e = modelLatencySeconds(R18, Unit);
  double MxnetE2e = modelLatencySeconds(R18, Mxnet);
  double TvmE2e = modelLatencySeconds(R18, Tvm);
  std::printf("\nEnd-to-end (bs=1, modeled):\n");
  std::printf("  %-18s %.2f ms\n", Mxnet.name().c_str(), MxnetE2e * 1e3);
  std::printf("  %-18s %.2f ms\n", Tvm.name().c_str(), TvmE2e * 1e3);
  std::printf("  %-18s %.2f ms  (%.2fx over MXNet)\n", Unit.name().c_str(),
              UnitE2e * 1e3, MxnetE2e / UnitE2e);
  return 0;
}
