//===- tests/SpecConformance.h - Shared target-spec conformance gauntlet --===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
// The gauntlet every registered spec-backed target must survive
// (tests/test_specfile.cpp runs it over builtins, file specs, and
// wire-registered specs alike):
//
//   1. JSON round-trip: serializeSpec -> dump -> parseSpecText produces a
//      spec with the identical hash and cache salt, and re-serializing
//      the parsed spec reproduces the document byte-for-byte (fixpoint).
//   2. Zoo sample: a deterministic random sample of non-depthwise conv
//      layers from the paper model zoo tensorizes on the target.
//   3. Revision distinctness: a one-field cost revision of the spec moves
//      the spec hash, the conv cache keys, and the session persistence
//      fingerprint — and re-registering the original restores the
//      fingerprint exactly (no residue).
//   4. Wire: the target is advertised over the socket with the same spec
//      hash and provenance the registry holds, and a conv compiled over
//      the wire equals the in-process compile bit-for-bit.
//
//===----------------------------------------------------------------------===//

#ifndef UNIT_TESTS_SPECCONFORMANCE_H
#define UNIT_TESTS_SPECCONFORMANCE_H

#include "models/ModelZoo.h"
#include "runtime/CompilerSession.h"
#include "server/CompileClient.h"
#include "target/SpecFile.h"
#include "target/TargetRegistry.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace unit {
namespace testutil {

/// A deterministic sample of \p Count non-depthwise conv layers drawn
/// from the whole paper zoo. Fixed seed: the gauntlet must fail the same
/// way on every run.
inline std::vector<ConvLayer> sampleZooConvs(size_t Count,
                                             uint32_t Seed = 20260808) {
  std::vector<ConvLayer> All;
  for (const Model &M : paperModels())
    for (const ConvLayer &L : M.Convs)
      if (!L.Depthwise)
        All.push_back(L);
  std::mt19937 Rng(Seed);
  std::vector<ConvLayer> Out;
  std::uniform_int_distribution<size_t> Pick(0, All.size() - 1);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(All[Pick(Rng)]);
  return Out;
}

/// Gauntlet stage 1: the hash-preserving JSON round-trip.
inline void checkSpecRoundTrip(const TargetSpec &Spec) {
  Json Doc = serializeSpec(Spec);
  std::string Text = Doc.dump();
  TargetSpec Parsed;
  std::string Err;
  ASSERT_TRUE(parseSpecText(Text, Parsed, &Err))
      << Spec.Id << ": " << Err;
  EXPECT_EQ(Parsed.Id, Spec.Id);
  EXPECT_EQ(Parsed.hash(), Spec.hash())
      << Spec.Id << ": the JSON round-trip moved the spec hash — cache "
      << "keys and persistence fingerprints would no longer match";
  EXPECT_EQ(Parsed.cacheSalt(), Spec.cacheSalt());
  EXPECT_EQ(serializeSpec(Parsed).dump(), Text)
      << Spec.Id << ": serialize(parse(doc)) is not a fixpoint";
}

/// Gauntlet stage 2: the target tensorizes a random zoo sample.
inline void checkSpecTensorizesZooSample(const TargetSpec &Spec,
                                         size_t SampleSize = 6) {
  TargetBackendRef Backend = TargetRegistry::instance().get(Spec.Id);
  ASSERT_NE(Backend, nullptr);
  for (const ConvLayer &L : sampleZooConvs(SampleSize)) {
    KernelReport R = Backend->compileConv(L, /*Pool=*/nullptr);
    EXPECT_TRUE(R.Tensorized)
        << Spec.Id << " failed to tensorize zoo layer " << L.Name << " ("
        << L.InC << "x" << L.InH << "x" << L.InW << " -> " << L.OutC << ")";
  }
}

/// A copy of \p Doc with intrinsics[0].cost.latency_cycles bumped — the
/// smallest spec revision an operator would actually ship (a remeasured
/// cost table).
inline Json bumpFirstIntrinsicCost(const Json &Doc) {
  const Json *Intrs = Doc.get("intrinsics");
  Json NewIntrs = Json::array();
  for (size_t I = 0; I < Intrs->items().size(); ++I) {
    Json Item = Intrs->items()[I];
    if (I == 0) {
      Json Cost = *Item.get("cost");
      Cost.set("latency_cycles", Cost.num("latency_cycles") + 1.0);
      Item.set("cost", std::move(Cost));
    }
    NewIntrs.push(std::move(Item));
  }
  Json Revised = Doc;
  Revised.set("intrinsics", std::move(NewIntrs));
  return Revised;
}

/// Gauntlet stage 3: a spec revision moves every derived identity, and
/// rolling it back leaves no residue. Re-registers the target twice;
/// restores the original registration (and its provenance) before
/// returning.
inline void checkSpecRevisionDistinctness(const TargetSpec &Spec) {
  TargetRegistry &Registry = TargetRegistry::instance();
  SpecSource Source = Registry.specSourceFor(Spec.Id);
  std::string Fp0 = CompilerSession::persistenceFingerprint();

  Json Revised = bumpFirstIntrinsicCost(serializeSpec(Spec));
  TargetSpec RevisedSpec;
  std::string Err;
  ASSERT_TRUE(parseSpec(Revised, RevisedSpec, &Err)) << Spec.Id << ": "
                                                     << Err;
  EXPECT_NE(RevisedSpec.hash(), Spec.hash())
      << Spec.Id << ": a cost revision must move the spec hash";

  ConvLayer L{"gauntlet", 64, 28, 28, 128, 3, 3, 1, 1, 1, false};
  TargetBackendRef Orig = Registry.get(Spec.Id);
  std::string OrigKey = Orig->convKey(L);

  TargetBackendRef Rev = Registry.registerSpec(RevisedSpec, Source);
  EXPECT_NE(Rev->convKey(L), OrigKey)
      << Spec.Id << ": revised spec must not share conv cache keys";
  EXPECT_NE(CompilerSession::persistenceFingerprint(), Fp0)
      << Spec.Id << ": revised spec must move the persistence fingerprint";

  Registry.registerSpec(Spec, Source);
  EXPECT_EQ(Registry.get(Spec.Id)->convKey(L), OrigKey);
  EXPECT_EQ(CompilerSession::persistenceFingerprint(), Fp0)
      << Spec.Id << ": restoring the original spec must restore the "
      << "fingerprint exactly";
  EXPECT_EQ(Registry.specSourceFor(Spec.Id), Source);
}

/// Gauntlet stage 4: the target over the wire. \p Client must be
/// connected (and past hello) to a server sharing this process's
/// registry, so the wire compile and the in-process compile resolve the
/// same backend and must agree exactly.
inline void checkSpecOverSocket(const TargetSpec &Spec,
                                CompileClient &Client) {
  std::string Err;
  std::optional<std::vector<CompileClient::TargetInfo>> Targets =
      Client.listTargets(&Err);
  ASSERT_TRUE(Targets.has_value()) << Err;
  bool Advertised = false;
  for (const CompileClient::TargetInfo &T : *Targets)
    if (T.Id == Spec.Id) {
      Advertised = true;
      EXPECT_EQ(T.SpecHash, Spec.hash());
      EXPECT_EQ(T.Source,
                specSourceName(
                    TargetRegistry::instance().specSourceFor(Spec.Id)));
    }
  EXPECT_TRUE(Advertised) << Spec.Id << " missing from list_targets";

  ConvLayer L = sampleZooConvs(1).front();
  std::optional<CompileClient::CompileResult> Remote =
      Client.compileConv(Spec.Id, L, {}, &Err);
  ASSERT_TRUE(Remote.has_value()) << Spec.Id << ": " << Err;
  EXPECT_TRUE(Remote->Report.Tensorized);
  KernelReport Local = TargetRegistry::instance().get(Spec.Id)->compileConv(
      L, /*Pool=*/nullptr);
  EXPECT_EQ(Remote->Report.Seconds, Local.Seconds);
  EXPECT_EQ(Remote->Report.IntrinsicName, Local.IntrinsicName);
  EXPECT_EQ(Remote->Report.BestCandidateIndex, Local.BestCandidateIndex);
}

/// The full gauntlet for one registered target.
inline void runSpecGauntlet(const TargetSpec &Spec, CompileClient &Client) {
  SCOPED_TRACE("spec gauntlet: " + Spec.Id);
  checkSpecRoundTrip(Spec);
  checkSpecTensorizesZooSample(Spec);
  checkSpecRevisionDistinctness(Spec);
  checkSpecOverSocket(Spec, Client);
}

} // namespace testutil
} // namespace unit

#endif // UNIT_TESTS_SPECCONFORMANCE_H
