//===- tests/TestUtil.h - Shared fixtures for the test suite --------------===//
//
// Part of the UNIT reproduction (CGO 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the tensor operations the paper compiles (quantized conv2d
/// / conv3d, u8xi8 matmul, fp16 GEMM) plus helpers that execute a schedule
/// against deterministic random inputs and return the output, so tests can
/// assert bit-equality between transformed programs and references.
///
//===----------------------------------------------------------------------===//

#ifndef UNIT_TESTS_TESTUTIL_H
#define UNIT_TESTS_TESTUTIL_H

#include "interp/Interp.h"
#include "ir/ComputeOp.h"
#include "schedule/Schedule.h"
#include "support/Random.h"
#include "tir/Lower.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace unit::testutil {

/// A ComputeOp plus its operand tensors, inputs first, output last.
struct OpFixture {
  ComputeOpRef Op;
  std::vector<TensorRef> Inputs;
  TensorRef Output;
};

/// Quantized 2-D convolution in the paper Fig. 5 form:
///   c[x,y,k] = sum_{r,s,rc} i32(a[x*Stride+r, y*Stride+s, rc])
///                         * i32(b[r,s,k,rc])
inline OpFixture makeConv2D(int64_t H, int64_t W, int64_t C, int64_t K,
                            int64_t R, int64_t S, int64_t Stride = 1,
                            DataType AType = DataType::u8(),
                            DataType BType = DataType::i8()) {
  int64_t OH = (H - R) / Stride + 1;
  int64_t OW = (W - S) / Stride + 1;
  TensorRef A = makeTensor("a", {H, W, C}, AType);
  TensorRef B = makeTensor("b", {R, S, K, C}, BType);
  TensorRef Out = makeTensor("c", {OH, OW, K}, DataType::i32());

  IterVar X = makeAxis("x", OH), Y = makeAxis("y", OW), Kk = makeAxis("k", K);
  IterVar Rr = makeReduceAxis("r", R), Ss = makeReduceAxis("s", S);
  IterVar Rc = makeReduceAxis("rc", C);

  ExprRef Ax = makeVar(X) * makeIntImm(Stride) + makeVar(Rr);
  ExprRef Ay = makeVar(Y) * makeIntImm(Stride) + makeVar(Ss);
  ExprRef Prod =
      makeCast(DataType::i32(), makeLoad(A, {Ax, Ay, makeVar(Rc)})) *
      makeCast(DataType::i32(),
               makeLoad(B, {makeVar(Rr), makeVar(Ss), makeVar(Kk),
                            makeVar(Rc)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {Rr, Ss, Rc});
  ComputeOpRef Op = ComputeOp::create("conv2d", Out, {X, Y, Kk}, Body);
  return {Op, {A, B}, Out};
}

/// Quantized 3-D convolution (paper §VI.C extensibility study).
inline OpFixture makeConv3D(int64_t D, int64_t H, int64_t W, int64_t C,
                            int64_t K, int64_t R) {
  int64_t OD = D - R + 1, OH = H - R + 1, OW = W - R + 1;
  TensorRef A = makeTensor("a", {D, H, W, C}, DataType::u8());
  TensorRef B = makeTensor("b", {R, R, R, K, C}, DataType::i8());
  TensorRef Out = makeTensor("c", {OD, OH, OW, K}, DataType::i32());

  IterVar Z = makeAxis("z", OD), X = makeAxis("x", OH), Y = makeAxis("y", OW);
  IterVar Kk = makeAxis("k", K);
  IterVar Rd = makeReduceAxis("rd", R), Rr = makeReduceAxis("r", R);
  IterVar Ss = makeReduceAxis("s", R), Rc = makeReduceAxis("rc", C);

  ExprRef Prod =
      makeCast(DataType::i32(),
               makeLoad(A, {makeVar(Z) + makeVar(Rd), makeVar(X) + makeVar(Rr),
                            makeVar(Y) + makeVar(Ss), makeVar(Rc)})) *
      makeCast(DataType::i32(),
               makeLoad(B, {makeVar(Rd), makeVar(Rr), makeVar(Ss), makeVar(Kk),
                            makeVar(Rc)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {Rd, Rr, Ss, Rc});
  ComputeOpRef Op = ComputeOp::create("conv3d", Out, {Z, X, Y, Kk}, Body);
  return {Op, {A, B}, Out};
}

/// u8 x i8 -> i32 matmul with both operands reduced over their last dim
/// (the VNNI-friendly "NT" form): c[i,j] = sum_k i32(a[i,k]) * i32(b[j,k]).
inline OpFixture makeMatmulU8I8(int64_t N, int64_t M, int64_t K) {
  TensorRef A = makeTensor("a", {N, K}, DataType::u8());
  TensorRef B = makeTensor("b", {M, K}, DataType::i8());
  TensorRef Out = makeTensor("c", {N, M}, DataType::i32());

  IterVar I = makeAxis("i", N), J = makeAxis("j", M);
  IterVar Kk = makeReduceAxis("k", K);
  ExprRef Prod =
      makeCast(DataType::i32(), makeLoad(A, {makeVar(I), makeVar(Kk)})) *
      makeCast(DataType::i32(), makeLoad(B, {makeVar(J), makeVar(Kk)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {Kk});
  ComputeOpRef Op = ComputeOp::create("matmul", Out, {I, J}, Body);
  return {Op, {A, B}, Out};
}

/// fp16 GEMM accumulating in fp32 (the Tensor Core workload):
///   c[i,j] = sum_k f32(a[i,k]) * f32(b[k,j])
inline OpFixture makeGemmF16(int64_t N, int64_t M, int64_t K) {
  TensorRef A = makeTensor("a", {N, K}, DataType::f16());
  TensorRef B = makeTensor("b", {K, M}, DataType::f16());
  TensorRef Out = makeTensor("c", {N, M}, DataType::f32());

  IterVar I = makeAxis("i", N), J = makeAxis("j", M);
  IterVar Kk = makeReduceAxis("k", K);
  ExprRef Prod =
      makeCast(DataType::f32(), makeLoad(A, {makeVar(I), makeVar(Kk)})) *
      makeCast(DataType::f32(), makeLoad(B, {makeVar(Kk), makeVar(J)}));
  ExprRef Body = makeReduce(ReduceKind::Sum, Prod, {Kk});
  ComputeOpRef Op = ComputeOp::create("gemm_f16", Out, {I, J}, Body);
  return {Op, {A, B}, Out};
}

/// Runs \p Lowered against randomly filled inputs (seeded) and returns the
/// integer output contents.
inline std::vector<int64_t> runToInts(const OpFixture &F,
                                      const StmtRef &Lowered,
                                      uint64_t Seed = 1) {
  SplitMix64 Rng(Seed);
  std::vector<std::unique_ptr<Buffer>> Bufs;
  Interp In;
  for (const TensorRef &T : F.Inputs) {
    Bufs.push_back(std::make_unique<Buffer>(T));
    Bufs.back()->fillRandom(Rng);
    In.bind(T, Bufs.back().get());
  }
  Buffer OutBuf(F.Output);
  In.bind(F.Output, &OutBuf);
  In.run(Lowered);
  std::vector<int64_t> Out(static_cast<size_t>(OutBuf.size()));
  for (int64_t I = 0; I < OutBuf.size(); ++I)
    Out[static_cast<size_t>(I)] = OutBuf.getInt(I);
  return Out;
}

/// Float-output variant of runToInts.
inline std::vector<double> runToFloats(const OpFixture &F,
                                       const StmtRef &Lowered,
                                       uint64_t Seed = 1) {
  SplitMix64 Rng(Seed);
  std::vector<std::unique_ptr<Buffer>> Bufs;
  Interp In;
  for (const TensorRef &T : F.Inputs) {
    Bufs.push_back(std::make_unique<Buffer>(T));
    Bufs.back()->fillRandom(Rng);
    In.bind(T, Bufs.back().get());
  }
  Buffer OutBuf(F.Output);
  In.bind(F.Output, &OutBuf);
  In.run(Lowered);
  std::vector<double> Out(static_cast<size_t>(OutBuf.size()));
  for (int64_t I = 0; I < OutBuf.size(); ++I)
    Out[static_cast<size_t>(I)] = OutBuf.getFloat(I);
  return Out;
}

/// Reference output of \p F under the default (untransformed) schedule.
inline std::vector<int64_t> referenceInts(const OpFixture &F,
                                          uint64_t Seed = 1) {
  Schedule S(F.Op);
  return runToInts(F, lower(S), Seed);
}

inline std::vector<double> referenceFloats(const OpFixture &F,
                                           uint64_t Seed = 1) {
  Schedule S(F.Op);
  return runToFloats(F, lower(S), Seed);
}

} // namespace unit::testutil

#endif // UNIT_TESTS_TESTUTIL_H
