//===- tests/test_e2e.cpp - End-to-end integration tests -------------------===//
//
// Cross-module integration: whole models compiled through the full UNIT
// stack, checking the headline relationships the paper reports (who wins,
// roughly by how much) and the structural claims (>95% of kernels optimal
// within the first 8 tuning pairs, every non-depthwise conv tensorized).
//
//===----------------------------------------------------------------------===//

#include "baselines/TVMBaselines.h"
#include "baselines/VendorLibrary.h"
#include "models/ModelZoo.h"
#include "models/Table1.h"
#include "tuner/Tuner.h"
#include "target/TargetRegistry.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace unit;

namespace {

double geomean(const std::vector<double> &V) {
  double S = 0;
  for (double X : V)
    S += std::log(X);
  return std::exp(S / static_cast<double>(V.size()));
}

TEST(E2E, EveryNonDepthwiseConvTensorizesOnX86) {
  CpuMachine Machine = CpuMachine::cascadeLake();
  UnitCpuEngine Unit(Machine, "x86");
  for (const Model &M : paperModels())
    for (const ConvLayer &L : M.Convs) {
      CpuLayerReport R = Unit.convReport(L);
      EXPECT_EQ(R.Tensorized, !L.Depthwise) << M.Name << "/" << L.Name;
    }
}

TEST(E2E, CpuHeadline_UnitBeatsMxnetAndTvm) {
  CpuMachine Machine = CpuMachine::cascadeLake();
  MxnetOneDnnEngine Mxnet(Machine);
  TvmManualEngine Tvm = makeTvmManualVnni(Machine);
  UnitCpuEngine Unit(Machine, "x86");
  std::vector<double> VsMxnet, VsTvm;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, Mxnet);
    double TvmS = modelLatencySeconds(M, Tvm);
    double UnitS = modelLatencySeconds(M, Unit);
    VsMxnet.push_back(Base / UnitS);
    VsTvm.push_back(TvmS / UnitS);
    EXPECT_LT(UnitS, Base) << M.Name;
    EXPECT_LE(UnitS, TvmS * 1.001) << M.Name;
  }
  // Paper: 1.3x over MXNet-oneDNN, 1.18x over TVM.
  EXPECT_GT(geomean(VsMxnet), 1.15);
  EXPECT_LT(geomean(VsMxnet), 1.6);
  EXPECT_GT(geomean(VsTvm), 1.03);
  EXPECT_LT(geomean(VsTvm), 1.4);
}

TEST(E2E, GpuHeadline_UnitBeatsCuDnn) {
  GpuMachine Machine = GpuMachine::v100();
  CuDnnTensorCoreEngine CuDnn(Machine);
  UnitGpuEngine Unit(Machine);
  std::vector<double> Rel;
  for (const Model &M : paperModels()) {
    double Base = modelLatencySeconds(M, CuDnn);
    double UnitS = modelLatencySeconds(M, Unit);
    Rel.push_back(Base / UnitS);
    EXPECT_LT(UnitS, Base) << M.Name;
  }
  // Paper: 1.75x mean, up to 2.2x.
  EXPECT_GT(geomean(Rel), 1.4);
  EXPECT_LT(geomean(Rel), 2.2);
}

TEST(E2E, ArmHeadline_OrderingHolds) {
  CpuMachine Machine = CpuMachine::graviton2();
  TvmNeonEngine Neon(Machine);
  TvmManualEngine Manual = makeTvmManualDot(Machine);
  UnitCpuEngine Unit(Machine, "arm");
  std::vector<double> VsNeon, VsManual;
  for (const Model &M : paperModels()) {
    double NeonS = modelLatencySeconds(M, Neon);
    double ManualS = modelLatencySeconds(M, Manual);
    double UnitS = modelLatencySeconds(M, Unit);
    VsNeon.push_back(NeonS / UnitS);
    VsManual.push_back(ManualS / UnitS);
    EXPECT_LT(UnitS, NeonS) << M.Name;
    EXPECT_LE(UnitS, ManualS * 1.001) << M.Name;
  }
  // Paper: huge gaps over NEON, 1.13x over the manual schedules.
  EXPECT_GT(geomean(VsNeon), 3.0);
  EXPECT_GT(geomean(VsManual), 1.02);
  EXPECT_LT(geomean(VsManual), 1.35);
}

TEST(E2E, Fig1Headline_NaiveFp16IsSlower) {
  GpuMachine Machine = GpuMachine::v100();
  CuDnnFp32Engine Fp32(Machine);
  CuDnnFp16NoTcEngine Fp16(Machine);
  for (const Model &M : paperModels())
    EXPECT_GT(modelLatencySeconds(M, Fp16), modelLatencySeconds(M, Fp32))
        << M.Name;
}

TEST(E2E, TuningConvergence_MostKernelsWithinFirst8Pairs) {
  // Paper §VI.B: >95% of kernels optimal within the first 8 tuning pairs,
  // more than half at the very first.
  CpuMachine Machine = CpuMachine::cascadeLake();
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();
  int Total = 0, WithinFirst8 = 0;
  for (const ConvLayer &L : table1Workloads()) {
    LaidOutOp Laid =
        buildDirectConvOp(L, Scheme.Activation, Scheme.Weight,
                          Scheme.Accumulator, Scheme.LaneMultiple,
                          Scheme.ReduceMultiple);
    std::vector<MatchResult> Ms = inspectTarget(Laid.Op, "x86");
    ASSERT_FALSE(Ms.empty());
    TunedKernel T = tuneCpu(Laid.Op, Ms.front(), Machine);
    ++Total;
    WithinFirst8 += T.BestCandidateIndex < 8;
  }
  EXPECT_GE(WithinFirst8, Total * 8 / 10);
}

TEST(E2E, AdversarialCpuWorkloadsLoseToOneDnn) {
  // Paper: "CPU does poorly on workloads #1 and #4, because their output
  // shapes can neither be perfectly tiled nor fully unrolled."
  CpuMachine Machine = CpuMachine::cascadeLake();
  OneDnnEngine OneDnn(Machine);
  UnitCpuEngine Unit(Machine, "x86");
  std::vector<ConvLayer> W = table1Workloads();
  EXPECT_GT(Unit.convSeconds(W[0]), OneDnn.convSeconds(W[0])) << "#1";
  EXPECT_GT(Unit.convSeconds(W[3]), OneDnn.convSeconds(W[3])) << "#4";
  // ...while a friendly 14x14 layer wins.
  EXPECT_LT(Unit.convSeconds(W[5]), OneDnn.convSeconds(W[5])) << "#6";
}

TEST(E2E, Conv3dExtensibilityAveragesAboveOne) {
  // Paper Fig. 13: ~1.2x average over the oneDNN-style baseline.
  CpuMachine Machine = CpuMachine::cascadeLake();
  QuantScheme Scheme = TargetRegistry::instance().get("x86")->scheme();
  std::vector<double> Rel;
  std::vector<Conv3dLayer> Layers = makeResnet18Conv3d();
  for (size_t I = 0; I < Layers.size() && I < 6; ++I) {
    LaidOutOp Laid = buildDirectConv3dOp(Layers[I], Scheme.Activation,
                                         Scheme.Weight, Scheme.Accumulator,
                                         Scheme.LaneMultiple,
                                         Scheme.ReduceMultiple);
    std::vector<MatchResult> Ms = inspectTarget(Laid.Op, "x86");
    ASSERT_FALSE(Ms.empty()) << "conv3d must tensorize unchanged";
    TensorizePlan Fixed =
        buildCpuPlan(Laid.Op, Ms.front(), CpuTuningPair{1024, 4});
    KernelStats FS = analyzeTensorized(Fixed);
    FS.HasResidueGuards = false;
    double Ref = cpuLatencySeconds(FS, Machine);
    double Tuned = tuneCpu(Laid.Op, Ms.front(), Machine).LatencySeconds;
    Rel.push_back(Ref / Tuned);
  }
  EXPECT_GT(geomean(Rel), 0.95);
}

} // namespace
